/**
 * @file
 * Table I — Comparison of memory tiering techniques, generated from
 * each policy's features() metadata.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "base/units.hh"
#include "policies/factory.hh"
#include "policies/policy.hh"

using namespace mclock;

int
main()
{
    std::printf("=== Table I: comparison of tiering techniques ===\n");
    std::printf("%-18s %-22s %-26s %-11s %-6s %-9s %-10s %-18s %-s\n",
                "Tiering", "Tracking", "Promotion", "Demotion", "NUMA",
                "SpaceOvh", "General", "Evaluation", "Key insight");
    for (const auto &name :
         std::vector<std::string>{"static", "autonuma", "at-cpm",
                                  "at-opm", "nimble", "amp-lru",
                                  "multiclock", "memory-mode"}) {
        const auto policy = policies::makePolicy(name, 1_MiB);
        const auto row = policy->features();
        std::printf("%-18s %-22s %-26s %-11s %-6s %-9s %-10s %-18s %-s\n",
                    row.tiering.c_str(), row.tracking.c_str(),
                    row.promotion.c_str(), row.demotion.c_str(),
                    row.numaAware.c_str(), row.spaceOverhead.c_str(),
                    row.generality.c_str(), row.evaluation.c_str(),
                    row.keyInsight.c_str());
    }
    return 0;
}
