/**
 * @file
 * Compatibility wrapper: Table I now lives in the scenario registry
 * (src/harness). Same flags, same output; see mclock_bench for the
 * unified driver.
 */

#include "harness/legacy_main.hh"

int
main(int argc, char **argv)
{
    return mclock::harness::legacyMain("tab01", argc, argv);
}
