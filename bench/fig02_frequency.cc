/**
 * @file
 * Fig. 2 — Observation/performance window analysis: pages accessed
 * multiple times in an observation window are accessed far more in the
 * next performance window than pages accessed once (MULTI-CLOCK's core
 * hypothesis).
 */

#include <cstdio>

#include "bench_common.hh"
#include "policies/static_tiering.hh"
#include "trace/window_analysis.hh"
#include "workloads/synthetic.hh"

using namespace mclock;

int
main(int argc, char **argv)
{
    const auto duration = bench::argValue(argc, argv, "--seconds", 120);
    const SimTime window = 1_s * bench::argValue(argc, argv,
                                                 "--window-s", 2);

    std::printf("=== Fig. 2: accesses in the performance window, by "
                "observation-window frequency class ===\n");
    std::printf("%-14s %14s %14s %8s\n", "workload",
                "single (mean)", "multi (mean)", "ratio");

    CsvWriter csv("fig02_frequency.csv");
    csv.writeHeader({"workload", "single_mean", "multi_mean", "ratio",
                     "single_samples", "multi_samples"});

    for (auto profile :
         {workloads::SyntheticProfile::Rubis,
          workloads::SyntheticProfile::SpecPower,
          workloads::SyntheticProfile::Xalan,
          workloads::SyntheticProfile::Lusearch}) {
        sim::Simulator sim(bench::ycsbMachine());
        sim.setPolicy(
            std::make_unique<policies::StaticTieringPolicy>());
        workloads::SyntheticConfig cfg;
        cfg.numPages = 2000;
        cfg.duration = duration * 1_s;
        workloads::SyntheticWorkload workload(sim, profile, cfg);
        trace::AccessTrace trace;
        workload.run(&trace);

        const auto r = trace::analyzeWindows(trace, window, window);
        const char *name = workloads::syntheticProfileName(profile);
        std::printf("%-14s %14.2f %14.2f %8.2f\n", name,
                    r.singleMeanPerfAccesses, r.multiMeanPerfAccesses,
                    r.ratio());
        csv.writeRow({std::string(name),
                      std::to_string(r.singleMeanPerfAccesses),
                      std::to_string(r.multiMeanPerfAccesses),
                      std::to_string(r.ratio()),
                      std::to_string(r.singleSamples),
                      std::to_string(r.multiSamples)});
    }
    std::printf("\nExpected shape: multi >> single for every workload "
                "(the paper's Fig. 2).\nwrote fig02_frequency.csv\n");
    return 0;
}
