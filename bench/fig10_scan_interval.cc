/**
 * @file
 * Fig. 10 — Scanning-interval sensitivity: YCSB-A throughput for
 * MULTI-CLOCK and Nimble at paper-scale intervals of 100 ms, 250 ms,
 * 500 ms, 1 s, 5 s, and 60 s (scaled by kTimeScale like all cadences).
 *
 * Expected shape (paper): ~1 s is near-best; intervals >= 5 s flatten
 * out (reaction lag); MULTI-CLOCK >= Nimble throughout.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace mclock;

namespace {

double
runYcsbA(const std::string &policy, SimTime interval,
         std::uint64_t ops)
{
    sim::Simulator sim(bench::ycsbMachine());
    sim.setPolicy(
        policies::makePolicy(policy,
                             bench::benchPolicyOptions(interval)));
    auto ycsb = bench::ycsbBenchConfig(ops);
    workloads::YcsbDriver driver(sim, ycsb);
    driver.load();
    return driver.run(workloads::YcsbWorkload::A)
        .throughputOpsPerSec();
}

}  // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t ops =
        bench::argValue(argc, argv, "--ops", 1500000);

    struct Point
    {
        const char *label;   // paper-scale interval
        SimTime paperValue;
    };
    const std::vector<Point> points{{"100ms", 100_ms}, {"250ms", 250_ms},
                                    {"500ms", 500_ms}, {"1s", 1_s},
                                    {"5s", 5_s},       {"60s", 60_s}};

    std::printf("=== Fig. 10: scan-interval sensitivity, YCSB-A "
                "throughput (kops/s) ===\n");
    std::printf("%-8s %14s %14s\n", "interval", "multiclock",
                "nimble");
    CsvWriter csv("fig10_scan_interval.csv");
    csv.writeHeader({"interval", "multiclock_kops", "nimble_kops"});

    for (const auto &p : points) {
        const SimTime interval = bench::scaledTime(p.paperValue);
        const double mc = runYcsbA("multiclock", interval, ops) / 1e3;
        const double nb = runYcsbA("nimble", interval, ops) / 1e3;
        std::printf("%-8s %14.1f %14.1f\n", p.label, mc, nb);
        csv.writeRow({p.label, std::to_string(mc),
                      std::to_string(nb)});
    }
    std::printf("\n(intervals are paper-scale labels; simulated "
                "cadence is scaled by 1/%.0f)\n", bench::kTimeScale);
    std::printf("wrote fig10_scan_interval.csv\n");
    return 0;
}
