/**
 * @file
 * Ablation D2 — Reference-bit scanning vs software hint-page-fault
 * tracking: decomposes where each mechanism spends time on YCSB-A.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace mclock;

int
main(int argc, char **argv)
{
    const std::uint64_t ops =
        bench::argValue(argc, argv, "--ops", 1200000);
    const auto ycsb = bench::ycsbBenchConfig(ops);
    const auto machine = bench::ycsbMachine();
    const auto opts = bench::benchPolicyOptions();

    std::printf("=== Ablation D2: access-tracking mechanism cost "
                "(YCSB-A) ===\n");
    std::printf("%-12s %10s %12s %14s %16s %16s\n", "policy", "kops/s",
                "hint_faults", "scanned_pages", "inline_ovh(ms)",
                "bg_work(ms)");
    CsvWriter csv("ablation_tracking_cost.csv");
    csv.writeHeader({"policy", "kops", "hint_faults", "scanned_pages",
                     "inline_overhead_ms", "background_work_ms"});

    for (const auto &policy : policies::tieredPolicyNames()) {
        sim::Simulator sim(machine);
        sim.setPolicy(policies::makePolicy(policy, opts));
        workloads::YcsbDriver driver(sim, ycsb);
        driver.load();
        const auto r = driver.run(workloads::YcsbWorkload::A);
        const double inlineMs =
            static_cast<double>(
                sim.stats().get("inline_overhead_ns")) / 1e6;
        const double bgMs =
            static_cast<double>(
                sim.stats().get("background_work_ns")) / 1e6;
        std::printf("%-12s %10.1f %12llu %14llu %16.2f %16.2f\n",
                    policy.c_str(), r.throughputOpsPerSec() / 1e3,
                    static_cast<unsigned long long>(
                        sim.stats().get("hint_faults")),
                    static_cast<unsigned long long>(
                        sim.stats().get("scanned_pages")),
                    inlineMs, bgMs);
        csv.writeRow({policy,
                      std::to_string(r.throughputOpsPerSec() / 1e3),
                      std::to_string(sim.stats().get("hint_faults")),
                      std::to_string(sim.stats().get("scanned_pages")),
                      std::to_string(inlineMs), std::to_string(bgMs)});
    }
    std::printf("\nExpected: AT-* pay hint faults + fault-path "
                "migrations inline; reference-bit policies pay only "
                "background scans.\nwrote ablation_tracking_cost.csv\n");
    return 0;
}
