/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot data structures: LRU
 * list operations, CLOCK scan passes, the LLC model, the zipfian
 * generator, and the simulator's end-to-end access path. These bound
 * the host-time cost of simulation and the simulated daemon overheads.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "base/rng.hh"
#include "base/units.hh"
#include "mem/cache.hh"
#include "pfra/lru_lists.hh"
#include "pfra/vmscan.hh"
#include "policies/factory.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "vm/address_space.hh"
#include "vm/page.hh"
#include "workloads/zipf.hh"

using namespace mclock;

namespace {

void
BM_LruListMove(benchmark::State &state)
{
    AddressSpace space;
    pfra::NodeLists lists;
    std::vector<std::unique_ptr<Page>> pages;
    for (int i = 0; i < 1024; ++i) {
        pages.push_back(std::make_unique<Page>(&space, i, true));
        lists.add(pages.back().get(), LruListKind::InactiveAnon);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        Page *pg = pages[i++ & 1023].get();
        lists.moveTo(pg, LruListKind::ActiveAnon);
        lists.moveTo(pg, LruListKind::InactiveAnon);
    }
}
BENCHMARK(BM_LruListMove);

void
BM_ClockScanPass(benchmark::State &state)
{
    AddressSpace space;
    pfra::NodeLists lists;
    std::vector<std::unique_ptr<Page>> pages;
    const auto n = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < n; ++i) {
        pages.push_back(std::make_unique<Page>(&space, i, true));
        lists.add(pages.back().get(), LruListKind::ActiveAnon);
    }
    Rng rng(1);
    for (auto _ : state) {
        // Mark a third of the pages referenced, then shrink.
        for (std::size_t i = 0; i < n / 3; ++i)
            pages[rng.nextRange(n)]->setPteReferenced(true);
        pfra::ScanStats stats = pfra::shrinkActiveList(lists, true, n);
        benchmark::DoNotOptimize(stats.scanned);
        // Move everything back to active for the next iteration.
        auto &inactive = lists.list(LruListKind::InactiveAnon);
        while (Page *pg = inactive.back())
            lists.moveTo(pg, LruListKind::ActiveAnon);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ClockScanPass)->Arg(1024)->Arg(8192);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = 1_MiB;
    CacheModel cache(cfg);
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextRange(64_MiB), false).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_ZipfianNext(benchmark::State &state)
{
    workloads::ZipfianGenerator zipf(1u << 20);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext);

void
BM_SimulatorAccessPath(benchmark::State &state)
{
    sim::MachineConfig cfg = sim::benchMachine();
    sim::Simulator sim(cfg);
    sim.setPolicy(policies::makePolicy("multiclock"));
    const std::size_t pages = 4096;
    const Vaddr base = sim.mmap(pages * kPageSize);
    // Pre-fault.
    for (std::size_t i = 0; i < pages; ++i)
        sim.write(base + i * kPageSize);
    Rng rng(4);
    for (auto _ : state) {
        const Vaddr va = base + rng.nextRange(pages) * kPageSize +
                         (rng.next64() & 0xfc0);
        sim.read(va, 8);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorAccessPath);

void
BM_MigrationRoundTrip(benchmark::State &state)
{
    sim::MachineConfig cfg = sim::benchMachine();
    sim::Simulator sim(cfg);
    sim.setPolicy(policies::makePolicy("static"));
    const Vaddr base = sim.mmap(kPageSize);
    sim.write(base);
    Page *pg = sim.space().lookup(pageNumOf(base));
    sim.policy().onPageFreed(pg);  // isolate
    for (auto _ : state) {
        sim.demotePage(pg, sim::Simulator::ChargeMode::Background);
        sim.promotePage(pg, sim::Simulator::ChargeMode::Background);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MigrationRoundTrip);

}  // namespace
