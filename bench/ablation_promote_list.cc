/**
 * @file
 * Ablation D1 — What does the third (promote) list buy?
 *
 * Compares selection mechanisms on YCSB-A at identical scan budgets:
 *  - multiclock: 3 recent references via the promote list,
 *  - nimble:     1 recent reference (recency only),
 *  - amp-lru / amp-lfu / amp-random: full-profiling selections.
 *
 * Reports throughput plus promotion volume and re-access quality, the
 * quantities that explain Figs. 8/9.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace mclock;

int
main(int argc, char **argv)
{
    const std::uint64_t ops =
        bench::argValue(argc, argv, "--ops", 1200000);
    const auto ycsb = bench::ycsbBenchConfig(ops);
    const auto machine = bench::ycsbMachine();
    const auto opts = bench::benchPolicyOptions();
    // Optional workload selector (--workload 0..6 indexes A..W).
    const auto wsel = bench::argValue(argc, argv, "--workload", 0);
    const auto workload = static_cast<workloads::YcsbWorkload>(wsel);

    std::printf("=== Ablation D1: page-selection mechanism (YCSB-%s) "
                "===\n", workloads::ycsbWorkloadName(workload));
    std::printf("%-12s %12s %12s %12s %12s\n", "selection", "kops/s",
                "promoted", "reaccess%", "demoted");
    CsvWriter csv("ablation_promote_list.csv");
    csv.writeHeader({"selection", "kops", "promoted", "reaccess_pct",
                     "demoted"});

    for (const std::string policy :
         {"multiclock", "nimble", "amp-lru", "amp-lfu", "amp-random"}) {
        sim::Simulator sim(machine);
        sim.setPolicy(policies::makePolicy(policy, opts));
        workloads::YcsbDriver driver(sim, ycsb);
        driver.load();
        const auto r = driver.run(workload);
        const auto promoted = sim.metrics().totalPromotions();
        const auto reaccessed = sim.metrics().totalReaccessed();
        const double pct =
            promoted ? 100.0 * static_cast<double>(reaccessed) /
                           static_cast<double>(promoted)
                     : 0.0;
        std::printf("%-12s %12.1f %12llu %12.1f %12llu  swaps=%llu\n",
                    policy.c_str(), r.throughputOpsPerSec() / 1e3,
                    static_cast<unsigned long long>(promoted), pct,
                    static_cast<unsigned long long>(
                        sim.metrics().totalDemotions()),
                    static_cast<unsigned long long>(
                        sim.stats().get("swap_outs")));
        csv.writeRow({policy,
                      std::to_string(r.throughputOpsPerSec() / 1e3),
                      std::to_string(promoted), std::to_string(pct),
                      std::to_string(sim.metrics().totalDemotions())});
    }
    std::printf("\nwrote ablation_promote_list.csv\n");
    return 0;
}
