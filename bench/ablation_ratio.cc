/**
 * @file
 * Ablation D4 — DRAM:PM capacity ratio sweep (paper §VII future work):
 * MULTI-CLOCK's gain over static tiering as the DRAM share shrinks.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace mclock;

namespace {

double
runYcsbA(const std::string &policy, const sim::MachineConfig &machine,
         const workloads::YcsbConfig &ycsb)
{
    sim::Simulator sim(machine);
    sim.setPolicy(
        policies::makePolicy(policy, bench::benchPolicyOptions()));
    workloads::YcsbDriver driver(sim, ycsb);
    driver.load();
    return driver.run(workloads::YcsbWorkload::A)
        .throughputOpsPerSec();
}

}  // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t ops =
        bench::argValue(argc, argv, "--ops", 1000000);
    const auto ycsb = bench::ycsbBenchConfig(ops);

    struct Ratio
    {
        const char *label;
        std::size_t dram;
        std::size_t pmem;
    };
    const std::vector<Ratio> ratios{
        {"1:2", 24_MiB, 48_MiB},
        {"1:4", 16_MiB, 64_MiB},
        {"1:8", 8_MiB, 64_MiB},
        {"1:16", 4_MiB, 64_MiB},
    };

    std::printf("=== Ablation D4: DRAM:PM ratio sweep (YCSB-A, "
                "fixed footprint) ===\n");
    std::printf("%-6s %14s %14s %10s\n", "ratio", "static(kops)",
                "mclock(kops)", "speedup");
    CsvWriter csv("ablation_ratio.csv");
    csv.writeHeader({"ratio", "static_kops", "multiclock_kops",
                     "speedup"});

    for (const auto &r : ratios) {
        sim::MachineConfig machine = bench::ycsbMachine();
        machine.nodes = {{TierKind::Dram, r.dram},
                         {TierKind::Pmem, r.pmem}};
        const double st = runYcsbA("static", machine, ycsb) / 1e3;
        const double mc = runYcsbA("multiclock", machine, ycsb) / 1e3;
        std::printf("%-6s %14.1f %14.1f %10.3f\n", r.label, st, mc,
                    mc / st);
        csv.writeRow({r.label, std::to_string(st), std::to_string(mc),
                      std::to_string(mc / st)});
    }
    std::printf("\nExpected: the dynamic-tiering advantage grows as "
                "DRAM becomes scarcer, until DRAM is too small to hold "
                "the hot set.\nwrote ablation_ratio.csv\n");
    return 0;
}
