/**
 * @file
 * Unified experiment driver. Every paper experiment (figures, Table I,
 * ablations, microbenchmarks) is a registered scenario; this binary
 * lists, filters, and runs them on a thread pool with deterministic
 * output, and maintains the golden regression fixtures.
 *
 *   mclock_bench --list
 *   mclock_bench --filter fig05 --jobs 4 --out results/
 *   mclock_bench --golden --filter ablation
 *   mclock_bench --update-golden          # regenerate tests/golden/
 *   mclock_bench --check-golden           # what golden_test runs
 *   mclock_bench --bench --repeat 3       # wall-clock benchmark mode
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/benchmark.hh"
#include "harness/golden.hh"
#include "harness/runner.hh"

using namespace mclock;
using namespace mclock::harness;

namespace {

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "selection:\n"
        "  --list            list registered scenarios and exit\n"
        "  --filter STR      run only scenarios whose name contains "
        "STR\n"
        "\n"
        "execution:\n"
        "  --jobs N          worker threads (default 1; 0 = all "
        "cores)\n"
        "  --shards N        worker threads for sharded scenarios "
        "(the\n"
        "                    shard_bigmem family; default 1). Pure\n"
        "                    execution width: results are bit-identical\n"
        "                    for any N\n"
        "  --out DIR         artifact/manifest directory (default .)\n"
        "  --seed N          base seed (default %llu; the default "
        "reproduces\n"
        "                    the legacy single-experiment binaries)\n"
        "  --param K=V       integer scenario parameter (e.g. "
        "ops=100000);\n"
        "                    repeatable\n"
        "  --golden          use the reduced-scale golden profiles\n"
        "  --stats           export kernel-style stats per unit: the\n"
        "                    vmstat time series (<scenario>_<unit>_"
        "vmstat.csv)\n"
        "                    and the tracepoint ring (..._trace.jsonl);\n"
        "                    counter totals land in run_manifest.json\n"
        "  --no-manifest     do not write run_manifest.json into "
        "--out\n"
        "  --quiet           suppress scenario text output\n"
        "\n"
        "golden regression:\n"
        "  --check-golden    run golden scenarios, compare with "
        "fixtures\n"
        "  --update-golden   regenerate fixtures (review the diff!)\n"
        "  --golden-dir DIR  fixture directory (default: %s)\n"
        "\n"
        "wall-clock benchmarking:\n"
        "  --bench           benchmark the selected scenarios: run "
        "each\n"
        "                    --repeat times (after --warmup discarded\n"
        "                    runs), report host ops/sec and simulated\n"
        "                    accesses/sec, write --bench-out. Forces\n"
        "                    --jobs 1 (scenarios must not compete for\n"
        "                    cores while being timed; sharded scenarios\n"
        "                    still thread internally per --shards)\n"
        "  --repeat N        measured repeats per scenario (default "
        "3)\n"
        "  --warmup K        discarded warmup runs per scenario "
        "(default 1)\n"
        "  --bench-out FILE  report path (default <out>/BENCH_8.json)"
        "\n"
        "  --bench-baseline FILE\n"
        "                    recorded baseline to embed and compute\n"
        "                    speedup_vs_baseline against\n",
        prog, static_cast<unsigned long long>(kDefaultSeed),
        defaultGoldenDir().c_str());
}

void
listScenarios()
{
    std::printf("%-24s %-10s %-7s %s\n", "name", "workload", "golden",
                "title");
    std::size_t count = 0;
    for (const auto &sc : allScenarios()) {
        std::printf("%-24s %-10s %-7s %s\n", sc.name.c_str(),
                    sc.workload.c_str(),
                    sc.goldenEligible ? "yes" : "no",
                    sc.title.c_str());
        ++count;
    }
    std::printf("\n%zu scenarios registered\n", count);
}

bool
parseParam(const char *text, RunContext &ctx)
{
    const char *eq = std::strchr(text, '=');
    if (!eq || eq == text)
        return false;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(eq + 1, &end, 10);
    if (end == eq + 1 || *end != '\0')
        return false;
    ctx.params[std::string(text, eq)] =
        static_cast<std::uint64_t>(value);
    return true;
}

/** Run the golden suite; update or verify fixtures. Returns exit code. */
int
goldenPass(const std::string &dir, const std::string &filter,
           unsigned jobs, unsigned shards, bool update)
{
    RunnerOptions opts;
    opts.jobs = jobs;
    opts.context = goldenContext();
    opts.context.shards = shards;
    opts.writeArtifacts = false;
    opts.quiet = true;

    std::vector<const Scenario *> selected;
    for (const Scenario *sc : filterScenarios(filter)) {
        if (sc->goldenEligible)
            selected.push_back(sc);
    }
    if (selected.empty()) {
        std::fprintf(stderr, "no golden-eligible scenario matches "
                             "'%s'\n", filter.c_str());
        return 1;
    }

    const RunReport report = runScenarios(selected, opts);
    int failures = 0;
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const auto &result = report.results[i];
        const std::string path = goldenPath(dir, result.name);
        if (update) {
            GoldenFile golden;
            golden.scenario = result.name;
            golden.seed = opts.context.seed;
            golden.tolerance = kGoldenDefaultTolerance;
            golden.metrics = result.output.summary;
            saveGolden(path, golden);
            std::printf("updated %s (%zu metrics)\n", path.c_str(),
                        golden.metrics.size());
            continue;
        }
        GoldenFile golden;
        std::string err;
        if (!loadGolden(path, golden, &err)) {
            std::printf("FAIL %-24s %s\n", result.name.c_str(),
                        err.c_str());
            ++failures;
            continue;
        }
        const auto diffs =
            compareGolden(golden, result.output.summary);
        if (diffs.empty()) {
            std::printf("ok   %-24s %zu metrics (%.2fs)\n",
                        result.name.c_str(), golden.metrics.size(),
                        result.wallSeconds);
        } else {
            std::printf("FAIL %-24s %zu mismatches\n",
                        result.name.c_str(), diffs.size());
            for (const auto &d : diffs)
                std::printf("     %s\n", d.c_str());
            ++failures;
        }
    }
    if (!report.clean()) {
        std::fprintf(stderr, "invariant violations detected\n");
        return 1;
    }
    if (!update && failures) {
        std::printf("\n%d scenario(s) diverged from golden fixtures "
                    "in %s\n(after an intended behaviour change: "
                    "mclock_bench --update-golden, review the diff, "
                    "commit)\n", failures, dir.c_str());
        return 1;
    }
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool list = false, golden = false, manifest = true, quiet = false;
    bool updateGolden = false, checkGolden = false, bench = false;
    std::string filter, outDir = ".";
    std::string goldenDir = defaultGoldenDir();
    std::string benchOut, benchBaseline;
    unsigned jobs = 1, repeat = 3, warmup = 1;
    RunContext ctx;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto operand = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires an operand\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--filter") {
            filter = operand("--filter");
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(operand("--jobs"), nullptr, 10));
        } else if (arg == "--shards") {
            ctx.shards = static_cast<unsigned>(
                std::strtoul(operand("--shards"), nullptr, 10));
            if (ctx.shards == 0)
                ctx.shards = 1;
        } else if (arg == "--out") {
            outDir = operand("--out");
        } else if (arg == "--seed") {
            ctx.seed = std::strtoull(operand("--seed"), nullptr, 10);
        } else if (arg == "--param") {
            const char *p = operand("--param");
            if (!parseParam(p, ctx)) {
                std::fprintf(stderr, "bad --param '%s' (want K=V with "
                                     "integer V)\n", p);
                return 2;
            }
        } else if (arg == "--golden") {
            golden = true;
        } else if (arg == "--stats") {
            ctx.stats = true;
        } else if (arg == "--manifest") {
            manifest = true;
        } else if (arg == "--no-manifest") {
            manifest = false;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--update-golden") {
            updateGolden = true;
        } else if (arg == "--check-golden") {
            checkGolden = true;
        } else if (arg == "--golden-dir") {
            goldenDir = operand("--golden-dir");
        } else if (arg == "--bench") {
            bench = true;
        } else if (arg == "--repeat") {
            repeat = static_cast<unsigned>(
                std::strtoul(operand("--repeat"), nullptr, 10));
            if (repeat == 0) {
                std::fprintf(stderr, "--repeat must be >= 1\n");
                return 2;
            }
        } else if (arg == "--warmup") {
            warmup = static_cast<unsigned>(
                std::strtoul(operand("--warmup"), nullptr, 10));
        } else if (arg == "--bench-out") {
            benchOut = operand("--bench-out");
        } else if (arg == "--bench-baseline") {
            benchBaseline = operand("--bench-baseline");
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (list) {
        listScenarios();
        return 0;
    }
    if (updateGolden || checkGolden)
        return goldenPass(goldenDir, filter, jobs, ctx.shards,
                          updateGolden);

    const auto selected = filterScenarios(filter);
    if (selected.empty()) {
        std::fprintf(stderr, "no scenario matches '%s' (see --list)\n",
                     filter.c_str());
        return 1;
    }

    if (bench) {
        BenchOptions bo;
        bo.repeat = repeat;
        bo.warmup = warmup;
        bo.jobs = jobs;
        bo.baselinePath = benchBaseline;
        bo.context = ctx;
        bo.context.golden = golden;

        const BenchReport report = runBenchmark(selected, bo);
        const Json doc = benchReportToJson(report, bo);

        if (benchOut.empty()) {
            benchOut = (std::filesystem::path(outDir) / "BENCH_8.json")
                           .string();
        }
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(benchOut).parent_path(), ec);
        std::ofstream f(benchOut);
        if (!f) {
            std::fprintf(stderr, "cannot write bench report '%s'\n",
                         benchOut.c_str());
            return 1;
        }
        f << doc.dump(2) << "\n";

        if (!quiet) {
            std::printf("%-24s %10s %14s %14s\n", "scenario", "best_s",
                        "ops/sec", "accesses/sec");
            for (const auto &s : report.scenarios) {
                const double best = s.bestSeconds();
                std::printf("%-24s %10.3f %14.0f %14.0f\n",
                            s.name.c_str(), best,
                            best > 0 ? static_cast<double>(s.appOps) /
                                           best
                                     : 0.0,
                            best > 0
                                ? static_cast<double>(s.simAccesses) /
                                      best
                                : 0.0);
            }
            std::printf("\nsuite: %zu scenario(s), %.2fs best-total",
                        report.scenarios.size(),
                        report.totalBestSeconds());
            if (doc.contains("speedup_vs_baseline")) {
                std::printf(", %.2fx vs baseline",
                            doc["speedup_vs_baseline"].asNumber());
            }
            std::printf("\nwrote %s\n", benchOut.c_str());
        }
        return report.clean() ? 0 : 1;
    }

    RunnerOptions opts;
    opts.jobs = jobs;
    opts.outDir = outDir;
    opts.writeManifest = manifest;
    opts.quiet = quiet;
    opts.context = ctx;
    opts.context.golden = golden;

    const RunReport report = runScenarios(selected, opts);
    if (!quiet) {
        std::fprintf(stderr, "\n%zu scenario(s), %.2fs wall\n",
                     report.results.size(), report.wallSeconds);
    }
    return report.clean() ? 0 : 1;
}
