/**
 * @file
 * Compatibility wrapper: Fig. 5 YCSB throughput now lives in the scenario registry
 * (src/harness). Same flags, same output; see mclock_bench for the
 * unified driver.
 */

#include "harness/legacy_main.hh"

int
main(int argc, char **argv)
{
    return mclock::harness::legacyMain("fig05", argc, argv);
}
