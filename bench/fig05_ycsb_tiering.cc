/**
 * @file
 * Fig. 5 — YCSB throughput (workloads A, B, C, F, W, D) normalised to
 * static tiering, for MULTI-CLOCK, Nimble, AutoTiering-CPM and
 * AutoTiering-OPM.
 *
 * Expected shape (paper): MULTI-CLOCK highest everywhere; vs static
 * +20..132% (max on D); vs Nimble +9..36%; AT-CPM far below static;
 * AT-OPM between AT-CPM and Nimble.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace mclock;

int
main(int argc, char **argv)
{
    const std::uint64_t ops =
        bench::argValue(argc, argv, "--ops", 1200000);
    const auto ycsb = bench::ycsbBenchConfig(ops);
    const auto machine = bench::ycsbMachine();
    const auto opts = bench::benchPolicyOptions();
    const std::vector<std::string> workloads{"A", "B", "C", "F",
                                             "W", "D"};

    std::printf("=== Fig. 5: YCSB throughput normalised to static "
                "tiering ===\n");
    std::printf("records=%zu ops/workload=%llu footprint~2.5x DRAM\n",
                ycsb.recordCount,
                static_cast<unsigned long long>(ops));

    CsvWriter csv("fig05_ycsb_tiering.csv");
    std::vector<std::string> header{"policy"};
    for (const auto &w : workloads)
        header.push_back(w);
    csv.writeHeader(header);

    std::vector<double> baseline;
    std::printf("%-12s", "policy");
    for (const auto &w : workloads)
        std::printf(" %8s", w.c_str());
    std::printf("\n");

    for (const auto &policy : policies::tieredPolicyNames()) {
        const auto out =
            bench::runYcsbSequence(policy, ycsb, machine, opts);
        std::vector<double> tput;
        for (const auto &w : workloads)
            tput.push_back(out.throughput.at(w));
        if (policy == "static")
            baseline = tput;
        bench::printNormalizedRow(policy, tput, baseline);

        std::vector<std::string> row{policy};
        for (std::size_t i = 0; i < tput.size(); ++i)
            row.push_back(std::to_string(tput[i] / baseline[i]));
        csv.writeRow(row);
    }
    std::printf("\nwrote fig05_ycsb_tiering.csv (values normalised to "
                "static)\n");
    return 0;
}
