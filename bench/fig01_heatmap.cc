/**
 * @file
 * Fig. 1 — Access-frequency heatmaps of 50 sampled pages over time for
 * four workload profiles (RUBiS, SPECpower-80%, xalan, lusearch).
 *
 * Prints an ASCII rendering of each heatmap and writes one CSV per
 * profile (fig01_<profile>.csv) with the full matrix.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "policies/static_tiering.hh"
#include "trace/heatmap.hh"
#include "workloads/synthetic.hh"

using namespace mclock;

int
main(int argc, char **argv)
{
    const auto duration =
        bench::argValue(argc, argv, "--seconds", 120);

    std::printf("=== Fig. 1: page access heatmaps "
                "(50 sampled pages x time) ===\n");
    for (auto profile :
         {workloads::SyntheticProfile::Rubis,
          workloads::SyntheticProfile::SpecPower,
          workloads::SyntheticProfile::Xalan,
          workloads::SyntheticProfile::Lusearch}) {
        sim::MachineConfig machine = bench::ycsbMachine();
        sim::Simulator sim(machine);
        sim.setPolicy(
            std::make_unique<policies::StaticTieringPolicy>());

        workloads::SyntheticConfig cfg;
        cfg.numPages = 2000;
        cfg.duration = duration * 1_s;
        workloads::SyntheticWorkload workload(sim, profile, cfg);
        trace::AccessTrace trace;
        workload.run(&trace);

        trace::HeatmapConfig hmCfg;
        hmCfg.sampledPages = 50;
        hmCfg.timeBuckets = 64;
        const trace::Heatmap hm =
            trace::Heatmap::build(trace, cfg.numPages, hmCfg);

        const char *name = workloads::syntheticProfileName(profile);
        std::printf("\n--- (%s): %zu traced accesses ---\n", name,
                    trace.size());
        hm.render(std::cout);

        CsvWriter csv(std::string("fig01_") + name + ".csv");
        hm.writeCsv(csv);
        std::printf("wrote fig01_%s.csv\n", name);
    }
    std::printf("\nExpected shape: rows split into always-hot "
                "(DRAM-friendly), sparse (infrequent), and bimodal "
                "phase-hot (Tier-friendly) pages.\n");
    return 0;
}
