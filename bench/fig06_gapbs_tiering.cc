/**
 * @file
 * Fig. 6 — GAPBS execution time (BFS, SSSP, PR, CC, BC, TC) normalised
 * to static tiering, for MULTI-CLOCK, Nimble, AT-CPM, AT-OPM.
 *
 * Expected shape (paper): smaller gains than YCSB; MULTI-CLOCK 4-68%
 * faster than static with the largest gain on SSSP; AT-CPM close to
 * static (its performance depends on initial placement) and may edge
 * out MULTI-CLOCK slightly on BFS/BC; AT-OPM below AT-CPM.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hh"

using namespace mclock;
using workloads::gapbs::Kernel;

int
main(int argc, char **argv)
{
    auto cfg = bench::gapbsBenchConfig();
    cfg.trials = static_cast<unsigned>(
        bench::argValue(argc, argv, "--trials", cfg.trials));
    const auto machine = bench::gapbsMachine();
    const auto opts = bench::benchPolicyOptions();

    const std::vector<Kernel> kernels{Kernel::BFS, Kernel::SSSP,
                                      Kernel::PR,  Kernel::CC,
                                      Kernel::BC,  Kernel::TC};

    std::printf("=== Fig. 6: GAPBS avg execution time per trial, "
                "normalised to static tiering (lower is better) ===\n");
    std::printf("kron scale=%u degree=%u trials=%u\n", cfg.scale,
                cfg.degree, cfg.trials);
    std::printf("%-12s", "policy");
    for (Kernel k : kernels)
        std::printf(" %8s", workloads::gapbs::kernelName(k));
    std::printf("\n");

    CsvWriter csv("fig06_gapbs_tiering.csv");
    std::vector<std::string> header{"policy"};
    for (Kernel k : kernels)
        header.push_back(workloads::gapbs::kernelName(k));
    csv.writeHeader(header);

    std::map<Kernel, double> baseline;
    for (const auto &policy : policies::tieredPolicyNames()) {
        std::printf("%-12s", policy.c_str());
        std::vector<std::string> row{policy};
        for (Kernel k : kernels) {
            sim::Simulator sim(machine);
            sim.setPolicy(policies::makePolicy(policy, opts));
            workloads::gapbs::GapbsDriver driver(sim, cfg);
            const auto r = driver.run(k);
            const double secs = r.avgTrialSeconds();
            if (policy == "static")
                baseline[k] = secs;
            const double norm = secs / baseline[k];
            std::printf(" %8.3f", norm);
            std::fflush(stdout);
            row.push_back(std::to_string(norm));
        }
        std::printf("\n");
        csv.writeRow(row);
    }
    std::printf("\nwrote fig06_gapbs_tiering.csv (execution time "
                "normalised to static)\n");
    return 0;
}
