/**
 * @file
 * Ablation — LLC size vs tiering benefit.
 *
 * The on-chip cache competes with DRAM for the hot set: every line it
 * absorbs is an access the memory tiers never see. This sweep shows
 * MULTI-CLOCK's gain over static tiering shrinking as the LLC grows
 * toward the hot-band size — the reason the benches scale the LLC with
 * the footprint (EXPERIMENTS.md, scaling note 3).
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace mclock;

namespace {

double
runYcsbA(const std::string &policy, std::size_t llcBytes,
         const workloads::YcsbConfig &ycsb)
{
    sim::MachineConfig machine = bench::ycsbMachine();
    machine.cache.sizeBytes = llcBytes;
    machine.cache.ways = 8;
    sim::Simulator sim(machine);
    sim.setPolicy(
        policies::makePolicy(policy, bench::benchPolicyOptions()));
    workloads::YcsbDriver driver(sim, ycsb);
    driver.load();
    return driver.run(workloads::YcsbWorkload::A)
        .throughputOpsPerSec();
}

}  // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t ops =
        bench::argValue(argc, argv, "--ops", 800000);
    const auto ycsb = bench::ycsbBenchConfig(ops);

    const std::vector<std::pair<const char *, std::size_t>> sizes{
        {"64KiB", 64_KiB},
        {"256KiB", 256_KiB},
        {"1MiB", 1_MiB},
        {"4MiB", 4_MiB},
    };

    std::printf("=== Ablation: LLC size vs tiering benefit (YCSB-A) "
                "===\n");
    std::printf("%-8s %14s %14s %10s\n", "LLC", "static(kops)",
                "mclock(kops)", "speedup");
    CsvWriter csv("ablation_llc.csv");
    csv.writeHeader({"llc", "static_kops", "multiclock_kops",
                     "speedup"});

    for (const auto &[label, bytes] : sizes) {
        const double st = runYcsbA("static", bytes, ycsb) / 1e3;
        const double mc = runYcsbA("multiclock", bytes, ycsb) / 1e3;
        std::printf("%-8s %14.1f %14.1f %10.3f\n", label, st, mc,
                    mc / st);
        csv.writeRow({label, std::to_string(st), std::to_string(mc),
                      std::to_string(mc / st)});
    }
    std::printf("\nExpected: the larger the LLC relative to the hot "
                "band, the smaller the benefit of page placement.\n"
                "wrote ablation_llc.csv\n");
    return 0;
}
