/**
 * @file
 * Compatibility wrapper: LLC ablation now lives in the scenario registry
 * (src/harness). Same flags, same output; see mclock_bench for the
 * unified driver.
 */

#include "harness/legacy_main.hh"

int
main(int argc, char **argv)
{
    return mclock::harness::legacyMain("ablation_llc", argc, argv);
}
