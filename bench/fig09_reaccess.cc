/**
 * @file
 * Fig. 9 — Percentage of recently promoted pages re-accessed from the
 * DRAM tier, per (scaled) 20 s window, MULTI-CLOCK vs Nimble, YCSB-A.
 *
 * Expected shape (paper): MULTI-CLOCK's promoted pages show a ~15
 * percentage-point higher re-access rate — it promotes fewer pages,
 * but the right ones.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace mclock;

namespace {

std::vector<sim::MetricsWindow>
runWindows(const std::string &policy, std::uint64_t ops)
{
    sim::Simulator sim(bench::ycsbMachine());
    sim.setPolicy(
        policies::makePolicy(policy, bench::benchPolicyOptions()));
    auto ycsb = bench::ycsbBenchConfig(ops);
    workloads::YcsbDriver driver(sim, ycsb);
    driver.load();
    driver.run(workloads::YcsbWorkload::A);
    return sim.metrics().windows();
}

double
overallRate(const std::vector<sim::MetricsWindow> &windows)
{
    std::uint64_t promoted = 0, reaccessed = 0;
    for (const auto &w : windows) {
        promoted += w.promotions;
        reaccessed += w.promotedReaccessed;
    }
    return promoted ? 100.0 * static_cast<double>(reaccessed) /
                          static_cast<double>(promoted)
                    : 0.0;
}

}  // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t ops =
        bench::argValue(argc, argv, "--ops", 4000000);

    std::printf("=== Fig. 9: re-access %% of recently promoted pages "
                "per 20 s (scaled) window, YCSB-A ===\n");
    const auto mclock = runWindows("multiclock", ops);
    const auto nimble = runWindows("nimble", ops);
    const std::size_t windows = std::min(mclock.size(), nimble.size());

    CsvWriter csv("fig09_reaccess.csv");
    csv.writeHeader({"window", "multiclock_pct", "nimble_pct"});
    std::printf("%-8s %14s %14s\n", "window", "multiclock(%)",
                "nimble(%)");
    for (std::size_t w = 0; w < windows; ++w) {
        if (mclock[w].promotions == 0 && nimble[w].promotions == 0)
            continue;
        std::printf("%-8zu %14.1f %14.1f\n", w,
                    mclock[w].reaccessPercent(),
                    nimble[w].reaccessPercent());
        csv.writeRow({std::to_string(w),
                      std::to_string(mclock[w].reaccessPercent()),
                      std::to_string(nimble[w].reaccessPercent())});
    }
    std::printf("%-8s %14.1f %14.1f\n", "overall", overallRate(mclock),
                overallRate(nimble));
    std::printf("\nExpected shape: MULTI-CLOCK's re-access %% exceeds "
                "Nimble's (paper: ~15 points).\n"
                "wrote fig09_reaccess.csv\n");
    return 0;
}
