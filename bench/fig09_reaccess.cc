/**
 * @file
 * Compatibility wrapper: Fig. 9 re-access quality now lives in the scenario registry
 * (src/harness). Same flags, same output; see mclock_bench for the
 * unified driver.
 */

#include "harness/legacy_main.hh"

int
main(int argc, char **argv)
{
    return mclock::harness::legacyMain("fig09", argc, argv);
}
