/**
 * @file
 * Fig. 7 — Memory-mode comparison with the workload sized at 4x the
 * DRAM capacity: (a) YCSB throughput, (b) GAPBS PageRank execution
 * time, both normalised to static tiering.
 *
 * Expected shape (paper): MULTI-CLOCK within -2%..+9% of Memory-mode
 * on YCSB and ~21% faster on PageRank, while exposing the full
 * DRAM+PM capacity instead of hiding the DRAM.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hh"

using namespace mclock;

namespace {

double
runYcsbA(const std::string &policy, const sim::MachineConfig &machine,
         const workloads::YcsbConfig &ycsb,
         const policies::PolicyOptions &opts)
{
    sim::Simulator sim(machine);
    sim.setPolicy(policies::makePolicy(policy, opts));
    workloads::YcsbDriver driver(sim, ycsb);
    driver.load();
    std::map<std::string, double> tput;
    for (const auto &r : driver.runPaperSequence())
        tput[r.workload] = r.throughputOpsPerSec();
    return tput.at("A");
}

double
runPagerank(const std::string &policy,
            const sim::MachineConfig &machine,
            const policies::PolicyOptions &opts)
{
    sim::Simulator sim(machine);
    sim.setPolicy(policies::makePolicy(policy, opts));
    workloads::gapbs::GapbsConfig cfg;
    cfg.scale = 16;   // footprint ~4x the 8 MiB DRAM-equivalent
    cfg.degree = 20;
    cfg.trials = 2;
    cfg.prIters = 6;
    workloads::gapbs::GapbsDriver driver(sim, cfg);
    return driver.run(workloads::gapbs::Kernel::PR).avgTrialSeconds();
}

}  // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t ops =
        bench::argValue(argc, argv, "--ops", 1200000);
    // Workload sized ~4x DRAM (paper: Memory-mode uses all DRAM as
    // cache, so a competitive comparison needs footprint >> cache).
    workloads::YcsbConfig ycsb;
    ycsb.recordCount = 60000;  // ~64 MiB items vs 16 MiB DRAM
    ycsb.valueBytes = 1024;
    ycsb.opsPerWorkload = ops;

    auto opts = bench::benchPolicyOptions();
    const auto tiered = bench::memModeTieredMachine();
    const auto pmOnly = bench::memModePmMachine();
    opts.dramCacheBytes = tiered.tierBytes(TierKind::Dram);

    std::printf("=== Fig. 7(a): YCSB-A throughput, workload ~4x DRAM, "
                "normalised to static ===\n");
    const double staticTput = runYcsbA("static", tiered, ycsb, opts);
    const double mclockTput =
        runYcsbA("multiclock", tiered, ycsb, opts);
    const double mmTput = runYcsbA("memory-mode", pmOnly, ycsb, opts);
    std::printf("%-12s %8.3f\n", "static", 1.0);
    std::printf("%-12s %8.3f\n", "multiclock", mclockTput / staticTput);
    std::printf("%-12s %8.3f\n", "memory-mode", mmTput / staticTput);

    std::printf("\n=== Fig. 7(b): PageRank execution time, normalised "
                "to static (lower is better) ===\n");
    sim::MachineConfig gTiered = bench::gapbsMachine();
    gTiered.nodes = {{TierKind::Dram, 8_MiB}, {TierKind::Pmem, 48_MiB}};
    sim::MachineConfig gPm = gTiered;
    gPm.nodes = {{TierKind::Pmem, 48_MiB}};
    auto gOpts = opts;
    gOpts.dramCacheBytes = 8_MiB;
    const double staticPr = runPagerank("static", gTiered, gOpts);
    const double mclockPr = runPagerank("multiclock", gTiered, gOpts);
    const double mmPr = runPagerank("memory-mode", gPm, gOpts);
    std::printf("%-12s %8.3f\n", "static", 1.0);
    std::printf("%-12s %8.3f\n", "multiclock", mclockPr / staticPr);
    std::printf("%-12s %8.3f\n", "memory-mode", mmPr / staticPr);

    CsvWriter csv("fig07_memory_mode.csv");
    csv.writeHeader({"experiment", "static", "multiclock",
                     "memory_mode"});
    csv.writeRow({"ycsb_a_norm_tput", "1.0",
                  std::to_string(mclockTput / staticTput),
                  std::to_string(mmTput / staticTput)});
    csv.writeRow({"pagerank_norm_time", "1.0",
                  std::to_string(mclockPr / staticPr),
                  std::to_string(mmPr / staticPr)});
    std::printf("\nwrote fig07_memory_mode.csv\n");
    return 0;
}
