/**
 * @file
 * Fig. 8 — Pages promoted per (scaled) 20 s window over the run, for
 * MULTI-CLOCK and Nimble on YCSB workload A.
 *
 * Expected shape (paper): Nimble promotes more pages than MULTI-CLOCK
 * in (almost) every window.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace mclock;

namespace {

std::vector<sim::MetricsWindow>
runWindows(const std::string &policy, std::uint64_t ops)
{
    sim::Simulator sim(bench::ycsbMachine());
    sim.setPolicy(
        policies::makePolicy(policy, bench::benchPolicyOptions()));
    auto ycsb = bench::ycsbBenchConfig(ops);
    workloads::YcsbDriver driver(sim, ycsb);
    driver.load();
    driver.run(workloads::YcsbWorkload::A);
    return sim.metrics().windows();
}

}  // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t ops =
        bench::argValue(argc, argv, "--ops", 4000000);

    std::printf("=== Fig. 8: pages promoted per 20 s (scaled) window, "
                "YCSB-A ===\n");
    const auto mclock = runWindows("multiclock", ops);
    const auto nimble = runWindows("nimble", ops);
    const std::size_t windows = std::min(mclock.size(), nimble.size());

    CsvWriter csv("fig08_promotions.csv");
    csv.writeHeader({"window", "multiclock", "nimble"});
    std::printf("%-8s %12s %12s\n", "window", "multiclock", "nimble");
    std::uint64_t mcTotal = 0, nbTotal = 0;
    for (std::size_t w = 0; w < windows; ++w) {
        std::printf("%-8zu %12llu %12llu\n", w,
                    static_cast<unsigned long long>(
                        mclock[w].promotions),
                    static_cast<unsigned long long>(
                        nimble[w].promotions));
        csv.writeRow({std::to_string(w),
                      std::to_string(mclock[w].promotions),
                      std::to_string(nimble[w].promotions)});
        mcTotal += mclock[w].promotions;
        nbTotal += nimble[w].promotions;
    }
    std::printf("%-8s %12llu %12llu\n", "total",
                static_cast<unsigned long long>(mcTotal),
                static_cast<unsigned long long>(nbTotal));
    std::printf("\nExpected shape: Nimble promotes more pages than "
                "MULTI-CLOCK.\nwrote fig08_promotions.csv\n");
    return 0;
}
