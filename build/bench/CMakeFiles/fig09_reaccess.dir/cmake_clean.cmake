file(REMOVE_RECURSE
  "CMakeFiles/fig09_reaccess.dir/fig09_reaccess.cc.o"
  "CMakeFiles/fig09_reaccess.dir/fig09_reaccess.cc.o.d"
  "fig09_reaccess"
  "fig09_reaccess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_reaccess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
