# Empty dependencies file for fig09_reaccess.
# This may be replaced when dependencies are built.
