# Empty dependencies file for fig06_gapbs_tiering.
# This may be replaced when dependencies are built.
