file(REMOVE_RECURSE
  "CMakeFiles/fig06_gapbs_tiering.dir/fig06_gapbs_tiering.cc.o"
  "CMakeFiles/fig06_gapbs_tiering.dir/fig06_gapbs_tiering.cc.o.d"
  "fig06_gapbs_tiering"
  "fig06_gapbs_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_gapbs_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
