# Empty dependencies file for fig02_frequency.
# This may be replaced when dependencies are built.
