file(REMOVE_RECURSE
  "CMakeFiles/fig02_frequency.dir/fig02_frequency.cc.o"
  "CMakeFiles/fig02_frequency.dir/fig02_frequency.cc.o.d"
  "fig02_frequency"
  "fig02_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
