# Empty compiler generated dependencies file for ablation_tracking_cost.
# This may be replaced when dependencies are built.
