file(REMOVE_RECURSE
  "CMakeFiles/ablation_tracking_cost.dir/ablation_tracking_cost.cc.o"
  "CMakeFiles/ablation_tracking_cost.dir/ablation_tracking_cost.cc.o.d"
  "ablation_tracking_cost"
  "ablation_tracking_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tracking_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
