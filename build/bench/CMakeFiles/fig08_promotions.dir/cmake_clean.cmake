file(REMOVE_RECURSE
  "CMakeFiles/fig08_promotions.dir/fig08_promotions.cc.o"
  "CMakeFiles/fig08_promotions.dir/fig08_promotions.cc.o.d"
  "fig08_promotions"
  "fig08_promotions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_promotions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
