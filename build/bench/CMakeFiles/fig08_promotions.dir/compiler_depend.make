# Empty compiler generated dependencies file for fig08_promotions.
# This may be replaced when dependencies are built.
