file(REMOVE_RECURSE
  "CMakeFiles/ablation_promote_list.dir/ablation_promote_list.cc.o"
  "CMakeFiles/ablation_promote_list.dir/ablation_promote_list.cc.o.d"
  "ablation_promote_list"
  "ablation_promote_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_promote_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
