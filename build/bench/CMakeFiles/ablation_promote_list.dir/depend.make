# Empty dependencies file for ablation_promote_list.
# This may be replaced when dependencies are built.
