# Empty compiler generated dependencies file for fig05_ycsb_tiering.
# This may be replaced when dependencies are built.
