file(REMOVE_RECURSE
  "CMakeFiles/fig05_ycsb_tiering.dir/fig05_ycsb_tiering.cc.o"
  "CMakeFiles/fig05_ycsb_tiering.dir/fig05_ycsb_tiering.cc.o.d"
  "fig05_ycsb_tiering"
  "fig05_ycsb_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ycsb_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
