file(REMOVE_RECURSE
  "CMakeFiles/ablation_ratio.dir/ablation_ratio.cc.o"
  "CMakeFiles/ablation_ratio.dir/ablation_ratio.cc.o.d"
  "ablation_ratio"
  "ablation_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
