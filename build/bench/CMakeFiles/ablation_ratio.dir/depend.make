# Empty dependencies file for ablation_ratio.
# This may be replaced when dependencies are built.
