# Empty compiler generated dependencies file for fig10_scan_interval.
# This may be replaced when dependencies are built.
