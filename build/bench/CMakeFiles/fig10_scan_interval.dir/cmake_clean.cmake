file(REMOVE_RECURSE
  "CMakeFiles/fig10_scan_interval.dir/fig10_scan_interval.cc.o"
  "CMakeFiles/fig10_scan_interval.dir/fig10_scan_interval.cc.o.d"
  "fig10_scan_interval"
  "fig10_scan_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scan_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
