# Empty dependencies file for tab01_features.
# This may be replaced when dependencies are built.
