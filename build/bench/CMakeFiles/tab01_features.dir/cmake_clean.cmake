file(REMOVE_RECURSE
  "CMakeFiles/tab01_features.dir/tab01_features.cc.o"
  "CMakeFiles/tab01_features.dir/tab01_features.cc.o.d"
  "tab01_features"
  "tab01_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
