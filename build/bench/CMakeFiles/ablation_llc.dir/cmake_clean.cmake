file(REMOVE_RECURSE
  "CMakeFiles/ablation_llc.dir/ablation_llc.cc.o"
  "CMakeFiles/ablation_llc.dir/ablation_llc.cc.o.d"
  "ablation_llc"
  "ablation_llc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
