file(REMOVE_RECURSE
  "CMakeFiles/fig01_heatmap.dir/fig01_heatmap.cc.o"
  "CMakeFiles/fig01_heatmap.dir/fig01_heatmap.cc.o.d"
  "fig01_heatmap"
  "fig01_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
