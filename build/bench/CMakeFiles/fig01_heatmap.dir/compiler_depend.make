# Empty compiler generated dependencies file for fig01_heatmap.
# This may be replaced when dependencies are built.
