# Empty dependencies file for fig07_memory_mode.
# This may be replaced when dependencies are built.
