file(REMOVE_RECURSE
  "CMakeFiles/fig07_memory_mode.dir/fig07_memory_mode.cc.o"
  "CMakeFiles/fig07_memory_mode.dir/fig07_memory_mode.cc.o.d"
  "fig07_memory_mode"
  "fig07_memory_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_memory_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
