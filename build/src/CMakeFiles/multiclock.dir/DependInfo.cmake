
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/csv.cc" "src/CMakeFiles/multiclock.dir/base/csv.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/base/csv.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/multiclock.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/base/logging.cc.o.d"
  "/root/repo/src/base/rng.cc" "src/CMakeFiles/multiclock.dir/base/rng.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/base/rng.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/CMakeFiles/multiclock.dir/base/stats.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/base/stats.cc.o.d"
  "/root/repo/src/core/kpromoted.cc" "src/CMakeFiles/multiclock.dir/core/kpromoted.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/core/kpromoted.cc.o.d"
  "/root/repo/src/core/multiclock.cc" "src/CMakeFiles/multiclock.dir/core/multiclock.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/core/multiclock.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/multiclock.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram_cache.cc" "src/CMakeFiles/multiclock.dir/mem/dram_cache.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/mem/dram_cache.cc.o.d"
  "/root/repo/src/mem/memory_config.cc" "src/CMakeFiles/multiclock.dir/mem/memory_config.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/mem/memory_config.cc.o.d"
  "/root/repo/src/pfra/lru_lists.cc" "src/CMakeFiles/multiclock.dir/pfra/lru_lists.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/pfra/lru_lists.cc.o.d"
  "/root/repo/src/pfra/vmscan.cc" "src/CMakeFiles/multiclock.dir/pfra/vmscan.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/pfra/vmscan.cc.o.d"
  "/root/repo/src/pfra/watermarks.cc" "src/CMakeFiles/multiclock.dir/pfra/watermarks.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/pfra/watermarks.cc.o.d"
  "/root/repo/src/policies/amp.cc" "src/CMakeFiles/multiclock.dir/policies/amp.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/policies/amp.cc.o.d"
  "/root/repo/src/policies/autotiering.cc" "src/CMakeFiles/multiclock.dir/policies/autotiering.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/policies/autotiering.cc.o.d"
  "/root/repo/src/policies/factory.cc" "src/CMakeFiles/multiclock.dir/policies/factory.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/policies/factory.cc.o.d"
  "/root/repo/src/policies/memory_mode.cc" "src/CMakeFiles/multiclock.dir/policies/memory_mode.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/policies/memory_mode.cc.o.d"
  "/root/repo/src/policies/nimble.cc" "src/CMakeFiles/multiclock.dir/policies/nimble.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/policies/nimble.cc.o.d"
  "/root/repo/src/policies/policy.cc" "src/CMakeFiles/multiclock.dir/policies/policy.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/policies/policy.cc.o.d"
  "/root/repo/src/policies/static_tiering.cc" "src/CMakeFiles/multiclock.dir/policies/static_tiering.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/policies/static_tiering.cc.o.d"
  "/root/repo/src/sim/daemon.cc" "src/CMakeFiles/multiclock.dir/sim/daemon.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/sim/daemon.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/multiclock.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/memory_system.cc" "src/CMakeFiles/multiclock.dir/sim/memory_system.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/sim/memory_system.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/multiclock.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/migration.cc" "src/CMakeFiles/multiclock.dir/sim/migration.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/sim/migration.cc.o.d"
  "/root/repo/src/sim/node.cc" "src/CMakeFiles/multiclock.dir/sim/node.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/sim/node.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/multiclock.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/sim/simulator.cc.o.d"
  "/root/repo/src/trace/access_trace.cc" "src/CMakeFiles/multiclock.dir/trace/access_trace.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/trace/access_trace.cc.o.d"
  "/root/repo/src/trace/heatmap.cc" "src/CMakeFiles/multiclock.dir/trace/heatmap.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/trace/heatmap.cc.o.d"
  "/root/repo/src/trace/window_analysis.cc" "src/CMakeFiles/multiclock.dir/trace/window_analysis.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/trace/window_analysis.cc.o.d"
  "/root/repo/src/vm/address_space.cc" "src/CMakeFiles/multiclock.dir/vm/address_space.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/vm/address_space.cc.o.d"
  "/root/repo/src/vm/page.cc" "src/CMakeFiles/multiclock.dir/vm/page.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/vm/page.cc.o.d"
  "/root/repo/src/vm/swap.cc" "src/CMakeFiles/multiclock.dir/vm/swap.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/vm/swap.cc.o.d"
  "/root/repo/src/workloads/gapbs/bc.cc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/bc.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/bc.cc.o.d"
  "/root/repo/src/workloads/gapbs/bfs.cc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/bfs.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/bfs.cc.o.d"
  "/root/repo/src/workloads/gapbs/builder.cc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/builder.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/builder.cc.o.d"
  "/root/repo/src/workloads/gapbs/cc.cc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/cc.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/cc.cc.o.d"
  "/root/repo/src/workloads/gapbs/driver.cc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/driver.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/driver.cc.o.d"
  "/root/repo/src/workloads/gapbs/generator.cc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/generator.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/generator.cc.o.d"
  "/root/repo/src/workloads/gapbs/graph.cc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/graph.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/graph.cc.o.d"
  "/root/repo/src/workloads/gapbs/pr.cc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/pr.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/pr.cc.o.d"
  "/root/repo/src/workloads/gapbs/sssp.cc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/sssp.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/sssp.cc.o.d"
  "/root/repo/src/workloads/gapbs/tc.cc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/tc.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/gapbs/tc.cc.o.d"
  "/root/repo/src/workloads/kvstore.cc" "src/CMakeFiles/multiclock.dir/workloads/kvstore.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/kvstore.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/CMakeFiles/multiclock.dir/workloads/synthetic.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/synthetic.cc.o.d"
  "/root/repo/src/workloads/ycsb.cc" "src/CMakeFiles/multiclock.dir/workloads/ycsb.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/ycsb.cc.o.d"
  "/root/repo/src/workloads/zipf.cc" "src/CMakeFiles/multiclock.dir/workloads/zipf.cc.o" "gcc" "src/CMakeFiles/multiclock.dir/workloads/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
