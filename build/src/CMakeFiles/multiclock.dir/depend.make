# Empty dependencies file for multiclock.
# This may be replaced when dependencies are built.
