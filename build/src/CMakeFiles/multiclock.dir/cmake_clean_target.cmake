file(REMOVE_RECURSE
  "libmulticlock.a"
)
