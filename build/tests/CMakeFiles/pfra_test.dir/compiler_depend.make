# Empty compiler generated dependencies file for pfra_test.
# This may be replaced when dependencies are built.
