file(REMOVE_RECURSE
  "CMakeFiles/pfra_test.dir/pfra_test.cc.o"
  "CMakeFiles/pfra_test.dir/pfra_test.cc.o.d"
  "pfra_test"
  "pfra_test.pdb"
  "pfra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
