file(REMOVE_RECURSE
  "CMakeFiles/gapbs_test.dir/gapbs_test.cc.o"
  "CMakeFiles/gapbs_test.dir/gapbs_test.cc.o.d"
  "gapbs_test"
  "gapbs_test.pdb"
  "gapbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gapbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
