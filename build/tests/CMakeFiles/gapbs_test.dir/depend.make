# Empty dependencies file for gapbs_test.
# This may be replaced when dependencies are built.
