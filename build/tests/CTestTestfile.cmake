# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/pfra_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/policies_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/gapbs_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
