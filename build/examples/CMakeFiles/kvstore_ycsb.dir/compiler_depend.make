# Empty compiler generated dependencies file for kvstore_ycsb.
# This may be replaced when dependencies are built.
