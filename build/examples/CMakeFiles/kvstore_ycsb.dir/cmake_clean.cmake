file(REMOVE_RECURSE
  "CMakeFiles/kvstore_ycsb.dir/kvstore_ycsb.cpp.o"
  "CMakeFiles/kvstore_ycsb.dir/kvstore_ycsb.cpp.o.d"
  "kvstore_ycsb"
  "kvstore_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
