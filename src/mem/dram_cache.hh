/**
 * @file
 * Memory-side DRAM cache model for persistent memory "Memory-mode".
 *
 * In Memory-mode (2LM), the memory controller uses all of a socket's DRAM
 * as a direct-mapped, 64 B-granularity cache in front of the Optane
 * DIMMs; the OS sees only the PM capacity. This model reproduces that
 * organisation: a direct-mapped tag store sized by the DRAM capacity,
 * indexed by the cached PM physical address.
 */

#ifndef MCLOCK_MEM_DRAM_CACHE_HH_
#define MCLOCK_MEM_DRAM_CACHE_HH_

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "mem/memory_config.hh"

namespace mclock {

/** Outcome of a memory-mode access, with the memory-side latency. */
struct DramCacheResult
{
    bool hit;
    SimTime latency;  ///< total memory-side latency for this access
};

/** Direct-mapped DRAM cache in front of PM (Memory-mode / 2LM). */
class DramCache
{
  public:
    /**
     * @param dramBytes capacity of the DRAM acting as cache
     * @param cfg       timing parameters (DRAM and PM tier timings)
     * @param lineBytes cache-block granularity (64 B on real hardware)
     */
    DramCache(std::size_t dramBytes, const MemoryConfig &cfg,
              unsigned lineBytes = 64);

    /**
     * Access the PM physical address @p pa.
     *
     * Hit: served at DRAM latency. Miss: served at PM latency plus a fill
     * into DRAM; if the evicted block was dirty it is first written back
     * to PM. Fill/writeback transfer costs are charged at line
     * granularity using tier bandwidths.
     */
    DramCacheResult access(Paddr pa, bool isWrite);

    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    double hitRate() const;

  private:
    struct Entry
    {
        std::uint64_t tag = kInvalidTag;
        bool dirty = false;
    };

    static constexpr std::uint64_t kInvalidTag = ~0ull;

    const MemoryConfig &cfg_;
    unsigned lineShift_;
    std::size_t numEntries_;
    std::vector<Entry> entries_;
    SimTime fillCost_;       ///< PM read -> DRAM write of one line
    SimTime writebackCost_;  ///< DRAM read -> PM write of one line
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

}  // namespace mclock

#endif  // MCLOCK_MEM_DRAM_CACHE_HH_
