#include "mem/dram_cache.hh"

#include <bit>

#include "base/logging.hh"

namespace mclock {

DramCache::DramCache(std::size_t dramBytes, const MemoryConfig &cfg,
                     unsigned lineBytes)
    : cfg_(cfg),
      lineShift_(static_cast<unsigned>(std::countr_zero(
          static_cast<std::size_t>(lineBytes)))),
      numEntries_(dramBytes / lineBytes)
{
    MCLOCK_ASSERT(lineBytes > 0 && (lineBytes & (lineBytes - 1)) == 0);
    MCLOCK_ASSERT(numEntries_ > 0 && (numEntries_ & (numEntries_ - 1)) == 0);
    entries_.assign(numEntries_, Entry{});
    // The near-memory cache sits in the fastest tier of the table and
    // fronts the slowest (far-memory) tier.
    const TierRank near = 0;
    const TierRank far = static_cast<TierRank>(cfg_.numTiers()) - 1;
    fillCost_ = cfg_.copyLatency(far, near, lineBytes);
    writebackCost_ = cfg_.copyLatency(near, far, lineBytes);
}

DramCacheResult
DramCache::access(Paddr pa, bool isWrite)
{
    const std::uint64_t block = pa >> lineShift_;
    const std::size_t idx = block & (numEntries_ - 1);
    Entry &e = entries_[idx];

    const TierTiming &near = cfg_.timing(0);
    const TierTiming &far =
        cfg_.timing(static_cast<TierRank>(cfg_.numTiers()) - 1);
    if (e.tag == block) {
        ++hits_;
        e.dirty = e.dirty || isWrite;
        const SimTime lat =
            isWrite ? near.storeLatency : near.loadLatency;
        return {true, lat};
    }

    ++misses_;
    // 2LM misses are serial: the near-memory tag probe in DRAM comes
    // before the far-memory access.
    SimTime lat = near.loadLatency +
                  (isWrite ? far.storeLatency : far.loadLatency);
    if (e.tag != kInvalidTag && e.dirty) {
        ++writebacks_;
        lat += writebackCost_;
    }
    lat += fillCost_;
    e.tag = block;
    e.dirty = isWrite;
    return {false, lat};
}

void
DramCache::reset()
{
    entries_.assign(entries_.size(), Entry{});
    hits_ = misses_ = writebacks_ = 0;
}

double
DramCache::hitRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
}

}  // namespace mclock
