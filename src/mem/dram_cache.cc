#include "mem/dram_cache.hh"

#include <bit>

#include "base/logging.hh"

namespace mclock {

DramCache::DramCache(std::size_t dramBytes, const MemoryConfig &cfg,
                     unsigned lineBytes)
    : cfg_(cfg),
      lineShift_(static_cast<unsigned>(std::countr_zero(
          static_cast<std::size_t>(lineBytes)))),
      numEntries_(dramBytes / lineBytes)
{
    MCLOCK_ASSERT(lineBytes > 0 && (lineBytes & (lineBytes - 1)) == 0);
    MCLOCK_ASSERT(numEntries_ > 0 && (numEntries_ & (numEntries_ - 1)) == 0);
    entries_.assign(numEntries_, Entry{});
    fillCost_ = cfg_.copyLatency(TierKind::Pmem, TierKind::Dram, lineBytes);
    writebackCost_ =
        cfg_.copyLatency(TierKind::Dram, TierKind::Pmem, lineBytes);
}

DramCacheResult
DramCache::access(Paddr pa, bool isWrite)
{
    const std::uint64_t block = pa >> lineShift_;
    const std::size_t idx = block & (numEntries_ - 1);
    Entry &e = entries_[idx];

    if (e.tag == block) {
        ++hits_;
        e.dirty = e.dirty || isWrite;
        const SimTime lat = isWrite ? cfg_.dram.storeLatency
                                    : cfg_.dram.loadLatency;
        return {true, lat};
    }

    ++misses_;
    // 2LM misses are serial: the near-memory tag probe in DRAM comes
    // before the far-memory access.
    SimTime lat = cfg_.dram.loadLatency +
                  (isWrite ? cfg_.pmem.storeLatency
                           : cfg_.pmem.loadLatency);
    if (e.tag != kInvalidTag && e.dirty) {
        ++writebacks_;
        lat += writebackCost_;
    }
    lat += fillCost_;
    e.tag = block;
    e.dirty = isWrite;
    return {false, lat};
}

void
DramCache::reset()
{
    entries_.assign(entries_.size(), Entry{});
    hits_ = misses_ = writebacks_ = 0;
}

double
DramCache::hitRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
}

}  // namespace mclock
