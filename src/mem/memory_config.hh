/**
 * @file
 * Timing and capacity parameters of the simulated hybrid-memory machine.
 *
 * The defaults model the paper's testbeds: DDR4-2666 DRAM DIMMs and Intel
 * Optane DC Persistent Memory DIMMs used in App-Direct (devdax/KMEM-DAX)
 * mode, with latencies taken from published Optane characterisation
 * studies. Capacities are scaled down ~1000x so experiments complete in
 * seconds while keeping the footprint:DRAM ratios of the paper intact.
 */

#ifndef MCLOCK_MEM_MEMORY_CONFIG_HH_
#define MCLOCK_MEM_MEMORY_CONFIG_HH_

#include <cstddef>
#include <cstdint>

#include "base/types.hh"
#include "base/units.hh"

namespace mclock {

/** Per-tier access timing. */
struct TierTiming
{
    SimTime loadLatency;   ///< ns for a 64 B load reaching this tier.
    SimTime storeLatency;  ///< ns for a 64 B store reaching this tier.
    /** Sustained copy bandwidth in bytes/ns (== GB/s) for reads. */
    double readBandwidth;
    /** Sustained copy bandwidth in bytes/ns (== GB/s) for writes. */
    double writeBandwidth;
};

/** Full timing model for the machine. */
struct MemoryConfig
{
    TierTiming dram{80_ns, 80_ns, 12.0, 12.0};
    // Optane DCPMM: ~300 ns random load; stores complete into the ADR
    // buffer faster but sustained write bandwidth is much lower.
    TierTiming pmem{300_ns, 200_ns, 6.6, 2.3};

    /** Cost of a minor page fault (first touch), excluding zero-fill. */
    SimTime minorFaultLatency = 1500_ns;
    /** Cost of a NUMA-hint software page fault (AutoTiering tracking). */
    SimTime hintFaultLatency = 1800_ns;
    /** Fixed per-page migration overhead: unmap, TLB shootdown, remap. */
    SimTime migrationFixedCost = 2500_ns;
    /** Cost of swapping a page out to / in from block storage. */
    SimTime swapLatency = 50_us;
    /** Daemon cost to scan one page (rmap walk + reference bit ops). */
    SimTime scanPerPageCost = 120_ns;
    /**
     * Multiplier applied to migrations performed synchronously on the
     * application's fault path (AutoTiering promotes in the hint-fault
     * handler). It models the page-lock stalls and TLB-shootdown storms
     * such migrations impose on the other application threads of the
     * paper's 32-core testbed, which a single-threaded driver cannot
     * observe directly.
     */
    double faultPathMigrationMultiplier = 4.0;
    /**
     * Fraction of background daemon work (scans, migrations performed by
     * kpromoted/kswapd on their own core) charged to application time to
     * model memory-bandwidth and lock contention. Work performed inline
     * on the application's fault path is always charged in full.
     */
    double backgroundInterference = 0.3;

    const TierTiming &timing(TierKind kind) const
    {
        return kind == TierKind::Dram ? dram : pmem;
    }

    /** Latency to copy @p bytes from tier @p src to tier @p dst. */
    SimTime copyLatency(TierKind src, TierKind dst, std::size_t bytes) const;

    /** Total cost of migrating one page from @p src to @p dst. */
    SimTime pageMigrationCost(TierKind src, TierKind dst) const;
};

/** LLC filter-cache parameters; models the on-chip cache hierarchy. */
struct CacheConfig
{
    bool enabled = true;
    std::size_t sizeBytes = 8_MiB;
    unsigned ways = 16;
    unsigned lineBytes = 64;
    SimTime hitLatency = 5_ns;
};

}  // namespace mclock

#endif  // MCLOCK_MEM_MEMORY_CONFIG_HH_
