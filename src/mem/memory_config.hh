/**
 * @file
 * Timing and capacity parameters of the simulated hybrid-memory machine.
 *
 * The defaults model the paper's testbeds: DDR4-2666 DRAM DIMMs and Intel
 * Optane DC Persistent Memory DIMMs used in App-Direct (devdax/KMEM-DAX)
 * mode, with latencies taken from published Optane characterisation
 * studies. Capacities are scaled down ~1000x so experiments complete in
 * seconds while keeping the footprint:DRAM ratios of the paper intact.
 */

#ifndef MCLOCK_MEM_MEMORY_CONFIG_HH_
#define MCLOCK_MEM_MEMORY_CONFIG_HH_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "base/units.hh"

namespace mclock {

/** Per-tier access timing. */
struct TierTiming
{
    SimTime loadLatency;   ///< ns for a 64 B load reaching this tier.
    SimTime storeLatency;  ///< ns for a 64 B store reaching this tier.
    /** Sustained copy bandwidth in bytes/ns (== GB/s) for reads. */
    double readBandwidth;
    /** Sustained copy bandwidth in bytes/ns (== GB/s) for writes. */
    double writeBandwidth;
};

/** One entry of the rank-ordered tier table. */
struct TierDesc
{
    std::string name;   ///< Human-readable tier name ("DRAM", "CXL", ...).
    TierTiming timing;  ///< Access timing for this tier.
};

/** Full timing model for the machine. */
struct MemoryConfig
{
    /**
     * Rank-ordered tier table; the vector index is the tier rank and
     * rank 0 is the fastest tier. The default reproduces the paper's
     * two-tier testbed: DDR4 DRAM at rank 0 and Optane DCPMM at rank 1
     * (~300 ns random load; stores complete into the ADR buffer faster
     * but sustained write bandwidth is much lower).
     */
    std::vector<TierDesc> tiers{
        {"DRAM", {80_ns, 80_ns, 12.0, 12.0}},
        {"PMEM", {300_ns, 200_ns, 6.6, 2.3}},
    };

    /** Cost of a minor page fault (first touch), excluding zero-fill. */
    SimTime minorFaultLatency = 1500_ns;
    /** Cost of a NUMA-hint software page fault (AutoTiering tracking). */
    SimTime hintFaultLatency = 1800_ns;
    /** Fixed per-page migration overhead: unmap, TLB shootdown, remap. */
    SimTime migrationFixedCost = 2500_ns;
    /** Cost of swapping a page out to / in from block storage. */
    SimTime swapLatency = 50_us;
    /** Daemon cost to scan one page (rmap walk + reference bit ops). */
    SimTime scanPerPageCost = 120_ns;
    /**
     * Multiplier applied to migrations performed synchronously on the
     * application's fault path (AutoTiering promotes in the hint-fault
     * handler). It models the page-lock stalls and TLB-shootdown storms
     * such migrations impose on the other application threads of the
     * paper's 32-core testbed, which a single-threaded driver cannot
     * observe directly.
     */
    double faultPathMigrationMultiplier = 4.0;
    /**
     * Fraction of background daemon work (scans, migrations performed by
     * kpromoted/kswapd on their own core) charged to application time to
     * model memory-bandwidth and lock contention. Work performed inline
     * on the application's fault path is always charged in full.
     */
    double backgroundInterference = 0.3;

    /** Number of tiers in the table. */
    std::size_t numTiers() const { return tiers.size(); }

    /** Full descriptor of the tier at @p rank. */
    const TierDesc &tier(TierRank rank) const
    {
        return tiers[static_cast<std::size_t>(rank)];
    }

    /** Human-readable name of the tier at @p rank. */
    const char *tierName(TierRank rank) const
    {
        return tier(rank).name.c_str();
    }

    const TierTiming &timing(TierRank rank) const
    {
        return tier(rank).timing;
    }

    /**
     * Latency to copy @p bytes from tier @p src to tier @p dst: the
     * transfer is paced by the slower of the source read and the
     * destination write bandwidth.
     */
    SimTime copyLatency(TierRank src, TierRank dst, std::size_t bytes) const;

    /** Total cost of migrating one page from @p src to @p dst. */
    SimTime pageMigrationCost(TierRank src, TierRank dst) const;
};

/** LLC filter-cache parameters; models the on-chip cache hierarchy. */
struct CacheConfig
{
    bool enabled = true;
    std::size_t sizeBytes = 8_MiB;
    unsigned ways = 16;
    unsigned lineBytes = 64;
    SimTime hitLatency = 5_ns;
};

}  // namespace mclock

#endif  // MCLOCK_MEM_MEMORY_CONFIG_HH_
