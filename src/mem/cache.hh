/**
 * @file
 * Set-associative last-level-cache model used as an access filter.
 *
 * The simulator models the entire on-chip cache hierarchy as a single
 * set-associative cache in front of memory. Its purpose is behavioural:
 * accesses that hit on-chip are invisible to the OS (no PTE accessed-bit
 * update on a TLB hit without a page walk) and do not benefit from page
 * placement, so a tiering policy should not be rewarded for promoting a
 * page whose lines are cache-resident. Lookups are tag-only; no data is
 * stored.
 */

#ifndef MCLOCK_MEM_CACHE_HH_
#define MCLOCK_MEM_CACHE_HH_

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "mem/memory_config.hh"

namespace mclock {

/** Result of a cache lookup. */
struct CacheResult
{
    bool hit;              ///< line present in the cache
    bool writebackDirty;   ///< a dirty victim was evicted (miss only)
};

/** Tag-only set-associative cache with per-set LRU replacement. */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &cfg);

    /**
     * Access the line containing physical address @p pa.
     * Allocates on miss (write-allocate); marks the line dirty on stores.
     */
    CacheResult access(Paddr pa, bool isWrite);

    /**
     * Invalidate every line belonging to the 4 KiB page at @p pageBase.
     * Called when a page migrates (its physical address changes) so stale
     * lines do not keep serving hits for the old location.
     */
    void invalidatePage(Paddr pageBase);

    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::size_t numSets() const { return numSets_; }
    unsigned ways() const { return ways_; }

  private:
    struct Line
    {
        std::uint64_t tag = kInvalidTag;
        std::uint32_t lastUse = 0;  ///< per-set LRU stamp
        bool dirty = false;
    };

    static constexpr std::uint64_t kInvalidTag = ~0ull;

    std::size_t setOf(Paddr pa) const;
    std::uint64_t tagOf(Paddr pa) const;

    unsigned lineShift_;
    std::size_t numSets_;
    unsigned ways_;
    std::vector<Line> lines_;       ///< numSets_ * ways_, set-major
    std::vector<std::uint32_t> useClock_;  ///< per-set LRU clock
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

}  // namespace mclock

#endif  // MCLOCK_MEM_CACHE_HH_
