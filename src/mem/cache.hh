/**
 * @file
 * Set-associative last-level-cache model used as an access filter.
 *
 * The simulator models the entire on-chip cache hierarchy as a single
 * set-associative cache in front of memory. Its purpose is behavioural:
 * accesses that hit on-chip are invisible to the OS (no PTE accessed-bit
 * update on a TLB hit without a page walk) and do not benefit from page
 * placement, so a tiering policy should not be rewarded for promoting a
 * page whose lines are cache-resident. Lookups are tag-only; no data is
 * stored.
 *
 * Hot-path layout: the model is on the critical path of every simulated
 * access, so the per-set state is stored structure-of-arrays — one
 * contiguous tag array, one LRU-stamp array, and a per-set dirty
 * bitmask — and scanned branchlessly (a full-width compare mask instead
 * of an early-exit loop, whose data-dependent branch mispredicts on
 * nearly every lookup). Each set additionally carries a small MRU entry
 * (last-accessed line's tag, way, the set's use clock, and the line's
 * pending LRU stamp); repeat accesses to the same line are served
 * entirely from that 16-byte record. The deferred lastUse value is
 * flushed before any other access reads or writes the set, so every
 * hit/miss/victim/writeback decision is identical to the eager
 * implementation.
 */

#ifndef MCLOCK_MEM_CACHE_HH_
#define MCLOCK_MEM_CACHE_HH_

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "mem/memory_config.hh"

namespace mclock {

/** Result of a cache lookup. */
struct CacheResult
{
    bool hit;              ///< line present in the cache
    bool writebackDirty;   ///< a dirty victim was evicted (miss only)
};

/** Tag-only set-associative cache with per-set LRU replacement. */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &cfg);

    /**
     * Access the line containing physical address @p pa.
     * Allocates on miss (write-allocate); marks the line dirty on stores.
     *
     * @p lineMask when non-null, the per-page residency filter of the
     * page containing @p pa (see invalidatePage): the accessed line's
     * bit is set before the lookup, keeping the filter conservative.
     */
    CacheResult access(Paddr pa, bool isWrite,
                       std::uint64_t *lineMask = nullptr);

    /**
     * Invalidate every line belonging to the 4 KiB page at @p pageBase.
     * Called when a page migrates (its physical address changes) so stale
     * lines do not keep serving hits for the old location.
     *
     * @p lineMask when non-null, a conservative per-page filter: bit i
     * set means line i of the page MAY be cached (set on every access
     * to that line), bit clear means it definitely is not, so its set
     * scan is skipped. The mask is zeroed on return. Exactness: lines
     * enter the cache only through access(), which sets the bit first.
     */
    void invalidatePage(Paddr pageBase,
                        std::uint64_t *lineMask = nullptr);

    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::size_t numSets() const { return numSets_; }
    unsigned ways() const { return ways_; }

  private:
    /**
     * Per-set MRU filter entry. Holds the set's use clock and the
     * last-accessed line's identity plus its not-yet-written-back
     * lastUse stamp. Invariant: when tag != kInvalidTag, the line
     * (way) has logical lastUse == clock, possibly newer than what
     * use_ stores; flushMru() reconciles. Dirty state lives in the
     * shared dirty_ bitmask and is always current.
     */
    struct MruEntry
    {
        std::uint64_t tag = kInvalidTag;
        std::uint32_t clock = 0;  ///< per-set LRU clock (authoritative)
        std::uint8_t way = 0;
    };

    static constexpr std::uint64_t kInvalidTag = ~0ull;

    std::size_t setOf(Paddr pa) const;
    std::uint64_t tagOf(Paddr pa) const;

    /** Write the MRU entry's pending lastUse back to use_. */
    void
    flushMru(const MruEntry &mru, std::size_t set)
    {
        if (mru.tag != kInvalidTag)
            use_[set * ways_ + mru.way] = mru.clock;
    }

    /** Invalidate @p tag in @p set if present (slow scan, no MRU). */
    void invalidateLine(std::size_t set, std::uint64_t tag);

    unsigned lineShift_;
    std::size_t numSets_;
    unsigned ways_;
    /**
     * Page masks are only usable when a page spans at most 64 lines
     * (one bit each); for smaller line sizes both access() and
     * invalidatePage() ignore the mask and stay exact via full scans.
     */
    bool pageMaskable_;
    // Runtime-dispatched SIMD set scans (see cache.cc); false when the
    // host CPU lacks AVX2 or the way count doesn't tile into vectors.
    bool simdScan_ = false;
    bool simdArgmin_ = false;
    // Structure-of-arrays per-line state, set-major: the hit scan walks
    // only tags_, the victim scan only tags_ + use_.
    std::vector<std::uint64_t> tags_;   ///< numSets_ * ways_
    std::vector<std::uint32_t> use_;    ///< per-set LRU stamps
    std::vector<std::uint16_t> dirty_;  ///< per-set dirty bitmask (way i
                                        ///< dirty <=> bit i set)
    std::vector<MruEntry> mru_;         ///< per-set fast-path entry
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

}  // namespace mclock

#endif  // MCLOCK_MEM_CACHE_HH_
