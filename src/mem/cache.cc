#include "mem/cache.hh"

#include <bit>

#include "base/logging.hh"

// The set scans below are pure integer work, so a SIMD implementation
// is bit-for-bit identical to the scalar one. The AVX2 variants are
// compiled unconditionally via the target attribute (no -mavx2 build
// flag, so the rest of the object stays baseline x86-64) and selected
// once at construction with a runtime CPU check; non-x86 builds and
// odd way counts use the scalar path.
#if defined(__x86_64__) && defined(__GNUC__)
#define MCLOCK_CACHE_AVX2 1
#include <immintrin.h>
#endif

namespace mclock {

namespace {

unsigned
log2Exact(std::size_t v)
{
    MCLOCK_ASSERT(v > 0 && (v & (v - 1)) == 0);
    return static_cast<unsigned>(std::countr_zero(v));
}

#ifdef MCLOCK_CACHE_AVX2

/** Membership + validity masks over @p ways tags (ways % 4 == 0). */
__attribute__((target("avx2"))) inline void
scanTagsAvx2(const std::uint64_t *tags, std::uint64_t tag,
             unsigned ways, unsigned *match, unsigned *invalid)
{
    const __m256i vtag = _mm256_set1_epi64x(static_cast<long long>(tag));
    const __m256i vinv = _mm256_set1_epi64x(-1);  // kInvalidTag
    unsigned m = 0;
    unsigned iv = 0;
    for (unsigned w = 0; w < ways; w += 4) {
        const __m256i t = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        m |= static_cast<unsigned>(_mm256_movemask_pd(
                 _mm256_castsi256_pd(_mm256_cmpeq_epi64(t, vtag))))
             << w;
        iv |= static_cast<unsigned>(_mm256_movemask_pd(
                  _mm256_castsi256_pd(_mm256_cmpeq_epi64(t, vinv))))
              << w;
    }
    *match = m;
    *invalid = iv;
}

/** First index of the minimum of @p ways stamps (ways 8 or 16). */
__attribute__((target("avx2"))) inline unsigned
argminUseAvx2(const std::uint32_t *use, unsigned ways)
{
    // Straight-line: both vectors stay in registers across the min
    // reduction and the first-index-of-min compare.
    const __m256i t0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(use));
    __m256i vmin = t0;
    __m256i t1 = t0;
    if (ways == 16) {
        t1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(use + 8));
        vmin = _mm256_min_epu32(vmin, t1);
    }
    __m128i m = _mm_min_epu32(_mm256_castsi256_si128(vmin),
                              _mm256_extracti128_si256(vmin, 1));
    m = _mm_min_epu32(m, _mm_srli_si128(m, 8));
    m = _mm_min_epu32(m, _mm_srli_si128(m, 4));
    const __m256i vbest = _mm256_broadcastd_epi32(m);
    unsigned eq = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(t0, vbest))));
    if (ways == 16) {
        eq |= static_cast<unsigned>(_mm256_movemask_ps(
                  _mm256_castsi256_ps(_mm256_cmpeq_epi32(t1, vbest))))
              << 8;
    }
    return static_cast<unsigned>(std::countr_zero(eq));
}

#endif  // MCLOCK_CACHE_AVX2

}  // namespace

CacheModel::CacheModel(const CacheConfig &cfg)
    : lineShift_(log2Exact(cfg.lineBytes)),
      numSets_(cfg.sizeBytes / (static_cast<std::size_t>(cfg.lineBytes) *
                                cfg.ways)),
      ways_(cfg.ways)
{
    MCLOCK_ASSERT(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0);
    MCLOCK_ASSERT(ways_ >= 1 && ways_ <= 16);  // dirty_ is a 16-bit mask
    pageMaskable_ = lineShift_ + 6 >= kPageShift;
#ifdef MCLOCK_CACHE_AVX2
    if (__builtin_cpu_supports("avx2")) {
        simdScan_ = ways_ % 4 == 0;
        simdArgmin_ = ways_ == 8 || ways_ == 16;
    }
#endif
    tags_.assign(numSets_ * ways_, kInvalidTag);
    use_.assign(numSets_ * ways_, 0);
    dirty_.assign(numSets_, 0);
    mru_.assign(numSets_, MruEntry{});
}

std::size_t
CacheModel::setOf(Paddr pa) const
{
    return (pa >> lineShift_) & (numSets_ - 1);
}

std::uint64_t
CacheModel::tagOf(Paddr pa) const
{
    return pa >> lineShift_;
}

CacheResult
CacheModel::access(Paddr pa, bool isWrite, std::uint64_t *lineMask)
{
    if (lineMask && pageMaskable_) {
        *lineMask |= std::uint64_t{1}
            << ((pa & (kPageSize - 1)) >> lineShift_);
    }
    const std::size_t set = setOf(pa);
    const std::uint64_t tag = tagOf(pa);
    MruEntry &mru = mru_[set];

    // Fast path: repeat access to the set's most recent line. The
    // clock bump and LRU update live entirely in the MRU entry.
    if (mru.tag == tag) {
        ++mru.clock;
        dirty_[set] |= static_cast<std::uint16_t>(
            static_cast<unsigned>(isWrite) << mru.way);
        ++hits_;
        return {true, false};
    }

    // Different line: reconcile the deferred stamp, then take the
    // stamp for this access. Tags are always current, so only the
    // MRU line's lastUse needs the flush.
    flushMru(mru, set);
    const std::uint32_t stamp = ++mru.clock;

    const std::size_t base = set * ways_;
    const std::uint64_t *tags = &tags_[base];
    const unsigned ways = ways_;

    // Branchless membership + validity masks: full-width compare scans
    // instead of early-exit loops, whose data-dependent exit branches
    // mispredict on nearly every access.
    unsigned match = 0;
    unsigned invalid = 0;
#ifdef MCLOCK_CACHE_AVX2
    if (simdScan_) {
        scanTagsAvx2(tags, tag, ways, &match, &invalid);
    } else
#endif
    {
        for (unsigned w = 0; w < ways; ++w) {
            match |= static_cast<unsigned>(tags[w] == tag) << w;
            invalid |=
                static_cast<unsigned>(tags[w] == kInvalidTag) << w;
        }
    }

    if (match) {
        const unsigned w = static_cast<unsigned>(std::countr_zero(match));
        use_[base + w] = stamp;
        dirty_[set] |= static_cast<std::uint16_t>(
            static_cast<unsigned>(isWrite) << w);
        mru.tag = tag;
        mru.way = static_cast<std::uint8_t>(w);
        ++hits_;
        return {true, false};
    }

    // Miss: the original victim scan (replace when lastUse < victim's,
    // or line invalid while victim valid) reduces to two cheap cases.
    // With an invalid line present it settles on the first one: an
    // invalid victim has lastUse 0, so no later line can undercut it.
    // All-valid, it is a strict-< running minimum of lastUse (first way
    // wins ties, including the wrapped-clock lastUse==0 case).
    unsigned victim;
    if (invalid) {
        victim = static_cast<unsigned>(std::countr_zero(invalid));
    } else {
#ifdef MCLOCK_CACHE_AVX2
        if (simdArgmin_) {
            victim = argminUseAvx2(&use_[base], ways);
        } else
#endif
        {
            const std::uint32_t *use = &use_[base];
            std::uint32_t best = use[0];
            victim = 0;
            for (unsigned w = 1; w < ways; ++w) {
                const bool better = use[w] < best;
                best = better ? use[w] : best;
                victim = better ? w : victim;
            }
        }
    }

    ++misses_;
    const bool valid = invalid == 0;
    const std::uint16_t victimBit =
        static_cast<std::uint16_t>(1u << victim);
    const bool writeback = valid && (dirty_[set] & victimBit) != 0;
    if (writeback)
        ++writebacks_;
    tags_[base + victim] = tag;
    use_[base + victim] = stamp;
    if (isWrite)
        dirty_[set] |= victimBit;
    else
        dirty_[set] = static_cast<std::uint16_t>(dirty_[set] &
                                                 ~victimBit);
    mru.tag = tag;
    mru.way = static_cast<std::uint8_t>(victim);
    return {false, writeback};
}

void
CacheModel::invalidateLine(std::size_t set, std::uint64_t tag)
{
    MruEntry &mru = mru_[set];
    if (mru.tag == tag) {
        // The invalidated line is the set's MRU line: its pending
        // stamp dies with it (the line is reset below).
        mru.tag = kInvalidTag;
    }
    const std::size_t base = set * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags_[base + w] == tag) {
            tags_[base + w] = kInvalidTag;
            use_[base + w] = 0;
            dirty_[set] = static_cast<std::uint16_t>(
                dirty_[set] & ~(1u << w));
            break;
        }
    }
}

void
CacheModel::invalidatePage(Paddr pageBase, std::uint64_t *lineMask)
{
    const Paddr start = pageBase & ~static_cast<Paddr>(kPageSize - 1);
    const Paddr lineBytes = Paddr{1} << lineShift_;
    if (lineMask && pageMaskable_) {
        // Only lines whose mask bit is set can be cached; everything
        // else never went through access() at this physical address.
        std::uint64_t mask = *lineMask;
        *lineMask = 0;
        while (mask != 0) {
            const unsigned i = static_cast<unsigned>(
                std::countr_zero(mask));
            mask &= mask - 1;
            const Paddr pa = start + static_cast<Paddr>(i) * lineBytes;
            invalidateLine(setOf(pa), tagOf(pa));
        }
        return;
    }
    for (Paddr pa = start; pa < start + kPageSize; pa += lineBytes)
        invalidateLine(setOf(pa), tagOf(pa));
}

void
CacheModel::reset()
{
    tags_.assign(tags_.size(), kInvalidTag);
    use_.assign(use_.size(), 0);
    dirty_.assign(dirty_.size(), 0);
    mru_.assign(mru_.size(), MruEntry{});
    hits_ = misses_ = writebacks_ = 0;
}

}  // namespace mclock
