#include "mem/cache.hh"

#include <bit>

#include "base/logging.hh"

namespace mclock {

namespace {

unsigned
log2Exact(std::size_t v)
{
    MCLOCK_ASSERT(v > 0 && (v & (v - 1)) == 0);
    return static_cast<unsigned>(std::countr_zero(v));
}

}  // namespace

CacheModel::CacheModel(const CacheConfig &cfg)
    : lineShift_(log2Exact(cfg.lineBytes)),
      numSets_(cfg.sizeBytes / (static_cast<std::size_t>(cfg.lineBytes) *
                                cfg.ways)),
      ways_(cfg.ways)
{
    MCLOCK_ASSERT(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0);
    lines_.assign(numSets_ * ways_, Line{});
    useClock_.assign(numSets_, 0);
}

std::size_t
CacheModel::setOf(Paddr pa) const
{
    return (pa >> lineShift_) & (numSets_ - 1);
}

std::uint64_t
CacheModel::tagOf(Paddr pa) const
{
    return pa >> lineShift_;
}

CacheResult
CacheModel::access(Paddr pa, bool isWrite)
{
    const std::size_t set = setOf(pa);
    const std::uint64_t tag = tagOf(pa);
    Line *base = &lines_[set * ways_];
    const std::uint32_t stamp = ++useClock_[set];

    Line *victim = base;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.tag == tag) {
            line.lastUse = stamp;
            line.dirty = line.dirty || isWrite;
            ++hits_;
            return {true, false};
        }
        if (line.lastUse < victim->lastUse ||
            (line.tag == kInvalidTag && victim->tag != kInvalidTag)) {
            victim = &line;
        }
    }

    ++misses_;
    const bool writeback = victim->tag != kInvalidTag && victim->dirty;
    if (writeback)
        ++writebacks_;
    victim->tag = tag;
    victim->lastUse = stamp;
    victim->dirty = isWrite;
    return {false, writeback};
}

void
CacheModel::invalidatePage(Paddr pageBase)
{
    const Paddr start = pageBase & ~static_cast<Paddr>(kPageSize - 1);
    for (Paddr pa = start; pa < start + kPageSize;
         pa += (Paddr{1} << lineShift_)) {
        const std::size_t set = setOf(pa);
        const std::uint64_t tag = tagOf(pa);
        Line *base = &lines_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            if (base[w].tag == tag) {
                base[w] = Line{};
                break;
            }
        }
    }
}

void
CacheModel::reset()
{
    lines_.assign(lines_.size(), Line{});
    useClock_.assign(useClock_.size(), 0);
    hits_ = misses_ = writebacks_ = 0;
}

}  // namespace mclock
