#include "mem/memory_config.hh"

#include <algorithm>

namespace mclock {

SimTime
MemoryConfig::copyLatency(TierRank src, TierRank dst, std::size_t bytes) const
{
    const double srcBw = timing(src).readBandwidth;
    const double dstBw = timing(dst).writeBandwidth;
    const double bw = std::min(srcBw, dstBw);
    return static_cast<SimTime>(static_cast<double>(bytes) / bw);
}

SimTime
MemoryConfig::pageMigrationCost(TierRank src, TierRank dst) const
{
    return migrationFixedCost + copyLatency(src, dst, kPageSize);
}

}  // namespace mclock
