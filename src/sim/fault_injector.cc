#include "sim/fault_injector.hh"

namespace mclock {
namespace sim {

const char *
faultPhaseName(FaultPhase phase)
{
    switch (phase) {
      case FaultPhase::None:      return "none";
      case FaultPhase::Copy:      return "copy";
      case FaultPhase::Shootdown: return "shootdown";
      case FaultPhase::Remap:     return "remap";
    }
    return "unknown";
}

FaultInjector::FaultInjector(const FaultConfig &cfg,
                             std::uint64_t machineSeed)
    : cfg_(cfg), rng_(machineSeed ^ (cfg.seed * 0x9e3779b97f4a7c15ull))
{
}

double
FaultInjector::tierMultiplier(TierRank rank) const
{
    const auto i = static_cast<std::size_t>(rank);
    return i < cfg_.tierErrorMultiplier.size()
               ? cfg_.tierErrorMultiplier[i]
               : 1.0;
}

FaultDecision
FaultInjector::nextTransaction(PageNum vpn, TierRank dstTier)
{
    FaultDecision d;
    if (!cfg_.enabled)
        return d;
    ++transactions_;
    // Fixed draw count per transaction (see file comment): the stream
    // position after N transactions is independent of their outcomes.
    const double uCopy = rng_.nextDouble();
    const double uShootdown = rng_.nextDouble();
    const double uRemap = rng_.nextDouble();
    const double uPersist = rng_.nextDouble();

    if (poisoned_.count(vpn)) {
        d.failPhase = FaultPhase::Copy;
        d.persistent = true;
        ++injected_;
        return d;
    }

    const double mult = tierMultiplier(dstTier);
    if (uCopy < cfg_.copyFailProb * mult)
        d.failPhase = FaultPhase::Copy;
    else if (uShootdown < cfg_.shootdownFailProb * mult)
        d.failPhase = FaultPhase::Shootdown;
    else if (uRemap < cfg_.remapFailProb * mult)
        d.failPhase = FaultPhase::Remap;

    if (d.injected()) {
        ++injected_;
        d.persistent = uPersist < cfg_.persistentProb;
        if (d.persistent)
            poisoned_.insert(vpn);
    }
    return d;
}

}  // namespace sim
}  // namespace mclock
