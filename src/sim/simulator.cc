#include "sim/simulator.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/shard_event.hh"
#include "vm/page.hh"

namespace mclock {
namespace sim {

Simulator::Simulator(MachineConfig cfg)
    : cfg_(std::move(cfg)),
      mem_(cfg_.nodes),
      llc_(cfg_.cache.enabled ? std::make_unique<CacheModel>(cfg_.cache)
                              : nullptr),
      faults_(cfg_.faults, cfg_.seed),
      migration_(mem_, cfg_.mem, llc_.get(), &faults_),
      metrics_(cfg_.metricsWindow),
      swap_(cfg_.swapPages),
      rng_(cfg_.seed),
      vmstat_(mem_.numNodes()),
      trace_(cfg_.stats.traceCapacity),
      belowLow_(mem_.numNodes(), false),
      promoteFailStreak_(mem_.numNodes(), 0),
      promoteThrottleUntil_(mem_.numNodes(), 0)
{
    trace_.bindClock(&now_);
    // Snapshot the immutable topology for the access fast path: node
    // tiers and per-tier latencies never change after construction.
    metrics_.presizeTiers(cfg_.mem.numTiers());
    nodeTier_.resize(mem_.numNodes());
    mem_.forEachNode([this](Node &node) {
        nodeTier_[static_cast<std::size_t>(node.id())] = node.tier();
    });
    tierLoadLat_.reserve(cfg_.mem.numTiers());
    tierStoreLat_.reserve(cfg_.mem.numTiers());
    for (std::size_t r = 0; r < cfg_.mem.numTiers(); ++r) {
        const auto &timing = cfg_.mem.timing(static_cast<TierRank>(r));
        tierLoadLat_.push_back(timing.loadLatency);
        tierStoreLat_.push_back(timing.storeLatency);
    }
    bottomTier_ = mem_.tierOrder().back();
    trackReaccess_ = mem_.numTiers() > 1;
    // Low-level subsystems (LRU lists) record through raw sinks so
    // pfra/ needs no dependency on the simulator.
    mem_.forEachNode([this](Node &node) {
        node.lists().attachStats(&vmstat_, &trace_, node.id());
    });
#ifdef MCLOCK_DEBUG_VM
    vmChecker_ = std::make_unique<debug::VmChecker>();
    vmChecker_->bindTrace(&trace_);
    vmChecker_->bindFaults(&faults_);
    mem_.forEachNode([this](Node &node) {
        node.lists().attachChecker(vmChecker_.get());
    });
    migration_.setChecker(vmChecker_.get());
#endif
    if (cfg_.stats.sampler) {
        sampler_ = std::make_unique<stats::VmstatSampler>(vmstat_);
        // The sampler body charges no time and mutates no simulator
        // state, so registering it cannot change simulation results.
        daemons_.add("vmstat_sampler", cfg_.stats.samplerInterval,
                     [this](SimTime now) { sampler_->sample(now); });
    }
}

Simulator::~Simulator() = default;

void
Simulator::setPolicy(std::unique_ptr<policies::TieringPolicy> policy)
{
    MCLOCK_ASSERT(policy != nullptr);
    policy_ = std::move(policy);
    policy_->attach(*this);
    policyObservesAccess_ = policy_->observesMemoryAccess();
}

Vaddr
Simulator::mmap(std::size_t bytes, bool anon, const std::string &name,
                MemCgroupId memcg)
{
    return space_.mmap(bytes, anon, name, memcg);
}

void
Simulator::unmapRegion(Vaddr start)
{
    const Region *region = space_.regionOf(start);
    MCLOCK_ASSERT(region != nullptr && region->start == start);
    const PageNum first = pageNumOf(region->start);
    const PageNum last = pageNumOf(region->end() - 1);
    for (PageNum vpn = first; vpn <= last; ++vpn) {
        Page *pg = space_.lookup(vpn);
        if (!pg)
            continue;
        if (pg->onLru())
            policy_->onPageFreed(pg);
        MCLOCK_ASSERT(!pg->onLru());
        if (pg->resident()) {
            if (llc_)
                llc_->invalidatePage(pg->paddr(), pg->llcLineMask());
            memcg_.uncharge(pg->memcg(),
                            nodeTier_[static_cast<std::size_t>(pg->node())]);
            mem_.node(pg->node()).freeFrame(pg->paddr());
            pg->unplace();
        } else {
            // Discard the swapped-out copy. Not a page-in: the slot is
            // freed without any device read happening.
            swap_.releaseSlot(pg);
        }
#ifdef MCLOCK_DEBUG_VM
        vmChecker_->onPageDestroyed(pg);
#endif
        space_.destroyPage(vpn);
    }
    space_.munmap(start);
}

void
Simulator::readSupervised(Vaddr va, std::size_t bytes)
{
    ++appOps_;
    accessRange(va, bytes, false, true);
}

void
Simulator::writeSupervised(Vaddr va, std::size_t bytes)
{
    ++appOps_;
    accessRange(va, bytes, true, true);
}

void
Simulator::stream(const MemOp *ops, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const MemOp &op = ops[i];
        switch (op.kind) {
          case MemOp::Kind::Read:
            ++appOps_;
            dispatchAccess(op.va, op.bytes, false);
            break;
          case MemOp::Kind::Write:
            ++appOps_;
            dispatchAccess(op.va, op.bytes, true);
            break;
          case MemOp::Kind::Compute:
            compute(static_cast<SimTime>(op.va));
            break;
        }
    }
}

void
Simulator::accessRange(Vaddr va, std::size_t bytes, bool write,
                       bool supervised)
{
    MCLOCK_ASSERT(bytes > 0);
    // Multi-byte operations (memcpy-style) touch every line of the
    // range; we sample one access per 512 B sub-block, which preserves
    // the per-page reference behaviour and the memory-boundedness of
    // large transfers without simulating all 64 B lines.
    constexpr Vaddr kStride = kAccessBlock;
    const Vaddr lastByte = va + bytes - 1;
    accessOnePage(va, write, supervised);
    for (Vaddr cursor = (va & ~(kStride - 1)) + kStride;
         cursor <= lastByte; cursor += kStride) {
        accessOnePage(cursor, write, supervised);
    }
}

void
Simulator::compute(SimTime duration)
{
    const SimTime target = now_ + duration;
    while (daemons_.nextDue() <= target) {
        now_ = std::max(now_, daemons_.nextDue());
        daemons_.runDue(now_);
    }
    now_ = std::max(now_, target);
}

TierRank
Simulator::pageTier(const Page *page) const
{
    MCLOCK_ASSERT(page->resident());
    return mem_.node(page->node()).tier();
}

void
Simulator::chargeInline(SimTime t)
{
    now_ += t;
    metrics_.stats().inc("inline_overhead_ns", t);
}

void
Simulator::chargeBackground(SimTime t)
{
    const auto charged = static_cast<SimTime>(
        static_cast<double>(t) * cfg_.mem.backgroundInterference);
    now_ += charged;
    metrics_.stats().inc("background_work_ns", t);
    metrics_.stats().inc("background_charged_ns", charged);
}

void
Simulator::chargeScan(std::uint64_t pages)
{
    if (pages == 0)
        return;
    metrics_.stats().inc("scanned_pages", pages);
    chargeBackground(pages * cfg_.mem.scanPerPageCost);
}

void
Simulator::chargeMigration(SimTime cost, ChargeMode mode,
                           SimTime inlinePortion)
{
    switch (mode) {
      case ChargeMode::Inline:
        chargeInline(cost);
        break;
      case ChargeMode::Background:
        // Even daemon-driven migrations interrupt the application: the
        // unmap/TLB-shootdown portion sends IPIs to every core running
        // the process, so that part lands on the critical path.
        inlinePortion = std::min(inlinePortion, cost);
        chargeInline(inlinePortion);
        chargeBackground(cost - inlinePortion);
        break;
      case ChargeMode::FaultPath:
        chargeInline(static_cast<SimTime>(
            static_cast<double>(cost) *
            cfg_.mem.faultPathMigrationMultiplier));
        break;
    }
}

MigrateResult
Simulator::migrateOnce(Page *page, NodeId dst, ChargeMode mode)
{
    MCLOCK_ASSERT(!page->onLru());
    const TierRank srcTier = pageTier(page);
    const NodeId srcNode = page->node();
    const int dir = mem_.node(dst).tier() - srcTier;
    trace_.record(stats::TraceEventType::MigrationStart, srcNode,
                  page->vpn(), static_cast<std::uint64_t>(dst));
    SimTime cost = 0;
    const MigrateResult r = migration_.migrate(page, dst, cost);
    if (!r.ok()) {
        if (r.outcome == MigrateOutcome::Aborted) {
            // The burned partial work still costs time. Only aborts
            // that reached the shootdown sent IPIs (the inline part).
            const SimTime inlinePart =
                r.phase == FaultPhase::Copy
                    ? 0
                    : cfg_.mem.migrationFixedCost / 2;
            chargeMigration(cost, mode, inlinePart);
            vmstat_.add(stats::VmItem::PgmigrateAbort, srcNode);
            if (r.phase != FaultPhase::Copy)
                vmstat_.add(stats::VmItem::PgmigrateRollback, srcNode);
            trace_.record(stats::TraceEventType::MigrationAbort, srcNode,
                          page->vpn(),
                          static_cast<std::uint64_t>(r.phase));
        }
        if (dir < 0)
            vmstat_.add(stats::VmItem::PgpromoteFail, srcNode);
        else if (dir > 0)
            vmstat_.add(stats::VmItem::PgdemoteFail, srcNode);
        return r;
    }
    const TierRank dstTier = mem_.node(dst).tier();
    chargeMigration(cost, mode, cfg_.mem.migrationFixedCost);
    // The charge moves with the page. Downward transfers always
    // succeed: pressure relief must work even for an over-cap group,
    // so only upward placement (promotePage, allocation) is gated.
    if (dstTier != srcTier)
        memcg_.transfer(page->memcg(), srcTier, dstTier);
    if (dstTier < srcTier) {
        metrics_.recordPromotion(now_, page);
        // Kernel convention: pgpromote_success lands on the target node.
        vmstat_.add(stats::VmItem::PgpromoteSuccess, dst);
        if (shardLog_) {
            shardLog_->append(ShardEventKind::Promote, now_, page->vpn(),
                              static_cast<std::uint64_t>(dst));
        }
    } else if (dstTier > srcTier) {
        metrics_.recordDemotion(now_);
        vmstat_.add(stats::VmItem::Pgdemote, srcNode);
        if (page->memcg() != kRootMemcg)
            vmstat_.add(stats::VmItem::PgtenantDemote, srcNode);
        if (shardLog_) {
            shardLog_->append(ShardEventKind::Demote, now_, page->vpn(),
                              static_cast<std::uint64_t>(dst));
        }
    }
    trace_.record(stats::TraceEventType::MigrationComplete, srcNode,
                  page->vpn(), static_cast<std::uint64_t>(dst));
    return r;
}

bool
Simulator::migratePage(Page *page, NodeId dst, ChargeMode mode)
{
    return migrateOnce(page, dst, mode).ok();
}

void
Simulator::beginShardEpoch(std::uint64_t epoch, std::uint64_t grant)
{
    promoteBudget_ = grant;
    // Tenant promotion quotas refill on the same epoch cadence. All
    // deficit state is per-shard-local, so any worker width replays
    // the identical grant sequence.
    memcg_.beginEpoch();
    vmstat_.add(stats::VmItem::ShardEpoch);
    trace_.record(stats::TraceEventType::ShardEpoch, kInvalidNode, epoch,
                  grant == kUnlimitedPromoteBudget ? 0 : grant);
}

bool
Simulator::promotionThrottled(NodeId node) const
{
    const auto id = static_cast<std::size_t>(node);
    return id < promoteThrottleUntil_.size() &&
           now_ < promoteThrottleUntil_[id];
}

void
Simulator::notePromoteSuccess(NodeId node)
{
    if (!faults_.enabled())
        return;
    promoteFailStreak_[static_cast<std::size_t>(node)] = 0;
}

void
Simulator::notePromoteAbort(NodeId node)
{
    if (!faults_.enabled())
        return;
    unsigned &streak = promoteFailStreak_[static_cast<std::size_t>(node)];
    if (++streak < cfg_.faults.throttleThreshold)
        return;
    // Graceful degradation: stop hammering a failing path and let the
    // node cool down before promoting from it again.
    streak = 0;
    const SimTime until = now_ + cfg_.faults.throttleCooldownNs;
    promoteThrottleUntil_[static_cast<std::size_t>(node)] = until;
    vmstat_.add(stats::VmItem::PgpromoteThrottled, node);
    trace_.record(stats::TraceEventType::PromoteThrottle, node,
                  cfg_.faults.throttleThreshold, until);
}

bool
Simulator::tenantPromoteAllowed(const Page *page, TierRank dstTier)
{
    const MemCgroupId cg = page->memcg();
    if (cg == kRootMemcg) [[likely]]
        return true;
    if (memcg_.withinMax(cg, dstTier) && memcg_.hasPromoteCredit(cg))
        return true;
    vmstat_.add(stats::VmItem::PgtenantPromoteDeferred, page->node());
    return false;
}

bool
Simulator::promotePage(Page *page, ChargeMode mode)
{
    TierRank up;
    if (!mem_.higherTier(pageTier(page), up))
        return false;
    const NodeId srcNode = page->node();
    if (promotionThrottled(srcNode))
        return false;
    if (promoteBudget_ == 0) {
        // Epoch promotion budget exhausted: defer until the next grant
        // (sharded coordination; see setEpochPromoteBudget).
        vmstat_.add(stats::VmItem::PgpromoteDeferred, srcNode);
        return false;
    }
    // Tenant QoS gate, layered under the shard seniority budget: a
    // tenant promotion must clear both its per-epoch quota and the
    // destination tier's hard cap.
    if (!tenantPromoteAllowed(page, up))
        return false;
    const MemCgroupId cg = page->memcg();
    const unsigned maxAttempts =
        faults_.enabled() ? cfg_.faults.maxRetries + 1 : 1;
    for (unsigned attempt = 0; attempt < maxAttempts; ++attempt) {
        const NodeId dst =
            mem_.pickNodeWithSpace(up, /*respectMin=*/false);
        if (dst == kInvalidNode) {
            // No free frame anywhere in the upper tier: the promotion
            // failed before a migration could start.
            vmstat_.add(stats::VmItem::PgpromoteFail, srcNode);
            return false;
        }
        const MigrateResult r = migrateOnce(page, dst, mode);
        if (r.ok()) {
            notePromoteSuccess(srcNode);
            if (promoteBudget_ != kUnlimitedPromoteBudget)
                --promoteBudget_;
            // Quota credits, like the shard budget, are spent on
            // completed promotions only — an aborted migration costs
            // the tenant nothing. tenantPromoteAllowed() held a credit
            // in reserve above, so the spend cannot fail here.
            const bool credited = memcg_.consumePromoteCredit(cg);
            MCLOCK_ASSERT(credited);
            return true;
        }
        const bool retryable =
            r.outcome == MigrateOutcome::Aborted && !r.persistent;
        if (!retryable || attempt + 1 == maxAttempts) {
            if (r.outcome == MigrateOutcome::Aborted)
                notePromoteAbort(srcNode);
            return false;
        }
        vmstat_.add(stats::VmItem::PgmigrateRetry, srcNode);
        chargeBackground(cfg_.faults.retryBackoffNs << attempt);
    }
    return false;
}

bool
Simulator::demotePage(Page *page, ChargeMode mode)
{
    TierRank down;
    if (!mem_.lowerTier(pageTier(page), down))
        return false;
    const NodeId srcNode = page->node();
    const unsigned maxAttempts =
        faults_.enabled() ? cfg_.faults.maxRetries + 1 : 1;
    for (unsigned attempt = 0; attempt < maxAttempts; ++attempt) {
        const NodeId dst =
            mem_.pickNodeWithSpace(down, /*respectMin=*/true);
        if (dst == kInvalidNode) {
            vmstat_.add(stats::VmItem::PgdemoteFail, srcNode);
            return false;
        }
        const MigrateResult r = migrateOnce(page, dst, mode);
        if (r.ok())
            return true;
        const bool retryable =
            r.outcome == MigrateOutcome::Aborted && !r.persistent;
        if (!retryable || attempt + 1 == maxAttempts)
            return false;
        vmstat_.add(stats::VmItem::PgmigrateRetry, srcNode);
        chargeBackground(cfg_.faults.retryBackoffNs << attempt);
    }
    return false;
}

bool
Simulator::exchangePages(Page *hot, Page *cold, ChargeMode mode)
{
    MCLOCK_ASSERT(!hot->onLru() && !cold->onLru());
    const TierRank hotSrc = pageTier(hot);
    const TierRank coldSrc = pageTier(cold);
    const NodeId hotNode = hot->node();
    const NodeId coldNode = cold->node();
    trace_.record(stats::TraceEventType::MigrationStart, hotNode,
                  hot->vpn(), static_cast<std::uint64_t>(coldNode));
    SimTime cost = 0;
    const MigrateResult r = migration_.exchange(hot, cold, cost);
    if (!r.ok()) {
        if (r.outcome == MigrateOutcome::Aborted) {
            const SimTime inlinePart =
                r.phase == FaultPhase::Copy
                    ? 0
                    : cfg_.mem.migrationFixedCost * 17 / 20;
            chargeMigration(cost, mode, inlinePart);
            vmstat_.add(stats::VmItem::PgmigrateAbort, hotNode);
            if (r.phase != FaultPhase::Copy)
                vmstat_.add(stats::VmItem::PgmigrateRollback, hotNode);
            trace_.record(stats::TraceEventType::MigrationAbort, hotNode,
                          hot->vpn(),
                          static_cast<std::uint64_t>(r.phase));
        }
        return false;
    }
    chargeMigration(cost, mode, cfg_.mem.migrationFixedCost * 17 / 10);
    // Promotion/demotion (and pgexchange itself) only when the two
    // nodes sit on different tiers: a same-tier node-to-node exchange
    // moves no page up or down. Normally callers pass (lower-tier
    // page, upper-tier page); handle the reversed order too.
    if (hotSrc != coldSrc) {
        Page *upPage = hotSrc > coldSrc ? hot : cold;
        Page *downPage = upPage == hot ? cold : hot;
        // Both charges move with their page (an exchange is a paired
        // promote + demote). Like demotion, the transfer is forced:
        // exchanges stay quota-exempt because the paired demotion
        // releases exactly the capacity the promotion takes.
        const TierRank upperRank = std::min(hotSrc, coldSrc);
        const TierRank lowerRank = std::max(hotSrc, coldSrc);
        memcg_.transfer(upPage->memcg(), lowerRank, upperRank);
        memcg_.transfer(downPage->memcg(), upperRank, lowerRank);
        // The promoted page lands on the demoted page's source node
        // (they swapped frames), so one upper-tier node takes both the
        // pgpromote_success (kernel convention: the target node) and
        // the pgdemote (the demoted page's source).
        const NodeId upperNode = hotSrc > coldSrc ? coldNode : hotNode;
        vmstat_.add(stats::VmItem::Pgexchange, hotNode);
        metrics_.recordPromotion(now_, upPage);
        vmstat_.add(stats::VmItem::PgpromoteSuccess, upperNode);
        metrics_.recordDemotion(now_);
        vmstat_.add(stats::VmItem::Pgdemote, upperNode);
        if (downPage->memcg() != kRootMemcg)
            vmstat_.add(stats::VmItem::PgtenantDemote, upperNode);
        if (shardLog_) {
            shardLog_->append(ShardEventKind::Exchange, now_,
                              upPage->vpn(), downPage->vpn());
        }
    }
    trace_.record(stats::TraceEventType::MigrationComplete, hotNode,
                  hot->vpn(), static_cast<std::uint64_t>(coldNode));
    return true;
}

void
Simulator::evictPage(Page *page)
{
    MCLOCK_ASSERT(!page->onLru());
    MCLOCK_ASSERT(page->resident());
#ifdef MCLOCK_DEBUG_VM
    vmChecker_->onEvict(page);
#endif
    if (!page->isAnon() || swap_.hasSpace()) {
        // Kernel semantics: pswpout counts swap-area writes, i.e.
        // anonymous pages only; a file-backed page is written back to
        // its file and shows up as a writeback instead.
        if (page->isAnon())
            vmstat_.add(stats::VmItem::Pswpout, page->node());
        else
            vmstat_.add(stats::VmItem::Pgwriteback, page->node());
        vmstat_.add(stats::VmItem::Pgsteal, page->node());
        swap_.pageOut(page);
        chargeBackground(cfg_.mem.swapLatency);
        if (llc_)
            llc_->invalidatePage(page->paddr(), page->llcLineMask());
        memcg_.uncharge(page->memcg(),
                        nodeTier_[static_cast<std::size_t>(page->node())]);
        mem_.node(page->node()).freeFrame(page->paddr());
        page->unplace();
        page->setReferenced(false);
        page->setActive(false);
        page->setPromoteFlag(false);
        page->setPteReferenced(false);
        metrics_.stats().inc(page->isAnon() ? "swap_outs"
                                            : "writebacks");
    } else {
        // No swap space: in the kernel this path ends with the OOM
        // killer. We surface it as a fatal config error instead.
        MCLOCK_FATAL("out of memory: no swap space for eviction");
    }
}

void
Simulator::maybeReclaim(Node &node)
{
    if (inPressure_ || !policy_)
        return;
    vmstat_.add(stats::VmItem::KswapdWake, node.id());
    trace_.record(stats::TraceEventType::KswapdWake, node.id(),
                  node.freeFrames());
    inPressure_ = true;
    policy_->handlePressure(node);
    inPressure_ = false;
}

void
Simulator::runDueDaemons()
{
    daemons_.runDue(now_);
}

std::size_t
Simulator::memcgReclaimTier(MemCgroup &cg, TierRank tier,
                            std::size_t want)
{
    TierRank down;
    if (!mem_.lowerTier(tier, down))
        return 0;
    std::size_t demoted = 0;
    std::uint64_t scanned = 0;
    for (NodeId nid : mem_.tier(tier)) {
        if (demoted >= want)
            break;
        auto &lists = mem_.node(nid).lists();
        for (bool anon : {true, false}) {
            auto &inactive =
                lists.list(pfra::NodeLists::inactiveKind(anon));
            // One CLOCK revolution at most: each tail page is looked
            // at once, rotating pages of other tenants back to the
            // head (their LRU order is preserved modulo the rotation).
            const std::size_t budget = inactive.size();
            for (std::size_t i = 0;
                 i < budget && demoted < want; ++i) {
                Page *pg = inactive.back();
                if (!pg)
                    break;
                ++scanned;
                if (pg->memcg() != cg.id() || pg->locked() ||
                    pg->unevictable()) {
                    lists.rotateToFront(pg);
                    continue;
                }
                pg->testAndClearPteReferenced();
                pg->setReferenced(false);
                lists.remove(pg);
                if (demotePage(pg, ChargeMode::Background)) {
                    ++demoted;
                    pg->setActive(false);
                    mem_.node(pg->node()).lists().add(
                        pg, pfra::NodeLists::inactiveKind(anon));
                } else {
                    // No space below: put the page back untouched.
                    lists.add(pg,
                              pfra::NodeLists::inactiveKind(anon));
                }
            }
        }
    }
    chargeScan(scanned);
    if (demoted) {
        vmstat_.add(stats::VmItem::MemcgLimitReclaim, kInvalidNode,
                    demoted);
        trace_.record(stats::TraceEventType::MemcgReclaim, kInvalidNode,
                      cg.id(), demoted);
    }
    return demoted;
}

void
Simulator::accessOnePage(Vaddr va, bool write, bool supervised)
{
    if (daemons_.nextDue() <= now_) [[unlikely]]
        runDueDaemons();

    const PageNum vpn = pageNumOf(va);
    Page *pg = space_.lookup(vpn);
    if (!pg) [[unlikely]] {
        pg = handleMinorFault(vpn);
    } else if (!pg->resident()) [[unlikely]] {
        handleSwapIn(pg);
    }

    if (pg->hintPoisoned()) [[unlikely]] {
        pg->setHintPoisoned(false);
        chargeInline(cfg_.mem.hintFaultLatency);
        metrics_.stats().inc("hint_faults");
        vmstat_.add(stats::VmItem::PghintFault, pg->node());
        policy_->onHintFault(pg);
    }

    if (supervised) [[unlikely]]
        policy_->onSupervisedAccess(pg);

    bool llcHit = false;
    if (llc_) {
        const Paddr pa = pg->paddr() + (va & (kPageSize - 1));
        llcHit = llc_->access(pa, write, pg->llcLineMask()).hit;
    }
    const TierRank tier = nodeTier_[static_cast<std::size_t>(pg->node())];
    metrics_.recordAccess(now_, tier, llcHit);
    if (llcHit) {
        if (pg->memcg() != kRootMemcg) [[unlikely]]
            memcg_.recordLatency(pg->memcg(), cfg_.cache.hitLatency);
        now_ += cfg_.cache.hitLatency;
        return;
    }

    // Memory-visible access: the hardware walks the page table and sets
    // the PTE accessed (and on stores, dirty) bits.
    pg->markAccessed(write);
    pg->bumpAccessCount();
    pg->setLastAccess(now_);
    // Re-access tracking covers every tier a page can be promoted into,
    // i.e. everything above the bottom tier (just DRAM on two tiers).
    if (trackReaccess_ && tier != bottomTier_)
        metrics_.maybeRecordReaccess(now_, pg);

    const auto tierIdx = static_cast<std::size_t>(tier);
    SimTime lat = write ? tierStoreLat_[tierIdx] : tierLoadLat_[tierIdx];
    if (policyObservesAccess_) [[unlikely]] {
        policies::AccessContext ctx;
        ctx.va = va;
        ctx.write = write;
        policy_->onMemoryAccess(pg, ctx);
        if (ctx.latencyOverridden)
            lat = ctx.latency;
    }
    if (pg->memcg() != kRootMemcg) [[unlikely]]
        memcg_.recordLatency(pg->memcg(), lat);
    metrics_.recordMemLatency(tier, lat);
    now_ += lat;
}

Page *
Simulator::handleMinorFault(PageNum vpn)
{
    Page *pg = space_.createPage(vpn);
    allocateFrameFor(pg);
    policy_->onPageAllocated(pg);
    const SimTime zeroFill = cfg_.mem.copyLatency(
        pageTier(pg), pageTier(pg), kPageSize);
    chargeInline(cfg_.mem.minorFaultLatency + zeroFill);
    metrics_.stats().inc("minor_faults");
    return pg;
}

void
Simulator::handleSwapIn(Page *page)
{
    allocateFrameFor(page);
    swap_.pageIn(page);
    policy_->onPageAllocated(page);
    chargeInline(cfg_.mem.minorFaultLatency + cfg_.mem.swapLatency);
    metrics_.stats().inc("swap_ins");
    vmstat_.add(stats::VmItem::Pswpin, page->node());
}

void
Simulator::allocateFrameFor(Page *page)
{
    const MemCgroupId cg = page->memcg();
    for (int attempt = 0; attempt < 3; ++attempt) {
        NodeId nid = policy_->selectAllocationNode(*page);
        if (nid != kInvalidNode && cg != kRootMemcg &&
            !memcg_.withinMax(cg, mem_.node(nid).tier())) {
            // Hard cap hit on the policy's preferred tier: first try
            // to demote this tenant's own pages off it, then fall back
            // to a lower tier where the group still has headroom. If
            // neither works the page is placed over cap — a fault must
            // not fail, so the cap gates placement, not progress.
            const TierRank capped = mem_.node(nid).tier();
            memcgReclaimTier(*memcg_.find(cg), capped, 1);
            if (!memcg_.withinMax(cg, capped)) {
                TierRank down = capped;
                while (mem_.lowerTier(down, down)) {
                    if (!memcg_.withinMax(cg, down))
                        continue;
                    const NodeId alt =
                        mem_.pickNodeWithSpace(down, /*respectMin=*/true);
                    if (alt != kInvalidNode) {
                        vmstat_.add(stats::VmItem::PgtenantAllocFallback,
                                    alt);
                        nid = alt;
                        break;
                    }
                }
            }
        }
        if (nid != kInvalidNode) {
            Node &node = mem_.node(nid);
            Paddr pa;
            if (node.allocFrame(pa)) {
                page->placeOn(nid, pa);
                memcg_.charge(cg, node.tier());
                // pgfault_dram counts faults placed on the rank-0
                // tier; pgfault_pm covers every lower tier.
                vmstat_.add(node.tier() == 0
                                ? stats::VmItem::PgfaultDram
                                : stats::VmItem::PgfaultPm,
                            nid);
                // kswapd wakeup: the allocator noticed a node dipping
                // below its low watermark.
                mem_.forEachNode([this](Node &n) {
                    const auto id = static_cast<std::size_t>(n.id());
                    if (n.belowLow()) {
                        if (!belowLow_[id]) {
                            belowLow_[id] = true;
                            vmstat_.add(
                                stats::VmItem::WatermarkLowCross, n.id());
                            trace_.record(
                                stats::TraceEventType::WatermarkCross,
                                n.id(), n.freeFrames());
                        }
                        maybeReclaim(n);
                    } else if (belowLow_[id] && n.aboveHigh()) {
                        // Hysteresis: re-arm only once the node has
                        // been refilled past the high watermark.
                        belowLow_[id] = false;
                    }
                });
                return;
            }
        }
        // Direct reclaim: push on the most-used node of the lowest tier.
        const TierRank lowest = mem_.tierOrder().back();
        Node *worst = nullptr;
        for (NodeId id : mem_.tier(lowest)) {
            Node &n = mem_.node(id);
            if (!worst || n.freeFrames() < worst->freeFrames())
                worst = &n;
        }
        MCLOCK_ASSERT(worst != nullptr);
        maybeReclaim(*worst);
    }
    MCLOCK_FATAL("allocation failed after direct reclaim (OOM)");
}

}  // namespace sim
}  // namespace mclock
