/**
 * @file
 * Periodic daemon scheduling (kpromoted, kswapd, profiling threads).
 *
 * Daemons are kernel threads that wake on a fixed interval of simulated
 * time. The simulator dispatches any due daemons before advancing the
 * clock past their wake times, so daemon activity interleaves with
 * application accesses at the right simulated instants.
 */

#ifndef MCLOCK_SIM_DAEMON_HH_
#define MCLOCK_SIM_DAEMON_HH_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "base/types.hh"

namespace mclock {
namespace sim {

/** Handle identifying a registered daemon. */
using DaemonId = std::size_t;

/** Registry and dispatcher for periodic daemons. */
class DaemonScheduler
{
  public:
    /**
     * Register a daemon.
     *
     * @param name     diagnostic name ("kpromoted")
     * @param interval wake period in simulated ns
     * @param fn       body, invoked with the wake time
     * @return handle usable with setInterval()/setEnabled()
     */
    DaemonId add(std::string name, SimTime interval,
                 std::function<void(SimTime)> fn);

    /** Earliest pending wake time, or SimTime max if none. */
    SimTime
    nextDue() const
    {
        return nextDue_;
    }

    /**
     * Run every daemon whose wake time is <= @p now, in wake-time order.
     * Daemons that become due again while running (should not happen for
     * sane intervals) run again on the next call.
     */
    void runDue(SimTime now);

    /** Change a daemon's period (takes effect after its next wake). */
    void setInterval(DaemonId id, SimTime interval);

    void setEnabled(DaemonId id, bool enabled);

    std::uint64_t invocations(DaemonId id) const;

  private:
    struct Entry
    {
        std::string name;
        SimTime interval;
        SimTime nextWake;
        std::function<void(SimTime)> fn;
        bool enabled = true;
        std::uint64_t invocations = 0;
    };

    void recomputeNextDue();

    std::vector<Entry> daemons_;
    SimTime nextDue_ = std::numeric_limits<SimTime>::max();
};

}  // namespace sim
}  // namespace mclock

#endif  // MCLOCK_SIM_DAEMON_HH_
