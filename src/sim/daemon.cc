#include "sim/daemon.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mclock {
namespace sim {

DaemonId
DaemonScheduler::add(std::string name, SimTime interval,
                     std::function<void(SimTime)> fn)
{
    MCLOCK_ASSERT(interval > 0);
    Entry e;
    e.name = std::move(name);
    e.interval = interval;
    e.nextWake = interval;  // first wake one period after start
    e.fn = std::move(fn);
    daemons_.push_back(std::move(e));
    recomputeNextDue();
    return daemons_.size() - 1;
}

void
DaemonScheduler::runDue(SimTime now)
{
    while (nextDue_ <= now) {
        // Find the earliest due daemon and run it.
        Entry *due = nullptr;
        for (auto &e : daemons_) {
            if (e.enabled && e.nextWake <= now &&
                (!due || e.nextWake < due->nextWake)) {
                due = &e;
            }
        }
        if (!due)
            break;
        const SimTime wake = due->nextWake;
        due->nextWake += due->interval;
        ++due->invocations;
        due->fn(wake);
        recomputeNextDue();
    }
}

void
DaemonScheduler::setInterval(DaemonId id, SimTime interval)
{
    MCLOCK_ASSERT(id < daemons_.size() && interval > 0);
    Entry &e = daemons_[id];
    // Keep the phase: the pending wake moves to lastWake + newInterval.
    MCLOCK_ASSERT(e.nextWake >= e.interval);
    e.nextWake = e.nextWake - e.interval + interval;
    e.interval = interval;
    recomputeNextDue();
}

void
DaemonScheduler::setEnabled(DaemonId id, bool enabled)
{
    MCLOCK_ASSERT(id < daemons_.size());
    daemons_[id].enabled = enabled;
    recomputeNextDue();
}

std::uint64_t
DaemonScheduler::invocations(DaemonId id) const
{
    MCLOCK_ASSERT(id < daemons_.size());
    return daemons_[id].invocations;
}

void
DaemonScheduler::recomputeNextDue()
{
    nextDue_ = std::numeric_limits<SimTime>::max();
    for (const auto &e : daemons_) {
        if (e.enabled)
            nextDue_ = std::min(nextDue_, e.nextWake);
    }
}

}  // namespace sim
}  // namespace mclock
