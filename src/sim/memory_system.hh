/**
 * @file
 * The collection of NUMA nodes forming the tiered memory system.
 *
 * Tiers are disjoint sets of nodes ordered by rank from high
 * performance / low capacity (rank 0, DRAM) to low performance / high
 * capacity (PM). All nodes tagged with the same rank form one tier —
 * for the paper's two-tier machine that means all DRAM nodes form the
 * DRAM tier and all PM nodes form the PM tier, exactly as it defines.
 * Ranks without nodes are legal (they simply do not appear in
 * tierOrder()), so a two-tier machine remains expressible under a
 * three-tier timing table.
 */

#ifndef MCLOCK_SIM_MEMORY_SYSTEM_HH_
#define MCLOCK_SIM_MEMORY_SYSTEM_HH_

#include <memory>
#include <vector>

#include "base/types.hh"
#include "sim/node.hh"

namespace mclock {
namespace sim {

/** Declarative node description used by machine configs. */
struct NodeSpec
{
    TierRank tier;
    std::size_t bytes;
};

/** Owns the nodes and answers tier-ordering queries. */
class MemorySystem
{
  public:
    explicit MemorySystem(const std::vector<NodeSpec> &specs);

    std::size_t numNodes() const { return nodes_.size(); }

    Node &node(NodeId id);
    const Node &node(NodeId id) const;

    /** Node ids belonging to the tier at @p rank, in id order. */
    const std::vector<NodeId> &tier(TierRank rank) const;

    /** Number of tiers that actually have nodes. */
    std::size_t numTiers() const { return tierOrder_.size(); }

    /** Tier ranks present, ordered best-first (fastest tier first). */
    const std::vector<TierRank> &tierOrder() const { return tierOrder_; }

    /**
     * The next better (adjacent faster) tier than @p rank, if any.
     * Adjacency is over the tiers present, so node-less ranks are
     * skipped. @return true and sets @p out when a higher tier exists
     */
    bool higherTier(TierRank rank, TierRank &out) const;

    /** The next worse (adjacent slower) tier than @p rank, if any. */
    bool lowerTier(TierRank rank, TierRank &out) const;

    /** Total frames across a tier. */
    std::size_t tierFrames(TierRank rank) const;

    /** Total free frames across a tier. */
    std::size_t tierFreeFrames(TierRank rank) const;

    /**
     * Find a node in the tier at @p rank with a free frame, preferring
     * the one with the most free frames (a simple zone-balancing
     * stand-in).
     *
     * @param respectMin when true, only consider nodes whose free count
     *                    stays above their min watermark reserve
     * @return node id or kInvalidNode
     */
    NodeId pickNodeWithSpace(TierRank rank, bool respectMin) const;

    template <typename Fn>
    void
    forEachNode(Fn &&fn)
    {
        for (auto &n : nodes_)
            fn(*n);
    }

  private:
    std::vector<std::unique_ptr<Node>> nodes_;
    /** Indexed by tier rank; empty vectors for node-less ranks. */
    std::vector<std::vector<NodeId>> tierNodes_;
    std::vector<TierRank> tierOrder_;
};

}  // namespace sim
}  // namespace mclock

#endif  // MCLOCK_SIM_MEMORY_SYSTEM_HH_
