/**
 * @file
 * The collection of NUMA nodes forming the tiered memory system.
 *
 * Tiers are disjoint sets of nodes ordered from high performance / low
 * capacity (DRAM) to low performance / high capacity (PM). All DRAM
 * nodes form the DRAM tier and all PM nodes form the PM tier, exactly as
 * the paper defines.
 */

#ifndef MCLOCK_SIM_MEMORY_SYSTEM_HH_
#define MCLOCK_SIM_MEMORY_SYSTEM_HH_

#include <memory>
#include <vector>

#include "base/types.hh"
#include "sim/node.hh"

namespace mclock {
namespace sim {

/** Declarative node description used by machine configs. */
struct NodeSpec
{
    TierKind kind;
    std::size_t bytes;
};

/** Owns the nodes and answers tier-ordering queries. */
class MemorySystem
{
  public:
    explicit MemorySystem(const std::vector<NodeSpec> &specs);

    std::size_t numNodes() const { return nodes_.size(); }

    Node &node(NodeId id);
    const Node &node(NodeId id) const;

    /** Node ids belonging to @p kind, in id order. */
    const std::vector<NodeId> &tier(TierKind kind) const;

    /** Tier kinds present, ordered best-first (DRAM before PM). */
    const std::vector<TierKind> &tierOrder() const { return tierOrder_; }

    /**
     * The next better tier than @p kind, if any.
     * @return true and sets @p out when a higher tier exists
     */
    bool higherTier(TierKind kind, TierKind &out) const;

    /** The next worse tier than @p kind, if any. */
    bool lowerTier(TierKind kind, TierKind &out) const;

    /** Total frames across a tier. */
    std::size_t tierFrames(TierKind kind) const;

    /** Total free frames across a tier. */
    std::size_t tierFreeFrames(TierKind kind) const;

    /**
     * Find a node in @p kind with a free frame, preferring the one with
     * the most free frames (a simple zone-balancing stand-in).
     *
     * @param respectMin when true, only consider nodes whose free count
     *                    stays above their min watermark reserve
     * @return node id or kInvalidNode
     */
    NodeId pickNodeWithSpace(TierKind kind, bool respectMin) const;

    template <typename Fn>
    void
    forEachNode(Fn &&fn)
    {
        for (auto &n : nodes_)
            fn(*n);
    }

  private:
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<NodeId> tierNodes_[kNumTierKinds];
    std::vector<TierKind> tierOrder_;
};

}  // namespace sim
}  // namespace mclock

#endif  // MCLOCK_SIM_MEMORY_SYSTEM_HH_
