/**
 * @file
 * Run metrics with the paper's 20-second windowed accounting.
 *
 * Figures 8 and 9 report, per 20 s window, the number of pages promoted
 * and the percentage of recently promoted pages that were re-accessed
 * from DRAM. "Recently" means promoted in the last kpromoted scan: a
 * promoted page counts as re-accessed if a memory-visible DRAM access
 * touches it before the end of the promotion round following its own.
 */

#ifndef MCLOCK_SIM_METRICS_HH_
#define MCLOCK_SIM_METRICS_HH_

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "base/units.hh"
#include "vm/page.hh"

namespace mclock {
namespace sim {

/** Aggregates for one time window. */
struct MetricsWindow
{
    std::uint64_t accesses = 0;
    /** Memory-visible accesses served by each tier, indexed by rank. */
    std::vector<std::uint64_t> tierAccesses;
    std::uint64_t llcHits = 0;
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t promotedReaccessed = 0;

    double
    reaccessPercent() const
    {
        return promotions
            ? 100.0 * static_cast<double>(promotedReaccessed) /
              static_cast<double>(promotions)
            : 0.0;
    }

    /** Accesses served by the tier at @p rank (0 if never touched). */
    std::uint64_t
    tierAccessCount(TierRank rank) const
    {
        const auto idx = static_cast<std::size_t>(rank);
        return idx < tierAccesses.size() ? tierAccesses[idx] : 0;
    }
};

/** Windowed and total metrics for one simulation run. */
class Metrics
{
  public:
    explicit Metrics(SimTime windowLen = 20_s) : windowLen_(windowLen) {}

    /**
     * Declare the machine's tier count so the per-tier counter vectors
     * can be sized once up front instead of growing on first touch.
     * Purely an allocation hint: counter values are unaffected, and the
     * accessors treat missing and zero entries identically.
     */
    void presizeTiers(std::size_t numTiers);

    // Called once per simulated access; defined inline so the call
    // disappears into Simulator::accessOnePage.
    void
    recordAccess(SimTime now, TierRank tier, bool llcHit)
    {
        auto &w = windowAt(now);
        ++w.accesses;
        ++totalAccesses_;
        if (llcHit) {
            ++w.llcHits;
            return;
        }
        bumpAt(w.tierAccesses, tier, 1);
        bumpAt(tierAccessTotals_, tier, 1);
    }

    /** Charge @p lat ns of memory service time to the tier at @p tier. */
    void
    recordMemLatency(TierRank tier, SimTime lat)
    {
        bumpAt(tierLatencyTotals_, tier, lat);
    }

    /**
     * A page was migrated upward. Stamps the page with the current
     * promotion round for re-access tracking.
     */
    void recordPromotion(SimTime now, Page *page);

    void recordDemotion(SimTime now);

    /** kpromoted (or equivalent) starts a new scan round. */
    void beginPromotionRound() { ++round_; }

    /**
     * Called for memory-visible accesses served above the bottom tier;
     * counts the first re-access of a page promoted in this or the
     * previous round.
     */
    void maybeRecordReaccess(SimTime now, Page *page);

    const std::vector<MetricsWindow> &windows() const { return windows_; }
    SimTime windowLength() const { return windowLen_; }
    std::uint64_t currentRound() const { return round_; }

    std::uint64_t totalAccesses() const { return totalAccesses_; }
    std::uint64_t totalPromotions() const { return totalPromotions_; }
    std::uint64_t totalDemotions() const { return totalDemotions_; }
    std::uint64_t totalReaccessed() const { return totalReaccessed_; }

    /** Total memory-visible accesses served by the tier at @p rank. */
    std::uint64_t totalTierAccesses(TierRank rank) const;
    /** Total ns of memory service time spent in the tier at @p rank. */
    SimTime totalTierLatency(TierRank rank) const;

    /** Free-form named counters for policy-specific events. */
    StatRegistry &stats() { return stats_; }
    const StatRegistry &stats() const { return stats_; }

    /**
     * Accumulate @p other into this instance: windows add index-wise
     * (both sides bucket simulated time with the same window length),
     * totals and per-tier counters add element-wise, named stats add by
     * key. The reduction is commutative, so the sharded runtime's
     * merged view is identical for any worker count. Panics if the
     * window lengths differ.
     */
    void mergeFrom(const Metrics &other);

  private:
    /**
     * Window for time @p now. The simulated clock is monotonic, so
     * nearly every call lands in the same window as the previous one;
     * the cached-bounds check replaces a 64-bit division per access.
     */
    MetricsWindow &
    windowAt(SimTime now)
    {
        if (now >= curWinStart_ && now < curWinEnd_) [[likely]]
            return windows_[curWinIdx_];
        return windowSlow(now);
    }

    /** Out-of-line path: recompute the index, grow windows_. */
    MetricsWindow &windowSlow(SimTime now);

    static void
    bumpAt(std::vector<std::uint64_t> &counts, TierRank rank,
           std::uint64_t delta)
    {
        const auto idx = static_cast<std::size_t>(rank);
        if (counts.size() <= idx) [[unlikely]]
            counts.resize(idx + 1);
        counts[idx] += delta;
    }

    SimTime windowLen_;
    std::size_t numTiers_ = 0;  ///< presize hint for tier vectors
    // Bounds of the most recently touched window (see windowAt).
    SimTime curWinStart_ = 0;
    SimTime curWinEnd_ = 0;  ///< exclusive; 0 forces a recompute
    std::size_t curWinIdx_ = 0;
    std::vector<MetricsWindow> windows_;
    std::uint64_t round_ = 1;
    std::uint64_t totalAccesses_ = 0;
    std::uint64_t totalPromotions_ = 0;
    std::uint64_t totalDemotions_ = 0;
    std::uint64_t totalReaccessed_ = 0;
    std::vector<std::uint64_t> tierAccessTotals_;  ///< indexed by rank
    std::vector<SimTime> tierLatencyTotals_;       ///< indexed by rank
    StatRegistry stats_;
};

}  // namespace sim
}  // namespace mclock

#endif  // MCLOCK_SIM_METRICS_HH_
