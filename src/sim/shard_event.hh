/**
 * @file
 * Cross-shard event records and the per-shard ordered event log.
 *
 * A sharded machine runs S sub-simulators in parallel between epoch
 * barriers. Anything one shard does that the coordinator must observe
 * (completed promotions, demotions, exchanges) is appended to the
 * shard's own log — single-writer, no locking — and drained at the
 * barrier, where the coordinator k-way merges all logs by *seniority*:
 *
 *     (sim_time, shard_id, seq)
 *
 * Simulated time orders events first; the shard id breaks wall-clock
 * ties between shards, and the per-shard monotonic sequence number
 * breaks same-time ties within one shard (append order). The merged
 * stream is therefore a pure function of each shard's deterministic
 * execution — independent of how many worker threads ran the epoch —
 * which is what makes `--shards 1` and `--shards 8` bit-identical.
 */

#ifndef MCLOCK_SIM_SHARD_EVENT_HH_
#define MCLOCK_SIM_SHARD_EVENT_HH_

#include <cstdint>
#include <utility>
#include <vector>

#include "base/sync.hh"
#include "base/types.hh"

namespace mclock {
namespace sim {

/** What a shard reports across the epoch barrier. */
enum class ShardEventKind : std::uint8_t {
    Promote,   ///< page migrated one tier up (vpn, arg = dst node)
    Demote,    ///< page migrated one tier down (vpn, arg = dst node)
    Exchange,  ///< two-sided tiered exchange (vpn = hot, arg = cold vpn)
};

/** One cross-shard event, stamped for seniority ordering. */
struct ShardEvent
{
    SimTime time = 0;         ///< shard-local simulated time
    std::uint32_t shard = 0;  ///< originating shard
    std::uint64_t seq = 0;    ///< per-shard append counter
    ShardEventKind kind = ShardEventKind::Promote;
    std::uint64_t vpn = 0;    ///< shard-local vpn of the moved page
    std::uint64_t arg = 0;    ///< kind-specific (see ShardEventKind)
};

/** Strict-weak seniority order: (time, shard, seq). */
inline bool
shardEventSenior(const ShardEvent &a, const ShardEvent &b)
{
    if (a.time != b.time)
        return a.time < b.time;
    if (a.shard != b.shard)
        return a.shard < b.shard;
    return a.seq < b.seq;
}

/**
 * Append-only event log owned by one shard. The owning sub-simulator
 * appends from its worker thread; the coordinator drains at the epoch
 * barrier (never concurrently — the barrier is the handoff point).
 * The sequence counter is monotonic across the whole run, not per
 * epoch, so replaying merged epochs back to back yields one totally
 * ordered stream.
 */
class ShardEventLog
{
  public:
    ShardEventLog() = default;

    void bind(std::uint32_t shard) { shard_ = shard; }

    std::uint32_t shard() const { return shard_; }

    void
    append(ShardEventKind kind, SimTime time, std::uint64_t vpn,
           std::uint64_t arg)
    {
        // Single-owner discipline: between barriers the log belongs to
        // the shard's worker; at the barrier ownership hands off to
        // the coordinator, which drains it (base/sync.hh ThreadRole).
        owner_.assertHeld();
        buf_.push_back({time, shard_, seq_++, kind, vpn, arg});
    }

    std::size_t
    size() const
    {
        owner_.assertHeld();
        return buf_.size();
    }

    /** Hand the epoch's events to the coordinator and reset the log. */
    std::vector<ShardEvent>
    drain()
    {
        owner_.assertHeld();
        std::vector<ShardEvent> out;
        out.swap(buf_);
        return out;
    }

  private:
    std::uint32_t shard_ = 0;
    /** Barrier-passed ownership: worker between barriers, coordinator
     *  at the barrier (see append). */
    base::ThreadRole owner_;
    std::uint64_t seq_ MCLOCK_GUARDED_BY(owner_) = 0;
    std::vector<ShardEvent> buf_ MCLOCK_GUARDED_BY(owner_);
};

}  // namespace sim
}  // namespace mclock

#endif  // MCLOCK_SIM_SHARD_EVENT_HH_
