#include "sim/machine.hh"

#include "base/units.hh"

namespace mclock {
namespace sim {

MachineConfig
paperMachineScaled()
{
    MachineConfig cfg;
    cfg.nodes = {
        {TierKind::Dram, 64_MiB},
        {TierKind::Pmem, 256_MiB},
    };
    cfg.cache.sizeBytes = 4_MiB;
    return cfg;
}

MachineConfig
paperMachineTwoSocket()
{
    MachineConfig cfg;
    cfg.nodes = {
        {TierKind::Dram, 32_MiB},
        {TierKind::Dram, 32_MiB},
        {TierKind::Pmem, 128_MiB},
        {TierKind::Pmem, 128_MiB},
    };
    cfg.cache.sizeBytes = 4_MiB;
    return cfg;
}

MachineConfig
paperMachineMemoryMode()
{
    MachineConfig cfg;
    // The OS sees only the PM capacity; DRAM is the memory-side cache.
    cfg.nodes = {
        {TierKind::Pmem, 256_MiB},
    };
    cfg.cache.sizeBytes = 4_MiB;
    return cfg;
}

MachineConfig
paperMachineThreeTier()
{
    MachineConfig cfg;
    // CXL-attached DRAM: ~2.5x the local-DRAM load latency (CXL.mem
    // round trip over the link), symmetric-ish bandwidth between local
    // DRAM and Optane. Stores post slightly faster than loads complete.
    cfg.mem.tiers = {
        {"DRAM", {80_ns, 80_ns, 12.0, 12.0}},
        {"CXL", {200_ns, 180_ns, 9.0, 9.0}},
        {"PMEM", {300_ns, 200_ns, 6.6, 2.3}},
    };
    cfg.nodes = {
        {0, 32_MiB},
        {1, 64_MiB},
        {2, 256_MiB},
    };
    cfg.cache.sizeBytes = 4_MiB;
    return cfg;
}

MachineConfig
benchMachine()
{
    MachineConfig cfg;
    cfg.nodes = {
        {TierKind::Dram, 16_MiB},
        {TierKind::Pmem, 64_MiB},
    };
    cfg.cache.sizeBytes = 1_MiB;
    return cfg;
}

MachineConfig
tinyTestMachine()
{
    MachineConfig cfg;
    cfg.nodes = {
        {TierKind::Dram, 2_MiB},
        {TierKind::Pmem, 8_MiB},
    };
    cfg.cache.enabled = true;
    cfg.cache.sizeBytes = 64_KiB;
    cfg.cache.ways = 4;
    return cfg;
}

}  // namespace sim
}  // namespace mclock
