#include "sim/machine.hh"

#include "base/units.hh"

namespace mclock {
namespace sim {

MachineConfig
paperMachineScaled()
{
    MachineConfig cfg;
    cfg.nodes = {
        {TierKind::Dram, 64_MiB},
        {TierKind::Pmem, 256_MiB},
    };
    cfg.cache.sizeBytes = 4_MiB;
    return cfg;
}

MachineConfig
paperMachineTwoSocket()
{
    MachineConfig cfg;
    cfg.nodes = {
        {TierKind::Dram, 32_MiB},
        {TierKind::Dram, 32_MiB},
        {TierKind::Pmem, 128_MiB},
        {TierKind::Pmem, 128_MiB},
    };
    cfg.cache.sizeBytes = 4_MiB;
    return cfg;
}

MachineConfig
paperMachineMemoryMode()
{
    MachineConfig cfg;
    // The OS sees only the PM capacity; DRAM is the memory-side cache.
    cfg.nodes = {
        {TierKind::Pmem, 256_MiB},
    };
    cfg.cache.sizeBytes = 4_MiB;
    return cfg;
}

MachineConfig
benchMachine()
{
    MachineConfig cfg;
    cfg.nodes = {
        {TierKind::Dram, 16_MiB},
        {TierKind::Pmem, 64_MiB},
    };
    cfg.cache.sizeBytes = 1_MiB;
    return cfg;
}

MachineConfig
tinyTestMachine()
{
    MachineConfig cfg;
    cfg.nodes = {
        {TierKind::Dram, 2_MiB},
        {TierKind::Pmem, 8_MiB},
    };
    cfg.cache.enabled = true;
    cfg.cache.sizeBytes = 64_KiB;
    cfg.cache.ways = 4;
    return cfg;
}

}  // namespace sim
}  // namespace mclock
