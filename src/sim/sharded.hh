/**
 * @file
 * Sharded machine: one logical host partitioned into S shards that
 * execute in parallel between deterministic epoch barriers.
 *
 * Each shard is a complete, unmodified Simulator over 1/S of the
 * machine's node capacities — shard-local page tables and arenas
 * (vm/AddressSpace), CLOCK/LRU lists (pfra), LLC, swap, RNG, policy
 * daemons, metrics, and vmstat — so shards share no mutable state and
 * an epoch's S sub-simulations are embarrassingly parallel. The shard
 * count S is a *semantic* property of the machine (it defines the VPN
 * partition); the number of worker threads is purely an execution
 * width, exactly like the harness's `--jobs`:
 *
 *   - every shard consumes only its own deterministic operation
 *     stream, seeds, and per-epoch budget grant;
 *   - cross-shard observation happens only at epoch barriers, where
 *     the coordinator k-way merges the shards' event logs in seniority
 *     order (sim_time, shard_id, seq) — see sim/shard_event.hh;
 *   - the merged stream drives the only cross-shard feedback, the
 *     optional global promotion budget, whose next-epoch grants are a
 *     pure function of the merged order.
 *
 * Result: running with 1 worker or 8 workers is bit-identical, the
 * same bar the harness thread pool set for `--jobs`.
 */

#ifndef MCLOCK_SIM_SHARDED_HH_
#define MCLOCK_SIM_SHARDED_HH_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/sync.hh"
#include "sim/machine.hh"
#include "sim/metrics.hh"
#include "sim/shard_event.hh"
#include "sim/simulator.hh"
#include "stats/tracepoint.hh"
#include "stats/vmstat.hh"
#include "vm/sharded_address_space.hh"

namespace mclock {
namespace sim {

/** How a sharded machine executes. */
struct ShardOptions
{
    /** Semantic partition count S (fixed per machine/scenario). */
    unsigned shards = 1;

    /**
     * Worker threads driving the shards each epoch (clamped to the
     * shard count; 0 and 1 both mean single-threaded). Changing this
     * changes wall-clock time only, never results.
     */
    unsigned workers = 1;

    /**
     * Global promotions allowed per epoch across all shards; 0 means
     * ungoverned. Grants are distributed evenly in epoch 0 and then
     * re-divided each barrier by merged seniority order: shards whose
     * promotions came earliest in the merged stream earn the next
     * epoch's credits (every shard keeps a floor of one so none
     * starves).
     */
    std::uint64_t epochPromoteBudget = 0;
};

/**
 * Partition @p whole into per-shard machines: node capacities and swap
 * slots divided by @p shards in whole pages, with the remainder pages
 * distributed one each to the low-numbered shards (floor one page per
 * shard) — capacity is conserved: per node, the shard shares sum to
 * the whole machine exactly. Each shard gets an independent
 * deterministic seed stream. With shards == 1 the config — seed
 * included — is @p whole itself, so a 1-shard machine is the
 * unpartitioned host, bit for bit.
 */
MachineConfig shardMachine(const MachineConfig &whole, unsigned shards,
                           unsigned shard);

/** S-shard machine with epoch-barrier coordination (see file docs). */
class ShardedSimulator
{
  public:
    ShardedSimulator(const MachineConfig &whole, ShardOptions opts);
    ~ShardedSimulator();

    ShardedSimulator(const ShardedSimulator &) = delete;
    ShardedSimulator &operator=(const ShardedSimulator &) = delete;

    unsigned shards() const
    {
        return static_cast<unsigned>(sims_.size());
    }

    /** Worker threads an epoch actually uses. */
    unsigned workers() const { return workers_; }

    Simulator &shard(unsigned s) { return *sims_[s]; }
    const Simulator &shard(unsigned s) const { return *sims_[s]; }

    /** Routing facade over the shard-local address spaces. */
    ShardedAddressSpace &space() { return space_; }

    /**
     * Route one unsupervised access through the facade to the owning
     * shard (global tagged address). Coordinator-thread convenience
     * for tests and small tools — never call while an epoch is in
     * flight on worker threads.
     */
    void read(Vaddr globalVa, std::size_t bytes = 8);
    void write(Vaddr globalVa, std::size_t bytes = 8);

    /**
     * Per-epoch shard driver: stream the epoch's operations into
     * @p shard (shard-local addresses) and return true while the shard
     * has more epochs of work. Called once per (active shard, epoch),
     * possibly concurrently across shards — it must touch only the
     * given shard's state plus its own shard-local captures.
     */
    using EpochDriver =
        std::function<bool(Simulator &sim, unsigned shard,
                           std::uint64_t epoch)>;

    /**
     * Run epochs until every shard's driver has returned false:
     * each epoch = parallel shard sub-simulations (beginShardEpoch
     * with the shard's grant, then the driver), a join barrier, and
     * the deterministic merge (drain logs, seniority-sort, accumulate,
     * recompute grants).
     */
    void run(const EpochDriver &driver);

    /** Epoch barriers executed by run(). */
    std::uint64_t
    epochs() const
    {
        coordinator_.assertHeld();
        return epochs_;
    }

    /** Merged cross-shard event stream, in seniority order. */
    const std::vector<ShardEvent> &
    events() const
    {
        coordinator_.assertHeld();
        return events_;
    }

    /** Coordinator tracepoints (`shard_merge` per epoch). */
    const stats::TraceBuffer &trace() const { return trace_; }

    /** Shard clocks advance independently; makespan is the slowest. */
    SimTime makespan() const;

    std::uint64_t totalAppOps() const;

    /**
     * Shard-local vmstat counters reduced into one view (shard order,
     * node-wise), plus the coordinator's own `pgshard_merge`. Identical
     * for any worker count.
     */
    stats::VmStat mergedVmstat() const;

    /** Shard-local metrics reduced the same way. */
    Metrics mergedMetrics() const;

  private:
    /**
     * Drive one (shard, epoch) sub-simulation with the shard's
     * promotion @p grant. Runs on worker threads — it must never touch
     * coordinator-guarded merge state, which -Wthread-safety enforces:
     * this function does not assert the coordinator role, so any
     * access to a MCLOCK_GUARDED_BY(coordinator_) member here is a
     * compile error (the grant is snapshotted by the coordinator and
     * passed in by value for exactly that reason).
     */
    void runEpochOn(unsigned s, std::uint64_t epoch,
                    std::uint64_t grant, const EpochDriver &driver);

    void mergeEpoch(std::uint64_t epoch) MCLOCK_REQUIRES(coordinator_);

    ShardOptions opts_;
    unsigned workers_ = 1;
    std::vector<std::unique_ptr<Simulator>> sims_;
    /** Per-shard event logs: single-writer (the owning worker) between
     *  barriers; drained only by the coordinator at the barrier. */
    std::vector<ShardEventLog> logs_;
    ShardedAddressSpace space_;

    /**
     * Coordinator thread-confinement capability (base/sync.hh): the
     * merge state below is owned by whichever thread runs run() /
     * mergeEpoch() and is handed off only at the epoch join barrier.
     * Functions that may execute on worker threads (runEpochOn) never
     * assert this role, so -Wthread-safety rejects any worker-side
     * access to guarded members at compile time.
     */
    base::ThreadRole coordinator_;

    /** Next-epoch promotion grants, recomputed at each merge. */
    std::vector<std::uint64_t> grants_ MCLOCK_GUARDED_BY(coordinator_);
    /** Shards whose driver still wants epochs (uint8: thread-safe
     *  element writes, unlike vector<bool>). Written element-disjoint
     *  by workers (shard s only from s's owner), read by the
     *  coordinator after the join barrier — not role-guarded. */
    std::vector<std::uint8_t> active_;
    std::vector<ShardEvent> events_ MCLOCK_GUARDED_BY(coordinator_);
    stats::VmStat coordVmstat_;
    stats::TraceBuffer trace_;
    /** Clock the coordinator trace stamps with (max shard time). */
    SimTime mergeClock_ MCLOCK_GUARDED_BY(coordinator_) = 0;
    std::uint64_t epochs_ MCLOCK_GUARDED_BY(coordinator_) = 0;
};

}  // namespace sim
}  // namespace mclock

#endif  // MCLOCK_SIM_SHARDED_HH_
