/**
 * @file
 * Page migration engine: the migrate_pages() analogue, run as a
 * transaction (NOMAD-style).
 *
 * A migration proceeds through three phases once a destination frame is
 * reserved: copy the contents (costed by tier bandwidths), shoot down
 * stale TLB entries, and remap the page onto the new frame (freeing the
 * source frame and invalidating stale LLC lines). Any phase can fail —
 * a device error or a racing write during the copy, a shootdown
 * timeout, the destination frame raced away before the remap — in which
 * case the transaction aborts and rolls back: the reserved frame is
 * released and the page stays mapped on its source frame, untouched.
 * Whether a phase fails is decided by the (optional, deterministic)
 * FaultInjector; with injection disabled every transaction commits and
 * the engine behaves exactly like the old single-shot migrate().
 *
 * Nimble-style two-sided page exchange runs as one transaction too.
 */

#ifndef MCLOCK_SIM_MIGRATION_HH_
#define MCLOCK_SIM_MIGRATION_HH_

#include <cstdint>

#include "base/types.hh"
#include "mem/memory_config.hh"
#include "sim/fault_injector.hh"

namespace mclock {

class CacheModel;
class Page;

#ifdef MCLOCK_DEBUG_VM
namespace debug {
class VmChecker;
}  // namespace debug
#endif

namespace sim {

class MemorySystem;

/** Why a migration transaction did not commit. */
enum class MigrateOutcome : std::uint8_t {
    Success,   ///< transaction committed
    SameNode,  ///< no-op: the page already sits on the destination node
    Busy,      ///< page locked or unevictable; never entered a transaction
    NoFrame,   ///< destination had no free frame to reserve
    Aborted,   ///< a phase failed (injected); rolled back cleanly
};

/**
 * Result of one migration/exchange transaction. [[nodiscard]]: the
 * outcome decides whether the caller's page actually moved — a dropped
 * result means list placement and retry/rollback handling are skipped.
 */
struct [[nodiscard]] MigrateResult
{
    MigrateOutcome outcome = MigrateOutcome::Success;
    /** The failing phase when outcome == Aborted. */
    FaultPhase phase = FaultPhase::None;
    /** Injected failure will recur on retry (page poisoned). */
    bool persistent = false;

    bool ok() const { return outcome == MigrateOutcome::Success; }
};

/** Executes page migrations and accounts for their cost. */
class MigrationEngine
{
  public:
    /** @param faults may be null (no injection; always commits). */
    MigrationEngine(MemorySystem &mem, const MemoryConfig &cfg,
                    CacheModel *llc, FaultInjector *faults = nullptr);

    /**
     * Migrate @p page to node @p dst as a transaction.
     *
     * On success @p cost holds the simulated time the migration
     * consumed; on an abort it holds the partial work burned before the
     * failing phase (both charged by the caller, inline or background
     * depending on context). The page's LRU membership is untouched —
     * callers manage list moves, and on an abort the page is still
     * resident on its source node, so callers return it to its source
     * list. A migration to the page's own node is a no-op (SameNode),
     * reported before the locked/unevictable check so a locked page
     * headed nowhere is not a counted failure.
     */
    MigrateResult migrate(Page *page, NodeId dst, SimTime &cost);

    /**
     * Two-sided exchange of the frames of @p a and @p b (Nimble's
     * optimized exchange: one of the copies rides the other's buffer, so
     * the cost is less than two independent migrations). Runs as one
     * transaction keyed on @p a; an abort leaves both pages in place.
     */
    MigrateResult exchange(Page *a, Page *b, SimTime &cost);

    std::uint64_t migrations() const { return migrations_; }
    std::uint64_t promotions() const { return promotions_; }
    std::uint64_t demotions() const { return demotions_; }

    /** Completed exchanges (same-tier ones included). */
    std::uint64_t exchanges() const { return exchanges_; }

    /** Completed exchanges whose two nodes sat on different tiers. */
    std::uint64_t tieredExchanges() const { return tieredExchanges_; }

    std::uint64_t failed() const { return failed_; }

    /** Transactions aborted by an injected phase failure. */
    std::uint64_t aborts() const { return aborts_; }

    /** Aborts after the copy completed (state had to be rolled back). */
    std::uint64_t rollbacks() const { return rollbacks_; }

#ifdef MCLOCK_DEBUG_VM
    /**
     * Attach the DEBUG_VM checker: each committing transaction then
     * reports its copy/shootdown/remap phases and its commit (with the
     * pre-move tier ranks) for isolation, locked-remap, and
     * poisoned-promote validation.
     */
    void setChecker(debug::VmChecker *checker) { checker_ = checker; }
#endif

  private:
    /** Injector verdict for the next transaction (None when absent). */
    FaultDecision decideFault(const Page *keyPage, TierRank dstTier);

    /** Account an abort and compute the partial cost burned. */
    SimTime abortCost(FaultPhase phase, SimTime copyCost) const;

    MemorySystem &mem_;
    const MemoryConfig &cfg_;
    CacheModel *llc_;      ///< may be null (cache model disabled)
    FaultInjector *faults_;  ///< may be null (no injection)
#ifdef MCLOCK_DEBUG_VM
    debug::VmChecker *checker_ = nullptr;
#endif
    std::uint64_t migrations_ = 0;
    std::uint64_t promotions_ = 0;
    std::uint64_t demotions_ = 0;
    std::uint64_t exchanges_ = 0;
    std::uint64_t tieredExchanges_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t aborts_ = 0;
    std::uint64_t rollbacks_ = 0;
};

}  // namespace sim
}  // namespace mclock

#endif  // MCLOCK_SIM_MIGRATION_HH_
