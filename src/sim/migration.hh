/**
 * @file
 * Page migration engine: the migrate_pages() analogue.
 *
 * Migrating a page allocates a destination frame, copies the contents
 * (costed by tier bandwidths), fixes the mapping, invalidates stale LLC
 * lines for the old physical location, and frees the source frame.
 * Nimble-style two-sided page exchange is also provided.
 */

#ifndef MCLOCK_SIM_MIGRATION_HH_
#define MCLOCK_SIM_MIGRATION_HH_

#include <cstdint>

#include "base/types.hh"
#include "mem/memory_config.hh"

namespace mclock {

class CacheModel;
class Page;

namespace sim {

class MemorySystem;

/** Executes page migrations and accounts for their cost. */
class MigrationEngine
{
  public:
    MigrationEngine(MemorySystem &mem, const MemoryConfig &cfg,
                    CacheModel *llc);

    /**
     * Migrate @p page to node @p dst.
     *
     * Fails (returns false) when the page is locked/unevictable or the
     * destination has no free frame. On success, @p cost holds the
     * simulated time the migration consumed (charged by the caller,
     * inline or background depending on context) and the page's LRU
     * membership is untouched — callers manage list moves.
     */
    bool migrate(Page *page, NodeId dst, SimTime &cost);

    /**
     * Two-sided exchange of the frames of @p a and @p b (Nimble's
     * optimized exchange: one of the copies rides the other's buffer, so
     * the cost is less than two independent migrations).
     */
    bool exchange(Page *a, Page *b, SimTime &cost);

    std::uint64_t migrations() const { return migrations_; }
    std::uint64_t promotions() const { return promotions_; }
    std::uint64_t demotions() const { return demotions_; }
    std::uint64_t exchanges() const { return exchanges_; }
    std::uint64_t failed() const { return failed_; }

  private:
    MemorySystem &mem_;
    const MemoryConfig &cfg_;
    CacheModel *llc_;      ///< may be null (cache model disabled)
    std::uint64_t migrations_ = 0;
    std::uint64_t promotions_ = 0;
    std::uint64_t demotions_ = 0;
    std::uint64_t exchanges_ = 0;
    std::uint64_t failed_ = 0;
};

}  // namespace sim
}  // namespace mclock

#endif  // MCLOCK_SIM_MIGRATION_HH_
