#include "sim/memory_system.hh"

#include "base/logging.hh"

namespace mclock {
namespace sim {

namespace {

// Leave an unmapped gap between node physical ranges so stray-address
// bugs surface as assertions rather than aliasing another node.
constexpr Paddr kNodeGap = 1ull << 40;

}  // namespace

MemorySystem::MemorySystem(const std::vector<NodeSpec> &specs)
{
    MCLOCK_ASSERT(!specs.empty());
    Paddr base = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &spec = specs[i];
        const std::size_t frames = spec.bytes / kPageSize;
        MCLOCK_ASSERT(frames > 0);
        MCLOCK_ASSERT(spec.tier >= 0);
        nodes_.push_back(std::make_unique<Node>(
            static_cast<NodeId>(i), spec.tier, frames, base));
        if (tierNodes_.size() <= static_cast<std::size_t>(spec.tier))
            tierNodes_.resize(static_cast<std::size_t>(spec.tier) + 1);
        tierNodes_[static_cast<std::size_t>(spec.tier)].push_back(
            static_cast<NodeId>(i));
        base += kNodeGap;
    }
    for (std::size_t rank = 0; rank < tierNodes_.size(); ++rank) {
        if (!tierNodes_[rank].empty())
            tierOrder_.push_back(static_cast<TierRank>(rank));
    }
}

Node &
MemorySystem::node(NodeId id)
{
    MCLOCK_ASSERT(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return *nodes_[static_cast<std::size_t>(id)];
}

const Node &
MemorySystem::node(NodeId id) const
{
    MCLOCK_ASSERT(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return *nodes_[static_cast<std::size_t>(id)];
}

const std::vector<NodeId> &
MemorySystem::tier(TierRank rank) const
{
    static const std::vector<NodeId> kEmpty;
    if (rank < 0 || static_cast<std::size_t>(rank) >= tierNodes_.size())
        return kEmpty;
    return tierNodes_[static_cast<std::size_t>(rank)];
}

bool
MemorySystem::higherTier(TierRank rank, TierRank &out) const
{
    for (std::size_t i = 1; i < tierOrder_.size(); ++i) {
        if (tierOrder_[i] == rank) {
            out = tierOrder_[i - 1];
            return true;
        }
    }
    return false;
}

bool
MemorySystem::lowerTier(TierRank rank, TierRank &out) const
{
    for (std::size_t i = 0; i + 1 < tierOrder_.size(); ++i) {
        if (tierOrder_[i] == rank) {
            out = tierOrder_[i + 1];
            return true;
        }
    }
    return false;
}

std::size_t
MemorySystem::tierFrames(TierRank rank) const
{
    std::size_t total = 0;
    for (NodeId id : tier(rank))
        total += node(id).totalFrames();
    return total;
}

std::size_t
MemorySystem::tierFreeFrames(TierRank rank) const
{
    std::size_t total = 0;
    for (NodeId id : tier(rank))
        total += node(id).freeFrames();
    return total;
}

NodeId
MemorySystem::pickNodeWithSpace(TierRank rank, bool respectMin) const
{
    NodeId best = kInvalidNode;
    std::size_t bestFree = 0;
    for (NodeId id : tier(rank)) {
        const Node &n = node(id);
        const std::size_t reserve = respectMin ? n.watermarks().min : 0;
        const std::size_t free = n.freeFrames();
        if (free > reserve && free > bestFree) {
            best = id;
            bestFree = free;
        }
    }
    return best;
}

}  // namespace sim
}  // namespace mclock
