#include "sim/memory_system.hh"

#include "base/logging.hh"

namespace mclock {
namespace sim {

namespace {

// Leave an unmapped gap between node physical ranges so stray-address
// bugs surface as assertions rather than aliasing another node.
constexpr Paddr kNodeGap = 1ull << 40;

}  // namespace

MemorySystem::MemorySystem(const std::vector<NodeSpec> &specs)
{
    MCLOCK_ASSERT(!specs.empty());
    Paddr base = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &spec = specs[i];
        const std::size_t frames = spec.bytes / kPageSize;
        MCLOCK_ASSERT(frames > 0);
        nodes_.push_back(std::make_unique<Node>(
            static_cast<NodeId>(i), spec.kind, frames, base));
        tierNodes_[static_cast<int>(spec.kind)].push_back(
            static_cast<NodeId>(i));
        base += kNodeGap;
    }
    if (!tierNodes_[static_cast<int>(TierKind::Dram)].empty())
        tierOrder_.push_back(TierKind::Dram);
    if (!tierNodes_[static_cast<int>(TierKind::Pmem)].empty())
        tierOrder_.push_back(TierKind::Pmem);
}

Node &
MemorySystem::node(NodeId id)
{
    MCLOCK_ASSERT(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return *nodes_[static_cast<std::size_t>(id)];
}

const Node &
MemorySystem::node(NodeId id) const
{
    MCLOCK_ASSERT(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return *nodes_[static_cast<std::size_t>(id)];
}

const std::vector<NodeId> &
MemorySystem::tier(TierKind kind) const
{
    return tierNodes_[static_cast<int>(kind)];
}

bool
MemorySystem::higherTier(TierKind kind, TierKind &out) const
{
    for (std::size_t i = 1; i < tierOrder_.size(); ++i) {
        if (tierOrder_[i] == kind) {
            out = tierOrder_[i - 1];
            return true;
        }
    }
    return false;
}

bool
MemorySystem::lowerTier(TierKind kind, TierKind &out) const
{
    for (std::size_t i = 0; i + 1 < tierOrder_.size(); ++i) {
        if (tierOrder_[i] == kind) {
            out = tierOrder_[i + 1];
            return true;
        }
    }
    return false;
}

std::size_t
MemorySystem::tierFrames(TierKind kind) const
{
    std::size_t total = 0;
    for (NodeId id : tier(kind))
        total += node(id).totalFrames();
    return total;
}

std::size_t
MemorySystem::tierFreeFrames(TierKind kind) const
{
    std::size_t total = 0;
    for (NodeId id : tier(kind))
        total += node(id).freeFrames();
    return total;
}

NodeId
MemorySystem::pickNodeWithSpace(TierKind kind, bool respectMin) const
{
    NodeId best = kInvalidNode;
    std::size_t bestFree = 0;
    for (NodeId id : tier(kind)) {
        const Node &n = node(id);
        const std::size_t reserve = respectMin ? n.watermarks().min : 0;
        const std::size_t free = n.freeFrames();
        if (free > reserve && free > bestFree) {
            best = id;
            bestFree = free;
        }
    }
    return best;
}

}  // namespace sim
}  // namespace mclock
