#include "sim/sharded.hh"

#include <algorithm>
#include <thread>

#include "base/logging.hh"

namespace mclock {
namespace sim {

namespace {

/** splitmix64 finalizer: independent per-shard seed streams. */
std::uint64_t
shardSeed(std::uint64_t base, unsigned shard)
{
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (shard + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::vector<std::unique_ptr<Simulator>>
makeShards(const MachineConfig &whole, const ShardOptions &opts)
{
    const unsigned shards = std::max(1u, opts.shards);
    std::vector<std::unique_ptr<Simulator>> sims;
    sims.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        sims.push_back(std::make_unique<Simulator>(
            shardMachine(whole, shards, s)));
    return sims;
}

std::vector<AddressSpace *>
collectSpaces(const std::vector<std::unique_ptr<Simulator>> &sims)
{
    std::vector<AddressSpace *> spaces;
    spaces.reserve(sims.size());
    for (const auto &sim : sims)
        spaces.push_back(&sim->space());
    return spaces;
}

}  // namespace

MachineConfig
shardMachine(const MachineConfig &whole, unsigned shards, unsigned shard)
{
    MCLOCK_ASSERT(shards >= 1);
    MCLOCK_ASSERT(shard < shards);
    MachineConfig cfg = whole;
    if (shards == 1)
        return cfg;
    // Partition whole pages, handing remainder pages to the
    // low-numbered shards: summing any node's capacity (or the swap
    // slots) over all S shards reproduces the whole machine exactly,
    // instead of silently dropping up to S-1 pages per node to the
    // floor of bytes/S.
    for (auto &node : cfg.nodes) {
        const std::size_t totalPages = node.bytes / kPageSize;
        std::size_t share =
            totalPages / shards + (shard < totalPages % shards ? 1 : 0);
        node.bytes = std::max<std::size_t>(share, 1) * kPageSize;
    }
    if (cfg.swapPages) {
        cfg.swapPages = std::max<std::size_t>(
            1, cfg.swapPages / shards +
                   (shard < cfg.swapPages % shards ? 1 : 0));
    }
    cfg.seed = shardSeed(whole.seed, shard);
    return cfg;
}

ShardedSimulator::ShardedSimulator(const MachineConfig &whole,
                                   ShardOptions opts)
    : opts_(opts),
      sims_(makeShards(whole, opts)),
      space_(collectSpaces(sims_)),
      trace_(whole.stats.traceCapacity)
{
    const unsigned shards = this->shards();
    MCLOCK_ASSERT(shards <= ShardedAddressSpace::kMaxShards);
    workers_ = std::max(1u, std::min(opts.workers == 0 ? 1u
                                                       : opts.workers,
                                     shards));
    // Bind once and never resize again: the simulators hold raw
    // pointers into this vector.
    logs_.resize(shards);
    for (unsigned s = 0; s < shards; ++s) {
        logs_[s].bind(s);
        sims_[s]->bindShardLog(&logs_[s]);
    }
    const std::uint64_t budget = opts_.epochPromoteBudget;
    grants_.assign(shards,
                   budget == 0
                       ? Simulator::kUnlimitedPromoteBudget
                       : std::max<std::uint64_t>(1, budget / shards));
    active_.assign(shards, 1);
    coordVmstat_.resize(sims_.front()->config().nodes.size());
    trace_.bindClock(&mergeClock_);
}

ShardedSimulator::~ShardedSimulator()
{
    // Detach the logs before they are destroyed (defensive; the
    // simulators die in the same destructor, but member order is an
    // implementation detail we'd rather not lean on).
    for (auto &sim : sims_)
        sim->bindShardLog(nullptr);
}

void
ShardedSimulator::read(Vaddr globalVa, std::size_t bytes)
{
    const unsigned s = ShardedAddressSpace::shardOfVa(globalVa);
    MCLOCK_ASSERT(s < shards());
    sims_[s]->read(ShardedAddressSpace::localVa(globalVa), bytes);
}

void
ShardedSimulator::write(Vaddr globalVa, std::size_t bytes)
{
    const unsigned s = ShardedAddressSpace::shardOfVa(globalVa);
    MCLOCK_ASSERT(s < shards());
    sims_[s]->write(ShardedAddressSpace::localVa(globalVa), bytes);
}

void
ShardedSimulator::runEpochOn(unsigned s, std::uint64_t epoch,
                             std::uint64_t grant,
                             const EpochDriver &driver)
{
    // Worker-side: shard-local state plus this shard's active_ element
    // only. The promotion grant arrives by value — reading grants_
    // here would be a -Wthread-safety error (coordinator-guarded).
    sims_[s]->beginShardEpoch(epoch, grant);
    active_[s] = driver(*sims_[s], s, epoch) ? 1 : 0;
}

void
ShardedSimulator::run(const EpochDriver &driver)
{
    // run() is the coordinator: it owns the merge state between the
    // join barriers it itself erects.
    coordinator_.assertHeld();
    const unsigned shards = this->shards();
    std::uint64_t epoch = epochs_;
    for (;;) {
        bool any = false;
        for (unsigned s = 0; s < shards; ++s)
            any = any || active_[s];
        if (!any)
            break;

        if (workers_ <= 1) {
            // Single-threaded execution width: run the shards in shard
            // order on the calling thread — the reference schedule the
            // parallel path must (and does) reproduce bit for bit.
            for (unsigned s = 0; s < shards; ++s) {
                if (active_[s])
                    runEpochOn(s, epoch, grants_[s], driver);
            }
        } else {
            // Static round-robin shard ownership: worker w drives
            // shards w, w+W, ... in shard order. No work queue, no
            // shared mutable state below the join barrier: the epoch's
            // grants are snapshotted here, before any worker starts,
            // so workers never read coordinator-owned vectors (the
            // hole the thread-safety analysis exposed — nothing
            // stopped a future merge-path mutation of grants_ from
            // racing these reads).
            const std::vector<std::uint64_t> grants = grants_;
            std::vector<std::thread> pool;
            pool.reserve(workers_);
            for (unsigned w = 0; w < workers_; ++w) {
                pool.emplace_back([this, w, epoch, &driver, &grants,
                                   shards] {
                    for (unsigned s = w; s < shards; s += workers_) {
                        if (active_[s])
                            runEpochOn(s, epoch, grants[s], driver);
                    }
                });
            }
            for (auto &t : pool)
                t.join();
        }

        mergeEpoch(epoch);
        ++epoch;
    }
    epochs_ = epoch;
}

void
ShardedSimulator::mergeEpoch(std::uint64_t epoch)
{
    const unsigned shards = this->shards();

    // Drain in shard order; each log is internally ordered already, so
    // the sort below is a k-way merge with unique (time, shard, seq)
    // keys — one total order, independent of drain or thread timing.
    std::vector<ShardEvent> merged;
    for (unsigned s = 0; s < shards; ++s) {
        auto drained = logs_[s].drain();
        merged.insert(merged.end(), drained.begin(), drained.end());
    }
    std::sort(merged.begin(), merged.end(), shardEventSenior);

    mergeClock_ = makespan();
    coordVmstat_.add(stats::VmItem::PgshardMerge, kInvalidNode,
                     merged.size());
    trace_.record(stats::TraceEventType::ShardMerge, kInvalidNode, epoch,
                  merged.size());

    // Seniority-weighted budget reallocation: the first B promotions
    // of the merged stream earn their shards the next epoch's credits
    // (floor one per shard, so a quiet shard can still start moving).
    const std::uint64_t budget = opts_.epochPromoteBudget;
    if (budget > 0) {
        std::vector<std::uint64_t> earned(shards, 0);
        std::uint64_t credited = 0;
        for (const ShardEvent &ev : merged) {
            if (ev.kind != ShardEventKind::Promote)
                continue;
            if (credited == budget)
                break;
            ++earned[ev.shard];
            ++credited;
        }
        const std::uint64_t even =
            std::max<std::uint64_t>(1, budget / shards);
        for (unsigned s = 0; s < shards; ++s)
            grants_[s] = credited == 0
                             ? even
                             : std::max<std::uint64_t>(1, earned[s]);
    }

    events_.insert(events_.end(), merged.begin(), merged.end());
}

SimTime
ShardedSimulator::makespan() const
{
    SimTime t = 0;
    for (const auto &sim : sims_)
        t = std::max(t, sim->now());
    return t;
}

std::uint64_t
ShardedSimulator::totalAppOps() const
{
    std::uint64_t sum = 0;
    for (const auto &sim : sims_)
        sum += sim->appOps();
    return sum;
}

stats::VmStat
ShardedSimulator::mergedVmstat() const
{
    stats::VmStat out(coordVmstat_.numNodes());
    out.mergeFrom(coordVmstat_);
    for (const auto &sim : sims_)
        out.mergeFrom(sim->vmstat());
    return out;
}

Metrics
ShardedSimulator::mergedMetrics() const
{
    Metrics out(sims_.front()->config().metricsWindow);
    for (const auto &sim : sims_) {
        out.presizeTiers(sim->config().mem.numTiers());
        out.mergeFrom(sim->metrics());
    }
    return out;
}

}  // namespace sim
}  // namespace mclock
