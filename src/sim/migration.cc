#include "sim/migration.hh"

#include "base/logging.hh"
#include "mem/cache.hh"
#include "sim/memory_system.hh"
#include "vm/page.hh"

namespace mclock {
namespace sim {

MigrationEngine::MigrationEngine(MemorySystem &mem, const MemoryConfig &cfg,
                                 CacheModel *llc)
    : mem_(mem), cfg_(cfg), llc_(llc)
{
}

bool
MigrationEngine::migrate(Page *page, NodeId dst, SimTime &cost)
{
    MCLOCK_ASSERT(page->resident());
    if (page->locked() || page->unevictable()) {
        ++failed_;
        return false;
    }
    Node &src = mem_.node(page->node());
    Node &dstNode = mem_.node(dst);
    if (dst == page->node())
        return false;

    Paddr newPaddr;
    if (!dstNode.allocFrame(newPaddr)) {
        ++failed_;
        return false;
    }

    const Paddr oldPaddr = page->paddr();
    cost = cfg_.pageMigrationCost(src.tier(), dstNode.tier());
    if (llc_)
        llc_->invalidatePage(oldPaddr);
    src.freeFrame(oldPaddr);
    page->placeOn(dst, newPaddr);
    // Migration transfers contents; the new frame starts clean wrt the
    // PTE dirty bit but the page remains logically dirty if it was.
    page->setPteDirty(false);

    ++migrations_;
    if (dstNode.tier() < src.tier())
        ++promotions_;
    else if (dstNode.tier() > src.tier())
        ++demotions_;
    return true;
}

bool
MigrationEngine::exchange(Page *a, Page *b, SimTime &cost)
{
    MCLOCK_ASSERT(a->resident() && b->resident());
    if (a->locked() || b->locked() || a->unevictable() ||
        b->unevictable()) {
        ++failed_;
        return false;
    }
    if (a->node() == b->node())
        return false;

    Node &na = mem_.node(a->node());
    Node &nb = mem_.node(b->node());

    const Paddr pa = a->paddr();
    const Paddr pb = b->paddr();
    if (llc_) {
        llc_->invalidatePage(pa);
        llc_->invalidatePage(pb);
    }
    a->placeOn(nb.id(), pb);
    b->placeOn(na.id(), pa);
    a->setPteDirty(false);
    b->setPteDirty(false);

    // Nimble's two-sided exchange overlaps the copies; cost is ~1.7x a
    // single migration rather than 2x.
    const SimTime one = cfg_.pageMigrationCost(na.tier(), nb.tier());
    const SimTime other = cfg_.pageMigrationCost(nb.tier(), na.tier());
    cost = (one + other) * 85 / 100;

    ++exchanges_;
    ++migrations_;
    ++promotions_;
    ++demotions_;
    return true;
}

}  // namespace sim
}  // namespace mclock
