#include "sim/migration.hh"

#include "base/logging.hh"
#include "mem/cache.hh"
#include "sim/memory_system.hh"
#include "vm/page.hh"

#ifdef MCLOCK_DEBUG_VM
#include "debug/vm_checker.hh"
#define MCLOCK_VM_HOOK(call) \
    do { \
        if (checker_) \
            checker_->call; \
    } while (0)
#else
#define MCLOCK_VM_HOOK(call) \
    do { \
    } while (0)
#endif

namespace mclock {
namespace sim {

MigrationEngine::MigrationEngine(MemorySystem &mem, const MemoryConfig &cfg,
                                 CacheModel *llc, FaultInjector *faults)
    : mem_(mem), cfg_(cfg), llc_(llc), faults_(faults)
{
}

FaultDecision
MigrationEngine::decideFault(const Page *keyPage, TierRank dstTier)
{
    if (!faults_ || !faults_->enabled())
        return {};
    return faults_->nextTransaction(keyPage->vpn(), dstTier);
}

SimTime
MigrationEngine::abortCost(FaultPhase phase, SimTime fullCost) const
{
    // The work burned grows with how far the transaction got: a copy
    // fault hits mid-copy, a shootdown timeout after the copy, a remap
    // race after the shootdown completed too.
    switch (phase) {
      case FaultPhase::Copy:      return fullCost / 2;
      case FaultPhase::Shootdown: return fullCost * 3 / 4;
      case FaultPhase::Remap:     return fullCost;
      case FaultPhase::None:      break;
    }
    return 0;
}

MigrateResult
MigrationEngine::migrate(Page *page, NodeId dst, SimTime &cost)
{
    MCLOCK_ASSERT(page->resident());
    cost = 0;
    // A migration to the page's own node is a no-op, reported before
    // the busy check: a locked page headed nowhere is not a failure.
    if (dst == page->node())
        return {MigrateOutcome::SameNode, FaultPhase::None, false};
    if (page->locked() || page->unevictable()) {
        ++failed_;
        return {MigrateOutcome::Busy, FaultPhase::None, false};
    }
    Node &src = mem_.node(page->node());
    Node &dstNode = mem_.node(dst);

    // Begin: reserve the destination frame.
    Paddr newPaddr;
    if (!dstNode.allocFrame(newPaddr)) {
        ++failed_;
        return {MigrateOutcome::NoFrame, FaultPhase::None, false};
    }

    const SimTime fullCost =
        cfg_.pageMigrationCost(src.tier(), dstNode.tier());
    const FaultDecision fd = decideFault(page, dstNode.tier());
    if (fd.injected()) {
        // Abort: release the reserved frame. The page never left its
        // source frame, so the mapping needs no repair; post-copy
        // aborts additionally discard the copied contents (rollback).
        dstNode.freeFrame(newPaddr);
        cost = abortCost(fd.failPhase, fullCost);
        ++failed_;
        ++aborts_;
        if (fd.failPhase != FaultPhase::Copy)
            ++rollbacks_;
        return {MigrateOutcome::Aborted, fd.failPhase, fd.persistent};
    }

    // Commit: copy, shoot down, remap.
    MCLOCK_VM_HOOK(onMigrationPhase(page, FaultPhase::Copy, dst));
    MCLOCK_VM_HOOK(onMigrationPhase(page, FaultPhase::Shootdown, dst));
    MCLOCK_VM_HOOK(onMigrationPhase(page, FaultPhase::Remap, dst));
    const Paddr oldPaddr = page->paddr();
    cost = fullCost;
    if (llc_)
        llc_->invalidatePage(oldPaddr, page->llcLineMask());
    src.freeFrame(oldPaddr);
    page->placeOn(dst, newPaddr);
    MCLOCK_VM_HOOK(onMigrationCommit(page, src.tier(), dstNode.tier()));
    // Migration transfers contents; the new frame starts clean wrt the
    // PTE dirty bit but the page remains logically dirty if it was.
    page->setPteDirty(false);

    ++migrations_;
    if (dstNode.tier() < src.tier())
        ++promotions_;
    else if (dstNode.tier() > src.tier())
        ++demotions_;
    return {MigrateOutcome::Success, FaultPhase::None, false};
}

MigrateResult
MigrationEngine::exchange(Page *a, Page *b, SimTime &cost)
{
    MCLOCK_ASSERT(a->resident() && b->resident());
    cost = 0;
    if (a->locked() || b->locked() || a->unevictable() ||
        b->unevictable()) {
        ++failed_;
        return {MigrateOutcome::Busy, FaultPhase::None, false};
    }
    if (a->node() == b->node())
        return {MigrateOutcome::SameNode, FaultPhase::None, false};

    Node &na = mem_.node(a->node());
    Node &nb = mem_.node(b->node());

    // Nimble's two-sided exchange overlaps the copies; cost is ~1.7x a
    // single migration rather than 2x.
    const SimTime one = cfg_.pageMigrationCost(na.tier(), nb.tier());
    const SimTime other = cfg_.pageMigrationCost(nb.tier(), na.tier());
    const SimTime fullCost = (one + other) * 85 / 100;

    // One transaction covers both sides: an exchange commits or rolls
    // back atomically (no frame was reserved, so an abort only
    // discards the staged copies).
    const FaultDecision fd = decideFault(a, nb.tier());
    if (fd.injected()) {
        cost = abortCost(fd.failPhase, fullCost);
        ++failed_;
        ++aborts_;
        if (fd.failPhase != FaultPhase::Copy)
            ++rollbacks_;
        return {MigrateOutcome::Aborted, fd.failPhase, fd.persistent};
    }

    MCLOCK_VM_HOOK(onMigrationPhase(a, FaultPhase::Copy, nb.id()));
    MCLOCK_VM_HOOK(onMigrationPhase(b, FaultPhase::Copy, na.id()));
    MCLOCK_VM_HOOK(onMigrationPhase(a, FaultPhase::Shootdown, nb.id()));
    MCLOCK_VM_HOOK(onMigrationPhase(b, FaultPhase::Shootdown, na.id()));
    MCLOCK_VM_HOOK(onMigrationPhase(a, FaultPhase::Remap, nb.id()));
    MCLOCK_VM_HOOK(onMigrationPhase(b, FaultPhase::Remap, na.id()));
    const Paddr pa = a->paddr();
    const Paddr pb = b->paddr();
    if (llc_) {
        llc_->invalidatePage(pa, a->llcLineMask());
        llc_->invalidatePage(pb, b->llcLineMask());
    }
    a->placeOn(nb.id(), pb);
    b->placeOn(na.id(), pa);
    MCLOCK_VM_HOOK(onExchangeCommit(a, na.tier(), b, nb.tier()));
    a->setPteDirty(false);
    b->setPteDirty(false);
    cost = fullCost;

    ++exchanges_;
    ++migrations_;
    // One page went up and the other down only when the two nodes sit
    // on different tiers; a same-tier node-to-node exchange is neither
    // a promotion nor a demotion.
    if (na.tier() != nb.tier()) {
        ++tieredExchanges_;
        ++promotions_;
        ++demotions_;
    }
    return {MigrateOutcome::Success, FaultPhase::None, false};
}

}  // namespace sim
}  // namespace mclock
