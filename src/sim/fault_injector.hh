/**
 * @file
 * Deterministic migration-fault injection.
 *
 * Real tiering systems lose page migrations mid-flight: the copy hits a
 * device error, a racing access re-dirties the page under the copy, the
 * TLB shootdown times out, or the destination frame is raced away
 * before the remap commits (NOMAD makes this abort-and-retry loop a
 * first-class mechanism). The FaultInjector decides, per migration
 * transaction, whether one of the copy / TLB-shootdown / remap phases
 * fails, and whether the failure is transient (a retry may succeed) or
 * persistent (the page is poisoned and every later attempt fails too).
 *
 * Determinism contract: decisions come from a private xoshiro stream
 * seeded from (machine seed, fault seed), and every transaction
 * consumes a fixed number of draws regardless of its outcome. Fixing
 * the draw count gives a useful monotonicity property: raising a
 * failure probability can only grow the set of failing transactions,
 * never shuffle it — the promotion-success sweep test pins this. With
 * injection disabled no draws are consumed at all, so pre-existing
 * runs are bit-identical.
 */

#ifndef MCLOCK_SIM_FAULT_INJECTOR_HH_
#define MCLOCK_SIM_FAULT_INJECTOR_HH_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"

namespace mclock {
namespace sim {

/** Phases of a migration transaction that can fail. */
enum class FaultPhase : std::uint8_t {
    None,       ///< transaction committed
    Copy,       ///< device error / page dirtied under the copy
    Shootdown,  ///< TLB-shootdown IPI timed out
    Remap,      ///< destination frame raced away before the remap
};

/** Stable phase name ("copy", ...). */
const char *faultPhaseName(FaultPhase phase);

/** Per-scenario fault-injection knobs (part of MachineConfig). */
struct FaultConfig
{
    /** Master switch; off by default so existing runs are unchanged. */
    bool enabled = false;

    /** Mixed into the machine seed for the injector's private stream. */
    std::uint64_t seed = 0xfa017ull;

    /** Per-phase failure probability (before the tier multiplier). */
    double copyFailProb = 0.0;
    double shootdownFailProb = 0.0;
    double remapFailProb = 0.0;

    /** Probability an injected failure is persistent (page poisoned). */
    double persistentProb = 0.0;

    /**
     * Per-destination-tier error-rate multiplier, indexed by tier rank;
     * missing ranks default to 1.0 (e.g. {1.0, 1.0, 4.0} makes the
     * third tier's media 4x as failure-prone).
     */
    std::vector<double> tierErrorMultiplier;

    /** Retries after a transient abort (promote/demote paths). */
    unsigned maxRetries = 3;

    /** Base retry backoff, doubled per retry (background-charged). */
    SimTime retryBackoffNs = 20'000ull;

    /** Consecutive failed promotions before a node is throttled. */
    unsigned throttleThreshold = 8;

    /** Promotion cooldown once throttled (two scan intervals). */
    SimTime throttleCooldownNs = 8'000'000ull;
};

/** What the injector decided for one migration transaction. */
struct FaultDecision
{
    FaultPhase failPhase = FaultPhase::None;
    bool persistent = false;

    bool injected() const { return failPhase != FaultPhase::None; }
};

/** Seed-driven per-transaction fault oracle for one simulated host. */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &cfg, std::uint64_t machineSeed);

    bool enabled() const { return cfg_.enabled; }
    const FaultConfig &config() const { return cfg_; }

    /**
     * Decide the fate of the next migration transaction moving @p vpn
     * to a node on tier @p dstTier. Draws a fixed number of uniforms
     * when enabled (see file comment); a no-op returning success when
     * disabled. Poisoned pages fail the copy phase unconditionally.
     */
    FaultDecision nextTransaction(PageNum vpn, TierRank dstTier);

    /** True once @p vpn took a persistent failure. */
    bool poisoned(PageNum vpn) const { return poisoned_.count(vpn) != 0; }

    std::uint64_t transactions() const { return transactions_; }
    std::uint64_t injected() const { return injected_; }
    std::size_t poisonedPages() const { return poisoned_.size(); }

  private:
    double tierMultiplier(TierRank rank) const;

    FaultConfig cfg_;
    Rng rng_;
    /** Membership/size queries only — hash order never observed. */
    // mclock-lint: unordered-iter-ok(never iterated: count/size only)
    std::unordered_set<PageNum> poisoned_;
    std::uint64_t transactions_ = 0;
    std::uint64_t injected_ = 0;
};

}  // namespace sim
}  // namespace mclock

#endif  // MCLOCK_SIM_FAULT_INJECTOR_HH_
