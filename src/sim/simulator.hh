/**
 * @file
 * The simulator core: ties the machine model, virtual memory, migration
 * engine, daemon scheduler, metrics, and the active tiering policy into
 * one simulated host.
 *
 * Workloads drive it through read()/write()/compute(); policies drive it
 * through the service API (migration wrappers, time charging, daemon
 * registration). All time is simulated nanoseconds; throughput numbers
 * reported by the benches are operations per simulated second.
 */

#ifndef MCLOCK_SIM_SIMULATOR_HH_
#define MCLOCK_SIM_SIMULATOR_HH_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "mem/cache.hh"
#include "mem/memory_config.hh"
#include "policies/policy.hh"
#include "sim/daemon.hh"
#include "sim/fault_injector.hh"
#include "sim/machine.hh"
#include "sim/memory_system.hh"
#include "sim/metrics.hh"
#include "sim/migration.hh"
#include "stats/sampler.hh"
#include "stats/tracepoint.hh"
#include "stats/vmstat.hh"
#include "vm/address_space.hh"
#include "vm/memcg.hh"
#include "vm/swap.hh"

#ifdef MCLOCK_DEBUG_VM
#include "debug/vm_checker.hh"
#endif

namespace mclock {
namespace sim {

class ShardEventLog;

/** One simulated host running one application under one policy. */
class Simulator
{
  public:
    explicit Simulator(MachineConfig cfg);
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Install the tiering policy (must precede any access). */
    void setPolicy(std::unique_ptr<policies::TieringPolicy> policy);

    policies::TieringPolicy &policy() { return *policy_; }

    // --- Application-facing API ------------------------------------------

    /**
     * Reserve a region (see AddressSpace::mmap). Pages materialised in
     * it are charged to @p memcg; the default root id is unaccounted.
     */
    Vaddr mmap(std::size_t bytes, bool anon = true,
               const std::string &name = "anon",
               MemCgroupId memcg = kRootMemcg);

    /** Tear down a region: frees frames, lists entries, and swap slots. */
    void unmapRegion(Vaddr start);

    /** Unsupervised (mmap-style) load of @p bytes starting at @p va. */
    void
    read(Vaddr va, std::size_t bytes = 8)
    {
        ++appOps_;
        dispatchAccess(va, bytes, false);
    }

    /** Unsupervised (mmap-style) store. */
    void
    write(Vaddr va, std::size_t bytes = 8)
    {
        ++appOps_;
        dispatchAccess(va, bytes, true);
    }

    /** Supervised load: the syscall path calls mark_page_accessed(). */
    void readSupervised(Vaddr va, std::size_t bytes = 8);

    /** Supervised store. */
    void writeSupervised(Vaddr va, std::size_t bytes = 8);

    /** Pure CPU work: advances time, dispatching daemons on the way. */
    void compute(SimTime duration);

    /** One queued operation for batched access streaming. */
    struct MemOp
    {
        enum class Kind : std::uint8_t {
            Read,     ///< unsupervised load (va, bytes)
            Write,    ///< unsupervised store (va, bytes)
            Compute,  ///< CPU work; va carries the duration in ns
        };

        Vaddr va = 0;
        std::uint32_t bytes = 0;
        Kind kind = Kind::Read;

        static MemOp
        load(Vaddr va, std::uint32_t bytes = 8)
        {
            return {va, bytes, Kind::Read};
        }

        static MemOp
        store(Vaddr va, std::uint32_t bytes = 8)
        {
            return {va, bytes, Kind::Write};
        }

        static MemOp
        cpu(SimTime duration)
        {
            return {static_cast<Vaddr>(duration), 0, Kind::Compute};
        }
    };

    /**
     * Process @p n queued operations in program order. Semantically
     * identical to issuing the equivalent read()/write()/compute()
     * calls one by one; the batch form keeps the access loop inside
     * one translation unit so the per-op call overhead is amortised.
     * Workloads accumulate one logical operation's accesses and flush
     * them at the op boundary.
     */
    void stream(const MemOp *ops, std::size_t n);

    SimTime now() const { return now_; }

    /**
     * Application-issued memory operations so far: one per
     * read()/write() (supervised or not) or per Read/Write MemOp.
     * Wall-clock benchmarking reports this as "ops"; it is not part of
     * any golden-compared metric.
     */
    std::uint64_t appOps() const { return appOps_; }

    // --- Services for policies -------------------------------------------

    MemorySystem &memory() { return mem_; }
    const MachineConfig &config() const { return cfg_; }
    const MemoryConfig &memConfig() const { return cfg_.mem; }
    Metrics &metrics() { return metrics_; }
    StatRegistry &stats() { return metrics_.stats(); }

    /** Kernel-style vmstat counters (per-node + global, monotonic). */
    stats::VmStat &vmstat() { return vmstat_; }
    const stats::VmStat &vmstat() const { return vmstat_; }

    /** Tracepoint ring buffer (simulated-time-stamped typed events). */
    stats::TraceBuffer &trace() { return trace_; }
    const stats::TraceBuffer &trace() const { return trace_; }

    /** Periodic vmstat sampler; nullptr unless cfg.stats.sampler. */
    stats::VmstatSampler *sampler() { return sampler_.get(); }

    DaemonScheduler &daemons() { return daemons_; }
    AddressSpace &space() { return space_; }
    SwapDevice &swap() { return swap_; }
    Rng &rng() { return rng_; }

    /**
     * Memory control groups of this host. Hosts that never create a
     * tenant pay one predicted branch per hook; behaviour and results
     * are bit-identical to a host without the layer.
     */
    MemCgroupManager &memcg() { return memcg_; }
    const MemCgroupManager &memcg() const { return memcg_; }

    /** LLC filter model, or nullptr when disabled. */
    CacheModel *llc() { return llc_.get(); }

    /** Tier rank of the node currently holding @p page. */
    TierRank pageTier(const Page *page) const;

    /** How migration/exchange costs are charged to the clock. */
    enum class ChargeMode {
        Inline,      ///< full cost on the application's critical path
        Background,  ///< daemon-core work; interference fraction only
        FaultPath,   ///< inline x faultPathMigrationMultiplier (synchronous
                     ///< migration inside a fault handler)
    };

    /** Charge work on the application's critical path. */
    void chargeInline(SimTime t);

    /**
     * Charge daemon work performed on another core; only the configured
     * interference fraction reaches the application's clock.
     */
    void chargeBackground(SimTime t);

    /** Charge the cost of scanning @p pages LRU entries (background). */
    void chargeScan(std::uint64_t pages);

    /**
     * Migrate an isolated page (not on any LRU list) to @p dst, charging
     * the cost and recording promotion/demotion metrics by direction.
     * One transaction, no retries: an injected abort fails the call (the
     * page stays resident on its source node).
     */
    bool migratePage(Page *page, NodeId dst, ChargeMode mode);

    /**
     * Migrate an isolated page one tier up, picking the destination node
     * with the most space. Fails when no higher tier or no free frame.
     * With fault injection enabled, transient aborts are retried with
     * exponential backoff (cfg.faults.maxRetries), and a node whose
     * promotions keep aborting is throttled for a cooldown window.
     */
    bool promotePage(Page *page, ChargeMode mode);

    /** Migrate an isolated page one tier down (same retry policy). */
    bool demotePage(Page *page, ChargeMode mode);

    /**
     * True while @p node's promotions are throttled (graceful
     * degradation after cfg.faults.throttleThreshold consecutive
     * aborted promotions). Always false with injection disabled.
     */
    bool promotionThrottled(NodeId node) const;

    /**
     * Tenant QoS gate for promotions into @p dstTier: true unless the
     * page's cgroup is out of promotion credit or at its hard cap
     * there. Denials count `pgtenant_promote_deferred`. Promotion
     * daemons pre-check with this so a quota-deferred page stays
     * selected (rotated) instead of triggering demotions on the upper
     * tier; promotePage() applies the same gate for direct callers.
     */
    bool tenantPromoteAllowed(const Page *page, TierRank dstTier);

    /** Two-sided exchange of two isolated pages (Nimble). */
    bool exchangePages(Page *hot, Page *cold, ChargeMode mode);

    /**
     * Evict an isolated page to block storage: write back if dirty, free
     * its frame, and leave it non-resident in its address space.
     */
    void evictPage(Page *page);

    /**
     * Run the policy's pressure handler on @p node unless we are already
     * inside one (direct-reclaim reentrancy guard).
     */
    void maybeReclaim(Node &node);

    MigrationEngine &migrationEngine() { return migration_; }

    // --- Sharded execution hooks -----------------------------------------
    // A sharded machine (sim/sharded.hh) runs this host as one shard of
    // a partitioned address space. Both hooks are inert by default:
    // with no log bound and an unlimited budget, behaviour is
    // bit-identical to a standalone host.

    /** Sentinel: no per-epoch promotion budget (the default). */
    static constexpr std::uint64_t kUnlimitedPromoteBudget = ~0ull;

    /**
     * Bind the ordered event log this host reports cross-shard events
     * (completed promotions/demotions/exchanges) into. Pass nullptr to
     * detach. Observation-only: emitting events charges no simulated
     * time and changes no simulation state.
     */
    void bindShardLog(ShardEventLog *log) { shardLog_ = log; }

    /**
     * Install the promotion budget for the coming epoch. Once the
     * budget reaches zero, promotePage() defers instead of migrating
     * (counted as `pgpromote_deferred`) until the next grant. Applies
     * to promotePage() only — Nimble's two-sided exchanges are paired
     * moves and stay budget-exempt. kUnlimitedPromoteBudget disables
     * the governor entirely (no counter, no behaviour change).
     */
    void setEpochPromoteBudget(std::uint64_t n) { promoteBudget_ = n; }

    /** Remaining budget (kUnlimitedPromoteBudget when ungoverned). */
    std::uint64_t epochPromoteBudget() const { return promoteBudget_; }

    /**
     * Mark the start of shard epoch @p epoch: installs @p grant as the
     * promotion budget and records the `shard_epoch` counter and
     * tracepoint. Called by the sharded coordinator on the shard's
     * worker thread, before the epoch's operations stream in.
     */
    void beginShardEpoch(std::uint64_t epoch,
                         std::uint64_t grant = kUnlimitedPromoteBudget);

    /** Deterministic migration-fault oracle (disabled by default). */
    FaultInjector &faultInjector() { return faults_; }
    const FaultInjector &faultInjector() const { return faults_; }

#ifdef MCLOCK_DEBUG_VM
    /**
     * The CONFIG_DEBUG_VM page-state checker, wired into every list
     * and migration path of this host. Debug builds only; by default a
     * violation panics with the page's state history.
     */
    debug::VmChecker &vmChecker() { return *vmChecker_; }
    const debug::VmChecker &vmChecker() const { return *vmChecker_; }
#endif

  private:
    void chargeMigration(SimTime cost, ChargeMode mode,
                         SimTime inlinePortion = 0);
    MigrateResult migrateOnce(Page *page, NodeId dst, ChargeMode mode);
    void notePromoteSuccess(NodeId node);
    void notePromoteAbort(NodeId node);
    void accessOnePage(Vaddr va, bool write, bool supervised);
    void accessRange(Vaddr va, std::size_t bytes, bool write,
                     bool supervised);

    /** Sampling granularity of multi-byte ranges (see accessRange). */
    static constexpr Vaddr kAccessBlock = 512;

    /**
     * Unsupervised access entry point, inline so element-sized workload
     * accesses (the common case by far) reach accessOnePage with one
     * call instead of three. A range confined to one 512 B block is
     * exactly accessRange's single-sample case.
     */
    void
    dispatchAccess(Vaddr va, std::size_t bytes, bool write)
    {
        if (((va ^ (va + bytes - 1)) & ~(kAccessBlock - 1)) == 0)
            [[likely]]
            accessOnePage(va, write, false);
        else
            accessRange(va, bytes, write, false);
    }
    Page *handleMinorFault(PageNum vpn);
    void handleSwapIn(Page *page);
    void allocateFrameFor(Page *page);
    void runDueDaemons();

    /**
     * Memcg hard-cap reclaim: demote up to @p want of @p cg's own
     * pages off @p tier (inactive lists first, CLOCK second chance for
     * pages of other tenants). Returns the number demoted; best effort
     * — the allocation path falls back to a lower tier when the cap
     * still cannot be met.
     */
    std::size_t memcgReclaimTier(MemCgroup &cg, TierRank tier,
                                 std::size_t want);

    MachineConfig cfg_;
    MemorySystem mem_;
#ifdef MCLOCK_DEBUG_VM
    std::unique_ptr<debug::VmChecker> vmChecker_;
#endif
    std::unique_ptr<CacheModel> llc_;
    FaultInjector faults_;
    MigrationEngine migration_;
    DaemonScheduler daemons_;
    Metrics metrics_;
    AddressSpace space_;
    MemCgroupManager memcg_;
    SwapDevice swap_;
    Rng rng_;
    stats::VmStat vmstat_;
    stats::TraceBuffer trace_;
    std::unique_ptr<stats::VmstatSampler> sampler_;
    // --- Cached hot-path state -------------------------------------------
    // Derived once from the (immutable) machine topology and the
    // installed policy so accessOnePage never chases node objects, the
    // config tier table, or a virtual dispatch it does not need.
    /** node id -> tier rank (nodes never change tier). */
    std::vector<TierRank> nodeTier_;
    /** tier rank -> 64 B load/store latency (cfg_.mem.timing copy). */
    std::vector<SimTime> tierLoadLat_;
    std::vector<SimTime> tierStoreLat_;
    /** Rank of the machine's bottom tier (re-access tracking bound). */
    TierRank bottomTier_ = 0;
    /** More than one tier, i.e. re-access tracking is meaningful. */
    bool trackReaccess_ = false;
    /** The installed policy overrides onMemoryAccess (memory-mode). */
    bool policyObservesAccess_ = false;
    /** Application-issued memory operations (see appOps()). */
    std::uint64_t appOps_ = 0;

    /** Per-node below-low-watermark latch for crossing detection. */
    std::vector<bool> belowLow_;
    /** Per-node consecutive aborted promotions (fault injection only). */
    std::vector<unsigned> promoteFailStreak_;
    /** Per-node promotion-throttle cooldown end (simulated ns). */
    std::vector<SimTime> promoteThrottleUntil_;
    std::unique_ptr<policies::TieringPolicy> policy_;
    SimTime now_ = 0;
    bool inPressure_ = false;
    /** Cross-shard event sink; nullptr outside sharded machines. */
    ShardEventLog *shardLog_ = nullptr;
    /** Promotions allowed before the next epoch grant (see above). */
    std::uint64_t promoteBudget_ = kUnlimitedPromoteBudget;
};

}  // namespace sim
}  // namespace mclock

#endif  // MCLOCK_SIM_SIMULATOR_HH_
