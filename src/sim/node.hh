/**
 * @file
 * A simulated NUMA node (the pglist_data analogue).
 *
 * Each bank of memory is one node. The DAX-KMEM driver hot-plugs slower
 * memory (PM, CXL-attached DRAM, ...) as additional nodes, which our
 * MemorySystem tags with the rank of the tier they belong to — mirroring
 * the paper's pglist_data flag that lets MULTI-CLOCK recognise PM nodes.
 * A node owns a frame pool, its watermarks, and its LRU lists.
 */

#ifndef MCLOCK_SIM_NODE_HH_
#define MCLOCK_SIM_NODE_HH_

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "pfra/lru_lists.hh"
#include "pfra/watermarks.hh"

namespace mclock {
namespace sim {

/** One NUMA node: tier tag, frame pool, watermarks, LRU lists. */
class Node
{
  public:
    /**
     * @param id          node number
     * @param tier        rank of the tier this node belongs to
     * @param totalFrames frames managed by this node
     * @param paddrBase   base simulated physical address
     */
    Node(NodeId id, TierRank tier, std::size_t totalFrames, Paddr paddrBase);

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;
    Node(Node &&) = default;

    NodeId id() const { return id_; }
    TierRank tier() const { return tier_; }
    std::size_t totalFrames() const { return totalFrames_; }
    std::size_t freeFrames() const { return freeList_.size(); }
    std::size_t usedFrames() const { return totalFrames_ - freeFrames(); }

    const pfra::Watermarks &watermarks() const { return wm_; }
    unsigned inactiveRatio() const { return inactiveRatio_; }

    bool belowMin() const { return freeFrames() <= wm_.min; }
    bool belowLow() const { return freeFrames() <= wm_.low; }
    bool aboveHigh() const { return freeFrames() > wm_.high; }

    /**
     * Take a free frame.
     * @param[out] paddr physical address of the frame
     * @return false if the node is out of frames
     */
    bool allocFrame(Paddr &paddr);

    /** Return a frame to the pool. */
    void freeFrame(Paddr paddr);

    /** This node's LRU lists. */
    pfra::NodeLists &lists() { return lists_; }
    const pfra::NodeLists &lists() const { return lists_; }

  private:
    NodeId id_;
    TierRank tier_;
    std::size_t totalFrames_;
    Paddr base_;
    std::vector<std::uint32_t> freeList_;  ///< stack of frame indices
    pfra::Watermarks wm_;
    unsigned inactiveRatio_;
    pfra::NodeLists lists_;
};

}  // namespace sim
}  // namespace mclock

#endif  // MCLOCK_SIM_NODE_HH_
