#include "sim/node.hh"

#include "base/logging.hh"

namespace mclock {
namespace sim {

Node::Node(NodeId id, TierRank tier, std::size_t totalFrames, Paddr paddrBase)
    : id_(id), tier_(tier), totalFrames_(totalFrames), base_(paddrBase),
      wm_(pfra::Watermarks::compute(totalFrames)),
      inactiveRatio_(pfra::inactiveRatio(totalFrames))
{
    MCLOCK_ASSERT(totalFrames > 0);
    freeList_.reserve(totalFrames);
    // Push in reverse so the lowest-address frame is handed out first.
    for (std::size_t i = totalFrames; i-- > 0;)
        freeList_.push_back(static_cast<std::uint32_t>(i));
}

bool
Node::allocFrame(Paddr &paddr)
{
    if (freeList_.empty())
        return false;
    const std::uint32_t frame = freeList_.back();
    freeList_.pop_back();
    paddr = base_ + static_cast<Paddr>(frame) * kPageSize;
    return true;
}

void
Node::freeFrame(Paddr paddr)
{
    MCLOCK_ASSERT(paddr >= base_ &&
                  paddr < base_ + totalFrames_ * kPageSize);
    MCLOCK_ASSERT((paddr - base_) % kPageSize == 0);
    freeList_.push_back(static_cast<std::uint32_t>((paddr - base_) /
                                                   kPageSize));
    MCLOCK_ASSERT(freeList_.size() <= totalFrames_);
}

}  // namespace sim
}  // namespace mclock
