/**
 * @file
 * Machine configurations: memory timing + node layout + cache + seed.
 *
 * Presets model the paper's two testbeds, scaled ~1000x down in capacity
 * (the footprint:DRAM ratios of each experiment are preserved, which is
 * what determines tiering behaviour).
 */

#ifndef MCLOCK_SIM_MACHINE_HH_
#define MCLOCK_SIM_MACHINE_HH_

#include <cstdint>
#include <vector>

#include "mem/memory_config.hh"
#include "sim/fault_injector.hh"
#include "sim/memory_system.hh"

namespace mclock {
namespace sim {

/** Observability knobs for one simulated host (see src/stats/). */
struct StatsConfig
{
    /** Tracepoint ring capacity in events; 0 disables tracing. */
    std::size_t traceCapacity = 4096;
    /** Register the periodic vmstat sampler daemon. */
    bool sampler = false;
    /** Sampler period in simulated ns (paper-scale 1 s, scaled). */
    SimTime samplerInterval = 4'000'000ull;
    /** Export vmstat.csv / trace.jsonl from harness runs (--stats). */
    bool artifacts = false;
};

/** Everything needed to instantiate a Simulator. */
struct MachineConfig
{
    MemoryConfig mem;
    CacheConfig cache;
    std::vector<NodeSpec> nodes;
    std::uint64_t seed = 42;
    /** Swap slots available for last-resort eviction (0 = unlimited). */
    std::size_t swapPages = 0;
    /** Metrics window length (the paper reports 20 s windows). */
    SimTime metricsWindow = 20'000'000'000ull;
    /** Counter/tracepoint/sampler configuration. */
    StatsConfig stats;
    /** Migration fault injection (disabled by default). */
    FaultConfig faults;

    std::size_t
    tierBytes(TierRank rank) const
    {
        std::size_t total = 0;
        for (const auto &n : nodes) {
            if (n.tier == rank)
                total += n.bytes;
        }
        return total;
    }
};

/**
 * The paper's evaluation platform, scaled: one DRAM node (64 MiB) and
 * one PM node (256 MiB), preserving the ~1:4 DRAM:PM ratio of the
 * Memory-mode testbed (376 GB : 1.5 TB).
 */
MachineConfig paperMachineScaled();

/**
 * Two-socket variant: two DRAM nodes and two PM nodes (the DAX-KMEM
 * driver hot-plugs each PM DIMM set as its own node).
 */
MachineConfig paperMachineTwoSocket();

/**
 * Memory-mode platform: the OS sees only PM nodes; the DRAM acts as a
 * memory-side cache managed by MemoryModePolicy (pass the DRAM size to
 * the policy, not to the node list).
 */
MachineConfig paperMachineMemoryMode();

/**
 * Three-tier platform: local DRAM, CXL-attached DRAM (~2.5x the local
 * load latency, intermediate bandwidth), and PM, each as one node. The
 * tier table replaces the default two-tier one; rank 0 = DRAM,
 * rank 1 = CXL, rank 2 = PM.
 */
MachineConfig paperMachineThreeTier();

/**
 * Small machine used by the default bench runs: 16 MiB DRAM + 64 MiB PM
 * with a 1 MiB LLC. Same 1:4 tier ratio as paperMachineScaled(); ~4x
 * cheaper to simulate.
 */
MachineConfig benchMachine();

/** Tiny machine for unit tests: 2 MiB DRAM + 8 MiB PM, small LLC. */
MachineConfig tinyTestMachine();

}  // namespace sim
}  // namespace mclock

#endif  // MCLOCK_SIM_MACHINE_HH_
