#include "sim/metrics.hh"

namespace mclock {
namespace sim {

MetricsWindow &
Metrics::windowAt(SimTime now)
{
    const std::size_t idx = static_cast<std::size_t>(now / windowLen_);
    if (windows_.size() <= idx)
        windows_.resize(idx + 1);
    return windows_[idx];
}

void
Metrics::recordAccess(SimTime now, TierKind tier, bool llcHit)
{
    auto &w = windowAt(now);
    ++w.accesses;
    ++totalAccesses_;
    if (llcHit) {
        ++w.llcHits;
        return;
    }
    if (tier == TierKind::Dram)
        ++w.dramAccesses;
    else
        ++w.pmemAccesses;
}

void
Metrics::recordPromotion(SimTime now, Page *page)
{
    ++windowAt(now).promotions;
    ++totalPromotions_;
    page->setPromotedEpoch(round_);
}

void
Metrics::recordDemotion(SimTime now)
{
    ++windowAt(now).demotions;
    ++totalDemotions_;
}

void
Metrics::maybeRecordReaccess(SimTime now, Page *page)
{
    const std::uint64_t epoch = page->promotedEpoch();
    if (epoch == 0)
        return;
    if (round_ - epoch <= 1) {
        ++windowAt(now).promotedReaccessed;
        ++totalReaccessed_;
    }
    page->setPromotedEpoch(0);
}

}  // namespace sim
}  // namespace mclock
