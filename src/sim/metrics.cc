#include "sim/metrics.hh"

namespace mclock {
namespace sim {

MetricsWindow &
Metrics::windowAt(SimTime now)
{
    const std::size_t idx = static_cast<std::size_t>(now / windowLen_);
    if (windows_.size() <= idx)
        windows_.resize(idx + 1);
    return windows_[idx];
}

namespace {

void
bumpAt(std::vector<std::uint64_t> &counts, TierRank rank,
       std::uint64_t delta)
{
    const auto idx = static_cast<std::size_t>(rank);
    if (counts.size() <= idx)
        counts.resize(idx + 1);
    counts[idx] += delta;
}

}  // namespace

void
Metrics::recordAccess(SimTime now, TierRank tier, bool llcHit)
{
    auto &w = windowAt(now);
    ++w.accesses;
    ++totalAccesses_;
    if (llcHit) {
        ++w.llcHits;
        return;
    }
    bumpAt(w.tierAccesses, tier, 1);
    bumpAt(tierAccessTotals_, tier, 1);
}

void
Metrics::recordMemLatency(TierRank tier, SimTime lat)
{
    bumpAt(tierLatencyTotals_, tier, lat);
}

std::uint64_t
Metrics::totalTierAccesses(TierRank rank) const
{
    const auto idx = static_cast<std::size_t>(rank);
    return idx < tierAccessTotals_.size() ? tierAccessTotals_[idx] : 0;
}

SimTime
Metrics::totalTierLatency(TierRank rank) const
{
    const auto idx = static_cast<std::size_t>(rank);
    return idx < tierLatencyTotals_.size() ? tierLatencyTotals_[idx] : 0;
}

void
Metrics::recordPromotion(SimTime now, Page *page)
{
    ++windowAt(now).promotions;
    ++totalPromotions_;
    page->setPromotedEpoch(round_);
}

void
Metrics::recordDemotion(SimTime now)
{
    ++windowAt(now).demotions;
    ++totalDemotions_;
}

void
Metrics::maybeRecordReaccess(SimTime now, Page *page)
{
    const std::uint64_t epoch = page->promotedEpoch();
    if (epoch == 0)
        return;
    if (round_ - epoch <= 1) {
        ++windowAt(now).promotedReaccessed;
        ++totalReaccessed_;
    }
    page->setPromotedEpoch(0);
}

}  // namespace sim
}  // namespace mclock
