#include "sim/metrics.hh"

#include "base/logging.hh"

namespace mclock {
namespace sim {

void
Metrics::presizeTiers(std::size_t numTiers)
{
    numTiers_ = numTiers;
    if (tierAccessTotals_.size() < numTiers)
        tierAccessTotals_.resize(numTiers);
    if (tierLatencyTotals_.size() < numTiers)
        tierLatencyTotals_.resize(numTiers);
}

MetricsWindow &
Metrics::windowSlow(SimTime now)
{
    const std::size_t idx = static_cast<std::size_t>(now / windowLen_);
    if (windows_.size() <= idx) {
        windows_.resize(idx + 1);
        if (numTiers_ > 0) {
            for (auto &w : windows_) {
                if (w.tierAccesses.size() < numTiers_)
                    w.tierAccesses.resize(numTiers_);
            }
        }
    }
    curWinIdx_ = idx;
    curWinStart_ = static_cast<SimTime>(idx) * windowLen_;
    curWinEnd_ = curWinStart_ + windowLen_;
    return windows_[idx];
}

std::uint64_t
Metrics::totalTierAccesses(TierRank rank) const
{
    const auto idx = static_cast<std::size_t>(rank);
    return idx < tierAccessTotals_.size() ? tierAccessTotals_[idx] : 0;
}

SimTime
Metrics::totalTierLatency(TierRank rank) const
{
    const auto idx = static_cast<std::size_t>(rank);
    return idx < tierLatencyTotals_.size() ? tierLatencyTotals_[idx] : 0;
}

void
Metrics::recordPromotion(SimTime now, Page *page)
{
    ++windowAt(now).promotions;
    ++totalPromotions_;
    page->setPromotedEpoch(round_);
}

void
Metrics::recordDemotion(SimTime now)
{
    ++windowAt(now).demotions;
    ++totalDemotions_;
}

void
Metrics::maybeRecordReaccess(SimTime now, Page *page)
{
    const std::uint64_t epoch = page->promotedEpoch();
    if (epoch == 0)
        return;
    if (round_ - epoch <= 1) {
        ++windowAt(now).promotedReaccessed;
        ++totalReaccessed_;
    }
    page->setPromotedEpoch(0);
}

void
Metrics::mergeFrom(const Metrics &other)
{
    MCLOCK_ASSERT(windowLen_ == other.windowLen_);
    if (windows_.size() < other.windows_.size())
        windows_.resize(other.windows_.size());
    // Resizing may have invalidated the cached current-window bounds.
    curWinEnd_ = 0;
    for (std::size_t i = 0; i < other.windows_.size(); ++i) {
        auto &dst = windows_[i];
        const auto &src = other.windows_[i];
        dst.accesses += src.accesses;
        dst.llcHits += src.llcHits;
        dst.promotions += src.promotions;
        dst.demotions += src.demotions;
        dst.promotedReaccessed += src.promotedReaccessed;
        if (dst.tierAccesses.size() < src.tierAccesses.size())
            dst.tierAccesses.resize(src.tierAccesses.size());
        for (std::size_t t = 0; t < src.tierAccesses.size(); ++t)
            dst.tierAccesses[t] += src.tierAccesses[t];
    }
    totalAccesses_ += other.totalAccesses_;
    totalPromotions_ += other.totalPromotions_;
    totalDemotions_ += other.totalDemotions_;
    totalReaccessed_ += other.totalReaccessed_;
    if (tierAccessTotals_.size() < other.tierAccessTotals_.size())
        tierAccessTotals_.resize(other.tierAccessTotals_.size());
    for (std::size_t t = 0; t < other.tierAccessTotals_.size(); ++t)
        tierAccessTotals_[t] += other.tierAccessTotals_[t];
    if (tierLatencyTotals_.size() < other.tierLatencyTotals_.size())
        tierLatencyTotals_.resize(other.tierLatencyTotals_.size());
    for (std::size_t t = 0; t < other.tierLatencyTotals_.size(); ++t)
        tierLatencyTotals_[t] += other.tierLatencyTotals_[t];
    for (const auto &[name, value] : other.stats_.all())
        stats_.inc(name, value);
}

}  // namespace sim
}  // namespace mclock
