#include "sim/metrics.hh"

namespace mclock {
namespace sim {

void
Metrics::presizeTiers(std::size_t numTiers)
{
    numTiers_ = numTiers;
    if (tierAccessTotals_.size() < numTiers)
        tierAccessTotals_.resize(numTiers);
    if (tierLatencyTotals_.size() < numTiers)
        tierLatencyTotals_.resize(numTiers);
}

MetricsWindow &
Metrics::windowSlow(SimTime now)
{
    const std::size_t idx = static_cast<std::size_t>(now / windowLen_);
    if (windows_.size() <= idx) {
        windows_.resize(idx + 1);
        if (numTiers_ > 0) {
            for (auto &w : windows_) {
                if (w.tierAccesses.size() < numTiers_)
                    w.tierAccesses.resize(numTiers_);
            }
        }
    }
    curWinIdx_ = idx;
    curWinStart_ = static_cast<SimTime>(idx) * windowLen_;
    curWinEnd_ = curWinStart_ + windowLen_;
    return windows_[idx];
}

std::uint64_t
Metrics::totalTierAccesses(TierRank rank) const
{
    const auto idx = static_cast<std::size_t>(rank);
    return idx < tierAccessTotals_.size() ? tierAccessTotals_[idx] : 0;
}

SimTime
Metrics::totalTierLatency(TierRank rank) const
{
    const auto idx = static_cast<std::size_t>(rank);
    return idx < tierLatencyTotals_.size() ? tierLatencyTotals_[idx] : 0;
}

void
Metrics::recordPromotion(SimTime now, Page *page)
{
    ++windowAt(now).promotions;
    ++totalPromotions_;
    page->setPromotedEpoch(round_);
}

void
Metrics::recordDemotion(SimTime now)
{
    ++windowAt(now).demotions;
    ++totalDemotions_;
}

void
Metrics::maybeRecordReaccess(SimTime now, Page *page)
{
    const std::uint64_t epoch = page->promotedEpoch();
    if (epoch == 0)
        return;
    if (round_ - epoch <= 1) {
        ++windowAt(now).promotedReaccessed;
        ++totalReaccessed_;
    }
    page->setPromotedEpoch(0);
}

}  // namespace sim
}  // namespace mclock
