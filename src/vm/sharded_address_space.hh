/**
 * @file
 * Shard-partitioned view over several AddressSpace instances.
 *
 * A sharded machine splits one logical address space into S shards,
 * each owning a disjoint VPN range with its own dense page table and
 * page arena (an unmodified AddressSpace — allocation, lookup, and
 * teardown stay shard-local, so shards never contend on vm state).
 * This class is the routing layer on top: a *global* virtual address
 * carries its shard id in the high bits, and every routed operation
 * peels the tag off, forwards the *local* address to the owning shard,
 * and re-tags results on the way out.
 *
 * The tag sits at bit 44, far above any address the shard-local bump
 * allocator can reach (local spaces grow from 64 KiB upward), so local
 * and global addresses never collide and shardOfVa() is a single
 * shift. Routing is pure arithmetic on immutable fields — safe to call
 * concurrently from shard worker threads.
 */

#ifndef MCLOCK_VM_SHARDED_ADDRESS_SPACE_HH_
#define MCLOCK_VM_SHARDED_ADDRESS_SPACE_HH_

#include <string>
#include <vector>

#include "base/types.hh"
#include "vm/address_space.hh"

namespace mclock {

/** Routing facade over shard-local AddressSpace instances. */
class ShardedAddressSpace
{
  public:
    /** Bit position of the shard tag inside a global Vaddr/64. */
    static constexpr unsigned kShardShift = 44;

    /** Shard-tag bit position for a PageNum (vpn = va >> kPageShift). */
    static constexpr unsigned kShardVpnShift = kShardShift - kPageShift;

    /** Maximum shard count representable in the tag bits. */
    static constexpr unsigned kMaxShards = 256;

    /** Shard owning a global virtual address. */
    static constexpr unsigned
    shardOfVa(Vaddr va)
    {
        return static_cast<unsigned>(va >> kShardShift);
    }

    /** Shard owning a global virtual page number. */
    static constexpr unsigned
    shardOfVpn(PageNum vpn)
    {
        return static_cast<unsigned>(vpn >> kShardVpnShift);
    }

    /** Strip the shard tag: the address inside the owning shard. */
    static constexpr Vaddr
    localVa(Vaddr globalVa)
    {
        return globalVa & ((Vaddr{1} << kShardShift) - 1);
    }

    /** Local vpn inside the owning shard. */
    static constexpr PageNum
    localVpn(PageNum globalVpn)
    {
        return globalVpn & ((PageNum{1} << kShardVpnShift) - 1);
    }

    /** Tag a shard-local address with its owner. */
    static constexpr Vaddr
    globalVa(unsigned shard, Vaddr local)
    {
        return (static_cast<Vaddr>(shard) << kShardShift) | local;
    }

    /** Tag a shard-local vpn with its owner. */
    static constexpr PageNum
    globalVpn(unsigned shard, PageNum local)
    {
        return (static_cast<PageNum>(shard) << kShardVpnShift) | local;
    }

    /**
     * Build the facade over @p spaces (one per shard, shard id =
     * index). The spaces are borrowed, not owned — each shard's
     * simulator owns its AddressSpace; this object only routes.
     */
    explicit ShardedAddressSpace(std::vector<AddressSpace *> spaces);

    unsigned shards() const
    {
        return static_cast<unsigned>(spaces_.size());
    }

    /** The shard-local space behind shard @p s. */
    AddressSpace &shard(unsigned s) { return *spaces_[s]; }
    const AddressSpace &shard(unsigned s) const { return *spaces_[s]; }

    /**
     * Reserve a region on shard @p s; returns the *global* (tagged)
     * starting address.
     */
    Vaddr mmapOn(unsigned s, std::size_t bytes, bool anon = true,
                 const std::string &name = "anon");

    /** Translate a global vpn to its Page (nullptr if unmapped). */
    Page *lookup(PageNum globalVpn) const;

    /** Region containing the global address @p va, or nullptr. */
    const Region *regionOf(Vaddr va) const;

    /** Live pages summed over all shards. */
    std::size_t pageCount() const;

    /**
     * Invoke @p fn on every live page, shard 0 first — a deterministic
     * order regardless of how many workers populated the shards.
     */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        for (const AddressSpace *space : spaces_)
            space->forEachPage(fn);
    }

  private:
    std::vector<AddressSpace *> spaces_;
};

}  // namespace mclock

#endif  // MCLOCK_VM_SHARDED_ADDRESS_SPACE_HH_
