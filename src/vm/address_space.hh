/**
 * @file
 * A simulated process address space.
 *
 * Workloads obtain page-aligned regions through mmap() (anonymous or
 * file-backed) and touch them through the Simulator. Pages are
 * materialised lazily on first touch, exactly like demand paging. The
 * vpn -> Page mapping is a dense vector because the bump allocator hands
 * out contiguous regions, which keeps the simulator's translation on the
 * access fast path to a single indexed load.
 *
 * Page objects themselves come from a slab arena rather than individual
 * heap allocations: first-touch order is usually sequential, so adjacent
 * vpns share cache lines, and create/destroy churn (swap, munmap) reuses
 * slots without allocator traffic. Arena addresses are stable, so raw
 * Page* and intrusive LRU hooks remain valid for the space's lifetime.
 */

#ifndef MCLOCK_VM_ADDRESS_SPACE_HH_
#define MCLOCK_VM_ADDRESS_SPACE_HH_

#include <string>
#include <vector>

#include "base/arena.hh"
#include "base/types.hh"
#include "vm/page.hh"

namespace mclock {

/** One mmap'ed region. */
struct Region
{
    Vaddr start;
    std::size_t bytes;
    bool anon;
    std::string name;
    /** Tenant the region's pages are charged to (root by default). */
    MemCgroupId memcg = kRootMemcg;

    Vaddr end() const { return start + bytes; }
};

/** Simulated virtual address space with lazy page materialisation. */
class AddressSpace
{
  public:
    AddressSpace();

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    /**
     * Reserve a page-aligned region of at least @p bytes.
     *
     * @param bytes requested size (rounded up to whole pages)
     * @param anon  true for anonymous memory, false for file-backed
     * @param name  label for diagnostics ("heap", "csr-edges", ...)
     * @param memcg tenant group the region's pages are charged to
     * @return the starting virtual address
     */
    Vaddr mmap(std::size_t bytes, bool anon = true,
               const std::string &name = "anon",
               MemCgroupId memcg = kRootMemcg);

    /**
     * Release the region starting at @p start. The pages themselves must
     * already have been torn down by the caller (the Simulator owns the
     * frame/list bookkeeping); this forgets the mapping.
     */
    void munmap(Vaddr start);

    /** Translate a vpn to its Page, or nullptr if never touched. */
    Page *
    lookup(PageNum vpn) const
    {
        if (vpn >= pages_.size())
            return nullptr;
        return pages_[vpn];
    }

    /**
     * Materialise the Page for @p vpn (first touch). The page inherits
     * anon/file from its containing region. Panics if already present or
     * outside any region.
     */
    Page *createPage(PageNum vpn);

    /** Destroy the Page for @p vpn (region teardown). */
    void destroyPage(PageNum vpn);

    /** Region containing @p va, or nullptr. */
    const Region *regionOf(Vaddr va) const;

    const std::vector<Region> &regions() const { return regions_; }

    /** Number of pages ever materialised and still alive. */
    std::size_t pageCount() const { return livePages_; }

    /** Upper bound of allocated vpns (for iteration). */
    PageNum vpnLimit() const { return pageNumOf(nextFree_); }

    /**
     * Invoke @p fn on every live page. Used by policies that need a full
     * profiling pass (e.g. the AMP baseline) and by teardown.
     */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        for (Page *p : pages_) {
            if (p)
                fn(p);
        }
    }

  private:
    // Start above zero so null-page bugs trap loudly.
    static constexpr Vaddr kBase = 0x10000;

    std::vector<Region> regions_;
    SlabArena<Page> arena_;
    std::vector<Page *> pages_;
    Vaddr nextFree_ = kBase;
    std::size_t livePages_ = 0;
};

}  // namespace mclock

#endif  // MCLOCK_VM_ADDRESS_SPACE_HH_
