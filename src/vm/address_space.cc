#include "vm/address_space.hh"

#include "base/logging.hh"

namespace mclock {

AddressSpace::AddressSpace() = default;

Vaddr
AddressSpace::mmap(std::size_t bytes, bool anon, const std::string &name,
                   MemCgroupId memcg)
{
    MCLOCK_ASSERT(bytes > 0);
    const std::size_t rounded = (bytes + kPageSize - 1) & ~(kPageSize - 1);
    const Vaddr start = nextFree_;
    nextFree_ += rounded;
    regions_.push_back(Region{start, rounded, anon, name, memcg});
    const PageNum limit = pageNumOf(nextFree_);
    if (pages_.size() < limit)
        pages_.resize(limit, nullptr);
    return start;
}

void
AddressSpace::munmap(Vaddr start)
{
    for (auto it = regions_.begin(); it != regions_.end(); ++it) {
        if (it->start == start) {
            regions_.erase(it);
            return;
        }
    }
    MCLOCK_PANIC("munmap of unknown region at 0x%llx",
                 static_cast<unsigned long long>(start));
}

Page *
AddressSpace::createPage(PageNum vpn)
{
    MCLOCK_ASSERT(vpn < pages_.size());
    MCLOCK_ASSERT(!pages_[vpn]);
    const Region *region = regionOf(vpn << kPageShift);
    MCLOCK_ASSERT(region != nullptr);
    pages_[vpn] = arena_.create(this, vpn, region->anon);
    pages_[vpn]->setMemcg(region->memcg);
    ++livePages_;
    return pages_[vpn];
}

void
AddressSpace::destroyPage(PageNum vpn)
{
    MCLOCK_ASSERT(vpn < pages_.size() && pages_[vpn]);
    MCLOCK_ASSERT(!pages_[vpn]->onLru());
    arena_.destroy(pages_[vpn]);
    pages_[vpn] = nullptr;
    MCLOCK_ASSERT(livePages_ > 0);
    --livePages_;
}

const Region *
AddressSpace::regionOf(Vaddr va) const
{
    for (const auto &r : regions_) {
        if (va >= r.start && va < r.end())
            return &r;
    }
    return nullptr;
}

}  // namespace mclock
