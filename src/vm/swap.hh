/**
 * @file
 * Block-storage backend for last-resort eviction.
 *
 * When the lowest tier is under pressure and a page cannot be migrated
 * further down, the PFRA writes it back to block storage: file-backed
 * pages to their file, anonymous pages to the swap area. This model
 * tracks occupancy and charges the device latency.
 */

#ifndef MCLOCK_VM_SWAP_HH_
#define MCLOCK_VM_SWAP_HH_

#include <cstdint>
#include <unordered_set>

#include "base/types.hh"
#include "vm/page.hh"

namespace mclock {

/** Swap area + writeback device model. */
class SwapDevice
{
  public:
    /** @param capacityPages 0 means unlimited. */
    explicit SwapDevice(std::size_t capacityPages = 0)
        : capacity_(capacityPages)
    {}

    /** True if another anonymous page can be swapped out. */
    bool
    hasSpace() const
    {
        return capacity_ == 0 || slots_.size() < capacity_;
    }

    /**
     * Record that @p page's contents left memory. File-backed pages do
     * not consume swap slots (they go back to their file).
     */
    void pageOut(Page *page);

    /** Record that @p page's contents were read back in. */
    void pageIn(Page *page);

    /**
     * Free @p page's swap slot without reading it back (the region was
     * unmapped and the contents discarded). Unlike pageIn(), this is
     * not device traffic and does not count as a page-in.
     */
    void releaseSlot(Page *page);

    std::size_t usedSlots() const { return slots_.size(); }
    std::uint64_t pageOuts() const { return pageOuts_; }
    std::uint64_t pageIns() const { return pageIns_; }

    /** Anonymous page-outs only (swap-area writes). */
    std::uint64_t swapOuts() const { return swapOuts_; }

    /** File-backed page-outs only (writebacks to the file). */
    std::uint64_t writebacks() const { return writebacks_; }

    /** Slots freed by anonymous page-ins (slots actually erased). */
    std::uint64_t slotFrees() const { return slotFrees_; }

    /** Slots freed by releaseSlot (unmap/teardown, no device read). */
    std::uint64_t slotReleases() const { return releases_; }

    /**
     * Swap-slot conservation: every slot ever taken by a swap-out is
     * either still occupied, freed by a page-in, or released at
     * teardown — exactly once each. A double-release or a leaked slot
     * breaks the identity.
     */
    bool
    slotsConserved() const
    {
        return swapOuts_ == usedSlots() + slotFrees_ + releases_;
    }

  private:
    std::size_t capacity_;
    std::unordered_set<const Page *> slots_;
    std::uint64_t pageOuts_ = 0;
    std::uint64_t pageIns_ = 0;
    std::uint64_t swapOuts_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t slotFrees_ = 0;
    std::uint64_t releases_ = 0;
};

}  // namespace mclock

#endif  // MCLOCK_VM_SWAP_HH_
