#include "vm/page.hh"

namespace mclock {

const char *
lruListName(LruListKind kind)
{
    switch (kind) {
      case LruListKind::None: return "none";
      case LruListKind::InactiveAnon: return "inactive_anon";
      case LruListKind::ActiveAnon: return "active_anon";
      case LruListKind::PromoteAnon: return "promote_anon";
      case LruListKind::InactiveFile: return "inactive_file";
      case LruListKind::ActiveFile: return "active_file";
      case LruListKind::PromoteFile: return "promote_file";
      case LruListKind::Unevictable: return "unevictable";
    }
    return "unknown";
}

}  // namespace mclock
