#include "vm/memcg.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"

namespace mclock {

std::size_t
MemCgroup::chargedTotal() const
{
    std::size_t total = 0;
    for (std::size_t c : charges_)
        total += c;
    return total;
}

std::size_t
MemCgroup::maxPages(TierRank tier) const
{
    const auto t = static_cast<std::size_t>(tier);
    if (t >= limits_.maxPages.size())
        return std::numeric_limits<std::size_t>::max();
    return limits_.maxPages[t];
}

std::size_t
MemCgroup::lowPages(TierRank tier) const
{
    const auto t = static_cast<std::size_t>(tier);
    return t < limits_.lowPages.size() ? limits_.lowPages[t] : 0;
}

void
MemCgroup::charge(TierRank tier)
{
    const auto t = static_cast<std::size_t>(tier);
    if (t >= charges_.size())
        charges_.resize(t + 1, 0);
    ++charges_[t];
}

void
MemCgroup::uncharge(TierRank tier)
{
    const auto t = static_cast<std::size_t>(tier);
    if (t >= charges_.size() || charges_[t] == 0) {
        MCLOCK_FATAL("memcg %u (%s): uncharge underflow on tier %d",
                     unsigned(id_), name_.c_str(), tier);
    }
    --charges_[t];
}

void
MemCgroup::refillPromoteDeficit()
{
    const std::uint64_t quantum = limits_.promoteQuantum;
    if (quantum == 0)
        return;
    // Unused credit carries over, capped at one saved quantum so a
    // long-idle tenant cannot burst arbitrarily far past its rate.
    promoteDeficit_ = std::min(promoteDeficit_ + quantum, 2 * quantum);
}

bool
MemCgroup::consumePromoteCredit()
{
    if (limits_.promoteQuantum == 0)
        return true;
    if (promoteDeficit_ == 0)
        return false;
    --promoteDeficit_;
    return true;
}

SimTime
MemCgroup::p99Latency() const
{
    if (accesses_ == 0)
        return 0;
    // Smallest latency L with CDF(L) >= 0.99: integer arithmetic only,
    // so the result is exact and platform-independent.
    const std::uint64_t need =
        (accesses_ * 99 + 99) / 100;  // ceil(0.99 * accesses)
    std::uint64_t cum = 0;
    for (const auto &[lat, count] : latencyHist_) {
        cum += count;
        if (cum >= need)
            return lat;
    }
    return latencyHist_.rbegin()->first;
}

double
MemCgroup::meanLatency() const
{
    if (accesses_ == 0)
        return 0.0;
    double sum = 0.0;
    for (const auto &[lat, count] : latencyHist_)
        sum += static_cast<double>(lat) * static_cast<double>(count);
    return sum / static_cast<double>(accesses_);
}

MemCgroupManager::MemCgroupManager()
{
    groups_.push_back(nullptr);  // id 0: the root sentinel
}

MemCgroupId
MemCgroupManager::create(const std::string &name, MemCgroupLimits limits)
{
    owner_.assertHeld();
    const auto id = static_cast<MemCgroupId>(groups_.size());
    groups_.push_back(
        std::make_unique<MemCgroup>(id, name, std::move(limits)));
    return id;
}

void
MemCgroupManager::beginEpoch()
{
    owner_.assertHeld();
    for (std::size_t i = 1; i < groups_.size(); ++i)
        groups_[i]->refillPromoteDeficit();
}

void
MemCgroupManager::charge(MemCgroupId id, TierRank tier)
{
    if (MemCgroup *cg = find(id))
        cg->charge(tier);
}

void
MemCgroupManager::uncharge(MemCgroupId id, TierRank tier)
{
    if (MemCgroup *cg = find(id))
        cg->uncharge(tier);
}

void
MemCgroupManager::transfer(MemCgroupId id, TierRank from, TierRank to)
{
    if (MemCgroup *cg = find(id)) {
        cg->uncharge(from);
        cg->charge(to);
    }
}

bool
MemCgroupManager::withinMax(MemCgroupId id, TierRank tier) const
{
    const MemCgroup *cg = find(id);
    return !cg || cg->withinMax(tier);
}

bool
MemCgroupManager::lowProtected(MemCgroupId id, TierRank tier) const
{
    const MemCgroup *cg = find(id);
    return cg && cg->lowProtected(tier);
}

bool
MemCgroupManager::consumePromoteCredit(MemCgroupId id)
{
    MemCgroup *cg = find(id);
    return !cg || cg->consumePromoteCredit();
}

bool
MemCgroupManager::hasPromoteCredit(MemCgroupId id) const
{
    const MemCgroup *cg = find(id);
    return !cg || cg->hasPromoteCredit();
}

}  // namespace mclock
