/**
 * @file
 * Memory control groups: per-tenant accounting and QoS limits.
 *
 * Each tenant of a simulated host owns one MemCgroup carrying
 *  - per-tier page charges (how many resident frames the tenant holds
 *    on each tier),
 *  - a per-tier hard cap (`maxPages`) enforced at allocation and
 *    promotion time,
 *  - a per-tier soft floor (`lowPages`): pages of a group charged at or
 *    below its floor are protected from global reclaim while
 *    unprotected pages remain (the memory.low idiom),
 *  - a per-epoch promotion quota refilled deficit-round-robin style and
 *    layered *under* the sharded seniority budget (a promotion must
 *    clear both), and
 *  - per-tenant observability: charge/latency accounting feeding the
 *    `tenants` object of run_manifest.json (p99 access latency).
 *
 * Group id 0 is the root group. Pages belong to it by default, it has
 * no limits, and every hook short-circuits on it, so hosts that never
 * create a tenant are bit-identical to hosts built before this layer
 * existed. Charging follows the kernel memcg discipline: charges move
 * with the page on migration (transfer), disappear on free/evict
 * (uncharge), and downward moves always succeed — pressure must be
 * relievable even for an over-cap group, so only upward placement is
 * gated. Accounting never charges simulated time.
 *
 * Concurrency: one manager per simulated host, reached from that
 * host's driving thread only — in a sharded machine each shard owns
 * its own manager, so all charge state stays shard-local. That
 * confinement is statically checked: the manager carries a ThreadRole
 * capability (base/sync.hh) guarding the group table, and every entry
 * point asserts it, so -Wthread-safety rejects any code path that
 * routes another shard's (coordinator-guarded) state in here.
 */

#ifndef MCLOCK_VM_MEMCG_HH_
#define MCLOCK_VM_MEMCG_HH_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/sync.hh"
#include "base/types.hh"

namespace mclock {

/**
 * Per-tier limits for one tenant. Tier ranks index both vectors; a
 * rank beyond a vector's size (or an empty vector) means unlimited
 * (resp. unprotected). promoteQuantum == 0 leaves promotions
 * unmetered for this group.
 */
struct MemCgroupLimits
{
    /** Hard cap per tier (pages); allocation/promotion beyond it fails. */
    std::vector<std::size_t> maxPages;
    /** Soft protection per tier (pages); see MemCgroup::lowProtected. */
    std::vector<std::size_t> lowPages;
    /** Promotion credits granted per epoch (deficit round robin). */
    std::uint64_t promoteQuantum = 0;
};

/** One tenant's control group: charges, limits, and QoS counters. */
class MemCgroup
{
  public:
    MemCgroup(MemCgroupId id, std::string name, MemCgroupLimits limits)
        : id_(id), name_(std::move(name)), limits_(std::move(limits))
    {}

    MemCgroupId id() const { return id_; }
    const std::string &name() const { return name_; }
    const MemCgroupLimits &limits() const { return limits_; }

    /** Pages currently charged to this group on @p tier. */
    std::size_t
    charged(TierRank tier) const
    {
        const auto t = static_cast<std::size_t>(tier);
        return t < charges_.size() ? charges_[t] : 0;
    }

    /** Pages charged across all tiers. */
    std::size_t chargedTotal() const;

    /** Hard cap for @p tier (SIZE_MAX when unlimited). */
    std::size_t maxPages(TierRank tier) const;

    /** Soft floor for @p tier (0 when unprotected). */
    std::size_t lowPages(TierRank tier) const;

    /**
     * Would one more page on @p tier stay within the hard cap? Pure
     * query; charge() below performs the actual accounting.
     */
    [[nodiscard]] bool
    withinMax(TierRank tier) const
    {
        return charged(tier) < maxPages(tier);
    }

    /**
     * True while the group's charge on @p tier sits at or below its
     * soft floor: global reclaim should prefer other pages first.
     */
    [[nodiscard]] bool
    lowProtected(TierRank tier) const
    {
        return charged(tier) <= lowPages(tier);
    }

    /** Charge one page to @p tier (unconditional; caller gates caps). */
    void charge(TierRank tier);

    /** Remove one page's charge from @p tier. Panics on underflow. */
    void uncharge(TierRank tier);

    // --- Promotion quota (deficit round robin) ---------------------------

    /**
     * Refill the promotion deficit for a new epoch: unused credit
     * carries over up to one extra quantum, bounding the burst a group
     * can save up. No-op for unmetered groups (quantum 0).
     */
    void refillPromoteDeficit();

    /**
     * Consume one promotion credit. Returns false (and consumes
     * nothing) when the deficit is exhausted; always true for
     * unmetered groups. The result is the admission decision — a
     * caller that drops it has either skipped the gate or consumed a
     * credit for nothing, hence [[nodiscard]].
     */
    [[nodiscard]] bool consumePromoteCredit();

    /** Non-consuming quota query (always true for unmetered groups). */
    [[nodiscard]] bool
    hasPromoteCredit() const
    {
        return limits_.promoteQuantum == 0 || promoteDeficit_ > 0;
    }

    std::uint64_t promoteDeficit() const { return promoteDeficit_; }

    // --- Per-tenant observability ----------------------------------------

    /** Record one memory access completed at latency @p lat. */
    void
    recordLatency(SimTime lat)
    {
        ++accesses_;
        ++latencyHist_[lat];
    }

    std::uint64_t accesses() const { return accesses_; }

    /**
     * Exact p99 access latency: the smallest recorded latency whose
     * cumulative count reaches 99% of all accesses (0 with no
     * accesses). Access latencies form a small discrete set (cache
     * hit, DRAM, PM, fault paths), so the histogram stays tiny.
     */
    SimTime p99Latency() const;

    /** Mean access latency in ns (0 with no accesses). */
    double meanLatency() const;

    /**
     * Raw latency histogram (latency -> access count). Exposed so
     * multi-host scenarios (one manager per shard) can merge tenant
     * histograms and compute exact cross-shard percentiles.
     */
    const std::map<SimTime, std::uint64_t> &
    latencyHist() const
    {
        return latencyHist_;
    }

  private:
    MemCgroupId id_;
    std::string name_;
    MemCgroupLimits limits_;
    /** Pages charged per tier rank (grown on demand). */
    std::vector<std::size_t> charges_;
    /** Remaining promotion credits this epoch. */
    std::uint64_t promoteDeficit_ = 0;
    std::uint64_t accesses_ = 0;
    /** latency -> access count; exact percentiles, tiny key set. */
    std::map<SimTime, std::uint64_t> latencyHist_;
};

/**
 * The set of control groups of one simulated host. Owned by the
 * Simulator; one per host, so sharded machines carry one manager per
 * shard and all quota state stays shard-local (worker-width
 * independent by construction).
 */
class MemCgroupManager
{
  public:
    MemCgroupManager();

    MemCgroupManager(const MemCgroupManager &) = delete;
    MemCgroupManager &operator=(const MemCgroupManager &) = delete;

    /** Create a tenant group; ids are dense and start at 1. */
    MemCgroupId create(const std::string &name,
                       MemCgroupLimits limits = {});

    /** Group for @p id, or nullptr for the root id / unknown ids. */
    MemCgroup *
    find(MemCgroupId id)
    {
        owner_.assertHeld();
        if (id == kRootMemcg || id >= groups_.size())
            return nullptr;
        return groups_[id].get();
    }

    const MemCgroup *
    find(MemCgroupId id) const
    {
        owner_.assertHeld();
        if (id == kRootMemcg || id >= groups_.size())
            return nullptr;
        return groups_[id].get();
    }

    /** Number of tenant groups created (root excluded). */
    std::size_t
    numGroups() const
    {
        owner_.assertHeld();
        return groups_.size() - 1;
    }

    /** Any tenants at all? False on every pre-memcg host. */
    bool
    active() const
    {
        owner_.assertHeld();
        return groups_.size() > 1;
    }

    /** Invoke @p fn on every tenant group, in id order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        owner_.assertHeld();
        for (std::size_t i = 1; i < groups_.size(); ++i)
            fn(*groups_[i]);
    }

    /**
     * Begin a promotion epoch: refill every group's deficit. Called
     * from Simulator::beginShardEpoch (and directly by tests).
     */
    void beginEpoch();

    // --- Charging helpers (root id short-circuits in all of them) --------

    /** Charge @p id one page on @p tier. */
    void charge(MemCgroupId id, TierRank tier);

    /** Uncharge @p id one page on @p tier. */
    void uncharge(MemCgroupId id, TierRank tier);

    /** Move one page's charge of @p id from @p from to @p to. */
    void transfer(MemCgroupId id, TierRank from, TierRank to);

    /** Hard-cap query: may @p id take one more page on @p tier? */
    [[nodiscard]] bool withinMax(MemCgroupId id, TierRank tier) const;

    /** Soft-floor query: is @p id protected on @p tier right now? */
    [[nodiscard]] bool lowProtected(MemCgroupId id, TierRank tier) const;

    /**
     * Promotion-quota gate: consume one credit of @p id. Root pages
     * are always allowed. [[nodiscard]]: dropping the result means a
     * promotion proceeded ungated (or a credit burned for nothing).
     */
    [[nodiscard]] bool consumePromoteCredit(MemCgroupId id);

    /** Non-consuming quota query for @p id (root: always true). */
    [[nodiscard]] bool hasPromoteCredit(MemCgroupId id) const;

    /** Record an access latency against @p id (root: dropped). */
    void
    recordLatency(MemCgroupId id, SimTime lat)
    {
        if (MemCgroup *cg = find(id))
            cg->recordLatency(lat);
    }

  private:
    /** Host-thread confinement capability (see file comment). */
    base::ThreadRole owner_;
    /** Index 0 is the root sentinel (nullptr); tenants start at 1. */
    std::vector<std::unique_ptr<MemCgroup>> groups_
        MCLOCK_GUARDED_BY(owner_);
};

}  // namespace mclock

#endif  // MCLOCK_VM_MEMCG_HH_
