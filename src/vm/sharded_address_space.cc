#include "vm/sharded_address_space.hh"

#include "base/logging.hh"

namespace mclock {

ShardedAddressSpace::ShardedAddressSpace(std::vector<AddressSpace *> spaces)
    : spaces_(std::move(spaces))
{
    MCLOCK_ASSERT(!spaces_.empty());
    MCLOCK_ASSERT(spaces_.size() <= kMaxShards);
    for (const AddressSpace *space : spaces_)
        MCLOCK_ASSERT(space != nullptr);
}

Vaddr
ShardedAddressSpace::mmapOn(unsigned s, std::size_t bytes, bool anon,
                            const std::string &name)
{
    MCLOCK_ASSERT(s < spaces_.size());
    const Vaddr local = spaces_[s]->mmap(bytes, anon, name);
    // The local bump allocator must stay below the tag bits, or two
    // shards' addresses would alias.
    MCLOCK_ASSERT(localVa(local) == local);
    return globalVa(s, local);
}

Page *
ShardedAddressSpace::lookup(PageNum globalVpn) const
{
    const unsigned s = shardOfVpn(globalVpn);
    if (s >= spaces_.size())
        return nullptr;
    return spaces_[s]->lookup(localVpn(globalVpn));
}

const Region *
ShardedAddressSpace::regionOf(Vaddr va) const
{
    const unsigned s = shardOfVa(va);
    if (s >= spaces_.size())
        return nullptr;
    return spaces_[s]->regionOf(localVa(va));
}

std::size_t
ShardedAddressSpace::pageCount() const
{
    std::size_t total = 0;
    for (const AddressSpace *space : spaces_)
        total += space->pageCount();
    return total;
}

}  // namespace mclock
