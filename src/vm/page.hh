/**
 * @file
 * The simulated analogue of the kernel's struct page.
 *
 * A Page describes one resident (or swapped-out) virtual page: which NUMA
 * node holds its frame, its LRU list membership, and its flag bits. The
 * flag set mirrors Linux 5.3 plus the one flag MULTI-CLOCK adds
 * (PagePromote), and the PTE-level state (accessed/dirty/present bits)
 * that the hardware maintains in the process page table is folded in as
 * well, since our pages are singly mapped.
 */

#ifndef MCLOCK_VM_PAGE_HH_
#define MCLOCK_VM_PAGE_HH_

#include <cstdint>

#include "base/intrusive_list.hh"
#include "base/types.hh"

namespace mclock {

class AddressSpace;

/** Which per-node LRU list a page currently lives on. */
enum class LruListKind : std::uint8_t {
    None = 0,        ///< not on any list (being migrated, or isolated)
    InactiveAnon,
    ActiveAnon,
    PromoteAnon,     ///< MULTI-CLOCK's new list (anonymous pages)
    InactiveFile,
    ActiveFile,
    PromoteFile,     ///< MULTI-CLOCK's new list (file-backed pages)
    Unevictable,
};

constexpr int kNumLruLists = 8;

/** Human-readable list name ("inactive_anon", ...). */
const char *lruListName(LruListKind kind);

/** True for the two lists introduced by MULTI-CLOCK. */
inline bool
isPromoteList(LruListKind kind)
{
    return kind == LruListKind::PromoteAnon ||
           kind == LruListKind::PromoteFile;
}

inline bool
isActiveList(LruListKind kind)
{
    return kind == LruListKind::ActiveAnon ||
           kind == LruListKind::ActiveFile;
}

inline bool
isInactiveList(LruListKind kind)
{
    return kind == LruListKind::InactiveAnon ||
           kind == LruListKind::InactiveFile;
}

/** struct page: flags, placement, and list linkage for one virtual page. */
class Page
{
  public:
    Page(AddressSpace *space, PageNum vpn, bool anon)
        : space_(space), vpn_(vpn), anon_(anon)
    {}

    Page(const Page &) = delete;
    Page &operator=(const Page &) = delete;

    AddressSpace *space() const { return space_; }
    PageNum vpn() const { return vpn_; }
    Vaddr vaddr() const { return vpn_ << kPageShift; }

    /** File-backed vs anonymous mapping (fixed at creation). */
    bool isAnon() const { return anon_; }

    // --- Frame placement -------------------------------------------------
    NodeId node() const { return node_; }
    Paddr paddr() const { return paddr_; }
    bool resident() const { return node_ != kInvalidNode; }

    void
    placeOn(NodeId node, Paddr paddr)
    {
        node_ = node;
        paddr_ = paddr;
    }

    void
    unplace()
    {
        node_ = kInvalidNode;
        paddr_ = 0;
    }

    // --- Software page flags (struct page flags) -------------------------
    bool referenced() const { return referenced_; }
    void setReferenced(bool v) { referenced_ = v; }

    bool active() const { return active_; }
    void setActive(bool v) { active_ = v; }

    /** MULTI-CLOCK's PagePromote flag. */
    bool promoteFlag() const { return promote_; }
    void setPromoteFlag(bool v) { promote_ = v; }

    bool dirty() const { return dirty_; }
    void setDirty(bool v) { dirty_ = v; }

    bool unevictable() const { return unevictable_; }
    void setUnevictable(bool v) { unevictable_ = v; }

    /** Page is pinned/locked and may not be migrated right now. */
    bool locked() const { return locked_; }
    void setLocked(bool v) { locked_ = v; }

    // --- PTE-level state (maintained by the "hardware") ------------------
    /** Accessed bit the CPU sets in the PTE on a page-table walk. */
    bool pteReferenced() const { return pteReferenced_; }
    void setPteReferenced(bool v) { pteReferenced_ = v; }

    /** Test-and-clear, as the kernel's page_referenced() rmap walk does. */
    bool
    testAndClearPteReferenced()
    {
        const bool was = pteReferenced_;
        pteReferenced_ = false;
        return was;
    }

    bool pteDirty() const { return pteDirty_; }
    void setPteDirty(bool v) { pteDirty_ = v; }

    /**
     * PTE poisoned for NUMA-hint fault tracking (PROT_NONE). The next
     * access traps into the policy instead of completing directly.
     */
    bool hintPoisoned() const { return hintPoisoned_; }
    void setHintPoisoned(bool v) { hintPoisoned_ = v; }

    // --- LRU list membership ---------------------------------------------
    LruListKind list() const { return list_; }
    void setList(LruListKind kind) { list_ = kind; }
    bool onLru() const { return list_ != LruListKind::None; }

    /** Intrusive linkage used by pfra::LruLists. */
    ListHook lruHook;

    // --- Policy scratch state --------------------------------------------
    /** AutoTiering-OPM's n-bit access-history vector. */
    std::uint8_t historyBits() const { return history_; }
    void setHistoryBits(std::uint8_t v) { history_ = v; }

    /**
     * Shift the history left by one, inserting @p accessed, as
     * AutoTiering-OPM does on each profiling pass.
     */
    void
    shiftHistory(bool accessed)
    {
        history_ = static_cast<std::uint8_t>((history_ << 1) |
                                             (accessed ? 1u : 0u));
    }

    /** Time of the most recent NUMA-hint fault (AutoTiering recency). */
    SimTime lastHintFault() const { return lastHintFault_; }
    void setLastHintFault(SimTime t) { lastHintFault_ = t; }

    /** Hint fault seen since the last profiling pass (OPM history). */
    bool hintFaultedSinceScan() const { return hintFaultedSinceScan_; }
    void setHintFaultedSinceScan(bool v) { hintFaultedSinceScan_ = v; }

    /** Time of the last memory-visible access (AMP-LRU selection). */
    SimTime lastAccess() const { return lastAccess_; }
    void setLastAccess(SimTime t) { lastAccess_ = t; }

    /** Epoch of the most recent promotion (for re-access accounting). */
    std::uint64_t promotedEpoch() const { return promotedEpoch_; }
    void setPromotedEpoch(std::uint64_t e) { promotedEpoch_ = e; }

    /** Total memory-visible accesses (stats and AMP-LFU selection). */
    std::uint64_t accessCount() const { return accessCount_; }
    void bumpAccessCount() { ++accessCount_; }
    void setAccessCount(std::uint64_t c) { accessCount_ = c; }
    void resetAccessCount() { accessCount_ = 0; }

  private:
    AddressSpace *space_;
    PageNum vpn_;
    NodeId node_ = kInvalidNode;
    Paddr paddr_ = 0;
    LruListKind list_ = LruListKind::None;
    std::uint64_t promotedEpoch_ = 0;
    std::uint64_t accessCount_ = 0;
    SimTime lastHintFault_ = 0;
    SimTime lastAccess_ = 0;
    bool hintFaultedSinceScan_ = false;
    std::uint8_t history_ = 0;
    bool anon_;
    bool referenced_ = false;
    bool active_ = false;
    bool promote_ = false;
    bool dirty_ = false;
    bool unevictable_ = false;
    bool locked_ = false;
    bool pteReferenced_ = false;
    bool pteDirty_ = false;
    bool hintPoisoned_ = false;
};

}  // namespace mclock

#endif  // MCLOCK_VM_PAGE_HH_
