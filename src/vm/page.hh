/**
 * @file
 * The simulated analogue of the kernel's struct page.
 *
 * A Page describes one resident (or swapped-out) virtual page: which NUMA
 * node holds its frame, its LRU list membership, and its flag bits. The
 * flag set mirrors Linux 5.3 plus the one flag MULTI-CLOCK adds
 * (PagePromote), and the PTE-level state (accessed/dirty/present bits)
 * that the hardware maintains in the process page table is folded in as
 * well, since our pages are singly mapped.
 *
 * Layout discipline (the access fast path touches every field below the
 * hook on every simulated memory access): all boolean page/PTE state is
 * packed into one flag word, exactly like the kernel's page->flags, and
 * the fields the per-access path reads/writes (placement, flags, access
 * stamps) lead the struct so one line fill covers them. Pages are
 * allocated from the address space's slab arena in first-touch order,
 * so sequential vpns sit contiguously in memory.
 */

#ifndef MCLOCK_VM_PAGE_HH_
#define MCLOCK_VM_PAGE_HH_

#include <cstdint>

#include "base/intrusive_list.hh"
#include "base/types.hh"

namespace mclock {

class AddressSpace;

/** Which per-node LRU list a page currently lives on. */
enum class LruListKind : std::uint8_t {
    None = 0,        ///< not on any list (being migrated, or isolated)
    InactiveAnon,
    ActiveAnon,
    PromoteAnon,     ///< MULTI-CLOCK's new list (anonymous pages)
    InactiveFile,
    ActiveFile,
    PromoteFile,     ///< MULTI-CLOCK's new list (file-backed pages)
    Unevictable,
};

constexpr int kNumLruLists = 8;

/** Human-readable list name ("inactive_anon", ...). */
const char *lruListName(LruListKind kind);

/** True for the two lists introduced by MULTI-CLOCK. */
inline bool
isPromoteList(LruListKind kind)
{
    return kind == LruListKind::PromoteAnon ||
           kind == LruListKind::PromoteFile;
}

inline bool
isActiveList(LruListKind kind)
{
    return kind == LruListKind::ActiveAnon ||
           kind == LruListKind::ActiveFile;
}

inline bool
isInactiveList(LruListKind kind)
{
    return kind == LruListKind::InactiveAnon ||
           kind == LruListKind::InactiveFile;
}

/** struct page: flags, placement, and list linkage for one virtual page. */
class Page
{
  public:
    Page(AddressSpace *space, PageNum vpn, bool anon)
        : space_(space), vpn_(vpn), flags_(anon ? kAnon : 0u)
    {}

    Page(const Page &) = delete;
    Page &operator=(const Page &) = delete;

    AddressSpace *space() const { return space_; }
    PageNum vpn() const { return vpn_; }
    Vaddr vaddr() const { return vpn_ << kPageShift; }

    /** File-backed vs anonymous mapping (fixed at creation). */
    bool isAnon() const { return flag(kAnon); }

    /** Owning memory control group (inherited from the region). */
    MemCgroupId memcg() const { return memcg_; }
    void setMemcg(MemCgroupId id) { memcg_ = id; }

    // --- Frame placement -------------------------------------------------
    NodeId node() const { return node_; }
    Paddr paddr() const { return paddr_; }
    bool resident() const { return node_ != kInvalidNode; }

    void
    placeOn(NodeId node, Paddr paddr)
    {
        node_ = node;
        paddr_ = paddr;
    }

    void
    unplace()
    {
        node_ = kInvalidNode;
        paddr_ = 0;
    }

    // --- Software page flags (struct page flags) -------------------------
    bool referenced() const { return flag(kReferenced); }
    void setReferenced(bool v) { setFlag(kReferenced, v); }

    bool active() const { return flag(kActive); }
    void setActive(bool v) { setFlag(kActive, v); }

    /** MULTI-CLOCK's PagePromote flag. */
    bool promoteFlag() const { return flag(kPromote); }
    void setPromoteFlag(bool v) { setFlag(kPromote, v); }

    bool dirty() const { return flag(kDirty); }
    void setDirty(bool v) { setFlag(kDirty, v); }

    bool unevictable() const { return flag(kUnevictable); }
    void setUnevictable(bool v) { setFlag(kUnevictable, v); }

    /** Page is pinned/locked and may not be migrated right now. */
    bool locked() const { return flag(kLocked); }
    void setLocked(bool v) { setFlag(kLocked, v); }

    // --- PTE-level state (maintained by the "hardware") ------------------
    /** Accessed bit the CPU sets in the PTE on a page-table walk. */
    bool pteReferenced() const { return flag(kPteReferenced); }
    void setPteReferenced(bool v) { setFlag(kPteReferenced, v); }

    /** Test-and-clear, as the kernel's page_referenced() rmap walk does. */
    bool
    testAndClearPteReferenced()
    {
        const bool was = flag(kPteReferenced);
        flags_ &= static_cast<std::uint16_t>(~kPteReferenced);
        return was;
    }

    bool pteDirty() const { return flag(kPteDirty); }
    void setPteDirty(bool v) { setFlag(kPteDirty, v); }

    /**
     * Fast-path combination of setPteReferenced(true) and, for stores,
     * setPteDirty(true) + setDirty(true): one read-modify-write of the
     * flag word instead of three.
     */
    void
    markAccessed(bool write)
    {
        flags_ |= write ? (kPteReferenced | kPteDirty | kDirty)
                        : kPteReferenced;
    }

    /**
     * PTE poisoned for NUMA-hint fault tracking (PROT_NONE). The next
     * access traps into the policy instead of completing directly.
     */
    bool hintPoisoned() const { return flag(kHintPoisoned); }
    void setHintPoisoned(bool v) { setFlag(kHintPoisoned, v); }

    // --- LRU list membership ---------------------------------------------
    LruListKind list() const { return list_; }
    void setList(LruListKind kind) { list_ = kind; }
    bool onLru() const { return list_ != LruListKind::None; }

    /** Intrusive linkage used by pfra::LruLists. */
    ListHook lruHook;

    /**
     * Conservative LLC line-residency filter for this page's current
     * frame: bit i set means line i MAY be cached. Maintained by
     * CacheModel::access and consumed (and zeroed) by
     * CacheModel::invalidatePage, which skips the set scan for every
     * clear bit. Purely a host-side accelerator; no simulated state.
     */
    std::uint64_t *llcLineMask() { return &llcLines_; }

    // --- Policy scratch state --------------------------------------------
    /** AutoTiering-OPM's n-bit access-history vector. */
    std::uint8_t historyBits() const { return history_; }
    void setHistoryBits(std::uint8_t v) { history_ = v; }

    /**
     * Shift the history left by one, inserting @p accessed, as
     * AutoTiering-OPM does on each profiling pass.
     */
    void
    shiftHistory(bool accessed)
    {
        history_ = static_cast<std::uint8_t>((history_ << 1) |
                                             (accessed ? 1u : 0u));
    }

    /** Time of the most recent NUMA-hint fault (AutoTiering recency). */
    SimTime lastHintFault() const { return lastHintFault_; }
    void setLastHintFault(SimTime t) { lastHintFault_ = t; }

    /** Hint fault seen since the last profiling pass (OPM history). */
    bool hintFaultedSinceScan() const { return flag(kHintSinceScan); }
    void setHintFaultedSinceScan(bool v) { setFlag(kHintSinceScan, v); }

    /** Time of the last memory-visible access (AMP-LRU selection). */
    SimTime lastAccess() const { return lastAccess_; }
    void setLastAccess(SimTime t) { lastAccess_ = t; }

    /** Epoch of the most recent promotion (for re-access accounting). */
    std::uint64_t promotedEpoch() const { return promotedEpoch_; }
    void setPromotedEpoch(std::uint64_t e) { promotedEpoch_ = e; }

    /** Total memory-visible accesses (stats and AMP-LFU selection). */
    std::uint64_t accessCount() const { return accessCount_; }
    void bumpAccessCount() { ++accessCount_; }
    void setAccessCount(std::uint64_t c) { accessCount_ = c; }
    void resetAccessCount() { accessCount_ = 0; }

  private:
    // One bit per boolean page/PTE state, kernel page->flags style.
    static constexpr std::uint16_t kAnon          = 1u << 0;
    static constexpr std::uint16_t kReferenced    = 1u << 1;
    static constexpr std::uint16_t kActive        = 1u << 2;
    static constexpr std::uint16_t kPromote       = 1u << 3;
    static constexpr std::uint16_t kDirty         = 1u << 4;
    static constexpr std::uint16_t kUnevictable   = 1u << 5;
    static constexpr std::uint16_t kLocked        = 1u << 6;
    static constexpr std::uint16_t kPteReferenced = 1u << 7;
    static constexpr std::uint16_t kPteDirty      = 1u << 8;
    static constexpr std::uint16_t kHintPoisoned  = 1u << 9;
    static constexpr std::uint16_t kHintSinceScan = 1u << 10;

    bool flag(std::uint16_t bit) const { return (flags_ & bit) != 0; }

    void
    setFlag(std::uint16_t bit, bool v)
    {
        if (v)
            flags_ |= bit;
        else
            flags_ &= static_cast<std::uint16_t>(~bit);
    }

    // Hot per-access fields first (placement, flags, stamps), policy
    // scratch after, identity last.
    AddressSpace *space_;
    PageNum vpn_;
    Paddr paddr_ = 0;
    std::uint64_t llcLines_ = 0;
    SimTime lastAccess_ = 0;
    std::uint64_t accessCount_ = 0;
    std::uint64_t promotedEpoch_ = 0;
    SimTime lastHintFault_ = 0;
    NodeId node_ = kInvalidNode;
    MemCgroupId memcg_ = kRootMemcg;
    std::uint16_t flags_;
    LruListKind list_ = LruListKind::None;
    std::uint8_t history_ = 0;
};

}  // namespace mclock

#endif  // MCLOCK_VM_PAGE_HH_
