#include "vm/swap.hh"

#include "base/logging.hh"

namespace mclock {

void
SwapDevice::pageOut(Page *page)
{
    ++pageOuts_;
    if (!page->isAnon()) {
        ++writebacks_;  // file-backed pages write back to their file
        return;
    }
    ++swapOuts_;
    MCLOCK_ASSERT(hasSpace());
    const bool fresh = slots_.insert(page).second;
    // A page swapped out twice without an intervening page-in would
    // leak its first slot's accounting (double-release on the other
    // side); trap the corruption at the point it happens.
    MCLOCK_ASSERT(fresh);
    (void)fresh;
}

void
SwapDevice::pageIn(Page *page)
{
    ++pageIns_;
    if (!page->isAnon())
        return;
    // erase() returns how many slots were actually freed (0 or 1); a
    // page-in of a page that held no slot must not count as one, or
    // the conservation identity below drifts.
    slotFrees_ += slots_.erase(page);
}

void
SwapDevice::releaseSlot(Page *page)
{
    if (!page->isAnon())
        return;
    // Counting erased slots (not calls) makes double-release visible:
    // usedSlots() == swapOuts() - slotFrees() - slotReleases() holds
    // only if every slot is freed exactly once.
    releases_ += slots_.erase(page);
}

}  // namespace mclock
