#include "vm/swap.hh"

#include "base/logging.hh"

namespace mclock {

void
SwapDevice::pageOut(Page *page)
{
    ++pageOuts_;
    if (!page->isAnon()) {
        ++writebacks_;  // file-backed pages write back to their file
        return;
    }
    ++swapOuts_;
    MCLOCK_ASSERT(hasSpace());
    slots_.insert(page);
}

void
SwapDevice::pageIn(Page *page)
{
    ++pageIns_;
    if (!page->isAnon())
        return;
    slots_.erase(page);
}

void
SwapDevice::releaseSlot(Page *page)
{
    if (!page->isAnon())
        return;
    slots_.erase(page);
}

}  // namespace mclock
