#include "vm/swap.hh"

#include "base/logging.hh"

namespace mclock {

void
SwapDevice::pageOut(Page *page)
{
    ++pageOuts_;
    if (!page->isAnon())
        return;  // file-backed pages write back to their file
    MCLOCK_ASSERT(hasSpace());
    slots_.insert(page);
}

void
SwapDevice::pageIn(Page *page)
{
    ++pageIns_;
    if (!page->isAnon())
        return;
    slots_.erase(page);
}

}  // namespace mclock
