#include "pfra/watermarks.hh"

#include <algorithm>
#include <cmath>

#include "base/types.hh"

namespace mclock {
namespace pfra {

Watermarks
Watermarks::compute(std::size_t totalFrames)
{
    // Kernel: min_free_kbytes = 4 * sqrt(lowmem_kbytes), clamped to
    // [128, 65536] kB. Work in frames directly with equivalent shape.
    const double total = static_cast<double>(totalFrames);
    auto min = static_cast<std::size_t>(4.0 * std::sqrt(total));
    min = std::max<std::size_t>(min, 32);
    // Never reserve more than ~1/8th of the node.
    min = std::min(min, totalFrames / 8 + 1);
    Watermarks wm;
    wm.min = min;
    wm.low = min * 5 / 4;
    wm.high = min * 3 / 2;
    return wm;
}

unsigned
inactiveRatio(std::size_t totalFrames)
{
    const double gb = static_cast<double>(totalFrames) *
                      static_cast<double>(kPageSize) /
                      (1024.0 * 1024.0 * 1024.0);
    const double ratio = std::sqrt(10.0 * gb);
    return ratio < 1.0 ? 1u : static_cast<unsigned>(ratio + 0.5);
}

}  // namespace pfra
}  // namespace mclock
