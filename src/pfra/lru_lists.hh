/**
 * @file
 * Per-node LRU lists, mirroring Linux's per-pglist_data lruvec.
 *
 * Each NUMA node owns five original lists (anonymous/file x
 * inactive/active, plus unevictable) and the two lists MULTI-CLOCK adds
 * (anonymous promote and file promote). Pages enter at the head; CLOCK
 * scanning consumes from the tail.
 */

#ifndef MCLOCK_PFRA_LRU_LISTS_HH_
#define MCLOCK_PFRA_LRU_LISTS_HH_

#include <array>
#include <cstddef>

#include "base/intrusive_list.hh"
#include "stats/tracepoint.hh"
#include "stats/vmstat.hh"
#include "vm/page.hh"

namespace mclock {

#ifdef MCLOCK_DEBUG_VM
namespace debug {
class VmChecker;
}  // namespace debug
#endif

namespace pfra {

/** The set of LRU lists belonging to one NUMA node. */
class NodeLists
{
  public:
    using PageList = IntrusiveList<Page, &Page::lruHook>;

    NodeLists() = default;

    PageList &
    list(LruListKind kind)
    {
        return lists_[static_cast<std::size_t>(kind)];
    }

    const PageList &
    list(LruListKind kind) const
    {
        return lists_[static_cast<std::size_t>(kind)];
    }

    /** Add a page (currently on no list) to the head of @p kind. */
    void add(Page *page, LruListKind kind, bool toFront = true);

    /** Remove a page from whatever list it is on. */
    void remove(Page *page);

    /** Move a page from its current list to @p kind. */
    void moveTo(Page *page, LruListKind kind, bool toFront = true);

    /** Rotate a page to the head of its current list (second chance). */
    void rotateToFront(Page *page);

    std::size_t size(LruListKind kind) const { return list(kind).size(); }

    std::size_t
    inactiveSize(bool anon) const
    {
        return size(anon ? LruListKind::InactiveAnon
                         : LruListKind::InactiveFile);
    }

    std::size_t
    activeSize(bool anon) const
    {
        return size(anon ? LruListKind::ActiveAnon
                         : LruListKind::ActiveFile);
    }

    std::size_t
    promoteSize(bool anon) const
    {
        return size(anon ? LruListKind::PromoteAnon
                         : LruListKind::PromoteFile);
    }

    /** Total pages across all lists on this node. */
    std::size_t totalPages() const;

    /**
     * Attach vmstat/tracepoint sinks (both optional). List motion then
     * feeds pgactivate / pgdeactivate / pgrotated / pgpromote_selected
     * and ListRotation tracepoints, attributed to @p node.
     */
    void
    attachStats(stats::VmStat *vmstat, stats::TraceBuffer *trace,
                NodeId node)
    {
        vmstat_ = vmstat;
        trace_ = trace;
        node_ = node;
    }

    /** Bump a vmstat counter for this node (no-op with no sink). */
    void
    statAdd(stats::VmItem item, std::uint64_t delta = 1)
    {
        if (vmstat_ && delta)
            vmstat_->add(item, node_, delta);
    }

#ifdef MCLOCK_DEBUG_VM
    /**
     * Attach the DEBUG_VM checker; every list mutation is then
     * validated against the Fig. 4 state machine. Debug builds only —
     * the member and the hook calls compile out entirely otherwise.
     */
    void attachChecker(debug::VmChecker *checker) { checker_ = checker; }

    debug::VmChecker *checker() const { return checker_; }
#endif

    static LruListKind
    inactiveKind(bool anon)
    {
        return anon ? LruListKind::InactiveAnon : LruListKind::InactiveFile;
    }

    static LruListKind
    activeKind(bool anon)
    {
        return anon ? LruListKind::ActiveAnon : LruListKind::ActiveFile;
    }

    static LruListKind
    promoteKind(bool anon)
    {
        return anon ? LruListKind::PromoteAnon : LruListKind::PromoteFile;
    }

  private:
    // Index 0 (LruListKind::None) stays empty; keeping it simplifies
    // indexing by the enum value.
    std::array<PageList, kNumLruLists> lists_;
    stats::VmStat *vmstat_ = nullptr;
    stats::TraceBuffer *trace_ = nullptr;
    NodeId node_ = kInvalidNode;
#ifdef MCLOCK_DEBUG_VM
    debug::VmChecker *checker_ = nullptr;
#endif
};

}  // namespace pfra
}  // namespace mclock

#endif  // MCLOCK_PFRA_LRU_LISTS_HH_
