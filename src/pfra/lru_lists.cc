#include "pfra/lru_lists.hh"

#include "base/logging.hh"

namespace mclock {
namespace pfra {

void
NodeLists::add(Page *page, LruListKind kind, bool toFront)
{
    MCLOCK_ASSERT(kind != LruListKind::None);
    MCLOCK_ASSERT(page->list() == LruListKind::None);
    if (toFront)
        list(kind).pushFront(page);
    else
        list(kind).pushBack(page);
    page->setList(kind);
}

void
NodeLists::remove(Page *page)
{
    MCLOCK_ASSERT(page->list() != LruListKind::None);
    list(page->list()).erase(page);
    page->setList(LruListKind::None);
}

void
NodeLists::moveTo(Page *page, LruListKind kind, bool toFront)
{
    if (vmstat_) {
        const LruListKind from = page->list();
        if (isInactiveList(from) && isActiveList(kind))
            vmstat_->add(stats::VmItem::Pgactivate, node_);
        else if (isActiveList(from) && isInactiveList(kind))
            vmstat_->add(stats::VmItem::Pgdeactivate, node_);
        else if (isPromoteList(kind) && !isPromoteList(from))
            vmstat_->add(stats::VmItem::PgpromoteSelected, node_);
    }
    remove(page);
    add(page, kind, toFront);
}

void
NodeLists::rotateToFront(Page *page)
{
    const LruListKind kind = page->list();
    MCLOCK_ASSERT(kind != LruListKind::None);
    list(kind).erase(page);
    list(kind).pushFront(page);
    if (vmstat_)
        vmstat_->add(stats::VmItem::Pgrotated, node_);
    if (trace_) {
        trace_->record(stats::TraceEventType::ListRotation, node_,
                       page->vpn(), static_cast<std::uint64_t>(kind));
    }
}

std::size_t
NodeLists::totalPages() const
{
    std::size_t total = 0;
    for (const auto &l : lists_)
        total += l.size();
    return total;
}

}  // namespace pfra
}  // namespace mclock
