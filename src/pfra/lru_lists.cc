#include "pfra/lru_lists.hh"

#include "base/logging.hh"

#ifdef MCLOCK_DEBUG_VM
#include "debug/vm_checker.hh"
#define MCLOCK_VM_HOOK(call) \
    do { \
        if (checker_) \
            checker_->call; \
    } while (0)
#else
#define MCLOCK_VM_HOOK(call) \
    do { \
    } while (0)
#endif

namespace mclock {
namespace pfra {

void
NodeLists::add(Page *page, LruListKind kind, bool toFront)
{
    MCLOCK_ASSERT(kind != LruListKind::None);
    MCLOCK_ASSERT(page->list() == LruListKind::None);
    MCLOCK_VM_HOOK(onListAdd(page, kind, node_));
    if (toFront)
        list(kind).pushFront(page);
    else
        list(kind).pushBack(page);
    page->setList(kind);
}

void
NodeLists::remove(Page *page)
{
    MCLOCK_ASSERT(page->list() != LruListKind::None);
    MCLOCK_VM_HOOK(onListRemove(page, node_));
    list(page->list()).erase(page);
    page->setList(LruListKind::None);
}

void
NodeLists::moveTo(Page *page, LruListKind kind, bool toFront)
{
    const LruListKind from = page->list();
    MCLOCK_ASSERT(from != LruListKind::None);
    MCLOCK_ASSERT(kind != LruListKind::None);
    if (vmstat_) {
        if (isInactiveList(from) && isActiveList(kind))
            vmstat_->add(stats::VmItem::Pgactivate, node_);
        else if (isActiveList(from) && isInactiveList(kind))
            vmstat_->add(stats::VmItem::Pgdeactivate, node_);
        else if (isPromoteList(kind) && !isPromoteList(from))
            vmstat_->add(stats::VmItem::PgpromoteSelected, node_);
    }
    // One in-place transition, not a remove+add pair: the page never
    // goes through the off-list state, and the DEBUG_VM checker
    // validates it against the move-edge table (an isolation round
    // trip would wrongly legalise e.g. direct promote-list entry).
    MCLOCK_VM_HOOK(onListMove(page, kind, node_));
    list(from).erase(page);
    if (toFront)
        list(kind).pushFront(page);
    else
        list(kind).pushBack(page);
    page->setList(kind);
}

void
NodeLists::rotateToFront(Page *page)
{
    const LruListKind kind = page->list();
    MCLOCK_ASSERT(kind != LruListKind::None);
    MCLOCK_VM_HOOK(onListRotate(page, node_));
    list(kind).erase(page);
    list(kind).pushFront(page);
    if (vmstat_)
        vmstat_->add(stats::VmItem::Pgrotated, node_);
    if (trace_) {
        trace_->record(stats::TraceEventType::ListRotation, node_,
                       page->vpn(), static_cast<std::uint64_t>(kind));
    }
}

std::size_t
NodeLists::totalPages() const
{
    std::size_t total = 0;
    for (const auto &l : lists_)
        total += l.size();
    return total;
}

}  // namespace pfra
}  // namespace mclock
