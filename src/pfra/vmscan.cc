#include "pfra/vmscan.hh"

namespace mclock {
namespace pfra {

bool
testAndClearReferenced(Page *page)
{
    bool referenced = page->testAndClearPteReferenced();
    if (page->referenced()) {
        referenced = true;
        page->setReferenced(false);
    }
    return referenced;
}

ScanStats
shrinkActiveList(NodeLists &lists, bool anon, std::size_t nrScan)
{
    ScanStats stats;
    auto &active = lists.list(NodeLists::activeKind(anon));
    const std::size_t budget = std::min(nrScan, active.size());
    for (std::size_t i = 0; i < budget; ++i) {
        Page *page = active.back();
        if (!page)
            break;
        ++stats.scanned;
        if (testAndClearReferenced(page)) {
            lists.rotateToFront(page);
            ++stats.rotated;
        } else {
            page->setActive(false);
            page->setReferenced(false);
            lists.moveTo(page, NodeLists::inactiveKind(anon));
            ++stats.deactivated;
        }
    }
    lists.statAdd(::mclock::stats::VmItem::PgscanActive, stats.scanned);
    return stats;
}

ScanStats
balanceActiveInactive(NodeLists &lists, bool anon, std::size_t nrScan,
                      unsigned ratio)
{
    ScanStats stats;
    std::size_t budget = nrScan;
    while (budget > 0 &&
           lists.activeSize(anon) > lists.inactiveSize(anon) * ratio) {
        const std::size_t chunk = std::min<std::size_t>(budget, 32);
        ScanStats pass = shrinkActiveList(lists, anon, chunk);
        stats.merge(pass);
        if (pass.scanned == 0)
            break;
        budget -= pass.scanned;
    }
    return stats;
}

ScanStats
collectInactiveCandidates(NodeLists &lists, bool anon, std::size_t nrScan,
                          std::vector<Page *> &out,
                          const PageFilter &spare)
{
    ScanStats stats;
    auto &inactive = lists.list(NodeLists::inactiveKind(anon));
    const std::size_t budget = std::min(nrScan, inactive.size());
    for (std::size_t i = 0; i < budget; ++i) {
        Page *page = inactive.back();
        if (!page)
            break;
        ++stats.scanned;
        if (page->unevictable() || page->locked() ||
            (spare && spare(*page))) {
            lists.rotateToFront(page);
            ++stats.rotated;
            continue;
        }
        if (page->testAndClearPteReferenced()) {
            // CLOCK second chance: first re-reference marks the page,
            // a second one (seen via PG_referenced) activates it.
            if (page->referenced()) {
                page->setReferenced(false);
                page->setActive(true);
                lists.moveTo(page, NodeLists::activeKind(anon));
                ++stats.activated;
            } else {
                page->setReferenced(true);
                lists.rotateToFront(page);
                ++stats.rotated;
            }
            continue;
        }
        // Not referenced since the last scan: reclaim candidate.
        page->setReferenced(false);
        lists.remove(page);
        out.push_back(page);
    }
    lists.statAdd(::mclock::stats::VmItem::PgscanInactive, stats.scanned);
    return stats;
}

}  // namespace pfra
}  // namespace mclock
