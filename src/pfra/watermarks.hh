/**
 * @file
 * Per-node free-memory watermarks, following the kernel's scheme.
 *
 * A tier is marked under memory pressure proactively when its free frame
 * count drops below these levels; the levels are derived from the amount
 * of memory on the node (kernel: min_free_kbytes ~ 4*sqrt(lowmem),
 * low = min * 5/4, high = min * 3/2).
 */

#ifndef MCLOCK_PFRA_WATERMARKS_HH_
#define MCLOCK_PFRA_WATERMARKS_HH_

#include <cstddef>

namespace mclock {
namespace pfra {

/** Free-page watermarks for one node. */
struct Watermarks
{
    std::size_t min = 0;   ///< allocator reserve; never dip below
    std::size_t low = 0;   ///< kswapd wakes below this
    std::size_t high = 0;  ///< kswapd reclaims until free exceeds this

    /** Derive watermarks from a node's total frame count. */
    static Watermarks compute(std::size_t totalFrames);
};

/**
 * The PFRA active:inactive balance threshold: if active exceeds
 * inactive * ratio... in the kernel the *inactive* list is kept at least
 * active/ratio with ratio = sqrt(10 * managed_gigabytes), clamped to >= 1.
 *
 * @param totalFrames frames managed by the node
 * @return the inactive ratio (>= 1)
 */
unsigned inactiveRatio(std::size_t totalFrames);

}  // namespace pfra
}  // namespace mclock

#endif  // MCLOCK_PFRA_WATERMARKS_HH_
