/**
 * @file
 * Shared CLOCK-scanning primitives (the simulated mm/vmscan.c).
 *
 * Policies compose these building blocks: balancing the active/inactive
 * ratio, giving referenced pages a second chance, and collecting
 * demotion/eviction candidates from the tail of the inactive list.
 */

#ifndef MCLOCK_PFRA_VMSCAN_HH_
#define MCLOCK_PFRA_VMSCAN_HH_

#include <cstdint>
#include <functional>
#include <vector>

#include "pfra/lru_lists.hh"
#include "vm/page.hh"

namespace mclock {
namespace pfra {

/**
 * Optional page filter for candidate collection: return true to spare
 * the page (it rotates to the list head instead of being isolated).
 * Used for memcg soft "low" protection; an empty filter spares nothing.
 */
using PageFilter = std::function<bool(const Page &)>;

/** Accounting for one scanning pass; drives simulated scan cost. */
struct ScanStats
{
    std::uint64_t scanned = 0;      ///< pages examined (cost accrues)
    std::uint64_t rotated = 0;      ///< referenced pages given 2nd chance
    std::uint64_t deactivated = 0;  ///< active -> inactive moves
    std::uint64_t activated = 0;    ///< inactive -> active moves

    void
    merge(const ScanStats &o)
    {
        scanned += o.scanned;
        rotated += o.rotated;
        deactivated += o.deactivated;
        activated += o.activated;
    }
};

/**
 * Consume a page's referenced evidence: the PTE accessed bit (cleared by
 * the rmap walk) or the software PG_referenced flag (also cleared).
 *
 * @return true if the page was referenced since the last scan
 */
bool testAndClearReferenced(Page *page);

/**
 * shrink_active_list: scan up to @p nrScan pages from the tail of the
 * active list. Referenced pages rotate to the head (retaining PG_active);
 * unreferenced pages are deactivated to the head of the inactive list
 * with flags cleared.
 */
ScanStats shrinkActiveList(NodeLists &lists, bool anon,
                           std::size_t nrScan);

/**
 * Balance the lists: deactivate from the active list only while
 * active > inactive * ratio, scanning at most @p nrScan pages.
 */
ScanStats balanceActiveInactive(NodeLists &lists, bool anon,
                                std::size_t nrScan, unsigned ratio);

/**
 * shrink_inactive_list candidate collection: scan up to @p nrScan pages
 * from the tail of the inactive list. Pages referenced since the last
 * scan advance per CLOCK (unreferenced->referenced stays inactive,
 * referenced->activated). Unreferenced, unlocked pages are isolated
 * (taken off the LRU) and returned for the caller to demote or evict.
 * Pages @p spare approves of rotate untouched (memcg low protection);
 * callers re-run without the filter when a protected-only list would
 * otherwise stall reclaim entirely.
 */
ScanStats collectInactiveCandidates(NodeLists &lists, bool anon,
                                    std::size_t nrScan,
                                    std::vector<Page *> &out,
                                    const PageFilter &spare = {});

}  // namespace pfra
}  // namespace mclock

#endif  // MCLOCK_PFRA_VMSCAN_HH_
