#include "harness/benchmark.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>

#include "base/logging.hh"
#include "harness/manifest.hh"

namespace mclock {
namespace harness {

namespace {

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

double
rate(std::uint64_t count, double secs)
{
    return secs > 0.0 ? static_cast<double>(count) / secs : 0.0;
}

}  // namespace

double
BenchScenario::bestSeconds() const
{
    return wallSeconds.empty()
        ? 0.0
        : *std::min_element(wallSeconds.begin(), wallSeconds.end());
}

double
BenchScenario::meanSeconds() const
{
    if (wallSeconds.empty())
        return 0.0;
    const double sum = std::accumulate(wallSeconds.begin(),
                                       wallSeconds.end(), 0.0);
    return sum / static_cast<double>(wallSeconds.size());
}

double
BenchReport::totalBestSeconds() const
{
    double sum = 0.0;
    for (const auto &s : scenarios)
        sum += s.bestSeconds();
    return sum;
}

std::uint64_t
BenchReport::totalAppOps() const
{
    std::uint64_t sum = 0;
    for (const auto &s : scenarios)
        sum += s.appOps;
    return sum;
}

std::uint64_t
BenchReport::totalSimAccesses() const
{
    std::uint64_t sum = 0;
    for (const auto &s : scenarios)
        sum += s.simAccesses;
    return sum;
}

BenchReport
runBenchmark(const std::vector<const Scenario *> &scenarios,
             const BenchOptions &opts)
{
    BenchReport report;
    report.repeat = std::max(1u, opts.repeat);
    report.warmup = opts.warmup;

    // Timing windows must not be contended by other scenarios' units:
    // anything but one harness worker is downgraded, loudly. Sharded
    // scenarios still thread internally (context.shards) — one
    // scenario at a time, that parallelism *is* the measurement.
    unsigned jobs = opts.jobs;
    if (jobs != 1) {
        std::fprintf(stderr,
                     "bench: --jobs %u downgraded to 1 (benchmark "
                     "repeats are timed one scenario at a time)\n",
                     jobs);
        jobs = 1;
    }
    report.jobs = jobs;

    RunnerOptions ro;
    ro.jobs = jobs;
    ro.writeArtifacts = false;
    ro.writeManifest = false;
    ro.quiet = true;
    ro.context = opts.context;

    // One scenario at a time: with the shared pool a slow scenario's
    // units would overlap the next scenario's timing window.
    for (const Scenario *sc : scenarios) {
        BenchScenario bench;
        bench.name = sc->name;
        const std::vector<const Scenario *> one{sc};
        for (unsigned i = 0; i < opts.warmup; ++i)
            runScenarios(one, ro);
        for (unsigned i = 0; i < report.repeat; ++i) {
            const auto start = std::chrono::steady_clock::now();
            RunReport rr = runScenarios(one, ro);
            const auto stop = std::chrono::steady_clock::now();
            MCLOCK_ASSERT(rr.results.size() == 1);
            ScenarioResult &result = rr.results.front();
            bench.wallSeconds.push_back(seconds(start, stop));
            bench.units = result.units;
            bench.appOps = result.appOps;
            bench.simAccesses = result.simAccesses;
            bench.summary = std::move(result.output.summary);
            if (!result.output.violations.empty())
                bench.clean = false;
        }
        report.scenarios.push_back(std::move(bench));
    }
    return report;
}

Json
loadBenchBaseline(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        return Json();
    std::stringstream ss;
    ss << f.rdbuf();
    std::string err;
    Json doc = Json::parse(ss.str(), &err);
    if (!err.empty() || !doc.isObject())
        return Json();
    return doc;
}

Json
benchReportToJson(const BenchReport &report, const BenchOptions &opts)
{
    Json scenarios{Json::Object{}};
    for (const auto &s : report.scenarios) {
        const double best = s.bestSeconds();
        Json entry{Json::Object{}};
        entry.set("units", static_cast<double>(s.units));
        entry.set("app_ops", static_cast<double>(s.appOps));
        entry.set("sim_accesses", static_cast<double>(s.simAccesses));
        Json walls{Json::Array{}};
        for (double w : s.wallSeconds)
            walls.push(Json(w));
        entry.set("wall_seconds", std::move(walls));
        entry.set("best_seconds", best);
        entry.set("mean_seconds", s.meanSeconds());
        entry.set("app_ops_per_sec", rate(s.appOps, best));
        entry.set("sim_accesses_per_sec", rate(s.simAccesses, best));
        scenarios.set(s.name, std::move(entry));
    }

    const double totalBest = report.totalBestSeconds();
    Json suite{Json::Object{}};
    suite.set("scenarios", static_cast<double>(report.scenarios.size()));
    suite.set("total_app_ops", static_cast<double>(report.totalAppOps()));
    suite.set("total_sim_accesses",
              static_cast<double>(report.totalSimAccesses()));
    suite.set("total_best_seconds", totalBest);
    suite.set("app_ops_per_sec", rate(report.totalAppOps(), totalBest));
    suite.set("sim_accesses_per_sec",
              rate(report.totalSimAccesses(), totalBest));

    Json doc{Json::Object{}};
    doc.set("bench_id", opts.benchId);
    doc.set("schema", "mclock-bench-v1");
    std::string sha = "unknown";
#ifdef MCLOCK_SOURCE_DIR
    sha = readGitSha(MCLOCK_SOURCE_DIR);
#endif
    doc.set("git_sha", sha);
    doc.set("golden_profile", Json(opts.context.golden));
    doc.set("seed", static_cast<double>(opts.context.seed));
    doc.set("jobs", static_cast<double>(report.jobs));
    doc.set("shards", static_cast<double>(opts.context.shards));
    doc.set("repeat", static_cast<double>(report.repeat));
    doc.set("warmup", static_cast<double>(report.warmup));
    doc.set("scenarios", std::move(scenarios));
    doc.set("suite", std::move(suite));

    if (!opts.baselinePath.empty()) {
        Json baseline = loadBenchBaseline(opts.baselinePath);
        if (baseline.isObject() &&
            baseline["scenarios"].isObject()) {
            // Speedup over the intersection, so a partial --filter run
            // still reports an honest like-for-like ratio.
            double baseSum = 0.0, measuredSum = 0.0;
            for (const auto &s : report.scenarios) {
                const Json &b = baseline["scenarios"][s.name];
                // Standalone baselines map name -> seconds; full
                // reports (a previous BENCH_<n>.json used directly)
                // map name -> {"best_seconds": ...}.
                double baseBest = 0.0;
                if (b.isNumber()) {
                    baseBest = b.asNumber();
                } else if (b.isObject() &&
                           b["best_seconds"].isNumber()) {
                    baseBest = b["best_seconds"].asNumber();
                }
                if (baseBest <= 0.0)
                    continue;
                baseSum += baseBest;
                measuredSum += s.bestSeconds();
            }
            doc.set("baseline", std::move(baseline));
            if (baseSum > 0.0 && measuredSum > 0.0) {
                doc.set("speedup_vs_baseline", baseSum / measuredSum);
            } else {
                // Empty intersection (renamed/filtered scenarios) or
                // degenerate timings: an honest ratio does not exist.
                // Emit an explicit null — never NaN/inf, and never a
                // silently missing key a dashboard would misread as
                // "no baseline configured".
                doc.set("speedup_vs_baseline", Json());
                MCLOCK_WARN(
                    "bench baseline %s shares no timed scenario with "
                    "this run; speedup_vs_baseline = null",
                    opts.baselinePath.c_str());
            }
        }
    }
    return doc;
}

}  // namespace harness
}  // namespace mclock
