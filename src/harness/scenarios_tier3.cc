/**
 * @file
 * Three-tier (DRAM/CXL/PM) scenarios. The paper's testbed is two-tier;
 * these scenarios exercise the rank-ordered topology beyond it: YCSB-A,
 * YCSB-B, and GAPBS PageRank on the paperMachineThreeTier() timing
 * table, comparing every factory policy that runs on a tiered machine
 * (all but memory-mode, which needs a far-memory-only config).
 *
 * Each unit reports per-tier access counts and average device latency
 * ("tier<r>.accesses" / "tier<r>.avg_ns"); under static tiering the
 * averages must order strictly DRAM < CXL < PM, which harness_test
 * pins.
 */

#include <string>

#include "base/csv.hh"
#include "harness/scenario_common.hh"
#include "workloads/gapbs/driver.hh"
#include "workloads/ycsb.hh"

namespace mclock {
namespace harness {

namespace {

/** Every factory policy that runs on a multi-tier machine. */
const std::vector<std::string> &
tier3Policies()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &name : policies::policyNames()) {
            if (name != "memory-mode")
                out.push_back(name);
        }
        return out;
    }();
    return names;
}

/** Per-tier access/latency totals, keyed "tier<r>.accesses|avg_ns". */
void
addTierMetrics(sim::Simulator &sim, RunRecord &rec)
{
    char key[32];
    for (TierRank rank : sim.memory().tierOrder()) {
        const auto acc = sim.metrics().totalTierAccesses(rank);
        const auto lat = sim.metrics().totalTierLatency(rank);
        std::snprintf(key, sizeof(key), "tier%d.accesses", rank);
        rec.metrics[key] = static_cast<double>(acc);
        std::snprintf(key, sizeof(key), "tier%d.avg_ns", rank);
        rec.metrics[key] =
            acc ? static_cast<double>(lat) / static_cast<double>(acc)
                : 0.0;
    }
}

// --- YCSB on three tiers ------------------------------------------------

struct Tier3YcsbProfile
{
    sim::MachineConfig machine;
    workloads::YcsbConfig ycsb;
    policies::PolicyOptions opts;
};

Tier3YcsbProfile
tier3YcsbProfile(const RunContext &ctx)
{
    const std::uint64_t ops =
        ctx.param("ops", ctx.golden ? 60000 : 1200000);
    Tier3YcsbProfile p;
    p.machine =
        ctx.golden ? goldenTier3YcsbMachine() : tier3YcsbMachine();
    p.machine.seed = ctx.seed;
    applyStatsContext(p.machine, ctx);
    p.ycsb = ctx.golden ? goldenYcsbConfig(ops) : ycsbBenchConfig(ops);
    p.ycsb.seed = ctx.derivedSeed(1, p.ycsb.seed);
    p.ycsb.batchAccesses = batchedAccessPath(ctx);
    p.opts = benchPolicyOptions();
    return p;
}

RunRecord
runTier3Ycsb(const std::string &policy, const Tier3YcsbProfile &p,
             workloads::YcsbWorkload workload)
{
    RunRecord rec;
    sim::Simulator sim(p.machine);
    sim.setPolicy(policies::makePolicy(policy, p.opts));
    workloads::YcsbDriver driver(sim, p.ycsb);
    driver.load();
    const auto r = driver.run(workload);
    rec.metrics["kops"] = r.throughputOpsPerSec() / 1e3;
    rec.metrics["promotions"] =
        static_cast<double>(sim.metrics().totalPromotions());
    rec.metrics["demotions"] =
        static_cast<double>(sim.metrics().totalDemotions());
    rec.metrics["swap_outs"] =
        static_cast<double>(sim.stats().get("swap_outs"));
    addTierMetrics(sim, rec);
    checkRunInvariants(sim, rec);
    return rec;
}

/** Rank labels for the three-tier table (ranks of the tier3 machines). */
constexpr const char *kTierLabels[3] = {"dram", "cxl", "pm"};

/** Shared reduce body: policy table with per-tier access breakdown. */
ScenarioOutput
tier3Reduce(const Scenario &sc, const RunContext &ctx,
            const std::vector<RunRecord> &records, const char *metric,
            const char *metricLabel, const char *csvName)
{
    ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
    out.text.clear();
    appendf(out.text, "=== %s ===\n", sc.title.c_str());
    appendf(out.text, "%-12s %10s", "policy", metricLabel);
    for (int t = 0; t < 3; ++t)
        appendf(out.text, " %11s.acc %9s.ns", kTierLabels[t],
                kTierLabels[t]);
    appendf(out.text, "\n");

    CsvWriter csv;
    std::vector<std::string> header{"policy", metric};
    for (int t = 0; t < 3; ++t) {
        header.push_back(std::string(kTierLabels[t]) + "_accesses");
        header.push_back(std::string(kTierLabels[t]) + "_avg_ns");
    }
    csv.writeHeader(header);

    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &m = records[i].metrics;
        appendf(out.text, "%-12s %10.1f", sc.policies[i].c_str(),
                m.at(metric));
        std::vector<std::string> row{sc.policies[i],
                                     std::to_string(m.at(metric))};
        char key[32];
        for (int t = 0; t < 3; ++t) {
            std::snprintf(key, sizeof(key), "tier%d.accesses", t);
            const double acc = m.at(key);
            std::snprintf(key, sizeof(key), "tier%d.avg_ns", t);
            const double ns = m.at(key);
            appendf(out.text, " %15.0f %13.1f", acc, ns);
            row.push_back(std::to_string(acc));
            row.push_back(std::to_string(ns));
        }
        appendf(out.text, "\n");
        csv.writeRow(row);
    }
    appendf(out.text,
            "\nExpected: device latency orders DRAM < CXL < PM; "
            "dynamic policies shift accesses up-rank.\nwrote %s\n",
            csvName);
    out.artifacts.push_back({csvName, csv.str()});
    return out;
}

Scenario
tier3YcsbScenario(const char *name, const char *title,
                  workloads::YcsbWorkload workload, const char *csvName)
{
    Scenario sc;
    sc.name = name;
    sc.title = title;
    sc.workload = "ycsb";
    sc.policies = tier3Policies();
    sc.expand = [sc, workload](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const auto &policy : sc.policies) {
            units.push_back(
                {policy, [policy, workload, ctx](const RunContext &) {
                    return runTier3Ycsb(policy, tier3YcsbProfile(ctx),
                                        workload);
                }});
        }
        return units;
    };
    const std::string csvStr = csvName;
    sc.reduce = [sc, csvStr](const RunContext &ctx,
                             const std::vector<RunRecord> &records) {
        return tier3Reduce(sc, ctx, records, "kops", "kops/s",
                           csvStr.c_str());
    };
    return sc;
}

// --- GAPBS PageRank on three tiers --------------------------------------

struct Tier3GapbsProfile
{
    sim::MachineConfig machine;
    workloads::gapbs::GapbsConfig gapbs;
    policies::PolicyOptions opts;
};

Tier3GapbsProfile
tier3GapbsProfile(const RunContext &ctx)
{
    Tier3GapbsProfile p;
    p.machine =
        ctx.golden ? goldenTier3GapbsMachine() : tier3GapbsMachine();
    p.machine.seed = ctx.seed;
    applyStatsContext(p.machine, ctx);
    p.gapbs = ctx.golden ? goldenGapbsConfig() : gapbsBenchConfig();
    p.gapbs.seed = ctx.derivedSeed(2, p.gapbs.seed);
    p.opts = benchPolicyOptions();
    return p;
}

Scenario
tier3PagerankScenario()
{
    Scenario sc;
    sc.name = "tier3_pagerank";
    sc.title = "Three-tier GAPBS PageRank (DRAM/CXL/PM)";
    sc.workload = "gapbs";
    sc.policies = tier3Policies();
    sc.expand = [sc](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const auto &policy : sc.policies) {
            units.push_back({policy, [policy, ctx](const RunContext &) {
                const auto p = tier3GapbsProfile(ctx);
                RunRecord rec;
                sim::Simulator sim(p.machine);
                sim.setPolicy(policies::makePolicy(policy, p.opts));
                workloads::gapbs::GapbsDriver driver(sim, p.gapbs);
                const auto r =
                    driver.run(workloads::gapbs::Kernel::PR);
                rec.metrics["seconds"] = r.avgTrialSeconds();
                rec.metrics["promotions"] = static_cast<double>(
                    sim.metrics().totalPromotions());
                rec.metrics["demotions"] = static_cast<double>(
                    sim.metrics().totalDemotions());
                addTierMetrics(sim, rec);
                checkRunInvariants(sim, rec);
                return rec;
            }});
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        return tier3Reduce(sc, ctx, records, "seconds", "seconds",
                           "tier3_pagerank.csv");
    };
    return sc;
}

}  // namespace

std::vector<Scenario>
makeTier3Scenarios()
{
    return {tier3YcsbScenario(
                "tier3_ycsb_a",
                "Three-tier YCSB-A throughput (DRAM/CXL/PM)",
                workloads::YcsbWorkload::A, "tier3_ycsb_a.csv"),
            tier3YcsbScenario(
                "tier3_ycsb_b",
                "Three-tier YCSB-B throughput (DRAM/CXL/PM)",
                workloads::YcsbWorkload::B, "tier3_ycsb_b.csv"),
            tier3PagerankScenario()};
}

}  // namespace harness
}  // namespace mclock
