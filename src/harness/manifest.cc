#include "harness/manifest.hh"

#include <chrono>
#include <ctime>
#include <filesystem>
#include <fstream>

#include "base/json.hh"
#include "base/logging.hh"

namespace mclock {
namespace harness {

namespace {

std::string
readFileTrimmed(const std::filesystem::path &path)
{
    std::ifstream f(path);
    if (!f)
        return "";
    std::string line;
    std::getline(f, line);
    while (!line.empty() &&
           (line.back() == '\n' || line.back() == '\r' ||
            line.back() == ' '))
        line.pop_back();
    return line;
}

std::string
isoTimestampUtc()
{
    // mclock-lint: wall-clock-ok(manifest provenance stamp; excluded from hashes)
    const auto now = std::chrono::system_clock::now();
    const std::time_t t = std::chrono::system_clock::to_time_t(now);
    std::tm tm{};
    gmtime_r(&t, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

void
hashBytes(std::uint64_t &h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    h ^= 0xff;
    h *= 0x100000001b3ull;  // field separator
}

}  // namespace

std::string
readGitSha(const std::string &startDir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path dir = fs::absolute(startDir, ec);
    while (!dir.empty()) {
        const fs::path gitDir = dir / ".git";
        if (fs::exists(gitDir, ec)) {
            const std::string head = readFileTrimmed(gitDir / "HEAD");
            if (head.rfind("ref: ", 0) == 0) {
                const std::string ref = head.substr(5);
                const std::string sha = readFileTrimmed(gitDir / ref);
                if (!sha.empty())
                    return sha;
                // Packed refs fallback: "<sha> <ref>" lines.
                std::ifstream packed(gitDir / "packed-refs");
                std::string line;
                while (std::getline(packed, line)) {
                    if (line.size() > 41 &&
                        line.compare(41, std::string::npos, ref) == 0)
                        return line.substr(0, 40);
                }
                return "unknown";
            }
            return head.empty() ? "unknown" : head;  // detached HEAD
        }
        const fs::path parent = dir.parent_path();
        if (parent == dir)
            break;
        dir = parent;
    }
    return "unknown";
}

std::uint64_t
configHash(const Scenario &scenario, const RunContext &ctx)
{
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
    hashBytes(h, scenario.name);
    hashBytes(h, scenario.workload);
    for (const auto &p : scenario.policies)
        hashBytes(h, p);
    hashBytes(h, std::to_string(ctx.seed));
    hashBytes(h, ctx.golden ? "golden" : "full");
    for (const auto &[key, value] : ctx.params) {
        hashBytes(h, key);
        hashBytes(h, std::to_string(value));
    }
    return h;
}

void
writeManifest(const RunReport &report, const RunnerOptions &opts)
{
    char hashBuf[24];
    Json scenarios{Json::Array{}};
    for (const auto &r : report.results) {
        const Scenario *sc = findScenario(r.name);
        Json entry{Json::Object{}};
        entry.set("name", r.name);
        if (sc) {
            std::snprintf(hashBuf, sizeof(hashBuf), "%016llx",
                          static_cast<unsigned long long>(
                              configHash(*sc, opts.context)));
            entry.set("config_hash", std::string(hashBuf));
            entry.set("workload", sc->workload);
        }
        entry.set("units", static_cast<double>(r.units));
        entry.set("wall_seconds", r.wallSeconds);
        entry.set("metrics", static_cast<double>(r.output.summary.size()));
        entry.set("violations",
                  static_cast<double>(r.output.violations.size()));
        Json artifacts{Json::Array{}};
        for (const auto &a : r.output.artifacts)
            artifacts.push(Json(a.filename));
        for (const auto &a : r.output.statsArtifacts)
            artifacts.push(Json(r.name + "_" + a.filename));
        entry.set("artifacts", std::move(artifacts));
        // Scenario-total vmstat counters (the plain, unit-prefix-free
        // keys merged by mergeRecords); per-unit and per-node values
        // live in the vmstat.csv artifacts, not the manifest.
        Json vmstat{Json::Object{}};
        for (const auto &[key, value] : r.output.vmstat) {
            if (key.find('.') == std::string::npos)
                vmstat.set(key, static_cast<double>(value));
        }
        entry.set("vmstat", std::move(vmstat));
        // Per-tenant QoS metrics for multi-tenant scenarios
        // ("<unit>.<tenant>.<metric>"); omitted when the scenario
        // created no memory cgroups.
        if (!r.output.tenantMetrics.empty()) {
            Json tenants{Json::Object{}};
            for (const auto &[key, value] : r.output.tenantMetrics)
                tenants.set(key, value);
            entry.set("tenants", std::move(tenants));
        }
        scenarios.push(std::move(entry));
    }

    Json manifest{Json::Object{}};
    // The SHA identifies the code, not the results directory: prefer
    // the output dir (results checked into some repo), but fall back
    // to the source tree this binary was built from.
    std::string sha = readGitSha(opts.outDir);
#ifdef MCLOCK_SOURCE_DIR
    if (sha == "unknown")
        sha = readGitSha(MCLOCK_SOURCE_DIR);
#endif
    manifest.set("git_sha", sha);
    manifest.set("timestamp_utc", isoTimestampUtc());
    manifest.set("seed", static_cast<double>(opts.context.seed));
    manifest.set("golden_profile", Json(opts.context.golden));
    manifest.set("jobs", static_cast<double>(opts.jobs));
    // Worker threads for sharded scenarios. Execution width only —
    // excluded from config_hash because results do not depend on it.
    manifest.set("shards", static_cast<double>(opts.context.shards));
    manifest.set("wall_seconds", report.wallSeconds);
    manifest.set("scenarios", std::move(scenarios));

    const auto path =
        std::filesystem::path(opts.outDir) / "run_manifest.json";
    std::ofstream f(path);
    if (!f)
        MCLOCK_FATAL("cannot write manifest '%s'", path.string().c_str());
    f << manifest.dump(2) << "\n";
}

}  // namespace harness
}  // namespace mclock
