/**
 * @file
 * Global simulator invariants, checked after every harness run.
 *
 * These are the properties that must hold at any quiescent point of any
 * policy, expressed as a library so the harness runner, the property
 * tests, and the golden regression suite all enforce the same set:
 *
 *  - frame conservation: each node's used-frame count equals the number
 *    of resident pages placed on it, and never exceeds its capacity;
 *  - single residency: a resident page is placed on exactly one node
 *    (never counted in two tiers) and sits on exactly one LRU list of
 *    that node; non-resident pages are on no list;
 *  - promote-list discipline: pages on a promote list carry the
 *    PagePromote flag (MULTI-CLOCK's PG_referenced-equivalent selection
 *    evidence), and promote lists only ever hold pages whose anonymity
 *    matches the list family.
 */

#ifndef MCLOCK_HARNESS_INVARIANTS_HH_
#define MCLOCK_HARNESS_INVARIANTS_HH_

#include <string>
#include <vector>

namespace mclock {

namespace sim {
class Simulator;
}

namespace harness {

/**
 * Check all invariants on @p sim.
 * @return one human-readable message per violation; empty when clean
 */
std::vector<std::string> collectViolations(sim::Simulator &sim);

}  // namespace harness
}  // namespace mclock

#endif  // MCLOCK_HARNESS_INVARIANTS_HH_
