/**
 * @file
 * Global simulator invariants, checked after every harness run.
 *
 * These are the properties that must hold at any quiescent point of any
 * policy, expressed as a library so the harness runner, the property
 * tests, and the golden regression suite all enforce the same set:
 *
 *  - frame conservation: each node's used-frame count equals the number
 *    of resident pages placed on it, and never exceeds its capacity;
 *  - single residency: a resident page is placed on exactly one node
 *    (never counted in two tiers) and sits on exactly one LRU list of
 *    that node; non-resident pages are on no list;
 *  - promote-list discipline: pages on a promote list carry the
 *    PagePromote flag (MULTI-CLOCK's PG_referenced-equivalent selection
 *    evidence), and promote lists only ever hold pages whose anonymity
 *    matches the list family.
 */

#ifndef MCLOCK_HARNESS_INVARIANTS_HH_
#define MCLOCK_HARNESS_INVARIANTS_HH_

#include <string>
#include <vector>

namespace mclock {

namespace sim {
class Simulator;
}

namespace harness {

/**
 * Check all invariants on @p sim.
 * @return one human-readable message per violation; empty when clean
 */
std::vector<std::string> collectViolations(sim::Simulator &sim);

/**
 * Cross-check the vmstat counter subsystem against the simulator's
 * independent ground truth:
 *
 *  - pgpromote_success == Metrics::totalPromotions() and pgdemote ==
 *    totalDemotions() (the counters and the legacy accounting observe
 *    the same migrations);
 *  - pswpin / pswpout match the legacy swap_ins / swap_outs stats, and
 *    every swap-out is also a pgsteal;
 *  - pgfault_dram + pgfault_pm == minor_faults + swap_ins (every frame
 *    allocation is attributed to exactly one tier);
 *  - pghint_fault == hint_faults;
 *  - pgexchange == MigrationEngine::exchanges();
 *  - LRU scan counters never exceed the charged scan volume:
 *    pgscan_active + pgscan_inactive + pgscan_promote <= scanned_pages
 *    (page-table profiling passes charge but are not LRU scans);
 *  - per-node counts sum to at most the global count for every item,
 *    with equality for the node-attributed items above.
 */
std::vector<std::string> collectCounterViolations(sim::Simulator &sim);

}  // namespace harness
}  // namespace mclock

#endif  // MCLOCK_HARNESS_INVARIANTS_HH_
