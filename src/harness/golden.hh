/**
 * @file
 * Golden-run regression facility.
 *
 * Each golden-eligible scenario has a pinned-seed, reduced-scale run
 * whose metric summary is checked into tests/golden/<name>.json. The
 * golden_test ctest target re-runs those scenarios and compares every
 * metric against the fixture with a relative tolerance, so any
 * unintended behaviour change in the PFRA/MULTI-CLOCK machinery (or a
 * policy, workload generator, or the metrics layer) fails CI.
 *
 * Regeneration flow (documented in README): after an intended
 * behaviour change, run `mclock_bench --update-golden`, review the
 * fixture diff, and commit it alongside the change.
 */

#ifndef MCLOCK_HARNESS_GOLDEN_HH_
#define MCLOCK_HARNESS_GOLDEN_HH_

#include <string>
#include <vector>

#include "harness/scenario.hh"

namespace mclock {
namespace harness {

/** Default relative tolerance for metric comparison. */
constexpr double kGoldenDefaultTolerance = 1e-6;

/** Parsed golden fixture. */
struct GoldenFile
{
    std::string scenario;
    std::uint64_t seed = kDefaultSeed;
    double tolerance = kGoldenDefaultTolerance;
    MetricMap metrics;
};

/** The compiled-in fixture directory (tests/golden of this source
 *  tree); overridable at the call sites via an explicit directory. */
std::string defaultGoldenDir();

/** Fixture path for a scenario. */
std::string goldenPath(const std::string &dir,
                       const std::string &scenario);

/**
 * Load a fixture.
 * @return false (with @p err set) when missing or malformed
 */
bool loadGolden(const std::string &path, GoldenFile &out,
                std::string *err);

/** Serialize and write a fixture; fatal on I/O failure. */
void saveGolden(const std::string &path, const GoldenFile &golden);

/**
 * Compare a fresh summary against a fixture.
 * @return one message per mismatch (missing, extra, or out-of-tolerance
 *         metric); empty when the run matches
 */
std::vector<std::string> compareGolden(const GoldenFile &golden,
                                       const MetricMap &fresh);

/** The golden RunContext (pinned seed, golden profile). */
RunContext goldenContext();

/** Names of every golden-eligible scenario, in registry order. */
std::vector<std::string> goldenScenarioNames();

}  // namespace harness
}  // namespace mclock

#endif  // MCLOCK_HARNESS_GOLDEN_HH_
