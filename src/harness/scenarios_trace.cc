/**
 * @file
 * Motivation-study scenarios: Fig. 1 heatmaps, Fig. 2 window analysis,
 * and Table I. Ported from the original bench mains; default-profile
 * output is byte-identical to the legacy binaries.
 */

#include <sstream>

#include "base/csv.hh"
#include "harness/scenario_common.hh"
#include "policies/static_tiering.hh"
#include "trace/heatmap.hh"
#include "trace/window_analysis.hh"
#include "workloads/synthetic.hh"

namespace mclock {
namespace harness {

namespace {

const workloads::SyntheticProfile kProfiles[] = {
    workloads::SyntheticProfile::Rubis,
    workloads::SyntheticProfile::SpecPower,
    workloads::SyntheticProfile::Xalan,
    workloads::SyntheticProfile::Lusearch,
};

/** Shared synthetic-run setup for fig01/fig02 units. */
struct SyntheticRun
{
    trace::AccessTrace trace;
    workloads::SyntheticConfig cfg;
};

void
runSynthetic(const RunContext &ctx, workloads::SyntheticProfile profile,
             SyntheticRun &out, RunRecord &rec)
{
    const std::uint64_t seconds =
        ctx.param("seconds", ctx.golden ? 12 : 120);
    sim::MachineConfig machine =
        ctx.golden ? goldenYcsbMachine() : ycsbMachine();
    machine.seed = ctx.seed;
    applyStatsContext(machine, ctx);
    sim::Simulator sim(machine);
    sim.setPolicy(std::make_unique<policies::StaticTieringPolicy>());

    out.cfg.numPages = ctx.golden ? 600 : 2000;
    out.cfg.duration = seconds * 1_s;
    out.cfg.seed = ctx.derivedSeed(3, out.cfg.seed);
    out.cfg.batchAccesses = batchedAccessPath(ctx);
    workloads::SyntheticWorkload workload(sim, profile, out.cfg);
    workload.run(&out.trace);
    checkRunInvariants(sim, rec);
}

Scenario
fig01Scenario()
{
    Scenario sc;
    sc.name = "fig01";
    sc.title = "Fig. 1: page access heatmaps (50 pages x time)";
    sc.workload = "synthetic";
    sc.policies = {"static"};
    sc.expand = [](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (auto profile : kProfiles) {
            const char *name = workloads::syntheticProfileName(profile);
            units.push_back({name, [profile, name,
                                    ctx](const RunContext &) {
                RunRecord rec;
                SyntheticRun run;
                runSynthetic(ctx, profile, run, rec);

                trace::HeatmapConfig hmCfg;
                hmCfg.sampledPages = 50;
                hmCfg.timeBuckets = 64;
                hmCfg.seed = ctx.derivedSeed(7, hmCfg.seed);
                const trace::Heatmap hm = trace::Heatmap::build(
                    run.trace, run.cfg.numPages, hmCfg);

                appendf(rec.text,
                        "\n--- (%s): %zu traced accesses ---\n", name,
                        run.trace.size());
                std::ostringstream render;
                hm.render(render);
                rec.text += render.str();

                CsvWriter csv;
                hm.writeCsv(csv);
                rec.artifacts.push_back(
                    {std::string("fig01_") + name + ".csv", csv.str()});
                appendf(rec.text, "wrote fig01_%s.csv\n", name);

                // Regression summary: trace volume plus a positional
                // checksum of the heat matrix (order-sensitive).
                rec.metrics["traced"] =
                    static_cast<double>(run.trace.size());
                std::uint64_t sum = 0, fnv = 0xcbf29ce484222325ull;
                for (std::size_t r = 0; r < hm.numRows(); ++r) {
                    for (std::size_t b = 0; b < hm.numBuckets(); ++b) {
                        const std::uint64_t c = hm.count(r, b);
                        sum += c;
                        fnv = (fnv ^ c) * 0x100000001b3ull;
                    }
                }
                rec.metrics["heat_sum"] = static_cast<double>(sum);
                rec.metrics["heat_checksum"] =
                    static_cast<double>(fnv % 1000000007ull);
                return rec;
            }});
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        std::string head;
        appendf(head, "=== Fig. 1: page access heatmaps "
                      "(50 sampled pages x time) ===\n");
        out.text = head + out.text;
        appendf(out.text,
                "\nExpected shape: rows split into always-hot "
                "(DRAM-friendly), sparse (infrequent), and bimodal "
                "phase-hot (Tier-friendly) pages.\n");
        return out;
    };
    return sc;
}

Scenario
fig02Scenario()
{
    Scenario sc;
    sc.name = "fig02";
    sc.title = "Fig. 2: observation/performance window frequency "
               "analysis";
    sc.workload = "synthetic";
    sc.policies = {"static"};
    sc.expand = [](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (auto profile : kProfiles) {
            const char *name = workloads::syntheticProfileName(profile);
            units.push_back({name, [profile, ctx](const RunContext &) {
                RunRecord rec;
                SyntheticRun run;
                runSynthetic(ctx, profile, run, rec);
                const SimTime window =
                    1_s * ctx.param("window-s", 2);
                const auto r =
                    trace::analyzeWindows(run.trace, window, window);
                rec.metrics["single_mean"] = r.singleMeanPerfAccesses;
                rec.metrics["multi_mean"] = r.multiMeanPerfAccesses;
                rec.metrics["ratio"] = r.ratio();
                rec.metrics["single_samples"] =
                    static_cast<double>(r.singleSamples);
                rec.metrics["multi_samples"] =
                    static_cast<double>(r.multiSamples);
                return rec;
            }});
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        appendf(out.text,
                "=== Fig. 2: accesses in the performance window, by "
                "observation-window frequency class ===\n");
        appendf(out.text, "%-14s %14s %14s %8s\n", "workload",
                "single (mean)", "multi (mean)", "ratio");
        CsvWriter csv;
        csv.writeHeader({"workload", "single_mean", "multi_mean",
                         "ratio", "single_samples", "multi_samples"});
        for (std::size_t i = 0; i < records.size(); ++i) {
            const char *name =
                workloads::syntheticProfileName(kProfiles[i]);
            const auto &m = records[i].metrics;
            appendf(out.text, "%-14s %14.2f %14.2f %8.2f\n", name,
                    m.at("single_mean"), m.at("multi_mean"),
                    m.at("ratio"));
            csv.writeRow({std::string(name),
                          std::to_string(m.at("single_mean")),
                          std::to_string(m.at("multi_mean")),
                          std::to_string(m.at("ratio")),
                          std::to_string(static_cast<std::uint64_t>(
                              m.at("single_samples"))),
                          std::to_string(static_cast<std::uint64_t>(
                              m.at("multi_samples")))});
        }
        appendf(out.text,
                "\nExpected shape: multi >> single for every workload "
                "(the paper's Fig. 2).\nwrote fig02_frequency.csv\n");
        out.artifacts.push_back({"fig02_frequency.csv", csv.str()});
        return out;
    };
    return sc;
}

Scenario
tab01Scenario()
{
    Scenario sc;
    sc.name = "tab01";
    sc.title = "Table I: comparison of tiering techniques";
    sc.workload = "none";
    sc.policies = {"static",  "autonuma",   "at-cpm",
                   "at-opm",  "nimble",     "amp-lru",
                   "multiclock", "memory-mode"};
    sc.goldenEligible = false;  // static metadata, nothing to regress
    sc.expand = [sc](const RunContext &) {
        std::vector<RunUnit> units;
        units.push_back({"table", [sc](const RunContext &) {
            RunRecord rec;
            appendf(rec.text,
                    "=== Table I: comparison of tiering techniques "
                    "===\n");
            appendf(rec.text,
                    "%-18s %-22s %-26s %-11s %-6s %-9s %-10s %-18s "
                    "%-s\n",
                    "Tiering", "Tracking", "Promotion", "Demotion",
                    "NUMA", "SpaceOvh", "General", "Evaluation",
                    "Key insight");
            for (const auto &name : sc.policies) {
                const auto policy = policies::makePolicy(name, 1_MiB);
                const auto row = policy->features();
                appendf(rec.text,
                        "%-18s %-22s %-26s %-11s %-6s %-9s %-10s "
                        "%-18s %-s\n",
                        row.tiering.c_str(), row.tracking.c_str(),
                        row.promotion.c_str(), row.demotion.c_str(),
                        row.numaAware.c_str(),
                        row.spaceOverhead.c_str(),
                        row.generality.c_str(), row.evaluation.c_str(),
                        row.keyInsight.c_str());
            }
            return rec;
        }});
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        return mergeRecords(sc.expand(ctx), records);
    };
    return sc;
}

}  // namespace

std::vector<Scenario>
makeTraceScenarios()
{
    return {fig01Scenario(), fig02Scenario(), tab01Scenario()};
}

}  // namespace harness
}  // namespace mclock
