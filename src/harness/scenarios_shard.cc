/**
 * @file
 * Sharded-machine scenarios: a big-memory KV host partitioned into
 * S = 8 shards (sim::ShardedSimulator), each shard a self-contained
 * sub-simulator over 1/8 of the node capacities running its own
 * KV store under a scrambled-zipfian YCSB-A mix.
 *
 * The shard count is scenario data — it defines the address-space
 * partition and is the same for every run. The harness `--shards N`
 * flag only chooses how many worker threads drive the 8 shards each
 * epoch, and by the determinism contract (see sim/sharded.hh) every
 * metric below is bit-identical for any N: these scenarios are
 * golden-eligible, and shard_test pins 1-vs-4-vs-8 worker equality.
 *
 * Three members:
 *  - shard_bigmem:        ungoverned promotion, workers = --shards;
 *  - shard_bigmem_budget: global per-epoch promotion budget exercised
 *                         across the epoch-merge grant loop;
 *  - shard_bigmem_x4/_x8: wall-clock variants with the worker count
 *                         pinned (bench families; not golden — their
 *                         results equal shard_bigmem by construction,
 *                         which shard_test asserts).
 */

#include <memory>
#include <string>

#include "base/csv.hh"
#include "base/rng.hh"
#include "harness/scenario_common.hh"
#include "sim/sharded.hh"
#include "workloads/kvstore.hh"
#include "workloads/zipf.hh"

namespace mclock {
namespace harness {

namespace {

/** Fixed semantic partition count (see file comment). */
constexpr unsigned kShardCount = 8;

/** Policies compared (one unit each). */
const std::vector<std::string> kShardPolicies = {"multiclock", "static"};

/**
 * Whole-host machine: 8x the golden YCSB shard shape. Every shard gets
 * a goldenYcsbMachine()-sized slice (4 MiB DRAM + 24 MiB PM full
 * scale), so per-shard tiering dynamics match the proven YCSB golden
 * profile. Golden runs scale the host down 4x.
 */
sim::MachineConfig
shardMachineWhole(const RunContext &ctx)
{
    sim::MachineConfig cfg;
    if (ctx.golden) {
        cfg.nodes = {{TierKind::Dram, 8_MiB}, {TierKind::Pmem, 48_MiB}};
    } else {
        cfg.nodes = {{TierKind::Dram, 32_MiB},
                     {TierKind::Pmem, 192_MiB}};
    }
    cfg.cache.sizeBytes = 32_KiB;
    cfg.cache.ways = 8;
    cfg.metricsWindow = ctx.golden ? 20_ms : kMetricsWindow;
    cfg.seed = ctx.seed;
    applyStatsContext(cfg, ctx);
    return cfg;
}

/** Per-shard KV records: footprint ~2.5x the shard's DRAM slice. */
std::uint64_t
shardRecords(const RunContext &ctx)
{
    return ctx.param("records", ctx.golden ? 2400 : 9600);
}

/** Request epochs after the load epoch. */
std::uint64_t
shardEpochs(const RunContext &ctx)
{
    return ctx.param("epochs", ctx.golden ? 4 : 8);
}

/** YCSB-A operations per shard per request epoch. */
std::uint64_t
shardOpsPerEpoch(const RunContext &ctx)
{
    return ctx.param("ops", ctx.golden ? 5000 : 60000);
}

/**
 * Shard-local workload state. Owned by the coordinator, but each
 * instance is touched only by whichever worker thread drives its shard
 * in a given epoch (the epoch barrier is the handoff point).
 */
struct ShardWorkload
{
    ShardWorkload(sim::Simulator &sim, std::uint64_t records,
                  std::uint64_t seed, bool batch)
        : rng(seed), zipf(records), records(records)
    {
        workloads::KvStoreConfig kv;
        kv.batchAccesses = batch;
        store = std::make_unique<workloads::KvStore>(sim, kv);
    }

    Rng rng;
    workloads::ScrambledZipfianGenerator zipf;
    std::uint64_t records;
    std::unique_ptr<workloads::KvStore> store;
};

/**
 * Run one policy unit: build the sharded host, drive epoch 0 as the
 * per-shard load phase and the remaining epochs as YCSB-A request
 * batches, then reduce shard-local state into the record.
 */
RunRecord
runShardUnit(const std::string &policy, const RunContext &ctx,
             unsigned workers)
{
    const std::uint64_t records = shardRecords(ctx);
    const std::uint64_t epochs = shardEpochs(ctx);
    const std::uint64_t opsPerEpoch = shardOpsPerEpoch(ctx);
    constexpr std::size_t kValueBytes = 1024;

    sim::ShardOptions opts;
    opts.shards = kShardCount;
    opts.workers = workers;
    opts.epochPromoteBudget = ctx.param("promote_budget", 0);

    sim::ShardedSimulator host(shardMachineWhole(ctx), opts);
    std::vector<std::unique_ptr<ShardWorkload>> shards;
    for (unsigned s = 0; s < host.shards(); ++s) {
        host.shard(s).setPolicy(
            policies::makePolicy(policy, benchPolicyOptions()));
        shards.push_back(std::make_unique<ShardWorkload>(
            host.shard(s), records,
            ctx.derivedSeed(16 + s, 0xbead5eed00ull + s),
            batchedAccessPath(ctx)));
    }

    host.run([&](sim::Simulator &, unsigned s, std::uint64_t epoch) {
        ShardWorkload &w = *shards[s];
        if (epoch == 0) {
            // Load phase: fill the store in key order, spilling cold
            // records into PM exactly as the YCSB scenarios do.
            for (std::uint64_t k = 0; k < w.records; ++k)
                w.store->put(k, kValueBytes);
            return true;
        }
        // YCSB-A: 50/50 read-update over the scrambled-zipfian keys.
        for (std::uint64_t i = 0; i < opsPerEpoch; ++i) {
            const std::uint64_t key = w.zipf.next(w.rng);
            if (w.rng.nextRange(100) < 50)
                w.store->get(key);
            else
                w.store->put(key, kValueBytes);
        }
        return epoch < epochs;  // epoch `epochs` is the last one
    });

    RunRecord rec;
    const sim::Metrics merged = host.mergedMetrics();
    const stats::VmStat vmstat = host.mergedVmstat();
    const double accesses =
        static_cast<double>(merged.totalAccesses());

    rec.metrics["accesses"] = accesses;
    rec.metrics["tier0_share"] =
        accesses == 0.0
            ? 0.0
            : static_cast<double>(merged.totalTierAccesses(0)) /
                  accesses;
    rec.metrics["promotions"] =
        static_cast<double>(merged.totalPromotions());
    rec.metrics["demotions"] =
        static_cast<double>(merged.totalDemotions());
    rec.metrics["epochs"] = static_cast<double>(host.epochs());
    rec.metrics["merged_events"] =
        static_cast<double>(host.events().size());
    rec.metrics["deferred"] = static_cast<double>(
        vmstat.global(stats::VmItem::PgpromoteDeferred));
    rec.metrics["makespan_ms"] =
        static_cast<double>(host.makespan()) / 1e6;

    // Shard balance: the extremes of per-shard served accesses.
    std::uint64_t minAcc = ~0ull, maxAcc = 0;
    for (unsigned s = 0; s < host.shards(); ++s) {
        const std::uint64_t a =
            host.shard(s).metrics().totalAccesses();
        minAcc = std::min(minAcc, a);
        maxAcc = std::max(maxAcc, a);
    }
    rec.metrics["min_shard_accesses"] = static_cast<double>(minAcc);
    rec.metrics["max_shard_accesses"] = static_cast<double>(maxAcc);

    for (unsigned s = 0; s < host.shards(); ++s) {
        sim::Simulator &sim = host.shard(s);
        for (auto &v : collectViolations(sim))
            rec.violations.push_back("shard" + std::to_string(s) +
                                     ": " + std::move(v));
        for (auto &v : collectCounterViolations(sim))
            rec.violations.push_back("shard" + std::to_string(s) +
                                     ": " + std::move(v));
    }
    rec.vmstat = vmstat.snapshot();
    rec.perfAppOps = host.totalAppOps();
    rec.perfSimAccesses = merged.totalAccesses();
    if (ctx.stats)
        rec.traceEvents = host.trace().events();
    return rec;
}

/** Expand/reduce shared by the whole family. */
Scenario
shardScenario(const std::string &name, const std::string &title,
              std::uint64_t promoteBudget, int pinnedWorkers,
              bool goldenEligible)
{
    Scenario sc;
    sc.name = name;
    sc.title = title;
    sc.workload = "kvstore";
    sc.policies = kShardPolicies;
    sc.goldenEligible = goldenEligible;
    sc.expand = [promoteBudget, pinnedWorkers](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const auto &policy : kShardPolicies) {
            units.push_back({policy, [policy, promoteBudget,
                                      pinnedWorkers,
                                      ctx](const RunContext &) {
                RunContext unitCtx = ctx;
                if (promoteBudget != 0 &&
                    !unitCtx.params.count("promote_budget"))
                    unitCtx.params["promote_budget"] = promoteBudget;
                const unsigned workers =
                    pinnedWorkers > 0
                        ? static_cast<unsigned>(pinnedWorkers)
                        : ctx.shards;
                return runShardUnit(policy, unitCtx, workers);
            }});
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        appendf(out.text, "=== %s ===\n", sc.title.c_str());
        appendf(out.text, "%u shards; worker threads change wall-clock "
                          "only, never these numbers.\n",
                kShardCount);
        appendf(out.text,
                "%-12s %12s %7s %11s %10s %9s %9s %12s\n", "policy",
                "accesses", "tier0%", "promotions", "demotions",
                "merged", "deferred", "makespan_ms");

        CsvWriter csv;
        csv.writeHeader({"policy", "accesses", "tier0_share",
                         "promotions", "demotions", "merged_events",
                         "deferred", "makespan_ms",
                         "min_shard_accesses", "max_shard_accesses"});
        for (std::size_t i = 0;
             i < records.size() && i < kShardPolicies.size(); ++i) {
            const auto &m = records[i].metrics;
            const auto &policy = kShardPolicies[i];
            appendf(out.text,
                    "%-12s %12.0f %6.1f%% %11.0f %10.0f %9.0f %9.0f "
                    "%12.2f\n",
                    policy.c_str(), m.at("accesses"),
                    m.at("tier0_share") * 100.0, m.at("promotions"),
                    m.at("demotions"), m.at("merged_events"),
                    m.at("deferred"), m.at("makespan_ms"));
            csv.writeRow({policy, std::to_string(m.at("accesses")),
                          std::to_string(m.at("tier0_share")),
                          std::to_string(m.at("promotions")),
                          std::to_string(m.at("demotions")),
                          std::to_string(m.at("merged_events")),
                          std::to_string(m.at("deferred")),
                          std::to_string(m.at("makespan_ms")),
                          std::to_string(m.at("min_shard_accesses")),
                          std::to_string(m.at("max_shard_accesses"))});
        }
        appendf(out.text, "wrote %s.csv\n", sc.name.c_str());
        out.artifacts.push_back({sc.name + ".csv", csv.str()});
        return out;
    };
    return sc;
}

}  // namespace

std::vector<Scenario>
makeShardScenarios()
{
    return {
        shardScenario("shard_bigmem",
                      "Sharded big-memory KV host (8 shards, YCSB-A)",
                      /*promoteBudget=*/0, /*pinnedWorkers=*/0,
                      /*goldenEligible=*/true),
        shardScenario(
            "shard_bigmem_budget",
            "Sharded KV host under a global promotion budget",
            /*promoteBudget=*/64, /*pinnedWorkers=*/0,
            /*goldenEligible=*/true),
        shardScenario(
            "shard_bigmem_x4",
            "Sharded KV host, 4 worker threads (wall-clock family)",
            /*promoteBudget=*/0, /*pinnedWorkers=*/4,
            /*goldenEligible=*/false),
        shardScenario(
            "shard_bigmem_x8",
            "Sharded KV host, 8 worker threads (wall-clock family)",
            /*promoteBudget=*/0, /*pinnedWorkers=*/8,
            /*goldenEligible=*/false),
    };
}

}  // namespace harness
}  // namespace mclock
