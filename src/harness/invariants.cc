#include "harness/invariants.hh"

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "pfra/lru_lists.hh"
#include "sim/memory_system.hh"
#include "sim/node.hh"
#include "sim/simulator.hh"
#include "stats/vmstat.hh"
#include "vm/address_space.hh"
#include "vm/memcg.hh"
#include "vm/page.hh"
#include "vm/swap.hh"

#ifdef MCLOCK_DEBUG_VM
#include "debug/vm_checker.hh"
#endif

namespace mclock {
namespace harness {

namespace {

void
violation(std::vector<std::string> &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out.emplace_back(buf);
}

}  // namespace

std::vector<std::string>
collectViolations(sim::Simulator &sim)
{
    std::vector<std::string> out;
    auto &mem = sim.memory();
    const std::size_t numNodes = mem.numNodes();

    // Pass 1: walk the address space, counting residency per node.
    std::vector<std::size_t> residentPerNode(numNodes, 0);
    std::size_t resident = 0;
    sim.space().forEachPage([&](Page *pg) {
        if (!pg->resident()) {
            if (pg->onLru()) {
                violation(out,
                          "non-resident page vpn=%llu on list %d",
                          static_cast<unsigned long long>(pg->vpn()),
                          static_cast<int>(pg->list()));
            }
            return;
        }
        ++resident;
        const auto node = static_cast<std::size_t>(pg->node());
        if (node >= numNodes) {
            // Single-residency: the one node field must name a real
            // node; an out-of-range id would mean a torn placement.
            violation(out, "resident page vpn=%llu on bogus node %zu",
                      static_cast<unsigned long long>(pg->vpn()), node);
            return;
        }
        ++residentPerNode[node];
    });

    // Pass 2: per-node frame accounting and occupancy bounds.
    std::size_t onLists = 0;
    mem.forEachNode([&](sim::Node &node) {
        const auto id = static_cast<std::size_t>(node.id());
        if (node.usedFrames() > node.totalFrames()) {
            violation(out, "node %zu occupancy %zu exceeds capacity %zu",
                      id, node.usedFrames(), node.totalFrames());
        }
        if (node.usedFrames() != residentPerNode[id]) {
            violation(out,
                      "node %zu frame leak: %zu frames used but %zu "
                      "resident pages placed",
                      id, node.usedFrames(), residentPerNode[id]);
        }
        onLists += node.lists().totalPages();

        // Pass 3: list discipline — tags match, anonymity matches the
        // list family, and promote-list pages carry PagePromote (the
        // selection evidence shrink_promote_list consumes).
        for (int k = 1; k < kNumLruLists; ++k) {
            const auto kind = static_cast<LruListKind>(k);
            for (Page *pg : node.lists().list(kind)) {
                if (pg->list() != kind) {
                    violation(out,
                              "page vpn=%llu on list %d but tagged %d",
                              static_cast<unsigned long long>(pg->vpn()),
                              k, static_cast<int>(pg->list()));
                }
                if (pg->node() != node.id()) {
                    violation(out,
                              "page vpn=%llu on node %zu's list but "
                              "placed on node %d",
                              static_cast<unsigned long long>(pg->vpn()),
                              id, static_cast<int>(pg->node()));
                }
                if (kind != LruListKind::Unevictable) {
                    const bool anonList =
                        kind == LruListKind::InactiveAnon ||
                        kind == LruListKind::ActiveAnon ||
                        kind == LruListKind::PromoteAnon;
                    if (pg->isAnon() != anonList) {
                        violation(out,
                                  "page vpn=%llu anonymity mismatch on "
                                  "list %d",
                                  static_cast<unsigned long long>(
                                      pg->vpn()),
                                  k);
                    }
                }
                if (isPromoteList(kind) && !pg->promoteFlag()) {
                    violation(out,
                              "page vpn=%llu on promote list without "
                              "PagePromote set",
                              static_cast<unsigned long long>(pg->vpn()));
                }
            }
        }
    });

#ifdef MCLOCK_DEBUG_VM
    // Debug builds add the lockdep-style sweep: linkage validity and
    // shadow-state agreement on every list of every node.
    auto &checker = sim.vmChecker();
    mem.forEachNode([&](sim::Node &node) {
        for (int k = 1; k < kNumLruLists; ++k) {
            const auto kind = static_cast<LruListKind>(k);
            std::vector<debug::Violation> found;
            checker.validateList(node.lists().list(kind), kind,
                                 node.id(), &found);
            for (const auto &v : found) {
                violation(out, "debug_vm %s: %s",
                          debug::violationName(v.code),
                          v.detail.c_str());
            }
        }
    });
#endif

    // A resident page sits on exactly one list; isolated (mid-migration)
    // pages never survive to a quiescent point.
    if (onLists != resident) {
        violation(out,
                  "list membership mismatch: %zu pages on lists, %zu "
                  "resident",
                  onLists, resident);
    }
    return out;
}

namespace {

void
counterMismatch(std::vector<std::string> &out, const char *what,
                std::uint64_t counter, std::uint64_t truth)
{
    violation(out, "counter mismatch: %s = %llu but ground truth %llu",
              what, static_cast<unsigned long long>(counter),
              static_cast<unsigned long long>(truth));
}

}  // namespace

std::vector<std::string>
collectCounterViolations(sim::Simulator &sim)
{
    using stats::VmItem;
    std::vector<std::string> out;
    const auto &vm = sim.vmstat();
    auto &st = sim.stats();

    // Migration accounting: three observers (vmstat, Metrics, the
    // migration engine) counted the same events independently.
    if (vm.global(VmItem::PgpromoteSuccess) !=
        sim.metrics().totalPromotions()) {
        counterMismatch(out, "pgpromote_success",
                        vm.global(VmItem::PgpromoteSuccess),
                        sim.metrics().totalPromotions());
    }
    if (vm.global(VmItem::Pgdemote) != sim.metrics().totalDemotions()) {
        counterMismatch(out, "pgdemote", vm.global(VmItem::Pgdemote),
                        sim.metrics().totalDemotions());
    }
    // A pgexchange implies the two nodes sat on different tiers; the
    // engine's same-tier exchanges are deliberately not counted.
    if (vm.global(VmItem::Pgexchange) !=
        sim.migrationEngine().tieredExchanges()) {
        counterMismatch(out, "pgexchange", vm.global(VmItem::Pgexchange),
                        sim.migrationEngine().tieredExchanges());
    }

    // Transactional migration: every injected abort (and every
    // post-copy rollback) the engine saw reached vmstat.
    if (vm.global(VmItem::PgmigrateAbort) != sim.migrationEngine().aborts())
        counterMismatch(out, "pgmigrate_abort",
                        vm.global(VmItem::PgmigrateAbort),
                        sim.migrationEngine().aborts());
    if (vm.global(VmItem::PgmigrateRollback) !=
        sim.migrationEngine().rollbacks()) {
        counterMismatch(out, "pgmigrate_rollback",
                        vm.global(VmItem::PgmigrateRollback),
                        sim.migrationEngine().rollbacks());
    }

    // Swap traffic and reclaim: pswpin/pswpout shadow the legacy stats.
    // pswpout is charged only for anonymous pages entering the swap
    // area; file-backed evictions surface as pgwriteback instead, and
    // every evicted page of either kind was stolen from its node.
    if (vm.global(VmItem::Pswpin) != st.get("swap_ins"))
        counterMismatch(out, "pswpin", vm.global(VmItem::Pswpin),
                        st.get("swap_ins"));
    if (vm.global(VmItem::Pswpout) != st.get("swap_outs"))
        counterMismatch(out, "pswpout", vm.global(VmItem::Pswpout),
                        st.get("swap_outs"));
    if (vm.global(VmItem::Pswpout) != sim.swap().swapOuts())
        counterMismatch(out, "pswpout(swap)", vm.global(VmItem::Pswpout),
                        sim.swap().swapOuts());
    if (vm.global(VmItem::Pgwriteback) != sim.swap().writebacks())
        counterMismatch(out, "pgwriteback",
                        vm.global(VmItem::Pgwriteback),
                        sim.swap().writebacks());
    if (vm.global(VmItem::Pgsteal) !=
        vm.global(VmItem::Pswpout) + vm.global(VmItem::Pgwriteback)) {
        counterMismatch(out, "pgsteal", vm.global(VmItem::Pgsteal),
                        vm.global(VmItem::Pswpout) +
                            vm.global(VmItem::Pgwriteback));
    }

    // Fault attribution: every frame allocation (minor fault or swap-in)
    // landed on exactly one tier.
    const std::uint64_t faults = vm.global(VmItem::PgfaultDram) +
                                 vm.global(VmItem::PgfaultPm);
    const std::uint64_t allocs =
        st.get("minor_faults") + st.get("swap_ins");
    if (faults != allocs)
        counterMismatch(out, "pgfault_dram+pgfault_pm", faults, allocs);
    if (vm.global(VmItem::PghintFault) != st.get("hint_faults"))
        counterMismatch(out, "pghint_fault",
                        vm.global(VmItem::PghintFault),
                        st.get("hint_faults"));

    // LRU scan classification never exceeds the charged scan volume
    // (page-table profiling passes are charged but not list scans).
    const std::uint64_t pgscan = vm.global(VmItem::PgscanActive) +
                                 vm.global(VmItem::PgscanInactive) +
                                 vm.global(VmItem::PgscanPromote);
    if (pgscan > st.get("scanned_pages")) {
        counterMismatch(out, "pgscan_active+inactive+promote", pgscan,
                        st.get("scanned_pages"));
    }

    // Per-node attribution: node counts can never exceed the global
    // count, and the node-attributed items must account for every event.
    for (std::size_t i = 0; i < stats::kNumVmItems; ++i) {
        const auto item = static_cast<VmItem>(i);
        if (vm.nodeSum(item) > vm.global(item)) {
            violation(out,
                      "counter mismatch: per-node %s sums to %llu, over "
                      "the global %llu",
                      stats::vmItemName(item),
                      static_cast<unsigned long long>(vm.nodeSum(item)),
                      static_cast<unsigned long long>(vm.global(item)));
        }
    }
    for (VmItem item : {VmItem::PgscanActive, VmItem::PgscanInactive,
                        VmItem::PgscanPromote, VmItem::PgpromoteSuccess,
                        VmItem::Pgdemote, VmItem::Pgsteal,
                        VmItem::PgfaultDram, VmItem::PgfaultPm,
                        VmItem::Pswpin, VmItem::Pswpout,
                        VmItem::Pgwriteback, VmItem::PgmigrateAbort,
                        VmItem::PgmigrateRetry, VmItem::PgmigrateRollback,
                        VmItem::PgpromoteThrottled, VmItem::KswapdWake}) {
        if (vm.nodeSum(item) != vm.global(item)) {
            violation(out,
                      "counter mismatch: per-node %s sums to %llu, not "
                      "the global %llu",
                      stats::vmItemName(item),
                      static_cast<unsigned long long>(vm.nodeSum(item)),
                      static_cast<unsigned long long>(vm.global(item)));
        }
    }

    // Tier topology: every node belongs to exactly one rank bucket, the
    // rank buckets partition the machine, and per-tier frame occupancy
    // reconciles with the per-node books for every tier present.
    auto &mem = sim.memory();
    std::size_t bucketNodes = 0;
    std::size_t bucketTotal = 0;
    std::size_t bucketUsed = 0;
    for (TierRank rank : mem.tierOrder()) {
        std::size_t tierTotal = 0;
        std::size_t tierUsed = 0;
        std::size_t tierFree = 0;
        for (NodeId id : mem.tier(rank)) {
            const auto &node = mem.node(id);
            if (node.tier() != rank) {
                violation(out,
                          "node %d in tier %d's bucket but placed on "
                          "tier %d",
                          static_cast<int>(id), rank, node.tier());
            }
            ++bucketNodes;
            tierTotal += node.totalFrames();
            tierUsed += node.usedFrames();
            tierFree += node.freeFrames();
        }
        if (tierTotal != tierUsed + tierFree) {
            violation(out,
                      "tier %d occupancy mismatch: %zu frames total but "
                      "%zu used + %zu free",
                      rank, tierTotal, tierUsed, tierFree);
        }
        bucketTotal += tierTotal;
        bucketUsed += tierUsed;
    }
    std::size_t machineTotal = 0;
    std::size_t machineUsed = 0;
    mem.forEachNode([&](sim::Node &node) {
        machineTotal += node.totalFrames();
        machineUsed += node.usedFrames();
    });
    if (bucketNodes != mem.numNodes()) {
        violation(out,
                  "tier buckets cover %zu nodes but the machine has %zu",
                  bucketNodes, mem.numNodes());
    }
    if (bucketTotal != machineTotal || bucketUsed != machineUsed) {
        violation(out,
                  "tier occupancy sums (%zu/%zu used/total) diverge from "
                  "node totals (%zu/%zu)",
                  bucketUsed, bucketTotal, machineUsed, machineTotal);
    }

    // Swap-slot conservation: every slot a swap-out ever took is still
    // occupied, was freed by a page-in, or was released at unmap —
    // exactly once each. A double-release or a leaked slot (e.g. an
    // unmap racing a rollback) breaks the identity.
    const auto &swap = sim.swap();
    if (!swap.slotsConserved()) {
        violation(out,
                  "swap slot conservation: %llu swap-outs != %zu held + "
                  "%llu freed by page-in + %llu released at unmap",
                  static_cast<unsigned long long>(swap.swapOuts()),
                  swap.usedSlots(),
                  static_cast<unsigned long long>(swap.slotFrees()),
                  static_cast<unsigned long long>(swap.slotReleases()));
    }

    // Tenant demotions are a subset of all demotions, and a tenant page
    // deferred at the promotion gate was never also counted promoted.
    if (vm.global(VmItem::PgtenantDemote) > vm.global(VmItem::Pgdemote)) {
        counterMismatch(out, "pgtenant_demote <= pgdemote",
                        vm.global(VmItem::PgtenantDemote),
                        vm.global(VmItem::Pgdemote));
    }

    // Memcg charge conservation: each tenant's per-tier charge equals
    // the resident pages the walk actually finds tagged with it. A
    // drifting charge means a charge/uncharge/transfer hook was missed
    // on some migration, eviction, or rollback path.
    if (sim.memcg().active()) {
        std::map<std::pair<MemCgroupId, TierRank>, std::size_t> walked;
        sim.space().forEachPage([&](Page *pg) {
            if (!pg->resident() || pg->memcg() == kRootMemcg)
                return;
            const auto &node =
                mem.node(static_cast<NodeId>(pg->node()));
            ++walked[{pg->memcg(), node.tier()}];
        });
        sim.memcg().forEach([&](const MemCgroup &cg) {
            for (TierRank rank : mem.tierOrder()) {
                const std::size_t counted = walked.count({cg.id(), rank})
                                                ? walked[{cg.id(), rank}]
                                                : 0;
                if (cg.charged(rank) != counted) {
                    violation(out,
                              "memcg %s charge drift on tier %d: %zu "
                              "charged but %zu resident pages tagged",
                              cg.name().c_str(), rank, cg.charged(rank),
                              counted);
                }
            }
        });
    }
    return out;
}

}  // namespace harness
}  // namespace mclock
