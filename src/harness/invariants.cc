#include "harness/invariants.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

#include "pfra/lru_lists.hh"
#include "sim/memory_system.hh"
#include "sim/node.hh"
#include "sim/simulator.hh"
#include "vm/address_space.hh"
#include "vm/page.hh"

namespace mclock {
namespace harness {

namespace {

void
violation(std::vector<std::string> &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out.emplace_back(buf);
}

}  // namespace

std::vector<std::string>
collectViolations(sim::Simulator &sim)
{
    std::vector<std::string> out;
    auto &mem = sim.memory();
    const std::size_t numNodes = mem.numNodes();

    // Pass 1: walk the address space, counting residency per node.
    std::vector<std::size_t> residentPerNode(numNodes, 0);
    std::size_t resident = 0;
    sim.space().forEachPage([&](Page *pg) {
        if (!pg->resident()) {
            if (pg->onLru()) {
                violation(out,
                          "non-resident page vpn=%llu on list %d",
                          static_cast<unsigned long long>(pg->vpn()),
                          static_cast<int>(pg->list()));
            }
            return;
        }
        ++resident;
        const auto node = static_cast<std::size_t>(pg->node());
        if (node >= numNodes) {
            // Single-residency: the one node field must name a real
            // node; an out-of-range id would mean a torn placement.
            violation(out, "resident page vpn=%llu on bogus node %zu",
                      static_cast<unsigned long long>(pg->vpn()), node);
            return;
        }
        ++residentPerNode[node];
    });

    // Pass 2: per-node frame accounting and occupancy bounds.
    std::size_t onLists = 0;
    mem.forEachNode([&](sim::Node &node) {
        const auto id = static_cast<std::size_t>(node.id());
        if (node.usedFrames() > node.totalFrames()) {
            violation(out, "node %zu occupancy %zu exceeds capacity %zu",
                      id, node.usedFrames(), node.totalFrames());
        }
        if (node.usedFrames() != residentPerNode[id]) {
            violation(out,
                      "node %zu frame leak: %zu frames used but %zu "
                      "resident pages placed",
                      id, node.usedFrames(), residentPerNode[id]);
        }
        onLists += node.lists().totalPages();

        // Pass 3: list discipline — tags match, anonymity matches the
        // list family, and promote-list pages carry PagePromote (the
        // selection evidence shrink_promote_list consumes).
        for (int k = 1; k < kNumLruLists; ++k) {
            const auto kind = static_cast<LruListKind>(k);
            for (Page *pg : node.lists().list(kind)) {
                if (pg->list() != kind) {
                    violation(out,
                              "page vpn=%llu on list %d but tagged %d",
                              static_cast<unsigned long long>(pg->vpn()),
                              k, static_cast<int>(pg->list()));
                }
                if (pg->node() != node.id()) {
                    violation(out,
                              "page vpn=%llu on node %zu's list but "
                              "placed on node %d",
                              static_cast<unsigned long long>(pg->vpn()),
                              id, static_cast<int>(pg->node()));
                }
                if (kind != LruListKind::Unevictable) {
                    const bool anonList =
                        kind == LruListKind::InactiveAnon ||
                        kind == LruListKind::ActiveAnon ||
                        kind == LruListKind::PromoteAnon;
                    if (pg->isAnon() != anonList) {
                        violation(out,
                                  "page vpn=%llu anonymity mismatch on "
                                  "list %d",
                                  static_cast<unsigned long long>(
                                      pg->vpn()),
                                  k);
                    }
                }
                if (isPromoteList(kind) && !pg->promoteFlag()) {
                    violation(out,
                              "page vpn=%llu on promote list without "
                              "PagePromote set",
                              static_cast<unsigned long long>(pg->vpn()));
                }
            }
        }
    });

    // A resident page sits on exactly one list; isolated (mid-migration)
    // pages never survive to a quiescent point.
    if (onLists != resident) {
        violation(out,
                  "list membership mismatch: %zu pages on lists, %zu "
                  "resident",
                  onLists, resident);
    }
    return out;
}

}  // namespace harness
}  // namespace mclock
