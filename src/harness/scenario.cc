#include "harness/scenario.hh"

#include "harness/scenario_common.hh"

namespace mclock {
namespace harness {

ScenarioOutput
mergeRecords(const std::vector<RunUnit> &units,
             const std::vector<RunRecord> &records)
{
    ScenarioOutput out;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &rec = records[i];
        out.text += rec.text;
        for (const auto &artifact : rec.artifacts)
            out.artifacts.push_back(artifact);
        const std::string &prefix =
            i < units.size() ? units[i].name : "unit";
        for (const auto &[key, value] : rec.metrics)
            out.summary[prefix + "." + key] = value;
        for (const auto &v : rec.violations)
            out.violations.push_back(prefix + ": " + v);
        for (const auto &[key, value] : rec.vmstat) {
            out.vmstat[prefix + "." + key] = value;
            // Scenario totals over the global (non-per-node) items.
            if (key.rfind("node", 0) != 0)
                out.vmstat[key] += value;
        }
        for (const auto &[key, value] : rec.tenantMetrics)
            out.tenantMetrics[prefix + "." + key] = value;
        if (!rec.samplerCsv.empty()) {
            out.statsArtifacts.push_back(
                {prefix + "_vmstat.csv", rec.samplerCsv});
        }
        if (!rec.traceEvents.empty()) {
            std::string jsonl;
            stats::appendTraceJsonl(jsonl, rec.traceEvents, prefix);
            out.statsArtifacts.push_back(
                {prefix + "_trace.jsonl", std::move(jsonl)});
        }
    }
    return out;
}

const std::vector<Scenario> &
allScenarios()
{
    // Canonical (paper) order; golden fixtures and --list follow it.
    static const std::vector<Scenario> registry = [] {
        std::vector<Scenario> all;
        auto add = [&all](std::vector<Scenario> group) {
            for (auto &sc : group)
                all.push_back(std::move(sc));
        };
        auto trace = makeTraceScenarios();  // fig01, fig02, tab01
        auto ycsb = makeYcsbScenarios();    // fig05/08/09/10 + ablations
        auto gapbs = makeGapbsScenarios();  // fig06, fig07

        // Interleave into figure order: fig01, fig02, tab01, fig05,
        // fig06, fig07, fig08, fig09, fig10, ablations, micro.
        all.push_back(trace[0]);
        all.push_back(trace[1]);
        all.push_back(trace[2]);
        all.push_back(ycsb[0]);   // fig05
        all.push_back(gapbs[0]);  // fig06
        all.push_back(gapbs[1]);  // fig07
        all.push_back(ycsb[1]);   // fig08
        all.push_back(ycsb[2]);   // fig09
        all.push_back(ycsb[3]);   // fig10
        add({ycsb.begin() + 4, ycsb.end()});  // ablations
        add(makeTier3Scenarios());            // tier3_* (three-tier)
        add(makeFaultinjScenarios());         // faultinj_* (fault sweep)
        add(makeShardScenarios());            // shard_bigmem family
        add(makeTenantScenarios());           // tenant_* (memcg QoS)
        all.push_back(makeMicroScenario());
        return all;
    }();
    return registry;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const auto &sc : allScenarios()) {
        if (sc.name == name)
            return &sc;
    }
    return nullptr;
}

std::vector<const Scenario *>
filterScenarios(const std::string &filter)
{
    std::vector<const Scenario *> out;
    for (const auto &sc : allScenarios()) {
        if (filter.empty() || sc.name.find(filter) != std::string::npos)
            out.push_back(&sc);
    }
    return out;
}

}  // namespace harness
}  // namespace mclock
