/**
 * @file
 * Scenario model for the experiment harness.
 *
 * Every experiment (paper figure, table, or ablation) is described as
 * data: a Scenario names the workload, the policies compared, the
 * default seed, and two functions — expand(), which turns the scenario
 * into independent RunUnits (one Simulator instance each, safe to
 * execute on any thread), and reduce(), which assembles the units'
 * records into human-readable text, CSV artifacts, and a flat metric
 * summary used by the golden-run regression suite.
 *
 * Determinism contract: a unit must derive all randomness from the
 * RunContext (seed + params), must not touch global mutable state, and
 * must not perform I/O — artifacts are returned in memory and written
 * by the runner after all units complete, in registry order.
 */

#ifndef MCLOCK_HARNESS_SCENARIO_HH_
#define MCLOCK_HARNESS_SCENARIO_HH_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "stats/tracepoint.hh"

namespace mclock {
namespace harness {

/** Flat named metrics produced by one run unit (or one scenario). */
using MetricMap = std::map<std::string, double>;

/** The default context seed; scenarios keep their legacy-identical
 *  sub-seeds (workload/heatmap defaults) when it is unchanged. */
constexpr std::uint64_t kDefaultSeed = 42;

/** Options applied to one scenario execution. */
struct RunContext
{
    /** Base seed; kDefaultSeed reproduces the legacy binaries. */
    std::uint64_t seed = kDefaultSeed;

    /** Golden profile: reduced-scale parameters for regression runs. */
    bool golden = false;

    /**
     * Stats mode (--stats): run the vmstat sampler in every simulator
     * and export vmstat.csv / trace.jsonl artifacts per unit. Counters
     * themselves are always collected; this only adds the artifacts.
     */
    bool stats = false;

    /**
     * Worker threads available to scenarios that run a sharded machine
     * (--shards). Execution width only: a scenario's shard partition
     * count is fixed scenario data, so results are identical for any
     * value here — 1 (the default) runs the shards sequentially.
     */
    unsigned shards = 1;

    /** Named overrides from the CLI (--ops, --param k=v, ...). */
    std::map<std::string, std::uint64_t> params;

    /** Override lookup with default. */
    std::uint64_t
    param(const std::string &name, std::uint64_t dflt) const
    {
        auto it = params.find(name);
        return it == params.end() ? dflt : it->second;
    }

    /**
     * Seed for a scenario sub-stream. At the default base seed this is
     * exactly @p legacyDefault, so default runs are bit-identical to
     * the pre-harness binaries; any other base seed derives an
     * independent stream per @p slot (splitmix64 finalizer).
     */
    std::uint64_t
    derivedSeed(std::uint64_t slot, std::uint64_t legacyDefault) const
    {
        if (seed == kDefaultSeed)
            return legacyDefault;
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (slot + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
};

/** A file the harness should write into the output directory. */
struct Artifact
{
    std::string filename;
    std::string contents;
};

/** What one unit produced. */
struct RunRecord
{
    /** Flat metrics; keys become "<unit>.<key>" in the summary. */
    MetricMap metrics;

    /** Human-readable output, concatenated by the default reduce. */
    std::string text;

    /** CSV files owned by this unit (e.g. fig01's per-profile files). */
    std::vector<Artifact> artifacts;

    /** Invariant violations found after the run (must be empty). */
    std::vector<std::string> violations;

    /**
     * Kernel-style vmstat counter snapshot taken at the end of the run
     * ("pgscan_active" etc., plus "node<N>.<item>" for nonzero per-node
     * values). Kept separate from @ref metrics so the golden-comparable
     * summary is unchanged.
     */
    std::map<std::string, std::uint64_t> vmstat;

    /** Tracepoint events drained from the ring (stats mode only). */
    std::vector<stats::TraceEvent> traceEvents;

    /**
     * Per-tenant QoS metrics ("<tenant>.p99_latency_ns" etc.) for hosts
     * that created memory cgroups; empty on single-tenant hosts. Merged
     * into the manifest's per-scenario "tenants" object. Kept separate
     * from @ref metrics so the golden-comparable summary only carries
     * the values a scenario's reducer promotes deliberately.
     */
    MetricMap tenantMetrics;

    /** Periodic vmstat time series as CSV (stats mode only). */
    std::string samplerCsv;

    /**
     * Work counters for wall-clock benchmarking: application memory
     * operations issued and memory-visible accesses completed by this
     * unit's simulator(s) (summed when a unit runs several hosts).
     * Kept separate from @ref metrics so the golden-comparable summary
     * is unchanged.
     */
    std::uint64_t perfAppOps = 0;
    std::uint64_t perfSimAccesses = 0;
};

/** One independently executable simulation; owns its Simulator. */
struct RunUnit
{
    /** Stable name used as the metric prefix (e.g. "multiclock"). */
    std::string name;
    std::function<RunRecord(const RunContext &)> run;
};

/** Everything a scenario execution yields. */
struct ScenarioOutput
{
    std::string text;
    std::vector<Artifact> artifacts;
    /** Golden-comparable summary (union of unit metrics + derived). */
    MetricMap summary;
    std::vector<std::string> violations;

    /**
     * Merged vmstat counters: "<unit>.<item>" per unit, plus plain
     * "<item>" totals summed over units (global items only). Reduced
     * single-threaded in registry order, so the result is independent
     * of the worker count. Not part of the golden summary.
     */
    std::map<std::string, std::uint64_t> vmstat;

    /**
     * Per-unit stats artifacts (vmstat.csv / trace.jsonl); the runner
     * prefixes each filename with the scenario name when writing.
     */
    std::vector<Artifact> statsArtifacts;

    /**
     * Merged per-tenant metrics, "<unit>.<tenant>.<metric>". Surfaced
     * as the scenario's "tenants" object in run_manifest.json; not part
     * of the golden summary.
     */
    MetricMap tenantMetrics;
};

/** One registered experiment. */
struct Scenario
{
    std::string name;      ///< short id ("fig05", "ablation_llc", ...)
    std::string title;     ///< one-line description for --list
    std::string workload;  ///< workload family ("ycsb", "gapbs", ...)
    std::vector<std::string> policies;  ///< policies compared (metadata)

    /** Included in the golden regression suite (deterministic only). */
    bool goldenEligible = true;

    std::function<std::vector<RunUnit>(const RunContext &)> expand;

    /**
     * Assemble unit records (in expand order) into the final output.
     * Runs single-threaded after every unit of the scenario finished.
     */
    std::function<ScenarioOutput(const RunContext &,
                                 const std::vector<RunRecord> &)>
        reduce;
};

/**
 * Default reduce: concatenates unit texts, forwards artifacts, and
 * merges metrics as "<unit>.<metric>". Scenario reducers typically call
 * this first and then add their cross-unit table/CSV.
 */
ScenarioOutput mergeRecords(const std::vector<RunUnit> &units,
                            const std::vector<RunRecord> &records);

/** Registry: all scenarios in canonical (paper) order. */
const std::vector<Scenario> &allScenarios();

/** Find by exact name; nullptr when unknown. */
const Scenario *findScenario(const std::string &name);

/** All scenarios whose name contains @p filter (empty = all). */
std::vector<const Scenario *> filterScenarios(const std::string &filter);

}  // namespace harness
}  // namespace mclock

#endif  // MCLOCK_HARNESS_SCENARIO_HH_
