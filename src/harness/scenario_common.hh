/**
 * @file
 * Internal helpers shared by the scenario definition files. Not part of
 * the public harness API.
 */

#ifndef MCLOCK_HARNESS_SCENARIO_COMMON_HH_
#define MCLOCK_HARNESS_SCENARIO_COMMON_HH_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/invariants.hh"
#include "harness/profiles.hh"
#include "harness/scenario.hh"
#include "sim/simulator.hh"

namespace mclock {
namespace harness {

/** printf-append into a string (scenario text is built off-thread). */
inline void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

inline void
appendf(std::string &out, const char *fmt, ...)
{
    char stack[512];
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(stack, sizeof(stack), fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return;
    }
    if (static_cast<std::size_t>(n) < sizeof(stack)) {
        out.append(stack, static_cast<std::size_t>(n));
    } else {
        std::vector<char> heap(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(heap.data(), heap.size(), fmt, ap2);
        out.append(heap.data(), static_cast<std::size_t>(n));
    }
    va_end(ap2);
}

/** Wire the --stats context into a machine about to be instantiated. */
inline void
applyStatsContext(sim::MachineConfig &machine, const RunContext &ctx)
{
    machine.stats.sampler = ctx.stats;
    machine.stats.artifacts = ctx.stats;
}

/**
 * Whether workloads should use the batched (streamed) access path.
 * Default on; the perf equivalence suite sets the "legacy_access"
 * context param to force the original one-call-per-access path and
 * pin both paths byte-identical.
 */
inline bool
batchedAccessPath(const RunContext &ctx)
{
    return ctx.param("legacy_access", 0) == 0;
}

/**
 * Run the shared invariant suite (structural + counter consistency),
 * file violations on the record, and export the vmstat snapshot (plus
 * trace/sampler artifacts in stats mode).
 */
inline void
checkRunInvariants(sim::Simulator &sim, RunRecord &rec)
{
    for (auto &v : collectViolations(sim))
        rec.violations.push_back(std::move(v));
    for (auto &v : collectCounterViolations(sim))
        rec.violations.push_back(std::move(v));
    rec.vmstat = sim.vmstat().snapshot();
    rec.perfAppOps += sim.appOps();
    rec.perfSimAccesses += sim.metrics().totalAccesses();
    if (sim.config().stats.artifacts) {
        rec.traceEvents = sim.trace().events();
        if (sim.sampler())
            rec.samplerCsv = sim.sampler()->toCsv();
    }
}

/** Scenario factory groups (one per definition file). */
std::vector<Scenario> makeTraceScenarios();   // fig01, fig02, tab01
std::vector<Scenario> makeYcsbScenarios();    // fig05/08/09/10 + ablations
std::vector<Scenario> makeGapbsScenarios();   // fig06, fig07
std::vector<Scenario> makeTier3Scenarios();   // tier3_* (DRAM/CXL/PM)
std::vector<Scenario> makeFaultinjScenarios();  // faultinj_* (fault sweep)
std::vector<Scenario> makeShardScenarios();   // shard_bigmem family
std::vector<Scenario> makeTenantScenarios();  // tenant_* (memcg QoS)
Scenario makeMicroScenario();                 // micro_structures

}  // namespace harness
}  // namespace mclock

#endif  // MCLOCK_HARNESS_SCENARIO_COMMON_HH_
