/**
 * @file
 * Fault-injection scenarios: YCSB-A and GAPBS PageRank run with the
 * deterministic migration FaultInjector enabled, sweeping the injected
 * failure rate. Each unit is one (policy, rate) point; the reduce
 * builds a policy x rate table showing how throughput and promotion
 * traffic degrade as migrations start aborting.
 *
 * The sweep demonstrates graceful degradation: MULTI-CLOCK's
 * retry-with-backoff recovers transient aborts and its promotion
 * throttle parks a node whose migrations keep failing, so throughput
 * decays smoothly rather than collapsing. The injector's fixed
 * draw-count contract makes the runs comparable across rates (a higher
 * rate fails a superset of the lower rate's transactions), which
 * fault_test pins as a monotonicity property.
 */

#include <string>

#include "base/csv.hh"
#include "harness/scenario_common.hh"
#include "workloads/gapbs/driver.hh"
#include "workloads/ycsb.hh"

namespace mclock {
namespace harness {

namespace {

/** Injected failure rates swept, in percent (copy-phase). */
constexpr unsigned kFaultRates[] = {0, 10, 40};

/** Policies compared under injection (one per mechanism family). */
const std::vector<std::string> kFaultPolicies = {"multiclock", "nimble",
                                                "amp-lru"};

/**
 * Fault knobs for one sweep point. Injection is enabled even at rate 0
 * so the 0% unit exercises the full transaction/draw path and anchors
 * the sweep; the copy phase takes the headline rate and the
 * shootdown/remap phases half of it each.
 */
sim::FaultConfig
faultinjConfig(unsigned ratePct)
{
    sim::FaultConfig f;
    f.enabled = true;
    f.copyFailProb = static_cast<double>(ratePct) / 100.0;
    f.shootdownFailProb = static_cast<double>(ratePct) / 200.0;
    f.remapFailProb = static_cast<double>(ratePct) / 200.0;
    f.persistentProb = 0.1;
    return f;
}

/**
 * Golden GAPBS machine for the fault sweep: goldenGapbsMachine()'s 2 MiB
 * DRAM holds the whole golden graph, which would leave the sweep with
 * zero migrations to inject into; shrink DRAM so PageRank overflows
 * into PM and promotion traffic actually flows.
 */
sim::MachineConfig
faultinjGoldenGapbsMachine()
{
    sim::MachineConfig cfg = goldenGapbsMachine();
    cfg.nodes = {{TierKind::Dram, 512_KiB}, {TierKind::Pmem, 12_MiB}};
    return cfg;
}

/** Unit name for one sweep point ("multiclock-f10"). */
std::string
faultUnitName(const std::string &policy, unsigned ratePct)
{
    return policy + "-f" + std::to_string(ratePct);
}

/** Fault/migration counters every faultinj unit reports. */
void
addFaultMetrics(sim::Simulator &sim, RunRecord &rec)
{
    using stats::VmItem;
    const auto &vm = sim.vmstat();
    rec.metrics["promotions"] =
        static_cast<double>(sim.metrics().totalPromotions());
    rec.metrics["demotions"] =
        static_cast<double>(sim.metrics().totalDemotions());
    rec.metrics["aborts"] =
        static_cast<double>(vm.global(VmItem::PgmigrateAbort));
    rec.metrics["retries"] =
        static_cast<double>(vm.global(VmItem::PgmigrateRetry));
    rec.metrics["rollbacks"] =
        static_cast<double>(vm.global(VmItem::PgmigrateRollback));
    rec.metrics["throttles"] =
        static_cast<double>(vm.global(VmItem::PgpromoteThrottled));
    rec.metrics["promote_fail"] =
        static_cast<double>(vm.global(VmItem::PgpromoteFail));
    rec.metrics["poisoned"] =
        static_cast<double>(sim.faultInjector().poisonedPages());
}

/** Shared reduce: policy x rate table + CSV. */
ScenarioOutput
faultinjReduce(const Scenario &sc, const RunContext &ctx,
               const std::vector<RunRecord> &records, const char *metric,
               const char *metricLabel, const char *csvName)
{
    ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
    out.text.clear();
    appendf(out.text, "=== %s ===\n", sc.title.c_str());
    appendf(out.text, "%-12s %6s %10s %11s %8s %8s %9s %9s %8s\n",
            "policy", "rate%", metricLabel, "promotions", "aborts",
            "retries", "rollbacks", "throttles", "poisoned");

    CsvWriter csv;
    csv.writeHeader({"policy", "rate_pct", metric, "promotions",
                     "demotions", "aborts", "retries", "rollbacks",
                     "throttles", "promote_fail", "poisoned"});

    std::size_t i = 0;
    for (const auto &policy : kFaultPolicies) {
        for (unsigned rate : kFaultRates) {
            if (i >= records.size())
                break;
            const auto &m = records[i].metrics;
            appendf(out.text,
                    "%-12s %6u %10.1f %11.0f %8.0f %8.0f %9.0f %9.0f "
                    "%8.0f\n",
                    policy.c_str(), rate, m.at(metric),
                    m.at("promotions"), m.at("aborts"), m.at("retries"),
                    m.at("rollbacks"), m.at("throttles"),
                    m.at("poisoned"));
            csv.writeRow({policy, std::to_string(rate),
                          std::to_string(m.at(metric)),
                          std::to_string(m.at("promotions")),
                          std::to_string(m.at("demotions")),
                          std::to_string(m.at("aborts")),
                          std::to_string(m.at("retries")),
                          std::to_string(m.at("rollbacks")),
                          std::to_string(m.at("throttles")),
                          std::to_string(m.at("promote_fail")),
                          std::to_string(m.at("poisoned"))});
            ++i;
        }
    }
    appendf(out.text,
            "\nExpected: promotions fall monotonically with the injected "
            "rate; retry+throttle keep the decay graceful (no "
            "collapse at 40%%).\nwrote %s\n",
            csvName);
    out.artifacts.push_back({csvName, csv.str()});
    return out;
}

// --- YCSB-A under injected migration faults ----------------------------

Scenario
faultinjYcsbScenario()
{
    Scenario sc;
    sc.name = "faultinj_ycsb_a";
    sc.title = "YCSB-A under injected migration faults (rate sweep)";
    sc.workload = "ycsb";
    sc.policies = kFaultPolicies;
    sc.expand = [](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const auto &policy : kFaultPolicies) {
            for (unsigned rate : kFaultRates) {
                units.push_back({faultUnitName(policy, rate),
                                 [policy, rate, ctx](const RunContext &) {
                    const std::uint64_t ops =
                        ctx.param("ops", ctx.golden ? 40000 : 800000);
                    sim::MachineConfig machine = ctx.golden
                        ? goldenYcsbMachine() : ycsbMachine();
                    machine.seed = ctx.seed;
                    machine.faults = faultinjConfig(rate);
                    applyStatsContext(machine, ctx);
                    workloads::YcsbConfig ycsb = ctx.golden
                        ? goldenYcsbConfig(ops) : ycsbBenchConfig(ops);
                    ycsb.seed = ctx.derivedSeed(3, ycsb.seed);
                    ycsb.batchAccesses = batchedAccessPath(ctx);

                    RunRecord rec;
                    sim::Simulator sim(machine);
                    sim.setPolicy(policies::makePolicy(
                        policy, benchPolicyOptions()));
                    workloads::YcsbDriver driver(sim, ycsb);
                    driver.load();
                    const auto r =
                        driver.run(workloads::YcsbWorkload::A);
                    rec.metrics["kops"] =
                        r.throughputOpsPerSec() / 1e3;
                    addFaultMetrics(sim, rec);
                    checkRunInvariants(sim, rec);
                    return rec;
                }});
            }
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        return faultinjReduce(sc, ctx, records, "kops", "kops/s",
                              "faultinj_ycsb_a.csv");
    };
    return sc;
}

// --- GAPBS PageRank under injected migration faults --------------------

Scenario
faultinjPagerankScenario()
{
    Scenario sc;
    sc.name = "faultinj_pagerank";
    sc.title = "GAPBS PageRank under injected migration faults";
    sc.workload = "gapbs";
    sc.policies = kFaultPolicies;
    sc.expand = [](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const auto &policy : kFaultPolicies) {
            for (unsigned rate : kFaultRates) {
                units.push_back({faultUnitName(policy, rate),
                                 [policy, rate, ctx](const RunContext &) {
                    sim::MachineConfig machine = ctx.golden
                        ? faultinjGoldenGapbsMachine() : gapbsMachine();
                    machine.seed = ctx.seed;
                    machine.faults = faultinjConfig(rate);
                    applyStatsContext(machine, ctx);
                    workloads::gapbs::GapbsConfig gapbs = ctx.golden
                        ? goldenGapbsConfig() : gapbsBenchConfig();
                    gapbs.seed = ctx.derivedSeed(4, gapbs.seed);

                    RunRecord rec;
                    sim::Simulator sim(machine);
                    sim.setPolicy(policies::makePolicy(
                        policy, benchPolicyOptions()));
                    workloads::gapbs::GapbsDriver driver(sim, gapbs);
                    const auto r =
                        driver.run(workloads::gapbs::Kernel::PR);
                    rec.metrics["seconds"] = r.avgTrialSeconds();
                    addFaultMetrics(sim, rec);
                    checkRunInvariants(sim, rec);
                    return rec;
                }});
            }
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        return faultinjReduce(sc, ctx, records, "seconds", "seconds",
                              "faultinj_pagerank.csv");
    };
    return sc;
}

}  // namespace

std::vector<Scenario>
makeFaultinjScenarios()
{
    return {faultinjYcsbScenario(), faultinjPagerankScenario()};
}

}  // namespace harness
}  // namespace mclock
