/**
 * @file
 * Wall-clock benchmark mode for the experiment driver.
 *
 * Runs each selected scenario repeatedly on the host, measures real
 * (not simulated) time per repeat, and reports throughput as
 * application operations per second and simulated memory accesses per
 * second. The report serializes to a BENCH_<n>.json document that the
 * perf program checks in next to the golden fixtures, optionally
 * embedding a recorded baseline so the file itself documents the
 * speedup it claims.
 *
 * Benchmarking is observation-only: every repeat goes through the same
 * runScenarios() path as a normal invocation (artifacts and manifest
 * suppressed), so simulated results are byte-identical whether or not
 * --bench is given. bench_test.cc pins that contract.
 */

#ifndef MCLOCK_HARNESS_BENCHMARK_HH_
#define MCLOCK_HARNESS_BENCHMARK_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "base/json.hh"
#include "harness/runner.hh"
#include "harness/scenario.hh"

namespace mclock {
namespace harness {

/** Benchmark-mode configuration. */
struct BenchOptions
{
    unsigned repeat = 3;  ///< measured repeats per scenario (>= 1)
    unsigned warmup = 1;  ///< discarded warmup repeats per scenario
    /**
     * Worker threads inside each repeat. Benchmark timing requires 1
     * (scenarios must not compete for cores inside a timed window);
     * runBenchmark() warns and downgrades any other value. Sharded
     * scenarios still thread internally per context.shards — that is
     * the measured quantity, not a timing hazard, because each repeat
     * runs exactly one scenario.
     */
    unsigned jobs = 1;
    std::string benchId = "BENCH_8";  ///< document id ("BENCH_<pr>")
    /**
     * Optional path to a recorded baseline (the "baseline" object of a
     * previous report, or a standalone {"label", "total_seconds",
     * "scenarios": {name: seconds}} document). Embedded verbatim in the
     * output; the speedup field compares against it over the scenarios
     * present in both runs.
     */
    std::string baselinePath;
    RunContext context;
};

/** Measured outcome for one scenario. */
struct BenchScenario
{
    std::string name;
    std::size_t units = 0;
    /** Work per repeat (identical across repeats by determinism). */
    std::uint64_t appOps = 0;
    std::uint64_t simAccesses = 0;
    /** Host seconds per measured repeat, in execution order. */
    std::vector<double> wallSeconds;
    /** Golden-comparable summary of the last repeat (for contract tests). */
    MetricMap summary;
    bool clean = true;  ///< no invariant violations in any repeat

    double bestSeconds() const;
    double meanSeconds() const;
};

/** Whole-suite benchmark outcome. */
struct BenchReport
{
    std::vector<BenchScenario> scenarios;
    unsigned repeat = 0;
    unsigned warmup = 0;
    unsigned jobs = 0;

    bool
    clean() const
    {
        for (const auto &s : scenarios) {
            if (!s.clean)
                return false;
        }
        return true;
    }

    double totalBestSeconds() const;
    std::uint64_t totalAppOps() const;
    std::uint64_t totalSimAccesses() const;
};

/**
 * Benchmark @p scenarios one at a time (so repeats are not contended
 * by other scenarios' units): @c opts.warmup discarded runs, then
 * @c opts.repeat measured runs each.
 */
BenchReport runBenchmark(const std::vector<const Scenario *> &scenarios,
                         const BenchOptions &opts);

/**
 * Serialize @p report as the BENCH_<n>.json document. When
 * @p opts.baselinePath parses, the baseline is embedded and
 * "speedup_vs_baseline" is total baseline seconds / total best seconds
 * over the intersection of scenario names.
 */
Json benchReportToJson(const BenchReport &report,
                       const BenchOptions &opts);

/** Load the baseline document; returns a null Json on any failure. */
Json loadBenchBaseline(const std::string &path);

}  // namespace harness
}  // namespace mclock

#endif  // MCLOCK_HARNESS_BENCHMARK_HH_
