/**
 * @file
 * Parallel scenario runner.
 *
 * Expands the selected scenarios into run units, executes all units on
 * a fixed-size thread pool (each unit owns its Simulator, so units are
 * embarrassingly parallel), then reduces every scenario single-threaded
 * in registry order. Results are therefore bit-identical for any job
 * count, including 1.
 */

#ifndef MCLOCK_HARNESS_RUNNER_HH_
#define MCLOCK_HARNESS_RUNNER_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario.hh"

namespace mclock {
namespace harness {

/** Runner configuration. */
struct RunnerOptions
{
    unsigned jobs = 1;          ///< worker threads (0 = hardware)
    std::string outDir = ".";   ///< where artifacts + manifest land
    bool writeArtifacts = true;
    bool writeManifest = false;
    bool quiet = false;         ///< suppress scenario text on stdout
    RunContext context;
};

/** One scenario's outcome, in selection order. */
struct ScenarioResult
{
    std::string name;
    ScenarioOutput output;
    double wallSeconds = 0.0;   ///< host time spent in this scenario
    std::size_t units = 0;
    /** Unit perf counters summed (see RunRecord; not golden-compared). */
    std::uint64_t appOps = 0;
    std::uint64_t simAccesses = 0;
};

/** Whole-run outcome. */
struct RunReport
{
    std::vector<ScenarioResult> results;
    double wallSeconds = 0.0;
    bool
    clean() const
    {
        for (const auto &r : results) {
            if (!r.output.violations.empty())
                return false;
        }
        return true;
    }
};

/**
 * Execute @p scenarios under @p opts. Prints each scenario's text (in
 * order) unless quiet, writes artifacts into opts.outDir, and writes a
 * run manifest when requested.
 */
RunReport runScenarios(const std::vector<const Scenario *> &scenarios,
                       const RunnerOptions &opts);

/** Convenience: run one scenario by name (fatal if unknown). */
ScenarioResult runScenario(const std::string &name,
                           const RunnerOptions &opts);

}  // namespace harness
}  // namespace mclock

#endif  // MCLOCK_HARNESS_RUNNER_HH_
