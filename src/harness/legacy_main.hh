/**
 * @file
 * Compatibility entry point for the pre-harness bench binaries.
 *
 * Each legacy binary (fig05_ycsb_tiering, ablation_llc, ...) is now a
 * thin main that forwards to legacyMain(), which maps the historical
 * flags (--ops N, --seconds N, --window-s N, --trials N, --workload N)
 * onto the scenario's RunContext params and runs it single-threaded
 * with artifacts written to the current directory — byte-identical
 * stdout and CSV output to the original binaries.
 */

#ifndef MCLOCK_HARNESS_LEGACY_MAIN_HH_
#define MCLOCK_HARNESS_LEGACY_MAIN_HH_

namespace mclock {
namespace harness {

/** Run scenario @p name with legacy flag parsing; returns exit code. */
int legacyMain(const char *name, int argc, char **argv);

}  // namespace harness
}  // namespace mclock

#endif  // MCLOCK_HARNESS_LEGACY_MAIN_HH_
