/**
 * @file
 * Run manifest: a JSON record of what was run and under what tree
 * state, written next to the result artifacts so any CSV can be traced
 * back to the exact code and configuration that produced it.
 */

#ifndef MCLOCK_HARNESS_MANIFEST_HH_
#define MCLOCK_HARNESS_MANIFEST_HH_

#include <cstdint>
#include <string>

#include "harness/runner.hh"

namespace mclock {
namespace harness {

/**
 * Resolve the current git commit by reading .git/HEAD (no subprocess),
 * walking up from @p startDir. @return "unknown" outside a repository.
 */
std::string readGitSha(const std::string &startDir = ".");

/** FNV-1a hash of a scenario execution's configuration. */
std::uint64_t configHash(const Scenario &scenario, const RunContext &ctx);

/** Write <outDir>/run_manifest.json describing @p report. */
void writeManifest(const RunReport &report, const RunnerOptions &opts);

}  // namespace harness
}  // namespace mclock

#endif  // MCLOCK_HARNESS_MANIFEST_HH_
