/**
 * @file
 * YCSB-driven scenarios: Fig. 5 (throughput), Fig. 8 (promotion
 * volume), Fig. 9 (re-access quality), Fig. 10 (scan-interval
 * sensitivity), and the four ablations. Ported from the original bench
 * mains; default-profile output is byte-identical to the legacy
 * binaries.
 */

#include <algorithm>
#include <map>

#include "base/csv.hh"
#include "harness/scenario_common.hh"
#include "workloads/ycsb.hh"

namespace mclock {
namespace harness {

namespace {

/** Machine + workload + options for one YCSB experiment run. */
struct YcsbProfile
{
    sim::MachineConfig machine;
    workloads::YcsbConfig ycsb;
    policies::PolicyOptions opts;
};

YcsbProfile
ycsbProfile(const RunContext &ctx, std::uint64_t defaultOps,
            std::uint64_t goldenOps,
            SimTime interval = kScanInterval)
{
    const std::uint64_t ops =
        ctx.param("ops", ctx.golden ? goldenOps : defaultOps);
    YcsbProfile p;
    p.machine = ctx.golden ? goldenYcsbMachine() : ycsbMachine();
    p.machine.seed = ctx.seed;
    applyStatsContext(p.machine, ctx);
    p.ycsb = ctx.golden ? goldenYcsbConfig(ops) : ycsbBenchConfig(ops);
    p.ycsb.seed = ctx.derivedSeed(1, p.ycsb.seed);
    p.ycsb.batchAccesses = batchedAccessPath(ctx);
    p.opts = benchPolicyOptions(interval);
    return p;
}

/** Load + one workload phase under @p policy; shared unit body. */
RunRecord
runSingleWorkload(const std::string &policy, const YcsbProfile &p,
                  workloads::YcsbWorkload workload)
{
    RunRecord rec;
    sim::Simulator sim(p.machine);
    sim.setPolicy(policies::makePolicy(policy, p.opts));
    workloads::YcsbDriver driver(sim, p.ycsb);
    driver.load();
    const auto r = driver.run(workload);
    rec.metrics["kops"] = r.throughputOpsPerSec() / 1e3;
    rec.metrics["promotions"] =
        static_cast<double>(sim.metrics().totalPromotions());
    rec.metrics["demotions"] =
        static_cast<double>(sim.metrics().totalDemotions());
    rec.metrics["reaccessed"] =
        static_cast<double>(sim.metrics().totalReaccessed());
    rec.metrics["hint_faults"] =
        static_cast<double>(sim.stats().get("hint_faults"));
    rec.metrics["scanned_pages"] =
        static_cast<double>(sim.stats().get("scanned_pages"));
    rec.metrics["inline_overhead_ns"] =
        static_cast<double>(sim.stats().get("inline_overhead_ns"));
    rec.metrics["background_work_ns"] =
        static_cast<double>(sim.stats().get("background_work_ns"));
    rec.metrics["swap_outs"] =
        static_cast<double>(sim.stats().get("swap_outs"));
    const auto &windows = sim.metrics().windows();
    rec.metrics["windows"] = static_cast<double>(windows.size());
    char key[48];
    for (std::size_t w = 0; w < windows.size(); ++w) {
        std::snprintf(key, sizeof(key), "w%03zu.promotions", w);
        rec.metrics[key] = static_cast<double>(windows[w].promotions);
        std::snprintf(key, sizeof(key), "w%03zu.reaccessed", w);
        rec.metrics[key] =
            static_cast<double>(windows[w].promotedReaccessed);
    }
    checkRunInvariants(sim, rec);
    return rec;
}

constexpr const char *kSequenceWorkloads[] = {"A", "B", "C",
                                              "F", "W", "D"};

// --- Fig. 5 -------------------------------------------------------------

Scenario
fig05Scenario()
{
    Scenario sc;
    sc.name = "fig05";
    sc.title = "Fig. 5: YCSB throughput normalised to static tiering";
    sc.workload = "ycsb";
    sc.policies = policies::tieredPolicyNames();
    sc.expand = [sc](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const auto &policy : sc.policies) {
            units.push_back({policy, [policy, ctx](const RunContext &) {
                const auto p = ycsbProfile(ctx, 1200000, 60000);
                RunRecord rec;
                sim::Simulator sim(p.machine);
                sim.setPolicy(policies::makePolicy(policy, p.opts));
                workloads::YcsbDriver driver(sim, p.ycsb);
                driver.load();
                for (const auto &result : driver.runPaperSequence()) {
                    rec.metrics["tput." + result.workload] =
                        result.throughputOpsPerSec();
                }
                rec.metrics["promotions"] = static_cast<double>(
                    sim.metrics().totalPromotions());
                rec.metrics["demotions"] = static_cast<double>(
                    sim.metrics().totalDemotions());
                checkRunInvariants(sim, rec);
                return rec;
            }});
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        const auto p = ycsbProfile(ctx, 1200000, 60000);
        appendf(out.text,
                "=== Fig. 5: YCSB throughput normalised to static "
                "tiering ===\n");
        appendf(out.text,
                "records=%zu ops/workload=%llu footprint~2.5x DRAM\n",
                p.ycsb.recordCount,
                static_cast<unsigned long long>(p.ycsb.opsPerWorkload));

        CsvWriter csv;
        std::vector<std::string> header{"policy"};
        for (const auto *w : kSequenceWorkloads)
            header.push_back(w);
        csv.writeHeader(header);

        appendf(out.text, "%-12s", "policy");
        for (const auto *w : kSequenceWorkloads)
            appendf(out.text, " %8s", w);
        appendf(out.text, "\n");

        std::vector<double> baseline;
        for (std::size_t i = 0; i < records.size(); ++i) {
            const auto &policy = sc.policies[i];
            std::vector<double> tput;
            for (const auto *w : kSequenceWorkloads)
                tput.push_back(
                    records[i].metrics.at(std::string("tput.") + w));
            if (policy == "static")
                baseline = tput;
            appendf(out.text, "%-12s", policy.c_str());
            std::vector<std::string> row{policy};
            for (std::size_t j = 0; j < tput.size(); ++j) {
                const double norm =
                    baseline[j] > 0.0 ? tput[j] / baseline[j] : 0.0;
                appendf(out.text, " %8.3f", norm);
                row.push_back(std::to_string(tput[j] / baseline[j]));
            }
            appendf(out.text, "\n");
            csv.writeRow(row);
        }
        appendf(out.text,
                "\nwrote fig05_ycsb_tiering.csv (values normalised to "
                "static)\n");
        out.artifacts.push_back({"fig05_ycsb_tiering.csv", csv.str()});
        return out;
    };
    return sc;
}

// --- Fig. 8 / Fig. 9 (windowed promotion metrics) -----------------------

std::vector<RunUnit>
windowUnits(const RunContext &ctx, std::uint64_t defaultOps,
            std::uint64_t goldenOps)
{
    std::vector<RunUnit> units;
    for (const std::string policy : {"multiclock", "nimble"}) {
        units.push_back({policy, [policy, ctx, defaultOps,
                                  goldenOps](const RunContext &) {
            const auto p = ycsbProfile(ctx, defaultOps, goldenOps);
            return runSingleWorkload(policy, p,
                                     workloads::YcsbWorkload::A);
        }});
    }
    return units;
}

/** Per-window series "w000.<key>" -> vector, up to `windows`. */
std::vector<double>
windowSeries(const RunRecord &rec, const char *key)
{
    std::vector<double> out;
    const auto n =
        static_cast<std::size_t>(rec.metrics.at("windows"));
    char name[32];
    for (std::size_t w = 0; w < n; ++w) {
        std::snprintf(name, sizeof(name), "w%03zu.%s", w, key);
        out.push_back(rec.metrics.at(name));
    }
    return out;
}

Scenario
fig08Scenario()
{
    Scenario sc;
    sc.name = "fig08";
    sc.title = "Fig. 8: pages promoted per 20 s window, YCSB-A";
    sc.workload = "ycsb";
    sc.policies = {"multiclock", "nimble"};
    sc.expand = [](const RunContext &ctx) {
        return windowUnits(ctx, 4000000, 120000);
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        appendf(out.text,
                "=== Fig. 8: pages promoted per 20 s (scaled) window, "
                "YCSB-A ===\n");
        const auto mclock = windowSeries(records[0], "promotions");
        const auto nimble = windowSeries(records[1], "promotions");
        const std::size_t windows =
            std::min(mclock.size(), nimble.size());

        CsvWriter csv;
        csv.writeHeader({"window", "multiclock", "nimble"});
        appendf(out.text, "%-8s %12s %12s\n", "window", "multiclock",
                "nimble");
        std::uint64_t mcTotal = 0, nbTotal = 0;
        for (std::size_t w = 0; w < windows; ++w) {
            const auto mc = static_cast<std::uint64_t>(mclock[w]);
            const auto nb = static_cast<std::uint64_t>(nimble[w]);
            appendf(out.text, "%-8zu %12llu %12llu\n", w,
                    static_cast<unsigned long long>(mc),
                    static_cast<unsigned long long>(nb));
            csv.writeRow({std::to_string(w), std::to_string(mc),
                          std::to_string(nb)});
            mcTotal += mc;
            nbTotal += nb;
        }
        appendf(out.text, "%-8s %12llu %12llu\n", "total",
                static_cast<unsigned long long>(mcTotal),
                static_cast<unsigned long long>(nbTotal));
        appendf(out.text,
                "\nExpected shape: Nimble promotes more pages than "
                "MULTI-CLOCK.\nwrote fig08_promotions.csv\n");
        out.artifacts.push_back({"fig08_promotions.csv", csv.str()});
        return out;
    };
    return sc;
}

Scenario
fig09Scenario()
{
    Scenario sc;
    sc.name = "fig09";
    sc.title = "Fig. 9: re-access % of recently promoted pages, "
               "YCSB-A";
    sc.workload = "ycsb";
    sc.policies = {"multiclock", "nimble"};
    sc.expand = [](const RunContext &ctx) {
        return windowUnits(ctx, 4000000, 120000);
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        appendf(out.text,
                "=== Fig. 9: re-access %% of recently promoted pages "
                "per 20 s (scaled) window, YCSB-A ===\n");
        const auto mcProm = windowSeries(records[0], "promotions");
        const auto mcRe = windowSeries(records[0], "reaccessed");
        const auto nbProm = windowSeries(records[1], "promotions");
        const auto nbRe = windowSeries(records[1], "reaccessed");
        const std::size_t windows =
            std::min(mcProm.size(), nbProm.size());

        const auto pct = [](double reacc, double prom) {
            return prom > 0.0 ? 100.0 * reacc / prom : 0.0;
        };

        // The legacy "overall" row sums each policy's *full* window
        // list, not the min-truncated range shown per window.
        const auto overall = [&pct](const std::vector<double> &prom,
                                    const std::vector<double> &reacc) {
            double p = 0, r = 0;
            for (std::size_t w = 0; w < prom.size(); ++w) {
                p += prom[w];
                r += reacc[w];
            }
            return pct(r, p);
        };

        CsvWriter csv;
        csv.writeHeader({"window", "multiclock_pct", "nimble_pct"});
        appendf(out.text, "%-8s %14s %14s\n", "window",
                "multiclock(%)", "nimble(%)");
        for (std::size_t w = 0; w < windows; ++w) {
            if (mcProm[w] == 0 && nbProm[w] == 0)
                continue;
            appendf(out.text, "%-8zu %14.1f %14.1f\n", w,
                    pct(mcRe[w], mcProm[w]), pct(nbRe[w], nbProm[w]));
            csv.writeRow(
                {std::to_string(w),
                 std::to_string(pct(mcRe[w], mcProm[w])),
                 std::to_string(pct(nbRe[w], nbProm[w]))});
        }
        appendf(out.text, "%-8s %14.1f %14.1f\n", "overall",
                overall(mcProm, mcRe), overall(nbProm, nbRe));
        appendf(out.text,
                "\nExpected shape: MULTI-CLOCK's re-access %% exceeds "
                "Nimble's (paper: ~15 points).\n"
                "wrote fig09_reaccess.csv\n");
        out.artifacts.push_back({"fig09_reaccess.csv", csv.str()});
        return out;
    };
    return sc;
}

// --- Fig. 10 (scan-interval sensitivity) --------------------------------

struct IntervalPoint
{
    const char *label;
    SimTime paperValue;
};

constexpr IntervalPoint kIntervals[] = {
    {"100ms", 100_ms}, {"250ms", 250_ms}, {"500ms", 500_ms},
    {"1s", 1_s},       {"5s", 5_s},       {"60s", 60_s},
};

Scenario
fig10Scenario()
{
    Scenario sc;
    sc.name = "fig10";
    sc.title = "Fig. 10: scan-interval sensitivity, YCSB-A throughput";
    sc.workload = "ycsb";
    sc.policies = {"multiclock", "nimble"};
    sc.expand = [sc](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const auto &point : kIntervals) {
            for (const auto &policy : sc.policies) {
                const std::string name =
                    policy + "/" + point.label;
                const SimTime interval = scaledTime(point.paperValue);
                units.push_back(
                    {name, [policy, interval, ctx](const RunContext &) {
                        const auto p =
                            ycsbProfile(ctx, 1500000, 60000, interval);
                        return runSingleWorkload(
                            policy, p, workloads::YcsbWorkload::A);
                    }});
            }
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        appendf(out.text,
                "=== Fig. 10: scan-interval sensitivity, YCSB-A "
                "throughput (kops/s) ===\n");
        appendf(out.text, "%-8s %14s %14s\n", "interval", "multiclock",
                "nimble");
        CsvWriter csv;
        csv.writeHeader({"interval", "multiclock_kops", "nimble_kops"});
        for (std::size_t i = 0; i < std::size(kIntervals); ++i) {
            const double mc = records[2 * i].metrics.at("kops");
            const double nb = records[2 * i + 1].metrics.at("kops");
            appendf(out.text, "%-8s %14.1f %14.1f\n",
                    kIntervals[i].label, mc, nb);
            csv.writeRow({kIntervals[i].label, std::to_string(mc),
                          std::to_string(nb)});
        }
        appendf(out.text,
                "\n(intervals are paper-scale labels; simulated "
                "cadence is scaled by 1/%.0f)\n", kTimeScale);
        appendf(out.text, "wrote fig10_scan_interval.csv\n");
        out.artifacts.push_back({"fig10_scan_interval.csv", csv.str()});
        return out;
    };
    return sc;
}

// --- Ablations ----------------------------------------------------------

Scenario
ablationPromoteListScenario()
{
    Scenario sc;
    sc.name = "ablation_promote_list";
    sc.title = "Ablation D1: page-selection mechanism";
    sc.workload = "ycsb";
    sc.policies = {"multiclock", "nimble", "amp-lru", "amp-lfu",
                   "amp-random"};
    sc.expand = [sc](const RunContext &ctx) {
        const auto workload = static_cast<workloads::YcsbWorkload>(
            ctx.param("workload", 0));
        std::vector<RunUnit> units;
        for (const auto &policy : sc.policies) {
            units.push_back(
                {policy, [policy, workload, ctx](const RunContext &) {
                    const auto p = ycsbProfile(ctx, 1200000, 60000);
                    return runSingleWorkload(policy, p, workload);
                }});
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        const auto workload = static_cast<workloads::YcsbWorkload>(
            ctx.param("workload", 0));
        appendf(out.text,
                "=== Ablation D1: page-selection mechanism (YCSB-%s) "
                "===\n",
                workloads::ycsbWorkloadName(workload));
        appendf(out.text, "%-12s %12s %12s %12s %12s\n", "selection",
                "kops/s", "promoted", "reaccess%", "demoted");
        CsvWriter csv;
        csv.writeHeader({"selection", "kops", "promoted",
                         "reaccess_pct", "demoted"});
        for (std::size_t i = 0; i < records.size(); ++i) {
            const auto &m = records[i].metrics;
            const auto promoted =
                static_cast<std::uint64_t>(m.at("promotions"));
            const auto reaccessed =
                static_cast<std::uint64_t>(m.at("reaccessed"));
            const double pct =
                promoted ? 100.0 * static_cast<double>(reaccessed) /
                               static_cast<double>(promoted)
                         : 0.0;
            const auto demoted =
                static_cast<std::uint64_t>(m.at("demotions"));
            appendf(out.text,
                    "%-12s %12.1f %12llu %12.1f %12llu  swaps=%llu\n",
                    sc.policies[i].c_str(), m.at("kops"),
                    static_cast<unsigned long long>(promoted), pct,
                    static_cast<unsigned long long>(demoted),
                    static_cast<unsigned long long>(
                        static_cast<std::uint64_t>(
                            m.at("swap_outs"))));
            csv.writeRow({sc.policies[i], std::to_string(m.at("kops")),
                          std::to_string(promoted), std::to_string(pct),
                          std::to_string(demoted)});
        }
        appendf(out.text, "\nwrote ablation_promote_list.csv\n");
        out.artifacts.push_back(
            {"ablation_promote_list.csv", csv.str()});
        return out;
    };
    return sc;
}

Scenario
ablationTrackingCostScenario()
{
    Scenario sc;
    sc.name = "ablation_tracking_cost";
    sc.title = "Ablation D2: access-tracking mechanism cost";
    sc.workload = "ycsb";
    sc.policies = policies::tieredPolicyNames();
    sc.expand = [sc](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const auto &policy : sc.policies) {
            units.push_back({policy, [policy, ctx](const RunContext &) {
                const auto p = ycsbProfile(ctx, 1200000, 60000);
                return runSingleWorkload(policy, p,
                                         workloads::YcsbWorkload::A);
            }});
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        appendf(out.text,
                "=== Ablation D2: access-tracking mechanism cost "
                "(YCSB-A) ===\n");
        appendf(out.text, "%-12s %10s %12s %14s %16s %16s\n", "policy",
                "kops/s", "hint_faults", "scanned_pages",
                "inline_ovh(ms)", "bg_work(ms)");
        CsvWriter csv;
        csv.writeHeader({"policy", "kops", "hint_faults",
                         "scanned_pages", "inline_overhead_ms",
                         "background_work_ms"});
        for (std::size_t i = 0; i < records.size(); ++i) {
            const auto &m = records[i].metrics;
            const double inlineMs = m.at("inline_overhead_ns") / 1e6;
            const double bgMs = m.at("background_work_ns") / 1e6;
            appendf(out.text, "%-12s %10.1f %12llu %14llu %16.2f "
                              "%16.2f\n",
                    sc.policies[i].c_str(), m.at("kops"),
                    static_cast<unsigned long long>(
                        static_cast<std::uint64_t>(
                            m.at("hint_faults"))),
                    static_cast<unsigned long long>(
                        static_cast<std::uint64_t>(
                            m.at("scanned_pages"))),
                    inlineMs, bgMs);
            csv.writeRow(
                {sc.policies[i], std::to_string(m.at("kops")),
                 std::to_string(static_cast<std::uint64_t>(
                     m.at("hint_faults"))),
                 std::to_string(static_cast<std::uint64_t>(
                     m.at("scanned_pages"))),
                 std::to_string(inlineMs), std::to_string(bgMs)});
        }
        appendf(out.text,
                "\nExpected: AT-* pay hint faults + fault-path "
                "migrations inline; reference-bit policies pay only "
                "background scans.\nwrote ablation_tracking_cost.csv\n");
        out.artifacts.push_back(
            {"ablation_tracking_cost.csv", csv.str()});
        return out;
    };
    return sc;
}

struct RatioPoint
{
    const char *label;
    std::size_t dram;
    std::size_t pmem;
};

std::vector<RatioPoint>
ratioPoints(bool golden)
{
    if (golden) {
        return {{"1:2", 6_MiB, 12_MiB},
                {"1:4", 4_MiB, 16_MiB},
                {"1:8", 2_MiB, 16_MiB},
                {"1:16", 1_MiB, 16_MiB}};
    }
    return {{"1:2", 24_MiB, 48_MiB},
            {"1:4", 16_MiB, 64_MiB},
            {"1:8", 8_MiB, 64_MiB},
            {"1:16", 4_MiB, 64_MiB}};
}

Scenario
ablationRatioScenario()
{
    Scenario sc;
    sc.name = "ablation_ratio";
    sc.title = "Ablation D4: DRAM:PM capacity ratio sweep";
    sc.workload = "ycsb";
    sc.policies = {"static", "multiclock"};
    sc.expand = [sc](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const auto &r : ratioPoints(ctx.golden)) {
            for (const auto &policy : sc.policies) {
                const std::string name =
                    policy + "/" + r.label;
                units.push_back(
                    {name, [policy, r, ctx](const RunContext &) {
                        auto p = ycsbProfile(ctx, 1000000, 50000);
                        p.machine.nodes = {{TierKind::Dram, r.dram},
                                           {TierKind::Pmem, r.pmem}};
                        return runSingleWorkload(
                            policy, p, workloads::YcsbWorkload::A);
                    }});
            }
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        appendf(out.text,
                "=== Ablation D4: DRAM:PM ratio sweep (YCSB-A, "
                "fixed footprint) ===\n");
        appendf(out.text, "%-6s %14s %14s %10s\n", "ratio",
                "static(kops)", "mclock(kops)", "speedup");
        CsvWriter csv;
        csv.writeHeader({"ratio", "static_kops", "multiclock_kops",
                         "speedup"});
        const auto points = ratioPoints(ctx.golden);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const double st = records[2 * i].metrics.at("kops");
            const double mc = records[2 * i + 1].metrics.at("kops");
            appendf(out.text, "%-6s %14.1f %14.1f %10.3f\n",
                    points[i].label, st, mc, mc / st);
            csv.writeRow({points[i].label, std::to_string(st),
                          std::to_string(mc),
                          std::to_string(mc / st)});
        }
        appendf(out.text,
                "\nExpected: the dynamic-tiering advantage grows as "
                "DRAM becomes scarcer, until DRAM is too small to hold "
                "the hot set.\nwrote ablation_ratio.csv\n");
        out.artifacts.push_back({"ablation_ratio.csv", csv.str()});
        return out;
    };
    return sc;
}

struct LlcPoint
{
    const char *label;
    std::size_t bytes;
};

std::vector<LlcPoint>
llcPoints(bool golden)
{
    if (golden) {
        return {{"16KiB", 16_KiB},
                {"64KiB", 64_KiB},
                {"256KiB", 256_KiB},
                {"1MiB", 1_MiB}};
    }
    return {{"64KiB", 64_KiB},
            {"256KiB", 256_KiB},
            {"1MiB", 1_MiB},
            {"4MiB", 4_MiB}};
}

Scenario
ablationLlcScenario()
{
    Scenario sc;
    sc.name = "ablation_llc";
    sc.title = "Ablation: LLC size vs tiering benefit";
    sc.workload = "ycsb";
    sc.policies = {"static", "multiclock"};
    sc.expand = [sc](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const auto &size : llcPoints(ctx.golden)) {
            for (const auto &policy : sc.policies) {
                const std::string name =
                    policy + "/" + size.label;
                units.push_back(
                    {name, [policy, size, ctx](const RunContext &) {
                        auto p = ycsbProfile(ctx, 800000, 50000);
                        p.machine.cache.sizeBytes = size.bytes;
                        p.machine.cache.ways = 8;
                        return runSingleWorkload(
                            policy, p, workloads::YcsbWorkload::A);
                    }});
            }
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        appendf(out.text,
                "=== Ablation: LLC size vs tiering benefit (YCSB-A) "
                "===\n");
        appendf(out.text, "%-8s %14s %14s %10s\n", "LLC",
                "static(kops)", "mclock(kops)", "speedup");
        CsvWriter csv;
        csv.writeHeader({"llc", "static_kops", "multiclock_kops",
                         "speedup"});
        const auto points = llcPoints(ctx.golden);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const double st = records[2 * i].metrics.at("kops");
            const double mc = records[2 * i + 1].metrics.at("kops");
            appendf(out.text, "%-8s %14.1f %14.1f %10.3f\n",
                    points[i].label, st, mc, mc / st);
            csv.writeRow({points[i].label, std::to_string(st),
                          std::to_string(mc),
                          std::to_string(mc / st)});
        }
        appendf(out.text,
                "\nExpected: the larger the LLC relative to the hot "
                "band, the smaller the benefit of page placement.\n"
                "wrote ablation_llc.csv\n");
        out.artifacts.push_back({"ablation_llc.csv", csv.str()});
        return out;
    };
    return sc;
}

}  // namespace

std::vector<Scenario>
makeYcsbScenarios()
{
    return {fig05Scenario(),
            fig08Scenario(),
            fig09Scenario(),
            fig10Scenario(),
            ablationPromoteListScenario(),
            ablationTrackingCostScenario(),
            ablationRatioScenario(),
            ablationLlcScenario()};
}

}  // namespace harness
}  // namespace mclock
