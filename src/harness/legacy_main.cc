#include "harness/legacy_main.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/runner.hh"

namespace mclock {
namespace harness {

int
legacyMain(const char *name, int argc, char **argv)
{
    const Scenario *sc = findScenario(name);
    if (!sc) {
        std::fprintf(stderr, "unknown scenario '%s'\n", name);
        return 1;
    }

    RunnerOptions opts;
    opts.jobs = 1;
    opts.outDir = ".";

    // Legacy flags are all "--key value" integer pairs; forward them
    // as params (the scenarios look up "ops", "seconds", ...).
    for (int i = 1; i + 1 < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--", 2) != 0)
            continue;
        char *end = nullptr;
        const unsigned long long value =
            std::strtoull(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || *end != '\0')
            continue;  // not an integer operand; ignore like argValue()
        opts.context.params[arg + 2] =
            static_cast<std::uint64_t>(value);
        ++i;
    }

    const ScenarioResult result = runScenario(name, opts);
    return result.output.violations.empty() ? 0 : 1;
}

}  // namespace harness
}  // namespace mclock
