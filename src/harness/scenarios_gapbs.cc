/**
 * @file
 * Graph-workload scenarios: Fig. 6 (GAPBS kernels under each tiering
 * policy) and Fig. 7 (Memory-mode comparison), plus the host-timed
 * micro_structures scenario. Ported from the original bench mains;
 * default-profile output is byte-identical to the legacy binaries.
 */

#include <chrono>
#include <map>
#include <memory>

#include "base/csv.hh"
#include "base/rng.hh"
#include "harness/scenario_common.hh"
#include "mem/cache.hh"
#include "pfra/lru_lists.hh"
#include "pfra/vmscan.hh"
#include "vm/address_space.hh"
#include "vm/page.hh"
#include "workloads/gapbs/driver.hh"
#include "workloads/ycsb.hh"
#include "workloads/zipf.hh"

namespace mclock {
namespace harness {

namespace {

using workloads::gapbs::Kernel;

const std::vector<Kernel> kKernels{Kernel::BFS, Kernel::SSSP,
                                   Kernel::PR,  Kernel::CC,
                                   Kernel::BC,  Kernel::TC};

workloads::gapbs::GapbsConfig
fig06Config(const RunContext &ctx)
{
    auto cfg = ctx.golden ? goldenGapbsConfig() : gapbsBenchConfig();
    cfg.trials = static_cast<unsigned>(ctx.param("trials", cfg.trials));
    return cfg;
}

// --- Fig. 6 -------------------------------------------------------------

Scenario
fig06Scenario()
{
    Scenario sc;
    sc.name = "fig06";
    sc.title = "Fig. 6: GAPBS execution time normalised to static "
               "tiering";
    sc.workload = "gapbs";
    sc.policies = policies::tieredPolicyNames();
    sc.expand = [sc](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const auto &policy : sc.policies) {
            for (Kernel k : kKernels) {
                const std::string name =
                    policy + "/" + workloads::gapbs::kernelName(k);
                units.push_back(
                    {name, [policy, k, ctx](const RunContext &) {
                        const auto cfg = fig06Config(ctx);
                        sim::MachineConfig machine = ctx.golden
                                                         ? goldenGapbsMachine()
                                                         : gapbsMachine();
                        machine.seed = ctx.seed;
                        applyStatsContext(machine, ctx);
                        RunRecord rec;
                        sim::Simulator sim(machine);
                        sim.setPolicy(policies::makePolicy(
                            policy, benchPolicyOptions()));
                        workloads::gapbs::GapbsDriver driver(sim, cfg);
                        const auto r = driver.run(k);
                        rec.metrics["seconds"] = r.avgTrialSeconds();
                        checkRunInvariants(sim, rec);
                        return rec;
                    }});
            }
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        const auto cfg = fig06Config(ctx);
        appendf(out.text,
                "=== Fig. 6: GAPBS avg execution time per trial, "
                "normalised to static tiering (lower is better) ===\n");
        appendf(out.text, "kron scale=%u degree=%u trials=%u\n",
                cfg.scale, cfg.degree, cfg.trials);
        appendf(out.text, "%-12s", "policy");
        for (Kernel k : kKernels)
            appendf(out.text, " %8s", workloads::gapbs::kernelName(k));
        appendf(out.text, "\n");

        CsvWriter csv;
        std::vector<std::string> header{"policy"};
        for (Kernel k : kKernels)
            header.push_back(workloads::gapbs::kernelName(k));
        csv.writeHeader(header);

        std::map<std::size_t, double> baseline;
        for (std::size_t p = 0; p < sc.policies.size(); ++p) {
            appendf(out.text, "%-12s", sc.policies[p].c_str());
            std::vector<std::string> row{sc.policies[p]};
            for (std::size_t k = 0; k < kKernels.size(); ++k) {
                const double secs =
                    records[p * kKernels.size() + k].metrics.at(
                        "seconds");
                if (sc.policies[p] == "static")
                    baseline[k] = secs;
                const double norm = secs / baseline[k];
                appendf(out.text, " %8.3f", norm);
                row.push_back(std::to_string(norm));
            }
            appendf(out.text, "\n");
            csv.writeRow(row);
        }
        appendf(out.text,
                "\nwrote fig06_gapbs_tiering.csv (execution time "
                "normalised to static)\n");
        out.artifacts.push_back({"fig06_gapbs_tiering.csv", csv.str()});
        return out;
    };
    return sc;
}

// --- Fig. 7 -------------------------------------------------------------

/** The three memory organisations compared in Fig. 7. */
struct Fig07Profiles
{
    sim::MachineConfig tiered;   ///< DRAM+PM, OS-managed
    sim::MachineConfig pmOnly;   ///< PM only; DRAM is the HW cache
    sim::MachineConfig gTiered;  ///< GAPBS-sized tiered machine
    sim::MachineConfig gPm;      ///< GAPBS-sized PM-only machine
    workloads::YcsbConfig ycsb;
    workloads::gapbs::GapbsConfig pr;
    policies::PolicyOptions opts;   ///< YCSB options (dramCache set)
    policies::PolicyOptions gOpts;  ///< GAPBS options (dramCache set)
};

Fig07Profiles
fig07Profiles(const RunContext &ctx)
{
    Fig07Profiles p;
    const std::uint64_t ops =
        ctx.param("ops", ctx.golden ? 40000 : 1200000);
    if (ctx.golden) {
        p.tiered.nodes = {{TierKind::Dram, 4_MiB},
                          {TierKind::Pmem, 24_MiB}};
        p.tiered.cache.sizeBytes = 64_KiB;
        p.tiered.metricsWindow = 20_ms;
        p.pmOnly = p.tiered;
        p.pmOnly.nodes = {{TierKind::Pmem, 24_MiB}};
        p.ycsb.recordCount = 16000;  // ~16 MiB items vs 4 MiB DRAM
        p.gTiered = goldenGapbsMachine();
        p.gTiered.nodes = {{TierKind::Dram, 2_MiB},
                           {TierKind::Pmem, 12_MiB}};
        p.gPm = p.gTiered;
        p.gPm.nodes = {{TierKind::Pmem, 12_MiB}};
        p.pr = goldenGapbsConfig();
        p.pr.prIters = 4;
    } else {
        p.tiered = memModeTieredMachine();
        p.pmOnly = memModePmMachine();
        // Workload sized ~4x DRAM (paper: Memory-mode uses all DRAM as
        // cache, so a competitive comparison needs footprint >> cache).
        p.ycsb.recordCount = 60000;  // ~64 MiB items vs 16 MiB DRAM
        p.gTiered = gapbsMachine();
        p.gTiered.nodes = {{TierKind::Dram, 8_MiB},
                           {TierKind::Pmem, 48_MiB}};
        p.gPm = p.gTiered;
        p.gPm.nodes = {{TierKind::Pmem, 48_MiB}};
        p.pr.scale = 16;  // footprint ~4x the 8 MiB DRAM-equivalent
        p.pr.degree = 20;
        p.pr.trials = 2;
        p.pr.prIters = 6;
    }
    p.ycsb.valueBytes = 1024;
    p.ycsb.opsPerWorkload = ops;
    p.ycsb.seed = ctx.derivedSeed(1, p.ycsb.seed);
    p.ycsb.batchAccesses = batchedAccessPath(ctx);
    p.tiered.seed = p.pmOnly.seed = ctx.seed;
    p.gTiered.seed = p.gPm.seed = ctx.seed;
    applyStatsContext(p.tiered, ctx);
    applyStatsContext(p.pmOnly, ctx);
    applyStatsContext(p.gTiered, ctx);
    applyStatsContext(p.gPm, ctx);
    p.opts = benchPolicyOptions();
    p.opts.dramCacheBytes = p.tiered.tierBytes(TierKind::Dram);
    p.gOpts = benchPolicyOptions();
    p.gOpts.dramCacheBytes = p.gTiered.tierBytes(TierKind::Dram);
    return p;
}

constexpr const char *kFig07Policies[] = {"static", "multiclock",
                                          "memory-mode"};

Scenario
fig07Scenario()
{
    Scenario sc;
    sc.name = "fig07";
    sc.title = "Fig. 7: Memory-mode comparison (YCSB + PageRank)";
    sc.workload = "ycsb+gapbs";
    sc.policies = {"static", "multiclock", "memory-mode"};
    sc.expand = [](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const std::string policy : kFig07Policies) {
            units.push_back({"ycsb_a/" + policy,
                             [policy, ctx](const RunContext &) {
                const auto p = fig07Profiles(ctx);
                const auto &machine =
                    policy == "memory-mode" ? p.pmOnly : p.tiered;
                RunRecord rec;
                sim::Simulator sim(machine);
                sim.setPolicy(policies::makePolicy(policy, p.opts));
                workloads::YcsbDriver driver(sim, p.ycsb);
                driver.load();
                std::map<std::string, double> tput;
                for (const auto &r : driver.runPaperSequence())
                    tput[r.workload] = r.throughputOpsPerSec();
                rec.metrics["tput_a"] = tput.at("A");
                checkRunInvariants(sim, rec);
                return rec;
            }});
        }
        for (const std::string policy : kFig07Policies) {
            units.push_back({"pagerank/" + policy,
                             [policy, ctx](const RunContext &) {
                const auto p = fig07Profiles(ctx);
                const auto &machine =
                    policy == "memory-mode" ? p.gPm : p.gTiered;
                RunRecord rec;
                sim::Simulator sim(machine);
                sim.setPolicy(policies::makePolicy(policy, p.gOpts));
                workloads::gapbs::GapbsDriver driver(sim, p.pr);
                rec.metrics["seconds"] =
                    driver.run(Kernel::PR).avgTrialSeconds();
                checkRunInvariants(sim, rec);
                return rec;
            }});
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        const double staticTput = records[0].metrics.at("tput_a");
        const double mclockTput = records[1].metrics.at("tput_a");
        const double mmTput = records[2].metrics.at("tput_a");
        const double staticPr = records[3].metrics.at("seconds");
        const double mclockPr = records[4].metrics.at("seconds");
        const double mmPr = records[5].metrics.at("seconds");

        appendf(out.text,
                "=== Fig. 7(a): YCSB-A throughput, workload ~4x DRAM, "
                "normalised to static ===\n");
        appendf(out.text, "%-12s %8.3f\n", "static", 1.0);
        appendf(out.text, "%-12s %8.3f\n", "multiclock",
                mclockTput / staticTput);
        appendf(out.text, "%-12s %8.3f\n", "memory-mode",
                mmTput / staticTput);

        appendf(out.text,
                "\n=== Fig. 7(b): PageRank execution time, normalised "
                "to static (lower is better) ===\n");
        appendf(out.text, "%-12s %8.3f\n", "static", 1.0);
        appendf(out.text, "%-12s %8.3f\n", "multiclock",
                mclockPr / staticPr);
        appendf(out.text, "%-12s %8.3f\n", "memory-mode",
                mmPr / staticPr);

        CsvWriter csv;
        csv.writeHeader({"experiment", "static", "multiclock",
                         "memory_mode"});
        csv.writeRow({"ycsb_a_norm_tput", "1.0",
                      std::to_string(mclockTput / staticTput),
                      std::to_string(mmTput / staticTput)});
        csv.writeRow({"pagerank_norm_time", "1.0",
                      std::to_string(mclockPr / staticPr),
                      std::to_string(mmPr / staticPr)});
        appendf(out.text, "\nwrote fig07_memory_mode.csv\n");
        out.artifacts.push_back({"fig07_memory_mode.csv", csv.str()});
        return out;
    };
    return sc;
}

// --- micro_structures ---------------------------------------------------

/** Host-time a loop body; returns ns per iteration. */
template <typename F>
double
nsPerOp(std::uint64_t iters, F &&body)
{
    // mclock-lint: wall-clock-ok(host-timing diagnostic; not simulated state)
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i)
        body(i);
    // mclock-lint: wall-clock-ok(host-timing diagnostic; not simulated state)
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(iters);
}

}  // namespace

Scenario
makeMicroScenario()
{
    Scenario sc;
    sc.name = "micro_structures";
    sc.title = "Microbenchmarks: hot data structures (host ns/op)";
    sc.workload = "micro";
    sc.policies = {};
    sc.goldenEligible = false;  // host-timed, inherently nondeterministic
    sc.expand = [](const RunContext &ctx) {
        std::vector<RunUnit> units;
        units.push_back({"timings", [ctx](const RunContext &) {
            RunRecord rec;
            volatile std::uint64_t sink = 0;

            {
                AddressSpace space;
                pfra::NodeLists lists;
                std::vector<std::unique_ptr<Page>> pages;
                for (int i = 0; i < 1024; ++i) {
                    pages.push_back(
                        std::make_unique<Page>(&space, i, true));
                    lists.add(pages.back().get(),
                              LruListKind::InactiveAnon);
                }
                rec.metrics["lru_list_move_ns"] =
                    nsPerOp(1u << 18, [&](std::uint64_t i) {
                        Page *pg = pages[i & 1023].get();
                        lists.moveTo(pg, LruListKind::ActiveAnon);
                        lists.moveTo(pg, LruListKind::InactiveAnon);
                    });
            }

            {
                AddressSpace space;
                pfra::NodeLists lists;
                std::vector<std::unique_ptr<Page>> pages;
                const std::size_t n = 1024;
                for (std::size_t i = 0; i < n; ++i) {
                    pages.push_back(
                        std::make_unique<Page>(&space, i, true));
                    lists.add(pages.back().get(),
                              LruListKind::ActiveAnon);
                }
                Rng rng(ctx.seed);
                rec.metrics["clock_scan_pass_ns"] =
                    nsPerOp(256, [&](std::uint64_t) {
                        for (std::size_t i = 0; i < n / 3; ++i)
                            pages[rng.nextRange(n)]->setPteReferenced(
                                true);
                        sink = sink +
                               pfra::shrinkActiveList(lists, true, n)
                                   .scanned;
                        auto &inactive =
                            lists.list(LruListKind::InactiveAnon);
                        while (Page *pg = inactive.back())
                            lists.moveTo(pg, LruListKind::ActiveAnon);
                    });
            }

            {
                CacheConfig cfg;
                cfg.sizeBytes = 1_MiB;
                CacheModel cache(cfg);
                Rng rng(ctx.seed + 1);
                rec.metrics["cache_access_ns"] =
                    nsPerOp(1u << 18, [&](std::uint64_t) {
                        sink = sink +
                               cache.access(rng.nextRange(64_MiB),
                                            false).hit;
                    });
            }

            {
                workloads::ZipfianGenerator zipf(1u << 20);
                Rng rng(ctx.seed + 2);
                rec.metrics["zipf_next_ns"] =
                    nsPerOp(1u << 18, [&](std::uint64_t) {
                        sink = sink + zipf.next(rng);
                    });
            }

            {
                sim::MachineConfig cfg = sim::benchMachine();
                cfg.seed = ctx.seed;
                sim::Simulator sim(cfg);
                sim.setPolicy(policies::makePolicy("multiclock"));
                const std::size_t pages = 4096;
                const Vaddr base = sim.mmap(pages * kPageSize);
                for (std::size_t i = 0; i < pages; ++i)
                    sim.write(base + i * kPageSize);
                Rng rng(ctx.seed + 3);
                rec.metrics["sim_access_path_ns"] =
                    nsPerOp(1u << 16, [&](std::uint64_t) {
                        const Vaddr va =
                            base + rng.nextRange(pages) * kPageSize +
                            (rng.next64() & 0xfc0);
                        sim.read(va, 8);
                    });
            }

            {
                sim::MachineConfig cfg = sim::benchMachine();
                cfg.seed = ctx.seed;
                sim::Simulator sim(cfg);
                sim.setPolicy(policies::makePolicy("static"));
                const Vaddr base = sim.mmap(kPageSize);
                sim.write(base);
                Page *pg = sim.space().lookup(pageNumOf(base));
                sim.policy().onPageFreed(pg);  // isolate
                rec.metrics["migration_round_trip_ns"] =
                    nsPerOp(1u << 14, [&](std::uint64_t) {
                        sim.demotePage(
                            pg, sim::Simulator::ChargeMode::Background);
                        sim.promotePage(
                            pg, sim::Simulator::ChargeMode::Background);
                    });
            }

            (void)sink;
            return rec;
        }});
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        appendf(out.text,
                "=== Microbenchmarks: hot data structures (host time) "
                "===\n");
        appendf(out.text, "%-24s %12s\n", "benchmark", "ns/op");
        for (const auto &[key, value] : records[0].metrics) {
            appendf(out.text, "%-24s %12.1f\n", key.c_str(), value);
        }
        appendf(out.text,
                "\n(host-timed; see the micro_structures binary for "
                "the full google-benchmark suite)\n");
        return out;
    };
    return sc;
}

std::vector<Scenario>
makeGapbsScenarios()
{
    return {fig06Scenario(), fig07Scenario()};
}

}  // namespace harness
}  // namespace mclock
