/**
 * @file
 * Multi-tenant QoS scenarios: memory-cgroup isolation on a sharded KV
 * host (sim::ShardedSimulator, 4 shards; every shard hosts the same
 * tenant mix and owns a shard-local MemCgroupManager, so all quota
 * state is worker-width independent by construction).
 *
 * Two members:
 *  - tenant_noisy_neighbor: a latency-sensitive zipfian KV tenant (the
 *    victim) sharing each shard with a footprint-heavy scanning tenant
 *    whose popularity churns every epoch (the thrasher). Three units
 *    compare the victim's exact p99 access latency
 *      baseline  — victim alone,
 *      isolated  — thrasher under a DRAM cap + promotion quota, victim
 *                  under memory.low protection,
 *      shared    — both tenants unconstrained (accounting only).
 *    The figure of merit: isolation keeps the victim's p99 at the
 *    baseline value while the shared host degrades it.
 *  - tenant_churn: tenant arrival/departure waves over-committing the
 *    host, exercising capped allocation fallback, limit-triggered
 *    demotion cascades, swap pressure, and full teardown (unmap with
 *    swapped-out pages — the slot-release path). Charges must return
 *    to zero after the last departure.
 *
 * Both scenarios are golden-eligible: the shard count is scenario data
 * and `--shards N` only picks the worker width, which by the sharded
 * determinism contract never changes results.
 */

#include <map>
#include <memory>
#include <string>

#include "base/csv.hh"
#include "base/rng.hh"
#include "harness/scenario_common.hh"
#include "sim/sharded.hh"
#include "vm/memcg.hh"
#include "workloads/kvstore.hh"
#include "workloads/zipf.hh"

namespace mclock {
namespace harness {

namespace {

/** Fixed semantic partition count (see file comment). */
constexpr unsigned kTenantShards = 4;

/** Exact latency histogram merged over shards. */
using LatencyHist = std::map<SimTime, std::uint64_t>;

/** p99 of a merged histogram, same rule as MemCgroup::p99Latency. */
SimTime
histP99(const LatencyHist &hist)
{
    std::uint64_t total = 0;
    for (const auto &[lat, count] : hist)
        total += count;
    if (total == 0)
        return 0;
    const std::uint64_t need = (total * 99 + 99) / 100;
    std::uint64_t cum = 0;
    for (const auto &[lat, count] : hist) {
        cum += count;
        if (cum >= need)
            return lat;
    }
    return hist.rbegin()->first;
}

/** Merge one tenant's shard-local histogram into @p into. */
void
mergeHist(LatencyHist &into, const MemCgroup &cg)
{
    for (const auto &[lat, count] : cg.latencyHist())
        into[lat] += count;
}

// --- tenant_noisy_neighbor -------------------------------------------------

/** Which tenants a noisy-neighbor unit hosts and how they are limited. */
enum class TenantMix
{
    Baseline,  ///< victim alone, unconstrained
    Isolated,  ///< victim + thrasher, caps/quota/low protection on
    Shared,    ///< victim + thrasher, accounting only
};

const std::vector<std::string> kNoisyUnits = {"baseline", "isolated",
                                              "shared"};

/**
 * Whole-host machine. Per shard: 2 MiB DRAM / 8 MiB PM golden — the
 * victim (~0.7 MiB) fits in DRAM with room to spare, the thrasher
 * (~3.2 MiB) cannot.
 */
sim::MachineConfig
tenantMachineWhole(const RunContext &ctx)
{
    sim::MachineConfig cfg;
    if (ctx.golden) {
        cfg.nodes = {{TierKind::Dram, 8_MiB}, {TierKind::Pmem, 32_MiB}};
    } else {
        cfg.nodes = {{TierKind::Dram, 16_MiB},
                     {TierKind::Pmem, 64_MiB}};
    }
    cfg.cache.sizeBytes = 32_KiB;
    cfg.cache.ways = 8;
    cfg.metricsWindow = ctx.golden ? 20_ms : kMetricsWindow;
    cfg.seed = ctx.seed;
    applyStatsContext(cfg, ctx);
    return cfg;
}

std::uint64_t
victimRecords(const RunContext &ctx)
{
    return ctx.param("victim_records", ctx.golden ? 600 : 1200);
}

std::uint64_t
thrasherRecords(const RunContext &ctx)
{
    return ctx.param("thrasher_records", ctx.golden ? 3000 : 6000);
}

std::uint64_t
tenantEpochs(const RunContext &ctx)
{
    return ctx.param("epochs", ctx.golden ? 4 : 8);
}

std::uint64_t
victimOpsPerEpoch(const RunContext &ctx)
{
    return ctx.param("victim_ops", ctx.golden ? 6000 : 24000);
}

std::uint64_t
thrasherOpsPerEpoch(const RunContext &ctx)
{
    return ctx.param("thrasher_ops", ctx.golden ? 9000 : 36000);
}

/** One shard's tenants: cgroups, stores, and request generators. */
struct TenantShard
{
    MemCgroupId victimId = kRootMemcg;
    MemCgroupId thrasherId = kRootMemcg;
    std::unique_ptr<workloads::KvStore> victim;
    std::unique_ptr<workloads::KvStore> thrasher;
    Rng victimRng{0};
    Rng thrasherRng{0};
    std::unique_ptr<workloads::ScrambledZipfianGenerator> victimZipf;
    std::unique_ptr<workloads::ScrambledZipfianGenerator> thrasherZipf;
};

/** Build one shard's tenant mix (coordinator thread, before run()). */
TenantShard
makeTenantShard(sim::Simulator &sim, TenantMix mix, const RunContext &ctx,
                unsigned s)
{
    TenantShard t;

    // Victim limits: memory.low covers the whole working set in the
    // isolated mix, so global reclaim never touches its pages while
    // the thrasher has anything unprotected resident.
    MemCgroupLimits victimLimits;
    if (mix == TenantMix::Isolated)
        victimLimits.lowPages = {320};
    t.victimId = sim.memcg().create("victim", victimLimits);

    workloads::KvStoreConfig kv;
    kv.hashBuckets = 1u << 12;
    kv.batchAccesses = batchedAccessPath(ctx);
    kv.memcg = t.victimId;
    t.victim = std::make_unique<workloads::KvStore>(sim, kv);
    t.victimRng = Rng(ctx.derivedSeed(32 + s, 0xfeed5eed00ull + s));
    t.victimZipf = std::make_unique<workloads::ScrambledZipfianGenerator>(
        victimRecords(ctx));

    if (mix == TenantMix::Baseline)
        return t;

    // Thrasher limits: in the isolated mix a hard DRAM cap plus a
    // small per-epoch promotion quota; in the shared mix nothing — the
    // cgroup exists purely so its latencies/charges are observable.
    MemCgroupLimits thrasherLimits;
    if (mix == TenantMix::Isolated) {
        thrasherLimits.maxPages = {96};
        thrasherLimits.promoteQuantum = 8;
    }
    t.thrasherId = sim.memcg().create("thrasher", thrasherLimits);

    kv.memcg = t.thrasherId;
    t.thrasher = std::make_unique<workloads::KvStore>(sim, kv);
    t.thrasherRng = Rng(ctx.derivedSeed(48 + s, 0xfade5eed00ull + s));
    t.thrasherZipf =
        std::make_unique<workloads::ScrambledZipfianGenerator>(
            thrasherRecords(ctx));
    return t;
}

RunRecord
runNoisyUnit(TenantMix mix, const RunContext &ctx)
{
    constexpr std::size_t kValueBytes = 1024;
    const std::uint64_t vRecords = victimRecords(ctx);
    const std::uint64_t tRecords = thrasherRecords(ctx);
    const std::uint64_t epochs = tenantEpochs(ctx);
    const std::uint64_t vOps = victimOpsPerEpoch(ctx);
    const std::uint64_t tOps = thrasherOpsPerEpoch(ctx);

    sim::ShardOptions opts;
    opts.shards = kTenantShards;
    opts.workers = ctx.shards;

    sim::ShardedSimulator host(tenantMachineWhole(ctx), opts);
    std::vector<TenantShard> tenants;
    for (unsigned s = 0; s < host.shards(); ++s) {
        host.shard(s).setPolicy(
            policies::makePolicy("multiclock", benchPolicyOptions()));
        tenants.push_back(
            makeTenantShard(host.shard(s), mix, ctx, s));
    }

    host.run([&](sim::Simulator &, unsigned s, std::uint64_t epoch) {
        TenantShard &t = tenants[s];
        if (epoch == 0) {
            // Load phase: victim first (born in DRAM), then the
            // thrasher spills past the DRAM watermark exactly as a
            // late-arriving bulk tenant would.
            for (std::uint64_t k = 0; k < vRecords; ++k)
                t.victim->put(k, kValueBytes);
            if (t.thrasher) {
                for (std::uint64_t k = 0; k < tRecords; ++k)
                    t.thrasher->put(k, kValueBytes);
            }
            return true;
        }
        // Request epochs. The victim runs a stable zipfian YCSB-A
        // mix; the thrasher's popularity churns every epoch (rotating
        // key offset), so it keeps manufacturing new promotion
        // candidates — the noisy-neighbor pressure under test.
        for (std::uint64_t i = 0; i < vOps; ++i) {
            const std::uint64_t key = t.victimZipf->next(t.victimRng);
            if (t.victimRng.nextRange(100) < 50)
                t.victim->get(key);
            else
                t.victim->put(key, kValueBytes);
        }
        if (t.thrasher) {
            const std::uint64_t churn = (epoch - 1) * 797;
            for (std::uint64_t i = 0; i < tOps; ++i) {
                const std::uint64_t key =
                    (t.thrasherZipf->next(t.thrasherRng) + churn) %
                    tRecords;
                if (t.thrasherRng.nextRange(100) < 50)
                    t.thrasher->get(key);
                else
                    t.thrasher->put(key, kValueBytes);
            }
        }
        return epoch < epochs;
    });

    RunRecord rec;
    const sim::Metrics merged = host.mergedMetrics();
    const stats::VmStat vmstat = host.mergedVmstat();

    // Exact cross-shard percentiles: merge the per-shard histograms
    // (one MemCgroupManager per shard) before taking p99.
    LatencyHist victimHist, thrasherHist;
    std::uint64_t victimAccesses = 0, thrasherAccesses = 0;
    double victimLatSum = 0.0;
    for (unsigned s = 0; s < host.shards(); ++s) {
        sim::Simulator &sim = host.shard(s);
        const TenantShard &t = tenants[s];
        if (const MemCgroup *cg = sim.memcg().find(t.victimId)) {
            mergeHist(victimHist, *cg);
            victimAccesses += cg->accesses();
            victimLatSum +=
                cg->meanLatency() * static_cast<double>(cg->accesses());
        }
        if (const MemCgroup *cg = sim.memcg().find(t.thrasherId)) {
            mergeHist(thrasherHist, *cg);
            thrasherAccesses += cg->accesses();
        }
    }

    const double victimP99 = static_cast<double>(histP99(victimHist));
    rec.metrics["victim_p99_ns"] = victimP99;
    rec.metrics["victim_mean_ns"] =
        victimAccesses == 0
            ? 0.0
            : victimLatSum / static_cast<double>(victimAccesses);
    rec.metrics["victim_accesses"] =
        static_cast<double>(victimAccesses);
    rec.metrics["thrasher_p99_ns"] =
        static_cast<double>(histP99(thrasherHist));
    rec.metrics["thrasher_accesses"] =
        static_cast<double>(thrasherAccesses);
    rec.metrics["promotions"] =
        static_cast<double>(merged.totalPromotions());
    rec.metrics["demotions"] =
        static_cast<double>(merged.totalDemotions());
    rec.metrics["tenant_demotions"] = static_cast<double>(
        vmstat.global(stats::VmItem::PgtenantDemote));
    rec.metrics["promote_deferred"] = static_cast<double>(
        vmstat.global(stats::VmItem::PgtenantPromoteDeferred));
    rec.metrics["alloc_fallbacks"] = static_cast<double>(
        vmstat.global(stats::VmItem::PgtenantAllocFallback));
    rec.metrics["limit_reclaims"] = static_cast<double>(
        vmstat.global(stats::VmItem::MemcgLimitReclaim));

    rec.tenantMetrics["victim.p99_latency_ns"] = victimP99;
    rec.tenantMetrics["victim.mean_latency_ns"] =
        rec.metrics["victim_mean_ns"];
    rec.tenantMetrics["victim.accesses"] =
        static_cast<double>(victimAccesses);
    if (thrasherAccesses > 0) {
        rec.tenantMetrics["thrasher.p99_latency_ns"] =
            rec.metrics["thrasher_p99_ns"];
        rec.tenantMetrics["thrasher.accesses"] =
            static_cast<double>(thrasherAccesses);
    }

    for (unsigned s = 0; s < host.shards(); ++s) {
        sim::Simulator &sim = host.shard(s);
        for (auto &v : collectViolations(sim))
            rec.violations.push_back("shard" + std::to_string(s) +
                                     ": " + std::move(v));
        for (auto &v : collectCounterViolations(sim))
            rec.violations.push_back("shard" + std::to_string(s) +
                                     ": " + std::move(v));
    }
    rec.vmstat = vmstat.snapshot();
    rec.perfAppOps = host.totalAppOps();
    rec.perfSimAccesses = merged.totalAccesses();
    if (ctx.stats)
        rec.traceEvents = host.trace().events();
    return rec;
}

Scenario
noisyNeighborScenario()
{
    Scenario sc;
    sc.name = "tenant_noisy_neighbor";
    sc.title = "Tenant isolation vs. a churning noisy neighbor";
    sc.workload = "kvstore";
    sc.policies = {"multiclock"};
    sc.goldenEligible = true;
    sc.expand = [](const RunContext &ctx) {
        std::vector<RunUnit> units;
        const TenantMix mixes[] = {TenantMix::Baseline,
                                   TenantMix::Isolated,
                                   TenantMix::Shared};
        for (std::size_t i = 0; i < kNoisyUnits.size(); ++i) {
            const TenantMix mix = mixes[i];
            units.push_back({kNoisyUnits[i],
                             [mix, ctx](const RunContext &) {
                return runNoisyUnit(mix, ctx);
            }});
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        appendf(out.text, "=== %s ===\n", sc.title.c_str());
        appendf(out.text,
                "%u shards; victim p99 is exact (merged discrete "
                "histograms).\n",
                kTenantShards);
        appendf(out.text, "%-10s %14s %14s %11s %10s %9s %9s\n", "mix",
                "victim_p99_ns", "victim_mean", "promotions",
                "demotions", "deferred", "reclaims");

        CsvWriter csv;
        csv.writeHeader({"mix", "victim_p99_ns", "victim_mean_ns",
                         "victim_accesses", "thrasher_p99_ns",
                         "promotions", "demotions", "tenant_demotions",
                         "promote_deferred", "alloc_fallbacks",
                         "limit_reclaims"});
        for (std::size_t i = 0;
             i < records.size() && i < kNoisyUnits.size(); ++i) {
            const auto &m = records[i].metrics;
            appendf(out.text,
                    "%-10s %14.0f %14.1f %11.0f %10.0f %9.0f %9.0f\n",
                    kNoisyUnits[i].c_str(), m.at("victim_p99_ns"),
                    m.at("victim_mean_ns"), m.at("promotions"),
                    m.at("demotions"), m.at("promote_deferred"),
                    m.at("limit_reclaims"));
            csv.writeRow({kNoisyUnits[i],
                          std::to_string(m.at("victim_p99_ns")),
                          std::to_string(m.at("victim_mean_ns")),
                          std::to_string(m.at("victim_accesses")),
                          std::to_string(m.at("thrasher_p99_ns")),
                          std::to_string(m.at("promotions")),
                          std::to_string(m.at("demotions")),
                          std::to_string(m.at("tenant_demotions")),
                          std::to_string(m.at("promote_deferred")),
                          std::to_string(m.at("alloc_fallbacks")),
                          std::to_string(m.at("limit_reclaims"))});
        }

        // The scenario's figure of merit, pinned in the golden
        // summary: isolation holds the victim's p99 at baseline
        // (ratio 1.0) while the shared host lets the thrasher move it.
        if (records.size() == kNoisyUnits.size()) {
            const double base =
                records[0].metrics.at("victim_p99_ns");
            const double iso = records[1].metrics.at("victim_p99_ns");
            const double shared =
                records[2].metrics.at("victim_p99_ns");
            if (base > 0.0) {
                out.summary["victim_p99_ratio_isolated"] = iso / base;
                out.summary["victim_p99_ratio_shared"] = shared / base;
                appendf(out.text,
                        "victim p99 vs baseline: isolated %.3fx, "
                        "shared %.3fx\n",
                        iso / base, shared / base);
            }
        }
        appendf(out.text, "wrote %s.csv\n", sc.name.c_str());
        out.artifacts.push_back({sc.name + ".csv", csv.str()});
        return out;
    };
    return sc;
}

// --- tenant_churn ----------------------------------------------------------

const std::vector<std::string> kChurnUnits = {"multiclock", "static"};

/** Arrival waves: tenant w arrives at epoch w, lives kTenantLife. */
constexpr std::uint64_t kChurnWaves = 4;
constexpr std::uint64_t kTenantLife = 3;

/**
 * Whole-host machine for the churn waves: per shard 1 MiB DRAM / 2 MiB
 * PM and ample swap. Three concurrent 1.5 MiB tenants over-commit the
 * 3 MiB of memory, forcing demotion cascades into swap; departures
 * then tear regions down with slots still held.
 */
sim::MachineConfig
churnMachineWhole(const RunContext &ctx)
{
    sim::MachineConfig cfg;
    cfg.nodes = {{TierKind::Dram, 4_MiB}, {TierKind::Pmem, 8_MiB}};
    cfg.swapPages = 16384;
    cfg.cache.sizeBytes = 32_KiB;
    cfg.cache.ways = 8;
    cfg.metricsWindow = ctx.golden ? 20_ms : kMetricsWindow;
    cfg.seed = ctx.seed;
    applyStatsContext(cfg, ctx);
    return cfg;
}

std::uint64_t
churnTenantPages(const RunContext &ctx)
{
    return ctx.param("tenant_pages", 384);
}

std::uint64_t
churnSweeps(const RunContext &ctx)
{
    return ctx.param("sweeps", ctx.golden ? 2 : 4);
}

/** One live tenant's shard-local state. */
struct ChurnTenant
{
    MemCgroupId id = kRootMemcg;
    Vaddr region = 0;
    std::uint64_t arrival = 0;
    bool departed = false;
};

RunRecord
runChurnUnit(const std::string &policy, const RunContext &ctx)
{
    const std::uint64_t pages = churnTenantPages(ctx);
    const std::uint64_t sweeps = churnSweeps(ctx);
    const std::uint64_t lastEpoch = kChurnWaves - 1 + kTenantLife;

    sim::ShardOptions opts;
    opts.shards = kTenantShards;
    opts.workers = ctx.shards;

    sim::ShardedSimulator host(churnMachineWhole(ctx), opts);
    std::vector<std::vector<ChurnTenant>> waves(host.shards());
    std::vector<Rng> rngs;
    for (unsigned s = 0; s < host.shards(); ++s) {
        host.shard(s).setPolicy(
            policies::makePolicy(policy, benchPolicyOptions()));
        rngs.emplace_back(ctx.derivedSeed(64 + s, 0xc0ffee5eed00ull + s));
    }

    host.run([&](sim::Simulator &sim, unsigned s, std::uint64_t epoch) {
        auto &tenants = waves[s];
        Rng &rng = rngs[s];

        // Departure first: wave w leaves at the start of epoch
        // w + kTenantLife, pages and swap slots and all — charges must
        // drop with the region.
        for (auto &t : tenants) {
            if (!t.departed && epoch >= t.arrival + kTenantLife) {
                sim.unmapRegion(t.region);
                t.departed = true;
            }
        }

        // Arrival: one capped tenant per wave epoch. Even waves get a
        // partial DRAM cap (relieved by per-cgroup reclaim); odd waves
        // are DRAM-excluded batch tenants (cap 0), so every fault must
        // take the allocation-fallback path into PM.
        if (epoch < kChurnWaves) {
            ChurnTenant t;
            t.arrival = epoch;
            MemCgroupLimits limits;
            limits.maxPages = {epoch % 2 == 0 ? 128u : 0u};
            limits.lowPages = {64};
            limits.promoteQuantum = 16;
            t.id = sim.memcg().create(
                "wave" + std::to_string(epoch), limits);
            t.region = sim.mmap(pages * kPageSize, /*anon=*/true,
                                "tenant-heap", t.id);
            tenants.push_back(t);
        }

        // Each live tenant sweeps its heap: a strided write pass per
        // sweep plus a sprinkle of random reads, enough to keep its
        // resident set referenced and the fault path busy.
        for (const auto &t : tenants) {
            if (t.departed)
                continue;
            for (std::uint64_t pass = 0; pass < sweeps; ++pass) {
                for (std::uint64_t p = 0; p < pages; ++p)
                    sim.write(t.region + p * kPageSize, 8);
                for (std::uint64_t i = 0; i < pages / 4; ++i) {
                    sim.read(t.region +
                                 rng.nextRange(pages) * kPageSize,
                             8);
                }
            }
        }
        return epoch < lastEpoch;
    });

    RunRecord rec;
    const sim::Metrics merged = host.mergedMetrics();
    const stats::VmStat vmstat = host.mergedVmstat();

    // Every tenant departed; a nonzero residue is a charge leak (the
    // invariant walk below would flag it too, but the golden pins it).
    double leaked = 0.0;
    std::uint64_t slotReleases = 0;
    for (unsigned s = 0; s < host.shards(); ++s) {
        host.shard(s).memcg().forEach([&](const MemCgroup &cg) {
            leaked += static_cast<double>(cg.chargedTotal());
        });
        slotReleases += host.shard(s).swap().slotReleases();
    }
    rec.metrics["leaked_charges"] = leaked;
    rec.metrics["slot_releases"] = static_cast<double>(slotReleases);
    rec.metrics["promotions"] =
        static_cast<double>(merged.totalPromotions());
    rec.metrics["demotions"] =
        static_cast<double>(merged.totalDemotions());
    rec.metrics["swap_outs"] = static_cast<double>(
        vmstat.global(stats::VmItem::Pswpout));
    rec.metrics["alloc_fallbacks"] = static_cast<double>(
        vmstat.global(stats::VmItem::PgtenantAllocFallback));
    rec.metrics["limit_reclaims"] = static_cast<double>(
        vmstat.global(stats::VmItem::MemcgLimitReclaim));
    rec.metrics["promote_deferred"] = static_cast<double>(
        vmstat.global(stats::VmItem::PgtenantPromoteDeferred));
    rec.metrics["epochs"] = static_cast<double>(host.epochs());

    for (unsigned s = 0; s < host.shards(); ++s) {
        sim::Simulator &sim = host.shard(s);
        for (auto &v : collectViolations(sim))
            rec.violations.push_back("shard" + std::to_string(s) +
                                     ": " + std::move(v));
        for (auto &v : collectCounterViolations(sim))
            rec.violations.push_back("shard" + std::to_string(s) +
                                     ": " + std::move(v));
    }
    rec.vmstat = vmstat.snapshot();
    rec.perfAppOps = host.totalAppOps();
    rec.perfSimAccesses = merged.totalAccesses();
    if (ctx.stats)
        rec.traceEvents = host.trace().events();
    return rec;
}

Scenario
churnScenario()
{
    Scenario sc;
    sc.name = "tenant_churn";
    sc.title = "Tenant arrival/departure waves under caps and swap";
    sc.workload = "synthetic";
    sc.policies = kChurnUnits;
    sc.goldenEligible = true;
    sc.expand = [](const RunContext &ctx) {
        std::vector<RunUnit> units;
        for (const auto &policy : kChurnUnits) {
            units.push_back({policy, [policy, ctx](const RunContext &) {
                return runChurnUnit(policy, ctx);
            }});
        }
        return units;
    };
    sc.reduce = [sc](const RunContext &ctx,
                     const std::vector<RunRecord> &records) {
        ScenarioOutput out = mergeRecords(sc.expand(ctx), records);
        out.text.clear();
        appendf(out.text, "=== %s ===\n", sc.title.c_str());
        appendf(out.text,
                "%llu waves x %llu-epoch lifetimes over %u shards\n",
                static_cast<unsigned long long>(kChurnWaves),
                static_cast<unsigned long long>(kTenantLife),
                kTenantShards);
        appendf(out.text, "%-12s %9s %10s %9s %10s %9s %8s\n", "policy",
                "swap_outs", "fallbacks", "reclaims", "demotions",
                "releases", "leaked");
        for (std::size_t i = 0;
             i < records.size() && i < kChurnUnits.size(); ++i) {
            const auto &m = records[i].metrics;
            appendf(out.text,
                    "%-12s %9.0f %10.0f %9.0f %10.0f %9.0f %8.0f\n",
                    kChurnUnits[i].c_str(), m.at("swap_outs"),
                    m.at("alloc_fallbacks"), m.at("limit_reclaims"),
                    m.at("demotions"), m.at("slot_releases"),
                    m.at("leaked_charges"));
        }
        return out;
    };
    return sc;
}

}  // namespace

std::vector<Scenario>
makeTenantScenarios()
{
    return {noisyNeighborScenario(), churnScenario()};
}

}  // namespace harness
}  // namespace mclock
