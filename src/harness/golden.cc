#include "harness/golden.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/json.hh"
#include "base/logging.hh"

#ifndef MCLOCK_GOLDEN_DIR
#define MCLOCK_GOLDEN_DIR "tests/golden"
#endif

namespace mclock {
namespace harness {

std::string
defaultGoldenDir()
{
    return MCLOCK_GOLDEN_DIR;
}

std::string
goldenPath(const std::string &dir, const std::string &scenario)
{
    return dir + "/" + scenario + ".json";
}

bool
loadGolden(const std::string &path, GoldenFile &out, std::string *err)
{
    std::ifstream f(path);
    if (!f) {
        if (err)
            *err = "cannot open '" + path + "'";
        return false;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    std::string parseErr;
    const Json doc = Json::parse(buf.str(), &parseErr);
    if (!doc.isObject()) {
        if (err)
            *err = "malformed golden file '" + path + "': " + parseErr;
        return false;
    }
    out.scenario = doc["scenario"].asString();
    out.seed = doc["seed"].isNumber()
                   ? static_cast<std::uint64_t>(doc["seed"].asNumber())
                   : kDefaultSeed;
    out.tolerance = doc["tolerance"].isNumber()
                        ? doc["tolerance"].asNumber()
                        : kGoldenDefaultTolerance;
    out.metrics.clear();
    if (doc["metrics"].isObject()) {
        for (const auto &[key, value] : doc["metrics"].asObject()) {
            if (value.isNumber())
                out.metrics[key] = value.asNumber();
        }
    }
    return true;
}

void
saveGolden(const std::string &path, const GoldenFile &golden)
{
    Json metrics{Json::Object{}};
    for (const auto &[key, value] : golden.metrics)
        metrics.set(key, Json(value));

    Json doc{Json::Object{}};
    doc.set("scenario", golden.scenario);
    doc.set("seed", static_cast<double>(golden.seed));
    doc.set("tolerance", golden.tolerance);
    doc.set("metrics", std::move(metrics));

    std::ofstream f(path);
    if (!f)
        MCLOCK_FATAL("cannot write golden file '%s'", path.c_str());
    f << doc.dump(2) << "\n";
}

std::vector<std::string>
compareGolden(const GoldenFile &golden, const MetricMap &fresh)
{
    std::vector<std::string> out;
    char buf[256];
    for (const auto &[key, expected] : golden.metrics) {
        auto it = fresh.find(key);
        if (it == fresh.end()) {
            out.push_back("missing metric '" + key + "'");
            continue;
        }
        const double actual = it->second;
        const double slack =
            golden.tolerance * std::max(1.0, std::fabs(expected));
        if (std::fabs(actual - expected) > slack) {
            std::snprintf(buf, sizeof(buf),
                          "metric '%s': expected %.17g, got %.17g "
                          "(tolerance %.3g)",
                          key.c_str(), expected, actual,
                          golden.tolerance);
            out.emplace_back(buf);
        }
    }
    for (const auto &[key, value] : fresh) {
        (void)value;
        if (!golden.metrics.count(key)) {
            out.push_back("unexpected new metric '" + key +
                          "' (regenerate with --update-golden)");
        }
    }
    return out;
}

RunContext
goldenContext()
{
    RunContext ctx;
    ctx.seed = kDefaultSeed;
    ctx.golden = true;
    return ctx;
}

std::vector<std::string>
goldenScenarioNames()
{
    std::vector<std::string> names;
    for (const auto &sc : allScenarios()) {
        if (sc.goldenEligible)
            names.push_back(sc.name);
    }
    return names;
}

}  // namespace harness
}  // namespace mclock
