#include "harness/runner.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <queue>
#include <thread>

#include "base/logging.hh"
#include "base/sync.hh"
#include "harness/manifest.hh"

namespace mclock {
namespace harness {

namespace {

/**
 * Fixed-size pool draining a closed work queue. All queue/counter
 * state is guarded by mu_ and statically checked (base/sync.hh):
 * every access outside the lock is a compile error under
 * -Wthread-safety, so the lock scopes below are the whole story.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned workers)
    {
        for (unsigned i = 0; i < workers; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            base::MutexLock lock(mu_);
            closed_ = true;
        }
        cv_.notifyAll();
        for (auto &t : threads_)
            t.join();
    }

    void
    submit(std::function<void()> task) MCLOCK_EXCLUDES(mu_)
    {
        {
            base::MutexLock lock(mu_);
            queue_.push(std::move(task));
            ++pending_;
        }
        cv_.notifyOne();
    }

    /** Block until every submitted task has finished. */
    void
    drain() MCLOCK_EXCLUDES(mu_)
    {
        base::MutexLock lock(mu_);
        while (pending_ != 0)
            done_.wait(mu_);
    }

  private:
    void
    workerLoop() MCLOCK_EXCLUDES(mu_)
    {
        for (;;) {
            std::function<void()> task;
            {
                base::MutexLock lock(mu_);
                while (!closed_ && queue_.empty())
                    cv_.wait(mu_);
                if (queue_.empty())
                    return;  // closed and drained
                task = std::move(queue_.front());
                queue_.pop();
            }
            task();
            {
                base::MutexLock lock(mu_);
                if (--pending_ == 0)
                    done_.notifyAll();
            }
        }
    }

    base::Mutex mu_;
    base::CondVar cv_;    ///< work available (or pool closed)
    base::CondVar done_;  ///< pending_ hit zero
    std::queue<std::function<void()>> queue_ MCLOCK_GUARDED_BY(mu_);
    std::size_t pending_ MCLOCK_GUARDED_BY(mu_) = 0;
    bool closed_ MCLOCK_GUARDED_BY(mu_) = false;
    std::vector<std::thread> threads_;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    // Host-time measurement only (wall_seconds in reports); never
    // feeds simulated state.
    // mclock-lint: wall-clock-ok(observation-only wall_seconds metric)
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace

RunReport
runScenarios(const std::vector<const Scenario *> &scenarios,
             const RunnerOptions &opts)
{
    // mclock-lint: wall-clock-ok(observation-only wall_seconds metric)
    const auto runStart = std::chrono::steady_clock::now();

    unsigned jobs = opts.jobs;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());

    // Expand everything up front so units from different scenarios
    // share the pool (the slowest scenario no longer serializes).
    struct Expanded
    {
        const Scenario *scenario;
        std::vector<RunUnit> units;
        std::vector<RunRecord> records;
        std::chrono::steady_clock::time_point start;
        double wallSeconds = 0.0;
    };
    std::vector<Expanded> expanded;
    expanded.reserve(scenarios.size());
    for (const Scenario *sc : scenarios) {
        Expanded e;
        e.scenario = sc;
        e.units = sc->expand(opts.context);
        e.records.resize(e.units.size());
        expanded.push_back(std::move(e));
    }

    {
        ThreadPool pool(jobs);
        for (auto &e : expanded) {
            // mclock-lint: wall-clock-ok(per-scenario wall_seconds)
            e.start = std::chrono::steady_clock::now();
            for (std::size_t u = 0; u < e.units.size(); ++u) {
                RunUnit *unit = &e.units[u];
                RunRecord *slot = &e.records[u];
                const RunContext *ctx = &opts.context;
                pool.submit([unit, slot, ctx] {
                    *slot = unit->run(*ctx);
                });
            }
        }
        pool.drain();
    }

    RunReport report;
    for (auto &e : expanded) {
        ScenarioResult result;
        result.name = e.scenario->name;
        result.units = e.units.size();
        for (const auto &rec : e.records) {
            result.appOps += rec.perfAppOps;
            result.simAccesses += rec.perfSimAccesses;
        }
        result.output = e.scenario->reduce(opts.context, e.records);
        result.wallSeconds = secondsSince(e.start);
        if (!opts.quiet) {
            std::fputs(result.output.text.c_str(), stdout);
            std::fflush(stdout);
        }
        report.results.push_back(std::move(result));
    }

    if (opts.writeArtifacts) {
        std::error_code ec;
        std::filesystem::create_directories(opts.outDir, ec);
        auto writeFile = [&](const std::filesystem::path &path,
                             const std::string &contents) {
            std::ofstream f(path);
            if (!f) {
                MCLOCK_FATAL("cannot write artifact '%s'",
                             path.string().c_str());
            }
            f << contents;
        };
        for (const auto &r : report.results) {
            for (const auto &a : r.output.artifacts) {
                writeFile(std::filesystem::path(opts.outDir) / a.filename,
                          a.contents);
            }
            // Stats-mode artifacts are named per unit; namespace them by
            // scenario so a multi-scenario --stats run cannot collide.
            for (const auto &a : r.output.statsArtifacts) {
                // '/' appears in compound unit names (fig06's
                // "policy/kernel"); flatten for the filesystem.
                std::string name = r.name + "_" + a.filename;
                for (char &c : name) {
                    if (c == '/')
                        c = '_';
                }
                writeFile(std::filesystem::path(opts.outDir) / name,
                          a.contents);
            }
        }
    }

    for (const auto &r : report.results) {
        for (const auto &v : r.output.violations) {
            std::fprintf(stderr, "INVARIANT VIOLATION [%s] %s\n",
                         r.name.c_str(), v.c_str());
        }
    }

    report.wallSeconds = secondsSince(runStart);
    if (opts.writeManifest)
        writeManifest(report, opts);
    return report;
}

ScenarioResult
runScenario(const std::string &name, const RunnerOptions &opts)
{
    const Scenario *sc = findScenario(name);
    if (!sc)
        MCLOCK_FATAL("unknown scenario '%s'", name.c_str());
    RunReport report = runScenarios({sc}, opts);
    return std::move(report.results.front());
}

}  // namespace harness
}  // namespace mclock
