/**
 * @file
 * Shared machine/workload profiles for the figure-reproduction
 * experiments (previously bench/bench_common.hh; moved into the
 * library so the harness, the thin legacy bench mains, and the golden
 * regression tests all draw from one definition).
 *
 * Scaling discipline (documented in DESIGN.md / EXPERIMENTS.md):
 *  - capacities are scaled ~1000x below the paper's testbed, keeping
 *    the footprint:DRAM ratio of each experiment;
 *  - daemon cadence and the 20 s metric windows are scaled by
 *    kTimeScale = 250 so the (promotion lag : hot-set drift) ratio
 *    matches the paper's runs;
 *  - reported intervals/windows are labelled with their *paper-scale*
 *    values (e.g. "1 s" means the scaled 4 ms cadence).
 *
 * The golden* variants are smaller still: pinned-seed regression
 * profiles sized to finish in well under a second per simulation while
 * exercising the same transitions (promote-list selection, demotion
 * under pressure, LLC filtering).
 */

#ifndef MCLOCK_HARNESS_PROFILES_HH_
#define MCLOCK_HARNESS_PROFILES_HH_

#include <cstdint>

#include "base/units.hh"
#include "policies/factory.hh"
#include "sim/machine.hh"
#include "workloads/gapbs/driver.hh"
#include "workloads/ycsb.hh"

namespace mclock {
namespace harness {

/** Cadence/window scale relative to the paper (see file comment). */
constexpr double kTimeScale = 250.0;

/** Paper's 1 s kpromoted interval, scaled. */
constexpr SimTime kScanInterval = 4_ms;

/** Paper's 20 s metric window, scaled. */
constexpr SimTime kMetricsWindow = 80_ms;

/** Convert a paper-scale time to simulation cadence. */
inline SimTime
scaledTime(SimTime paperTime)
{
    const auto t = static_cast<SimTime>(
        static_cast<double>(paperTime) / kTimeScale);
    return t == 0 ? 1 : t;
}

/** Machine for the YCSB experiments (Figs. 5, 8, 9, 10). */
inline sim::MachineConfig
ycsbMachine()
{
    sim::MachineConfig cfg;
    // PM sized with headroom for workload D's dataset growth (the
    // paper's 512 GB PM dwarfed D's inserts; 64 MiB would overflow).
    cfg.nodes = {{TierKind::Dram, 16_MiB}, {TierKind::Pmem, 96_MiB}};
    // Scaled with the footprint: the testbed's LLC covers ~0.01% of the
    // workload; anything bigger here would absorb the whole hot band.
    cfg.cache.sizeBytes = 64_KiB;
    cfg.cache.ways = 8;
    cfg.metricsWindow = kMetricsWindow;
    return cfg;
}

/** Machine for the GAPBS experiments (Fig. 6). */
inline sim::MachineConfig
gapbsMachine()
{
    sim::MachineConfig cfg;
    cfg.nodes = {{TierKind::Dram, 8_MiB}, {TierKind::Pmem, 32_MiB}};
    cfg.cache.sizeBytes = 256_KiB;
    cfg.metricsWindow = kMetricsWindow;
    return cfg;
}

/** Tiered machine for the Memory-mode comparison (Fig. 7). */
inline sim::MachineConfig
memModeTieredMachine()
{
    sim::MachineConfig cfg;
    cfg.nodes = {{TierKind::Dram, 16_MiB}, {TierKind::Pmem, 96_MiB}};
    cfg.cache.sizeBytes = 1_MiB;
    cfg.metricsWindow = kMetricsWindow;
    return cfg;
}

/** PM-only machine for Memory-mode itself (DRAM is the cache). */
inline sim::MachineConfig
memModePmMachine()
{
    sim::MachineConfig cfg;
    cfg.nodes = {{TierKind::Pmem, 96_MiB}};
    cfg.cache.sizeBytes = 1_MiB;
    cfg.metricsWindow = kMetricsWindow;
    return cfg;
}

/** Policy options with the scaled cadence (paper defaults otherwise). */
inline policies::PolicyOptions
benchPolicyOptions(SimTime interval = kScanInterval)
{
    policies::PolicyOptions opts;
    opts.scanInterval = interval;
    // Scan budget sized so a full CLOCK pass over the PM lists takes a
    // few wakes (the paper's 1024 at testbed scale covers a similarly
    // small fraction of much longer lists per wake).
    opts.nrScan = 2048;
    // AutoNUMA poisoning budget: one full pass over the footprint every
    // ~2.5 simulated seconds (trap overhead moderate; AT's losses come
    // from fault-path migration decisions, as on the testbed).
    opts.poisonPagesPerSec = 131072.0;
    return opts;
}

/** YCSB configuration for Fig. 5/8/9/10: footprint ~2.5x DRAM. */
inline workloads::YcsbConfig
ycsbBenchConfig(std::uint64_t ops)
{
    workloads::YcsbConfig cfg;
    // ~38 MiB of items vs 16 MiB DRAM; 1 KB records (the YCSB default)
    // give ~4 records per page, preserving page-level access skew.
    cfg.recordCount = 36000;
    cfg.valueBytes = 1024;
    cfg.opsPerWorkload = ops;
    return cfg;
}

/** GAPBS configuration for Fig. 6: footprint > DRAM. */
inline workloads::gapbs::GapbsConfig
gapbsBenchConfig()
{
    workloads::gapbs::GapbsConfig cfg;
    cfg.scale = 16;    // 64k vertices
    cfg.degree = 24;   // ~1.5M undirected edges -> ~15 MiB CSR
    cfg.trials = 2;
    cfg.prIters = 8;
    cfg.bcSources = 2;
    cfg.tcScale = 13;
    cfg.tcDegree = 10;
    return cfg;
}

// --- Golden (regression) profiles ---------------------------------------

/**
 * Golden YCSB machine: same 1:4-ish tier shape, ~4x smaller, with a
 * short metrics window so the windowed figures still produce several
 * windows at regression scale.
 */
inline sim::MachineConfig
goldenYcsbMachine()
{
    sim::MachineConfig cfg;
    cfg.nodes = {{TierKind::Dram, 4_MiB}, {TierKind::Pmem, 24_MiB}};
    cfg.cache.sizeBytes = 32_KiB;
    cfg.cache.ways = 8;
    cfg.metricsWindow = 20_ms;
    return cfg;
}

/** Golden YCSB workload: footprint ~2.4x the golden DRAM. */
inline workloads::YcsbConfig
goldenYcsbConfig(std::uint64_t ops)
{
    workloads::YcsbConfig cfg;
    cfg.recordCount = 9600;   // ~10 MiB vs 4 MiB DRAM
    cfg.valueBytes = 1024;
    cfg.opsPerWorkload = ops;
    return cfg;
}

/** Golden GAPBS machine. */
inline sim::MachineConfig
goldenGapbsMachine()
{
    sim::MachineConfig cfg;
    cfg.nodes = {{TierKind::Dram, 2_MiB}, {TierKind::Pmem, 8_MiB}};
    cfg.cache.sizeBytes = 64_KiB;
    cfg.metricsWindow = 20_ms;
    return cfg;
}

/** Golden GAPBS graph: ~4k vertices, one trial. */
inline workloads::gapbs::GapbsConfig
goldenGapbsConfig()
{
    workloads::gapbs::GapbsConfig cfg;
    cfg.scale = 12;
    cfg.degree = 12;
    cfg.trials = 1;
    cfg.prIters = 4;
    cfg.bcSources = 1;
    cfg.tcScale = 10;
    cfg.tcDegree = 8;
    return cfg;
}

// --- Three-tier (DRAM/CXL/PM) profiles ----------------------------------

/**
 * YCSB machine for the tier3_* scenarios: the three-tier timing table
 * from sim::paperMachineThreeTier() with node capacities sized so the
 * YCSB footprint overflows DRAM+CXL into PM (accesses reach all three
 * tiers).
 */
inline sim::MachineConfig
tier3YcsbMachine()
{
    sim::MachineConfig cfg = sim::paperMachineThreeTier();
    cfg.nodes = {{0, 8_MiB}, {1, 16_MiB}, {2, 96_MiB}};
    cfg.cache.sizeBytes = 64_KiB;
    cfg.cache.ways = 8;
    cfg.metricsWindow = kMetricsWindow;
    return cfg;
}

/** GAPBS machine for tier3_pagerank. */
inline sim::MachineConfig
tier3GapbsMachine()
{
    sim::MachineConfig cfg = sim::paperMachineThreeTier();
    cfg.nodes = {{0, 4_MiB}, {1, 8_MiB}, {2, 32_MiB}};
    cfg.cache.sizeBytes = 256_KiB;
    cfg.metricsWindow = kMetricsWindow;
    return cfg;
}

/** Golden three-tier YCSB machine (~4x smaller, short windows). */
inline sim::MachineConfig
goldenTier3YcsbMachine()
{
    sim::MachineConfig cfg = sim::paperMachineThreeTier();
    cfg.nodes = {{0, 2_MiB}, {1, 4_MiB}, {2, 24_MiB}};
    cfg.cache.sizeBytes = 32_KiB;
    cfg.cache.ways = 8;
    cfg.metricsWindow = 20_ms;
    return cfg;
}

/**
 * Golden three-tier GAPBS machine. DRAM+CXL deliberately hold less
 * than the golden graph (~0.6 MiB CSR + properties) so PageRank
 * exercises all three tiers even at regression scale.
 */
inline sim::MachineConfig
goldenTier3GapbsMachine()
{
    sim::MachineConfig cfg = sim::paperMachineThreeTier();
    cfg.nodes = {{0, 128_KiB}, {1, 256_KiB}, {2, 12_MiB}};
    cfg.cache.sizeBytes = 64_KiB;
    cfg.metricsWindow = 20_ms;
    return cfg;
}

}  // namespace harness
}  // namespace mclock

#endif  // MCLOCK_HARNESS_PROFILES_HH_
