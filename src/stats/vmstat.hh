/**
 * @file
 * Kernel-style /proc/vmstat counters for one simulated host.
 *
 * Every tiering-relevant event (scans, promotions, demotions, steals,
 * faults, swap traffic, daemon wakeups) increments one monotonic
 * counter, attributed both globally and to the NUMA node where the
 * event happened — mirroring /proc/vmstat and the per-node
 * /sys/devices/system/node/nodeN/vmstat files the paper's evaluation
 * (Figs. 5-10) is built on.
 *
 * Counters are plain uint64 adds on a per-Simulator instance: no
 * locking, no global state, so harness run units stay embarrassingly
 * parallel and jobs-count independent. Counters never charge simulated
 * time; instrumenting a code path cannot change simulation results.
 *
 * That "no locking" contract is statically checked: counter state is
 * guarded by a zero-cost single-owner ThreadRole (base/sync.hh) —
 * exactly one thread (the owning Simulator's driver, or the sharded
 * coordinator after a join barrier) touches an instance at a time.
 */

#ifndef MCLOCK_STATS_VMSTAT_HH_
#define MCLOCK_STATS_VMSTAT_HH_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/sync.hh"
#include "base/types.hh"

namespace mclock {
namespace stats {

/**
 * The vmstat item taxonomy. Names follow mm/vmstat.c where an analogue
 * exists; MULTI-CLOCK-specific items (promote-list traffic) follow the
 * same naming scheme.
 */
enum class VmItem : std::uint8_t {
    PgscanActive,      ///< pages examined on an active list
    PgscanInactive,    ///< pages examined on an inactive list
    PgscanPromote,     ///< pages examined on a promote list
    PgpromoteSuccess,  ///< upward migrations completed
    PgpromoteFail,     ///< upward migrations attempted and failed
    PgpromoteSelected, ///< pages moved onto a promote list
    Pgdemote,          ///< downward migrations completed
    PgdemoteFail,      ///< downward migrations attempted and failed
    Pgexchange,        ///< two-sided page exchanges (Nimble)
    Pgsteal,           ///< pages reclaimed to block storage
    Pgactivate,        ///< inactive -> active list moves
    Pgdeactivate,      ///< active -> inactive list moves
    Pgrotated,         ///< second-chance rotations to the list head
    PgfaultDram,       ///< frames faulted in on a DRAM node
    PgfaultPm,         ///< frames faulted in on a PM node
    PghintFault,       ///< NUMA-hint (poisoned PTE) faults taken
    Pswpin,            ///< pages swapped back in from block storage
    Pswpout,           ///< anonymous pages written to the swap area
    Pgwriteback,       ///< file-backed pages written back to their file
    PgmigrateAbort,    ///< migration transactions aborted mid-flight
    PgmigrateRetry,    ///< aborted migrations re-attempted (backoff)
    PgmigrateRollback, ///< post-copy aborts whose state was rolled back
    PgpromoteThrottled,///< node promotion throttled after repeated aborts
    KswapdWake,        ///< pressure handler invocations (kswapd wakes)
    KpromotedWake,     ///< promotion daemon invocations
    WatermarkLowCross, ///< node free count newly dipped below low
    PgshardMerge,      ///< cross-shard events merged at epoch barriers
    ShardEpoch,        ///< shard epochs executed (per shard + global)
    PgpromoteDeferred, ///< promotions deferred by an exhausted epoch budget
    MemcgLimitReclaim, ///< pages demoted by memcg hard-cap reclaim
    PgtenantPromoteDeferred, ///< tenant promotions denied (quota/cap)
    PgtenantDemote,    ///< demotions of tenant-charged (non-root) pages
    PgtenantAllocFallback, ///< tenant faults placed on a lower tier (cap)
    NumItems,
};

constexpr std::size_t kNumVmItems =
    static_cast<std::size_t>(VmItem::NumItems);

/** Stable /proc/vmstat-style name ("pgscan_active", ...). */
const char *vmItemName(VmItem item);

/** Per-node and global monotonic counters for one simulated host. */
class VmStat
{
  public:
    /** @param numNodes NUMA nodes to attribute counters to. */
    explicit VmStat(std::size_t numNodes = 0) { resize(numNodes); }

    void resize(std::size_t numNodes);

    std::size_t
    numNodes() const
    {
        owner_.assertHeld();
        return perNode_.size();
    }

    /**
     * Add @p delta to @p item. @p node attributes the event to a NUMA
     * node; kInvalidNode records it globally only. Owner-thread only
     * (see file comment) — the assert is a compile-time annotation
     * with zero hot-path cost.
     */
    void
    add(VmItem item, NodeId node = kInvalidNode, std::uint64_t delta = 1)
    {
        owner_.assertHeld();
        global_[static_cast<std::size_t>(item)] += delta;
        if (node != kInvalidNode) {
            const auto n = static_cast<std::size_t>(node);
            if (n < perNode_.size())
                perNode_[n][static_cast<std::size_t>(item)] += delta;
        }
    }

    std::uint64_t
    global(VmItem item) const
    {
        owner_.assertHeld();
        return global_[static_cast<std::size_t>(item)];
    }

    std::uint64_t
    node(NodeId node, VmItem item) const
    {
        owner_.assertHeld();
        const auto n = static_cast<std::size_t>(node);
        return n < perNode_.size()
                   ? perNode_[n][static_cast<std::size_t>(item)]
                   : 0;
    }

    /** Sum of the per-node counts for @p item (<= global). */
    std::uint64_t nodeSum(VmItem item) const;

    /**
     * Accumulate @p other into this instance: global counters add
     * item-wise; per-node counters add node-wise (grows the node table
     * if @p other attributes to more nodes). Used by the sharded
     * runtime to reduce shard-local counters into one merged view —
     * order-independent by construction, so the reduction is identical
     * for any worker count.
     */
    void mergeFrom(const VmStat &other);

    /**
     * Flat snapshot: "pgscan_active" -> global count, plus
     * "node<N>.pgscan_active" for every node with a nonzero count.
     */
    std::map<std::string, std::uint64_t> snapshot() const;

    /** Global counters only, in enum order (for the sampler). */
    std::array<std::uint64_t, kNumVmItems>
    globals() const
    {
        owner_.assertHeld();
        return global_;
    }

  private:
    /** Single-owner confinement capability (see file comment). */
    base::ThreadRole owner_;
    std::array<std::uint64_t, kNumVmItems> global_
        MCLOCK_GUARDED_BY(owner_){};
    std::vector<std::array<std::uint64_t, kNumVmItems>> perNode_
        MCLOCK_GUARDED_BY(owner_);
};

}  // namespace stats
}  // namespace mclock

#endif  // MCLOCK_STATS_VMSTAT_HH_
