/**
 * @file
 * Periodic vmstat time-series sampler (the `vmstat 1`/sar analogue).
 *
 * When enabled, a daemon snapshots the global vmstat counters on a
 * configurable simulated-time interval. The resulting time series is
 * what the paper's per-window figures (promotions per 20 s, Fig. 8)
 * are derived from, and it exports to CSV for plotting.
 *
 * The sampler body charges no simulated time and mutates no simulator
 * state, so enabling it cannot change simulation results.
 */

#ifndef MCLOCK_STATS_SAMPLER_HH_
#define MCLOCK_STATS_SAMPLER_HH_

#include <string>
#include <vector>

#include "stats/vmstat.hh"

namespace mclock {
namespace stats {

/** One snapshot of every global counter. */
struct VmstatSample
{
    SimTime time = 0;
    std::array<std::uint64_t, kNumVmItems> counters{};
};

/**
 * Accumulates periodic snapshots of a VmStat instance. Single-owner
 * like the VmStat it samples: the owning simulator's driving thread
 * samples, and readers only arrive after a join barrier (ThreadRole
 * confinement, statically checked — see stats/vmstat.hh).
 */
class VmstatSampler
{
  public:
    explicit VmstatSampler(const VmStat &vmstat) : vmstat_(vmstat) {}

    void
    sample(SimTime now)
    {
        owner_.assertHeld();
        VmstatSample s;
        s.time = now;
        s.counters = vmstat_.globals();
        samples_.push_back(s);
    }

    const std::vector<VmstatSample> &
    samples() const
    {
        owner_.assertHeld();
        return samples_;
    }

    /**
     * CSV export: header "time_ns,<item>,..." and one row per sample
     * with cumulative counter values.
     */
    std::string toCsv() const;

  private:
    const VmStat &vmstat_;
    /** Single-owner confinement capability (see class comment). */
    base::ThreadRole owner_;
    std::vector<VmstatSample> samples_ MCLOCK_GUARDED_BY(owner_);
};

}  // namespace stats
}  // namespace mclock

#endif  // MCLOCK_STATS_SAMPLER_HH_
