#include "stats/vmstat.hh"

namespace mclock {
namespace stats {

const char *
vmItemName(VmItem item)
{
    switch (item) {
      case VmItem::PgscanActive:      return "pgscan_active";
      case VmItem::PgscanInactive:    return "pgscan_inactive";
      case VmItem::PgscanPromote:     return "pgscan_promote";
      case VmItem::PgpromoteSuccess:  return "pgpromote_success";
      case VmItem::PgpromoteFail:     return "pgpromote_fail";
      case VmItem::PgpromoteSelected: return "pgpromote_selected";
      case VmItem::Pgdemote:          return "pgdemote";
      case VmItem::PgdemoteFail:      return "pgdemote_fail";
      case VmItem::Pgexchange:        return "pgexchange";
      case VmItem::Pgsteal:           return "pgsteal";
      case VmItem::Pgactivate:        return "pgactivate";
      case VmItem::Pgdeactivate:      return "pgdeactivate";
      case VmItem::Pgrotated:         return "pgrotated";
      case VmItem::PgfaultDram:       return "pgfault_dram";
      case VmItem::PgfaultPm:         return "pgfault_pm";
      case VmItem::PghintFault:       return "pghint_fault";
      case VmItem::Pswpin:            return "pswpin";
      case VmItem::Pswpout:           return "pswpout";
      case VmItem::Pgwriteback:       return "pgwriteback";
      case VmItem::PgmigrateAbort:    return "pgmigrate_abort";
      case VmItem::PgmigrateRetry:    return "pgmigrate_retry";
      case VmItem::PgmigrateRollback: return "pgmigrate_rollback";
      case VmItem::PgpromoteThrottled:return "pgpromote_throttled";
      case VmItem::KswapdWake:        return "kswapd_wake";
      case VmItem::KpromotedWake:     return "kpromoted_wake";
      case VmItem::WatermarkLowCross: return "watermark_low_cross";
      case VmItem::PgshardMerge:      return "pgshard_merge";
      case VmItem::ShardEpoch:        return "shard_epoch";
      case VmItem::PgpromoteDeferred: return "pgpromote_deferred";
      case VmItem::MemcgLimitReclaim: return "memcg_limit_reclaim";
      case VmItem::PgtenantPromoteDeferred:
                                      return "pgtenant_promote_deferred";
      case VmItem::PgtenantDemote:    return "pgtenant_demote";
      case VmItem::PgtenantAllocFallback:
                                      return "pgtenant_alloc_fallback";
      case VmItem::NumItems:          break;
    }
    return "unknown";
}

void
VmStat::resize(std::size_t numNodes)
{
    owner_.assertHeld();
    perNode_.resize(numNodes);
}

std::uint64_t
VmStat::nodeSum(VmItem item) const
{
    owner_.assertHeld();
    std::uint64_t sum = 0;
    for (const auto &node : perNode_)
        sum += node[static_cast<std::size_t>(item)];
    return sum;
}

void
VmStat::mergeFrom(const VmStat &other)
{
    // The reducing thread (sharded coordinator, harness reduce step)
    // owns both instances once the join barrier has passed.
    owner_.assertHeld();
    other.owner_.assertHeld();
    for (std::size_t i = 0; i < kNumVmItems; ++i)
        global_[i] += other.global_[i];
    if (perNode_.size() < other.perNode_.size())
        perNode_.resize(other.perNode_.size());
    for (std::size_t n = 0; n < other.perNode_.size(); ++n) {
        for (std::size_t i = 0; i < kNumVmItems; ++i)
            perNode_[n][i] += other.perNode_[n][i];
    }
}

std::map<std::string, std::uint64_t>
VmStat::snapshot() const
{
    owner_.assertHeld();
    std::map<std::string, std::uint64_t> out;
    for (std::size_t i = 0; i < kNumVmItems; ++i) {
        const auto item = static_cast<VmItem>(i);
        out[vmItemName(item)] = global_[i];
        for (std::size_t n = 0; n < perNode_.size(); ++n) {
            if (perNode_[n][i] == 0)
                continue;
            out["node" + std::to_string(n) + "." + vmItemName(item)] =
                perNode_[n][i];
        }
    }
    return out;
}

}  // namespace stats
}  // namespace mclock
