/**
 * @file
 * Tracepoint ring buffer: the simulator's ftrace analogue.
 *
 * Subsystems record typed events (migration start/complete, list
 * rotations, daemon wakes, watermark crossings) stamped with simulated
 * time into a fixed-capacity ring. When the ring is full the oldest
 * event is overwritten and a dropped counter advances, so tracing costs
 * O(1) memory regardless of run length — exactly like a kernel trace
 * buffer. A capacity of zero disables recording entirely.
 *
 * The buffer reads its timestamps through a bound clock pointer (the
 * owning Simulator's now_), so low-level subsystems (LRU lists) can
 * record events without a dependency on the simulator.
 *
 * Like VmStat, a TraceBuffer is single-owner state: only the owning
 * simulator's driving thread records, and only after a join barrier
 * does another thread (the sharded coordinator, the harness reducer)
 * read it. That confinement is expressed with a zero-cost ThreadRole
 * capability (base/sync.hh) so -Wthread-safety can check it.
 */

#ifndef MCLOCK_STATS_TRACEPOINT_HH_
#define MCLOCK_STATS_TRACEPOINT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "base/sync.hh"
#include "base/types.hh"

namespace mclock {
namespace stats {

/** Event taxonomy; names mirror the tracepoints they stand in for. */
enum class TraceEventType : std::uint8_t {
    MigrationStart,     ///< migrate_pages entry: arg0=vpn, arg1=dst node
    MigrationComplete,  ///< migrate_pages success: arg0=vpn, arg1=dst
    MigrationAbort,     ///< transaction aborted: arg0=vpn, arg1=phase
    PromoteThrottle,    ///< node promotion throttled: arg0=streak,
                        ///< arg1=cooldown end (simulated ns)
    ListRotation,       ///< second-chance rotation: arg0=vpn, arg1=list
    KswapdWake,         ///< pressure handler wake: arg0=free frames
    KpromotedWake,      ///< promotion daemon wake: arg0=promote-list size
    WatermarkCross,     ///< free count crossed low mark: arg0=free frames
    ShardEpoch,         ///< shard epoch begins: arg0=epoch,
                        ///< arg1=promote budget granted (0 = unlimited)
    ShardMerge,         ///< epoch merge barrier: arg0=epoch,
                        ///< arg1=events merged across shards
    MemcgReclaim,       ///< memcg hard-cap reclaim: arg0=cgroup id,
                        ///< arg1=pages demoted
};

/** Stable tracepoint name ("migration_start", ...). */
const char *traceEventName(TraceEventType type);

/** One recorded event. */
struct TraceEvent
{
    SimTime time = 0;
    TraceEventType type = TraceEventType::MigrationStart;
    NodeId node = kInvalidNode;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
};

/** Fixed-capacity overwriting ring of trace events. */
class TraceBuffer
{
  public:
    explicit TraceBuffer(std::size_t capacity = 0) : capacity_(capacity)
    {
        ring_.reserve(capacity_);
    }

    /** Bind the simulated clock record() stamps events with. */
    void
    bindClock(const SimTime *clock)
    {
        owner_.assertHeld();
        clock_ = clock;
    }

    bool enabled() const { return capacity_ != 0; }
    std::size_t capacity() const { return capacity_; }

    std::size_t
    size() const
    {
        owner_.assertHeld();
        return ring_.size();
    }

    /** Events overwritten because the ring was full. */
    std::uint64_t
    dropped() const
    {
        owner_.assertHeld();
        return dropped_;
    }

    /** Total events ever recorded (size() + dropped()). */
    std::uint64_t
    recorded() const
    {
        owner_.assertHeld();
        return recorded_;
    }

    void
    record(TraceEventType type, NodeId node, std::uint64_t arg0 = 0,
           std::uint64_t arg1 = 0)
    {
        // Hot path: the assert is an empty inline function — zero cost
        // at runtime, a capability assertion under -Wthread-safety.
        owner_.assertHeld();
        if (capacity_ == 0)
            return;
        TraceEvent ev;
        ev.time = clock_ ? *clock_ : 0;
        ev.type = type;
        ev.node = node;
        ev.arg0 = arg0;
        ev.arg1 = arg1;
        ++recorded_;
        if (ring_.size() < capacity_) {
            ring_.push_back(ev);
            return;
        }
        ring_[head_] = ev;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }

    /** Events in recording order (oldest surviving first). */
    std::vector<TraceEvent> events() const;

    void
    clear()
    {
        owner_.assertHeld();
        ring_.clear();
        head_ = 0;
        dropped_ = 0;
        recorded_ = 0;
    }

  private:
    /** Single-owner confinement capability (see file comment). */
    base::ThreadRole owner_;
    std::size_t capacity_;  ///< immutable after construction
    /** Oldest element once the ring wrapped. */
    std::size_t head_ MCLOCK_GUARDED_BY(owner_) = 0;
    std::uint64_t dropped_ MCLOCK_GUARDED_BY(owner_) = 0;
    std::uint64_t recorded_ MCLOCK_GUARDED_BY(owner_) = 0;
    const SimTime *clock_ MCLOCK_GUARDED_BY(owner_) = nullptr;
    std::vector<TraceEvent> ring_ MCLOCK_GUARDED_BY(owner_);
};

/**
 * Append @p events as JSON lines:
 *   {"unit":"...","t":123,"ev":"migration_start","node":1,...}
 */
void appendTraceJsonl(std::string &out,
                      const std::vector<TraceEvent> &events,
                      const std::string &unit);

}  // namespace stats
}  // namespace mclock

#endif  // MCLOCK_STATS_TRACEPOINT_HH_
