#include "stats/tracepoint.hh"

#include <cstdio>

namespace mclock {
namespace stats {

const char *
traceEventName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::MigrationStart:    return "migration_start";
      case TraceEventType::MigrationComplete: return "migration_complete";
      case TraceEventType::MigrationAbort:    return "migration_abort";
      case TraceEventType::PromoteThrottle:   return "promote_throttle";
      case TraceEventType::ListRotation:      return "list_rotation";
      case TraceEventType::KswapdWake:        return "kswapd_wake";
      case TraceEventType::KpromotedWake:     return "kpromoted_wake";
      case TraceEventType::WatermarkCross:    return "watermark_cross";
      case TraceEventType::ShardEpoch:        return "shard_epoch";
      case TraceEventType::ShardMerge:        return "shard_merge";
      case TraceEventType::MemcgReclaim:      return "memcg_reclaim";
    }
    return "unknown";
}

std::vector<TraceEvent>
TraceBuffer::events() const
{
    owner_.assertHeld();
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    // Once wrapped, head_ points at the oldest element.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

void
appendTraceJsonl(std::string &out, const std::vector<TraceEvent> &events,
                 const std::string &unit)
{
    char buf[256];
    for (const auto &ev : events) {
        std::snprintf(buf, sizeof(buf),
                      "{\"unit\":\"%s\",\"t\":%llu,\"ev\":\"%s\","
                      "\"node\":%d,\"arg0\":%llu,\"arg1\":%llu}\n",
                      unit.c_str(),
                      static_cast<unsigned long long>(ev.time),
                      traceEventName(ev.type), ev.node,
                      static_cast<unsigned long long>(ev.arg0),
                      static_cast<unsigned long long>(ev.arg1));
        out += buf;
    }
}

}  // namespace stats
}  // namespace mclock
