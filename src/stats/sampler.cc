#include "stats/sampler.hh"

namespace mclock {
namespace stats {

std::string
VmstatSampler::toCsv() const
{
    std::string out = "time_ns";
    for (std::size_t i = 0; i < kNumVmItems; ++i) {
        out += ',';
        out += vmItemName(static_cast<VmItem>(i));
    }
    out += '\n';
    for (const auto &s : samples_) {
        out += std::to_string(s.time);
        for (std::size_t i = 0; i < kNumVmItems; ++i) {
            out += ',';
            out += std::to_string(s.counters[i]);
        }
        out += '\n';
    }
    return out;
}

}  // namespace stats
}  // namespace mclock
