/**
 * @file
 * MCLOCK_DEBUG_VM: the simulator's CONFIG_DEBUG_VM analogue.
 *
 * The VmChecker validates every page-state transition against the
 * Fig. 4 table (debug/page_state.hh) as it happens: NodeLists calls in
 * for every list add/remove/move/rotation, the MigrationEngine for
 * every transaction phase and commit, and the Simulator for evictions
 * and page teardown. Each page also has a *shadow* record keyed by its
 * address — an independent copy of where the checker believes the page
 * is — so out-of-band corruption (someone scribbling on the list tag
 * without going through NodeLists) is caught as ShadowDivergence even
 * though every individual list call looked legal.
 *
 * A violation calls the installed handler; the default handler dumps
 * the page's recent state history (from the checker's private ring,
 * plus the simulator's tracepoint ring when bound) and panics. Tests
 * install a collecting handler instead and assert on violation codes.
 *
 * The checker charges no simulated time and records nothing into the
 * shared TraceBuffer, so enabling it leaves golden outputs
 * byte-identical. The whole subsystem is compiled only under
 * MCLOCK_DEBUG_VM; release builds contain no trace of it.
 */

#ifndef MCLOCK_DEBUG_VM_CHECKER_HH_
#define MCLOCK_DEBUG_VM_CHECKER_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/intrusive_list.hh"
#include "base/types.hh"
#include "debug/page_state.hh"
#include "sim/fault_injector.hh"
#include "stats/tracepoint.hh"
#include "vm/page.hh"

namespace mclock {
namespace debug {

/** Invariant classes the checker enforces (one test each). */
enum class ViolationCode : std::uint8_t {
    DoubleAdd,          ///< add() of a page already on a list
    RemoveOffList,      ///< remove()/rotate of an off-list page
    IllegalTransition,  ///< list move off the Fig. 4 edge table
    BadReentry,         ///< entry into a list the context forbids
    FamilyMismatch,     ///< anon page on a file list or vice versa
    FlagMismatch,       ///< list membership contradicts page flags
    NodeMismatch,       ///< on node A's lists, resident on node B
    NonResidentOnList,  ///< on an LRU list without a frame
    ShadowDivergence,   ///< page tag disagrees with the shadow record
    PoisonedPromote,    ///< poisoned page committed an upward migration
    LockedRemap,        ///< remap phase reached with the page locked
    ListCorruption,     ///< intrusive-list linkage broken
    NumCodes
};

/** Stable violation name ("double_add", ...). */
const char *violationName(ViolationCode code);

/** One detected invariant violation. */
struct Violation
{
    ViolationCode code = ViolationCode::NumCodes;
    const Page *page = nullptr;  ///< may be null (list-level corruption)
    PageNum vpn = 0;
    NodeId node = kInvalidNode;
    std::string detail;
};

/** Per-page state history entry (checker-private, not the sim trace). */
struct StateHistoryEntry
{
    const Page *page = nullptr;
    PageNum vpn = 0;
    NodeId node = kInvalidNode;
    LruListKind from = LruListKind::None;
    LruListKind to = LruListKind::None;
    const char *op = "";  ///< "add", "remove", "move", ...
};

/** The CONFIG_DEBUG_VM page-state-machine checker. */
class VmChecker
{
  public:
    using PageList = IntrusiveList<Page, &Page::lruHook>;
    using Handler = std::function<void(const Violation &)>;

    explicit VmChecker(std::size_t historyCapacity = 256);

    /** Replace the default panic-with-dump handler (tests collect). */
    void setHandler(Handler handler);

    /** Bind the sim trace ring consulted by the violation dump. */
    void bindTrace(const stats::TraceBuffer *trace) { trace_ = trace; }

    /** Bind the fault oracle consulted for poisoned-page checks. */
    void bindFaults(const sim::FaultInjector *faults) { faults_ = faults; }

    // --- NodeLists hooks (called before the mutation) --------------------
    void onListAdd(const Page *page, LruListKind kind, NodeId node);
    void onListRemove(const Page *page, NodeId node);
    void onListMove(const Page *page, LruListKind to, NodeId node);
    void onListRotate(const Page *page, NodeId node);

    // --- MigrationEngine hooks -------------------------------------------
    /** A commit-path transaction phase is about to execute. */
    void onMigrationPhase(const Page *page, sim::FaultPhase phase,
                          NodeId dst);

    /** A single-page migration committed (tiers are pre-move ranks). */
    void onMigrationCommit(const Page *page, TierRank srcTier,
                           TierRank dstTier);

    /** A two-sided exchange committed (tiers are pre-swap ranks). */
    void onExchangeCommit(const Page *a, TierRank aTier, const Page *b,
                          TierRank bTier);

    // --- Lifecycle hooks (called by the Simulator) -----------------------
    /** Page evicted to storage: off-list, next entry is a fresh add. */
    void onEvict(const Page *page);

    /** Page destroyed (munmap): forget it — the address may recycle. */
    void onPageDestroyed(const Page *page);

    // --- Sweep validation (harness integration) --------------------------
    /**
     * Walk one LRU list, validating linkage (lockdep-style: every
     * node's neighbours must point back at it), per-page placement, and
     * shadow agreement. Violations go to @p sink when non-null,
     * otherwise to the handler.
     */
    void validateList(const PageList &list, LruListKind kind, NodeId node,
                      std::vector<Violation> *sink = nullptr);

    // --- Introspection ---------------------------------------------------
    std::uint64_t checksRun() const { return checksRun_; }
    std::uint64_t violationCount() const { return violations_; }

    /** Recent history entries touching @p page (oldest first). */
    std::vector<StateHistoryEntry> historyFor(const Page *page) const;

    /** Render the violation dump the default handler prints. */
    std::string formatDump(const Violation &v) const;

  private:
    /** Independent belief about one page's whereabouts. */
    struct Shadow
    {
        LruListKind list = LruListKind::None;
        NodeId node = kInvalidNode;
        ReentryContext ctx = ReentryContext::Fresh;
    };

    Shadow &shadowOf(const Page *page) { return shadow_[page]; }

    void report(ViolationCode code, const Page *page, NodeId node,
                std::string detail, std::vector<Violation> *sink = nullptr);

    void recordHistory(const Page *page, NodeId node, LruListKind from,
                       LruListKind to, const char *op);

    /** Placement checks shared by add and move destinations. */
    void checkPlacement(const Page *page, LruListKind kind, NodeId node,
                        std::vector<Violation> *sink = nullptr);

    /** Shadow-vs-page agreement; reports ShadowDivergence. */
    void checkShadow(const Page *page, NodeId node);

    Handler handler_;
    const stats::TraceBuffer *trace_ = nullptr;
    const sim::FaultInjector *faults_ = nullptr;
    /** Point lookups/erases only — hash order never observed. */
    // mclock-lint: unordered-iter-ok(never iterated: find/erase only)
    std::unordered_map<const Page *, Shadow> shadow_;
    std::vector<StateHistoryEntry> history_;  ///< overwriting ring
    std::size_t historyCapacity_;
    std::size_t historyHead_ = 0;
    std::uint64_t historyRecorded_ = 0;
    std::uint64_t checksRun_ = 0;
    std::uint64_t violations_ = 0;
};

}  // namespace debug
}  // namespace mclock

#endif  // MCLOCK_DEBUG_VM_CHECKER_HH_
