/**
 * @file
 * The Fig. 4 MULTI-CLOCK page state machine as an explicit table.
 *
 * A page is on exactly one LRU list at a time (inactive/active/promote
 * x anon/file, or unevictable), or off-list (`LruListKind::None`) while
 * isolated for migration or reclaim. This header encodes which list
 * moves and which list (re-)entries are legal, so the MCLOCK_DEBUG_VM
 * checker can reject everything else:
 *
 *  - in-place moves walk the CLOCK ladder within one anon/file family:
 *    inactive -> active -> promote, promote cools back to active, and
 *    pressure deactivates active -> inactive;
 *  - a page arriving after a *promotion* enters the destination node's
 *    active list (it was promoted because it is hot);
 *  - a page arriving after a *demotion* resets to inactive;
 *  - a freshly allocated or swapped-in page starts inactive (or
 *    unevictable when pinned);
 *  - a failed migration restores the page on its source node, on the
 *    active or inactive list (never directly onto a promote list:
 *    promote-list membership is only ever earned through the
 *    active-list scan).
 */

#ifndef MCLOCK_DEBUG_PAGE_STATE_HH_
#define MCLOCK_DEBUG_PAGE_STATE_HH_

#include <cstdint>

#include "vm/page.hh"

namespace mclock {
namespace debug {

/**
 * What kind of list entry the checker expects next for an off-list
 * page, derived from why it went off-list (its "re-entry context").
 */
enum class ReentryContext : std::uint8_t {
    Fresh,           ///< first add, or after eviction: fault-in path
    Isolated,        ///< removed for a migration/reclaim attempt
    PromoteArrival,  ///< a promotion committed; must arrive active
    DemoteArrival,   ///< a demotion committed; must reset to inactive
};

/** Stable re-entry context name ("fresh", ...). */
const char *reentryContextName(ReentryContext ctx);

/** True when @p from -> @p to is a legal in-place (moveTo) edge. */
bool legalMoveEdge(LruListKind from, LruListKind to);

/** True when an off-list page in context @p ctx may enter @p kind. */
bool legalEntryEdge(ReentryContext ctx, LruListKind kind);

/** True when @p kind holds anonymous pages (promote/active/inactive). */
bool isAnonList(LruListKind kind);

}  // namespace debug
}  // namespace mclock

#endif  // MCLOCK_DEBUG_PAGE_STATE_HH_
