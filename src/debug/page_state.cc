#include "debug/page_state.hh"

namespace mclock {
namespace debug {

const char *
reentryContextName(ReentryContext ctx)
{
    switch (ctx) {
      case ReentryContext::Fresh: return "fresh";
      case ReentryContext::Isolated: return "isolated";
      case ReentryContext::PromoteArrival: return "promote-arrival";
      case ReentryContext::DemoteArrival: return "demote-arrival";
    }
    return "?";
}

bool
isAnonList(LruListKind kind)
{
    switch (kind) {
      case LruListKind::InactiveAnon:
      case LruListKind::ActiveAnon:
      case LruListKind::PromoteAnon:
        return true;
      default:
        return false;
    }
}

namespace {

/** Rung of the CLOCK ladder a list sits on, family-agnostic. */
enum class Rung { Inactive, Active, Promote, Unevictable, None };

Rung
rungOf(LruListKind kind)
{
    switch (kind) {
      case LruListKind::InactiveAnon:
      case LruListKind::InactiveFile:
        return Rung::Inactive;
      case LruListKind::ActiveAnon:
      case LruListKind::ActiveFile:
        return Rung::Active;
      case LruListKind::PromoteAnon:
      case LruListKind::PromoteFile:
        return Rung::Promote;
      case LruListKind::Unevictable:
        return Rung::Unevictable;
      case LruListKind::None:
      default:
        return Rung::None;
    }
}

bool
sameFamily(LruListKind a, LruListKind b)
{
    return isAnonList(a) == isAnonList(b);
}

}  // namespace

bool
legalMoveEdge(LruListKind from, LruListKind to)
{
    // In-place moves never cross the anon/file boundary and never
    // involve the unevictable list (mlock churn goes through
    // remove+add, which the entry table covers).
    if (from == LruListKind::None || to == LruListKind::None)
        return false;
    if (from == LruListKind::Unevictable || to == LruListKind::Unevictable)
        return false;
    if (!sameFamily(from, to))
        return false;

    const Rung f = rungOf(from);
    const Rung t = rungOf(to);
    // inactive -> active (reference promotion), active -> inactive
    // (deactivation under pressure), active -> promote (kpromoted
    // selection), promote -> active (cooling / shrink_promote).
    return (f == Rung::Inactive && t == Rung::Active) ||
           (f == Rung::Active && t == Rung::Inactive) ||
           (f == Rung::Active && t == Rung::Promote) ||
           (f == Rung::Promote && t == Rung::Active);
}

bool
legalEntryEdge(ReentryContext ctx, LruListKind kind)
{
    if (kind == LruListKind::None)
        return false;

    switch (rungOf(kind)) {
      case Rung::Unevictable:
        // Only ever entered straight off the fault path.
        return ctx == ReentryContext::Fresh;
      case Rung::Inactive:
        // Fault-in, demotion arrival, and failed-attempt restore all
        // land on an inactive list.
        return ctx == ReentryContext::Fresh ||
               ctx == ReentryContext::Isolated ||
               ctx == ReentryContext::DemoteArrival;
      case Rung::Active:
        // Promotion arrivals are hot by construction; a failed attempt
        // may also restore a page that was isolated off an active list.
        return ctx == ReentryContext::PromoteArrival ||
               ctx == ReentryContext::Isolated;
      case Rung::Promote:
        // Promote lists are only entered via the active-scan moveTo
        // edge, never by a direct add.
        return false;
      case Rung::None:
      default:
        return false;
    }
}

}  // namespace debug
}  // namespace mclock
