/**
 * @file
 * Test-only corruption backdoor for the DEBUG_VM violation-injection
 * tests. Each helper breaks exactly one invariant the VmChecker
 * enforces, bypassing the NodeLists API the way a real bug would
 * (scribbling on page state or list linkage directly). Nothing in
 * src/ may include this header; it exists so tests/debug_vm_test.cc
 * can prove every checker fires, not to be a convenience API.
 */

#ifndef MCLOCK_DEBUG_TEST_BACKDOOR_HH_
#define MCLOCK_DEBUG_TEST_BACKDOOR_HH_

#include "base/intrusive_list.hh"
#include "vm/page.hh"

namespace mclock {
namespace debug {

/** Deliberate invariant breakage for checker tests. */
struct TestBackdoor
{
    /** Rewrite the list tag without touching any list (divergence). */
    static void
    corruptListTag(Page *page, LruListKind kind)
    {
        page->setList(kind);
    }

    /**
     * Sever a page's linkage in place: its neighbours no longer point
     * back at it, as after a racing erase. The list's size bookkeeping
     * is left untouched, exactly like real corruption.
     */
    static void
    severLinks(Page *page)
    {
        ListHook &h = page->lruHook;
        if (h.prev)
            h.prev->next = h.next;
        if (h.next)
            h.next->prev = h.prev;
    }

    /** Drop the frame placement while leaving list membership alone. */
    static void
    fakeUnplace(Page *page)
    {
        page->unplace();
    }

    /** Re-home the page's placement to another node, lists untouched. */
    static void
    fakePlacement(Page *page, NodeId node)
    {
        page->placeOn(node, page->paddr());
    }
};

}  // namespace debug
}  // namespace mclock

#endif  // MCLOCK_DEBUG_TEST_BACKDOOR_HH_
