#include "debug/vm_checker.hh"

#include <sstream>

#include "base/logging.hh"

namespace mclock {
namespace debug {

const char *
violationName(ViolationCode code)
{
    switch (code) {
      case ViolationCode::DoubleAdd: return "double_add";
      case ViolationCode::RemoveOffList: return "remove_off_list";
      case ViolationCode::IllegalTransition: return "illegal_transition";
      case ViolationCode::BadReentry: return "bad_reentry";
      case ViolationCode::FamilyMismatch: return "family_mismatch";
      case ViolationCode::FlagMismatch: return "flag_mismatch";
      case ViolationCode::NodeMismatch: return "node_mismatch";
      case ViolationCode::NonResidentOnList: return "non_resident_on_list";
      case ViolationCode::ShadowDivergence: return "shadow_divergence";
      case ViolationCode::PoisonedPromote: return "poisoned_promote";
      case ViolationCode::LockedRemap: return "locked_remap";
      case ViolationCode::ListCorruption: return "list_corruption";
      case ViolationCode::NumCodes: break;
    }
    return "?";
}

VmChecker::VmChecker(std::size_t historyCapacity)
    : historyCapacity_(historyCapacity)
{
    history_.reserve(historyCapacity_);
}

void
VmChecker::setHandler(Handler handler)
{
    handler_ = std::move(handler);
}

void
VmChecker::recordHistory(const Page *page, NodeId node, LruListKind from,
                         LruListKind to, const char *op)
{
    if (historyCapacity_ == 0)
        return;
    StateHistoryEntry e;
    e.page = page;
    e.vpn = page ? page->vpn() : 0;
    e.node = node;
    e.from = from;
    e.to = to;
    e.op = op;
    ++historyRecorded_;
    if (history_.size() < historyCapacity_) {
        history_.push_back(e);
        return;
    }
    history_[historyHead_] = e;
    historyHead_ = (historyHead_ + 1) % historyCapacity_;
}

std::vector<StateHistoryEntry>
VmChecker::historyFor(const Page *page) const
{
    std::vector<StateHistoryEntry> out;
    const std::size_t n = history_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const auto &e = history_[(historyHead_ + i) % n];
        if (e.page == page)
            out.push_back(e);
    }
    return out;
}

std::string
VmChecker::formatDump(const Violation &v) const
{
    std::ostringstream os;
    os << "DEBUG_VM violation: " << violationName(v.code) << " — "
       << v.detail << "\n";
    if (v.page) {
        os << "  page vpn=" << v.vpn << " node=" << v.node
           << " list=" << lruListName(v.page->list())
           << (v.page->isAnon() ? " anon" : " file")
           << (v.page->resident() ? " resident" : " !resident")
           << (v.page->active() ? " active" : "")
           << (v.page->promoteFlag() ? " promote" : "")
           << (v.page->unevictable() ? " unevictable" : "")
           << (v.page->locked() ? " locked" : "") << "\n";
        os << "  state history (oldest first):\n";
        const auto hist = historyFor(v.page);
        if (hist.empty())
            os << "    <none recorded>\n";
        for (const auto &e : hist) {
            os << "    " << e.op << " " << lruListName(e.from) << " -> "
               << lruListName(e.to) << " node=" << e.node << "\n";
        }
        if (trace_ && trace_->enabled()) {
            os << "  tracepoints touching vpn " << v.vpn << ":\n";
            bool any = false;
            for (const auto &ev : trace_->events()) {
                // Migration and rotation events carry the vpn in arg0;
                // other event types are not page-scoped.
                switch (ev.type) {
                  case stats::TraceEventType::MigrationStart:
                  case stats::TraceEventType::MigrationComplete:
                  case stats::TraceEventType::MigrationAbort:
                  case stats::TraceEventType::ListRotation:
                    break;
                  default:
                    continue;
                }
                if (ev.arg0 != v.vpn)
                    continue;
                any = true;
                os << "    t=" << ev.time << " "
                   << stats::traceEventName(ev.type)
                   << " node=" << ev.node << " arg1=" << ev.arg1 << "\n";
            }
            if (!any)
                os << "    <none in ring>\n";
        }
    }
    return os.str();
}

void
VmChecker::report(ViolationCode code, const Page *page, NodeId node,
                  std::string detail, std::vector<Violation> *sink)
{
    ++violations_;
    Violation v;
    v.code = code;
    v.page = page;
    v.vpn = page ? page->vpn() : 0;
    v.node = node;
    v.detail = std::move(detail);
    if (sink) {
        sink->push_back(std::move(v));
        return;
    }
    if (handler_) {
        handler_(v);
        return;
    }
    MCLOCK_PANIC("%s", formatDump(v).c_str());
}

void
VmChecker::checkShadow(const Page *page, NodeId node)
{
    ++checksRun_;
    auto it = shadow_.find(page);
    const LruListKind believed =
        it == shadow_.end() ? LruListKind::None : it->second.list;
    if (believed != page->list()) {
        report(ViolationCode::ShadowDivergence, page, node,
               detail::format("page tagged %s but the checker last saw "
                              "it on %s — state changed out of band",
                              lruListName(page->list()),
                              lruListName(believed)));
    }
}

void
VmChecker::checkPlacement(const Page *page, LruListKind kind, NodeId node,
                          std::vector<Violation> *sink)
{
    ++checksRun_;
    if (!page->resident()) {
        report(ViolationCode::NonResidentOnList, page, node,
               detail::format("entering %s without a frame",
                              lruListName(kind)),
               sink);
    } else if (node != kInvalidNode && page->node() != node) {
        report(ViolationCode::NodeMismatch, page, node,
               detail::format("entering node %d's %s but resident on "
                              "node %d",
                              node, lruListName(kind), page->node()),
               sink);
    }
    if (kind == LruListKind::Unevictable) {
        if (!page->unevictable()) {
            report(ViolationCode::FlagMismatch, page, node,
                   "on the unevictable list without PG_unevictable",
                   sink);
        }
        return;
    }
    if (page->isAnon() != isAnonList(kind)) {
        report(ViolationCode::FamilyMismatch, page, node,
               detail::format("%s page entering %s",
                              page->isAnon() ? "anon" : "file",
                              lruListName(kind)),
               sink);
    }
    if (isPromoteList(kind) && !page->promoteFlag()) {
        report(ViolationCode::FlagMismatch, page, node,
               detail::format("entering %s without PagePromote — no "
                              "selection evidence",
                              lruListName(kind)),
               sink);
    }
}

void
VmChecker::onListAdd(const Page *page, LruListKind kind, NodeId node)
{
    checkShadow(page, node);
    ++checksRun_;
    if (page->onLru()) {
        report(ViolationCode::DoubleAdd, page, node,
               detail::format("add to %s while still on %s",
                              lruListName(kind),
                              lruListName(page->list())));
    }
    auto &sh = shadowOf(page);
    if (!legalEntryEdge(sh.ctx, kind)) {
        report(ViolationCode::BadReentry, page, node,
               detail::format("%s page may not enter %s",
                              reentryContextName(sh.ctx),
                              lruListName(kind)));
    }
    checkPlacement(page, kind, node);
    recordHistory(page, node, LruListKind::None, kind, "add");
    sh.list = kind;
    sh.node = node;
}

void
VmChecker::onListRemove(const Page *page, NodeId node)
{
    checkShadow(page, node);
    ++checksRun_;
    if (!page->onLru()) {
        report(ViolationCode::RemoveOffList, page, node,
               "remove of a page on no list");
    }
    recordHistory(page, node, page->list(), LruListKind::None, "remove");
    auto &sh = shadowOf(page);
    sh.list = LruListKind::None;
    sh.ctx = ReentryContext::Isolated;
}

void
VmChecker::onListMove(const Page *page, LruListKind to, NodeId node)
{
    checkShadow(page, node);
    ++checksRun_;
    const LruListKind from = page->list();
    if (!legalMoveEdge(from, to)) {
        report(ViolationCode::IllegalTransition, page, node,
               detail::format("move %s -> %s is off the Fig. 4 edge "
                              "table",
                              lruListName(from), lruListName(to)));
    }
    checkPlacement(page, to, node);
    recordHistory(page, node, from, to, "move");
    shadowOf(page).list = to;
}

void
VmChecker::onListRotate(const Page *page, NodeId node)
{
    checkShadow(page, node);
    ++checksRun_;
    if (!page->onLru()) {
        report(ViolationCode::RemoveOffList, page, node,
               "rotation of a page on no list");
    }
    recordHistory(page, node, page->list(), page->list(), "rotate");
}

void
VmChecker::onMigrationPhase(const Page *page, sim::FaultPhase phase,
                            NodeId dst)
{
    ++checksRun_;
    if (page->onLru()) {
        report(ViolationCode::IllegalTransition, page, dst,
               detail::format("%s phase with the page still on %s — "
                              "migrating pages must be isolated",
                              sim::faultPhaseName(phase),
                              lruListName(page->list())));
    }
    if (phase == sim::FaultPhase::Remap && page->locked()) {
        report(ViolationCode::LockedRemap, page, dst,
               "remap of a locked page: the pin holder still expects "
               "the old mapping");
    }
    recordHistory(page, dst, page->list(), page->list(),
                  sim::faultPhaseName(phase));
}

void
VmChecker::onMigrationCommit(const Page *page, TierRank srcTier,
                             TierRank dstTier)
{
    ++checksRun_;
    if (dstTier < srcTier && faults_ && faults_->poisoned(page->vpn())) {
        report(ViolationCode::PoisonedPromote, page, page->node(),
               detail::format("poisoned page committed a migration from "
                              "tier %d up to tier %d",
                              srcTier, dstTier));
    }
    auto &sh = shadowOf(page);
    sh.node = page->node();
    if (dstTier < srcTier)
        sh.ctx = ReentryContext::PromoteArrival;
    else if (dstTier > srcTier)
        sh.ctx = ReentryContext::DemoteArrival;
    else
        sh.ctx = ReentryContext::Isolated;
    recordHistory(page, page->node(), LruListKind::None, LruListKind::None,
                  "commit");
}

void
VmChecker::onExchangeCommit(const Page *a, TierRank aTier, const Page *b,
                            TierRank bTier)
{
    // Each side of the exchange is a migration commit onto the other
    // side's old tier.
    onMigrationCommit(a, aTier, bTier);
    onMigrationCommit(b, bTier, aTier);
}

void
VmChecker::onEvict(const Page *page)
{
    checkShadow(page, page->node());
    ++checksRun_;
    if (page->onLru()) {
        report(ViolationCode::IllegalTransition, page, page->node(),
               detail::format("eviction with the page still on %s",
                              lruListName(page->list())));
    }
    recordHistory(page, page->node(), page->list(), LruListKind::None,
                  "evict");
    auto &sh = shadowOf(page);
    sh.list = LruListKind::None;
    sh.node = kInvalidNode;
    sh.ctx = ReentryContext::Fresh;  // next entry is a swap-in
}

void
VmChecker::onPageDestroyed(const Page *page)
{
    // Forget everything: the allocator may recycle this address for an
    // unrelated page, which must start from a clean Fresh record.
    shadow_.erase(page);
    for (auto &e : history_) {
        if (e.page == page)
            e.page = nullptr;
    }
}

void
VmChecker::validateList(const PageList &list, LruListKind kind, NodeId node,
                        std::vector<Violation> *sink)
{
    // Lockdep-style linkage walk, mirroring the kernel's
    // __list_add_valid/__list_del_entry_valid: every hook's neighbours
    // must point straight back at it, and the walk must visit exactly
    // size() elements before returning to the head.
    std::size_t walked = 0;
    for (Page *pg : const_cast<PageList &>(list)) {
        ++checksRun_;
        const ListHook &h = pg->lruHook;
        if (!h.linked() || h.prev->next != &pg->lruHook ||
            h.next->prev != &pg->lruHook) {
            report(ViolationCode::ListCorruption, pg, node,
                   detail::format("broken linkage on %s: neighbours do "
                                  "not point back",
                                  lruListName(kind)),
                   sink);
            return;  // unsafe to keep walking a broken chain
        }
        if (++walked > list.size()) {
            report(ViolationCode::ListCorruption, pg, node,
                   detail::format("%s walk exceeded its size %zu — "
                                  "cycle or cross-link",
                                  lruListName(kind), list.size()),
                   sink);
            return;
        }
        if (pg->list() != kind) {
            report(ViolationCode::ShadowDivergence, pg, node,
                   detail::format("on %s but tagged %s",
                                  lruListName(kind),
                                  lruListName(pg->list())),
                   sink);
        }
        auto it = shadow_.find(pg);
        if (it != shadow_.end() && it->second.list != kind) {
            report(ViolationCode::ShadowDivergence, pg, node,
                   detail::format("on %s but the checker last saw it "
                                  "on %s",
                                  lruListName(kind),
                                  lruListName(it->second.list)),
                   sink);
        }
        checkPlacement(pg, kind, node, sink);
    }
    ++checksRun_;
    if (walked != list.size()) {
        report(ViolationCode::ListCorruption, nullptr, node,
               detail::format("%s claims %zu elements but the walk saw "
                              "%zu",
                              lruListName(kind), list.size(), walked),
               sink);
    }
}

}  // namespace debug
}  // namespace mclock
