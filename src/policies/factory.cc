#include "policies/factory.hh"

#include <algorithm>

#include "base/logging.hh"
#include "core/multiclock.hh"
#include "policies/amp.hh"
#include "policies/autotiering.hh"
#include "policies/memory_mode.hh"
#include "policies/nimble.hh"
#include "policies/static_tiering.hh"

namespace mclock {
namespace policies {

std::unique_ptr<TieringPolicy>
makePolicy(const std::string &name, const PolicyOptions &opts)
{
    if (name == "static")
        return std::make_unique<StaticTieringPolicy>();
    if (name == "multiclock") {
        core::MultiClockConfig cfg;
        cfg.scanInterval = opts.scanInterval;
        cfg.nrScan = opts.nrScan;
        return std::make_unique<core::MultiClockPolicy>(cfg);
    }
    if (name == "nimble") {
        NimbleConfig cfg;
        cfg.scanInterval = opts.scanInterval;
        cfg.nrScan = opts.nrScan;
        return std::make_unique<NimblePolicy>(cfg);
    }
    if (name == "at-cpm" || name == "at-opm" || name == "autonuma") {
        AutoTieringConfig cfg;
        cfg.scanInterval = opts.scanInterval;
        cfg.poisonChunk = std::max<std::size_t>(
            16, static_cast<std::size_t>(
                    opts.poisonPagesPerSec *
                    static_cast<double>(opts.scanInterval) / 1e9));
        // The CPM victim-coldness horizon follows the profiling cadence
        // (roughly three passes).
        cfg.victimColdThreshold = opts.scanInterval * 3;
        const AutoTieringMode mode =
            name == "at-opm"
                ? AutoTieringMode::Opm
                : (name == "at-cpm" ? AutoTieringMode::Cpm
                                    : AutoTieringMode::AutoNuma);
        return std::make_unique<AutoTieringPolicy>(mode, cfg);
    }
    if (name == "memory-mode") {
        if (opts.dramCacheBytes == 0)
            MCLOCK_FATAL("memory-mode requires dramCacheBytes > 0");
        return std::make_unique<MemoryModePolicy>(opts.dramCacheBytes);
    }
    if (name == "amp-lru" || name == "amp-lfu" || name == "amp-random") {
        AmpConfig cfg;
        cfg.scanInterval = opts.scanInterval;
        const AmpMode mode = name == "amp-lru"
                                 ? AmpMode::Lru
                                 : (name == "amp-lfu" ? AmpMode::Lfu
                                                      : AmpMode::Random);
        return std::make_unique<AmpPolicy>(mode, cfg);
    }
    MCLOCK_FATAL("unknown policy '%s'", name.c_str());
}

std::unique_ptr<TieringPolicy>
makePolicy(const std::string &name, std::size_t dramCacheBytes)
{
    PolicyOptions opts;
    opts.dramCacheBytes = dramCacheBytes;
    return makePolicy(name, opts);
}

std::vector<std::string>
policyNames()
{
    return {"static",   "multiclock", "nimble",
            "at-cpm",   "at-opm",     "autonuma",
            "memory-mode", "amp-lru", "amp-lfu", "amp-random"};
}

std::vector<std::string>
tieredPolicyNames()
{
    return {"static", "multiclock", "nimble", "at-cpm", "at-opm"};
}

}  // namespace policies
}  // namespace mclock
