/**
 * @file
 * Policy factory: construct any policy by its short name.
 *
 * Recognised names: "static", "multiclock", "nimble", "at-cpm",
 * "at-opm", "memory-mode" (requires dramCacheBytes), "amp-lru",
 * "amp-lfu", "amp-random".
 */

#ifndef MCLOCK_POLICIES_FACTORY_HH_
#define MCLOCK_POLICIES_FACTORY_HH_

#include <memory>
#include <string>
#include <vector>

#include "policies/policy.hh"

namespace mclock {
namespace policies {

/** Cross-policy tunables applied by the factory. */
struct PolicyOptions
{
    /** Daemon wake period for every policy's profiling/promotion
     *  thread. Benches scale this down together with machine capacity
     *  so the cadence-to-workload-duration ratio matches the paper. */
    SimTime scanInterval = 1'000'000'000ull;  // 1 s, the paper default
    /** Pages scanned per list per wake (paper: 1024). */
    std::size_t nrScan = 1024;
    /**
     * AutoTiering PTE-poisoning rate in pages per second (AutoNUMA's
     * scan_size budget, scaled); the per-pass chunk is rate x interval.
     */
    double poisonPagesPerSec = 8192.0;
    /** DRAM capacity handed to Memory-mode as its memory-side cache. */
    std::size_t dramCacheBytes = 0;
};

/** Construct a policy by name; fatal on unknown names. */
std::unique_ptr<TieringPolicy> makePolicy(const std::string &name,
                                          const PolicyOptions &opts);

/** Convenience overload with default options. */
std::unique_ptr<TieringPolicy> makePolicy(
    const std::string &name, std::size_t dramCacheBytes = 0);

/** All policy names usable with makePolicy(). */
std::vector<std::string> policyNames();

/** The names compared in the paper's Fig. 5/6 (tiered systems). */
std::vector<std::string> tieredPolicyNames();

}  // namespace policies
}  // namespace mclock

#endif  // MCLOCK_POLICIES_FACTORY_HH_
