#include "policies/policy.hh"

#include <vector>

#include "base/logging.hh"
#include "pfra/vmscan.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"

namespace mclock {
namespace policies {

void
TieringPolicy::attach(sim::Simulator &sim)
{
    sim_ = &sim;
}

NodeId
TieringPolicy::selectAllocationNode(Page &page)
{
    (void)page;
    auto &mem = sim_->memory();
    // Highest-performing tier with room above the reserve wins; this is
    // where pages are "born in" under tiered allocation.
    for (TierRank rank : mem.tierOrder()) {
        const NodeId id = mem.pickNodeWithSpace(rank, /*respectMin=*/true);
        if (id != kInvalidNode)
            return id;
    }
    // All tiers below their min watermark: dip into reserves bottom-up.
    const auto &order = mem.tierOrder();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const NodeId id = mem.pickNodeWithSpace(*it, /*respectMin=*/false);
        if (id != kInvalidNode)
            return id;
    }
    return kInvalidNode;
}

void
TieringPolicy::onPageAllocated(Page *page)
{
    // New pages start in the inactive-unreferenced state (Fig. 4).
    MCLOCK_ASSERT(page->resident());
    auto &lists = sim_->memory().node(page->node()).lists();
    if (page->unevictable()) {
        lists.add(page, LruListKind::Unevictable);
        return;
    }
    page->setActive(false);
    page->setReferenced(false);
    page->setPromoteFlag(false);
    lists.add(page, pfra::NodeLists::inactiveKind(page->isAnon()));
}

void
TieringPolicy::onPageFreed(Page *page)
{
    if (page->onLru())
        sim_->memory().node(page->node()).lists().remove(page);
}

void
TieringPolicy::onMemoryAccess(Page *page, AccessContext &ctx)
{
    (void)page;
    (void)ctx;
}

void
TieringPolicy::onSupervisedAccess(Page *page)
{
    // Vanilla mark_page_accessed(): first touch sets PG_referenced, a
    // second touch activates the page.
    if (!page->onLru() || page->unevictable())
        return;
    if (!page->referenced()) {
        page->setReferenced(true);
        return;
    }
    if (isInactiveList(page->list())) {
        page->setReferenced(false);
        page->setActive(true);
        auto &lists = sim_->memory().node(page->node()).lists();
        lists.moveTo(page, pfra::NodeLists::activeKind(page->isAnon()));
    }
    // Already active: PG_referenced stays set.
}

void
TieringPolicy::onHintFault(Page *page)
{
    (void)page;
}

void
TieringPolicy::handlePressure(sim::Node &node)
{
    // Default: last-resort eviction on the lowest tier only. Tiering
    // policies override this with their demotion mechanisms.
    if (node.tier() != sim_->memory().tierOrder().back())
        return;
    std::size_t guard = 0;
    while (!node.aboveHigh() && guard++ < 64) {
        if (evictToStorage(node, 64) == 0)
            break;
    }
}

std::size_t
TieringPolicy::evictToStorage(sim::Node &node, std::size_t target)
{
    auto &lists = node.lists();
    std::size_t freed = 0;
    // Kernel order: prefer file-backed pages (cheap to drop) over anon.
    for (bool anon : {false, true}) {
        if (freed >= target)
            break;
        pfra::ScanStats balance = pfra::balanceActiveInactive(
            lists, anon, target * 2, node.inactiveRatio());
        sim_->chargeScan(balance.scanned);
        std::vector<Page *> victims;
        pfra::ScanStats scan = pfra::collectInactiveCandidates(
            lists, anon, target - freed, victims);
        sim_->chargeScan(scan.scanned);
        for (Page *pg : victims) {
            sim_->evictPage(pg);
            ++freed;
        }
    }
    return freed;
}

}  // namespace policies
}  // namespace mclock
