#include "policies/amp.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"
#include "pfra/lru_lists.hh"
#include "pfra/vmscan.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"

namespace mclock {
namespace policies {

AmpPolicy::AmpPolicy(AmpMode mode, AmpConfig cfg) : mode_(mode), cfg_(cfg)
{
}

const char *
AmpPolicy::name() const
{
    switch (mode_) {
      case AmpMode::Lru: return "amp-lru";
      case AmpMode::Lfu: return "amp-lfu";
      case AmpMode::Random: return "amp-random";
    }
    return "amp";
}

void
AmpPolicy::attach(sim::Simulator &sim)
{
    TieringPolicy::attach(sim);
    sim.daemons().add("amp_scan", cfg_.scanInterval,
                      [this](SimTime now) { tick(now); });
}

void
AmpPolicy::tick(SimTime now)
{
    auto &mem = sim_->memory();
    auto &space = sim_->space();
    sim_->vmstat().add(stats::VmItem::KpromotedWake);
    sim_->trace().record(stats::TraceEventType::KpromotedWake,
                         kInvalidNode, 0, 0);
    sim_->metrics().beginPromotionRound();

    // Full profiling pass: AMP scans every page of both tiers. Collect
    // lower-tier candidates and score them by the selection mode.
    std::vector<Page *> candidates;
    std::uint64_t scanned = 0;
    space.forEachPage([&](Page *pg) {
        ++scanned;
        if (!pg->resident() || !pg->onLru() || pg->unevictable() ||
            pg->locked()) {
            return;
        }
        // Any page below the top tier is a promotion candidate.
        TierRank up;
        if (mem.higherTier(mem.node(pg->node()).tier(), up))
            candidates.push_back(pg);
    });
    sim_->chargeScan(scanned);

    switch (mode_) {
      case AmpMode::Lru:
        std::sort(candidates.begin(), candidates.end(),
                  [](const Page *a, const Page *b) {
                      return a->lastAccess() > b->lastAccess();
                  });
        break;
      case AmpMode::Lfu:
        std::sort(candidates.begin(), candidates.end(),
                  [](const Page *a, const Page *b) {
                      return a->accessCount() > b->accessCount();
                  });
        break;
      case AmpMode::Random:
        for (std::size_t i = candidates.size(); i > 1; --i) {
            std::swap(candidates[i - 1],
                      candidates[sim_->rng().nextRange(i)]);
        }
        break;
    }

    std::size_t promoted = 0;
    for (Page *pg : candidates) {
        if (promoted >= cfg_.promoteBatch)
            break;
        // Skip pages with no signal at all (never accessed).
        if (mode_ != AmpMode::Random && pg->accessCount() == 0)
            break;
        auto &lists = mem.node(pg->node()).lists();
        lists.remove(pg);
        bool ok = sim_->promotePage(
            pg, sim::Simulator::ChargeMode::Background);
        if (!ok) {
            // Make room in the tier the page would be promoted into.
            TierRank up;
            if (!mem.higherTier(mem.node(pg->node()).tier(), up))
                up = mem.tierOrder().front();
            for (NodeId id : mem.tier(up))
                sim_->maybeReclaim(mem.node(id));
            ok = sim_->promotePage(
                pg, sim::Simulator::ChargeMode::Background);
        }
        if (ok) {
            pg->setActive(true);
            pg->setReferenced(false);
            mem.node(pg->node()).lists().add(
                pg, pfra::NodeLists::activeKind(pg->isAnon()));
            ++promoted;
        } else {
            lists.add(pg, pfra::NodeLists::activeKind(pg->isAnon()));
        }
    }
    sim_->stats().inc("amp_promoted", promoted);

    if (cfg_.decayCounts) {
        space.forEachPage([](Page *pg) {
            // Halve LFU counts so stale popularity ages out.
            pg->setAccessCount(pg->accessCount() / 2);
        });
    }
    (void)now;
}

void
AmpPolicy::handlePressure(sim::Node &node)
{
    auto &mem = sim_->memory();
    TierRank down;
    const bool hasLower = mem.lowerTier(node.tier(), down);
    std::size_t remaining = cfg_.pressureBudget;
    bool progress = true;
    while (!node.aboveHigh() && remaining > 0 && progress) {
        progress = false;
        for (bool anon : {false, true}) {
            std::vector<Page *> victims;
            const std::size_t chunk = std::min<std::size_t>(remaining, 64);
            if (chunk == 0)
                break;
            const auto stats = pfra::collectInactiveCandidates(
                node.lists(), anon, chunk, victims);
            sim_->chargeScan(stats.scanned);
            remaining -= std::min<std::size_t>(
                remaining, stats.scanned ? stats.scanned : 1);
            for (Page *pg : victims) {
                progress = true;
                if (hasLower &&
                    sim_->demotePage(
                        pg, sim::Simulator::ChargeMode::Background)) {
                    pg->setActive(false);
                    pg->setReferenced(false);
                    mem.node(pg->node()).lists().add(
                        pg, pfra::NodeLists::inactiveKind(anon));
                } else {
                    sim_->evictPage(pg);
                }
            }
        }
        for (bool anon : {true, false}) {
            const auto stats = pfra::balanceActiveInactive(
                node.lists(), anon, 128, node.inactiveRatio());
            sim_->chargeScan(stats.scanned);
            if (stats.deactivated > 0)
                progress = true;
        }
    }
}

FeatureRow
AmpPolicy::features() const
{
    FeatureRow row;
    row.tiering = "AMP";
    row.tracking = "Reference Bit";
    row.promotion = "Recency+Frequency+Random";
    row.demotion = "Recency";
    row.numaAware = "No";
    row.spaceOverhead = "Yes";
    row.generality = "Huge Page";
    row.evaluation = "Emulator (QEMU)";
    row.usability = "No KMEM DAX Support";
    row.keyInsight = "Hybrid page selection";
    return row;
}

}  // namespace policies
}  // namespace mclock
