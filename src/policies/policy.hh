/**
 * @file
 * The tiering-policy interface.
 *
 * A TieringPolicy decides where pages are born, observes accesses (at the
 * points a real kernel could observe them: supervised syscalls, PTE
 * accessed bits, or software hint faults), runs periodic daemons, and
 * reacts to memory pressure. The Simulator invokes the hooks; policies
 * invoke Simulator services (migration, time charging, daemon
 * registration) back.
 */

#ifndef MCLOCK_POLICIES_POLICY_HH_
#define MCLOCK_POLICIES_POLICY_HH_

#include <memory>
#include <string>

#include "base/types.hh"

namespace mclock {

class Page;

namespace sim {
class Simulator;
class Node;
}  // namespace sim

namespace policies {

/** Per-access context passed to the memory-access hook. */
struct AccessContext
{
    Vaddr va = 0;
    bool write = false;
    /**
     * When true, @c latency replaces the default tier latency. Used by
     * Memory-mode, whose memory-side DRAM cache determines service time.
     */
    bool latencyOverridden = false;
    SimTime latency = 0;
};

/** One row of the paper's Table I feature matrix. */
struct FeatureRow
{
    std::string tiering;
    std::string tracking;       ///< page access tracking mechanism
    std::string promotion;      ///< page selection for promotion
    std::string demotion;       ///< page selection for demotion
    std::string numaAware;
    std::string spaceOverhead;
    std::string generality;     ///< huge pages only vs all pages
    std::string evaluation;     ///< emulator vs real PM
    std::string usability;      ///< usability limitation
    std::string keyInsight;
};

/** Abstract base for all tiering policies. */
class TieringPolicy
{
  public:
    virtual ~TieringPolicy() = default;

    /** Short identifier used in benches ("multiclock", "nimble", ...). */
    virtual const char *name() const = 0;

    /**
     * Bind to a simulator. Called once before the run starts; overrides
     * must call the base implementation, then may register daemons.
     */
    virtual void attach(sim::Simulator &sim);

    /**
     * Pick the node for a newly faulted-in page.
     *
     * The default implements the standard tiered allocation path: the
     * highest-performing tier whose free count stays above the min
     * watermark wins; otherwise fall through to lower tiers; as a last
     * resort, dip into the reserve of the lowest tier.
     */
    virtual NodeId selectAllocationNode(Page &page);

    /** A page was just faulted in and placed; enqueue it on LRU lists. */
    virtual void onPageAllocated(Page *page);

    /** A page is being torn down; remove it from policy structures. */
    virtual void onPageFreed(Page *page);

    /**
     * A memory-visible access (LLC miss) reached @p page. The PTE
     * accessed/dirty bits have already been set by the "hardware".
     *
     * Policies that override this must set @c observesMemoryAccess_ in
     * their constructor: the simulator consults observesMemoryAccess()
     * once at attach time and skips the virtual dispatch on the access
     * fast path for the (common) policies that observe nothing here.
     */
    virtual void onMemoryAccess(Page *page, AccessContext &ctx);

    /** True iff onMemoryAccess is overridden (fast-path dispatch hint). */
    bool observesMemoryAccess() const { return observesMemoryAccess_; }

    /**
     * A supervised access: the kernel mediated this access (read/write
     * syscall path) and can update page state before completing it. This
     * is the mark_page_accessed() entry point.
     */
    virtual void onSupervisedAccess(Page *page);

    /**
     * The access hit a PTE this policy poisoned for hint-fault tracking.
     * The simulator has already charged the hint-fault trap latency and
     * cleared the poison; the policy may charge further inline work
     * (e.g. AutoTiering promotes in the fault handler).
     */
    virtual void onHintFault(Page *page);

    /**
     * Free frames on @p node fell below the low watermark (called from
     * the allocator, standing in for a kswapd wakeup) or direct reclaim
     * needs progress. Reclaim/demote until the high watermark or until a
     * per-invocation budget is exhausted.
     */
    virtual void handlePressure(sim::Node &node);

    /** Table I row for this policy. */
    virtual FeatureRow features() const = 0;

  protected:
    /**
     * Vanilla PFRA eviction used as the pressure fallback: balance
     * active/inactive, then evict unreferenced inactive-tail pages to
     * block storage (never migrating between tiers). Exposed to
     * subclasses because several policies end with this step on the
     * lowest tier.
     *
     * @return pages freed
     */
    std::size_t evictToStorage(sim::Node &node, std::size_t target);

    sim::Simulator *sim_ = nullptr;
    /** Set in the constructor of policies overriding onMemoryAccess. */
    bool observesMemoryAccess_ = false;
};

}  // namespace policies
}  // namespace mclock

#endif  // MCLOCK_POLICIES_POLICY_HH_
