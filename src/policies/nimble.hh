/**
 * @file
 * Nimble page selection (recency-only baseline).
 *
 * Nimble's contribution is fast (multi-threaded, exchange-based) page
 * migration; its page *selection* reuses the kernel's CLOCK profiling:
 * any page in the lower tier that was referenced since the last scan is
 * a promotion candidate. Following the paper's methodology, we implement
 * exactly that single-threaded selection mechanism so the comparison
 * with MULTI-CLOCK isolates page selection: one access since the last
 * scan suffices for promotion (vs. MULTI-CLOCK's "recently accessed more
 * than once"). When the upper tier is full, Nimble uses its two-sided
 * page exchange with a cold page from the upper tier's inactive tail.
 */

#ifndef MCLOCK_POLICIES_NIMBLE_HH_
#define MCLOCK_POLICIES_NIMBLE_HH_

#include <cstddef>
#include <vector>

#include "base/types.hh"
#include "vm/page.hh"
#include "base/units.hh"
#include "policies/policy.hh"
#include "sim/daemon.hh"

namespace mclock {

namespace sim {
class Node;
}

namespace policies {

/** Tunables for the Nimble selection baseline. */
struct NimbleConfig
{
    SimTime scanInterval = 1_s;    ///< promotion daemon period
    std::size_t nrScan = 1024;     ///< pages scanned per list per run
    /**
     * Max pages promoted per wake: Nimble exchanges the *top* recently
     * accessed pages, a bounded batch per pass.
     */
    std::size_t promoteBudget = 128;
    std::size_t pressureBudget = 2048;
    /** Upper-tier pages sampled when looking for an exchange victim. */
    std::size_t victimSample = 64;
};

/** Recency-only promotion via reference bits; exchange when full. */
class NimblePolicy : public TieringPolicy
{
  public:
    explicit NimblePolicy(NimbleConfig cfg = {});

    const char *name() const override { return "nimble"; }

    void attach(sim::Simulator &sim) override;

    /** Same demotion machinery as MULTI-CLOCK minus the promote list. */
    void handlePressure(sim::Node &node) override;

    FeatureRow features() const override;

    /** Adjust the daemon period at runtime (Fig. 10 sweeps). */
    void setScanInterval(SimTime interval);

    const NimbleConfig &config() const { return cfg_; }

  private:
    /** One wake of the promotion daemon on @p node. */
    void tick(sim::Node &node, SimTime now);

    /** Scan one list; promote every referenced page found. */
    std::uint64_t scanAndPromote(sim::Node &node, LruListKind kind,
                                 std::size_t nrScan, std::uint64_t &promoted);

    /** Find a cold page in the tier at @p tier to exchange with. */
    Page *pickExchangeVictim(bool anon, TierRank tier);

    NimbleConfig cfg_;
    std::vector<sim::DaemonId> daemonIds_;
};

}  // namespace policies
}  // namespace mclock

#endif  // MCLOCK_POLICIES_NIMBLE_HH_
