#include "policies/nimble.hh"

#include "base/logging.hh"
#include "pfra/vmscan.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"

namespace mclock {
namespace policies {

NimblePolicy::NimblePolicy(NimbleConfig cfg) : cfg_(cfg)
{
}

void
NimblePolicy::attach(sim::Simulator &sim)
{
    TieringPolicy::attach(sim);
    auto &mem = sim.memory();
    daemonIds_.clear();
    for (std::size_t i = 0; i < mem.numNodes(); ++i) {
        const NodeId id = static_cast<NodeId>(i);
        TierRank up;
        if (!mem.higherTier(mem.node(id).tier(), up))
            continue;
        daemonIds_.push_back(sim.daemons().add(
            "knimble/" + std::to_string(id), cfg_.scanInterval,
            [this, id](SimTime now) {
                tick(sim_->memory().node(id), now);
            }));
    }
}

void
NimblePolicy::setScanInterval(SimTime interval)
{
    MCLOCK_ASSERT(interval > 0);
    cfg_.scanInterval = interval;
    if (sim_) {
        for (sim::DaemonId id : daemonIds_)
            sim_->daemons().setInterval(id, interval);
    }
}

void
NimblePolicy::tick(sim::Node &node, SimTime now)
{
    (void)now;
    sim_->vmstat().add(stats::VmItem::KpromotedWake, node.id());
    sim_->trace().record(stats::TraceEventType::KpromotedWake, node.id(),
                         node.lists().inactiveSize(true),
                         node.lists().activeSize(true));
    sim_->metrics().beginPromotionRound();
    std::uint64_t scanned = 0;
    std::uint64_t promoted = 0;
    for (bool anon : {true, false}) {
        scanned += scanAndPromote(node, pfra::NodeLists::inactiveKind(anon),
                                  cfg_.nrScan, promoted);
        scanned += scanAndPromote(node, pfra::NodeLists::activeKind(anon),
                                  cfg_.nrScan, promoted);
    }
    sim_->chargeScan(scanned);
    sim_->stats().inc("nimble_runs");
    sim_->stats().inc("nimble_promoted", promoted);
}

std::uint64_t
NimblePolicy::scanAndPromote(sim::Node &node, LruListKind kind,
                             std::size_t nrScan, std::uint64_t &promoted)
{
    auto &mem = sim_->memory();
    auto &lists = node.lists();
    auto &list = lists.list(kind);
    const bool anon = (kind == LruListKind::InactiveAnon ||
                       kind == LruListKind::ActiveAnon);
    const std::size_t budget = std::min(nrScan, list.size());
    // Exchange victims come from the adjacent faster tier — the tier
    // promotePage() targets from this node.
    TierRank up = kInvalidTier;
    const bool hasHigher = mem.higherTier(node.tier(), up);

    for (std::size_t i = 0; i < budget; ++i) {
        if (promoted >= cfg_.promoteBudget)
            break;  // the per-wake "top pages" batch is exhausted
        Page *pg = list.back();
        if (!pg->testAndClearPteReferenced()) {
            lists.rotateToFront(pg);
            continue;
        }
        // Referenced since the last scan: Nimble promotes on recency
        // alone. Migrate now; exchange with a cold upper-tier page when
        // the upper tier has no free frames.
        lists.remove(pg);
        if (sim_->promotePage(pg, sim::Simulator::ChargeMode::Background)) {
            pg->setActive(true);
            pg->setReferenced(false);
            mem.node(pg->node()).lists().add(
                pg, pfra::NodeLists::activeKind(pg->isAnon()));
            ++promoted;
            continue;
        }
        Page *victim = hasHigher ? pickExchangeVictim(anon, up) : nullptr;
        if (victim) {
            auto &victimLists = mem.node(victim->node()).lists();
            victimLists.remove(victim);
            if (sim_->exchangePages(pg, victim, sim::Simulator::ChargeMode::Background)) {
                pg->setActive(true);
                pg->setReferenced(false);
                mem.node(pg->node()).lists().add(
                    pg, pfra::NodeLists::activeKind(pg->isAnon()));
                victim->setActive(false);
                victim->setReferenced(false);
                mem.node(victim->node()).lists().add(
                    victim,
                    pfra::NodeLists::inactiveKind(victim->isAnon()));
                ++promoted;
                continue;
            }
            // Exchange failed (locked): put both back.
            victim->setReferenced(false);
            mem.node(victim->node()).lists().add(
                victim, pfra::NodeLists::inactiveKind(victim->isAnon()));
        }
        // No exchange victim: fall back to the shared demotion
        // machinery (the paper implements Nimble's selection inside the
        // same kernel framework), then retry the promotion.
        if (hasHigher) {
            for (NodeId id : mem.tier(up))
                sim_->maybeReclaim(mem.node(id));
            if (sim_->promotePage(pg,
                                  sim::Simulator::ChargeMode::Background)) {
                pg->setActive(true);
                pg->setReferenced(false);
                mem.node(pg->node()).lists().add(
                    pg, pfra::NodeLists::activeKind(pg->isAnon()));
                ++promoted;
                continue;
            }
        }
        // Could not move it; return to this node's list head.
        lists.add(pg, kind);
    }
    lists.statAdd(isActiveList(kind) ? stats::VmItem::PgscanActive
                                     : stats::VmItem::PgscanInactive,
                  budget);
    return budget;
}

Page *
NimblePolicy::pickExchangeVictim(bool anon, TierRank tier)
{
    // Exchange with the bottom of the upper tier's LRU: sample the
    // inactive tail for a page not referenced since the last scan; if
    // none, rebalance active -> inactive and sample once more.
    auto &mem = sim_->memory();
    for (NodeId id : mem.tier(tier)) {
        auto &lists = mem.node(id).lists();
        for (int attempt = 0; attempt < 2; ++attempt) {
            auto &inactive =
                lists.list(pfra::NodeLists::inactiveKind(anon));
            const std::size_t sample =
                std::min(cfg_.victimSample, inactive.size());
            for (std::size_t i = 0; i < sample; ++i) {
                Page *pg = inactive.back();
                // CLOCK pass over the upper tier: consume the accessed
                // bit; pages referenced since the previous pass get a
                // second chance, the rest are cold enough to exchange.
                if (!pg->testAndClearPteReferenced() && !pg->locked() &&
                    !pg->unevictable()) {
                    return pg;
                }
                lists.rotateToFront(pg);
            }
            if (attempt == 0) {
                auto &node = mem.node(id);
                const auto stats = pfra::balanceActiveInactive(
                    node.lists(), anon, 256, node.inactiveRatio());
                sim_->chargeScan(stats.scanned);
                if (stats.deactivated == 0)
                    break;
            }
        }
    }
    return nullptr;
}

void
NimblePolicy::handlePressure(sim::Node &node)
{
    auto &mem = sim_->memory();
    // Rebalance, then demote unreferenced inactive-tail pages.
    for (bool anon : {true, false}) {
        const auto stats = pfra::balanceActiveInactive(
            node.lists(), anon, cfg_.pressureBudget, node.inactiveRatio());
        sim_->chargeScan(stats.scanned);
    }
    TierRank down;
    const bool hasLower = mem.lowerTier(node.tier(), down);
    std::size_t remaining = cfg_.pressureBudget;
    bool progress = true;
    while (!node.aboveHigh() && remaining > 0 && progress) {
        progress = false;
        for (bool anon : {false, true}) {
            std::vector<Page *> victims;
            const std::size_t chunk = std::min<std::size_t>(remaining, 64);
            if (chunk == 0)
                break;
            const auto stats = pfra::collectInactiveCandidates(
                node.lists(), anon, chunk, victims);
            sim_->chargeScan(stats.scanned);
            remaining -= std::min<std::size_t>(
                remaining, stats.scanned ? stats.scanned : 1);
            for (Page *pg : victims) {
                progress = true;
                if (hasLower && sim_->demotePage(pg, sim::Simulator::ChargeMode::Background)) {
                    pg->setActive(false);
                    pg->setReferenced(false);
                    mem.node(pg->node()).lists().add(
                        pg, pfra::NodeLists::inactiveKind(anon));
                } else {
                    sim_->evictPage(pg);
                }
            }
        }
    }
}

FeatureRow
NimblePolicy::features() const
{
    FeatureRow row;
    row.tiering = "Nimble";
    row.tracking = "Reference Bit";
    row.promotion = "Recency";
    row.demotion = "Recency";
    row.numaAware = "No";
    row.spaceOverhead = "No";
    row.generality = "All";
    row.evaluation = "Emulator";
    row.usability = "Config. Launcher";
    row.keyInsight = "Optimize huge page migrations";
    return row;
}

}  // namespace policies
}  // namespace mclock
