#include "policies/static_tiering.hh"

namespace mclock {
namespace policies {

FeatureRow
StaticTieringPolicy::features() const
{
    FeatureRow row;
    row.tiering = "Static-Tiering";
    row.tracking = "N/A";
    row.promotion = "N/A";
    row.demotion = "N/A";
    row.numaAware = "Yes";
    row.spaceOverhead = "N/A";
    row.generality = "All";
    row.evaluation = "PM";
    row.usability = "None";
    row.keyInsight = "Straight forward";
    return row;
}

}  // namespace policies
}  // namespace mclock
