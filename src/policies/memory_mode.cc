#include "policies/memory_mode.hh"

#include "base/logging.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"

namespace mclock {
namespace policies {

MemoryModePolicy::MemoryModePolicy(std::size_t dramCacheBytes)
    : dramCacheBytes_(dramCacheBytes)
{
    MCLOCK_ASSERT(dramCacheBytes > 0);
    observesMemoryAccess_ = true;
}

void
MemoryModePolicy::attach(sim::Simulator &sim)
{
    TieringPolicy::attach(sim);
    // The OS must only see the far-memory tier; every faster tier acts
    // as the memory-side cache, not as nodes.
    if (sim.memory().numTiers() != 1 ||
        sim.memory().tierOrder().front() == 0) {
        MCLOCK_FATAL("Memory-mode requires a far-memory-only machine "
                     "config (the DRAM is the memory-side cache, not a "
                     "node)");
    }
    cache_ = std::make_unique<DramCache>(dramCacheBytes_, sim.memConfig());
}

void
MemoryModePolicy::onMemoryAccess(Page *page, AccessContext &ctx)
{
    const Paddr pa = page->paddr() + (ctx.va & (kPageSize - 1));
    const DramCacheResult res = cache_->access(pa, ctx.write);
    ctx.latencyOverridden = true;
    ctx.latency = res.latency;
}

FeatureRow
MemoryModePolicy::features() const
{
    FeatureRow row;
    row.tiering = "Memory-mode";
    row.tracking = "Hardware (memory controller)";
    row.promotion = "Direct-mapped cache fill";
    row.demotion = "Cache eviction";
    row.numaAware = "Per-socket";
    row.spaceOverhead = "No";
    row.generality = "All";
    row.evaluation = "PM";
    row.usability = "DRAM capacity hidden from OS";
    row.keyInsight = "DRAM as memory-side cache";
    return row;
}

}  // namespace policies
}  // namespace mclock
