/**
 * @file
 * Memory-mode (2LM) baseline.
 *
 * In Memory-mode the memory controller uses all of a socket's DRAM as a
 * direct-mapped cache in front of the PM DIMMs, and the OS sees only the
 * PM capacity. Use this policy with a machine config whose node list
 * contains only PM nodes (sim::paperMachineMemoryMode()); pass the DRAM
 * capacity to the policy, which models the memory-side cache.
 */

#ifndef MCLOCK_POLICIES_MEMORY_MODE_HH_
#define MCLOCK_POLICIES_MEMORY_MODE_HH_

#include <cstddef>
#include <memory>

#include "mem/dram_cache.hh"
#include "policies/policy.hh"

namespace mclock {
namespace policies {

/** DRAM-as-cache baseline; hides DRAM capacity from the OS. */
class MemoryModePolicy : public TieringPolicy
{
  public:
    /** @param dramCacheBytes capacity of the DRAM acting as cache */
    explicit MemoryModePolicy(std::size_t dramCacheBytes);

    const char *name() const override { return "memory-mode"; }

    void attach(sim::Simulator &sim) override;

    /** Every memory-visible access is serviced through the DRAM cache. */
    void onMemoryAccess(Page *page, AccessContext &ctx) override;

    FeatureRow features() const override;

    const DramCache &cache() const { return *cache_; }

  private:
    std::size_t dramCacheBytes_;
    std::unique_ptr<DramCache> cache_;
};

}  // namespace policies
}  // namespace mclock

#endif  // MCLOCK_POLICIES_MEMORY_MODE_HH_
