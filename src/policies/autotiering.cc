#include "policies/autotiering.hh"

#include <algorithm>

#include "base/logging.hh"
#include "pfra/lru_lists.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"

namespace mclock {
namespace policies {

AutoTieringPolicy::AutoTieringPolicy(bool opm, AutoTieringConfig cfg)
    : AutoTieringPolicy(opm ? AutoTieringMode::Opm : AutoTieringMode::Cpm,
                        cfg)
{
}

AutoTieringPolicy::AutoTieringPolicy(AutoTieringMode mode,
                                     AutoTieringConfig cfg)
    : mode_(mode), cfg_(cfg)
{
}

void
AutoTieringPolicy::attach(sim::Simulator &sim)
{
    TieringPolicy::attach(sim);
    sim.daemons().add("at_scan", cfg_.scanInterval,
                      [this](SimTime now) { scanTick(now); });
}

void
AutoTieringPolicy::scanTick(SimTime now)
{
    auto &space = sim_->space();
    const PageNum limit = space.vpnLimit();
    if (limit == 0)
        return;

    sim_->vmstat().add(stats::VmItem::KpromotedWake);
    sim_->trace().record(stats::TraceEventType::KpromotedWake,
                         kInvalidNode, cursor_, 0);

    auto &mem = sim_->memory();
    std::size_t poisoned = 0;
    std::size_t visited = 0;
    std::size_t demoted = 0;
    // AutoNUMA unmaps a bounded chunk per pass; even at its most
    // aggressive it covers the footprint over many passes, never all
    // of it at once.
    const std::size_t chunk = std::min<std::size_t>(
        cfg_.poisonChunk,
        std::max<std::size_t>(64, static_cast<std::size_t>(limit) / 16));
    // A hot page hint-faults about once per full poisoning pass; use
    // that as the recency unit for the victim-coldness horizon.
    passPeriod_ = cfg_.scanInterval *
                  std::max<SimTime>(1, (limit + chunk - 1) / chunk);
    // Visit each page at most once per pass (one wrap of the space),
    // so the history vector shifts exactly once per profiling pass.
    const std::size_t maxVisit = static_cast<std::size_t>(limit);

    while (poisoned < chunk && visited < maxVisit) {
        if (cursor_ >= limit)
            cursor_ = 0;
        Page *pg = space.lookup(cursor_++);
        ++visited;
        if (!pg || !pg->resident() || pg->unevictable())
            continue;

        // History maintenance: one shift per profiling visit, recording
        // whether the page hint-faulted since the previous visit.
        pg->shiftHistory(pg->hintFaultedSinceScan());
        pg->setHintFaultedSinceScan(false);

        // OPM's progressive demotion: zero-history upper-tier pages
        // (anything with a tier below them) are demoted when their tier
        // lacks headroom.
        TierRank below;
        if (opm() && demoted < cfg_.demoteBudget &&
            pg->historyBits() == 0 && pg->onLru() &&
            mem.lowerTier(sim_->pageTier(pg), below)) {
            sim::Node &node = mem.node(pg->node());
            if (node.freeFrames() <= node.watermarks().high) {
                if (demoteColdPage(pg)) {
                    ++demoted;
                    continue;
                }
            }
        }

        if (!pg->hintPoisoned()) {
            pg->setHintPoisoned(true);
            ++poisoned;
        }
    }
    // PTE manipulation cost for the pass (change_prot_numa).
    sim_->chargeScan(visited);
    sim_->stats().inc("at_scan_passes");
    sim_->stats().inc("at_poisoned", poisoned);
    sim_->stats().inc("at_opm_demoted", demoted);
    (void)now;
}

void
AutoTieringPolicy::onHintFault(Page *page)
{
    const SimTime now = sim_->now();
    page->setLastHintFault(now);
    page->setHintFaultedSinceScan(true);
    if (!page->onLru() || page->locked())
        return;
    auto &mem = sim_->memory();
    // Pages on the top tier have nowhere to promote into; everything
    // below targets its adjacent faster tier.
    TierRank up;
    if (!mem.higherTier(sim_->pageTier(page), up))
        return;

    auto &srcLists = mem.node(page->node()).lists();

    // Promotion to the best node, synchronously in the fault handler.
    // Conservative path: only when the upper tier has genuinely free
    // frames (above the reserve).
    const NodeId dst = mem.pickNodeWithSpace(up, /*respectMin=*/true);
    if (dst != kInvalidNode) {
        srcLists.remove(page);
        if (sim_->migratePage(page, dst,
                              sim::Simulator::ChargeMode::FaultPath)) {
            page->setActive(true);
            page->setReferenced(false);
            mem.node(page->node()).lists().add(
                page, pfra::NodeLists::activeKind(page->isAnon()));
            sim_->stats().inc("at_fault_promotions");
            return;
        }
        srcLists.add(page, pfra::NodeLists::inactiveKind(page->isAnon()));
        return;
    }

    if (mode_ == AutoTieringMode::AutoNuma)
        return;  // AutoNUMA-tiering never displaces upper-tier pages

    // Upper tier full: exchange with a victim that looks colder. With
    // only sparse hint-fault recency to judge by, this is where CPM goes
    // wrong under churny workloads.
    Page *victim = pickColdVictim(page->isAnon(), now, up);
    if (!victim)
        return;
    auto &victimLists = mem.node(victim->node()).lists();
    srcLists.remove(page);
    victimLists.remove(victim);
    if (sim_->exchangePages(page, victim,
                            sim::Simulator::ChargeMode::FaultPath)) {
        page->setActive(true);
        page->setReferenced(false);
        mem.node(page->node()).lists().add(
            page, pfra::NodeLists::activeKind(page->isAnon()));
        victim->setActive(false);
        victim->setReferenced(false);
        mem.node(victim->node()).lists().add(
            victim, pfra::NodeLists::inactiveKind(victim->isAnon()));
        sim_->stats().inc("at_fault_exchanges");
    } else {
        srcLists.add(page, pfra::NodeLists::inactiveKind(page->isAnon()));
        victimLists.add(victim,
                        pfra::NodeLists::inactiveKind(victim->isAnon()));
    }
}

SimTime
AutoTieringPolicy::coldHorizon() const
{
    // At least one full profiling pass without a fault, and never
    // shorter than the configured floor.
    return std::max(cfg_.victimColdThreshold, passPeriod_);
}

Page *
AutoTieringPolicy::pickColdVictim(bool anon, SimTime now, TierRank tier)
{
    auto &mem = sim_->memory();
    for (NodeId id : mem.tier(tier)) {
        auto &lists = mem.node(id).lists();
        for (LruListKind kind : {pfra::NodeLists::inactiveKind(anon),
                                 pfra::NodeLists::activeKind(anon)}) {
            auto &list = lists.list(kind);
            const std::size_t sample =
                std::min(cfg_.victimSample, list.size());
            for (std::size_t i = 0; i < sample; ++i) {
                Page *pg = list.back();
                lists.rotateToFront(pg);
                if (pg->locked() || pg->unevictable())
                    continue;
                if (opm()) {
                    // OPM judges coldness by the history vector.
                    if (pg->historyBits() == 0)
                        return pg;
                } else {
                    // CPM: no hint fault within the recency horizon.
                    if (now - pg->lastHintFault() >= coldHorizon()) {
                        return pg;
                    }
                }
            }
        }
    }
    return nullptr;
}

bool
AutoTieringPolicy::demoteColdPage(Page *page)
{
    auto &mem = sim_->memory();
    auto &lists = mem.node(page->node()).lists();
    lists.remove(page);
    if (sim_->demotePage(page, sim::Simulator::ChargeMode::Background)) {
        page->setActive(false);
        page->setReferenced(false);
        mem.node(page->node()).lists().add(
            page, pfra::NodeLists::inactiveKind(page->isAnon()));
        return true;
    }
    lists.add(page, pfra::NodeLists::inactiveKind(page->isAnon()));
    return false;
}

void
AutoTieringPolicy::handlePressure(sim::Node &node)
{
    TierRank below;
    if (opm() && sim_->memory().lowerTier(node.tier(), below)) {
        // Demote history-cold pages until the watermark recovers.
        auto &lists = node.lists();
        std::size_t budget = cfg_.demoteBudget;
        for (bool anon : {true, false}) {
            auto &inactive =
                lists.list(pfra::NodeLists::inactiveKind(anon));
            std::size_t scan = std::min(budget, inactive.size());
            while (scan-- > 0 && !node.aboveHigh()) {
                Page *pg = inactive.back();
                if (pg->historyBits() == 0 && !pg->locked() &&
                    !pg->unevictable()) {
                    if (demoteColdPage(pg))
                        continue;
                }
                lists.rotateToFront(pg);
            }
        }
        return;
    }
    // CPM performs no proactive demotion; both fall back to last-resort
    // eviction on the lowest tier.
    TieringPolicy::handlePressure(node);
}

FeatureRow
AutoTieringPolicy::features() const
{
    FeatureRow row;
    switch (mode_) {
      case AutoTieringMode::AutoNuma:
        row.tiering = "AutoNUMA-Tiering";
        break;
      case AutoTieringMode::Cpm:
        row.tiering = "AutoTiering-CPM";
        break;
      case AutoTieringMode::Opm:
        row.tiering = "AutoTiering-OPM";
        break;
    }
    row.tracking = "Software Page Fault";
    row.promotion = "Recency";
    row.demotion = opm() ? "Frequency" : "N/A";
    row.numaAware = "Yes";
    row.spaceOverhead = "Yes";
    row.generality = "All";
    row.evaluation = "PM";
    row.usability = "Config. NUMA Paths";
    row.keyInsight = mode_ == AutoTieringMode::AutoNuma
                         ? "NUMA balancing"
                         : "Maintain N-bit history for demotion";
    return row;
}

}  // namespace policies
}  // namespace mclock
