/**
 * @file
 * Static tiering: the no-migration baseline.
 *
 * Pages are born in the highest tier with space and never move between
 * tiers afterwards, regardless of how their importance changes — the
 * paper's primary normalisation baseline. Under pressure on the lowest
 * tier, pages are evicted to block storage (vanilla PFRA); upper tiers
 * never reclaim because allocation simply falls through to lower tiers.
 */

#ifndef MCLOCK_POLICIES_STATIC_TIERING_HH_
#define MCLOCK_POLICIES_STATIC_TIERING_HH_

#include "policies/policy.hh"

namespace mclock {
namespace policies {

/** The static-tiering baseline (allocation spill, no migration). */
class StaticTieringPolicy : public TieringPolicy
{
  public:
    const char *name() const override { return "static"; }

    FeatureRow features() const override;
};

}  // namespace policies
}  // namespace mclock

#endif  // MCLOCK_POLICIES_STATIC_TIERING_HH_
