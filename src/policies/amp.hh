/**
 * @file
 * AMP-style page selection (extension; §II-D of the paper).
 *
 * AMP proposes tiered-memory page selection based on classical cache
 * replacement policies — LRU, LFU, and random — implemented by scanning
 * and profiling *all* memory pages of both tiers, which the paper argues
 * is impractical inside a real kernel (hundreds of millions of pages).
 * Our simulated machine is small enough to run it, so we provide AMP as
 * an extension baseline for the ablation benches: it quantifies what an
 * oracle-ish full-profiling selector buys relative to MULTI-CLOCK's
 * bounded scans, and what it costs.
 */

#ifndef MCLOCK_POLICIES_AMP_HH_
#define MCLOCK_POLICIES_AMP_HH_

#include <cstddef>

#include "base/types.hh"
#include "base/units.hh"
#include "policies/policy.hh"

namespace mclock {

namespace sim {
class Node;
}

namespace policies {

/** AMP selection flavours. */
enum class AmpMode {
    Lru,     ///< promote the most recently accessed lower-tier pages
    Lfu,     ///< promote the most frequently accessed lower-tier pages
    Random,  ///< promote uniformly random lower-tier pages
};

/** Tunables for the AMP extension baseline. */
struct AmpConfig
{
    SimTime scanInterval = 1_s;
    /** Pages promoted per pass (full profiling selects the global top). */
    std::size_t promoteBatch = 512;
    std::size_t pressureBudget = 2048;
    /** LFU/LRU decay: halve counts every pass to track phase changes. */
    bool decayCounts = true;
};

/** Full-profiling LRU/LFU/Random selection (AMP). */
class AmpPolicy : public TieringPolicy
{
  public:
    explicit AmpPolicy(AmpMode mode, AmpConfig cfg = {});

    const char *name() const override;

    void attach(sim::Simulator &sim) override;

    void handlePressure(sim::Node &node) override;

    FeatureRow features() const override;

  private:
    void tick(SimTime now);

    AmpMode mode_;
    AmpConfig cfg_;
};

}  // namespace policies
}  // namespace mclock

#endif  // MCLOCK_POLICIES_AMP_HH_
