/**
 * @file
 * AutoTiering baselines (AT-CPM and AT-OPM).
 *
 * AutoTiering builds on AutoNUMA: a profiling pass periodically poisons
 * ranges of PTEs (PROT_NONE) so that the next access takes a software
 * hint page fault, which both records recency and triggers migration
 * decisions *synchronously in the fault handler*:
 *
 *  - AT-CPM (conservative): a faulting lower-tier page is promoted to
 *    the best node if it has free space; otherwise CPM exchanges it with
 *    an upper-tier victim that looks colder (no recent hint fault). With
 *    sparse fault-based recency this misjudges under churny workloads.
 *  - AT-OPM (opportunistic/progressive): additionally maintains an n-bit
 *    per-page access-history vector from the profiling passes and
 *    proactively demotes zero-history upper-tier pages, keeping headroom
 *    so fault-path promotions rarely need exchanges.
 *
 * Both pay the hint-fault trap cost on the application's critical path,
 * and fault-path migrations carry the faultPathMigrationMultiplier
 * (page-lock stalls on the paper's 32-core machine).
 */

#ifndef MCLOCK_POLICIES_AUTOTIERING_HH_
#define MCLOCK_POLICIES_AUTOTIERING_HH_

#include <cstddef>

#include "base/types.hh"
#include "base/units.hh"
#include "policies/policy.hh"
#include "sim/daemon.hh"

namespace mclock {

namespace sim {
class Node;
}

namespace policies {

/** Tunables for the AutoTiering baselines. */
struct AutoTieringConfig
{
    /** Profiling (poisoning) pass period (task_numa_work cadence). */
    SimTime scanInterval = 1_s;
    /**
     * Pages poisoned per pass. AutoNUMA unmaps large chunks (default
     * scan size 256 MB); scaled to the simulated machine this covers a
     * sizeable fraction of the footprint each pass.
     */
    std::size_t poisonChunk = 8192;
    /** Upper-tier pages sampled when looking for an exchange victim. */
    std::size_t victimSample = 8;
    /**
     * CPM: a victim qualifies only if its last hint fault is older than
     * this (conservative "is it colder than the faulting page" check).
     */
    SimTime victimColdThreshold = 3_s;
    /** OPM: max proactive demotions per profiling pass. */
    std::size_t demoteBudget = 512;
};

/** The three hint-fault-based variants. */
enum class AutoTieringMode {
    AutoNuma,  ///< AutoNUMA-tiering: promote on fault when space exists
    Cpm,       ///< + conservative exchange with a colder victim
    Opm,       ///< + n-bit history and progressive demotion
};

/** AutoTiering-CPM / AutoTiering-OPM / AutoNUMA-tiering. */
class AutoTieringPolicy : public TieringPolicy
{
  public:
    /** @param opm true for AT-OPM, false for AT-CPM */
    explicit AutoTieringPolicy(bool opm, AutoTieringConfig cfg = {});

    explicit AutoTieringPolicy(AutoTieringMode mode,
                               AutoTieringConfig cfg = {});

    const char *
    name() const override
    {
        switch (mode_) {
          case AutoTieringMode::AutoNuma: return "autonuma";
          case AutoTieringMode::Cpm: return "at-cpm";
          case AutoTieringMode::Opm: return "at-opm";
        }
        return "autotiering";
    }

    void attach(sim::Simulator &sim) override;

    void onHintFault(Page *page) override;

    /** OPM demotes history-cold pages under pressure; CPM has none. */
    void handlePressure(sim::Node &node) override;

    FeatureRow features() const override;

    const AutoTieringConfig &config() const { return cfg_; }

  private:
    /** One profiling pass: poison PTEs, shift history, OPM demotions. */
    void scanTick(SimTime now);

    /** Sampled victim from the tier at @p tier that looks cold. */
    Page *pickColdVictim(bool anon, SimTime now, TierRank tier);

    /** Horizon separating warm from cold by hint-fault recency. */
    SimTime coldHorizon() const;

    /** Isolate + demote a page, reinserting on the lower tier's list. */
    bool demoteColdPage(Page *page);

    bool
    opm() const
    {
        return mode_ == AutoTieringMode::Opm;
    }

    AutoTieringMode mode_;
    AutoTieringConfig cfg_;
    PageNum cursor_ = 0;  ///< round-robin position of the poison pass
    /** Measured duration of one full poisoning pass over the space. */
    SimTime passPeriod_ = 0;
};

}  // namespace policies
}  // namespace mclock

#endif  // MCLOCK_POLICIES_AUTOTIERING_HH_
