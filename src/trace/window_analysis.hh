/**
 * @file
 * Observation/performance window analysis (paper Fig. 2).
 *
 * The execution period is divided into (observation window, performance
 * window) pairs. Pages accessed during an observation window are split
 * into those accessed exactly once and those accessed multiple times;
 * the analysis then measures their mean access counts in the following
 * performance window. The paper's finding — multi-access pages are far
 * more likely to be accessed next — is MULTI-CLOCK's core hypothesis.
 */

#ifndef MCLOCK_TRACE_WINDOW_ANALYSIS_HH_
#define MCLOCK_TRACE_WINDOW_ANALYSIS_HH_

#include <cstdint>

#include "base/types.hh"
#include "trace/access_trace.hh"

namespace mclock {
namespace trace {

/** Aggregated Fig. 2 statistics. */
struct WindowAnalysisResult
{
    /** Pages accessed exactly once in an observation window. */
    std::uint64_t singleSamples = 0;
    double singleMeanPerfAccesses = 0.0;
    /** Pages accessed more than once in an observation window. */
    std::uint64_t multiSamples = 0;
    double multiMeanPerfAccesses = 0.0;

    /** multi / single mean ratio (> 1 supports the hypothesis). */
    double
    ratio() const
    {
        return singleMeanPerfAccesses > 0.0
            ? multiMeanPerfAccesses / singleMeanPerfAccesses
            : 0.0;
    }
};

/**
 * Run the analysis over every (observation, performance) pair.
 *
 * @param trace       recorded accesses
 * @param obsWindow   observation window length
 * @param perfWindow  performance window length
 */
WindowAnalysisResult analyzeWindows(const AccessTrace &trace,
                                    SimTime obsWindow, SimTime perfWindow);

}  // namespace trace
}  // namespace mclock

#endif  // MCLOCK_TRACE_WINDOW_ANALYSIS_HH_
