/**
 * @file
 * Page-access trace capture (the paper's §II-A methodology).
 *
 * The motivation experiments sample pages from memory, assign them
 * identifiers, and trace accesses to them over time. AccessTrace stores
 * (page id, timestamp) events that the heatmap (Fig. 1) and the
 * observation/performance window analysis (Fig. 2) post-process.
 */

#ifndef MCLOCK_TRACE_ACCESS_TRACE_HH_
#define MCLOCK_TRACE_ACCESS_TRACE_HH_

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace mclock {
namespace trace {

/** One recorded access. */
struct AccessEvent
{
    std::uint32_t page;  ///< workload-assigned page identifier
    SimTime time;
};

/** Append-only access trace. */
class AccessTrace
{
  public:
    void
    record(std::uint32_t page, SimTime time)
    {
        events_.push_back({page, time});
    }

    const std::vector<AccessEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** Timestamp of the last event (0 when empty). */
    SimTime endTime() const
    {
        return events_.empty() ? 0 : events_.back().time;
    }

    void clear() { events_.clear(); }
    void reserve(std::size_t n) { events_.reserve(n); }

  private:
    std::vector<AccessEvent> events_;
};

}  // namespace trace
}  // namespace mclock

#endif  // MCLOCK_TRACE_ACCESS_TRACE_HH_
