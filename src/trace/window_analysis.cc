#include "trace/window_analysis.hh"

#include <unordered_map>

#include "base/logging.hh"

namespace mclock {
namespace trace {

WindowAnalysisResult
analyzeWindows(const AccessTrace &trace, SimTime obsWindow,
               SimTime perfWindow)
{
    MCLOCK_ASSERT(obsWindow > 0 && perfWindow > 0);
    const SimTime period = obsWindow + perfWindow;

    struct Counts
    {
        std::uint32_t obs = 0;
        std::uint32_t perf = 0;
    };
    // Key: (window-pair index, page id).
    std::unordered_map<std::uint64_t, Counts> perPage;
    perPage.reserve(trace.size() / 4 + 16);

    for (const auto &ev : trace.events()) {
        const std::uint64_t pair = ev.time / period;
        const bool inObs = (ev.time % period) < obsWindow;
        auto &c = perPage[(pair << 32) | ev.page];
        if (inObs)
            ++c.obs;
        else
            ++c.perf;
    }

    WindowAnalysisResult result;
    double singleSum = 0.0;
    double multiSum = 0.0;
    // Hash order is unspecified, but every quantity accumulated below
    // is order-independent: the sample tallies are integer increments,
    // and the sums only ever add uint32 counts — integer-valued
    // doubles, summed exactly (well under 2^53), so any iteration
    // order yields bit-identical results.
    // mclock-lint: unordered-iter-ok(order-independent exact reduction)
    for (const auto &[key, c] : perPage) {
        (void)key;
        if (c.obs == 1) {
            ++result.singleSamples;
            singleSum += c.perf;
        } else if (c.obs > 1) {
            ++result.multiSamples;
            multiSum += c.perf;
        }
        // Pages seen only in the performance window contribute nothing.
    }
    if (result.singleSamples)
        result.singleMeanPerfAccesses =
            singleSum / static_cast<double>(result.singleSamples);
    if (result.multiSamples)
        result.multiMeanPerfAccesses =
            multiSum / static_cast<double>(result.multiSamples);
    return result;
}

}  // namespace trace
}  // namespace mclock
