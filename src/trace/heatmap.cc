#include "trace/heatmap.hh"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "base/logging.hh"

namespace mclock {
namespace trace {

Heatmap
Heatmap::build(const AccessTrace &trace, std::size_t numPages,
               HeatmapConfig cfg)
{
    MCLOCK_ASSERT(numPages > 0);
    Heatmap hm;
    hm.buckets_ = cfg.timeBuckets;

    // Random sample without replacement (Fisher-Yates prefix).
    Rng rng(cfg.seed);
    std::vector<std::uint32_t> ids(numPages);
    for (std::size_t i = 0; i < numPages; ++i)
        ids[i] = static_cast<std::uint32_t>(i);
    const std::size_t k = std::min(cfg.sampledPages, numPages);
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.nextRange(numPages - i));
        std::swap(ids[i], ids[j]);
    }
    hm.pages_.assign(ids.begin(), ids.begin() + static_cast<long>(k));
    std::sort(hm.pages_.begin(), hm.pages_.end());

    // Lookup-only index (find below); row order comes from the sorted
    // pages_ vector, never from hashing.
    // mclock-lint: unordered-iter-ok(never iterated: point lookups only)
    std::unordered_map<std::uint32_t, std::size_t> rowOf;
    for (std::size_t r = 0; r < hm.pages_.size(); ++r)
        rowOf[hm.pages_[r]] = r;

    hm.counts_.assign(hm.pages_.size() * hm.buckets_, 0);
    const SimTime end = std::max<SimTime>(trace.endTime(), 1);
    for (const auto &ev : trace.events()) {
        auto it = rowOf.find(ev.page);
        if (it == rowOf.end())
            continue;
        std::size_t bucket = static_cast<std::size_t>(
            static_cast<unsigned long long>(ev.time) * hm.buckets_ / end);
        if (bucket >= hm.buckets_)
            bucket = hm.buckets_ - 1;
        ++hm.counts_[it->second * hm.buckets_ + bucket];
    }
    return hm;
}

std::uint64_t
Heatmap::count(std::size_t row, std::size_t bucket) const
{
    MCLOCK_ASSERT(row < pages_.size() && bucket < buckets_);
    return counts_[row * buckets_ + bucket];
}

void
Heatmap::writeCsv(CsvWriter &csv) const
{
    std::vector<std::string> header{"page"};
    for (std::size_t b = 0; b < buckets_; ++b)
        header.push_back("t" + std::to_string(b));
    csv.writeHeader(header);
    for (std::size_t r = 0; r < pages_.size(); ++r) {
        std::vector<std::string> row{std::to_string(pages_[r])};
        for (std::size_t b = 0; b < buckets_; ++b)
            row.push_back(std::to_string(count(r, b)));
        csv.writeRow(row);
    }
}

void
Heatmap::render(std::ostream &os) const
{
    std::uint64_t maxCount = 1;
    for (std::uint64_t c : counts_)
        maxCount = std::max(maxCount, c);
    for (std::size_t r = 0; r < pages_.size(); ++r) {
        os.width(8);
        os << pages_[r] << " |";
        for (std::size_t b = 0; b < buckets_; ++b) {
            const std::uint64_t c = count(r, b);
            const char *shade = " ";
            if (c > 0) {
                const double rel =
                    static_cast<double>(c) / static_cast<double>(maxCount);
                shade = rel > 0.5 ? "#" : (rel > 0.15 ? "+" : ".");
            }
            os << shade;
        }
        os << "|\n";
    }
}

}  // namespace trace
}  // namespace mclock
