// AccessTrace is header-only; this translation unit anchors the module.
#include "trace/access_trace.hh"
