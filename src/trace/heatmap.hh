/**
 * @file
 * Page-access heatmap (paper Fig. 1).
 *
 * Randomly samples pages, sorts them by ascending identifier (the
 * figure's Y axis), buckets execution time (X axis), and reports the
 * access frequency of each sampled page in each time segment.
 */

#ifndef MCLOCK_TRACE_HEATMAP_HH_
#define MCLOCK_TRACE_HEATMAP_HH_

#include <cstdint>
#include <ostream>
#include <vector>

#include "base/csv.hh"
#include "base/rng.hh"
#include "trace/access_trace.hh"

namespace mclock {
namespace trace {

/** Heatmap construction parameters. */
struct HeatmapConfig
{
    std::size_t sampledPages = 50;  ///< paper: 50 sampled pages
    std::size_t timeBuckets = 60;
    std::uint64_t seed = 7;
};

/** Sampled-page x time-bucket access-frequency matrix. */
class Heatmap
{
  public:
    /**
     * Build from a trace.
     * @param trace    recorded accesses
     * @param numPages id space to sample from ([0, numPages))
     */
    static Heatmap build(const AccessTrace &trace, std::size_t numPages,
                         HeatmapConfig cfg = {});

    std::size_t numRows() const { return pages_.size(); }
    std::size_t numBuckets() const { return buckets_; }
    std::uint32_t pageAt(std::size_t row) const { return pages_[row]; }
    std::uint64_t count(std::size_t row, std::size_t bucket) const;

    /** CSV: header bucket times, one row per sampled page. */
    void writeCsv(CsvWriter &csv) const;

    /** Coarse ASCII rendering (' ', '.', '+', '#' by intensity). */
    void render(std::ostream &os) const;

  private:
    std::vector<std::uint32_t> pages_;       ///< sorted sampled ids
    std::size_t buckets_ = 0;
    std::vector<std::uint64_t> counts_;      ///< rows x buckets
};

}  // namespace trace
}  // namespace mclock

#endif  // MCLOCK_TRACE_HEATMAP_HH_
