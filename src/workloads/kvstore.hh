/**
 * @file
 * A Memcached-like in-memory key-value store over simulated memory.
 *
 * Memcached keeps its hash table and slab-allocated items in anonymous
 * (malloc'ed) memory that the kernel observes only through reference
 * bits. This store reproduces the page classes YCSB ops touch:
 *
 *  - the bucket array of the hash table (small, uniformly hot),
 *  - item headers + values in slab chunks (hot according to the request
 *    distribution over keys).
 *
 * Slab chunks are mmap'ed on demand, so the allocation order during the
 * load phase determines which records are born in DRAM and which spill
 * to the PM tier once DRAM fills — the setup the paper evaluates.
 */

#ifndef MCLOCK_WORKLOADS_KVSTORE_HH_
#define MCLOCK_WORKLOADS_KVSTORE_HH_

#include <cstdint>
#include <vector>

#include "base/flat_map.hh"
#include "base/types.hh"
#include "base/units.hh"

namespace mclock {

namespace sim {
class Simulator;
}

namespace workloads {

/** KV store tuning knobs. */
struct KvStoreConfig
{
    std::size_t hashBuckets = 1u << 15;
    std::size_t slabChunkBytes = 1_MiB;
    /** Per-item header (key, flags, LRU pointers — as in memcached). */
    std::size_t itemHeaderBytes = 56;
    /** CPU time per operation (parsing, hashing, protocol handling). */
    SimTime cpuPerOp = 300_ns;
    /**
     * Issue each operation's simulated accesses as one batched
     * Simulator::stream() call instead of individual read()/write()
     * calls. Semantically identical (the stream executes the same
     * sequence in program order); the toggle exists so the perf suite
     * can pin batched == legacy. Default on.
     */
    bool batchAccesses = true;
    /**
     * Memory cgroup every region of this store (hash table and slabs)
     * is charged to. Default root: unaccounted, as before this knob.
     */
    MemCgroupId memcg = kRootMemcg;
};

/** Slab-allocated hash-table KV store issuing simulated accesses. */
class KvStore
{
  public:
    KvStore(sim::Simulator &sim, KvStoreConfig cfg = {});

    /** Insert or overwrite @p key with a value of @p valueBytes. */
    void put(std::uint64_t key, std::size_t valueBytes);

    /** Read @p key; returns false on miss. */
    bool get(std::uint64_t key);

    /** Read-modify-write (YCSB workload F). */
    bool readModifyWrite(std::uint64_t key);

    /** Delete @p key; the item's slab slot is recycled. */
    bool remove(std::uint64_t key);

    std::size_t itemCount() const { return index_.size(); }

    /** Total simulated bytes mmap'ed for slabs + hash table. */
    std::size_t footprintBytes() const { return footprint_; }

  private:
    struct Item
    {
        Vaddr addr;
        std::size_t bytes;  ///< header + value
    };

    /** Simulated bucket-array probe for @p key. */
    void touchBucket(std::uint64_t key, bool write);

    /** Address of @p key's bucket slot in the hash-table array. */
    Vaddr bucketAddr(std::uint64_t key) const;

    /** Allocate a slab slot of at least @p bytes. */
    Vaddr allocItem(std::size_t bytes);

    sim::Simulator &sim_;
    KvStoreConfig cfg_;
    Vaddr buckets_;
    // Host-side index only (the simulated hash table is the bucket
    // array above); flat map because one find() per op dominated the
    // YCSB profile under std::unordered_map.
    FlatMap64<Item> index_;
    std::vector<Vaddr> freeSlots_;   ///< recycled item slots (single class)
    std::size_t freeSlotBytes_ = 0;  ///< size class of recycled slots
    Vaddr chunkCursor_ = 0;
    std::size_t chunkRemaining_ = 0;
    std::size_t footprint_ = 0;
};

}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_KVSTORE_HH_
