/**
 * @file
 * YCSB request-distribution generators.
 *
 * Ports of the generators in the YCSB core package: zipfian (with the
 * Gray et al. incremental zeta computation), scrambled zipfian (zipfian
 * rank hashed over the key space so popular keys are spread uniformly),
 * latest (zipfian over recency of insertion), and uniform.
 */

#ifndef MCLOCK_WORKLOADS_ZIPF_HH_
#define MCLOCK_WORKLOADS_ZIPF_HH_

#include <cstdint>

#include "base/rng.hh"

namespace mclock {
namespace workloads {

/** Zipfian generator over [0, n) with parameter theta (YCSB default .99). */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta = 0.99);

    /** Draw the next rank (0 = most popular). */
    std::uint64_t next(Rng &rng);

    /** Grow the item count (used by the latest distribution on insert). */
    void setItemCount(std::uint64_t n);

    std::uint64_t itemCount() const { return items_; }

  private:
    static double zetaStatic(std::uint64_t st, std::uint64_t n,
                             double theta, double initial);
    void computeConstants();

    std::uint64_t items_;
    double theta_;
    double zetaN_;
    std::uint64_t zetaComputedTo_;
    double alpha_;
    double zeta2Theta_;
    double eta_;
};

/**
 * Scrambled zipfian: zipfian popularity ranks mapped through a hash so
 * hot items are uniformly spread over the key space (YCSB's default for
 * workloads A/B/C/F).
 */
class ScrambledZipfianGenerator
{
  public:
    explicit ScrambledZipfianGenerator(std::uint64_t n,
                                       double theta = 0.99);

    std::uint64_t next(Rng &rng);

  private:
    ZipfianGenerator zipf_;
    std::uint64_t items_;
};

/**
 * Latest distribution: most recently inserted records are most popular
 * (YCSB workload D). Call setItemCount() as records are inserted.
 */
class LatestGenerator
{
  public:
    explicit LatestGenerator(std::uint64_t n, double theta = 0.99);

    std::uint64_t next(Rng &rng);
    void setItemCount(std::uint64_t n);

  private:
    ZipfianGenerator zipf_;
    std::uint64_t items_;
};

/** Uniform over [0, n). */
class UniformGenerator
{
  public:
    explicit UniformGenerator(std::uint64_t n) : items_(n) {}

    std::uint64_t next(Rng &rng) { return rng.nextRange(items_); }
    void setItemCount(std::uint64_t n) { items_ = n; }

  private:
    std::uint64_t items_;
};

/** FNV-1a 64-bit hash (the scrambler YCSB uses). */
std::uint64_t fnv1a64(std::uint64_t v);

}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_ZIPF_HH_
