#include "workloads/zipf.hh"

#include <cmath>

#include "base/logging.hh"

namespace mclock {
namespace workloads {

std::uint64_t
fnv1a64(std::uint64_t v)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (int i = 0; i < 8; ++i) {
        hash ^= (v >> (i * 8)) & 0xff;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : items_(n), theta_(theta)
{
    MCLOCK_ASSERT(n > 0);
    zetaN_ = zetaStatic(0, n, theta, 0.0);
    zetaComputedTo_ = n;
    computeConstants();
}

double
ZipfianGenerator::zetaStatic(std::uint64_t st, std::uint64_t n,
                             double theta, double initial)
{
    double sum = initial;
    for (std::uint64_t i = st; i < n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    return sum;
}

void
ZipfianGenerator::computeConstants()
{
    zeta2Theta_ = zetaStatic(0, 2, theta_, 0.0);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_),
                           1.0 - theta_)) /
           (1.0 - zeta2Theta_ / zetaN_);
}

void
ZipfianGenerator::setItemCount(std::uint64_t n)
{
    MCLOCK_ASSERT(n >= zetaComputedTo_);
    if (n == items_)
        return;
    // Incremental zeta extension (YCSB's allowItemCountDecrease=false).
    zetaN_ = zetaStatic(zetaComputedTo_, n, theta_, zetaN_);
    zetaComputedTo_ = n;
    items_ = n;
    computeConstants();
}

std::uint64_t
ZipfianGenerator::next(Rng &rng)
{
    const double u = rng.nextDouble();
    const double uz = u * zetaN_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(items_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= items_ ? items_ - 1 : rank;
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(std::uint64_t n,
                                                     double theta)
    : zipf_(n, theta), items_(n)
{
}

std::uint64_t
ScrambledZipfianGenerator::next(Rng &rng)
{
    return fnv1a64(zipf_.next(rng)) % items_;
}

LatestGenerator::LatestGenerator(std::uint64_t n, double theta)
    : zipf_(n, theta), items_(n)
{
}

void
LatestGenerator::setItemCount(std::uint64_t n)
{
    items_ = n;
    zipf_.setItemCount(n);
}

std::uint64_t
LatestGenerator::next(Rng &rng)
{
    // Rank 0 = newest record.
    const std::uint64_t rank = zipf_.next(rng);
    return items_ - 1 - rank;
}

}  // namespace workloads
}  // namespace mclock
