/**
 * @file
 * Synthetic access-pattern workloads for the motivation study (Figs 1-2).
 *
 * The paper traces RUBiS, SPECpower at 80% load, DaCapo xalan, and
 * DaCapo lusearch. Those applications are not runnable here, so each is
 * substituted by a synthetic profile that reproduces the page-population
 * structure the paper observes in them:
 *
 *  - DRAM-friendly pages: frequently accessed throughout execution,
 *  - infrequent pages: touched rarely over the whole run,
 *  - tier-friendly pages: bimodal groups that are hot only during their
 *    activity phases.
 *
 * Profiles differ in the mix, the number of tier-friendly groups, and
 * the phase cadence (OLTP-ish steady rotation for RUBiS, load-step bursts
 * for SPECpower, two long alternating passes for xalan, many short query
 * bursts for lusearch).
 */

#ifndef MCLOCK_WORKLOADS_SYNTHETIC_HH_
#define MCLOCK_WORKLOADS_SYNTHETIC_HH_

#include <cstdint>
#include <string>

#include "base/rng.hh"
#include "base/types.hh"
#include "base/units.hh"
#include "trace/access_trace.hh"

namespace mclock {

namespace sim {
class Simulator;
}

namespace workloads {

/** The four motivation workload stand-ins. */
enum class SyntheticProfile { Rubis, SpecPower, Xalan, Lusearch };

const char *syntheticProfileName(SyntheticProfile p);

/** Shape parameters of one profile. */
struct SyntheticShape
{
    double dramFriendlyFrac;    ///< always-hot fraction of pages
    double infrequentFrac;      ///< rarely-touched fraction
    unsigned tierGroups;        ///< number of bimodal groups
    SimTime phaseLength;        ///< how long one group stays hot
    double hotAccessProb;       ///< per-step access prob when hot
    double infrequentProb;      ///< per-step access prob for cold pages
};

/** Shape preset for @p profile. */
SyntheticShape syntheticShape(SyntheticProfile profile);

/** Run configuration. */
struct SyntheticConfig
{
    std::size_t numPages = 2000;
    SimTime duration = 200_s;
    SimTime step = 20_ms;      ///< generator time step
    SimTime cpuPerStep = 5_us; ///< think time per step
    std::uint64_t seed = 3;
    /**
     * Stream each generator step's accesses as one batched
     * Simulator::stream() call (identical semantics; see
     * KvStoreConfig::batchAccesses). Ignored — the legacy per-access
     * path is used — when a trace is being recorded, because tracing
     * needs the simulated clock after every access. Default on.
     */
    bool batchAccesses = true;
};

/** Drives a synthetic profile through a simulator, optionally tracing. */
class SyntheticWorkload
{
  public:
    SyntheticWorkload(sim::Simulator &sim, SyntheticProfile profile,
                      SyntheticConfig cfg = {});

    /**
     * Execute the workload.
     * @param traceOut when non-null, every access is recorded (page id =
     *                 index within this workload's region)
     */
    void run(trace::AccessTrace *traceOut = nullptr);

    std::size_t numPages() const { return cfg_.numPages; }

  private:
    sim::Simulator &sim_;
    SyntheticProfile profile_;
    SyntheticConfig cfg_;
    SyntheticShape shape_;
    Rng rng_;
    Vaddr base_;
};

}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_SYNTHETIC_HH_
