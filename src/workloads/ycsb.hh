/**
 * @file
 * YCSB driver over the KvStore backend.
 *
 * Implements the Yahoo! Cloud Serving Benchmark core workloads A-F plus
 * the paper's extra workload W (100% writes), with the prescribed
 * execution sequence the paper follows: Load, A, B, C, F, W, D (D last
 * because it changes the record count). Workload E uses SCAN, which
 * Memcached does not implement; exactly as in the paper it is reported
 * as non-operational.
 */

#ifndef MCLOCK_WORKLOADS_YCSB_HH_
#define MCLOCK_WORKLOADS_YCSB_HH_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "base/units.hh"
#include "workloads/kvstore.hh"
#include "workloads/zipf.hh"

namespace mclock {

namespace sim {
class Simulator;
}

namespace workloads {

/** The YCSB core workloads (plus the paper's W). */
enum class YcsbWorkload { A, B, C, D, E, F, W };

const char *ycsbWorkloadName(YcsbWorkload w);

/** Driver configuration. */
struct YcsbConfig
{
    std::size_t recordCount = 24000;
    std::size_t valueBytes = 1024;        ///< YCSB default 1 KB records
    std::uint64_t opsPerWorkload = 1500000;
    double zipfTheta = 0.99;
    std::uint64_t seed = 1;
    /** Forwarded to KvStoreConfig::batchAccesses (perf suite toggle). */
    bool batchAccesses = true;
};

/** Result of one workload execution phase. */
struct YcsbResult
{
    std::string workload;
    std::uint64_t ops = 0;
    SimTime elapsed = 0;
    bool operational = true;  ///< false for E on Memcached

    double
    throughputOpsPerSec() const
    {
        return elapsed
            ? static_cast<double>(ops) * 1e9 /
              static_cast<double>(elapsed)
            : 0.0;
    }
};

/** Runs the load phase and the execution phases against one simulator. */
class YcsbDriver
{
  public:
    YcsbDriver(sim::Simulator &sim, YcsbConfig cfg = {});

    /** Load phase: populate the backend with recordCount records. */
    void load();

    /** Execute one workload phase. */
    YcsbResult run(YcsbWorkload w);

    /**
     * The paper's prescribed sequence after load: A, B, C, F, W, D.
     * @return one result per executed workload, in order
     */
    std::vector<YcsbResult> runPaperSequence();

    KvStore &store() { return *store_; }

  private:
    /** Key for record number @p recno (insertion order). */
    static std::uint64_t keyOf(std::uint64_t recno) { return recno; }

    void doRead(std::uint64_t recno);
    void doUpdate(std::uint64_t recno);
    void doInsert();

    sim::Simulator &sim_;
    YcsbConfig cfg_;
    Rng rng_;
    std::unique_ptr<KvStore> store_;
    std::uint64_t recordsLoaded_ = 0;
};

}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_YCSB_HH_
