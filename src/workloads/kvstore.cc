#include "workloads/kvstore.hh"

#include "base/logging.hh"
#include "sim/simulator.hh"
#include "workloads/zipf.hh"

namespace mclock {
namespace workloads {

KvStore::KvStore(sim::Simulator &sim, KvStoreConfig cfg)
    : sim_(sim), cfg_(cfg)
{
    const std::size_t bytes = cfg_.hashBuckets * sizeof(std::uint64_t);
    buckets_ = sim_.mmap(bytes, /*anon=*/true, "kv-hashtable",
                         cfg_.memcg);
    footprint_ += bytes;
}

Vaddr
KvStore::bucketAddr(std::uint64_t key) const
{
    const std::uint64_t h = fnv1a64(key) % cfg_.hashBuckets;
    return buckets_ + h * sizeof(std::uint64_t);
}

void
KvStore::touchBucket(std::uint64_t key, bool write)
{
    const Vaddr addr = bucketAddr(key);
    if (write)
        sim_.write(addr, sizeof(std::uint64_t));
    else
        sim_.read(addr, sizeof(std::uint64_t));
}

Vaddr
KvStore::allocItem(std::size_t bytes)
{
    // Single size-class recycling, like a memcached slab class: all
    // items in one run have the same value size.
    if (!freeSlots_.empty() && freeSlotBytes_ >= bytes) {
        const Vaddr addr = freeSlots_.back();
        freeSlots_.pop_back();
        return addr;
    }
    if (chunkRemaining_ < bytes) {
        const std::size_t chunk =
            std::max(cfg_.slabChunkBytes, bytes);
        chunkCursor_ = sim_.mmap(chunk, /*anon=*/true, "kv-slab",
                                 cfg_.memcg);
        chunkRemaining_ = chunk;
        footprint_ += chunk;
    }
    const Vaddr addr = chunkCursor_;
    chunkCursor_ += bytes;
    chunkRemaining_ -= bytes;
    return addr;
}

// Each operation issues at most four simulated accesses. The batched
// default queues them into one stream() call — the index_ lookup and
// slab allocation (plain host work plus time-free mmaps) hoist ahead
// of the stream without changing anything the simulator observes.
void
KvStore::put(std::uint64_t key, std::size_t valueBytes)
{
    if (!cfg_.batchAccesses) {
        sim_.compute(cfg_.cpuPerOp);
        touchBucket(key, /*write=*/false);
        const Item *it = index_.find(key);
        if (it) {
            // Overwrite in place: read header, write value.
            sim_.read(it->addr, cfg_.itemHeaderBytes);
            sim_.write(it->addr + cfg_.itemHeaderBytes,
                       valueBytes);
            return;
        }
        const std::size_t bytes = cfg_.itemHeaderBytes + valueBytes;
        const Vaddr addr = allocItem(bytes);
        freeSlotBytes_ = std::max(freeSlotBytes_, bytes);
        touchBucket(key, /*write=*/true);  // link into the chain
        sim_.write(addr, bytes);           // write header + value
        index_.emplace(key, Item{addr, bytes});
        return;
    }

    using MemOp = sim::Simulator::MemOp;
    MemOp ops[4];
    std::size_t n = 0;
    ops[n++] = MemOp::cpu(cfg_.cpuPerOp);
    ops[n++] = MemOp::load(bucketAddr(key), sizeof(std::uint64_t));
    const Item *it = index_.find(key);
    if (it) {
        // Overwrite in place: read header, write value.
        ops[n++] = MemOp::load(
            it->addr,
            static_cast<std::uint32_t>(cfg_.itemHeaderBytes));
        ops[n++] = MemOp::store(
            it->addr + cfg_.itemHeaderBytes,
            static_cast<std::uint32_t>(valueBytes));
    } else {
        const std::size_t bytes = cfg_.itemHeaderBytes + valueBytes;
        const Vaddr addr = allocItem(bytes);
        freeSlotBytes_ = std::max(freeSlotBytes_, bytes);
        // Link into the chain, then write header + value.
        ops[n++] = MemOp::store(bucketAddr(key),
                                sizeof(std::uint64_t));
        ops[n++] = MemOp::store(addr,
                                static_cast<std::uint32_t>(bytes));
        index_.emplace(key, Item{addr, bytes});
    }
    sim_.stream(ops, n);
}

bool
KvStore::get(std::uint64_t key)
{
    if (!cfg_.batchAccesses) {
        sim_.compute(cfg_.cpuPerOp);
        touchBucket(key, /*write=*/false);
        const Item *it = index_.find(key);
        if (!it)
            return false;
        // Read header (key comparison) then the value.
        sim_.read(it->addr, it->bytes);
        return true;
    }

    using MemOp = sim::Simulator::MemOp;
    MemOp ops[3];
    std::size_t n = 0;
    ops[n++] = MemOp::cpu(cfg_.cpuPerOp);
    ops[n++] = MemOp::load(bucketAddr(key), sizeof(std::uint64_t));
    const Item *it = index_.find(key);
    const bool hit = it != nullptr;
    if (hit) {
        // Read header (key comparison) then the value.
        ops[n++] = MemOp::load(
            it->addr,
            static_cast<std::uint32_t>(it->bytes));
    }
    sim_.stream(ops, n);
    return hit;
}

bool
KvStore::readModifyWrite(std::uint64_t key)
{
    if (!cfg_.batchAccesses) {
        sim_.compute(cfg_.cpuPerOp);
        touchBucket(key, /*write=*/false);
        const Item *it = index_.find(key);
        if (!it)
            return false;
        sim_.read(it->addr, it->bytes);
        sim_.write(it->addr + cfg_.itemHeaderBytes,
                   it->bytes - cfg_.itemHeaderBytes);
        return true;
    }

    using MemOp = sim::Simulator::MemOp;
    MemOp ops[4];
    std::size_t n = 0;
    ops[n++] = MemOp::cpu(cfg_.cpuPerOp);
    ops[n++] = MemOp::load(bucketAddr(key), sizeof(std::uint64_t));
    const Item *it = index_.find(key);
    const bool hit = it != nullptr;
    if (hit) {
        ops[n++] = MemOp::load(
            it->addr,
            static_cast<std::uint32_t>(it->bytes));
        ops[n++] = MemOp::store(
            it->addr + cfg_.itemHeaderBytes,
            static_cast<std::uint32_t>(it->bytes -
                                       cfg_.itemHeaderBytes));
    }
    sim_.stream(ops, n);
    return hit;
}

bool
KvStore::remove(std::uint64_t key)
{
    if (!cfg_.batchAccesses) {
        sim_.compute(cfg_.cpuPerOp);
        touchBucket(key, /*write=*/true);
        const Item *it = index_.find(key);
        if (!it)
            return false;
        sim_.write(it->addr, cfg_.itemHeaderBytes);  // unlink
        freeSlots_.push_back(it->addr);
        index_.erase(key);
        return true;
    }

    using MemOp = sim::Simulator::MemOp;
    MemOp ops[3];
    std::size_t n = 0;
    ops[n++] = MemOp::cpu(cfg_.cpuPerOp);
    ops[n++] = MemOp::store(bucketAddr(key), sizeof(std::uint64_t));
    const Item *it = index_.find(key);
    const bool hit = it != nullptr;
    if (hit) {
        ops[n++] = MemOp::store(
            it->addr,
            static_cast<std::uint32_t>(cfg_.itemHeaderBytes));  // unlink
        freeSlots_.push_back(it->addr);
        index_.erase(key);
    }
    sim_.stream(ops, n);
    return hit;
}

}  // namespace workloads
}  // namespace mclock
