#include "workloads/kvstore.hh"

#include "base/logging.hh"
#include "sim/simulator.hh"
#include "workloads/zipf.hh"

namespace mclock {
namespace workloads {

KvStore::KvStore(sim::Simulator &sim, KvStoreConfig cfg)
    : sim_(sim), cfg_(cfg)
{
    const std::size_t bytes = cfg_.hashBuckets * sizeof(std::uint64_t);
    buckets_ = sim_.mmap(bytes, /*anon=*/true, "kv-hashtable");
    footprint_ += bytes;
}

void
KvStore::touchBucket(std::uint64_t key, bool write)
{
    const std::uint64_t h = fnv1a64(key) % cfg_.hashBuckets;
    const Vaddr addr = buckets_ + h * sizeof(std::uint64_t);
    if (write)
        sim_.write(addr, sizeof(std::uint64_t));
    else
        sim_.read(addr, sizeof(std::uint64_t));
}

Vaddr
KvStore::allocItem(std::size_t bytes)
{
    // Single size-class recycling, like a memcached slab class: all
    // items in one run have the same value size.
    if (!freeSlots_.empty() && freeSlotBytes_ >= bytes) {
        const Vaddr addr = freeSlots_.back();
        freeSlots_.pop_back();
        return addr;
    }
    if (chunkRemaining_ < bytes) {
        const std::size_t chunk =
            std::max(cfg_.slabChunkBytes, bytes);
        chunkCursor_ = sim_.mmap(chunk, /*anon=*/true, "kv-slab");
        chunkRemaining_ = chunk;
        footprint_ += chunk;
    }
    const Vaddr addr = chunkCursor_;
    chunkCursor_ += bytes;
    chunkRemaining_ -= bytes;
    return addr;
}

void
KvStore::put(std::uint64_t key, std::size_t valueBytes)
{
    sim_.compute(cfg_.cpuPerOp);
    touchBucket(key, /*write=*/false);
    auto it = index_.find(key);
    if (it != index_.end()) {
        // Overwrite in place: read header, write value.
        sim_.read(it->second.addr, cfg_.itemHeaderBytes);
        sim_.write(it->second.addr + cfg_.itemHeaderBytes, valueBytes);
        return;
    }
    const std::size_t bytes = cfg_.itemHeaderBytes + valueBytes;
    const Vaddr addr = allocItem(bytes);
    freeSlotBytes_ = std::max(freeSlotBytes_, bytes);
    touchBucket(key, /*write=*/true);  // link into the chain
    sim_.write(addr, bytes);           // write header + value
    index_.emplace(key, Item{addr, bytes});
}

bool
KvStore::get(std::uint64_t key)
{
    sim_.compute(cfg_.cpuPerOp);
    touchBucket(key, /*write=*/false);
    auto it = index_.find(key);
    if (it == index_.end())
        return false;
    // Read header (key comparison) then the value.
    sim_.read(it->second.addr, it->second.bytes);
    return true;
}

bool
KvStore::readModifyWrite(std::uint64_t key)
{
    sim_.compute(cfg_.cpuPerOp);
    touchBucket(key, /*write=*/false);
    auto it = index_.find(key);
    if (it == index_.end())
        return false;
    sim_.read(it->second.addr, it->second.bytes);
    sim_.write(it->second.addr + cfg_.itemHeaderBytes,
               it->second.bytes - cfg_.itemHeaderBytes);
    return true;
}

bool
KvStore::remove(std::uint64_t key)
{
    sim_.compute(cfg_.cpuPerOp);
    touchBucket(key, /*write=*/true);
    auto it = index_.find(key);
    if (it == index_.end())
        return false;
    sim_.write(it->second.addr, cfg_.itemHeaderBytes);  // unlink
    freeSlots_.push_back(it->second.addr);
    index_.erase(it);
    return true;
}

}  // namespace workloads
}  // namespace mclock
