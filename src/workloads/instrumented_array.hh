/**
 * @file
 * An array whose element accesses flow through the simulator.
 *
 * Workload code (graph kernels, the KV store) stores real data in host
 * memory but issues a simulated memory access for every element it
 * touches, so the simulated machine observes the workload's true access
 * pattern at the right virtual addresses. This is the moral equivalent
 * of running the benchmark binary on the instrumented kernel.
 */

#ifndef MCLOCK_WORKLOADS_INSTRUMENTED_ARRAY_HH_
#define MCLOCK_WORKLOADS_INSTRUMENTED_ARRAY_HH_

#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "sim/simulator.hh"

namespace mclock {
namespace workloads {

/** Fixed-size array of T backed by a simulated memory region. */
template <typename T>
class InstrumentedArray
{
  public:
    InstrumentedArray() = default;

    /** Allocate @p n elements in @p sim's address space. */
    InstrumentedArray(sim::Simulator &sim, std::size_t n,
                      const std::string &name)
    {
        allocate(sim, n, name);
    }

    void
    allocate(sim::Simulator &sim, std::size_t n, const std::string &name)
    {
        MCLOCK_ASSERT(sim_ == nullptr);
        sim_ = &sim;
        data_.assign(n, T{});
        base_ = sim.mmap(n * sizeof(T), /*anon=*/true, name);
    }

    /** Release the simulated region (host copy is freed too). */
    void
    release()
    {
        if (sim_) {
            sim_->unmapRegion(base_);
            sim_ = nullptr;
            data_.clear();
        }
    }

    ~InstrumentedArray()
    {
        release();
    }

    InstrumentedArray(const InstrumentedArray &) = delete;
    InstrumentedArray &operator=(const InstrumentedArray &) = delete;

    std::size_t size() const { return data_.size(); }
    bool allocated() const { return sim_ != nullptr; }
    Vaddr baseVaddr() const { return base_; }

    /** Simulated load of element @p i. */
    T
    get(std::size_t i)
    {
        sim_->read(addrOf(i), sizeof(T));
        return data_[i];
    }

    /** Simulated store of element @p i. */
    void
    set(std::size_t i, const T &v)
    {
        sim_->write(addrOf(i), sizeof(T));
        data_[i] = v;
    }

    /** Read-modify-write convenience (one load + one store). */
    template <typename Fn>
    void
    update(std::size_t i, Fn &&fn)
    {
        sim_->read(addrOf(i), sizeof(T));
        data_[i] = fn(data_[i]);
        sim_->write(addrOf(i), sizeof(T));
    }

    /**
     * Sequential first-touch sweep: one simulated store per 64 B line.
     * Used after poke()-filling host data to materialise the region's
     * pages in allocation order (the load phase of a benchmark).
     */
    void
    streamInit()
    {
        const std::size_t bytes = data_.size() * sizeof(T);
        for (std::size_t off = 0; off < bytes; off += 64)
            sim_->write(base_ + off, 8);
    }

    /**
     * Host-side peek without a simulated access. Use only for result
     * verification, never inside the measured kernel.
     */
    const T &peek(std::size_t i) const { return data_[i]; }

    /** Host-side poke without a simulated access (initialisation). */
    void poke(std::size_t i, const T &v) { data_[i] = v; }

  private:
    Vaddr
    addrOf(std::size_t i) const
    {
        MCLOCK_ASSERT(i < data_.size());
        return base_ + i * sizeof(T);
    }

    sim::Simulator *sim_ = nullptr;
    std::vector<T> data_;
    Vaddr base_ = 0;
};

}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_INSTRUMENTED_ARRAY_HH_
