#include "workloads/synthetic.hh"

#include <vector>

#include "base/logging.hh"
#include "sim/simulator.hh"

namespace mclock {
namespace workloads {

const char *
syntheticProfileName(SyntheticProfile p)
{
    switch (p) {
      case SyntheticProfile::Rubis: return "rubis";
      case SyntheticProfile::SpecPower: return "specpower80";
      case SyntheticProfile::Xalan: return "xalan";
      case SyntheticProfile::Lusearch: return "lusearch";
    }
    return "?";
}

SyntheticShape
syntheticShape(SyntheticProfile profile)
{
    switch (profile) {
      case SyntheticProfile::Rubis:
        // OLTP: solid always-hot working set, several rotating groups.
        return {0.15, 0.45, 4, 20_s, 0.60, 0.002};
      case SyntheticProfile::SpecPower:
        // Load steps at 80% throughput: burstier rotation.
        return {0.10, 0.40, 6, 10_s, 0.50, 0.003};
      case SyntheticProfile::Xalan:
        // Two long conversion passes alternating over big regions.
        return {0.08, 0.32, 2, 40_s, 0.70, 0.001};
      case SyntheticProfile::Lusearch:
        // Many short-lived query bursts over index segments.
        return {0.12, 0.28, 8, 5_s, 0.45, 0.004};
    }
    return {0.1, 0.4, 4, 20_s, 0.5, 0.002};
}

SyntheticWorkload::SyntheticWorkload(sim::Simulator &sim,
                                     SyntheticProfile profile,
                                     SyntheticConfig cfg)
    : sim_(sim), profile_(profile), cfg_(cfg),
      shape_(syntheticShape(profile)), rng_(cfg.seed)
{
    base_ = sim_.mmap(cfg_.numPages * kPageSize, /*anon=*/true,
                      syntheticProfileName(profile));
}

void
SyntheticWorkload::run(trace::AccessTrace *traceOut)
{
    const std::size_t n = cfg_.numPages;
    const auto dramFriendly =
        static_cast<std::size_t>(shape_.dramFriendlyFrac *
                                 static_cast<double>(n));
    const auto infrequent =
        static_cast<std::size_t>(shape_.infrequentFrac *
                                 static_cast<double>(n));
    const std::size_t tierFriendly = n - dramFriendly - infrequent;
    const std::size_t groupSize =
        std::max<std::size_t>(1, tierFriendly / shape_.tierGroups);

    // Page layout within the region: [dram friendly][infrequent][groups].
    const SimTime start = sim_.now();
    const SimTime end = start + cfg_.duration;

    // Tracing needs sim_.now() after each access, so it forces the
    // legacy per-access path; otherwise a whole step's accesses go out
    // as one stream (same sequence, same rng draws, same daemon
    // interleaving — stream() replays them in program order).
    const bool batch = cfg_.batchAccesses && traceOut == nullptr;
    using MemOp = sim::Simulator::MemOp;
    std::vector<MemOp> ops;

    auto touch = [&](std::size_t pageIdx) {
        const Vaddr va = base_ + pageIdx * kPageSize +
                         (rng_.next64() & (kPageSize - 1) & ~7ull);
        const bool isWrite = rng_.nextBool(0.3);
        if (batch) {
            ops.push_back(isWrite ? MemOp::store(va, 8)
                                  : MemOp::load(va, 8));
            return;
        }
        if (isWrite)
            sim_.write(va, 8);
        else
            sim_.read(va, 8);
        if (traceOut) {
            traceOut->record(static_cast<std::uint32_t>(pageIdx),
                             sim_.now() - start);
        }
    };

    while (sim_.now() < end) {
        ops.clear();
        const SimTime stepStart = sim_.now();
        const SimTime elapsed = sim_.now() - start;
        const unsigned activeGroup = static_cast<unsigned>(
            (elapsed / shape_.phaseLength) % shape_.tierGroups);

        // Always-hot pages.
        for (std::size_t i = 0; i < dramFriendly; ++i) {
            if (rng_.nextBool(shape_.hotAccessProb))
                touch(i);
        }
        // Rarely-touched pages.
        for (std::size_t i = dramFriendly; i < dramFriendly + infrequent;
             ++i) {
            if (rng_.nextBool(shape_.infrequentProb))
                touch(i);
        }
        // The active tier-friendly group runs hot; the rest idle.
        const std::size_t groupBase =
            dramFriendly + infrequent +
            static_cast<std::size_t>(activeGroup) * groupSize;
        for (std::size_t i = 0; i < groupSize; ++i) {
            const std::size_t idx = groupBase + i;
            if (idx < n && rng_.nextBool(shape_.hotAccessProb))
                touch(idx);
        }
        if (batch && !ops.empty())
            sim_.stream(ops.data(), ops.size());
        // Pad the step to its nominal length (think time), so the
        // per-step access probabilities define rates per cfg_.step.
        sim_.compute(cfg_.cpuPerStep);
        const SimTime stepEnd = stepStart + cfg_.step;
        if (sim_.now() < stepEnd)
            sim_.compute(stepEnd - sim_.now());
    }
}

}  // namespace workloads
}  // namespace mclock
