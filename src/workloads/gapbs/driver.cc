#include "workloads/gapbs/driver.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/rng.hh"
#include "sim/simulator.hh"
#include "workloads/gapbs/bc.hh"
#include "workloads/gapbs/bfs.hh"
#include "workloads/gapbs/builder.hh"
#include "workloads/gapbs/cc.hh"
#include "workloads/gapbs/generator.hh"
#include "workloads/gapbs/pr.hh"
#include "workloads/gapbs/sssp.hh"
#include "workloads/gapbs/tc.hh"

namespace mclock {
namespace workloads {
namespace gapbs {

const char *
kernelName(Kernel k)
{
    switch (k) {
      case Kernel::BFS: return "bfs";
      case Kernel::SSSP: return "sssp";
      case Kernel::PR: return "pr";
      case Kernel::CC: return "cc";
      case Kernel::BC: return "bc";
      case Kernel::TC: return "tc";
    }
    return "?";
}

GapbsDriver::GapbsDriver(sim::Simulator &sim, GapbsConfig cfg)
    : sim_(sim), cfg_(cfg)
{
}

GapbsDriver::~GapbsDriver() = default;

GapbsResult
GapbsDriver::run(Kernel kernel)
{
    Rng rng(cfg_.seed);

    // Load phase: build the graph in simulated memory (untimed in the
    // report, but it fills DRAM first exactly like the real load).
    BuildOptions opts;
    std::vector<Edge> edges;
    if (kernel == Kernel::TC) {
        edges = makeUniformEdges(cfg_.tcScale, cfg_.tcDegree, rng);
        opts.sortAndDedupNeighbors = true;
        opts.relabelByDegree = true;
    } else {
        edges = makeKroneckerEdges(cfg_.scale, cfg_.degree, rng);
        if (kernel == Kernel::SSSP) {
            assignWeights(edges, cfg_.maxWeight, rng);
            opts.keepWeights = true;
        }
    }
    // The paper assumes GAPBS allocates its most-accessed memory first
    // (§V-C1: graph workloads exhibit substantial locality, so the hot
    // vertex-indexed arrays end up in DRAM before the edge stream
    // spills to PM). Reserve DRAM for the kernel's per-trial arrays by
    // first-touching an arena of the same size before the graph build,
    // and release it afterwards so the arrays inherit those frames.
    GNode maxId = 0;
    for (const auto &e : edges)
        maxId = std::max({maxId, e.u, e.v});
    const std::size_t n = static_cast<std::size_t>(maxId) + 1;
    std::size_t arenaBytes = 0;
    switch (kernel) {
      case Kernel::BFS: arenaBytes = n * 4; break;
      // SSSP's dist array and bucket working set are allocated inside
      // the kernel after the (larger) weighted CSR; they land in PM and
      // are exactly the tier-friendly pages the paper reports SSSP
      // gaining the most from.
      case Kernel::SSSP: arenaBytes = 0; break;
      case Kernel::PR: arenaBytes = n * 16; break;
      case Kernel::CC: arenaBytes = n * 4; break;
      case Kernel::BC: arenaBytes = n * 28; break;
      case Kernel::TC: arenaBytes = 0; break;
    }
    Vaddr arena = 0;
    if (arenaBytes > 0) {
        arena = sim_.mmap(arenaBytes, true, "vertex-array-arena");
        for (std::size_t off = 0; off < arenaBytes; off += kPageSize)
            sim_.write(arena + off, 8);
    }

    graph_ = Builder::build(sim_, std::move(edges), opts);

    if (arena != 0)
        sim_.unmapRegion(arena);

    // Pick a source with outgoing edges (GAPBS picks non-isolated).
    auto pickSource = [&]() {
        for (int attempt = 0; attempt < 64; ++attempt) {
            const auto s = static_cast<GNode>(
                rng.nextRange(graph_->numVertices()));
            if (graph_->peekDegree(s) > 0)
                return s;
        }
        return static_cast<GNode>(0);
    };

    GapbsResult result;
    result.kernel = kernelName(kernel);
    for (unsigned t = 0; t < cfg_.trials; ++t) {
        const SimTime start = sim_.now();
        switch (kernel) {
          case Kernel::BFS: {
            const BfsResult r = bfs(sim_, *graph_, pickSource());
            result.checksum += r.visited;
            break;
          }
          case Kernel::SSSP: {
            const SsspResult r = sssp(sim_, *graph_, pickSource());
            result.checksum += r.reached;
            break;
          }
          case Kernel::PR: {
            const PrResult r = pagerank(sim_, *graph_, cfg_.prIters);
            result.checksum +=
                static_cast<std::uint64_t>(r.scoreSum * 1000.0);
            break;
          }
          case Kernel::CC: {
            const CcResult r = connectedComponents(sim_, *graph_);
            result.checksum += r.components;
            break;
          }
          case Kernel::BC: {
            const BcResult r = betweenness(sim_, *graph_,
                                           cfg_.bcSources,
                                           cfg_.seed + t);
            result.checksum +=
                static_cast<std::uint64_t>(r.scoreSum);
            break;
          }
          case Kernel::TC: {
            const TcResult r = triangleCount(sim_, *graph_);
            result.checksum += r.triangles;
            break;
          }
        }
        result.trialSeconds.push_back(
            static_cast<double>(sim_.now() - start) / 1e9);
    }
    return result;
}

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock
