#include "workloads/gapbs/builder.hh"

#include <algorithm>
#include <numeric>

#include "base/logging.hh"
#include "sim/simulator.hh"

namespace mclock {
namespace workloads {
namespace gapbs {

std::unique_ptr<Graph>
Builder::build(sim::Simulator &sim, std::vector<Edge> edges,
               const BuildOptions &opts)
{
    // Determine the vertex count from the edge list.
    GNode maxId = 0;
    for (const auto &e : edges)
        maxId = std::max({maxId, e.u, e.v});
    const std::size_t n = static_cast<std::size_t>(maxId) + 1;

    if (opts.removeSelfLoops) {
        edges.erase(std::remove_if(edges.begin(), edges.end(),
                                   [](const Edge &e) { return e.u == e.v; }),
                    edges.end());
    }
    if (opts.symmetrize) {
        const std::size_t orig = edges.size();
        edges.reserve(orig * 2);
        for (std::size_t i = 0; i < orig; ++i)
            edges.push_back({edges[i].v, edges[i].u, edges[i].w});
    }

    // Optional degree-descending relabel (GAPBS TC preprocessing).
    std::vector<GNode> relabel;
    if (opts.relabelByDegree) {
        std::vector<std::uint64_t> degree(n, 0);
        for (const auto &e : edges)
            ++degree[e.u];
        std::vector<GNode> order(n);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&degree](GNode a, GNode b) {
                      return degree[a] > degree[b];
                  });
        relabel.assign(n, 0);
        for (std::size_t rank = 0; rank < n; ++rank)
            relabel[order[rank]] = static_cast<GNode>(rank);
        for (auto &e : edges) {
            e.u = relabel[e.u];
            e.v = relabel[e.v];
        }
    }

    // Counting sort by source vertex into CSR.
    std::vector<std::uint64_t> offsets(n + 1, 0);
    for (const auto &e : edges)
        ++offsets[e.u + 1];
    for (std::size_t i = 1; i <= n; ++i)
        offsets[i] += offsets[i - 1];
    std::vector<GNode> neighbors(edges.size());
    std::vector<Weight> weights(opts.keepWeights ? edges.size() : 0);
    {
        std::vector<std::uint64_t> cursor(offsets.begin(),
                                          offsets.end() - 1);
        for (const auto &e : edges) {
            const std::uint64_t pos = cursor[e.u]++;
            neighbors[pos] = e.v;
            if (opts.keepWeights)
                weights[pos] = e.w;
        }
    }

    if (opts.sortAndDedupNeighbors) {
        std::vector<GNode> deduped;
        deduped.reserve(neighbors.size());
        std::vector<std::uint64_t> newOffsets(n + 1, 0);
        for (std::size_t u = 0; u < n; ++u) {
            const auto begin =
                neighbors.begin() + static_cast<long>(offsets[u]);
            const auto end =
                neighbors.begin() + static_cast<long>(offsets[u + 1]);
            std::sort(begin, end);
            const std::size_t before = deduped.size();
            for (auto it = begin; it != end; ++it) {
                if (deduped.size() == before || deduped.back() != *it)
                    deduped.push_back(*it);
            }
            newOffsets[u + 1] = deduped.size();
        }
        MCLOCK_ASSERT(!opts.keepWeights);  // unsupported combination
        offsets = std::move(newOffsets);
        neighbors = std::move(deduped);
    }

    // Materialise in simulated memory, in allocation order. This is the
    // load phase: offsets first (small, hot), then the neighbor stream,
    // then weights.
    auto graph = std::make_unique<Graph>();
    graph->numVertices_ = n;
    graph->numEdges_ = neighbors.size();
    graph->offsets_.allocate(sim, n + 1, "gapbs-offsets");
    for (std::size_t i = 0; i <= n; ++i)
        graph->offsets_.poke(i, offsets[i]);
    graph->offsets_.streamInit();
    graph->neighbors_.allocate(sim, neighbors.size(), "gapbs-neighbors");
    for (std::size_t i = 0; i < neighbors.size(); ++i)
        graph->neighbors_.poke(i, neighbors[i]);
    graph->neighbors_.streamInit();
    if (opts.keepWeights) {
        graph->weights_.allocate(sim, weights.size(), "gapbs-weights");
        for (std::size_t i = 0; i < weights.size(); ++i)
            graph->weights_.poke(i, weights[i]);
        graph->weights_.streamInit();
    }
    return graph;
}

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock
