// Graph is header-only; this translation unit anchors the module.
#include "workloads/gapbs/graph.hh"
