/**
 * @file
 * Betweenness centrality (GAPBS bc; Brandes with sampled sources).
 */

#ifndef MCLOCK_WORKLOADS_GAPBS_BC_HH_
#define MCLOCK_WORKLOADS_GAPBS_BC_HH_

#include <cstdint>
#include <vector>

#include "workloads/gapbs/graph.hh"

namespace mclock {

namespace sim {
class Simulator;
}

namespace workloads {
namespace gapbs {

/** BC outcome (for verification). */
struct BcResult
{
    double scoreSum = 0.0;
    double maxScore = 0.0;
    unsigned sources = 0;
};

/**
 * Brandes' algorithm from @p numSources sampled sources (unweighted;
 * scores are not normalised, as in GAPBS).
 */
BcResult betweenness(sim::Simulator &sim, Graph &g, unsigned numSources,
                     std::uint64_t seed);

/**
 * Brandes from an explicit source list (deterministic; used by tests
 * to check exact dependency accumulation against hand-computed
 * values). Passing every vertex yields exact betweenness centrality.
 */
BcResult betweennessFromSources(sim::Simulator &sim, Graph &g,
                                const std::vector<GNode> &sources);

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_GAPBS_BC_HH_
