/**
 * @file
 * Triangle counting (GAPBS tc: degree-ordered merge intersection).
 */

#ifndef MCLOCK_WORKLOADS_GAPBS_TC_HH_
#define MCLOCK_WORKLOADS_GAPBS_TC_HH_

#include <cstdint>

#include "workloads/gapbs/graph.hh"

namespace mclock {

namespace sim {
class Simulator;
}

namespace workloads {
namespace gapbs {

/** TC outcome. */
struct TcResult
{
    std::uint64_t triangles = 0;
};

/**
 * Count triangles on a graph built with sortAndDedupNeighbors (and
 * ideally relabelByDegree). Counts each triangle once using the
 * u < v < w ordering.
 */
TcResult triangleCount(sim::Simulator &sim, Graph &g);

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_GAPBS_TC_HH_
