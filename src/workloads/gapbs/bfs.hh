/**
 * @file
 * Breadth-first search (GAPBS bfs).
 *
 * Top-down frontier BFS producing a parent array. (GAPBS uses
 * direction-optimizing BFS; the memory behaviour that matters for
 * tiering — random parent-array probes against streamed CSR reads — is
 * the same, documented in DESIGN.md.)
 */

#ifndef MCLOCK_WORKLOADS_GAPBS_BFS_HH_
#define MCLOCK_WORKLOADS_GAPBS_BFS_HH_

#include <cstdint>

#include "workloads/gapbs/graph.hh"

namespace mclock {

namespace sim {
class Simulator;
}

namespace workloads {
namespace gapbs {

/** BFS outcome (for verification). */
struct BfsResult
{
    std::uint64_t visited = 0;  ///< vertices reached from the source
    std::uint64_t maxDepth = 0;
};

/** Run BFS from @p source. */
BfsResult bfs(sim::Simulator &sim, Graph &g, GNode source);

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_GAPBS_BFS_HH_
