#include "workloads/gapbs/pr.hh"

#include <algorithm>

#include "sim/simulator.hh"
#include "workloads/instrumented_array.hh"

namespace mclock {
namespace workloads {
namespace gapbs {

PrResult
pagerank(sim::Simulator &sim, Graph &g, unsigned iterations)
{
    const std::size_t n = g.numVertices();
    const double initScore = 1.0 / static_cast<double>(n);
    const double damping = 0.85;
    const double baseScore = (1.0 - damping) / static_cast<double>(n);

    InstrumentedArray<double> scores(sim, n, "pr-scores");
    InstrumentedArray<double> contrib(sim, n, "pr-contrib");
    for (std::size_t i = 0; i < n; ++i)
        scores.poke(i, initScore);
    scores.streamInit();
    contrib.streamInit();

    for (unsigned iter = 0; iter < iterations; ++iter) {
        // Phase 1: per-vertex outgoing contribution.
        for (std::size_t u = 0; u < n; ++u) {
            const std::uint64_t begin = g.offset(static_cast<GNode>(u));
            const std::uint64_t end = g.offset(static_cast<GNode>(u + 1));
            const auto degree = static_cast<double>(end - begin);
            contrib.set(u, degree > 0.0 ? scores.get(u) / degree : 0.0);
        }
        // Phase 2: pull contributions over incoming edges (symmetric
        // graph: the out-CSR doubles as the in-CSR).
        for (std::size_t u = 0; u < n; ++u) {
            const std::uint64_t begin = g.offset(static_cast<GNode>(u));
            const std::uint64_t end = g.offset(static_cast<GNode>(u + 1));
            double sum = 0.0;
            for (std::uint64_t e = begin; e < end; ++e)
                sum += contrib.get(g.neighbor(e));
            scores.set(u, baseScore + damping * sum);
        }
    }

    PrResult result;
    result.iterations = iterations;
    for (std::size_t i = 0; i < n; ++i) {
        const double s = scores.peek(i);
        result.scoreSum += s;
        result.maxScore = std::max(result.maxScore, s);
    }
    return result;
}

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock
