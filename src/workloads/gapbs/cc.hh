/**
 * @file
 * Connected components (GAPBS cc; label-propagation formulation).
 */

#ifndef MCLOCK_WORKLOADS_GAPBS_CC_HH_
#define MCLOCK_WORKLOADS_GAPBS_CC_HH_

#include <cstdint>

#include "workloads/gapbs/graph.hh"

namespace mclock {

namespace sim {
class Simulator;
}

namespace workloads {
namespace gapbs {

/** CC outcome (for verification). */
struct CcResult
{
    std::uint64_t components = 0;
    unsigned iterations = 0;
};

/** Label propagation to a fixed point on a symmetric graph. */
CcResult connectedComponents(sim::Simulator &sim, Graph &g);

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_GAPBS_CC_HH_
