#include "workloads/gapbs/sssp.hh"

#include <limits>
#include <vector>

#include "base/logging.hh"
#include "sim/simulator.hh"
#include "workloads/instrumented_array.hh"

namespace mclock {
namespace workloads {
namespace gapbs {

SsspResult
sssp(sim::Simulator &sim, Graph &g, GNode source, std::uint32_t delta)
{
    MCLOCK_ASSERT(g.weighted());
    constexpr std::uint32_t kInf =
        std::numeric_limits<std::uint32_t>::max();
    if (delta == 0)
        delta = 16;

    const std::size_t n = g.numVertices();
    InstrumentedArray<std::uint32_t> dist(sim, n, "sssp-dist");
    for (std::size_t i = 0; i < n; ++i)
        dist.poke(i, kInf);
    dist.streamInit();
    dist.set(source, 0);

    // Host-side delta-stepping buckets.
    std::vector<std::vector<GNode>> buckets;
    auto bucketOf = [delta](std::uint32_t d) {
        return static_cast<std::size_t>(d / delta);
    };
    auto push = [&](GNode v, std::uint32_t d) {
        const std::size_t b = bucketOf(d);
        if (buckets.size() <= b)
            buckets.resize(b + 1);
        buckets[b].push_back(v);
    };
    push(source, 0);

    for (std::size_t b = 0; b < buckets.size(); ++b) {
        // Reprocess the bucket until it stops growing (light-edge
        // re-insertions land back in the current bucket).
        while (!buckets[b].empty()) {
            std::vector<GNode> frontier;
            frontier.swap(buckets[b]);
            for (GNode u : frontier) {
                const std::uint32_t du = dist.get(u);
                if (bucketOf(du) != b)
                    continue;  // stale entry; u settled earlier
                const std::uint64_t begin = g.offset(u);
                const std::uint64_t end = g.offset(u + 1);
                for (std::uint64_t e = begin; e < end; ++e) {
                    const GNode v = g.neighbor(e);
                    const Weight w = g.weight(e);
                    const std::uint32_t cand = du + w;
                    const std::uint32_t dv = dist.get(v);
                    if (cand < dv) {
                        dist.set(v, cand);
                        push(v, cand);
                    }
                }
            }
        }
    }

    SsspResult result;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t d = dist.peek(i);
        if (d != kInf) {
            ++result.reached;
            result.distanceSum += d;
        }
    }
    return result;
}

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock
