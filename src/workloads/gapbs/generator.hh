/**
 * @file
 * Synthetic graph generators (GAPBS's -g / -u options).
 *
 * Kronecker (RMAT) with the Graph500 parameters A=0.57, B=0.19, C=0.19
 * and uniform Erdos-Renyi-style generation, both producing 2^scale
 * vertices with an average (undirected) degree.
 */

#ifndef MCLOCK_WORKLOADS_GAPBS_GENERATOR_HH_
#define MCLOCK_WORKLOADS_GAPBS_GENERATOR_HH_

#include <vector>

#include "base/rng.hh"
#include "workloads/gapbs/graph.hh"

namespace mclock {
namespace workloads {
namespace gapbs {

/** Kronecker (RMAT) edge list: 2^scale vertices, degree*2^scale edges. */
std::vector<Edge> makeKroneckerEdges(unsigned scale, unsigned degree,
                                     Rng &rng);

/** Uniform random edge list with the same sizing. */
std::vector<Edge> makeUniformEdges(unsigned scale, unsigned degree,
                                   Rng &rng);

/** Assign uniform random weights in [1, maxWeight] (GAPBS .wsg style). */
void assignWeights(std::vector<Edge> &edges, Weight maxWeight, Rng &rng);

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_GAPBS_GENERATOR_HH_
