#include "workloads/gapbs/cc.hh"

#include <unordered_set>

#include "sim/simulator.hh"
#include "workloads/instrumented_array.hh"

namespace mclock {
namespace workloads {
namespace gapbs {

CcResult
connectedComponents(sim::Simulator &sim, Graph &g)
{
    const std::size_t n = g.numVertices();
    InstrumentedArray<GNode> comp(sim, n, "cc-labels");
    for (std::size_t i = 0; i < n; ++i)
        comp.poke(i, static_cast<GNode>(i));
    comp.streamInit();

    CcResult result;
    bool changed = true;
    while (changed) {
        changed = false;
        ++result.iterations;
        for (std::size_t u = 0; u < n; ++u) {
            const GNode cu = comp.get(u);
            GNode best = cu;
            const std::uint64_t begin = g.offset(static_cast<GNode>(u));
            const std::uint64_t end = g.offset(static_cast<GNode>(u + 1));
            for (std::uint64_t e = begin; e < end; ++e) {
                const GNode cv = comp.get(g.neighbor(e));
                if (cv < best)
                    best = cv;
            }
            if (best < cu) {
                comp.set(u, best);
                changed = true;
            }
        }
    }

    std::unordered_set<GNode> labels;
    for (std::size_t i = 0; i < n; ++i)
        labels.insert(comp.peek(i));
    result.components = labels.size();
    return result;
}

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock
