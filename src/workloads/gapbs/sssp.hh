/**
 * @file
 * Single-source shortest paths (GAPBS sssp, delta-stepping).
 */

#ifndef MCLOCK_WORKLOADS_GAPBS_SSSP_HH_
#define MCLOCK_WORKLOADS_GAPBS_SSSP_HH_

#include <cstdint>

#include "workloads/gapbs/graph.hh"

namespace mclock {

namespace sim {
class Simulator;
}

namespace workloads {
namespace gapbs {

/** SSSP outcome (for verification). */
struct SsspResult
{
    std::uint64_t reached = 0;       ///< vertices with finite distance
    std::uint64_t distanceSum = 0;   ///< sum of finite distances
};

/**
 * Delta-stepping SSSP from @p source on a weighted graph.
 * @param delta bucket width (GAPBS default: tuned per graph; pass 0 to
 *              use a heuristic of maxWeight/4)
 */
SsspResult sssp(sim::Simulator &sim, Graph &g, GNode source,
                std::uint32_t delta = 0);

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_GAPBS_SSSP_HH_
