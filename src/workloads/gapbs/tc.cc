#include "workloads/gapbs/tc.hh"

#include "sim/simulator.hh"

namespace mclock {
namespace workloads {
namespace gapbs {

TcResult
triangleCount(sim::Simulator &sim, Graph &g)
{
    (void)sim;  // all accesses flow through the graph's arrays
    TcResult result;
    const std::size_t n = g.numVertices();
    for (GNode u = 0; u < n; ++u) {
        const std::uint64_t ub = g.offset(u);
        const std::uint64_t ue = g.offset(u + 1);
        for (std::uint64_t e = ub; e < ue; ++e) {
            const GNode v = g.neighbor(e);
            if (v >= u)
                break;  // sorted adjacency: only v < u
            // Merge-intersect adj(u) and adj(v), counting w < v.
            std::uint64_t itU = ub;
            std::uint64_t itV = g.offset(v);
            const std::uint64_t vEnd = g.offset(v + 1);
            if (itV >= vEnd)
                continue;
            GNode wu = g.neighbor(itU);
            GNode wv = g.neighbor(itV);
            while (itU < ue && itV < vEnd) {
                if (wu >= v || wv >= v)
                    break;
                if (wu < wv) {
                    if (++itU < ue)
                        wu = g.neighbor(itU);
                } else if (wv < wu) {
                    if (++itV < vEnd)
                        wv = g.neighbor(itV);
                } else {
                    ++result.triangles;
                    if (++itU < ue)
                        wu = g.neighbor(itU);
                    if (++itV < vEnd)
                        wv = g.neighbor(itV);
                }
            }
        }
    }
    return result;
}

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock
