/**
 * @file
 * Edge-list to CSR builder (GAPBS BuilderBase).
 *
 * Construction happens host-side; the resulting arrays are then written
 * into simulated memory in allocation order (offsets, neighbors,
 * weights), which is the benchmark's load phase and determines which
 * pages are born in DRAM before the tier spills over.
 */

#ifndef MCLOCK_WORKLOADS_GAPBS_BUILDER_HH_
#define MCLOCK_WORKLOADS_GAPBS_BUILDER_HH_

#include <memory>
#include <vector>

#include "workloads/gapbs/graph.hh"

namespace mclock {

namespace sim {
class Simulator;
}

namespace workloads {
namespace gapbs {

/** Builder options. */
struct BuildOptions
{
    /** Insert both directions of every edge (undirected semantics). */
    bool symmetrize = true;
    /** Drop u==v edges. */
    bool removeSelfLoops = true;
    /** Sort each adjacency list ascending and drop duplicates (TC). */
    bool sortAndDedupNeighbors = false;
    /** Relabel vertices by decreasing degree (TC's preprocessing). */
    bool relabelByDegree = false;
    /** Materialise the weights array. */
    bool keepWeights = false;
};

/** Builds an instrumented CSR graph inside a simulator. */
class Builder
{
  public:
    /**
     * Build a Graph from @p edges with @p opts, allocating its arrays in
     * @p sim's address space and stream-initialising them.
     */
    static std::unique_ptr<Graph> build(sim::Simulator &sim,
                                        std::vector<Edge> edges,
                                        const BuildOptions &opts);
};

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_GAPBS_BUILDER_HH_
