#include "workloads/gapbs/bfs.hh"

#include <vector>

#include "sim/simulator.hh"
#include "workloads/instrumented_array.hh"

namespace mclock {
namespace workloads {
namespace gapbs {

BfsResult
bfs(sim::Simulator &sim, Graph &g, GNode source)
{
    const std::size_t n = g.numVertices();
    InstrumentedArray<std::int32_t> parent(sim, n, "bfs-parent");
    for (std::size_t i = 0; i < n; ++i)
        parent.poke(i, -1);
    parent.streamInit();

    std::vector<GNode> frontier{source};
    parent.set(source, static_cast<std::int32_t>(source));

    BfsResult result;
    result.visited = 1;
    std::uint64_t depth = 0;
    std::vector<GNode> next;
    while (!frontier.empty()) {
        next.clear();
        for (GNode u : frontier) {
            const std::uint64_t begin = g.offset(u);
            const std::uint64_t end = g.offset(u + 1);
            for (std::uint64_t e = begin; e < end; ++e) {
                const GNode v = g.neighbor(e);
                if (parent.get(v) < 0) {
                    parent.set(v, static_cast<std::int32_t>(u));
                    next.push_back(v);
                    ++result.visited;
                }
            }
        }
        frontier.swap(next);
        if (!frontier.empty())
            ++depth;
    }
    result.maxDepth = depth;
    return result;
}

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock
