#include "workloads/gapbs/generator.hh"

#include "base/logging.hh"

namespace mclock {
namespace workloads {
namespace gapbs {

std::vector<Edge>
makeKroneckerEdges(unsigned scale, unsigned degree, Rng &rng)
{
    MCLOCK_ASSERT(scale > 0 && scale < 31);
    const std::size_t n = std::size_t{1} << scale;
    const std::size_t m = n * degree;
    std::vector<Edge> edges;
    edges.reserve(m);
    // Graph500 RMAT quadrant probabilities.
    const double a = 0.57, b = 0.19, c = 0.19;
    for (std::size_t i = 0; i < m; ++i) {
        GNode u = 0, v = 0;
        for (unsigned bit = 0; bit < scale; ++bit) {
            const double r = rng.nextDouble();
            if (r < a) {
                // quadrant (0,0)
            } else if (r < a + b) {
                v |= 1u << bit;
            } else if (r < a + b + c) {
                u |= 1u << bit;
            } else {
                u |= 1u << bit;
                v |= 1u << bit;
            }
        }
        edges.push_back({u, v, 1});
    }
    return edges;
}

std::vector<Edge>
makeUniformEdges(unsigned scale, unsigned degree, Rng &rng)
{
    MCLOCK_ASSERT(scale > 0 && scale < 31);
    const std::size_t n = std::size_t{1} << scale;
    const std::size_t m = n * degree;
    std::vector<Edge> edges;
    edges.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
        edges.push_back({static_cast<GNode>(rng.nextRange(n)),
                         static_cast<GNode>(rng.nextRange(n)), 1});
    }
    return edges;
}

void
assignWeights(std::vector<Edge> &edges, Weight maxWeight, Rng &rng)
{
    MCLOCK_ASSERT(maxWeight >= 1);
    for (auto &e : edges)
        e.w = static_cast<Weight>(1 + rng.nextRange(maxWeight));
}

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock
