/**
 * @file
 * CSR graph over simulated memory (the GAP Benchmark Suite substrate).
 *
 * The graph is stored exactly as GAPBS stores it: an offsets array
 * (n+1), a packed neighbor array (m entries), and, for weighted graphs,
 * a parallel weights array. All kernel-visible reads go through the
 * simulator; host-side peeks exist only for verification.
 */

#ifndef MCLOCK_WORKLOADS_GAPBS_GRAPH_HH_
#define MCLOCK_WORKLOADS_GAPBS_GRAPH_HH_

#include <cstdint>

#include "workloads/instrumented_array.hh"

namespace mclock {
namespace workloads {
namespace gapbs {

/** Vertex identifier. */
using GNode = std::uint32_t;

/** Edge weight. */
using Weight = std::uint32_t;

/** One directed edge of an edge list. */
struct Edge
{
    GNode u;
    GNode v;
    Weight w = 1;
};

/** Instrumented CSR graph. */
class Graph
{
  public:
    Graph() = default;

    std::size_t numVertices() const { return numVertices_; }
    /** Directed CSR entries (2x the undirected edge count). */
    std::size_t numEdges() const { return numEdges_; }
    bool weighted() const { return weights_.allocated(); }

    /** Simulated read of offsets[u]. */
    std::uint64_t
    offset(GNode u)
    {
        return offsets_.get(u);
    }

    /** Simulated read of the neighbor at CSR position @p e. */
    GNode
    neighbor(std::uint64_t e)
    {
        return neighbors_.get(static_cast<std::size_t>(e));
    }

    /** Simulated read of the weight at CSR position @p e. */
    Weight
    weight(std::uint64_t e)
    {
        return weights_.get(static_cast<std::size_t>(e));
    }

    /** Host-side degree (no simulated access); for setup/verification. */
    std::uint64_t
    peekDegree(GNode u) const
    {
        return offsets_.peek(u + 1) - offsets_.peek(u);
    }

    std::uint64_t peekOffset(GNode u) const { return offsets_.peek(u); }
    GNode
    peekNeighbor(std::uint64_t e) const
    {
        return neighbors_.peek(static_cast<std::size_t>(e));
    }

  private:
    friend class Builder;

    std::size_t numVertices_ = 0;
    std::size_t numEdges_ = 0;
    InstrumentedArray<std::uint64_t> offsets_;
    InstrumentedArray<GNode> neighbors_;
    InstrumentedArray<Weight> weights_;
};

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_GAPBS_GRAPH_HH_
