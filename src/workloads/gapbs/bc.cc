#include "workloads/gapbs/bc.hh"

#include <algorithm>
#include <vector>

#include "base/rng.hh"
#include "sim/simulator.hh"
#include "workloads/instrumented_array.hh"

namespace mclock {
namespace workloads {
namespace gapbs {

BcResult
betweenness(sim::Simulator &sim, Graph &g, unsigned numSources,
            std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<GNode> sources;
    sources.reserve(numSources);
    for (unsigned s = 0; s < numSources; ++s) {
        sources.push_back(
            static_cast<GNode>(rng.nextRange(g.numVertices())));
    }
    return betweennessFromSources(sim, g, sources);
}

BcResult
betweennessFromSources(sim::Simulator &sim, Graph &g,
                       const std::vector<GNode> &sources)
{
    const std::size_t n = g.numVertices();
    InstrumentedArray<double> scores(sim, n, "bc-scores");
    InstrumentedArray<std::int32_t> depth(sim, n, "bc-depth");
    InstrumentedArray<double> sigma(sim, n, "bc-sigma");
    InstrumentedArray<double> delta(sim, n, "bc-delta");
    scores.streamInit();

    BcResult result;
    result.sources = static_cast<unsigned>(sources.size());

    for (const GNode source : sources) {
        // Forward phase: BFS recording depths and shortest-path counts.
        for (std::size_t i = 0; i < n; ++i) {
            depth.poke(i, -1);
            sigma.poke(i, 0.0);
            delta.poke(i, 0.0);
        }
        depth.streamInit();
        sigma.streamInit();
        delta.streamInit();
        depth.set(source, 0);
        sigma.set(source, 1.0);

        std::vector<std::vector<GNode>> levels{{source}};
        while (!levels.back().empty()) {
            std::vector<GNode> next;
            const auto d =
                static_cast<std::int32_t>(levels.size() - 1);
            for (GNode u : levels.back()) {
                const double su = sigma.get(u);
                const std::uint64_t begin = g.offset(u);
                const std::uint64_t end = g.offset(u + 1);
                for (std::uint64_t e = begin; e < end; ++e) {
                    const GNode v = g.neighbor(e);
                    const std::int32_t dv = depth.get(v);
                    if (dv < 0) {
                        depth.set(v, d + 1);
                        sigma.set(v, su);
                        next.push_back(v);
                    } else if (dv == d + 1) {
                        sigma.update(v,
                                     [su](double x) { return x + su; });
                    }
                }
            }
            levels.push_back(std::move(next));
        }

        // Backward phase: dependency accumulation, deepest level first.
        for (std::size_t l = levels.size(); l-- > 1;) {
            for (GNode u : levels[l - 1]) {
                const std::int32_t du = depth.get(u);
                const double su = sigma.get(u);
                double acc = 0.0;
                const std::uint64_t begin = g.offset(u);
                const std::uint64_t end = g.offset(u + 1);
                for (std::uint64_t e = begin; e < end; ++e) {
                    const GNode v = g.neighbor(e);
                    if (depth.get(v) == du + 1) {
                        acc += su / sigma.get(v) *
                               (1.0 + delta.get(v));
                    }
                }
                delta.set(u, acc);
                if (u != source) {
                    scores.update(u,
                                  [acc](double x) { return x + acc; });
                }
            }
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        const double sc = scores.peek(i);
        result.scoreSum += sc;
        result.maxScore = std::max(result.maxScore, sc);
    }
    return result;
}

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock
