/**
 * @file
 * PageRank (GAPBS pr, pull direction on a symmetrized graph).
 */

#ifndef MCLOCK_WORKLOADS_GAPBS_PR_HH_
#define MCLOCK_WORKLOADS_GAPBS_PR_HH_

#include <cstdint>

#include "workloads/gapbs/graph.hh"

namespace mclock {

namespace sim {
class Simulator;
}

namespace workloads {
namespace gapbs {

/** PageRank outcome (for verification). */
struct PrResult
{
    double scoreSum = 0.0;   ///< should stay ~1.0
    double maxScore = 0.0;
    unsigned iterations = 0;
};

/**
 * Run @p iterations of pull-based PageRank with damping 0.85.
 */
PrResult pagerank(sim::Simulator &sim, Graph &g, unsigned iterations);

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_GAPBS_PR_HH_
