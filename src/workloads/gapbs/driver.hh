/**
 * @file
 * GAPBS benchmark driver.
 *
 * Mirrors the GAP reference harness: load the graph into memory, then
 * execute multiple timed trials of one kernel over the memory-resident
 * graph, reporting the average execution time per trial (the paper's
 * Fig. 6 metric). Tiering policies adapt across trials exactly as they
 * did on the authors' testbed.
 */

#ifndef MCLOCK_WORKLOADS_GAPBS_DRIVER_HH_
#define MCLOCK_WORKLOADS_GAPBS_DRIVER_HH_

#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "base/units.hh"
#include "workloads/gapbs/graph.hh"

namespace mclock {

namespace sim {
class Simulator;
}

namespace workloads {
namespace gapbs {

/** The six GAPBS kernels. */
enum class Kernel { BFS, SSSP, PR, CC, BC, TC };

const char *kernelName(Kernel k);

/** Driver configuration. */
struct GapbsConfig
{
    unsigned scale = 16;       ///< 2^scale vertices (kron graph)
    unsigned degree = 24;      ///< average undirected degree
    unsigned trials = 2;
    unsigned prIters = 8;
    unsigned bcSources = 2;
    Weight maxWeight = 64;     ///< SSSP weight range [1, maxWeight]
    std::uint64_t seed = 5;
    /**
     * TC runs on a smaller uniform graph: the kron graph's hubs make
     * exact counting quadratically expensive (documented substitution).
     */
    unsigned tcScale = 14;
    unsigned tcDegree = 10;
};

/** Result of one kernel benchmark. */
struct GapbsResult
{
    std::string kernel;
    std::vector<double> trialSeconds;  ///< simulated seconds per trial
    std::uint64_t checksum = 0;        ///< kernel-specific sanity value

    double
    avgTrialSeconds() const
    {
        if (trialSeconds.empty())
            return 0.0;
        double sum = 0.0;
        for (double t : trialSeconds)
            sum += t;
        return sum / static_cast<double>(trialSeconds.size());
    }
};

/** Builds the right graph for a kernel and runs its trials. */
class GapbsDriver
{
  public:
    GapbsDriver(sim::Simulator &sim, GapbsConfig cfg = {});
    ~GapbsDriver();

    /**
     * Run @p kernel: builds the graph (load phase, untimed), then runs
     * cfg.trials timed trials.
     */
    GapbsResult run(Kernel kernel);

  private:
    sim::Simulator &sim_;
    GapbsConfig cfg_;
    std::unique_ptr<Graph> graph_;
};

}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock

#endif  // MCLOCK_WORKLOADS_GAPBS_DRIVER_HH_
