#include "workloads/ycsb.hh"

#include "base/logging.hh"
#include "sim/simulator.hh"

namespace mclock {
namespace workloads {

const char *
ycsbWorkloadName(YcsbWorkload w)
{
    switch (w) {
      case YcsbWorkload::A: return "A";
      case YcsbWorkload::B: return "B";
      case YcsbWorkload::C: return "C";
      case YcsbWorkload::D: return "D";
      case YcsbWorkload::E: return "E";
      case YcsbWorkload::F: return "F";
      case YcsbWorkload::W: return "W";
    }
    return "?";
}

YcsbDriver::YcsbDriver(sim::Simulator &sim, YcsbConfig cfg)
    : sim_(sim), cfg_(cfg), rng_(cfg.seed),
      store_(std::make_unique<KvStore>(sim, [&cfg] {
          KvStoreConfig kv;
          kv.batchAccesses = cfg.batchAccesses;
          return kv;
      }()))
{
}

void
YcsbDriver::load()
{
    for (std::uint64_t i = 0; i < cfg_.recordCount; ++i)
        store_->put(keyOf(i), cfg_.valueBytes);
    recordsLoaded_ = cfg_.recordCount;
}

void
YcsbDriver::doRead(std::uint64_t recno)
{
    const bool found = store_->get(keyOf(recno));
    MCLOCK_ASSERT(found);
}

void
YcsbDriver::doUpdate(std::uint64_t recno)
{
    store_->put(keyOf(recno), cfg_.valueBytes);
}

void
YcsbDriver::doInsert()
{
    store_->put(keyOf(recordsLoaded_), cfg_.valueBytes);
    ++recordsLoaded_;
}

YcsbResult
YcsbDriver::run(YcsbWorkload w)
{
    YcsbResult result;
    // GCC 12 emits a -Wrestrict false positive (PR 105329) when this
    // string assignment is inlined at -O2; the pointer can never alias
    // the string's storage.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
    result.workload = ycsbWorkloadName(w);
#pragma GCC diagnostic pop
    MCLOCK_ASSERT(recordsLoaded_ > 0);  // load() first

    if (w == YcsbWorkload::E) {
        // SCAN is not implemented by Memcached; the workload is
        // non-operational on this backend (paper §V-B).
        result.operational = false;
        return result;
    }

    ScrambledZipfianGenerator zipf(recordsLoaded_, cfg_.zipfTheta);
    LatestGenerator latest(recordsLoaded_, cfg_.zipfTheta);

    const SimTime start = sim_.now();
    for (std::uint64_t op = 0; op < cfg_.opsPerWorkload; ++op) {
        switch (w) {
          case YcsbWorkload::A:
            // 50% reads, 50% updates.
            if (rng_.nextBool(0.5))
                doRead(zipf.next(rng_));
            else
                doUpdate(zipf.next(rng_));
            break;
          case YcsbWorkload::B:
            // 95% reads, 5% updates.
            if (rng_.nextBool(0.95))
                doRead(zipf.next(rng_));
            else
                doUpdate(zipf.next(rng_));
            break;
          case YcsbWorkload::C:
            doRead(zipf.next(rng_));
            break;
          case YcsbWorkload::D:
            // 95% reads of recent records, 5% inserts.
            if (rng_.nextBool(0.95)) {
                doRead(latest.next(rng_));
            } else {
                doInsert();
                latest.setItemCount(recordsLoaded_);
            }
            break;
          case YcsbWorkload::F:
            // 50% reads, 50% read-modify-writes.
            if (rng_.nextBool(0.5))
                doRead(zipf.next(rng_));
            else
                store_->readModifyWrite(keyOf(zipf.next(rng_)));
            break;
          case YcsbWorkload::W:
            doUpdate(zipf.next(rng_));
            break;
          case YcsbWorkload::E:
            break;  // handled above
        }
    }
    result.ops = cfg_.opsPerWorkload;
    result.elapsed = sim_.now() - start;
    return result;
}

std::vector<YcsbResult>
YcsbDriver::runPaperSequence()
{
    std::vector<YcsbResult> results;
    for (YcsbWorkload w : {YcsbWorkload::A, YcsbWorkload::B,
                           YcsbWorkload::C, YcsbWorkload::F,
                           YcsbWorkload::W, YcsbWorkload::D}) {
        results.push_back(run(w));
    }
    return results;
}

}  // namespace workloads
}  // namespace mclock
