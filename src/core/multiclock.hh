/**
 * @file
 * MULTI-CLOCK: the paper's dynamic tiering policy.
 *
 * MULTI-CLOCK runs a modified CLOCK-based PFRA on each memory tier
 * separately. Beyond the kernel's active and inactive lists it adds a
 * third per-node list — the promote list — holding pages that were
 * recently accessed more than once (its principal hypothesis: such pages
 * are the ones likely to be accessed again soon). A periodic kernel
 * daemon, kpromoted, scans the lists of lower-tier nodes, advances page
 * states (inactive -> active -> promote) from PTE reference bits, and
 * migrates every selected promote-list page to the DRAM tier in the same
 * run. Demotion reuses the watermark-driven eviction design, migrating
 * unreferenced inactive-tail pages one tier down instead of evicting.
 *
 * Page state machine (paper Fig. 4): see transition numbers referenced
 * in the implementation comments; every transition has a dedicated unit
 * test in tests/core.
 */

#ifndef MCLOCK_CORE_MULTICLOCK_HH_
#define MCLOCK_CORE_MULTICLOCK_HH_

#include <cstddef>
#include <memory>
#include <vector>

#include "base/types.hh"
#include "base/units.hh"
#include "pfra/vmscan.hh"
#include "policies/policy.hh"
#include "sim/daemon.hh"

namespace mclock {
namespace core {

class Kpromoted;

/** Tunables for MULTI-CLOCK (paper defaults). */
struct MultiClockConfig
{
    /** kpromoted wake period; the paper selects 1 s (Fig. 10). */
    SimTime scanInterval = 1_s;
    /** Pages scanned per list per kpromoted run (paper: 1024). */
    std::size_t nrScan = 1024;
    /**
     * Max pages migrated up per kpromoted run per node. kpromoted
     * promotes everything it selects, but selection itself is bounded
     * by the scan budget; this cap mirrors that bound and prevents
     * promote/demote churn when the hot set far exceeds DRAM.
     */
    std::size_t promoteBudget = 64;
    /** Page budget per pressure-handler invocation. */
    std::size_t pressureBudget = 2048;
};

/** The MULTI-CLOCK tiering policy. */
class MultiClockPolicy : public policies::TieringPolicy
{
  public:
    explicit MultiClockPolicy(MultiClockConfig cfg = {});
    ~MultiClockPolicy() override;

    const char *name() const override { return "multiclock"; }

    void attach(sim::Simulator &sim) override;

    /**
     * The extended mark_page_accessed(): supervised accesses advance
     * pages inactive -> active as in vanilla Linux, plus the MULTI-CLOCK
     * extension — an already-active, already-referenced page that is
     * referenced again acquires PagePromote and moves to the promote
     * list (Fig. 4 transition 10).
     */
    void onSupervisedAccess(Page *page) override;

    /**
     * Demotion mechanism (paper §III-C): (1) promote-list pages are
     * first attempted to migrate up (locked pages fall back to the
     * active list); (2) the active:inactive ratio is rebalanced; (3)
     * unreferenced inactive-tail pages migrate one tier down, or are
     * written back to storage on the lowest tier.
     */
    void handlePressure(sim::Node &node) override;

    policies::FeatureRow features() const override;

    const MultiClockConfig &config() const { return cfg_; }

    /**
     * Demote up to @p target unreferenced inactive-tail pages from the
     * given tier to make room for promotions ("promotions from the
     * lower tier result in immediate page demotions from the higher
     * tier", paper III-C). Returns the number of pages demoted; zero
     * when the tier is uniformly warm, which back-pressures promotion
     * instead of churning warm pages.
     */
    std::size_t demoteFromTier(TierRank tier, std::size_t target);

    /** Adjust the kpromoted period at runtime (Fig. 10 sweeps). */
    void setScanInterval(SimTime interval);

  private:
    friend class Kpromoted;

    /**
     * Filter sparing pages of tenants at or below their memcg "low"
     * floor on @p tier; empty (no overhead) on hosts without tenants.
     */
    pfra::PageFilter lowProtectionFilter(TierRank tier) const;

    MultiClockConfig cfg_;
    std::vector<std::unique_ptr<Kpromoted>> kpromoted_;
    std::vector<sim::DaemonId> daemonIds_;
};

}  // namespace core
}  // namespace mclock

#endif  // MCLOCK_CORE_MULTICLOCK_HH_
