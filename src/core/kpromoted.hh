/**
 * @file
 * kpromoted: MULTI-CLOCK's per-node promotion daemon.
 *
 * One kpromoted instance per lower-tier NUMA node (mirroring the
 * kernel's one-kswapd-per-node design, which avoids lock contention on
 * per-node structures). On each wake it scans the node's inactive,
 * active, and promote lists (up to nr_scan pages each), advances page
 * states from PTE reference bits, and then migrates every page selected
 * on the promote list to the DRAM tier in the same run.
 */

#ifndef MCLOCK_CORE_KPROMOTED_HH_
#define MCLOCK_CORE_KPROMOTED_HH_

#include <cstdint>

#include "base/types.hh"

namespace mclock {

class Page;

namespace sim {
class Node;
class Simulator;
}  // namespace sim

namespace core {

class MultiClockPolicy;
struct MultiClockConfig;

/** The promotion daemon body for one node. */
class Kpromoted
{
  public:
    Kpromoted(MultiClockPolicy &policy, sim::Simulator &sim, NodeId node);

    /** One wake-up of the daemon. */
    void run(SimTime now);

    std::uint64_t runs() const { return runs_; }
    std::uint64_t promoted() const { return promoted_; }

    // Scan passes are public so the pressure handler (and tests) can
    // reuse them; each returns the number of pages examined.

    /** Inactive-list pass: transitions (1), (2), (6) of Fig. 4. */
    std::uint64_t scanInactive(sim::Node &node, bool anon,
                               std::size_t nrScan);

    /** Active-list pass: transitions (7)/(8), decay, and (10). */
    std::uint64_t scanActive(sim::Node &node, bool anon,
                             std::size_t nrScan);

    /**
     * shrink_promote_list(): migrate referenced promote-list pages to
     * the higher tier — transition (13) — recycling unreferenced ones to
     * the active list — transition (11). When the higher tier is under
     * pressure, promotions trigger immediate demotions there.
     *
     * @param budget       pages to process
     * @param underPressure true when called from the pressure handler
     * @return pages promoted
     */
    std::uint64_t shrinkPromoteList(sim::Node &node, bool anon,
                                    std::size_t budget, bool underPressure,
                                    std::size_t maxPromotions = ~0ull);

  private:
    MultiClockPolicy &policy_;
    sim::Simulator &sim_;
    NodeId nodeId_;
    std::uint64_t runs_ = 0;
    std::uint64_t promoted_ = 0;
};

}  // namespace core
}  // namespace mclock

#endif  // MCLOCK_CORE_KPROMOTED_HH_
