#include "core/kpromoted.hh"

#include "base/logging.hh"
#include "core/multiclock.hh"
#include "pfra/lru_lists.hh"
#include "sim/memory_system.hh"
#include "sim/metrics.hh"
#include "sim/node.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"

namespace mclock {
namespace core {

Kpromoted::Kpromoted(MultiClockPolicy &policy, sim::Simulator &sim,
                     NodeId node)
    : policy_(policy), sim_(sim), nodeId_(node)
{
}

void
Kpromoted::run(SimTime now)
{
    (void)now;
    sim::Node &node = sim_.memory().node(nodeId_);
    const std::size_t nrScan = policy_.config().nrScan;

    sim_.vmstat().add(stats::VmItem::KpromotedWake, nodeId_);
    sim_.trace().record(stats::TraceEventType::KpromotedWake, nodeId_,
                        node.lists().promoteSize(true),
                        node.lists().promoteSize(false));

    // Selection: advance page states from reference-bit evidence.
    std::uint64_t scanned = 0;
    for (bool anon : {true, false}) {
        scanned += scanInactive(node, anon, nrScan);
        scanned += scanActive(node, anon, nrScan);
    }
    sim_.chargeScan(scanned);

    // Promotion: migrate everything selected, in this same run (the
    // migration volume is bounded by the selection/scan budget).
    sim_.metrics().beginPromotionRound();
    std::uint64_t promotedNow = 0;
    for (bool anon : {true, false}) {
        const std::size_t budget =
            node.lists().promoteSize(anon);  // all selected pages
        const std::size_t cap =
            policy_.config().promoteBudget > promotedNow
                ? policy_.config().promoteBudget - promotedNow
                : 0;
        promotedNow += shrinkPromoteList(node, anon, budget,
                                         /*underPressure=*/false, cap);
    }
    promoted_ += promotedNow;
    ++runs_;
    sim_.stats().inc("kpromoted_runs");
    sim_.stats().inc("kpromoted_promoted", promotedNow);
}

std::uint64_t
Kpromoted::scanInactive(sim::Node &node, bool anon, std::size_t nrScan)
{
    auto &lists = node.lists();
    auto &inactive = lists.list(pfra::NodeLists::inactiveKind(anon));
    const std::size_t budget = std::min(nrScan, inactive.size());
    for (std::size_t i = 0; i < budget; ++i) {
        Page *pg = inactive.back();
        if (pg->testAndClearPteReferenced()) {
            if (pg->referenced()) {
                // Transition (6): inactive referenced -> active.
                pg->setReferenced(false);
                pg->setActive(true);
                lists.moveTo(pg, pfra::NodeLists::activeKind(anon));
                continue;
            }
            // Transition (2): inactive unreferenced -> referenced.
            pg->setReferenced(true);
        } else if (pg->referenced()) {
            // Transition (1): decay back to unreferenced.
            pg->setReferenced(false);
        }
        // CLOCK hand: rotate the scanned page to the list head so the
        // next run examines the following pages.
        lists.rotateToFront(pg);
    }
    lists.statAdd(stats::VmItem::PgscanInactive, budget);
    return budget;
}

std::uint64_t
Kpromoted::scanActive(sim::Node &node, bool anon, std::size_t nrScan)
{
    auto &lists = node.lists();
    auto &active = lists.list(pfra::NodeLists::activeKind(anon));
    const std::size_t budget = std::min(nrScan, active.size());
    for (std::size_t i = 0; i < budget; ++i) {
        Page *pg = active.back();
        if (pg->testAndClearPteReferenced()) {
            if (pg->referenced()) {
                // Transition (10): referenced again while active and
                // referenced -> PagePromote, onto the promote list.
                pg->setPromoteFlag(true);
                lists.moveTo(pg, pfra::NodeLists::promoteKind(anon));
                continue;
            }
            // Transitions (7)/(8): active unreferenced -> referenced.
            pg->setReferenced(true);
        } else if (pg->referenced()) {
            pg->setReferenced(false);
        }
        lists.rotateToFront(pg);
    }
    lists.statAdd(stats::VmItem::PgscanActive, budget);
    return budget;
}

std::uint64_t
Kpromoted::shrinkPromoteList(sim::Node &node, bool anon, std::size_t budget,
                             bool underPressure,
                             std::size_t maxPromotions)
{
    auto &mem = sim_.memory();
    auto &lists = node.lists();
    auto &promote = lists.list(pfra::NodeLists::promoteKind(anon));
    const std::size_t toScan = std::min(budget, promote.size());
    std::uint64_t promotedNow = 0;
    // Once the higher tier has no cold pages left to demote, stop
    // forcing room: promoting into a uniformly warm tier is churn.
    bool demotionExhausted = false;

    TierRank up;
    const bool hasHigher = mem.higherTier(node.tier(), up);

    if (hasHigher && sim_.promotionThrottled(node.id())) {
        // Graceful degradation: this node's promotions keep aborting
        // (injected migration faults); leave the promote list parked
        // until the cooldown expires instead of churning pages through
        // doomed transactions.
        return 0;
    }

    for (std::size_t i = 0; i < toScan; ++i) {
        Page *pg = promote.back();
        const bool wasReferenced =
            pg->testAndClearPteReferenced() || pg->referenced();

        if (!wasReferenced && !underPressure) {
            // Transition (11): cooled off, back to active unreferenced.
            pg->setReferenced(false);
            pg->setPromoteFlag(false);
            lists.moveTo(pg, pfra::NodeLists::activeKind(anon));
            continue;
        }

        if (!hasHigher) {
            // Top tier: nothing to promote into; recycle to active.
            pg->setReferenced(false);
            pg->setPromoteFlag(false);
            lists.moveTo(pg, pfra::NodeLists::activeKind(anon));
            continue;
        }

        if (promotedNow >= maxPromotions) {
            // Promotion budget exhausted: stay selected for the next
            // run (rotate so the scan can visit the remaining pages).
            lists.rotateToFront(pg);
            continue;
        }

        if (!sim_.tenantPromoteAllowed(pg, up)) {
            // Tenant quota/cap deferral: park like budget exhaustion.
            // Crucially, do NOT fall into the demote-and-retry path —
            // an out-of-quota tenant must not force demotions of other
            // tenants' upper-tier pages.
            lists.rotateToFront(pg);
            continue;
        }

        // Transition (13): migrate to the higher tier.
        lists.remove(pg);
        bool ok = sim_.promotePage(pg, sim::Simulator::ChargeMode::Background);
        if (!ok && !underPressure && !demotionExhausted) {
            // The higher tier is under memory pressure: promotions
            // result in immediate demotions there, then retry. Demote
            // roughly one-for-one with the remaining promotion budget;
            // if nothing on the higher tier is cold enough, stop
            // promoting rather than churn warm pages.
            const std::size_t want = maxPromotions == ~0ull
                ? 64
                : std::max<std::size_t>(1, maxPromotions - promotedNow);
            if (policy_.demoteFromTier(up, want) == 0)
                demotionExhausted = true;
            ok = sim_.promotePage(pg, sim::Simulator::ChargeMode::Background);
        }
        if (ok) {
            // Arrive hot on the upper tier's active list.
            pg->setPromoteFlag(false);
            pg->setReferenced(false);
            pg->setActive(true);
            mem.node(pg->node()).lists().add(
                pg, pfra::NodeLists::activeKind(anon));
            ++promotedNow;
        } else {
            // Not migratable (e.g. locked, or no space even after
            // reclaim): fall back to the active list here.
            pg->setPromoteFlag(false);
            pg->setReferenced(false);
            lists.add(pg, pfra::NodeLists::activeKind(anon));
        }
    }
    lists.statAdd(stats::VmItem::PgscanPromote, toScan);
    sim_.chargeScan(toScan);
    return promotedNow;
}

}  // namespace core
}  // namespace mclock
