#include "core/multiclock.hh"

#include <vector>

#include "base/logging.hh"
#include "core/kpromoted.hh"
#include "pfra/vmscan.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"

namespace mclock {
namespace core {

MultiClockPolicy::MultiClockPolicy(MultiClockConfig cfg) : cfg_(cfg)
{
}

MultiClockPolicy::~MultiClockPolicy() = default;

void
MultiClockPolicy::attach(sim::Simulator &sim)
{
    TieringPolicy::attach(sim);
    auto &mem = sim.memory();
    // One kpromoted instance per node (the pressure handler reuses its
    // scan passes everywhere); the daemon thread is registered only for
    // nodes that have a higher tier to promote into.
    kpromoted_.clear();
    daemonIds_.clear();
    for (std::size_t i = 0; i < mem.numNodes(); ++i) {
        const NodeId id = static_cast<NodeId>(i);
        kpromoted_.push_back(std::make_unique<Kpromoted>(*this, sim, id));
        TierRank up;
        if (mem.higherTier(mem.node(id).tier(), up)) {
            Kpromoted *kp = kpromoted_.back().get();
            daemonIds_.push_back(sim.daemons().add(
                "kpromoted/" + std::to_string(id), cfg_.scanInterval,
                [kp](SimTime now) { kp->run(now); }));
        }
    }
}

void
MultiClockPolicy::setScanInterval(SimTime interval)
{
    MCLOCK_ASSERT(interval > 0);
    cfg_.scanInterval = interval;
    if (sim_) {
        for (sim::DaemonId id : daemonIds_)
            sim_->daemons().setInterval(id, interval);
    }
}

void
MultiClockPolicy::onSupervisedAccess(Page *page)
{
    // Extended mark_page_accessed() (paper §IV, Fig. 4).
    if (!page->onLru() || page->unevictable())
        return;
    if (!page->referenced()) {
        page->setReferenced(true);
        return;
    }
    auto &lists = sim_->memory().node(page->node()).lists();
    if (isInactiveList(page->list())) {
        // Activate: inactive referenced -> active (transition 6).
        page->setReferenced(false);
        page->setActive(true);
        lists.moveTo(page, pfra::NodeLists::activeKind(page->isAnon()));
        return;
    }
    if (isActiveList(page->list())) {
        // Transition (10): active + referenced + referenced again ->
        // PagePromote, move to the promote list.
        page->setPromoteFlag(true);
        lists.moveTo(page, pfra::NodeLists::promoteKind(page->isAnon()));
        return;
    }
    // Promote list: transition (12) — accessed again, stays put.
}

pfra::PageFilter
MultiClockPolicy::lowProtectionFilter(TierRank tier) const
{
    // Empty on tenant-free hosts so the common path never pays the
    // std::function dispatch (and stays bit-identical to pre-memcg).
    if (!sim_->memcg().active())
        return {};
    const MemCgroupManager &mc = sim_->memcg();
    return [&mc, tier](const Page &pg) {
        return mc.lowProtected(pg.memcg(), tier);
    };
}

void
MultiClockPolicy::handlePressure(sim::Node &node)
{
    auto &mem = sim_->memory();
    Kpromoted &kp = *kpromoted_[static_cast<std::size_t>(node.id())];

    // Step 1: promote-list pages first attempt to migrate up; failures
    // (locked pages, top tier) land on the active list.
    for (bool anon : {true, false}) {
        kp.shrinkPromoteList(node, anon, node.lists().promoteSize(anon),
                             /*underPressure=*/true);
    }

    // Step 2: rebalance the active:inactive ratio.
    for (bool anon : {true, false}) {
        const auto stats = pfra::balanceActiveInactive(
            node.lists(), anon, cfg_.pressureBudget,
            node.inactiveRatio());
        sim_->chargeScan(stats.scanned);
    }

    // Step 3: demote unreferenced inactive-tail pages one tier down; on
    // the lowest tier, write back to block storage instead. Tenants at
    // or below their memcg "low" floor are spared on the first pass.
    TierRank down;
    const bool hasLower = mem.lowerTier(node.tier(), down);
    const pfra::PageFilter spare = lowProtectionFilter(node.tier());
    std::size_t remaining = cfg_.pressureBudget;
    bool progress = true;
    while (!node.aboveHigh() && remaining > 0 && progress) {
        progress = false;
        for (bool anon : {false, true}) {
            std::vector<Page *> victims;
            const std::size_t chunk = std::min<std::size_t>(remaining, 64);
            if (chunk == 0)
                break;
            auto stats = pfra::collectInactiveCandidates(
                node.lists(), anon, chunk, victims, spare);
            if (victims.empty() && spare && stats.rotated > 0) {
                // Only protected pages at the tail: low is a soft
                // floor, so it yields rather than stalling reclaim.
                stats.merge(pfra::collectInactiveCandidates(
                    node.lists(), anon, chunk, victims));
            }
            sim_->chargeScan(stats.scanned);
            remaining -= std::min<std::size_t>(
                remaining, stats.scanned ? stats.scanned : 1);
            for (Page *pg : victims) {
                progress = true;
                if (hasLower && sim_->demotePage(pg, sim::Simulator::ChargeMode::Background)) {
                    pg->setActive(false);
                    pg->setReferenced(false);
                    mem.node(pg->node()).lists().add(
                        pg, pfra::NodeLists::inactiveKind(anon));
                } else {
                    sim_->evictPage(pg);
                }
            }
        }
    }
}

std::size_t
MultiClockPolicy::demoteFromTier(TierRank tier, std::size_t target)
{
    auto &mem = sim_->memory();
    // A page is demotion-worthy only if it has been idle for at least
    // two scan windows; pages merely un-referenced within the current
    // window are often streaming data that returns next iteration.
    const SimTime idleFloor = cfg_.scanInterval * 2;
    const SimTime now = sim_->now();
    const pfra::PageFilter spare = lowProtectionFilter(tier);
    std::size_t demoted = 0;
    for (NodeId id : mem.tier(tier)) {
        sim::Node &node = mem.node(id);
        for (bool anon : {false, true}) {
            if (demoted >= target)
                return demoted;
            std::vector<Page *> victims;
            auto stats = pfra::collectInactiveCandidates(
                node.lists(), anon, (target - demoted) * 2, victims,
                spare);
            if (victims.empty() && spare && stats.rotated > 0) {
                stats.merge(pfra::collectInactiveCandidates(
                    node.lists(), anon, (target - demoted) * 2,
                    victims));
            }
            sim_->chargeScan(stats.scanned);
            for (Page *pg : victims) {
                const bool idle =
                    pg->lastAccess() + idleFloor <= now;
                if (idle && demoted < target &&
                    sim_->demotePage(
                        pg, sim::Simulator::ChargeMode::Background)) {
                    pg->setActive(false);
                    pg->setReferenced(false);
                    mem.node(pg->node()).lists().add(
                        pg, pfra::NodeLists::inactiveKind(anon));
                    ++demoted;
                } else {
                    // Still warm, out of budget, or no space below:
                    // put it back.
                    node.lists().add(
                        pg, pfra::NodeLists::inactiveKind(anon));
                }
            }
        }
    }
    return demoted;
}

policies::FeatureRow
MultiClockPolicy::features() const
{
    policies::FeatureRow row;
    row.tiering = "MULTI-CLOCK";
    row.tracking = "Reference Bit";
    row.promotion = "Recency+Frequency";
    row.demotion = "Recency";
    row.numaAware = "Yes";
    row.spaceOverhead = "No";
    row.generality = "All";
    row.evaluation = "PM";
    row.usability = "None";
    row.keyInsight = "Low overhead Recency/Frequency";
    return row;
}

}  // namespace core
}  // namespace mclock
