#include "base/rng.hh"

#include "base/logging.hh"

namespace mclock {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextRange(std::uint64_t bound)
{
    MCLOCK_ASSERT(bound > 0);
    // Lemire's nearly-divisionless method degenerates to 128-bit multiply;
    // a simple rejection loop is sufficient and unbiased.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng(next64());
}

}  // namespace mclock
