/**
 * @file
 * Chunked slab arena for simulation objects with stable addresses.
 *
 * The access fast path materialises millions of Page objects per run;
 * allocating each one with operator new scatters them across the heap
 * (one cache miss per pointer chase) and costs an allocator round trip
 * per page. The arena hands out objects from large contiguous chunks in
 * creation order, so pages created by sequential first-touch land next
 * to each other in memory, and recycles destroyed objects through an
 * intrusive free list.
 *
 * Guarantees relied on by the vm layer:
 *  - object addresses are stable for the lifetime of the arena (chunks
 *    are never moved or freed before the arena itself), so intrusive
 *    list hooks and raw Page* held by policies never dangle;
 *  - allocation and deallocation are O(1) and allocation-free apart
 *    from the occasional new chunk;
 *  - recycling is LIFO, which keeps the working set of a
 *    create/destroy churn workload small.
 */

#ifndef MCLOCK_BASE_ARENA_HH_
#define MCLOCK_BASE_ARENA_HH_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "base/logging.hh"

namespace mclock {

/**
 * Slab allocator for objects of type T.
 *
 * @tparam T object type; must fit a pointer (for the free list) and be
 *           destructible. Objects are constructed in place by create()
 *           and destroyed by destroy().
 */
template <typename T>
class SlabArena
{
  public:
    /** @param chunkObjects objects per chunk (power of two advised). */
    explicit SlabArena(std::size_t chunkObjects = 4096)
        : chunkObjects_(chunkObjects)
    {
        MCLOCK_ASSERT(chunkObjects_ > 0);
    }

    SlabArena(const SlabArena &) = delete;
    SlabArena &operator=(const SlabArena &) = delete;

    ~SlabArena() = default;

    /** Construct a T from @p args in a fresh or recycled slot. */
    template <typename... Args>
    T *
    create(Args &&...args)
    {
        Slot *slot;
        if (freeList_) {
            slot = freeList_;
            freeList_ = slot->next;
        } else {
            if (chunks_.empty() || cursor_ == chunkObjects_) {
                chunks_.push_back(
                    std::make_unique<Slot[]>(chunkObjects_));
                cursor_ = 0;
            }
            slot = &chunks_.back()[cursor_++];
        }
        ++live_;
        return new (slot->storage) T(std::forward<Args>(args)...);
    }

    /** Destroy @p obj and recycle its slot (LIFO). */
    void
    destroy(T *obj)
    {
        MCLOCK_ASSERT(obj != nullptr);
        MCLOCK_ASSERT(live_ > 0);
        obj->~T();
        auto *slot = reinterpret_cast<Slot *>(obj);
        slot->next = freeList_;
        freeList_ = slot;
        --live_;
    }

    /** Objects currently alive (created and not destroyed). */
    std::size_t liveObjects() const { return live_; }

    /** Total slots backed by allocated chunks. */
    std::size_t
    capacity() const
    {
        return chunks_.size() * chunkObjects_;
    }

    std::size_t numChunks() const { return chunks_.size(); }

  private:
    /** One slot: either a live T or a free-list link. */
    union Slot
    {
        alignas(T) unsigned char storage[sizeof(T)];
        Slot *next;

        Slot() {}  // NOLINT(modernize-use-equals-default): storage
                   // starts uninitialised on purpose.
        ~Slot() {}  // NOLINT(modernize-use-equals-default)
    };

    std::size_t chunkObjects_;
    std::size_t cursor_ = 0;  ///< next fresh slot in chunks_.back()
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    Slot *freeList_ = nullptr;
    std::size_t live_ = 0;
};

}  // namespace mclock

#endif  // MCLOCK_BASE_ARENA_HH_
