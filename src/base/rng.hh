/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the simulator (workload generators, random
 * selection policies, samplers) draw from Rng so that every experiment is
 * reproducible from a single seed. The generator is xoshiro256**, which is
 * fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef MCLOCK_BASE_RNG_HH_
#define MCLOCK_BASE_RNG_HH_

#include <cstdint>

namespace mclock {

/** xoshiro256** pseudo-random generator with splitmix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform value in [0, bound) without modulo bias (bound > 0). */
    std::uint64_t nextRange(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

    /**
     * Fork a statistically independent child generator. Used to give each
     * workload phase its own stream while preserving determinism.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

}  // namespace mclock

#endif  // MCLOCK_BASE_RNG_HH_
