/**
 * @file
 * Intrusive doubly-linked list used for the per-node LRU lists.
 *
 * The kernel's LRU lists link struct page objects through an embedded
 * list_head; we mirror that design so that moving a page between lists is
 * O(1) and allocation-free, which keeps daemon scan costs realistic and
 * the host-time fast path cheap.
 *
 * The list owns nothing. A hooked object may be on at most one list at a
 * time; the hook tracks membership so erase() of a non-member panics.
 */

#ifndef MCLOCK_BASE_INTRUSIVE_LIST_HH_
#define MCLOCK_BASE_INTRUSIVE_LIST_HH_

#include <cstddef>

#include "base/logging.hh"

namespace mclock {

/** Embedded link; place one inside each object that can live on a list. */
struct ListHook
{
    ListHook *prev = nullptr;
    ListHook *next = nullptr;

    bool linked() const { return prev != nullptr; }
};

/**
 * Intrusive list of T, where T exposes its hook via HookMember.
 *
 * @tparam T        element type
 * @tparam HookPtr  pointer-to-member of the embedded ListHook
 */
template <typename T, ListHook T::*HookPtr>
class IntrusiveList
{
  public:
    IntrusiveList()
    {
        head_.prev = &head_;
        head_.next = &head_;
    }

    IntrusiveList(const IntrusiveList &) = delete;
    IntrusiveList &operator=(const IntrusiveList &) = delete;

    bool empty() const { return head_.next == &head_; }
    std::size_t size() const { return size_; }

    /** Add to the front (head) of the list. */
    void
    pushFront(T *obj)
    {
        ListHook *h = hookOf(obj);
        MCLOCK_ASSERT(!h->linked());
        insertAfter(&head_, h);
        ++size_;
    }

    /** Add to the back (tail) of the list. */
    void
    pushBack(T *obj)
    {
        ListHook *h = hookOf(obj);
        MCLOCK_ASSERT(!h->linked());
        insertAfter(head_.prev, h);
        ++size_;
    }

    /** Remove an element known to be on this list. */
    void
    erase(T *obj)
    {
        ListHook *h = hookOf(obj);
        MCLOCK_ASSERT(h->linked());
#ifdef MCLOCK_DEBUG_VM
        // __list_del_entry_valid: a stale or corrupted hook whose
        // neighbours no longer point back would silently unlink an
        // innocent bystander; catch it before touching the links.
        MCLOCK_ASSERT(h->prev->next == h,
                      "corrupted list: prev->next skips the entry");
        MCLOCK_ASSERT(h->next->prev == h,
                      "corrupted list: next->prev skips the entry");
#endif
        h->prev->next = h->next;
        h->next->prev = h->prev;
        h->prev = nullptr;
        h->next = nullptr;
        MCLOCK_ASSERT(size_ > 0);
        --size_;
    }

    /** First element, or nullptr if empty. */
    T *
    front() const
    {
        return empty() ? nullptr : objOf(head_.next);
    }

    /** Last element, or nullptr if empty. */
    T *
    back() const
    {
        return empty() ? nullptr : objOf(head_.prev);
    }

    /** Pop and return the front element, or nullptr. */
    T *
    popFront()
    {
        T *obj = front();
        if (obj)
            erase(obj);
        return obj;
    }

    /** Pop and return the back element, or nullptr. */
    T *
    popBack()
    {
        T *obj = back();
        if (obj)
            erase(obj);
        return obj;
    }

    /**
     * Rotate: move the back element to the front (the CLOCK hand giving a
     * referenced page a second chance).
     */
    void
    rotateBackToFront()
    {
        T *obj = popBack();
        if (obj)
            pushFront(obj);
    }

    /** Minimal forward iterator (front to back). */
    class Iterator
    {
      public:
        explicit Iterator(ListHook *pos) : pos_(pos) {}
        T *operator*() const { return objOf(pos_); }
        Iterator &operator++() { pos_ = pos_->next; return *this; }
        bool operator!=(const Iterator &o) const { return pos_ != o.pos_; }

      private:
        ListHook *pos_;
    };

    Iterator begin() { return Iterator(head_.next); }
    Iterator end() { return Iterator(&head_); }

  private:
    static ListHook *hookOf(T *obj) { return &(obj->*HookPtr); }

    static T *
    objOf(ListHook *h)
    {
        // Recover the containing object from its embedded hook, as the
        // kernel's container_of does.
        static const std::ptrdiff_t offset = []{
            alignas(T) unsigned char storage[sizeof(T)];
            T *fake = reinterpret_cast<T *>(storage);
            return reinterpret_cast<unsigned char *>(&(fake->*HookPtr)) -
                   reinterpret_cast<unsigned char *>(fake);
        }();
        return reinterpret_cast<T *>(
            reinterpret_cast<unsigned char *>(h) - offset);
    }

    static void
    insertAfter(ListHook *pos, ListHook *h)
    {
#ifdef MCLOCK_DEBUG_VM
        // __list_add_valid: inserting next to a corrupted position
        // would graft the new entry into a broken chain.
        MCLOCK_ASSERT(pos->next->prev == pos,
                      "corrupted list: insertion position is stale");
        MCLOCK_ASSERT(h != pos && h != pos->next,
                      "list_add of an entry already at the position");
#endif
        h->prev = pos;
        h->next = pos->next;
        pos->next->prev = h;
        pos->next = h;
    }

    ListHook head_;
    std::size_t size_ = 0;
};

}  // namespace mclock

#endif  // MCLOCK_BASE_INTRUSIVE_LIST_HH_
