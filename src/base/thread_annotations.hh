/**
 * @file
 * Clang Thread Safety Analysis annotation macros.
 *
 * The concurrency surface of this tree (harness thread pool, shard
 * worker threads, memcg charge maps, stats ring buffers) is guarded by
 * two disciplines: real mutexes (the harness pool) and single-owner
 * thread confinement handed off at epoch/join barriers (everything
 * else). Both are *statically checkable* with Clang's
 * -Wthread-safety: mutex-protected members carry MCLOCK_GUARDED_BY and
 * their locking functions MCLOCK_ACQUIRE/RELEASE/REQUIRES; confined
 * members are guarded by a zero-cost ThreadRole capability
 * (base/sync.hh) that owner-side code asserts and non-owner code —
 * e.g. shard worker paths — cannot, so touching coordinator-only merge
 * state from a worker function fails the build.
 *
 * Every macro expands to nothing on non-Clang compilers (and the
 * analysis itself only runs under -Wthread-safety; see the
 * MCLOCK_THREAD_SAFETY CMake option, which adds
 * -Wthread-safety -Werror=thread-safety). Annotations therefore cost
 * nothing at runtime on any compiler.
 *
 * Naming follows the modern capability-based attribute spelling
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
 */

#ifndef MCLOCK_BASE_THREAD_ANNOTATIONS_HH_
#define MCLOCK_BASE_THREAD_ANNOTATIONS_HH_

#if defined(__clang__)
#define MCLOCK_TS_ATTR_(x) __attribute__((x))
#else
#define MCLOCK_TS_ATTR_(x)  // no-op outside Clang
#endif

/** Marks a class as a capability (a mutex, or a ThreadRole). */
#define MCLOCK_CAPABILITY(x) MCLOCK_TS_ATTR_(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in its dtor. */
#define MCLOCK_SCOPED_CAPABILITY MCLOCK_TS_ATTR_(scoped_lockable)

/** Member is protected by the given capability. */
#define MCLOCK_GUARDED_BY(x) MCLOCK_TS_ATTR_(guarded_by(x))

/** Pointee (not the pointer) is protected by the given capability. */
#define MCLOCK_PT_GUARDED_BY(x) MCLOCK_TS_ATTR_(pt_guarded_by(x))

/** Function requires the capabilities held on entry (and exit). */
#define MCLOCK_REQUIRES(...) \
    MCLOCK_TS_ATTR_(requires_capability(__VA_ARGS__))

/** Function acquires the capability and holds it on return. */
#define MCLOCK_ACQUIRE(...) \
    MCLOCK_TS_ATTR_(acquire_capability(__VA_ARGS__))

/** Function releases the capability (held on entry). */
#define MCLOCK_RELEASE(...) \
    MCLOCK_TS_ATTR_(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns the given value. */
#define MCLOCK_TRY_ACQUIRE(...) \
    MCLOCK_TS_ATTR_(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (non-reentrant acquire). */
#define MCLOCK_EXCLUDES(...) MCLOCK_TS_ATTR_(locks_excluded(__VA_ARGS__))

/**
 * Function asserts the capability is held by construction (e.g. the
 * single owner thread between hand-off barriers) without acquiring
 * anything. Zero runtime cost; downstream guarded accesses in the
 * calling scope become legal.
 */
#define MCLOCK_ASSERT_CAPABILITY(x) MCLOCK_TS_ATTR_(assert_capability(x))

/** Function returns a reference to the given capability. */
#define MCLOCK_RETURN_CAPABILITY(x) MCLOCK_TS_ATTR_(lock_returned(x))

/** Escape hatch: disable the analysis for one function. */
#define MCLOCK_NO_THREAD_SAFETY_ANALYSIS \
    MCLOCK_TS_ATTR_(no_thread_safety_analysis)

#endif  // MCLOCK_BASE_THREAD_ANNOTATIONS_HH_
