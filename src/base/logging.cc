#include "base/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace mclock {

int logVerbosity = 0;

namespace detail {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<std::size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args2);
    va_end(args2);
    return std::string(buf.data(), static_cast<std::size_t>(len));
}

void
assertFail(const char *file, int line, const char *expr,
           const std::string &operands)
{
    panicImpl(file, line,
              format("assertion failed: %s [values: %s]", expr,
                     operands.c_str()));
}

void
assertFail(const char *file, int line, const char *expr,
           const std::string &operands, const std::string &msg)
{
    panicImpl(file, line,
              format("assertion failed: %s [values: %s] — %s", expr,
                     operands.c_str(), msg.c_str()));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

}  // namespace detail
}  // namespace mclock
