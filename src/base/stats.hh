/**
 * @file
 * Lightweight statistics: counters, scalar summaries, histograms, and a
 * registry for dumping everything at the end of a run.
 */

#ifndef MCLOCK_BASE_STATS_HH_
#define MCLOCK_BASE_STATS_HH_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mclock {

/** Running scalar summary: count / sum / min / max / mean / variance. */
class Summary
{
  public:
    void add(double v);
    void merge(const Summary &other);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    /** Population variance (Welford). */
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Fixed-bucket histogram over [lo, hi) with linear buckets plus underflow
 * and overflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    double bucketLow(std::size_t i) const;
    /** Approximate quantile q in [0,1] by linear interpolation. */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * A named bag of counters. Subsystems register counters by name; dump()
 * prints them sorted, which the benches use for machine-readable output.
 */
class StatRegistry
{
  public:
    /** Add delta to the named counter (creating it at zero). */
    void inc(const std::string &name, std::uint64_t delta = 1);
    void set(const std::string &name, std::uint64_t value);
    std::uint64_t get(const std::string &name) const;
    void reset();

    /** Print "name value" lines, sorted by name. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

}  // namespace mclock

#endif  // MCLOCK_BASE_STATS_HH_
