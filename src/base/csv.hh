/**
 * @file
 * Minimal CSV writer used by benches to emit figure data series.
 */

#ifndef MCLOCK_BASE_CSV_HH_
#define MCLOCK_BASE_CSV_HH_

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace mclock {

/** Writes rows to a CSV file; quoting is applied when needed. */
class CsvWriter
{
  public:
    /** Open path for writing; fatal on failure. */
    explicit CsvWriter(const std::string &path);

    /** Construct an in-memory writer (for tests); use str() to read back. */
    CsvWriter();

    void writeHeader(const std::vector<std::string> &cols);
    void writeRow(const std::vector<std::string> &cols);

    /** Convenience: write a row of doubles with fixed precision. */
    void writeRow(const std::vector<double> &cols, int precision = 6);

    /** In-memory contents (only valid for the default-constructed form). */
    std::string str() const;

  private:
    std::ostream &out();
    static std::string escape(const std::string &field);

    std::ofstream file_;
    std::ostringstream mem_;
    bool toFile_;
};

}  // namespace mclock

#endif  // MCLOCK_BASE_CSV_HH_
