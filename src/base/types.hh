/**
 * @file
 * Fundamental types shared across the multiclock simulator.
 */

#ifndef MCLOCK_BASE_TYPES_HH_
#define MCLOCK_BASE_TYPES_HH_

#include <cstddef>
#include <cstdint>

namespace mclock {

/** Simulated time in nanoseconds since simulation start. */
using SimTime = std::uint64_t;

/** A virtual address inside a simulated address space. */
using Vaddr = std::uint64_t;

/** A simulated physical address (node base + frame offset). */
using Paddr = std::uint64_t;

/** Virtual page number: Vaddr >> kPageShift. */
using PageNum = std::uint64_t;

/** NUMA node identifier; kInvalidNode means "no node". */
using NodeId = int;
constexpr NodeId kInvalidNode = -1;

/** Base-2 logarithm of the simulated page size. */
constexpr unsigned kPageShift = 12;

/** Simulated page size in bytes (4 KiB, matching the paper's base pages). */
constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;

/**
 * Memory tier rank: an index into the machine's rank-ordered tier table
 * (MemoryConfig::tiers). Rank 0 is the fastest tier; higher ranks are
 * progressively slower (and typically larger). kInvalidTier means "no
 * tier".
 */
using TierRank = int;
constexpr TierRank kInvalidTier = -1;

/**
 * Two-tier compatibility aliases. The original model hard-coded a
 * DRAM/PM pair; existing configs spell tiers as TierKind::Dram /
 * TierKind::Pmem, which map onto ranks 0 and 1 of the default tier
 * table. New code should use plain ranks.
 */
struct TierKind
{
    static constexpr TierRank Dram = 0;
    static constexpr TierRank Pmem = 1;
};

/**
 * Memory control group identifier. Id 0 is the root group: pages
 * charged to it are unaccounted and unconstrained, so a host with no
 * tenants behaves exactly as if the memcg layer did not exist.
 */
using MemCgroupId = std::uint16_t;
constexpr MemCgroupId kRootMemcg = 0;

inline constexpr PageNum
pageNumOf(Vaddr va)
{
    return va >> kPageShift;
}

inline constexpr Vaddr
pageBaseOf(Vaddr va)
{
    return va & ~static_cast<Vaddr>(kPageSize - 1);
}

}  // namespace mclock

#endif  // MCLOCK_BASE_TYPES_HH_
