/**
 * @file
 * Fundamental types shared across the multiclock simulator.
 */

#ifndef MCLOCK_BASE_TYPES_HH_
#define MCLOCK_BASE_TYPES_HH_

#include <cstddef>
#include <cstdint>

namespace mclock {

/** Simulated time in nanoseconds since simulation start. */
using SimTime = std::uint64_t;

/** A virtual address inside a simulated address space. */
using Vaddr = std::uint64_t;

/** A simulated physical address (node base + frame offset). */
using Paddr = std::uint64_t;

/** Virtual page number: Vaddr >> kPageShift. */
using PageNum = std::uint64_t;

/** NUMA node identifier; kInvalidNode means "no node". */
using NodeId = int;
constexpr NodeId kInvalidNode = -1;

/** Base-2 logarithm of the simulated page size. */
constexpr unsigned kPageShift = 12;

/** Simulated page size in bytes (4 KiB, matching the paper's base pages). */
constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;

/** Memory tier kinds, ordered from higher- to lower-performing. */
enum class TierKind : std::uint8_t {
    Dram = 0,  ///< High performance, low capacity.
    Pmem = 1,  ///< Lower performance, high capacity (Optane-like).
};

/** Number of distinct tier kinds. */
constexpr int kNumTierKinds = 2;

/** Human-readable tier name. */
inline const char *
tierName(TierKind kind)
{
    return kind == TierKind::Dram ? "DRAM" : "PMEM";
}

inline constexpr PageNum
pageNumOf(Vaddr va)
{
    return va >> kPageShift;
}

inline constexpr Vaddr
pageBaseOf(Vaddr va)
{
    return va & ~static_cast<Vaddr>(kPageSize - 1);
}

}  // namespace mclock

#endif  // MCLOCK_BASE_TYPES_HH_
