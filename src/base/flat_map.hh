/**
 * @file
 * Open-addressing hash map with 64-bit keys for host-side hot paths.
 *
 * std::unordered_map spends most of a lookup chasing the bucket's chain
 * pointer into a node allocated who-knows-where; profiles of the YCSB
 * workloads showed that one find() per operation accounting for ~15% of
 * total runtime. This map stores key/value pairs inline in a flat
 * power-of-two table with linear probing, so the common lookup is one
 * hash, one probe, done.
 *
 * Scope is deliberately narrow — exactly what the workload index needs:
 * insert-or-find, erase, size. No iteration (so unordered_map's
 * iteration-order differences cannot leak into simulated behaviour
 * when a caller switches over), no rehash stability, keys are plain
 * uint64.
 *
 * Deletion uses tombstones; the table rehashes (in place, same or
 * doubled capacity) when live + tombstone slots exceed 7/8 of capacity,
 * so probe chains stay short under churn.
 */

#ifndef MCLOCK_BASE_FLAT_MAP_HH_
#define MCLOCK_BASE_FLAT_MAP_HH_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/logging.hh"

namespace mclock {

/** Flat open-addressing uint64 -> V map (see file comment for scope). */
template <typename V>
class FlatMap64
{
  public:
    explicit FlatMap64(std::size_t initialCapacity = 64)
    {
        std::size_t cap = 16;
        while (cap < initialCapacity)
            cap *= 2;
        slots_.resize(cap);
        state_.assign(cap, kEmpty);
    }

    /** @return the value for @p key, or nullptr if absent. */
    V *
    find(std::uint64_t key)
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hash(key) & mask;
        while (true) {
            const std::uint8_t st = state_[i];
            if (st == kFull && slots_[i].key == key)
                return &slots_[i].value;
            if (st == kEmpty)
                return nullptr;
            i = (i + 1) & mask;
        }
    }

    const V *
    find(std::uint64_t key) const
    {
        return const_cast<FlatMap64 *>(this)->find(key);
    }

    /**
     * Insert @p value under @p key if absent.
     * @return {value slot, true if inserted, false if already present}
     */
    std::pair<V *, bool>
    emplace(std::uint64_t key, V value)
    {
        if ((live_ + tombstones_ + 1) * 8 > slots_.size() * 7)
            rehash(live_ * 8 > slots_.size() * 3 ? slots_.size() * 2
                                                 : slots_.size());
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hash(key) & mask;
        std::size_t insertAt = kNone;
        while (true) {
            const std::uint8_t st = state_[i];
            if (st == kFull && slots_[i].key == key)
                return {&slots_[i].value, false};
            if (st == kTombstone && insertAt == kNone)
                insertAt = i;
            if (st == kEmpty) {
                if (insertAt == kNone)
                    insertAt = i;
                break;
            }
            i = (i + 1) & mask;
        }
        if (state_[insertAt] == kTombstone)
            --tombstones_;
        state_[insertAt] = kFull;
        slots_[insertAt].key = key;
        slots_[insertAt].value = std::move(value);
        ++live_;
        return {&slots_[insertAt].value, true};
    }

    /** @return true if @p key was present and is now removed. */
    bool
    erase(std::uint64_t key)
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hash(key) & mask;
        while (true) {
            const std::uint8_t st = state_[i];
            if (st == kFull && slots_[i].key == key) {
                state_[i] = kTombstone;
                slots_[i].value = V();
                --live_;
                ++tombstones_;
                return true;
            }
            if (st == kEmpty)
                return false;
            i = (i + 1) & mask;
        }
    }

    std::size_t size() const { return live_; }
    bool empty() const { return live_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

  private:
    static constexpr std::uint8_t kEmpty = 0;
    static constexpr std::uint8_t kFull = 1;
    static constexpr std::uint8_t kTombstone = 2;
    static constexpr std::size_t kNone = ~std::size_t{0};

    struct Slot
    {
        std::uint64_t key = 0;
        V value{};
    };

    /** splitmix64 finalizer: full-avalanche mix of the raw key. */
    static std::size_t
    hash(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return static_cast<std::size_t>(x ^ (x >> 31));
    }

    void
    rehash(std::size_t newCap)
    {
        MCLOCK_ASSERT((newCap & (newCap - 1)) == 0 && newCap >= live_);
        std::vector<Slot> oldSlots(newCap);
        std::vector<std::uint8_t> oldState(newCap, kEmpty);
        oldSlots.swap(slots_);
        oldState.swap(state_);
        const std::size_t mask = slots_.size() - 1;
        for (std::size_t s = 0; s < oldSlots.size(); ++s) {
            if (oldState[s] != kFull)
                continue;
            std::size_t i = hash(oldSlots[s].key) & mask;
            while (state_[i] == kFull)
                i = (i + 1) & mask;
            state_[i] = kFull;
            slots_[i] = std::move(oldSlots[s]);
        }
        tombstones_ = 0;
    }

    std::vector<Slot> slots_;
    std::vector<std::uint8_t> state_;
    std::size_t live_ = 0;
    std::size_t tombstones_ = 0;
};

}  // namespace mclock

#endif  // MCLOCK_BASE_FLAT_MAP_HH_
