/**
 * @file
 * Annotated synchronization primitives.
 *
 * libstdc++'s std::mutex / std::lock_guard carry no thread-safety
 * attributes, so Clang's analysis cannot see through them. These thin
 * wrappers re-export the standard primitives with the capability
 * annotations attached (the Abseil/V8 idiom), at zero runtime cost:
 *
 *  - Mutex / MutexLock / CondVar: a real std::mutex with
 *    MCLOCK_ACQUIRE/RELEASE annotations and an RAII scoped lock the
 *    analysis understands. CondVar::wait requires the mutex held and
 *    keeps it held across the wait (internally it adopts the native
 *    handle, so there is no double-lock and no extra state).
 *
 *  - ThreadRole: a *zero-cost* capability modelling single-owner
 *    thread confinement — state owned by exactly one thread at a time,
 *    with ownership handed off only at join/epoch barriers (shard
 *    worker state, the sharded coordinator's merge state, per-host
 *    stats sinks). It has no lock() — nothing to contend on — only
 *    assertHeld(), which owner-side code calls (an empty inline
 *    function) to declare "I am the owning thread here". Members
 *    marked MCLOCK_GUARDED_BY(role) are then writable from functions
 *    that assert the role and a compile error under -Wthread-safety
 *    from functions that do not, which is exactly the property the
 *    deterministic replay contract needs: worker-side code paths
 *    cannot silently grow an access to coordinator-only state.
 */

#ifndef MCLOCK_BASE_SYNC_HH_
#define MCLOCK_BASE_SYNC_HH_

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.hh"

namespace mclock {
namespace base {

/** std::mutex with capability annotations the analysis can track. */
class MCLOCK_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() MCLOCK_ACQUIRE() { mu_.lock(); }
    void unlock() MCLOCK_RELEASE() { mu_.unlock(); }
    bool tryLock() MCLOCK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /** Native handle for CondVar (callers should never need this). */
    std::mutex &native() { return mu_; }

  private:
    std::mutex mu_;
};

/** RAII scoped lock over Mutex (std::lock_guard, annotated). */
class MCLOCK_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) MCLOCK_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~MutexLock() MCLOCK_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable paired with Mutex. wait() must be called with the
 * mutex held (enforced statically) and returns with it held; spurious
 * wakeups are possible as usual, so always wait in a predicate loop:
 *
 *     MutexLock lock(mu_);
 *     while (!condition)
 *         cv_.wait(mu_);
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void
    wait(Mutex &mu) MCLOCK_REQUIRES(mu)
    {
        // Adopt the already-held native mutex for the duration of the
        // wait, then release the unique_lock without unlocking: from
        // the caller's (and the analysis') point of view the capability
        // is held across the whole call.
        std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

/**
 * Zero-cost capability for single-owner thread confinement (see file
 * comment). The owning code asserts it; there is nothing to lock.
 */
class MCLOCK_CAPABILITY("role") ThreadRole
{
  public:
    ThreadRole() = default;

    /**
     * Declare that the calling thread is the role's owner here. Pure
     * annotation — compiles to nothing — but unlocks guarded members
     * for the remainder of the calling scope under -Wthread-safety.
     */
    void assertHeld() const MCLOCK_ASSERT_CAPABILITY(this) {}
};

}  // namespace base
}  // namespace mclock

#endif  // MCLOCK_BASE_SYNC_HH_
