#include "base/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mclock {

namespace {

const Json kNull;

/** Strict recursive-descent parser over a char range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : p_(text.c_str()), end_(text.c_str() + text.size()), err_(err)
    {
    }

    Json
    parseDocument()
    {
        Json v = parseValue();
        skipWs();
        if (!failed_ && p_ != end_)
            fail("trailing characters after document");
        return failed_ ? Json() : v;
    }

  private:
    void
    fail(const char *msg)
    {
        if (!failed_ && err_)
            *err_ = msg;
        failed_ = true;
    }

    void
    skipWs()
    {
        while (p_ != end_ &&
               (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
            ++p_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (p_ != end_ && *p_ == c) {
            ++p_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const char *q = p_;
        for (const char *w = word; *w; ++w, ++q) {
            if (q == end_ || *q != *w)
                return false;
        }
        p_ = q;
        return true;
    }

    Json
    parseValue()
    {
        skipWs();
        if (p_ == end_) {
            fail("unexpected end of input");
            return Json();
        }
        switch (*p_) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return Json(parseString());
          case 't':
            if (literal("true"))
                return Json(true);
            break;
          case 'f':
            if (literal("false"))
                return Json(false);
            break;
          case 'n':
            if (literal("null"))
                return Json();
            break;
          default:
            return parseNumber();
        }
        fail("invalid value");
        return Json();
    }

    Json
    parseObject()
    {
        ++p_;  // '{'
        Json::Object obj;
        skipWs();
        if (consume('}'))
            return Json(std::move(obj));
        while (!failed_) {
            skipWs();
            if (p_ == end_ || *p_ != '"') {
                fail("expected object key");
                break;
            }
            std::string key = parseString();
            if (!consume(':')) {
                fail("expected ':' after object key");
                break;
            }
            obj[key] = parseValue();
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            fail("expected ',' or '}' in object");
        }
        return Json(std::move(obj));
    }

    Json
    parseArray()
    {
        ++p_;  // '['
        Json::Array arr;
        skipWs();
        if (consume(']'))
            return Json(std::move(arr));
        while (!failed_) {
            arr.push_back(parseValue());
            if (consume(','))
                continue;
            if (consume(']'))
                break;
            fail("expected ',' or ']' in array");
        }
        return Json(std::move(arr));
    }

    std::string
    parseString()
    {
        ++p_;  // '"'
        std::string out;
        while (p_ != end_ && *p_ != '"') {
            char c = *p_++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p_ == end_)
                break;
            char esc = *p_++;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                // Basic-multilingual-plane escapes only; enough for the
                // ASCII content the harness writes.
                unsigned code = 0;
                for (int i = 0; i < 4 && p_ != end_; ++i) {
                    char h = *p_++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
        if (p_ == end_)
            fail("unterminated string");
        else
            ++p_;  // closing '"'
        return out;
    }

    Json
    parseNumber()
    {
        char *numEnd = nullptr;
        const double v = std::strtod(p_, &numEnd);
        if (numEnd == p_) {
            fail("invalid number");
            return Json();
        }
        p_ = numEnd;
        return Json(v);
    }

    const char *p_;
    const char *end_;
    std::string *err_;
    bool failed_ = false;
};

}  // namespace

const Json &
Json::operator[](const std::string &key) const
{
    if (type_ == Type::Object) {
        auto it = obj_.find(key);
        if (it != obj_.end())
            return it->second;
    }
    return kNull;
}

void
Json::set(const std::string &key, Json value)
{
    if (type_ != Type::Object) {
        *this = Json(Object{});
    }
    obj_[key] = std::move(value);
}

void
Json::push(Json value)
{
    if (type_ != Type::Array) {
        *this = Json(Array{});
    }
    arr_.push_back(std::move(value));
}

void
Json::dumpString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent) *
                              static_cast<std::size_t>(depth + 1),
                          ' ');
    const std::string closePad(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth),
                               ' ');
    const char *nl = indent > 0 ? "\n" : "";
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number: {
        char buf[32];
        if (std::isfinite(num_) &&
            num_ == static_cast<double>(static_cast<long long>(num_)) &&
            std::fabs(num_) < 1e15) {
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(num_));
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", num_);
        }
        out += buf;
        break;
      }
      case Type::String:
        dumpString(out, str_);
        break;
      case Type::Array: {
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            out += pad;
            arr_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < arr_.size())
                out += ',';
            out += nl;
        }
        out += closePad;
        out += ']';
        break;
      }
      case Type::Object: {
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        std::size_t i = 0;
        for (const auto &[key, value] : obj_) {
            out += pad;
            dumpString(out, key);
            out += indent > 0 ? ": " : ":";
            value.dumpTo(out, indent, depth + 1);
            if (++i < obj_.size())
                out += ',';
            out += nl;
        }
        out += closePad;
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

Json
Json::parse(const std::string &text, std::string *err)
{
    Parser parser(text, err);
    return parser.parseDocument();
}

}  // namespace mclock
