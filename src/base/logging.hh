/**
 * @file
 * Logging and error-reporting helpers, modelled after gem5's
 * panic()/fatal()/warn()/inform() distinction:
 *  - panic: an internal invariant was violated (a simulator bug); aborts.
 *  - fatal: the user asked for something impossible (bad config); exits.
 *  - warn/inform: status messages; never stop the simulation.
 *
 * MCLOCK_ASSERT is active in every build type (including the default
 * RelWithDebInfo — it is never gated on NDEBUG): the simulator's
 * invariants are cheap relative to simulation work, and a silent
 * corruption would quietly skew every figure. On failure the assertion
 * reports file:line, the failing expression, and — via a doctest-style
 * expression decomposer — the values of the expression's operands, so
 * `MCLOCK_ASSERT(used == resident)` dies with "values: 5 == 4" rather
 * than just the spelling. The operand expression is re-evaluated on the
 * failure path only; assertion conditions must stay side-effect-free.
 */

#ifndef MCLOCK_BASE_LOGGING_HH_
#define MCLOCK_BASE_LOGGING_HH_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <type_traits>

namespace mclock {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

[[noreturn]] void assertFail(const char *file, int line, const char *expr,
                             const std::string &operands);
[[noreturn]] void assertFail(const char *file, int line, const char *expr,
                             const std::string &operands,
                             const std::string &msg);

// --- Assertion-operand stringification ----------------------------------

template <typename T>
concept Streamable = requires(std::ostream &os, const T &v) { os << v; };

/** Render one assertion operand; falls back to "<?>" for opaque types. */
template <typename T>
std::string
repr(const T &v)
{
    using D = std::decay_t<T>;
    if constexpr (std::is_same_v<D, bool>) {
        return v ? "true" : "false";
    } else if constexpr (std::is_same_v<D, std::nullptr_t>) {
        return "nullptr";
    } else if constexpr (std::is_same_v<D, const char *> ||
                         std::is_same_v<D, char *>) {
        return v ? "\"" + std::string(v) + "\"" : "nullptr";
    } else if constexpr (std::is_enum_v<D>) {
        return std::to_string(
            static_cast<std::underlying_type_t<D>>(v));
    } else if constexpr (std::is_pointer_v<D>) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%p",
                      static_cast<const void *>(v));
        return buf;
    } else if constexpr (std::is_same_v<D, std::string>) {
        return "\"" + v + "\"";
    } else if constexpr (Streamable<D>) {
        std::ostringstream os;
        os << v;
        return os.str();
    } else {
        return "<?>";
    }
}

template <typename L>
struct ExprLhs;

/** Rendered operand text of a decomposed assertion expression. */
struct ExprInfo
{
    std::string text;

    explicit ExprInfo(std::string t) : text(std::move(t)) {}
    template <typename L>
    ExprInfo(const ExprLhs<L> &l);  // single-value expression (no compare)

    // Logical chains to the right of a captured comparison keep
    // compiling; only the truth value of the tail is recorded.
    template <typename R>
    ExprInfo
    operator&&(const R &r) const
    {
        return ExprInfo(text + " && " +
                        (static_cast<bool>(r) ? "true" : "false"));
    }

    template <typename R>
    ExprInfo
    operator||(const R &r) const
    {
        return ExprInfo(text + " || " +
                        (static_cast<bool>(r) ? "true" : "false"));
    }
};

/**
 * Captures the left operand of the assertion expression;
 * `Decomposer() << a == b` parses as `(Decomposer() << a) == b`, so the
 * comparison below sees both sides and can render their values.
 */
template <typename L>
struct ExprLhs
{
    const L &lhs;

#define MCLOCK_DETAIL_CMP_OP(op)                                        \
    template <typename R>                                               \
    ExprInfo operator op(const R &r) const                              \
    {                                                                   \
        return ExprInfo(repr(lhs) + " " #op " " + repr(r));             \
    }
    MCLOCK_DETAIL_CMP_OP(==)
    MCLOCK_DETAIL_CMP_OP(!=)
    MCLOCK_DETAIL_CMP_OP(<)
    MCLOCK_DETAIL_CMP_OP(<=)
    MCLOCK_DETAIL_CMP_OP(>)
    MCLOCK_DETAIL_CMP_OP(>=)
#undef MCLOCK_DETAIL_CMP_OP

    template <typename R>
    ExprInfo
    operator&&(const R &r) const
    {
        return ExprInfo(repr(lhs) + " && " +
                        (static_cast<bool>(r) ? "true" : "false"));
    }

    template <typename R>
    ExprInfo
    operator||(const R &r) const
    {
        return ExprInfo(repr(lhs) + " || " +
                        (static_cast<bool>(r) ? "true" : "false"));
    }
};

template <typename L>
ExprInfo::ExprInfo(const ExprLhs<L> &l) : text(repr(l.lhs))
{
}

struct Decomposer
{
    template <typename T>
    ExprLhs<T>
    operator<<(const T &v) const
    {
        return ExprLhs<T>{v};
    }
};

}  // namespace detail

/** Global verbosity: 0 = quiet (warnings only), 1 = inform, 2 = debug. */
extern int logVerbosity;

#define MCLOCK_PANIC(...) \
    ::mclock::detail::panicImpl(__FILE__, __LINE__, \
                                ::mclock::detail::format(__VA_ARGS__))

#define MCLOCK_FATAL(...) \
    ::mclock::detail::fatalImpl(__FILE__, __LINE__, \
                                ::mclock::detail::format(__VA_ARGS__))

#define MCLOCK_WARN(...) \
    ::mclock::detail::warnImpl(::mclock::detail::format(__VA_ARGS__))

#define MCLOCK_INFORM(...) \
    do { \
        if (::mclock::logVerbosity >= 1) \
            ::mclock::detail::informImpl(::mclock::detail::format(__VA_ARGS__)); \
    } while (0)

/**
 * Assert an internal invariant; active in all build types (never gated
 * on NDEBUG). Reports file:line, the expression, and its operand values;
 * an optional printf-style message is appended. The condition is only
 * re-evaluated for operand capture after it has already failed.
 */
#define MCLOCK_ASSERT(cond, ...) \
    do { \
        if (!(cond)) [[unlikely]] { \
            ::mclock::detail::assertFail( \
                __FILE__, __LINE__, #cond, \
                ::mclock::detail::ExprInfo( \
                    ::mclock::detail::Decomposer() << cond) \
                    .text __VA_OPT__(, \
                          ::mclock::detail::format(__VA_ARGS__))); \
        } \
    } while (0)

}  // namespace mclock

#endif  // MCLOCK_BASE_LOGGING_HH_
