/**
 * @file
 * Logging and error-reporting helpers, modelled after gem5's
 * panic()/fatal()/warn()/inform() distinction:
 *  - panic: an internal invariant was violated (a simulator bug); aborts.
 *  - fatal: the user asked for something impossible (bad config); exits.
 *  - warn/inform: status messages; never stop the simulation.
 */

#ifndef MCLOCK_BASE_LOGGING_HH_
#define MCLOCK_BASE_LOGGING_HH_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mclock {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace detail

/** Global verbosity: 0 = quiet (warnings only), 1 = inform, 2 = debug. */
extern int logVerbosity;

#define MCLOCK_PANIC(...) \
    ::mclock::detail::panicImpl(__FILE__, __LINE__, \
                                ::mclock::detail::format(__VA_ARGS__))

#define MCLOCK_FATAL(...) \
    ::mclock::detail::fatalImpl(__FILE__, __LINE__, \
                                ::mclock::detail::format(__VA_ARGS__))

#define MCLOCK_WARN(...) \
    ::mclock::detail::warnImpl(::mclock::detail::format(__VA_ARGS__))

#define MCLOCK_INFORM(...) \
    do { \
        if (::mclock::logVerbosity >= 1) \
            ::mclock::detail::informImpl(::mclock::detail::format(__VA_ARGS__)); \
    } while (0)

/** Assert an internal invariant; active in all build types. */
#define MCLOCK_ASSERT(cond, ...) \
    do { \
        if (!(cond)) \
            MCLOCK_PANIC("assertion failed: %s", #cond); \
    } while (0)

}  // namespace mclock

#endif  // MCLOCK_BASE_LOGGING_HH_
