/**
 * @file
 * Minimal JSON value type used by the experiment harness for golden
 * fixtures and run manifests. Supports the subset the harness needs:
 * null/bool/number/string/array/object, deterministic (sorted-key)
 * serialization, and a strict recursive-descent parser.
 */

#ifndef MCLOCK_BASE_JSON_HH_
#define MCLOCK_BASE_JSON_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mclock {

/** A JSON document node. Numbers are stored as double. */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), num_(d) {}
    Json(int i) : type_(Type::Number), num_(i) {}
    Json(std::uint64_t u)
        : type_(Type::Number), num_(static_cast<double>(u)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
    Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}
    Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    const std::string &asString() const { return str_; }
    const Array &asArray() const { return arr_; }
    const Object &asObject() const { return obj_; }
    Array &array() { return arr_; }
    Object &object() { return obj_; }

    /** Object member access; returns a shared null for missing keys. */
    const Json &operator[](const std::string &key) const;

    bool contains(const std::string &key) const
    {
        return type_ == Type::Object && obj_.count(key) > 0;
    }

    /** Set an object member (converts this node to an object). */
    void set(const std::string &key, Json value);

    /** Append to an array (converts this node to an array). */
    void push(Json value);

    /**
     * Serialize. Keys are emitted in sorted order and doubles with
     * enough digits to round-trip, so equal values produce equal text.
     * @param indent spaces per nesting level; 0 = compact one-line
     */
    std::string dump(int indent = 0) const;

    /**
     * Parse a document.
     * @param[out] err set to a message on failure (when non-null)
     * @return the parsed value, or a null value on failure
     */
    static Json parse(const std::string &text, std::string *err = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;
    static void dumpString(std::string &out, const std::string &s);

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

}  // namespace mclock

#endif  // MCLOCK_BASE_JSON_HH_
