#include "base/csv.hh"

#include <iomanip>

#include "base/logging.hh"

namespace mclock {

CsvWriter::CsvWriter(const std::string &path) : file_(path), toFile_(true)
{
    if (!file_)
        MCLOCK_FATAL("cannot open CSV output file '%s'", path.c_str());
}

CsvWriter::CsvWriter() : toFile_(false)
{
}

std::ostream &
CsvWriter::out()
{
    if (toFile_)
        return file_;
    return mem_;
}

std::string
CsvWriter::escape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string escaped = "\"";
    for (char c : field) {
        if (c == '"')
            escaped += '"';
        escaped += c;
    }
    escaped += '"';
    return escaped;
}

void
CsvWriter::writeHeader(const std::vector<std::string> &cols)
{
    writeRow(cols);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cols)
{
    auto &os = out();
    for (std::size_t i = 0; i < cols.size(); ++i) {
        if (i)
            os << ',';
        os << escape(cols[i]);
    }
    os << '\n';
}

void
CsvWriter::writeRow(const std::vector<double> &cols, int precision)
{
    auto &os = out();
    os << std::setprecision(precision) << std::fixed;
    for (std::size_t i = 0; i < cols.size(); ++i) {
        if (i)
            os << ',';
        os << cols[i];
    }
    os << '\n';
}

std::string
CsvWriter::str() const
{
    return mem_.str();
}

}  // namespace mclock
