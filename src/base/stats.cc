#include "base/stats.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mclock {

void
Summary::add(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

void
Summary::merge(const Summary &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const double n = static_cast<double>(count_);
    const double m = static_cast<double>(other.count_);
    mean_ += delta * m / (n + m);
    m2_ += other.m2_ + delta * delta * n * m / (n + m);
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Summary::reset()
{
    *this = Summary{};
}

double
Summary::variance() const
{
    return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    MCLOCK_ASSERT(hi > lo && buckets > 0);
}

void
Histogram::add(double v)
{
    ++count_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
    }
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_));
    std::uint64_t seen = underflow_;
    if (seen > target)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (seen + counts_[i] > target) {
            const double frac = counts_[i]
                ? static_cast<double>(target - seen) /
                  static_cast<double>(counts_[i])
                : 0.0;
            return bucketLow(i) + frac * width_;
        }
        seen += counts_[i];
    }
    return hi_;
}

void
StatRegistry::inc(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatRegistry::set(const std::string &name, std::uint64_t value)
{
    counters_[name] = value;
}

std::uint64_t
StatRegistry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatRegistry::reset()
{
    counters_.clear();
}

void
StatRegistry::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, value] : counters_)
        os << prefix << name << " " << value << "\n";
}

}  // namespace mclock
