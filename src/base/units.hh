/**
 * @file
 * Size and time unit helpers.
 */

#ifndef MCLOCK_BASE_UNITS_HH_
#define MCLOCK_BASE_UNITS_HH_

#include <cstddef>
#include <cstdint>

namespace mclock {

constexpr std::size_t operator""_KiB(unsigned long long v)
{
    return static_cast<std::size_t>(v) << 10;
}

constexpr std::size_t operator""_MiB(unsigned long long v)
{
    return static_cast<std::size_t>(v) << 20;
}

constexpr std::size_t operator""_GiB(unsigned long long v)
{
    return static_cast<std::size_t>(v) << 30;
}

/** Simulated-time literals (SimTime is in nanoseconds). */
constexpr std::uint64_t operator""_ns(unsigned long long v)
{
    return v;
}

constexpr std::uint64_t operator""_us(unsigned long long v)
{
    return v * 1000ull;
}

constexpr std::uint64_t operator""_ms(unsigned long long v)
{
    return v * 1000ull * 1000ull;
}

constexpr std::uint64_t operator""_s(unsigned long long v)
{
    return v * 1000ull * 1000ull * 1000ull;
}

}  // namespace mclock

#endif  // MCLOCK_BASE_UNITS_HH_
