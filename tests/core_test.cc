/**
 * @file
 * Unit tests for MULTI-CLOCK: every Fig. 4 transition, the kpromoted
 * daemon, and the pressure-driven demotion path.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/units.hh"
#include "core/kpromoted.hh"
#include "core/multiclock.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"

namespace mclock {
namespace core {
namespace {

class MultiClockTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::MachineConfig cfg = sim::tinyTestMachine();
        cfg.cache.enabled = false;  // every access is memory-visible
        sim_ = std::make_unique<sim::Simulator>(cfg);
        auto policy = std::make_unique<MultiClockPolicy>();
        policy_ = policy.get();
        sim_->setPolicy(std::move(policy));
    }

    /** Touch one fresh page and return it (resident in DRAM). */
    Page *
    touchNewPage()
    {
        const Vaddr a = sim_->mmap(kPageSize);
        sim_->read(a);
        return sim_->space().lookup(pageNumOf(a));
    }

    /** Force a page onto the PM node (isolate, demote, re-enqueue). */
    void
    moveToPmem(Page *pg)
    {
        auto &mem = sim_->memory();
        mem.node(pg->node()).lists().remove(pg);
        ASSERT_TRUE(sim_->demotePage(
            pg, sim::Simulator::ChargeMode::Background));
        pg->setActive(false);
        pg->setReferenced(false);
        // Drop the accessed bit left over from the faulting touch so
        // each test drives reference state explicitly.
        pg->setPteReferenced(false);
        mem.node(pg->node()).lists().add(
            pg, pfra::NodeLists::inactiveKind(pg->isAnon()));
    }

    /**
     * Walk a page onto its node's promote list along the legal Fig. 4
     * path (inactive -> active -> promote, PagePromote set before the
     * final move). The DEBUG_VM checker rejects shortcut entry into
     * the promote list, exactly as mark_page_accessed would never do
     * it in one step.
     */
    void
    moveToPromote(Page *pg)
    {
        auto &lists = sim_->memory().node(pg->node()).lists();
        lists.moveTo(pg, pfra::NodeLists::activeKind(pg->isAnon()));
        pg->setPromoteFlag(true);
        lists.moveTo(pg, pfra::NodeLists::promoteKind(pg->isAnon()));
    }

    sim::Node &dram() { return sim_->memory().node(0); }
    sim::Node &pmem() { return sim_->memory().node(1); }

    Kpromoted
    kpromotedFor(NodeId node)
    {
        return Kpromoted(*policy_, *sim_, node);
    }

    std::unique_ptr<sim::Simulator> sim_;
    MultiClockPolicy *policy_ = nullptr;
};

// --- Page birth (Fig. 4 entry) ---------------------------------------------

TEST_F(MultiClockTest, NewPageStartsInactiveUnreferenced)
{
    Page *pg = touchNewPage();
    EXPECT_EQ(pg->list(), LruListKind::InactiveAnon);
    EXPECT_FALSE(pg->referenced());
    EXPECT_FALSE(pg->active());
    // The faulting access set the PTE accessed bit (hardware).
    EXPECT_TRUE(pg->pteReferenced());
}

// --- Unsupervised transitions, driven by kpromoted scans ----------------------

TEST_F(MultiClockTest, Transition2InactiveUnrefToRef)
{
    Page *pg = touchNewPage();
    moveToPmem(pg);
    sim_->read(pg->vaddr());  // sets PTE bit
    auto kp = kpromotedFor(1);
    kp.scanInactive(pmem(), true, 64);
    EXPECT_TRUE(pg->referenced());
    EXPECT_EQ(pg->list(), LruListKind::InactiveAnon);
    EXPECT_FALSE(pg->pteReferenced());  // consumed by the rmap walk
}

TEST_F(MultiClockTest, Transition1DecayInactiveRefToUnref)
{
    Page *pg = touchNewPage();
    moveToPmem(pg);
    pg->setReferenced(true);
    auto kp = kpromotedFor(1);
    kp.scanInactive(pmem(), true, 64);  // no PTE bit set: decay
    EXPECT_FALSE(pg->referenced());
    EXPECT_EQ(pg->list(), LruListKind::InactiveAnon);
}

TEST_F(MultiClockTest, Transition6InactiveRefToActive)
{
    Page *pg = touchNewPage();
    moveToPmem(pg);
    pg->setReferenced(true);
    sim_->read(pg->vaddr());
    auto kp = kpromotedFor(1);
    kp.scanInactive(pmem(), true, 64);
    EXPECT_EQ(pg->list(), LruListKind::ActiveAnon);
    EXPECT_TRUE(pg->active());
    EXPECT_FALSE(pg->referenced());
}

TEST_F(MultiClockTest, Transition7ActiveUnrefToRef)
{
    Page *pg = touchNewPage();
    moveToPmem(pg);
    pmem().lists().moveTo(pg, pfra::NodeLists::activeKind(true));
    pg->setActive(true);
    sim_->read(pg->vaddr());
    auto kp = kpromotedFor(1);
    kp.scanActive(pmem(), true, 64);
    EXPECT_TRUE(pg->referenced());
    EXPECT_EQ(pg->list(), LruListKind::ActiveAnon);
}

TEST_F(MultiClockTest, Transition10ActiveRefToPromote)
{
    Page *pg = touchNewPage();
    moveToPmem(pg);
    pmem().lists().moveTo(pg, pfra::NodeLists::activeKind(true));
    pg->setActive(true);
    pg->setReferenced(true);
    sim_->read(pg->vaddr());  // referenced again
    auto kp = kpromotedFor(1);
    kp.scanActive(pmem(), true, 64);
    EXPECT_EQ(pg->list(), LruListKind::PromoteAnon);
    EXPECT_TRUE(pg->promoteFlag());
}

TEST_F(MultiClockTest, Transition11PromoteCoolsToActive)
{
    Page *pg = touchNewPage();
    moveToPmem(pg);
    moveToPromote(pg);
    // Not referenced since selection: recycled to active unreferenced.
    auto kp = kpromotedFor(1);
    const auto promoted = kp.shrinkPromoteList(pmem(), true, 64, false);
    EXPECT_EQ(promoted, 0u);
    EXPECT_EQ(pg->list(), LruListKind::ActiveAnon);
    EXPECT_FALSE(pg->promoteFlag());
    EXPECT_FALSE(pg->referenced());
}

TEST_F(MultiClockTest, Transition13PromoteMigratesToDram)
{
    Page *pg = touchNewPage();
    moveToPmem(pg);
    moveToPromote(pg);
    pg->setReferenced(true);  // still hot
    auto kp = kpromotedFor(1);
    const auto promoted = kp.shrinkPromoteList(pmem(), true, 64, false);
    EXPECT_EQ(promoted, 1u);
    EXPECT_EQ(sim_->pageTier(pg), TierKind::Dram);
    EXPECT_EQ(pg->list(), LruListKind::ActiveAnon);
    EXPECT_FALSE(pg->promoteFlag());
    EXPECT_EQ(sim_->metrics().totalPromotions(), 1u);
}

TEST_F(MultiClockTest, PromoteOnTopTierRecyclesToActive)
{
    Page *pg = touchNewPage();  // in DRAM
    moveToPromote(pg);
    pg->setReferenced(true);
    auto kp = kpromotedFor(0);
    const auto promoted = kp.shrinkPromoteList(dram(), true, 64, false);
    EXPECT_EQ(promoted, 0u);
    EXPECT_EQ(pg->list(), LruListKind::ActiveAnon);
}

TEST_F(MultiClockTest, LockedPromotePageFallsBackToActive)
{
    Page *pg = touchNewPage();
    moveToPmem(pg);
    moveToPromote(pg);
    pg->setReferenced(true);
    pg->setLocked(true);
    auto kp = kpromotedFor(1);
    const auto promoted = kp.shrinkPromoteList(pmem(), true, 64, false);
    EXPECT_EQ(promoted, 0u);
    EXPECT_EQ(sim_->pageTier(pg), TierKind::Pmem);
    EXPECT_EQ(pg->list(), LruListKind::ActiveAnon);
}

// --- Supervised transitions (extended mark_page_accessed) ---------------------

TEST_F(MultiClockTest, SupervisedFirstTouchSetsReferenced)
{
    Page *pg = touchNewPage();
    policy_->onSupervisedAccess(pg);
    EXPECT_TRUE(pg->referenced());
    EXPECT_EQ(pg->list(), LruListKind::InactiveAnon);
}

TEST_F(MultiClockTest, SupervisedSecondTouchActivates)
{
    Page *pg = touchNewPage();
    policy_->onSupervisedAccess(pg);
    policy_->onSupervisedAccess(pg);
    EXPECT_EQ(pg->list(), LruListKind::ActiveAnon);
    EXPECT_TRUE(pg->active());
    EXPECT_FALSE(pg->referenced());
}

TEST_F(MultiClockTest, SupervisedFourthTouchMovesToPromote)
{
    Page *pg = touchNewPage();
    for (int i = 0; i < 4; ++i)
        policy_->onSupervisedAccess(pg);
    EXPECT_EQ(pg->list(), LruListKind::PromoteAnon);
    EXPECT_TRUE(pg->promoteFlag());
}

TEST_F(MultiClockTest, Transition12PromoteStaysOnAccess)
{
    Page *pg = touchNewPage();
    for (int i = 0; i < 4; ++i)
        policy_->onSupervisedAccess(pg);
    ASSERT_EQ(pg->list(), LruListKind::PromoteAnon);
    policy_->onSupervisedAccess(pg);  // transition (12)
    EXPECT_EQ(pg->list(), LruListKind::PromoteAnon);
}

// --- End-to-end promotion via the daemon ---------------------------------------

TEST_F(MultiClockTest, HotPmemPageGetsPromotedByDaemon)
{
    Page *pg = touchNewPage();
    moveToPmem(pg);
    ASSERT_EQ(sim_->pageTier(pg), TierKind::Pmem);
    // Access the page around each kpromoted wake (1 s default): the
    // scans walk it up inactive -> active -> promote -> DRAM.
    for (int second = 0; second < 6; ++second) {
        for (int i = 0; i < 4; ++i) {
            sim_->read(pg->vaddr());
            sim_->compute(200_ms);
        }
        if (sim_->pageTier(pg) == TierKind::Dram)
            break;
    }
    EXPECT_EQ(sim_->pageTier(pg), TierKind::Dram);
    EXPECT_GE(sim_->stats().get("kpromoted_promoted"), 1u);
}

TEST_F(MultiClockTest, ColdPmemPageStaysInPmem)
{
    Page *pg = touchNewPage();
    moveToPmem(pg);
    sim_->compute(5_s);  // daemon runs, page never accessed
    EXPECT_EQ(sim_->pageTier(pg), TierKind::Pmem);
    EXPECT_EQ(sim_->metrics().totalPromotions(), 0u);
}

// --- Pressure / demotion (paper III-C) --------------------------------------------

TEST_F(MultiClockTest, PressureDemotesColdInactivePages)
{
    // Populate half of DRAM with cold pages (stays above the low
    // watermark, so the allocator does not reclaim on its own).
    const std::size_t frames = dram().totalFrames();
    const Vaddr a = sim_->mmap(frames / 2 * kPageSize);
    for (std::size_t i = 0; i < frames / 2; ++i)
        sim_->write(a + i * kPageSize);
    sim_->space().forEachPage([](Page *pg) {
        pg->setPteReferenced(false);
    });
    // Burn free frames directly to force the node below its watermark.
    Paddr p;
    while (!dram().belowLow())
        ASSERT_TRUE(dram().allocFrame(p));
    policy_->handlePressure(dram());
    EXPECT_TRUE(dram().aboveHigh());
    EXPECT_GT(sim_->metrics().totalDemotions(), 0u);
    EXPECT_EQ(sim_->stats().get("swap_outs"), 0u);  // PM had space
}

TEST_F(MultiClockTest, AllocatorWakesKswapdUnderPressure)
{
    // Touch more pages than DRAM holds: the allocator notices the node
    // dipping below the low watermark and invokes the pressure handler,
    // which demotes cold pages so allocations keep landing in DRAM.
    const std::size_t frames = dram().totalFrames();
    const Vaddr a = sim_->mmap(2 * frames * kPageSize);
    for (std::size_t i = 0; i < 2 * frames; ++i)
        sim_->write(a + i * kPageSize);
    EXPECT_GT(sim_->metrics().totalDemotions(), 0u);
    EXPECT_FALSE(dram().belowMin());
}

TEST_F(MultiClockTest, PressureStep1DrainsPromoteList)
{
    Page *pg = touchNewPage();
    moveToPmem(pg);
    moveToPromote(pg);
    policy_->handlePressure(pmem());
    // Promote-list pages migrate up under pressure even if unreferenced.
    EXPECT_EQ(sim_->pageTier(pg), TierKind::Dram);
}

TEST_F(MultiClockTest, LowestTierPressureEvictsToStorage)
{
    // Touch more cold pages than DRAM+PM hold: the lowest tier comes
    // under pressure and its handler must write back to block storage.
    const std::size_t total =
        pmem().totalFrames() + dram().totalFrames();
    const Vaddr a = sim_->mmap((total + 64) * kPageSize, true, "big");
    for (std::size_t i = 0; i < total + 64; ++i)
        sim_->write(a + i * kPageSize);
    EXPECT_GT(sim_->stats().get("swap_outs"), 0u);
}

// --- Config ------------------------------------------------------------------------

TEST_F(MultiClockTest, ScanIntervalAdjustable)
{
    policy_->setScanInterval(250_ms);
    EXPECT_EQ(policy_->config().scanInterval, 250_ms);
    int before = static_cast<int>(sim_->stats().get("kpromoted_runs"));
    sim_->compute(1_s);
    const int runs =
        static_cast<int>(sim_->stats().get("kpromoted_runs")) - before;
    EXPECT_EQ(runs, 4);
}

TEST_F(MultiClockTest, FeatureRowMatchesPaper)
{
    const auto row = policy_->features();
    EXPECT_EQ(row.tiering, "MULTI-CLOCK");
    EXPECT_EQ(row.tracking, "Reference Bit");
    EXPECT_EQ(row.promotion, "Recency+Frequency");
    EXPECT_EQ(row.demotion, "Recency");
}


// --- Calibration mechanisms ---------------------------------------------------

TEST_F(MultiClockTest, PromoteBudgetCapsMigrationsPerWake)
{
    // Queue more hot promote-list pages than the per-wake budget.
    MultiClockConfig cfg;
    cfg.promoteBudget = 4;
    sim::MachineConfig mcfg = sim::tinyTestMachine();
    mcfg.cache.enabled = false;
    sim::Simulator sim(mcfg);
    auto policyPtr = std::make_unique<MultiClockPolicy>(cfg);
    MultiClockPolicy *policy = policyPtr.get();
    sim.setPolicy(std::move(policyPtr));

    const Vaddr a = sim.mmap(16 * kPageSize);
    for (int i = 0; i < 16; ++i)
        sim.write(a + static_cast<Vaddr>(i) * kPageSize);
    auto &mem = sim.memory();
    auto &pmem = mem.node(1);
    sim.space().forEachPage([&](Page *pg) {
        mem.node(pg->node()).lists().remove(pg);
        ASSERT_TRUE(sim.demotePage(
            pg, sim::Simulator::ChargeMode::Background));
        pg->setReferenced(true);
        pg->setPteReferenced(false);
        // A demoted page re-enters on inactive; walk it up the legal
        // Fig. 4 path to the promote list.
        pmem.lists().add(pg, pfra::NodeLists::inactiveKind(true));
        pmem.lists().moveTo(pg, pfra::NodeLists::activeKind(true));
        pg->setPromoteFlag(true);
        pmem.lists().moveTo(pg, pfra::NodeLists::promoteKind(true));
    });
    ASSERT_EQ(pmem.lists().promoteSize(true), 16u);
    const auto before = sim.metrics().totalPromotions();
    Kpromoted kp(*policy, sim, 1);
    kp.run(sim.now());
    EXPECT_EQ(sim.metrics().totalPromotions() - before, 4u);
    // The remainder stays selected on the promote list.
    EXPECT_EQ(pmem.lists().promoteSize(true), 12u);
}

TEST_F(MultiClockTest, DemoteForPromoteBackpressureOnWarmDram)
{
    // Fill DRAM completely with *warm* pages (PTE bits set), then queue
    // a hot PM page for promotion: with nothing cold to demote, the
    // promotion must stall rather than churn warm pages out.
    const std::size_t frames = dram().totalFrames();
    const Vaddr a = sim_->mmap(2 * frames * kPageSize);
    for (std::size_t i = 0; i < 2 * frames; ++i)
        sim_->write(a + i * kPageSize);
    Paddr p;
    while (dram().allocFrame(p)) {
    }
    sim_->space().forEachPage([&](Page *pg) {
        pg->setPteReferenced(true);  // everything warm
    });
    Page *hot = nullptr;
    sim_->space().forEachPage([&](Page *pg) {
        if (!hot && sim_->pageTier(pg) == TierKind::Pmem)
            hot = pg;
    });
    ASSERT_NE(hot, nullptr);
    moveToPromote(hot);
    hot->setReferenced(true);

    const auto demotionsBefore = sim_->metrics().totalDemotions();
    auto kp = kpromotedFor(1);
    const auto promoted = kp.shrinkPromoteList(
        pmem(), true, pmem().lists().promoteSize(true),
        /*underPressure=*/false);
    EXPECT_EQ(promoted, 0u);
    // demoteFromTier scanned but found only warm pages; at most the
    // second-chance machinery moved state around, never wholesale
    // demotion of the warm set.
    EXPECT_LE(sim_->metrics().totalDemotions() - demotionsBefore, 2u);
    EXPECT_EQ(sim_->pageTier(hot), TierKind::Pmem);
    EXPECT_EQ(hot->list(), LruListKind::ActiveAnon);  // fell back
}

TEST_F(MultiClockTest, DemoteFromTierDemotesColdPages)
{
    const std::size_t frames = dram().totalFrames();
    const Vaddr a = sim_->mmap(frames / 2 * kPageSize);
    for (std::size_t i = 0; i < frames / 2; ++i)
        sim_->write(a + i * kPageSize);
    sim_->space().forEachPage([](Page *pg) {
        pg->setPteReferenced(false);
    });
    // Let the pages age past the idle floor (2 scan intervals).
    sim_->compute(3_s);
    const std::size_t demoted =
        policy_->demoteFromTier(TierKind::Dram, 10);
    EXPECT_EQ(demoted, 10u);
    EXPECT_EQ(sim_->metrics().totalDemotions(), 10u);
}

}  // namespace
}  // namespace core
}  // namespace mclock
