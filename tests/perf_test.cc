/**
 * @file
 * Equivalence suite for the hot-path overhaul: the batched/streamed
 * workload access path (KvStore/YCSB/synthetic MemOp batching, SoA
 * cache model, per-page LLC line masks) must be bit-identical to the
 * legacy one-call-per-access path. Every pair below compares complete
 * scenario outputs — summary metrics, rendered text, and artifacts
 * (which include the vmstat snapshots) — between the default batched
 * run and a run with the "legacy_access" context param set, at both
 * --jobs 1 and --jobs 4.
 *
 * The golden fixtures pin today's behaviour against yesterday's; these
 * tests pin the fast path against the reference path at head, so a
 * future optimisation that breaks equivalence fails even if the golden
 * fixtures are regenerated in the same change.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/golden.hh"
#include "harness/profiles.hh"
#include "harness/runner.hh"

using namespace mclock;
using namespace mclock::harness;

namespace {

/** Golden-profile context with a small op count: fast but nontrivial. */
RunContext
smallContext()
{
    RunContext ctx = goldenContext();
    ctx.params["ops"] = 20000;
    ctx.params["seconds"] = 6;
    ctx.params["trials"] = 1;
    return ctx;
}

RunContext
legacyContext()
{
    RunContext ctx = smallContext();
    ctx.params["legacy_access"] = 1;
    return ctx;
}

RunnerOptions
quietOptions(unsigned jobs, const RunContext &ctx)
{
    RunnerOptions opts;
    opts.jobs = jobs;
    opts.quiet = true;
    opts.writeArtifacts = false;
    opts.context = ctx;
    return opts;
}

void
expectIdentical(const ScenarioOutput &a, const ScenarioOutput &b)
{
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.summary, b.summary);
    ASSERT_EQ(a.artifacts.size(), b.artifacts.size());
    for (std::size_t i = 0; i < a.artifacts.size(); ++i) {
        EXPECT_EQ(a.artifacts[i].filename, b.artifacts[i].filename);
        EXPECT_EQ(a.artifacts[i].contents, b.artifacts[i].contents);
    }
    EXPECT_TRUE(a.violations.empty());
    EXPECT_TRUE(b.violations.empty());
}

class AccessPathEquivalence
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AccessPathEquivalence, BatchedMatchesLegacySerial)
{
    const std::string name = GetParam();
    const auto batched =
        runScenario(name, quietOptions(1, smallContext()));
    const auto legacy =
        runScenario(name, quietOptions(1, legacyContext()));
    expectIdentical(batched.output, legacy.output);
    EXPECT_FALSE(batched.output.summary.empty());
}

TEST_P(AccessPathEquivalence, BatchedMatchesLegacyParallel)
{
    const std::string name = GetParam();
    const auto batched =
        runScenario(name, quietOptions(4, smallContext()));
    const auto legacy =
        runScenario(name, quietOptions(4, legacyContext()));
    expectIdentical(batched.output, legacy.output);
}

// fig05: two-tier YCSB across all tiered policies (KvStore batching,
// MRU/SoA cache, line masks on migration). fig08: windowed promotion
// metrics (exercises the cached-window Metrics fast path). tier3:
// rank-ordered three-tier machine. faultinj: migration fault
// injection, whose abort/rollback paths interleave with invalidation.
// fig01: synthetic workload batching under tracing-free runs.
INSTANTIATE_TEST_SUITE_P(HotScenarios, AccessPathEquivalence,
                         ::testing::Values("fig05", "fig08",
                                           "tier3_ycsb_a",
                                           "faultinj_ycsb_a", "fig01"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

}  // namespace
