/**
 * @file
 * Tests for the deterministic migration FaultInjector and the
 * transactional migration engine built on it: decision determinism,
 * the fixed-draw monotonicity contract, persistent poisoning, clean
 * rollback of aborted transactions, retry-with-backoff, promotion
 * throttling (graceful degradation), and cross-job determinism of the
 * faultinj_* scenarios.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "base/units.hh"
#include "harness/golden.hh"
#include "harness/runner.hh"
#include "pfra/lru_lists.hh"
#include "policies/static_tiering.hh"
#include "sim/fault_injector.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "stats/tracepoint.hh"
#include "stats/vmstat.hh"
#include "vm/page.hh"

using namespace mclock;
using sim::FaultConfig;
using sim::FaultDecision;
using sim::FaultInjector;
using sim::FaultPhase;
using stats::VmItem;

namespace {

// --- FaultInjector decisions ----------------------------------------------

TEST(FaultInjectorTest, DisabledConsumesNothingAndNeverInjects)
{
    FaultConfig cfg;  // enabled = false
    cfg.copyFailProb = 1.0;
    FaultInjector inj(cfg, 42);
    for (PageNum vpn = 0; vpn < 10; ++vpn)
        EXPECT_FALSE(inj.nextTransaction(vpn, 0).injected());
    EXPECT_EQ(inj.transactions(), 0u);
    EXPECT_EQ(inj.injected(), 0u);
}

TEST(FaultInjectorTest, SameSeedsSameDecisions)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.copyFailProb = 0.2;
    cfg.shootdownFailProb = 0.1;
    cfg.remapFailProb = 0.1;
    cfg.persistentProb = 0.3;
    FaultInjector a(cfg, 42);
    FaultInjector b(cfg, 42);
    std::vector<FaultDecision> decisions;
    for (PageNum vpn = 0; vpn < 300; ++vpn) {
        const FaultDecision da = a.nextTransaction(vpn, 1);
        const FaultDecision db = b.nextTransaction(vpn, 1);
        EXPECT_EQ(da.failPhase, db.failPhase) << vpn;
        EXPECT_EQ(da.persistent, db.persistent) << vpn;
        decisions.push_back(da);
    }
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_GT(a.injected(), 0u);
    EXPECT_LT(a.injected(), a.transactions());

    // A different machine seed produces an independent stream.
    FaultInjector c(cfg, 43);
    std::uint64_t diverged = 0;
    for (PageNum vpn = 0; vpn < 300; ++vpn) {
        const FaultDecision dc = c.nextTransaction(vpn, 1);
        if (dc.failPhase != decisions[vpn].failPhase)
            ++diverged;
    }
    EXPECT_GT(diverged, 0u);
}

TEST(FaultInjectorTest, ZeroRatesNeverInject)
{
    FaultConfig cfg;
    cfg.enabled = true;  // enabled but all probabilities zero
    FaultInjector inj(cfg, 42);
    for (PageNum vpn = 0; vpn < 100; ++vpn)
        EXPECT_FALSE(inj.nextTransaction(vpn, 1).injected());
    EXPECT_EQ(inj.transactions(), 100u);
    EXPECT_EQ(inj.injected(), 0u);
}

TEST(FaultInjectorTest, TierMultiplierScalesPerDestinationTier)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.copyFailProb = 0.5;
    cfg.tierErrorMultiplier = {0.0, 2.0};  // tier 0 immune, tier 1 certain
    FaultInjector inj(cfg, 42);
    for (PageNum vpn = 0; vpn < 50; ++vpn)
        EXPECT_FALSE(inj.nextTransaction(vpn, 0).injected()) << vpn;
    for (PageNum vpn = 100; vpn < 150; ++vpn) {
        const FaultDecision d = inj.nextTransaction(vpn, 1);
        EXPECT_EQ(d.failPhase, FaultPhase::Copy) << vpn;
    }
    // Ranks beyond the vector default to 1.0 (no crash, normal rate).
    (void)inj.nextTransaction(999, 7);
}

TEST(FaultInjectorTest, PersistentFailurePoisonsThePage)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.copyFailProb = 1.0;
    cfg.persistentProb = 1.0;
    FaultInjector inj(cfg, 42);
    EXPECT_FALSE(inj.poisoned(7));
    const FaultDecision first = inj.nextTransaction(7, 0);
    EXPECT_EQ(first.failPhase, FaultPhase::Copy);
    EXPECT_TRUE(first.persistent);
    EXPECT_TRUE(inj.poisoned(7));
    EXPECT_EQ(inj.poisonedPages(), 1u);
    // Every later attempt on the poisoned page fails the copy phase,
    // independent of the dice.
    const FaultDecision again = inj.nextTransaction(7, 0);
    EXPECT_EQ(again.failPhase, FaultPhase::Copy);
    EXPECT_TRUE(again.persistent);
}

TEST(FaultInjectorTest, RaisingTheRateOnlyGrowsTheFailingSet)
{
    // The fixed-draw contract: the same seed at a higher rate must fail
    // a superset of the transactions the lower rate failed.
    const double rates[] = {0.0, 0.1, 0.2, 0.4, 0.8, 1.0};
    std::vector<std::vector<bool>> failing;
    for (const double rate : rates) {
        FaultConfig cfg;
        cfg.enabled = true;
        cfg.copyFailProb = rate;
        cfg.shootdownFailProb = rate / 2;
        cfg.remapFailProb = rate / 2;
        FaultInjector inj(cfg, 42);
        std::vector<bool> fails;
        for (PageNum vpn = 0; vpn < 400; ++vpn)
            fails.push_back(inj.nextTransaction(vpn, 1).injected());
        failing.push_back(std::move(fails));
    }
    for (std::size_t r = 1; r < failing.size(); ++r) {
        for (std::size_t i = 0; i < failing[r].size(); ++i) {
            if (failing[r - 1][i]) {
                EXPECT_TRUE(failing[r][i])
                    << "rate " << rates[r] << " lost failure " << i;
            }
        }
    }
}

// --- Transactional engine through the Simulator ---------------------------

std::unique_ptr<sim::Simulator>
makeFaultSim(const FaultConfig &faults)
{
    sim::MachineConfig cfg = sim::tinyTestMachine();
    cfg.faults = faults;
    auto s = std::make_unique<sim::Simulator>(cfg);
    s->setPolicy(std::make_unique<policies::StaticTieringPolicy>());
    return s;
}

/**
 * Park @p want pages on the PM node while leaving DRAM mostly free:
 * fill DRAM with a filler region, spill the target region to PM, then
 * unmap the filler. Returns the isolated PM pages (static tiering never
 * migrates, so with no faults drawn yet the setup is identical across
 * fault configs).
 */
std::vector<Page *>
isolatedPmPages(sim::Simulator &sim, std::size_t want)
{
    const std::size_t dramFrames = sim.memory().node(0).totalFrames();
    const Vaddr filler =
        sim.mmap(dramFrames * kPageSize, true, "filler");
    for (std::size_t i = 0; i < dramFrames; ++i)
        sim.write(filler + i * kPageSize);
    const Vaddr target = sim.mmap(want * kPageSize, true, "target");
    for (std::size_t i = 0; i < want; ++i)
        sim.write(target + i * kPageSize);
    sim.unmapRegion(filler);
    std::vector<Page *> out;
    for (std::size_t i = 0; i < want; ++i) {
        Page *pg = sim.space().lookup(pageNumOf(target) + i);
        EXPECT_NE(pg, nullptr);
        if (pg && sim.pageTier(pg) == TierKind::Pmem) {
            sim.policy().onPageFreed(pg);  // isolate
            out.push_back(pg);
        }
    }
    EXPECT_FALSE(out.empty());
    return out;
}

/**
 * Re-enqueue a freshly promoted page the way kpromoted does: promoted
 * pages arrive hot on the destination node's *active* list (Fig. 4),
 * never the inactive one.
 */
void
enqueuePromoted(sim::Simulator &sim, Page *pg)
{
    pg->setActive(true);
    sim.memory().node(pg->node()).lists().add(
        pg, pfra::NodeLists::activeKind(pg->isAnon()));
}

TEST(TransactionalMigration, AbortRollsBackCleanly)
{
    FaultConfig faults;
    faults.enabled = true;
    faults.shootdownFailProb = 1.0;  // post-copy abort -> rollback
    faults.maxRetries = 0;
    auto sim = makeFaultSim(faults);
    const Vaddr a = sim->mmap(kPageSize);
    sim->write(a);
    Page *pg = sim->space().lookup(pageNumOf(a));
    ASSERT_NE(pg, nullptr);
    ASSERT_EQ(pg->node(), 0);
    sim->policy().onPageFreed(pg);

    const std::size_t pmFreeBefore =
        sim->memory().node(1).freeFrames();
    const Paddr paddrBefore = pg->paddr();
    EXPECT_FALSE(sim->migratePage(
        pg, 1, sim::Simulator::ChargeMode::Inline));

    // The page never moved and the reserved PM frame was released.
    EXPECT_TRUE(pg->resident());
    EXPECT_EQ(pg->node(), 0);
    EXPECT_EQ(pg->paddr(), paddrBefore);
    EXPECT_EQ(sim->memory().node(1).freeFrames(), pmFreeBefore);
    EXPECT_EQ(sim->migrationEngine().aborts(), 1u);
    EXPECT_EQ(sim->migrationEngine().rollbacks(), 1u);
    EXPECT_EQ(sim->migrationEngine().migrations(), 0u);
    EXPECT_EQ(sim->vmstat().global(VmItem::PgmigrateAbort), 1u);
    EXPECT_EQ(sim->vmstat().global(VmItem::PgmigrateRollback), 1u);
    // The abort surfaced as a tracepoint with the failing phase.
    bool sawAbort = false;
    for (const auto &ev : sim->trace().events()) {
        if (ev.type == stats::TraceEventType::MigrationAbort) {
            sawAbort = true;
            EXPECT_EQ(ev.arg1, static_cast<std::uint64_t>(
                                   FaultPhase::Shootdown));
        }
    }
    EXPECT_TRUE(sawAbort);
}

TEST(TransactionalMigration, CopyAbortIsNotARollback)
{
    FaultConfig faults;
    faults.enabled = true;
    faults.copyFailProb = 1.0;  // pre-copy-completion abort
    faults.maxRetries = 0;
    auto sim = makeFaultSim(faults);
    auto pages = isolatedPmPages(*sim, 1);
    ASSERT_FALSE(pages.empty());
    EXPECT_FALSE(sim->promotePage(
        pages[0], sim::Simulator::ChargeMode::Background));
    EXPECT_EQ(sim->migrationEngine().aborts(), 1u);
    EXPECT_EQ(sim->migrationEngine().rollbacks(), 0u);
    EXPECT_EQ(sim->vmstat().global(VmItem::PgmigrateRollback), 0u);
    EXPECT_EQ(sim->vmstat().global(VmItem::PgpromoteFail), 1u);
}

TEST(TransactionalMigration, RetryRecoversTransientAborts)
{
    FaultConfig faults;
    faults.enabled = true;
    faults.copyFailProb = 0.5;
    faults.persistentProb = 0.0;
    faults.maxRetries = 4;
    auto sim = makeFaultSim(faults);
    auto pages = isolatedPmPages(*sim, 24);
    std::size_t promoted = 0;
    for (Page *pg : pages) {
        if (sim->promotePage(pg,
                             sim::Simulator::ChargeMode::Background)) {
            ++promoted;
            // Return to a list so invariants hold if extended later.
            enqueuePromoted(*sim, pg);
        }
    }
    // At 50% per-transaction failure with 4 retries nearly every
    // promotion eventually lands, and some needed a retry.
    EXPECT_GT(promoted, pages.size() / 2);
    EXPECT_GT(sim->vmstat().global(VmItem::PgmigrateRetry), 0u);
    EXPECT_GT(sim->vmstat().global(VmItem::PgmigrateAbort), 0u);
    EXPECT_EQ(sim->metrics().totalPromotions(), promoted);
}

TEST(TransactionalMigration, PersistentFaultIsNotRetried)
{
    FaultConfig faults;
    faults.enabled = true;
    faults.copyFailProb = 1.0;
    faults.persistentProb = 1.0;
    faults.maxRetries = 5;
    auto sim = makeFaultSim(faults);
    auto pages = isolatedPmPages(*sim, 1);
    ASSERT_FALSE(pages.empty());
    EXPECT_FALSE(sim->promotePage(
        pages[0], sim::Simulator::ChargeMode::Background));
    // One transaction, no retries: the failure recurs by definition.
    EXPECT_EQ(sim->faultInjector().transactions(), 1u);
    EXPECT_EQ(sim->vmstat().global(VmItem::PgmigrateRetry), 0u);
    EXPECT_TRUE(sim->faultInjector().poisoned(pages[0]->vpn()));
}

TEST(TransactionalMigration, ThrottleEngagesAndExpires)
{
    FaultConfig faults;
    faults.enabled = true;
    faults.copyFailProb = 1.0;
    faults.persistentProb = 0.0;
    faults.maxRetries = 0;
    faults.throttleThreshold = 2;
    faults.throttleCooldownNs = 1'000'000ull;
    auto sim = makeFaultSim(faults);
    auto pages = isolatedPmPages(*sim, 4);
    ASSERT_GE(pages.size(), 4u);
    const NodeId pmNode = pages[0]->node();

    EXPECT_FALSE(sim->promotionThrottled(pmNode));
    EXPECT_FALSE(sim->promotePage(
        pages[0], sim::Simulator::ChargeMode::Background));
    EXPECT_FALSE(sim->promotionThrottled(pmNode));
    EXPECT_FALSE(sim->promotePage(
        pages[1], sim::Simulator::ChargeMode::Background));
    // Second consecutive abort hit the threshold.
    EXPECT_TRUE(sim->promotionThrottled(pmNode));
    EXPECT_EQ(sim->vmstat().global(VmItem::PgpromoteThrottled), 1u);

    // While throttled, promotions are refused before any transaction.
    const std::uint64_t txBefore = sim->faultInjector().transactions();
    EXPECT_FALSE(sim->promotePage(
        pages[2], sim::Simulator::ChargeMode::Background));
    EXPECT_EQ(sim->faultInjector().transactions(), txBefore);

    // The cooldown expires with simulated time.
    sim->compute(2_ms);
    EXPECT_FALSE(sim->promotionThrottled(pmNode));
    EXPECT_FALSE(sim->promotePage(
        pages[3], sim::Simulator::ChargeMode::Background));
    EXPECT_EQ(sim->faultInjector().transactions(), txBefore + 1);
}

TEST(TransactionalMigration, SuccessResetsTheThrottleStreak)
{
    FaultConfig faults;
    faults.enabled = true;
    faults.copyFailProb = 0.0;  // nothing actually fails
    faults.throttleThreshold = 1;
    auto sim = makeFaultSim(faults);
    auto pages = isolatedPmPages(*sim, 2);
    ASSERT_GE(pages.size(), 2u);
    EXPECT_TRUE(sim->promotePage(
        pages[0], sim::Simulator::ChargeMode::Background));
    enqueuePromoted(*sim, pages[0]);
    EXPECT_FALSE(sim->promotionThrottled(1));
    EXPECT_EQ(sim->vmstat().global(VmItem::PgpromoteThrottled), 0u);
}

TEST(TransactionalMigration, PromotionSuccessMonotoneInFailureRate)
{
    // The acceptance sweep: an identical promotion workload at rising
    // injected failure rates must show non-increasing success counts
    // (no retries, no persistence, so each call is one transaction and
    // the injector's fixed-draw contract applies directly).
    const double rates[] = {0.0, 0.1, 0.2, 0.4, 0.8, 1.0};
    std::vector<std::uint64_t> successes;
    for (const double rate : rates) {
        FaultConfig faults;
        faults.enabled = true;
        faults.copyFailProb = rate;
        faults.shootdownFailProb = rate / 2;
        faults.remapFailProb = rate / 2;
        faults.persistentProb = 0.0;
        faults.maxRetries = 0;
        faults.throttleThreshold = 1u << 30;  // never throttle
        auto sim = makeFaultSim(faults);
        auto pages = isolatedPmPages(*sim, 32);
        for (Page *pg : pages) {
            if (sim->promotePage(pg,
                                 sim::Simulator::ChargeMode::Background))
                enqueuePromoted(*sim, pg);
        }
        successes.push_back(sim->metrics().totalPromotions());
    }
    for (std::size_t i = 1; i < successes.size(); ++i)
        EXPECT_LE(successes[i], successes[i - 1]) << "rate index " << i;
    EXPECT_GT(successes.front(), 0u);   // everything lands at rate 0
    EXPECT_EQ(successes.back(), 0u);    // nothing lands at rate 1
    EXPECT_LT(successes.back(), successes.front());
}

// --- Scenario-level determinism -------------------------------------------

TEST(FaultDeterminism, FaultinjScenarioIdenticalAcrossJobCounts)
{
    harness::RunContext ctx = harness::goldenContext();
    ctx.params["ops"] = 8000;
    harness::RunnerOptions serialOpts;
    serialOpts.jobs = 1;
    serialOpts.quiet = true;
    serialOpts.writeArtifacts = false;
    serialOpts.context = ctx;
    harness::RunnerOptions parallelOpts = serialOpts;
    parallelOpts.jobs = 4;

    const auto serial =
        harness::runScenario("faultinj_ycsb_a", serialOpts);
    const auto parallel =
        harness::runScenario("faultinj_ycsb_a", parallelOpts);
    EXPECT_TRUE(serial.output.violations.empty());
    EXPECT_FALSE(serial.output.summary.empty());
    EXPECT_EQ(serial.output.summary, parallel.output.summary);
    EXPECT_EQ(serial.output.vmstat, parallel.output.vmstat);
    EXPECT_EQ(serial.output.text, parallel.output.text);
}

}  // namespace
