/**
 * @file
 * Tests for the experiment harness: scenario registry coverage, the
 * parallel runner's determinism contract (same seed -> bit-identical
 * output, independent of --jobs), per-policy determinism via the
 * factory, the shared invariant checker, and the golden fixture
 * machinery (load/save/compare).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "base/json.hh"
#include "harness/golden.hh"
#include "harness/invariants.hh"
#include "harness/profiles.hh"
#include "harness/runner.hh"
#include "policies/factory.hh"
#include "sim/simulator.hh"
#include "workloads/ycsb.hh"

using namespace mclock;
using namespace mclock::harness;

namespace {

/** Golden-profile context with a small op count: fast but nontrivial. */
RunContext
smallContext()
{
    RunContext ctx = goldenContext();
    ctx.params["ops"] = 20000;
    ctx.params["seconds"] = 6;
    ctx.params["trials"] = 1;
    return ctx;
}

RunnerOptions
quietOptions(unsigned jobs, const RunContext &ctx)
{
    RunnerOptions opts;
    opts.jobs = jobs;
    opts.quiet = true;
    opts.writeArtifacts = false;
    opts.context = ctx;
    return opts;
}

void
expectIdentical(const ScenarioOutput &a, const ScenarioOutput &b)
{
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.summary, b.summary);
    ASSERT_EQ(a.artifacts.size(), b.artifacts.size());
    for (std::size_t i = 0; i < a.artifacts.size(); ++i) {
        EXPECT_EQ(a.artifacts[i].filename, b.artifacts[i].filename);
        EXPECT_EQ(a.artifacts[i].contents, b.artifacts[i].contents);
    }
    EXPECT_TRUE(a.violations.empty());
    EXPECT_TRUE(b.violations.empty());
}

// --- Registry -----------------------------------------------------------

TEST(ScenarioRegistry, ListsAllTwentyFiveExperiments)
{
    const auto &all = allScenarios();
    EXPECT_EQ(all.size(), 25u);
    std::set<std::string> names;
    for (const auto &sc : all)
        names.insert(sc.name);
    for (const char *expected :
         {"fig01", "fig02", "tab01", "fig05", "fig06", "fig07",
          "fig08", "fig09", "fig10", "ablation_promote_list",
          "ablation_tracking_cost", "ablation_ratio", "ablation_llc",
          "tier3_ycsb_a", "tier3_ycsb_b", "tier3_pagerank",
          "faultinj_ycsb_a", "faultinj_pagerank",
          "shard_bigmem", "shard_bigmem_budget", "shard_bigmem_x4",
          "shard_bigmem_x8",
          "tenant_noisy_neighbor", "tenant_churn",
          "micro_structures"}) {
        EXPECT_TRUE(names.count(expected))
            << "missing scenario " << expected;
    }
}

TEST(ScenarioRegistry, EveryScenarioIsWellFormed)
{
    for (const auto &sc : allScenarios()) {
        EXPECT_FALSE(sc.name.empty());
        EXPECT_FALSE(sc.title.empty());
        EXPECT_TRUE(static_cast<bool>(sc.expand)) << sc.name;
        EXPECT_TRUE(static_cast<bool>(sc.reduce)) << sc.name;
    }
}

TEST(ScenarioRegistry, FindAndFilter)
{
    EXPECT_NE(findScenario("fig05"), nullptr);
    EXPECT_EQ(findScenario("fig99"), nullptr);
    EXPECT_EQ(filterScenarios("").size(), allScenarios().size());
    const auto abls = filterScenarios("ablation");
    EXPECT_EQ(abls.size(), 4u);
    EXPECT_EQ(filterScenarios("no_such_scenario").size(), 0u);
}

TEST(ScenarioRegistry, GoldenEligibilityMatchesDeterminism)
{
    // tab01 is static metadata, micro_structures is host-timed, and
    // the shard_bigmem_x* variants only pin a worker width (their
    // results are identical to shard_bigmem, so fixtures would be
    // redundant); everything else must be in the golden suite.
    const auto names = goldenScenarioNames();
    EXPECT_EQ(names.size(), 21u);
    for (const auto &name : names) {
        EXPECT_NE(name, "tab01");
        EXPECT_NE(name, "micro_structures");
        EXPECT_NE(name, "shard_bigmem_x4");
        EXPECT_NE(name, "shard_bigmem_x8");
    }
}

// --- RunContext ---------------------------------------------------------

TEST(RunContext, DerivedSeedKeepsLegacyDefaultsAtBaseSeed)
{
    RunContext ctx;  // seed = kDefaultSeed
    EXPECT_EQ(ctx.derivedSeed(1, 1), 1u);
    EXPECT_EQ(ctx.derivedSeed(3, 3), 3u);
    EXPECT_EQ(ctx.derivedSeed(7, 123), 123u);
}

TEST(RunContext, DerivedSeedVariesBySlotForOtherSeeds)
{
    RunContext ctx;
    ctx.seed = 1234;
    const auto a = ctx.derivedSeed(1, 1);
    const auto b = ctx.derivedSeed(2, 1);
    EXPECT_NE(a, 1u);
    EXPECT_NE(a, b);

    RunContext other;
    other.seed = 1235;
    EXPECT_NE(other.derivedSeed(1, 1), a);
}

TEST(RunContext, ParamLookup)
{
    RunContext ctx;
    ctx.params["ops"] = 5;
    EXPECT_EQ(ctx.param("ops", 9), 5u);
    EXPECT_EQ(ctx.param("missing", 9), 9u);
}

// --- Determinism --------------------------------------------------------

TEST(RunnerDeterminism, SameSeedTwiceIsBitIdentical)
{
    const auto ctx = smallContext();
    const auto a = runScenario("fig05", quietOptions(2, ctx));
    const auto b = runScenario("fig05", quietOptions(2, ctx));
    expectIdentical(a.output, b.output);
    EXPECT_FALSE(a.output.summary.empty());
}

TEST(RunnerDeterminism, JobCountDoesNotAffectOutput)
{
    const auto ctx = smallContext();
    const auto serial = runScenario("fig05", quietOptions(1, ctx));
    const auto parallel = runScenario("fig05", quietOptions(4, ctx));
    expectIdentical(serial.output, parallel.output);
}

TEST(RunnerDeterminism, Tier3JobCountDoesNotAffectOutput)
{
    const auto ctx = smallContext();
    const auto serial =
        runScenario("tier3_ycsb_a", quietOptions(1, ctx));
    const auto parallel =
        runScenario("tier3_ycsb_a", quietOptions(4, ctx));
    expectIdentical(serial.output, parallel.output);
    EXPECT_FALSE(serial.output.summary.empty());
}

TEST(Tier3Machine, StaticTieringOrdersTierLatencies)
{
    // On the DRAM/CXL/PM machine under static tiering, average device
    // latency must order strictly by rank: DRAM < CXL < PM.
    sim::Simulator sim(goldenTier3YcsbMachine());
    sim.setPolicy(policies::makePolicy("static", benchPolicyOptions()));
    auto ycsb = goldenYcsbConfig(20000);
    workloads::YcsbDriver driver(sim, ycsb);
    driver.load();
    driver.run(workloads::YcsbWorkload::A);
    const auto &m = sim.metrics();
    double avg[3];
    for (TierRank rank = 0; rank < 3; ++rank) {
        const auto acc = m.totalTierAccesses(rank);
        ASSERT_GT(acc, 0u) << "no accesses reached tier " << rank;
        avg[rank] = static_cast<double>(m.totalTierLatency(rank)) /
                    static_cast<double>(acc);
    }
    EXPECT_LT(avg[0], avg[1]);
    EXPECT_LT(avg[1], avg[2]);
}

TEST(RunnerDeterminism, MultiScenarioRunMatchesAnyJobCount)
{
    const auto ctx = smallContext();
    std::vector<const Scenario *> selected{findScenario("fig02"),
                                           findScenario("fig09")};
    const auto serial = runScenarios(selected, quietOptions(1, ctx));
    const auto parallel = runScenarios(selected, quietOptions(4, ctx));
    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        expectIdentical(serial.results[i].output,
                        parallel.results[i].output);
    }
}

/**
 * Thread-pool churn regression: repeated pool construction/teardown
 * and an oversubscribed worker count (far more workers than units)
 * exercise the submit/drain/shutdown windows of the runner's
 * ThreadPool under maximal interleaving pressure. The functional
 * assertion is bit-identical output; under the tsan preset this test
 * is also the data-race regression net for the --jobs harness and the
 * per-unit stats aggregation it feeds.
 */
TEST(RunnerDeterminism, RepeatedPoolChurnIsRaceFreeAndDeterministic)
{
    const auto ctx = smallContext();
    std::vector<const Scenario *> selected{findScenario("fig02"),
                                           findScenario("faultinj_ycsb_a")};
    const auto baseline = runScenarios(selected, quietOptions(1, ctx));
    for (const unsigned jobs : {2u, 8u, 32u}) {
        const auto rerun = runScenarios(selected, quietOptions(jobs, ctx));
        ASSERT_EQ(baseline.results.size(), rerun.results.size());
        for (std::size_t i = 0; i < baseline.results.size(); ++i) {
            expectIdentical(baseline.results[i].output,
                            rerun.results[i].output);
        }
    }
}

TEST(RunnerDeterminism, DifferentSeedsChangeYcsbResults)
{
    auto ctx = smallContext();
    const auto a = runScenario("fig05", quietOptions(2, ctx));
    ctx.seed = 777;
    const auto b = runScenario("fig05", quietOptions(2, ctx));
    EXPECT_NE(a.output.summary, b.output.summary);
}

/** Every factory policy, run twice with the same seed, must agree. */
class PolicyDeterminism
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(PolicyDeterminism, SameSeedSameMetrics)
{
    const std::string policy = GetParam();
    auto runOnce = [&policy]() {
        sim::MachineConfig machine = goldenYcsbMachine();
        if (policy == "memory-mode")
            machine.nodes = {{TierKind::Pmem, 24_MiB}};
        auto opts = benchPolicyOptions();
        opts.dramCacheBytes = 4_MiB;
        sim::Simulator sim(machine);
        sim.setPolicy(policies::makePolicy(policy, opts));
        auto ycsb = goldenYcsbConfig(15000);
        workloads::YcsbDriver driver(sim, ycsb);
        driver.load();
        const auto r = driver.run(workloads::YcsbWorkload::A);
        const auto violations = collectViolations(sim);
        EXPECT_TRUE(violations.empty())
            << policy << ": " << violations.front();
        return std::make_tuple(r.throughputOpsPerSec(),
                               sim.metrics().totalPromotions(),
                               sim.metrics().totalDemotions(),
                               sim.stats().get("hint_faults"),
                               sim.stats().get("scanned_pages"));
    };
    EXPECT_EQ(runOnce(), runOnce()) << policy;
}

INSTANTIATE_TEST_SUITE_P(
    AllFactoryPolicies, PolicyDeterminism,
    ::testing::ValuesIn(policies::policyNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

// --- Invariants ---------------------------------------------------------

TEST(HarnessInvariants, CleanAfterScenarioRuns)
{
    const auto ctx = smallContext();
    std::vector<const Scenario *> selected{findScenario("fig05"),
                                           findScenario("fig07")};
    const auto report = runScenarios(selected, quietOptions(4, ctx));
    EXPECT_TRUE(report.clean());
    for (const auto &r : report.results)
        EXPECT_TRUE(r.output.violations.empty()) << r.name;
}

TEST(HarnessInvariants, FreshSimulatorIsClean)
{
    sim::Simulator sim(goldenYcsbMachine());
    sim.setPolicy(policies::makePolicy("multiclock"));
    EXPECT_TRUE(collectViolations(sim).empty());
}

// --- Artifacts ----------------------------------------------------------

TEST(Runner, WritesArtifactsIntoOutDir)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "mclock_harness_test_out";
    std::filesystem::remove_all(dir);
    auto opts = quietOptions(2, smallContext());
    opts.writeArtifacts = true;
    opts.writeManifest = true;
    opts.outDir = dir.string();
    runScenario("fig02", opts);
    EXPECT_TRUE(
        std::filesystem::exists(dir / "fig02_frequency.csv"));
    EXPECT_TRUE(
        std::filesystem::exists(dir / "run_manifest.json"));

    std::string err;
    // The manifest must be valid JSON with the fields the regen flow
    // documents (git SHA, config hash, per-scenario wall time).
    std::ifstream f(dir / "run_manifest.json");
    std::stringstream buf;
    buf << f.rdbuf();
    const Json doc = Json::parse(buf.str(), &err);
    ASSERT_TRUE(doc.isObject()) << err;
    EXPECT_TRUE(doc.contains("git_sha"));
    EXPECT_TRUE(doc.contains("seed"));
    ASSERT_TRUE(doc["scenarios"].isArray());
    ASSERT_EQ(doc["scenarios"].asArray().size(), 1u);
    const Json &entry = doc["scenarios"].asArray().front();
    EXPECT_EQ(entry["name"].asString(), "fig02");
    EXPECT_TRUE(entry.contains("config_hash"));
    EXPECT_TRUE(entry.contains("wall_seconds"));
    std::filesystem::remove_all(dir);
}

// --- Golden machinery ---------------------------------------------------

TEST(GoldenFixtures, SaveLoadRoundTrip)
{
    const auto path = (std::filesystem::temp_directory_path() /
                       "mclock_golden_roundtrip.json")
                          .string();
    GoldenFile golden;
    golden.scenario = "fake";
    golden.seed = 42;
    golden.tolerance = 1e-6;
    golden.metrics = {{"a.x", 1.5}, {"b.y", -2.0}, {"c.z", 3e9}};
    saveGolden(path, golden);

    GoldenFile loaded;
    std::string err;
    ASSERT_TRUE(loadGolden(path, loaded, &err)) << err;
    EXPECT_EQ(loaded.scenario, "fake");
    EXPECT_EQ(loaded.seed, 42u);
    EXPECT_EQ(loaded.metrics, golden.metrics);
    std::filesystem::remove(path);
}

TEST(GoldenFixtures, CompareDetectsEveryMismatchKind)
{
    GoldenFile golden;
    golden.tolerance = 1e-6;
    golden.metrics = {{"a", 100.0}, {"missing", 1.0}};

    MetricMap fresh{{"a", 100.0 + 1e-3}, {"extra", 2.0}};
    const auto diffs = compareGolden(golden, fresh);
    ASSERT_EQ(diffs.size(), 3u);  // out-of-tol, missing, unexpected

    MetricMap ok{{"a", 100.0 + 1e-5}, {"missing", 1.0}};
    // 1e-5 absolute on 100.0 is within 1e-6 relative slack (1e-4).
    EXPECT_TRUE(compareGolden(golden, ok).empty());
}

TEST(GoldenFixtures, LoadRejectsMissingAndMalformed)
{
    GoldenFile out;
    std::string err;
    EXPECT_FALSE(loadGolden("/nonexistent/path.json", out, &err));
    EXPECT_FALSE(err.empty());

    const auto path = (std::filesystem::temp_directory_path() /
                       "mclock_golden_bad.json")
                          .string();
    std::ofstream(path) << "{not json";
    err.clear();
    EXPECT_FALSE(loadGolden(path, out, &err));
    EXPECT_FALSE(err.empty());
    std::filesystem::remove(path);
}

}  // namespace
