/**
 * @file
 * Unit tests for the sim module: nodes, memory system, migration,
 * daemons, metrics, and the simulator core's access path.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "policies/static_tiering.hh"
#include "sim/daemon.hh"
#include "sim/machine.hh"
#include "sim/memory_system.hh"
#include "sim/metrics.hh"
#include "sim/migration.hh"
#include "sim/node.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"

namespace mclock {
namespace sim {
namespace {

// --- Node ----------------------------------------------------------------------

TEST(NodeTest, FrameAllocationRoundTrip)
{
    Node node(0, TierKind::Dram, 4, 0x1000000);
    EXPECT_EQ(node.freeFrames(), 4u);
    Paddr a, b;
    EXPECT_TRUE(node.allocFrame(a));
    EXPECT_TRUE(node.allocFrame(b));
    EXPECT_NE(a, b);
    EXPECT_EQ(a % kPageSize, 0u);
    EXPECT_EQ(node.usedFrames(), 2u);
    node.freeFrame(a);
    EXPECT_EQ(node.freeFrames(), 3u);
}

TEST(NodeTest, ExhaustionFails)
{
    Node node(0, TierKind::Pmem, 2, 0);
    Paddr p;
    EXPECT_TRUE(node.allocFrame(p));
    EXPECT_TRUE(node.allocFrame(p));
    EXPECT_FALSE(node.allocFrame(p));
}

TEST(NodeTest, WatermarkPredicates)
{
    Node node(0, TierKind::Dram, 10000, 0);
    EXPECT_FALSE(node.belowLow());
    Paddr p;
    while (node.freeFrames() > node.watermarks().low)
        node.allocFrame(p);
    EXPECT_TRUE(node.belowLow());
    EXPECT_FALSE(node.belowMin());
    while (node.freeFrames() > node.watermarks().min)
        node.allocFrame(p);
    EXPECT_TRUE(node.belowMin());
    EXPECT_FALSE(node.aboveHigh());
}

TEST(NodeTest, TierTag)
{
    Node node(3, TierKind::Pmem, 1, 0);
    EXPECT_EQ(node.tier(), TierKind::Pmem);
    EXPECT_EQ(node.id(), 3);
}

// --- MemorySystem ------------------------------------------------------------------

TEST(MemorySystemTest, TierOrdering)
{
    MemorySystem mem({{TierKind::Dram, 1_MiB}, {TierKind::Pmem, 4_MiB}});
    ASSERT_EQ(mem.tierOrder().size(), 2u);
    EXPECT_EQ(mem.tierOrder()[0], TierKind::Dram);
    EXPECT_EQ(mem.tierOrder()[1], TierKind::Pmem);
    TierRank out;
    EXPECT_TRUE(mem.higherTier(TierKind::Pmem, out));
    EXPECT_EQ(out, TierKind::Dram);
    EXPECT_FALSE(mem.higherTier(TierKind::Dram, out));
    EXPECT_TRUE(mem.lowerTier(TierKind::Dram, out));
    EXPECT_EQ(out, TierKind::Pmem);
    EXPECT_FALSE(mem.lowerTier(TierKind::Pmem, out));
}

TEST(MemorySystemTest, ThreeTierOrdering)
{
    MemorySystem mem({{0, 1_MiB}, {1, 2_MiB}, {2, 4_MiB}});
    ASSERT_EQ(mem.tierOrder().size(), 3u);
    EXPECT_EQ(mem.numTiers(), 3u);
    EXPECT_EQ(mem.tierOrder().front(), 0);
    EXPECT_EQ(mem.tierOrder().back(), 2);
    TierRank out;
    EXPECT_TRUE(mem.higherTier(2, out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(mem.higherTier(1, out));
    EXPECT_EQ(out, 0);
    EXPECT_FALSE(mem.higherTier(0, out));
    EXPECT_TRUE(mem.lowerTier(0, out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(mem.lowerTier(1, out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(mem.lowerTier(2, out));
}

TEST(MemorySystemTest, SparseRanksSkipEmptyTiers)
{
    // Nodes only on ranks 0 and 2: adjacency skips the node-less rank 1.
    MemorySystem mem({{0, 1_MiB}, {2, 4_MiB}});
    ASSERT_EQ(mem.tierOrder().size(), 2u);
    EXPECT_TRUE(mem.tier(1).empty());
    TierRank out;
    EXPECT_TRUE(mem.higherTier(2, out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(mem.lowerTier(0, out));
    EXPECT_EQ(out, 2);
}

TEST(MemorySystemTest, PmOnlyMachine)
{
    MemorySystem mem({{TierKind::Pmem, 4_MiB}});
    EXPECT_EQ(mem.tierOrder().size(), 1u);
    EXPECT_TRUE(mem.tier(TierKind::Dram).empty());
    TierRank out;
    EXPECT_FALSE(mem.higherTier(TierKind::Pmem, out));
}

TEST(MemorySystemTest, MultiNodeTier)
{
    MemorySystem mem({{TierKind::Dram, 1_MiB},
                      {TierKind::Dram, 1_MiB},
                      {TierKind::Pmem, 2_MiB}});
    EXPECT_EQ(mem.tier(TierKind::Dram).size(), 2u);
    EXPECT_EQ(mem.tierFrames(TierKind::Dram), 2 * 256u);
    EXPECT_EQ(mem.tierFreeFrames(TierKind::Dram), 512u);
}

TEST(MemorySystemTest, PickNodePrefersMostFree)
{
    MemorySystem mem({{TierKind::Dram, 1_MiB}, {TierKind::Dram, 1_MiB}});
    Paddr p;
    mem.node(0).allocFrame(p);
    EXPECT_EQ(mem.pickNodeWithSpace(TierKind::Dram, false), 1);
}

TEST(MemorySystemTest, DistinctPaddrRanges)
{
    MemorySystem mem({{TierKind::Dram, 1_MiB}, {TierKind::Pmem, 1_MiB}});
    Paddr a, b;
    mem.node(0).allocFrame(a);
    mem.node(1).allocFrame(b);
    EXPECT_NE(a >> 40, b >> 40);  // separate 1 TiB windows
}

// --- MigrationEngine -----------------------------------------------------------------

class MigrationTest : public ::testing::Test
{
  protected:
    MigrationTest()
        : mem_({{TierKind::Dram, 1_MiB}, {TierKind::Pmem, 1_MiB}}),
          engine_(mem_, cfg_, nullptr)
    {
    }

    Page *
    makeResident(NodeId node, bool anon = true)
    {
        pages_.push_back(
            std::make_unique<Page>(&space_, pages_.size(), anon));
        Paddr pa;
        EXPECT_TRUE(mem_.node(node).allocFrame(pa));
        pages_.back()->placeOn(node, pa);
        return pages_.back().get();
    }

    MemoryConfig cfg_;
    MemorySystem mem_;
    MigrationEngine engine_;
    AddressSpace space_;
    std::vector<std::unique_ptr<Page>> pages_;
};

TEST_F(MigrationTest, PromotionMovesFrame)
{
    Page *pg = makeResident(1);
    const Paddr oldPa = pg->paddr();
    SimTime cost = 0;
    ASSERT_TRUE(engine_.migrate(pg, 0, cost).ok());
    EXPECT_EQ(pg->node(), 0);
    EXPECT_NE(pg->paddr(), oldPa);
    EXPECT_GT(cost, 0u);
    EXPECT_EQ(engine_.promotions(), 1u);
    EXPECT_EQ(engine_.demotions(), 0u);
    // Source frame was returned to the PM node.
    EXPECT_EQ(mem_.node(1).freeFrames(), mem_.node(1).totalFrames());
}

TEST_F(MigrationTest, DemotionCountsSeparately)
{
    Page *pg = makeResident(0);
    SimTime cost = 0;
    ASSERT_TRUE(engine_.migrate(pg, 1, cost).ok());
    EXPECT_EQ(engine_.demotions(), 1u);
}

TEST_F(MigrationTest, LockedPageFails)
{
    Page *pg = makeResident(1);
    pg->setLocked(true);
    SimTime cost = 0;
    EXPECT_FALSE(engine_.migrate(pg, 0, cost).ok());
    EXPECT_EQ(engine_.failed(), 1u);
    EXPECT_EQ(pg->node(), 1);
}

TEST_F(MigrationTest, FullDestinationFails)
{
    // Fill DRAM completely.
    while (mem_.node(0).freeFrames() > 0)
        makeResident(0);
    Page *pg = makeResident(1);
    SimTime cost = 0;
    EXPECT_FALSE(engine_.migrate(pg, 0, cost).ok());
}

TEST_F(MigrationTest, ExchangeSwapsPlacement)
{
    Page *hot = makeResident(1);
    Page *cold = makeResident(0);
    const Paddr hotPa = hot->paddr();
    const Paddr coldPa = cold->paddr();
    SimTime cost = 0;
    ASSERT_TRUE(engine_.exchange(hot, cold, cost).ok());
    EXPECT_EQ(hot->node(), 0);
    EXPECT_EQ(cold->node(), 1);
    EXPECT_EQ(hot->paddr(), coldPa);
    EXPECT_EQ(cold->paddr(), hotPa);
    // Exchange is cheaper than two independent migrations.
    const SimTime two =
        cfg_.pageMigrationCost(TierKind::Pmem, TierKind::Dram) +
        cfg_.pageMigrationCost(TierKind::Dram, TierKind::Pmem);
    EXPECT_LT(cost, two);
}

TEST_F(MigrationTest, MigrationClearsPteDirty)
{
    Page *pg = makeResident(1);
    pg->setPteDirty(true);
    pg->setDirty(true);
    SimTime cost;
    ASSERT_TRUE(engine_.migrate(pg, 0, cost).ok());
    EXPECT_FALSE(pg->pteDirty());
    EXPECT_TRUE(pg->dirty());  // logical dirtiness survives
}

// --- DaemonScheduler ----------------------------------------------------------------

TEST(DaemonSchedulerTest, FiresOnSchedule)
{
    DaemonScheduler sched;
    int fired = 0;
    sched.add("d", 100, [&](SimTime) { ++fired; });
    EXPECT_EQ(sched.nextDue(), 100u);
    sched.runDue(99);
    EXPECT_EQ(fired, 0);
    sched.runDue(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sched.nextDue(), 200u);
    sched.runDue(450);  // catches up: 200, 300, 400
    EXPECT_EQ(fired, 4);
}

TEST(DaemonSchedulerTest, MultipleDaemonsInWakeOrder)
{
    DaemonScheduler sched;
    std::vector<int> order;
    sched.add("a", 100, [&](SimTime) { order.push_back(1); });
    sched.add("b", 150, [&](SimTime) { order.push_back(2); });
    sched.runDue(300);
    // wakes: a@100, b@150, a@200, a@300, b@300.
    EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 1, 2}));
}

TEST(DaemonSchedulerTest, DisableAndInterval)
{
    DaemonScheduler sched;
    int fired = 0;
    const DaemonId id = sched.add("d", 100, [&](SimTime) { ++fired; });
    sched.setEnabled(id, false);
    sched.runDue(1000);
    EXPECT_EQ(fired, 0);
    sched.setEnabled(id, true);
    sched.setInterval(id, 500);
    sched.runDue(1000);
    EXPECT_GT(fired, 0);
    EXPECT_EQ(sched.invocations(id),
              static_cast<std::uint64_t>(fired));
}

// --- Metrics -------------------------------------------------------------------------

TEST(MetricsTest, WindowBucketing)
{
    Metrics metrics(20_s);
    metrics.recordAccess(1_s, TierKind::Dram, false);
    metrics.recordAccess(25_s, TierKind::Pmem, false);
    metrics.recordAccess(25_s, TierKind::Pmem, true);
    ASSERT_EQ(metrics.windows().size(), 2u);
    EXPECT_EQ(metrics.windows()[0].tierAccessCount(TierKind::Dram), 1u);
    EXPECT_EQ(metrics.windows()[1].tierAccessCount(TierKind::Pmem), 1u);
    EXPECT_EQ(metrics.windows()[1].llcHits, 1u);
    EXPECT_EQ(metrics.totalAccesses(), 3u);
}

TEST(MetricsTest, ReaccessWithinNextRoundCounts)
{
    AddressSpace space;
    Page pg(&space, 0, true);
    Metrics metrics(20_s);
    metrics.beginPromotionRound();
    metrics.recordPromotion(1_s, &pg);
    metrics.maybeRecordReaccess(2_s, &pg);
    EXPECT_EQ(metrics.totalReaccessed(), 1u);
    // Counted once only.
    metrics.maybeRecordReaccess(3_s, &pg);
    EXPECT_EQ(metrics.totalReaccessed(), 1u);
}

TEST(MetricsTest, ReaccessTooLateDoesNotCount)
{
    AddressSpace space;
    Page pg(&space, 0, true);
    Metrics metrics(20_s);
    metrics.recordPromotion(1_s, &pg);
    metrics.beginPromotionRound();
    metrics.beginPromotionRound();  // two rounds later
    metrics.maybeRecordReaccess(5_s, &pg);
    EXPECT_EQ(metrics.totalReaccessed(), 0u);
}

TEST(MetricsTest, ReaccessPercent)
{
    AddressSpace space;
    Page a(&space, 0, true), b(&space, 1, true);
    Metrics metrics(20_s);
    metrics.recordPromotion(1_s, &a);
    metrics.recordPromotion(1_s, &b);
    metrics.maybeRecordReaccess(2_s, &a);
    EXPECT_DOUBLE_EQ(metrics.windows()[0].reaccessPercent(), 50.0);
}

// --- Simulator access path -------------------------------------------------------------

std::unique_ptr<Simulator>
makeSim(MachineConfig cfg = tinyTestMachine())
{
    auto sim = std::make_unique<Simulator>(cfg);
    sim->setPolicy(std::make_unique<policies::StaticTieringPolicy>());
    return sim;
}

TEST(SimulatorTest, FirstTouchFaultsAndPlaces)
{
    auto sim = makeSim();
    const Vaddr a = sim->mmap(4 * kPageSize);
    sim->read(a);
    EXPECT_EQ(sim->stats().get("minor_faults"), 1u);
    Page *pg = sim->space().lookup(pageNumOf(a));
    ASSERT_NE(pg, nullptr);
    EXPECT_TRUE(pg->resident());
    // Born in the highest tier (DRAM has space).
    EXPECT_EQ(sim->pageTier(pg), TierKind::Dram);
    // On an LRU list (inactive head).
    EXPECT_EQ(pg->list(), LruListKind::InactiveAnon);
}

TEST(SimulatorTest, FaultCostCharged)
{
    auto sim = makeSim();
    const Vaddr a = sim->mmap(kPageSize);
    const SimTime before = sim->now();
    sim->read(a);
    EXPECT_GE(sim->now() - before,
              sim->memConfig().minorFaultLatency);
}

TEST(SimulatorTest, LlcMissSetsPteBitsHitDoesNot)
{
    auto sim = makeSim();
    const Vaddr a = sim->mmap(kPageSize);
    sim->read(a);  // fault + miss
    Page *pg = sim->space().lookup(pageNumOf(a));
    EXPECT_TRUE(pg->pteReferenced());
    pg->setPteReferenced(false);
    sim->read(a);  // LLC hit now
    EXPECT_FALSE(pg->pteReferenced());
}

TEST(SimulatorTest, StoreSetsDirty)
{
    auto sim = makeSim();
    const Vaddr a = sim->mmap(kPageSize);
    sim->write(a);
    Page *pg = sim->space().lookup(pageNumOf(a));
    EXPECT_TRUE(pg->dirty());
    EXPECT_TRUE(pg->pteDirty());
}

TEST(SimulatorTest, SpillsToPmemWhenDramFills)
{
    auto sim = makeSim();
    const std::size_t dramFrames =
        sim->memory().node(0).totalFrames();
    const Vaddr a = sim->mmap((dramFrames + 16) * kPageSize);
    for (std::size_t i = 0; i < dramFrames + 16; ++i)
        sim->write(a + i * kPageSize);
    // Everything resident; the overflow went to PM.
    std::size_t pmPages = 0;
    sim->space().forEachPage([&](Page *pg) {
        if (sim->pageTier(pg) == TierKind::Pmem)
            ++pmPages;
    });
    EXPECT_GT(pmPages, 0u);
}

TEST(SimulatorTest, PmemAccessSlowerThanDram)
{
    MachineConfig cfg = tinyTestMachine();
    cfg.cache.enabled = false;  // measure raw tier latency
    auto sim = makeSim(cfg);
    const std::size_t dramFrames = sim->memory().node(0).totalFrames();
    const Vaddr a = sim->mmap((dramFrames + 8) * kPageSize);
    for (std::size_t i = 0; i < dramFrames + 8; ++i)
        sim->write(a + i * kPageSize);
    Page *dramPage = nullptr;
    Page *pmemPage = nullptr;
    sim->space().forEachPage([&](Page *pg) {
        if (sim->pageTier(pg) == TierKind::Dram)
            dramPage = pg;
        else
            pmemPage = pg;
    });
    ASSERT_NE(dramPage, nullptr);
    ASSERT_NE(pmemPage, nullptr);
    SimTime t0 = sim->now();
    sim->read(dramPage->vaddr());
    const SimTime dramLat = sim->now() - t0;
    t0 = sim->now();
    sim->read(pmemPage->vaddr());
    const SimTime pmemLat = sim->now() - t0;
    EXPECT_EQ(dramLat, sim->memConfig().timing(TierKind::Dram).loadLatency);
    EXPECT_EQ(pmemLat, sim->memConfig().timing(TierKind::Pmem).loadLatency);
}

TEST(SimulatorTest, ComputeAdvancesClockAndRunsDaemons)
{
    auto sim = makeSim();
    int fired = 0;
    sim->daemons().add("t", 1_ms, [&](SimTime) { ++fired; });
    sim->compute(10_ms);
    EXPECT_EQ(sim->now(), 10_ms);
    EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, BackgroundChargeUsesInterference)
{
    auto sim = makeSim();
    const SimTime before = sim->now();
    sim->chargeBackground(1000);
    EXPECT_EQ(sim->now() - before,
              static_cast<SimTime>(
                  1000 * sim->memConfig().backgroundInterference));
    EXPECT_EQ(sim->stats().get("background_work_ns"), 1000u);
}

TEST(SimulatorTest, UnmapFreesFramesAndPages)
{
    auto sim = makeSim();
    const Vaddr a = sim->mmap(8 * kPageSize);
    for (int i = 0; i < 8; ++i)
        sim->write(a + static_cast<Vaddr>(i) * kPageSize);
    const std::size_t freeBefore = sim->memory().node(0).freeFrames();
    sim->unmapRegion(a);
    EXPECT_EQ(sim->space().pageCount(), 0u);
    EXPECT_EQ(sim->memory().node(0).freeFrames(), freeBefore + 8);
}

TEST(SimulatorTest, EvictionAndSwapIn)
{
    auto sim = makeSim();
    const Vaddr a = sim->mmap(kPageSize);
    sim->write(a);
    Page *pg = sim->space().lookup(pageNumOf(a));
    // Isolate and evict by hand.
    sim->policy().onPageFreed(pg);
    sim->evictPage(pg);
    EXPECT_FALSE(pg->resident());
    EXPECT_EQ(sim->stats().get("swap_outs"), 1u);
    // Touching it swaps back in.
    sim->read(a);
    EXPECT_TRUE(pg->resident());
    EXPECT_EQ(sim->stats().get("swap_ins"), 1u);
    EXPECT_EQ(sim->swap().usedSlots(), 0u);
}

TEST(SimulatorTest, MultiPageAccessTouchesEveryPage)
{
    auto sim = makeSim();
    const Vaddr a = sim->mmap(4 * kPageSize);
    sim->read(a, 3 * kPageSize);
    EXPECT_EQ(sim->stats().get("minor_faults"), 3u);
}

TEST(SimulatorTest, PromoteAndDemoteHelpers)
{
    auto sim = makeSim();
    const Vaddr a = sim->mmap(kPageSize);
    sim->write(a);
    Page *pg = sim->space().lookup(pageNumOf(a));
    sim->policy().onPageFreed(pg);  // isolate
    ASSERT_TRUE(sim->demotePage(pg, Simulator::ChargeMode::Background));
    EXPECT_EQ(sim->pageTier(pg), TierKind::Pmem);
    EXPECT_EQ(sim->metrics().totalDemotions(), 1u);
    ASSERT_TRUE(sim->promotePage(pg, Simulator::ChargeMode::Background));
    EXPECT_EQ(sim->pageTier(pg), TierKind::Dram);
    EXPECT_EQ(sim->metrics().totalPromotions(), 1u);
}


TEST(SimulatorTest, FaultPathMigrationChargesMultiplier)
{
    sim::MachineConfig cfg = tinyTestMachine();
    auto sim = makeSim(cfg);
    const Vaddr a = sim->mmap(kPageSize);
    sim->write(a);
    Page *pg = sim->space().lookup(pageNumOf(a));
    sim->policy().onPageFreed(pg);
    const SimTime base =
        cfg.mem.pageMigrationCost(TierKind::Dram, TierKind::Pmem);
    const SimTime before = sim->now();
    ASSERT_TRUE(sim->demotePage(pg, Simulator::ChargeMode::FaultPath));
    const SimTime charged = sim->now() - before;
    EXPECT_EQ(charged,
              static_cast<SimTime>(
                  cfg.mem.faultPathMigrationMultiplier *
                  static_cast<double>(base)));
}

TEST(SimulatorTest, BackgroundMigrationChargesFixedPortionInline)
{
    sim::MachineConfig cfg = tinyTestMachine();
    auto sim = makeSim(cfg);
    const Vaddr a = sim->mmap(kPageSize);
    sim->write(a);
    Page *pg = sim->space().lookup(pageNumOf(a));
    sim->policy().onPageFreed(pg);
    const SimTime base =
        cfg.mem.pageMigrationCost(TierKind::Dram, TierKind::Pmem);
    const SimTime before = sim->now();
    const auto inlineBefore = sim->stats().get("inline_overhead_ns");
    ASSERT_TRUE(sim->demotePage(pg, Simulator::ChargeMode::Background));
    const SimTime charged = sim->now() - before;
    // Inline part: the TLB-shootdown fixed cost. Background part: the
    // copy, scaled by the interference factor.
    const SimTime expected =
        cfg.mem.migrationFixedCost +
        static_cast<SimTime>((base - cfg.mem.migrationFixedCost) *
                             cfg.mem.backgroundInterference);
    EXPECT_EQ(charged, expected);
    EXPECT_EQ(sim->stats().get("inline_overhead_ns") - inlineBefore,
              cfg.mem.migrationFixedCost);
}

TEST(SimulatorTest, MetricsWindowIsConfigurable)
{
    sim::MachineConfig cfg = tinyTestMachine();
    cfg.metricsWindow = 5_ms;
    auto sim = makeSim(cfg);
    EXPECT_EQ(sim->metrics().windowLength(), 5_ms);
    const Vaddr a = sim->mmap(kPageSize);
    sim->compute(12_ms);
    sim->read(a);
    EXPECT_EQ(sim->metrics().windows().size(), 3u);  // window idx 2
}

TEST(SimulatorTest, LargeAccessSamplesEvery512Bytes)
{
    sim::MachineConfig cfg = tinyTestMachine();
    cfg.cache.enabled = false;
    auto sim = makeSim(cfg);
    const Vaddr a = sim->mmap(kPageSize);
    sim->write(a);  // pre-fault
    const auto before = sim->metrics().totalAccesses();
    sim->read(a, 2048);
    EXPECT_EQ(sim->metrics().totalAccesses() - before, 4u);
    sim->read(a, 8);
    EXPECT_EQ(sim->metrics().totalAccesses() - before, 5u);
}

TEST(SimulatorTest, TwoSocketMachineAllocatesAcrossNodes)
{
    sim::MachineConfig cfg;
    cfg.nodes = {{TierKind::Dram, 1_MiB},
                 {TierKind::Dram, 1_MiB},
                 {TierKind::Pmem, 4_MiB},
                 {TierKind::Pmem, 4_MiB}};
    cfg.cache.enabled = false;
    auto sim = makeSim(cfg);
    // Touch more than both DRAM nodes hold: both fill, then PM.
    const Vaddr a = sim->mmap(1024 * kPageSize);
    for (int i = 0; i < 1024; ++i)
        sim->write(a + static_cast<Vaddr>(i) * kPageSize);
    std::size_t perNode[4] = {0, 0, 0, 0};
    sim->space().forEachPage([&](Page *pg) {
        ++perNode[static_cast<std::size_t>(pg->node())];
    });
    EXPECT_GT(perNode[0], 0u);
    EXPECT_GT(perNode[1], 0u);
    EXPECT_GT(perNode[2] + perNode[3], 0u);
}

}  // namespace
}  // namespace sim
}  // namespace mclock
