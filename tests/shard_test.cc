/**
 * @file
 * Sharded execution model tests (vm/sharded_address_space,
 * sim/shard_event, sim/sharded, and the shard_bigmem harness family).
 *
 * The headline contract is worker-count bit-identity: a sharded
 * machine's shard partition is semantic data, the worker thread count
 * is pure execution width, and every observable result — merged
 * metrics, merged vmstat, the seniority-ordered event stream, the
 * epoch count — must be byte-identical whether one thread or eight
 * drive the shards. The 8-worker runs here double as the TSan
 * exercise: the whole suite runs under the tsan preset in CI.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "base/units.hh"
#include "harness/golden.hh"
#include "harness/runner.hh"
#include "harness/scenario.hh"
#include "policies/factory.hh"
#include "sim/machine.hh"
#include "sim/shard_event.hh"
#include "sim/sharded.hh"
#include "sim/simulator.hh"
#include "vm/sharded_address_space.hh"

using namespace mclock;
using namespace mclock::sim;

namespace {

// --- Address routing -----------------------------------------------------

TEST(ShardedAddressSpaceTest, VaTaggingRoundTrips)
{
    const Vaddr local = 0x1234'5000;
    for (unsigned s : {0u, 1u, 7u, 255u}) {
        const Vaddr global = ShardedAddressSpace::globalVa(s, local);
        EXPECT_EQ(ShardedAddressSpace::shardOfVa(global), s);
        EXPECT_EQ(ShardedAddressSpace::localVa(global), local);
    }
    // Shard 0 addresses are untagged: the plain local address.
    EXPECT_EQ(ShardedAddressSpace::globalVa(0, local), local);
}

TEST(ShardedAddressSpaceTest, VpnTaggingMatchesVaTagging)
{
    const Vaddr local = 0xabc'd000;
    const PageNum localVpn = local >> kPageShift;
    const Vaddr global = ShardedAddressSpace::globalVa(3, local);
    EXPECT_EQ(ShardedAddressSpace::shardOfVpn(global >> kPageShift), 3u);
    EXPECT_EQ(ShardedAddressSpace::localVpn(global >> kPageShift),
              localVpn);
    EXPECT_EQ(ShardedAddressSpace::globalVpn(3, localVpn),
              global >> kPageShift);
}

TEST(ShardedAddressSpaceTest, FacadeRoutesToOwningShard)
{
    MachineConfig cfg;
    cfg.nodes = {{TierKind::Dram, 1_MiB}};
    Simulator a(cfg), b(cfg);
    a.setPolicy(policies::makePolicy("static", {}));
    b.setPolicy(policies::makePolicy("static", {}));
    ShardedAddressSpace space({&a.space(), &b.space()});
    ASSERT_EQ(space.shards(), 2u);

    const Vaddr va0 = space.mmapOn(0, 8 * kPageSize);
    const Vaddr va1 = space.mmapOn(1, 8 * kPageSize);
    EXPECT_EQ(ShardedAddressSpace::shardOfVa(va0), 0u);
    EXPECT_EQ(ShardedAddressSpace::shardOfVa(va1), 1u);

    a.read(ShardedAddressSpace::localVa(va0));
    b.read(ShardedAddressSpace::localVa(va1));
    Page *p0 = space.lookup(va0 >> kPageShift);
    Page *p1 = space.lookup(va1 >> kPageShift);
    ASSERT_NE(p0, nullptr);
    ASSERT_NE(p1, nullptr);
    EXPECT_NE(space.regionOf(va0), nullptr);
    EXPECT_NE(space.regionOf(va1), nullptr);
    // The shards' bump allocators hand out the same *local* addresses,
    // so the two tags must resolve to two distinct shard-local pages.
    EXPECT_EQ(ShardedAddressSpace::localVpn(va0 >> kPageShift),
              ShardedAddressSpace::localVpn(va1 >> kPageShift));
    EXPECT_NE(p0, p1);
    // An out-of-range shard tag resolves to nothing.
    EXPECT_EQ(space.lookup(ShardedAddressSpace::globalVpn(
                  9, ShardedAddressSpace::localVpn(va1 >> kPageShift))),
              nullptr);
    EXPECT_EQ(space.pageCount(), 2u);
}

// --- Event log and seniority order ---------------------------------------

TEST(ShardEventTest, SeniorityOrdersTimeShardSeq)
{
    const ShardEvent a{100, 0, 5, ShardEventKind::Promote, 1, 0};
    const ShardEvent b{100, 1, 0, ShardEventKind::Promote, 2, 0};
    const ShardEvent c{99, 7, 9, ShardEventKind::Demote, 3, 0};
    const ShardEvent d{100, 0, 6, ShardEventKind::Demote, 4, 0};
    EXPECT_TRUE(shardEventSenior(c, a));  // earlier time wins
    EXPECT_TRUE(shardEventSenior(a, b));  // lower shard breaks time tie
    EXPECT_TRUE(shardEventSenior(a, d));  // lower seq breaks shard tie
    EXPECT_FALSE(shardEventSenior(a, a));
}

TEST(ShardEventTest, LogSequenceIsMonotonicAcrossDrains)
{
    ShardEventLog log;
    log.bind(3);
    log.append(ShardEventKind::Promote, 10, 1, 0);
    log.append(ShardEventKind::Demote, 10, 2, 0);
    auto first = log.drain();
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0].seq, 0u);
    EXPECT_EQ(first[1].seq, 1u);
    EXPECT_EQ(first[0].shard, 3u);
    EXPECT_EQ(log.size(), 0u);

    log.append(ShardEventKind::Exchange, 20, 3, 4);
    auto second = log.drain();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].seq, 2u);  // continues, never restarts
}

// --- Machine partitioning ------------------------------------------------

TEST(ShardMachineTest, SingleShardIsTheWholeMachine)
{
    MachineConfig whole;
    whole.nodes = {{TierKind::Dram, 4_MiB}, {TierKind::Pmem, 24_MiB}};
    whole.seed = 1234;
    whole.swapPages = 100;
    const MachineConfig cfg = shardMachine(whole, 1, 0);
    EXPECT_EQ(cfg.seed, whole.seed);  // seed untouched: bit-identical
    EXPECT_EQ(cfg.nodes[0].bytes, whole.nodes[0].bytes);
    EXPECT_EQ(cfg.swapPages, whole.swapPages);
}

TEST(ShardMachineTest, PartitionDividesCapacitiesAndForksSeeds)
{
    MachineConfig whole;
    whole.nodes = {{TierKind::Dram, 32_MiB}, {TierKind::Pmem, 192_MiB}};
    whole.seed = 42;
    whole.swapPages = 64;

    std::vector<std::uint64_t> seeds;
    for (unsigned s = 0; s < 8; ++s) {
        const MachineConfig cfg = shardMachine(whole, 8, s);
        EXPECT_EQ(cfg.nodes[0].bytes, 4_MiB);
        EXPECT_EQ(cfg.nodes[1].bytes, 24_MiB);
        EXPECT_EQ(cfg.swapPages, 8u);
        EXPECT_EQ(cfg.nodes[0].bytes % kPageSize, 0u);
        seeds.push_back(cfg.seed);
    }
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end())
        << "per-shard seed streams must be distinct";
}

TEST(ShardMachineTest, TinyCapacitiesFloorAtOnePage)
{
    MachineConfig whole;
    whole.nodes = {{TierKind::Dram, 2 * kPageSize}};
    whole.swapPages = 3;
    const MachineConfig cfg = shardMachine(whole, 8, 5);
    EXPECT_EQ(cfg.nodes[0].bytes, kPageSize);
    EXPECT_EQ(cfg.swapPages, 1u);
}

TEST(ShardMachineTest, RemainderPagesConserveCapacity)
{
    // 1027 DRAM / 2050 PM pages and 69 swap slots do not divide by 8.
    // The remainders must go to the low-numbered shards, one page
    // each, and the shard shares must sum back to the whole machine
    // exactly — the old floor(bytes/S) partition silently dropped up
    // to S-1 pages per node.
    MachineConfig whole;
    whole.nodes = {{TierKind::Dram, 1027 * kPageSize},
                   {TierKind::Pmem, 2050 * kPageSize}};
    whole.swapPages = 69;

    std::size_t dram = 0, pm = 0, swp = 0;
    for (unsigned s = 0; s < 8; ++s) {
        const MachineConfig cfg = shardMachine(whole, 8, s);
        dram += cfg.nodes[0].bytes / kPageSize;
        pm += cfg.nodes[1].bytes / kPageSize;
        swp += cfg.swapPages;
        // 1027 = 8*128 + 3: shards 0-2 carry the extra page.
        EXPECT_EQ(cfg.nodes[0].bytes / kPageSize, s < 3 ? 129u : 128u);
        EXPECT_EQ(cfg.nodes[1].bytes / kPageSize, s < 2 ? 257u : 256u);
        EXPECT_EQ(cfg.swapPages, s < 5 ? 9u : 8u);
    }
    EXPECT_EQ(dram, 1027u);
    EXPECT_EQ(pm, 2050u);
    EXPECT_EQ(swp, 69u);
}

// --- Deterministic parallel execution ------------------------------------

/**
 * Small-but-busy sharded run: each shard streams a strided workload
 * ~2x its DRAM slice so promotions and demotions actually flow.
 * Returns the full observable state as a comparable string.
 */
std::string
runFingerprint(unsigned workers, std::uint64_t budget)
{
    MachineConfig whole;
    whole.nodes = {{TierKind::Dram, 2_MiB}, {TierKind::Pmem, 8_MiB}};
    whole.seed = 7;

    ShardOptions opts;
    opts.shards = 4;
    opts.workers = workers;
    opts.epochPromoteBudget = budget;

    ShardedSimulator host(whole, opts);
    std::vector<Vaddr> bases;
    for (unsigned s = 0; s < host.shards(); ++s) {
        host.shard(s).setPolicy(policies::makePolicy("multiclock", {}));
        bases.push_back(ShardedAddressSpace::localVa(
            host.space().mmapOn(s, 1_MiB)));
    }

    host.run([&](Simulator &sim, unsigned s, std::uint64_t epoch) {
        // Shards touch different strides so their event streams differ
        // (a symmetric workload would hide ordering bugs).
        const std::size_t pages = 1_MiB / kPageSize;
        for (std::size_t i = 0; i < pages * 4; ++i) {
            const std::size_t page = (i * (s + 1) + epoch) % pages;
            sim.read(bases[s] + page * kPageSize);
        }
        return epoch < 5;
    });

    std::string fp;
    fp += "epochs=" + std::to_string(host.epochs());
    fp += " makespan=" + std::to_string(host.makespan());
    fp += " appOps=" + std::to_string(host.totalAppOps());
    fp += " events=" + std::to_string(host.events().size());
    for (const auto &ev : host.events()) {
        fp += "\n" + std::to_string(ev.time) + "/" +
              std::to_string(ev.shard) + "/" + std::to_string(ev.seq) +
              "/" + std::to_string(static_cast<int>(ev.kind)) + "/" +
              std::to_string(ev.vpn) + "/" + std::to_string(ev.arg);
    }
    for (const auto &[key, value] : host.mergedVmstat().snapshot())
        fp += "\n" + key + "=" + std::to_string(value);
    const Metrics merged = host.mergedMetrics();
    fp += "\naccesses=" + std::to_string(merged.totalAccesses());
    fp += " promotions=" + std::to_string(merged.totalPromotions());
    fp += " demotions=" + std::to_string(merged.totalDemotions());
    return fp;
}

TEST(ShardedSimulatorTest, WorkerCountNeverChangesResults)
{
    const std::string w1 = runFingerprint(1, 0);
    const std::string w4 = runFingerprint(4, 0);
    const std::string w8 = runFingerprint(8, 0);  // clamps to 4 shards
    EXPECT_EQ(w1, w4);
    EXPECT_EQ(w1, w8);
    // The run did real tiering work, or this test proves nothing.
    EXPECT_NE(w1.find("pgpromote_success"), std::string::npos);
}

TEST(ShardedSimulatorTest, WorkerCountNeverChangesBudgetedResults)
{
    const std::string w1 = runFingerprint(1, 8);
    const std::string w4 = runFingerprint(4, 8);
    EXPECT_EQ(w1, w4);
}

TEST(ShardedSimulatorTest, MergedEventsAreInSeniorityOrderPerEpoch)
{
    // Within one epoch's merge the stream is seniority-sorted; across
    // epochs, time can only move forward per shard, and the per-shard
    // (time, seq) subsequence must stay strictly increasing overall.
    MachineConfig whole;
    whole.nodes = {{TierKind::Dram, 1_MiB}, {TierKind::Pmem, 4_MiB}};
    ShardOptions opts;
    opts.shards = 2;
    opts.workers = 2;
    ShardedSimulator host(whole, opts);
    std::vector<Vaddr> bases;
    for (unsigned s = 0; s < host.shards(); ++s) {
        host.shard(s).setPolicy(policies::makePolicy("multiclock", {}));
        bases.push_back(ShardedAddressSpace::localVa(
            host.space().mmapOn(s, 512_KiB)));
    }
    host.run([&](Simulator &sim, unsigned s, std::uint64_t epoch) {
        const std::size_t pages = 512_KiB / kPageSize;
        for (std::size_t i = 0; i < pages * 3; ++i)
            sim.read(bases[s] + ((i + s) % pages) * kPageSize);
        return epoch < 3;
    });
    ASSERT_FALSE(host.events().empty());
    std::uint64_t lastSeq[2] = {0, 0};
    bool seen[2] = {false, false};
    for (const auto &ev : host.events()) {
        ASSERT_LT(ev.shard, 2u);
        if (seen[ev.shard]) {
            EXPECT_GT(ev.seq, lastSeq[ev.shard]);
        }
        lastSeq[ev.shard] = ev.seq;
        seen[ev.shard] = true;
    }
}

TEST(ShardedSimulatorTest, PromoteBudgetDefersDirectPromotions)
{
    // Drive promotePage() directly so the budget path is exercised
    // independent of any policy's promote-vs-exchange choice: each
    // shard demotes two resident pages to make DRAM headroom, then
    // attempts two promotions against an epoch grant of one.
    MachineConfig whole;
    whole.nodes = {{TierKind::Dram, 1_MiB}, {TierKind::Pmem, 4_MiB}};
    ShardOptions opts;
    opts.shards = 2;
    opts.epochPromoteBudget = 2;  // grant = max(1, 2/2) = 1 per shard

    ShardedSimulator host(whole, opts);
    std::vector<Vaddr> bases;
    for (unsigned s = 0; s < host.shards(); ++s) {
        host.shard(s).setPolicy(policies::makePolicy("static", {}));
        bases.push_back(ShardedAddressSpace::localVa(
            host.space().mmapOn(s, 1_MiB)));
    }
    host.run([&](Simulator &sim, unsigned s, std::uint64_t epoch) {
        const std::size_t pages = 1_MiB / kPageSize;
        if (epoch == 0) {
            for (std::size_t i = 0; i < pages; ++i)
                sim.read(bases[s] + i * kPageSize);
            return true;
        }
        std::vector<Page *> dram, pm;
        sim.space().forEachPage([&](Page *pg) {
            (pg->node() == 0 ? dram : pm).push_back(pg);
        });
        EXPECT_GE(dram.size(), 2u);
        for (int i = 0; i < 2; ++i) {
            sim.policy().onPageFreed(dram[i]);  // isolate off the LRU
            EXPECT_TRUE(sim.demotePage(
                dram[i], Simulator::ChargeMode::Background));
        }
        pm.clear();
        sim.space().forEachPage([&](Page *pg) {
            if (pg->node() != 0)
                pm.push_back(pg);
        });
        EXPECT_GE(pm.size(), 2u);
        sim.policy().onPageFreed(pm[0]);
        sim.policy().onPageFreed(pm[1]);
        EXPECT_TRUE(sim.promotePage(
            pm[0], Simulator::ChargeMode::Background));
        EXPECT_FALSE(sim.promotePage(  // grant exhausted: deferred
            pm[1], Simulator::ChargeMode::Background));
        return false;
    });

    const auto snapshot = host.mergedVmstat().snapshot();
    EXPECT_EQ(snapshot.at("pgpromote_deferred"), 2u);  // one per shard
    // The merged stream carries the demotions and the one granted
    // promotion per shard, never the deferred attempts.
    std::size_t promotes = 0;
    for (const auto &ev : host.events()) {
        if (ev.kind == ShardEventKind::Promote)
            ++promotes;
    }
    EXPECT_EQ(promotes, 2u);
}

TEST(ShardedSimulatorTest, CoordinatorCountsMergesAndEpochs)
{
    MachineConfig whole;
    whole.nodes = {{TierKind::Dram, 1_MiB}, {TierKind::Pmem, 2_MiB}};
    ShardOptions opts;
    opts.shards = 2;
    ShardedSimulator host(whole, opts);
    for (unsigned s = 0; s < host.shards(); ++s)
        host.shard(s).setPolicy(policies::makePolicy("multiclock", {}));
    std::vector<Vaddr> bases;
    for (unsigned s = 0; s < host.shards(); ++s)
        bases.push_back(ShardedAddressSpace::localVa(
            host.space().mmapOn(s, 256_KiB)));
    host.run([&](Simulator &sim, unsigned s, std::uint64_t epoch) {
        sim.read(bases[s]);
        return epoch < 2;
    });
    EXPECT_EQ(host.epochs(), 3u);
    const auto snapshot = host.mergedVmstat().snapshot();
    // One shard_epoch per (shard, epoch); one pgshard_merge event total
    // count accumulated at the barriers (counted even when zero events
    // merged — the *merge* happened).
    EXPECT_EQ(snapshot.at("shard_epoch"), 6u);
    ASSERT_TRUE(snapshot.count("pgshard_merge"));
    EXPECT_EQ(snapshot.at("pgshard_merge"),
              static_cast<std::uint64_t>(host.events().size()));
    // Coordinator trace carries one shard_merge record per epoch.
    std::size_t merges = 0;
    for (const auto &ev : host.trace().events()) {
        if (ev.type == stats::TraceEventType::ShardMerge)
            ++merges;
    }
    EXPECT_EQ(merges, 3u);
}

// --- Harness family ------------------------------------------------------

/** Tiny context so the harness scenarios stay fast in this suite. */
harness::RunContext
tinyShardContext(unsigned workers)
{
    harness::RunContext ctx = harness::goldenContext();
    ctx.shards = workers;
    ctx.params["records"] = 600;
    ctx.params["epochs"] = 2;
    ctx.params["ops"] = 1500;
    return ctx;
}

harness::MetricMap
runScenarioSummary(const std::string &name,
                   const harness::RunContext &ctx)
{
    const harness::Scenario *sc = harness::findScenario(name);
    EXPECT_NE(sc, nullptr) << name;
    harness::RunnerOptions opts;
    opts.jobs = 1;
    opts.context = ctx;
    opts.writeArtifacts = false;
    opts.writeManifest = false;
    opts.quiet = true;
    const auto report = harness::runScenarios({sc}, opts);
    EXPECT_TRUE(report.clean());
    return report.results.front().output.summary;
}

TEST(ShardScenarioTest, WorkerWidthsProduceIdenticalSummaries)
{
    // Full golden profile (not the tiny context): the workload must
    // overflow each shard's DRAM slice or there are no promotions and
    // the equality proves nothing.
    harness::RunContext w1ctx = harness::goldenContext();
    w1ctx.shards = 1;
    harness::RunContext w8ctx = harness::goldenContext();
    w8ctx.shards = 8;
    const auto w1 = runScenarioSummary("shard_bigmem", w1ctx);
    const auto w8 = runScenarioSummary("shard_bigmem", w8ctx);
    EXPECT_EQ(w1, w8);
    EXPECT_GT(w1.at("multiclock.promotions"), 0.0);
}

TEST(ShardScenarioTest, PinnedWidthVariantsEqualTheBaseScenario)
{
    const auto base = runScenarioSummary("shard_bigmem",
                                         tinyShardContext(1));
    const auto x4 = runScenarioSummary("shard_bigmem_x4",
                                       tinyShardContext(1));
    const auto x8 = runScenarioSummary("shard_bigmem_x8",
                                       tinyShardContext(1));
    EXPECT_EQ(base, x4);
    EXPECT_EQ(base, x8);
}

TEST(ShardScenarioTest, BudgetScenarioDefersPromotions)
{
    harness::RunContext ctx = harness::goldenContext();
    ctx.shards = 4;
    const auto summary =
        runScenarioSummary("shard_bigmem_budget", ctx);
    EXPECT_GT(summary.at("multiclock.deferred"), 0.0);
    EXPECT_EQ(summary.at("static.deferred"), 0.0);
}

}  // namespace
