/**
 * @file
 * Unit tests for the base module: RNG, intrusive list, stats, CSV,
 * slab arena, flat map.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <vector>

#include "base/arena.hh"
#include "base/csv.hh"
#include "base/flat_map.hh"
#include "base/intrusive_list.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "base/units.hh"

namespace mclock {
namespace {

// --- Types / units ---------------------------------------------------------

TEST(TypesTest, PageArithmetic)
{
    EXPECT_EQ(kPageSize, 4096u);
    EXPECT_EQ(pageNumOf(0), 0u);
    EXPECT_EQ(pageNumOf(4095), 0u);
    EXPECT_EQ(pageNumOf(4096), 1u);
    EXPECT_EQ(pageBaseOf(4097), 4096u);
    EXPECT_EQ(pageBaseOf(8191), 4096u);
}

TEST(UnitsTest, SizeLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(UnitsTest, TimeLiterals)
{
    EXPECT_EQ(1_us, 1000u);
    EXPECT_EQ(1_ms, 1000000u);
    EXPECT_EQ(2_s, 2000000000u);
}

TEST(TypesTest, TierRankAliases)
{
    // The legacy two-tier names are fixed ranks in the ordered topology.
    EXPECT_EQ(TierKind::Dram, 0);
    EXPECT_EQ(TierKind::Pmem, 1);
    EXPECT_LT(TierKind::Dram, TierKind::Pmem);
}

// --- Rng ------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next64() == b.next64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RngTest, RangeIsBounded)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextRange(17), 17u);
}

TEST(RngTest, RangeCoversAllValues)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextRange(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.nextBool(0.3))
            ++hits;
    }
    const double rate = static_cast<double>(hits) / n;
    EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(RngTest, ForkIsIndependent)
{
    Rng a(5);
    Rng child = a.fork();
    // The child stream must not equal the parent's continuation.
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next64() == child.next64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

// --- Intrusive list --------------------------------------------------------

struct ListItem
{
    ListItem() = default;
    explicit ListItem(int v) : value(v) {}
    int value = 0;
    ListHook hook;
};

using ItemList = IntrusiveList<ListItem, &ListItem::hook>;

TEST(IntrusiveListTest, StartsEmpty)
{
    ItemList list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.size(), 0u);
    EXPECT_EQ(list.front(), nullptr);
    EXPECT_EQ(list.back(), nullptr);
    EXPECT_EQ(list.popFront(), nullptr);
}

TEST(IntrusiveListTest, PushFrontOrdering)
{
    ItemList list;
    ListItem a{1}, b{2}, c{3};
    list.pushFront(&a);
    list.pushFront(&b);
    list.pushFront(&c);
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(list.front(), &c);
    EXPECT_EQ(list.back(), &a);
}

TEST(IntrusiveListTest, PushBackOrdering)
{
    ItemList list;
    ListItem a{1}, b{2};
    list.pushBack(&a);
    list.pushBack(&b);
    EXPECT_EQ(list.front(), &a);
    EXPECT_EQ(list.back(), &b);
}

TEST(IntrusiveListTest, EraseMiddle)
{
    ItemList list;
    ListItem a, b, c;
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    list.erase(&b);
    EXPECT_EQ(list.size(), 2u);
    EXPECT_EQ(list.front(), &a);
    EXPECT_EQ(list.back(), &c);
    EXPECT_FALSE(b.hook.linked());
}

TEST(IntrusiveListTest, PopBackReturnsTail)
{
    ItemList list;
    ListItem a, b;
    list.pushBack(&a);
    list.pushBack(&b);
    EXPECT_EQ(list.popBack(), &b);
    EXPECT_EQ(list.popBack(), &a);
    EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, RotateBackToFront)
{
    ItemList list;
    ListItem a, b, c;
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    list.rotateBackToFront();
    EXPECT_EQ(list.front(), &c);
    EXPECT_EQ(list.back(), &b);
    EXPECT_EQ(list.size(), 3u);
}

TEST(IntrusiveListTest, IterationVisitsAllInOrder)
{
    ItemList list;
    ListItem items[5];
    for (int i = 0; i < 5; ++i) {
        items[i].value = i;
        list.pushBack(&items[i]);
    }
    std::vector<int> seen;
    for (ListItem *it : list)
        seen.push_back(it->value);
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(IntrusiveListTest, ReinsertAfterErase)
{
    ItemList list;
    ListItem a;
    list.pushBack(&a);
    list.erase(&a);
    list.pushFront(&a);
    EXPECT_EQ(list.size(), 1u);
    EXPECT_EQ(list.front(), &a);
}

// --- Summary ----------------------------------------------------------------

TEST(SummaryTest, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, BasicMoments)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(SummaryTest, MergeMatchesCombined)
{
    Summary a, b, combined;
    for (int i = 0; i < 50; ++i) {
        a.add(i);
        combined.add(i);
    }
    for (int i = 50; i < 100; ++i) {
        b.add(i * 2);
        combined.add(i * 2);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-6);
}

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.count(), 6u);
}

TEST(HistogramTest, QuantileApproximation)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

// --- StatRegistry -------------------------------------------------------------

TEST(StatRegistryTest, IncrementAndGet)
{
    StatRegistry reg;
    EXPECT_EQ(reg.get("x"), 0u);
    reg.inc("x");
    reg.inc("x", 4);
    EXPECT_EQ(reg.get("x"), 5u);
    reg.set("x", 2);
    EXPECT_EQ(reg.get("x"), 2u);
}

TEST(StatRegistryTest, DumpSortedWithPrefix)
{
    StatRegistry reg;
    reg.inc("beta", 2);
    reg.inc("alpha", 1);
    std::ostringstream os;
    reg.dump(os, "p.");
    EXPECT_EQ(os.str(), "p.alpha 1\np.beta 2\n");
}

// --- CsvWriter ----------------------------------------------------------------

TEST(CsvWriterTest, PlainRow)
{
    CsvWriter csv;
    csv.writeRow(std::vector<std::string>{"a", "b", "c"});
    EXPECT_EQ(csv.str(), "a,b,c\n");
}

TEST(CsvWriterTest, EscapesSpecialCharacters)
{
    CsvWriter csv;
    csv.writeRow(std::vector<std::string>{"a,b", "q\"q", "line\nbreak"});
    EXPECT_EQ(csv.str(), "\"a,b\",\"q\"\"q\",\"line\nbreak\"\n");
}

TEST(CsvWriterTest, DoubleRowPrecision)
{
    CsvWriter csv;
    csv.writeRow(std::vector<double>{1.5, 2.25}, 2);
    EXPECT_EQ(csv.str(), "1.50,2.25\n");
}

// --- SlabArena --------------------------------------------------------------

/** Arena element with observable construction/destruction. */
struct ArenaProbe
{
    static inline int liveProbes = 0;
    std::uint64_t value;

    explicit ArenaProbe(std::uint64_t v) : value(v) { ++liveProbes; }
    ~ArenaProbe() { --liveProbes; }
};

TEST(SlabArenaTest, CreateForwardsArgsAndCountsLive)
{
    SlabArena<ArenaProbe> arena(8);
    ASSERT_EQ(ArenaProbe::liveProbes, 0);
    ArenaProbe *a = arena.create(7u);
    ArenaProbe *b = arena.create(11u);
    EXPECT_EQ(a->value, 7u);
    EXPECT_EQ(b->value, 11u);
    EXPECT_EQ(arena.liveObjects(), 2u);
    EXPECT_EQ(ArenaProbe::liveProbes, 2);
    arena.destroy(a);
    arena.destroy(b);
    EXPECT_EQ(arena.liveObjects(), 0u);
    EXPECT_EQ(ArenaProbe::liveProbes, 0);
}

TEST(SlabArenaTest, AddressesStableAcrossChunkGrowth)
{
    // Tiny chunks force many growths; earlier objects must not move.
    SlabArena<std::uint64_t> arena(4);
    std::vector<std::uint64_t *> ptrs;
    for (std::uint64_t i = 0; i < 100; ++i)
        ptrs.push_back(arena.create(i));
    EXPECT_EQ(arena.numChunks(), 25u);
    EXPECT_EQ(arena.capacity(), 100u);
    std::set<std::uint64_t *> unique(ptrs.begin(), ptrs.end());
    EXPECT_EQ(unique.size(), ptrs.size());
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(*ptrs[i], i);
}

TEST(SlabArenaTest, SequentialCreationsAreContiguous)
{
    // The point of the arena: pages created back to back sit next to
    // each other, not wherever the heap scattered them.
    SlabArena<std::uint64_t> arena(64);
    std::uint64_t *first = arena.create(0u);
    for (std::uint64_t i = 1; i < 64; ++i)
        EXPECT_EQ(arena.create(i), first + i);
}

TEST(SlabArenaTest, RecyclingIsLifo)
{
    SlabArena<std::uint64_t> arena(8);
    std::uint64_t *a = arena.create(1u);
    std::uint64_t *b = arena.create(2u);
    arena.destroy(a);
    arena.destroy(b);
    // Most recently destroyed slot comes back first.
    EXPECT_EQ(arena.create(3u), b);
    EXPECT_EQ(arena.create(4u), a);
    EXPECT_EQ(arena.capacity(), 8u);  // no new chunk was needed
}

TEST(SlabArenaTest, ChurnPropertyAgainstLiveSet)
{
    // Random create/destroy churn: every live object keeps its value
    // and its address, capacity only grows, live count always matches.
    SlabArena<std::uint64_t> arena(16);
    Rng rng(123);
    std::vector<std::pair<std::uint64_t *, std::uint64_t>> live;
    std::uint64_t nextValue = 0;
    for (int step = 0; step < 5000; ++step) {
        if (live.empty() || rng.nextBool(0.6)) {
            const std::uint64_t v = nextValue++;
            live.emplace_back(arena.create(v), v);
        } else {
            const std::size_t i = static_cast<std::size_t>(
                rng.nextRange(live.size()));
            EXPECT_EQ(*live[i].first, live[i].second);
            arena.destroy(live[i].first);
            live[i] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(arena.liveObjects(), live.size());
        ASSERT_GE(arena.capacity(), live.size());
    }
    for (const auto &[ptr, v] : live)
        EXPECT_EQ(*ptr, v);
}

// --- FlatMap64 --------------------------------------------------------------

TEST(FlatMap64Test, EmplaceFindErase)
{
    FlatMap64<int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);

    auto [slot, inserted] = map.emplace(42, 7);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*slot, 7);
    EXPECT_EQ(map.size(), 1u);

    // Duplicate emplace finds the existing entry, does not overwrite.
    auto [again, insertedAgain] = map.emplace(42, 99);
    EXPECT_FALSE(insertedAgain);
    EXPECT_EQ(*again, 7);
    EXPECT_EQ(map.size(), 1u);

    ASSERT_NE(map.find(42), nullptr);
    EXPECT_EQ(*map.find(42), 7);
    EXPECT_TRUE(map.erase(42));
    EXPECT_FALSE(map.erase(42));
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_TRUE(map.empty());
}

TEST(FlatMap64Test, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(FlatMap64<int>().capacity(), 64u);
    EXPECT_EQ(FlatMap64<int>(1).capacity(), 16u);  // floor
    EXPECT_EQ(FlatMap64<int>(100).capacity(), 128u);
    EXPECT_EQ(FlatMap64<int>(128).capacity(), 128u);
}

TEST(FlatMap64Test, GrowthPreservesAllEntries)
{
    FlatMap64<std::uint64_t> map(16);
    for (std::uint64_t k = 0; k < 10000; ++k)
        ASSERT_TRUE(map.emplace(k * 0x10001, k).second);
    EXPECT_EQ(map.size(), 10000u);
    EXPECT_EQ(map.capacity() & (map.capacity() - 1), 0u);
    for (std::uint64_t k = 0; k < 10000; ++k) {
        auto *v = map.find(k * 0x10001);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, k);
    }
}

TEST(FlatMap64Test, TombstoneChurnStaysBounded)
{
    // Insert/erase the same small working set far more times than the
    // table has slots: tombstone purging must keep lookups terminating
    // and the capacity from growing without bound.
    FlatMap64<int> map(16);
    for (int round = 0; round < 10000; ++round) {
        const std::uint64_t k = 1000 + round % 8;
        map.emplace(k, round);
        ASSERT_TRUE(map.erase(k));
    }
    EXPECT_TRUE(map.empty());
    EXPECT_LE(map.capacity(), 64u);
}

TEST(FlatMap64Test, ChurnPropertyAgainstUnorderedMap)
{
    // Reference-model property test: a random op stream applied to both
    // FlatMap64 and std::unordered_map must agree on every result.
    FlatMap64<std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng(2026);
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t key = rng.nextRange(512);
        const double op = rng.nextDouble();
        if (op < 0.5) {
            const auto got = map.emplace(key, static_cast<std::uint64_t>(step));
            const auto want =
                ref.emplace(key, static_cast<std::uint64_t>(step));
            ASSERT_EQ(got.second, want.second);
            ASSERT_EQ(*got.first, want.first->second);
        } else if (op < 0.8) {
            ASSERT_EQ(map.erase(key), ref.erase(key) > 0);
        } else {
            const auto *got = map.find(key);
            const auto it = ref.find(key);
            ASSERT_EQ(got != nullptr, it != ref.end());
            if (got)
                ASSERT_EQ(*got, it->second);
        }
        ASSERT_EQ(map.size(), ref.size());
    }
    for (const auto &[k, v] : ref) {
        const auto *got = map.find(k);
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, v);
    }
}

}  // namespace
}  // namespace mclock
