/**
 * @file
 * Unit tests for the base module: RNG, intrusive list, stats, CSV.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/csv.hh"
#include "base/intrusive_list.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "base/units.hh"

namespace mclock {
namespace {

// --- Types / units ---------------------------------------------------------

TEST(TypesTest, PageArithmetic)
{
    EXPECT_EQ(kPageSize, 4096u);
    EXPECT_EQ(pageNumOf(0), 0u);
    EXPECT_EQ(pageNumOf(4095), 0u);
    EXPECT_EQ(pageNumOf(4096), 1u);
    EXPECT_EQ(pageBaseOf(4097), 4096u);
    EXPECT_EQ(pageBaseOf(8191), 4096u);
}

TEST(UnitsTest, SizeLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(UnitsTest, TimeLiterals)
{
    EXPECT_EQ(1_us, 1000u);
    EXPECT_EQ(1_ms, 1000000u);
    EXPECT_EQ(2_s, 2000000000u);
}

TEST(TypesTest, TierRankAliases)
{
    // The legacy two-tier names are fixed ranks in the ordered topology.
    EXPECT_EQ(TierKind::Dram, 0);
    EXPECT_EQ(TierKind::Pmem, 1);
    EXPECT_LT(TierKind::Dram, TierKind::Pmem);
}

// --- Rng ------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next64() == b.next64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RngTest, RangeIsBounded)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextRange(17), 17u);
}

TEST(RngTest, RangeCoversAllValues)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextRange(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.nextBool(0.3))
            ++hits;
    }
    const double rate = static_cast<double>(hits) / n;
    EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(RngTest, ForkIsIndependent)
{
    Rng a(5);
    Rng child = a.fork();
    // The child stream must not equal the parent's continuation.
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next64() == child.next64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

// --- Intrusive list --------------------------------------------------------

struct ListItem
{
    ListItem() = default;
    explicit ListItem(int v) : value(v) {}
    int value = 0;
    ListHook hook;
};

using ItemList = IntrusiveList<ListItem, &ListItem::hook>;

TEST(IntrusiveListTest, StartsEmpty)
{
    ItemList list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.size(), 0u);
    EXPECT_EQ(list.front(), nullptr);
    EXPECT_EQ(list.back(), nullptr);
    EXPECT_EQ(list.popFront(), nullptr);
}

TEST(IntrusiveListTest, PushFrontOrdering)
{
    ItemList list;
    ListItem a{1}, b{2}, c{3};
    list.pushFront(&a);
    list.pushFront(&b);
    list.pushFront(&c);
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(list.front(), &c);
    EXPECT_EQ(list.back(), &a);
}

TEST(IntrusiveListTest, PushBackOrdering)
{
    ItemList list;
    ListItem a{1}, b{2};
    list.pushBack(&a);
    list.pushBack(&b);
    EXPECT_EQ(list.front(), &a);
    EXPECT_EQ(list.back(), &b);
}

TEST(IntrusiveListTest, EraseMiddle)
{
    ItemList list;
    ListItem a, b, c;
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    list.erase(&b);
    EXPECT_EQ(list.size(), 2u);
    EXPECT_EQ(list.front(), &a);
    EXPECT_EQ(list.back(), &c);
    EXPECT_FALSE(b.hook.linked());
}

TEST(IntrusiveListTest, PopBackReturnsTail)
{
    ItemList list;
    ListItem a, b;
    list.pushBack(&a);
    list.pushBack(&b);
    EXPECT_EQ(list.popBack(), &b);
    EXPECT_EQ(list.popBack(), &a);
    EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, RotateBackToFront)
{
    ItemList list;
    ListItem a, b, c;
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    list.rotateBackToFront();
    EXPECT_EQ(list.front(), &c);
    EXPECT_EQ(list.back(), &b);
    EXPECT_EQ(list.size(), 3u);
}

TEST(IntrusiveListTest, IterationVisitsAllInOrder)
{
    ItemList list;
    ListItem items[5];
    for (int i = 0; i < 5; ++i) {
        items[i].value = i;
        list.pushBack(&items[i]);
    }
    std::vector<int> seen;
    for (ListItem *it : list)
        seen.push_back(it->value);
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(IntrusiveListTest, ReinsertAfterErase)
{
    ItemList list;
    ListItem a;
    list.pushBack(&a);
    list.erase(&a);
    list.pushFront(&a);
    EXPECT_EQ(list.size(), 1u);
    EXPECT_EQ(list.front(), &a);
}

// --- Summary ----------------------------------------------------------------

TEST(SummaryTest, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, BasicMoments)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(SummaryTest, MergeMatchesCombined)
{
    Summary a, b, combined;
    for (int i = 0; i < 50; ++i) {
        a.add(i);
        combined.add(i);
    }
    for (int i = 50; i < 100; ++i) {
        b.add(i * 2);
        combined.add(i * 2);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-6);
}

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.count(), 6u);
}

TEST(HistogramTest, QuantileApproximation)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

// --- StatRegistry -------------------------------------------------------------

TEST(StatRegistryTest, IncrementAndGet)
{
    StatRegistry reg;
    EXPECT_EQ(reg.get("x"), 0u);
    reg.inc("x");
    reg.inc("x", 4);
    EXPECT_EQ(reg.get("x"), 5u);
    reg.set("x", 2);
    EXPECT_EQ(reg.get("x"), 2u);
}

TEST(StatRegistryTest, DumpSortedWithPrefix)
{
    StatRegistry reg;
    reg.inc("beta", 2);
    reg.inc("alpha", 1);
    std::ostringstream os;
    reg.dump(os, "p.");
    EXPECT_EQ(os.str(), "p.alpha 1\np.beta 2\n");
}

// --- CsvWriter ----------------------------------------------------------------

TEST(CsvWriterTest, PlainRow)
{
    CsvWriter csv;
    csv.writeRow(std::vector<std::string>{"a", "b", "c"});
    EXPECT_EQ(csv.str(), "a,b,c\n");
}

TEST(CsvWriterTest, EscapesSpecialCharacters)
{
    CsvWriter csv;
    csv.writeRow(std::vector<std::string>{"a,b", "q\"q", "line\nbreak"});
    EXPECT_EQ(csv.str(), "\"a,b\",\"q\"\"q\",\"line\nbreak\"\n");
}

TEST(CsvWriterTest, DoubleRowPrecision)
{
    CsvWriter csv;
    csv.writeRow(std::vector<double>{1.5, 2.25}, 2);
    EXPECT_EQ(csv.str(), "1.50,2.25\n");
}

}  // namespace
}  // namespace mclock
