/**
 * @file
 * Contract tests for the wall-clock benchmark mode (--bench).
 *
 * Benchmarking must be observation-only: a scenario run under
 * runBenchmark() produces exactly the summary a plain runScenarios()
 * invocation produces, so --bench can never perturb the simulated
 * results it is timing. The other half of the contract is the
 * BENCH_<n>.json document shape: the schema these tests pin is what
 * the CI smoke job and the checked-in BENCH_7.json rely on.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "harness/benchmark.hh"
#include "harness/golden.hh"
#include "harness/profiles.hh"
#include "harness/runner.hh"

using namespace mclock;
using namespace mclock::harness;

namespace {

/** Golden-profile context with a small op count: fast but nontrivial. */
RunContext
smallContext()
{
    RunContext ctx = goldenContext();
    ctx.params["ops"] = 20000;
    ctx.params["seconds"] = 6;
    ctx.params["trials"] = 1;
    return ctx;
}

BenchOptions
smallBenchOptions(unsigned repeat, unsigned warmup)
{
    BenchOptions opts;
    opts.repeat = repeat;
    opts.warmup = warmup;
    opts.jobs = 1;
    opts.context = smallContext();
    return opts;
}

/** Selection for one scenario by exact name. */
std::vector<const Scenario *>
selectOne(const std::string &name)
{
    std::vector<const Scenario *> out;
    for (const Scenario *sc : filterScenarios(name)) {
        if (sc->name == name)
            out.push_back(sc);
    }
    return out;
}

std::string
writeTempFile(const std::string &name, const std::string &contents)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream f(path);
    f << contents;
    return path;
}

TEST(BenchRunTest, RepeatAndWarmupCountsHonoured)
{
    const auto report =
        runBenchmark(selectOne("fig02"), smallBenchOptions(3, 1));
    ASSERT_EQ(report.scenarios.size(), 1u);
    const BenchScenario &s = report.scenarios.front();
    EXPECT_EQ(s.name, "fig02");
    EXPECT_EQ(report.repeat, 3u);
    EXPECT_EQ(report.warmup, 1u);
    EXPECT_EQ(s.wallSeconds.size(), 3u);
    EXPECT_TRUE(s.clean);
    EXPECT_GT(s.appOps, 0u);
    EXPECT_GT(s.simAccesses, 0u);
    EXPECT_GT(s.bestSeconds(), 0.0);
    EXPECT_LE(s.bestSeconds(), s.meanSeconds());
}

TEST(BenchRunTest, BenchmarkingDoesNotPerturbSimulatedResults)
{
    const auto report =
        runBenchmark(selectOne("fig02"), smallBenchOptions(2, 0));
    ASSERT_EQ(report.scenarios.size(), 1u);

    RunnerOptions ro;
    ro.jobs = 1;
    ro.quiet = true;
    ro.writeArtifacts = false;
    ro.context = smallContext();
    const ScenarioResult plain = runScenario("fig02", ro);

    // Identical summary metrics and identical work counters: timing a
    // scenario must not change what it simulates.
    EXPECT_EQ(report.scenarios.front().summary, plain.output.summary);
    EXPECT_EQ(report.scenarios.front().appOps, plain.appOps);
    EXPECT_EQ(report.scenarios.front().simAccesses, plain.simAccesses);
    EXPECT_EQ(report.scenarios.front().units, plain.units);
}

TEST(BenchJsonTest, DocumentSchema)
{
    BenchOptions opts = smallBenchOptions(2, 0);
    opts.benchId = "BENCH_TEST";
    const auto report = runBenchmark(selectOne("fig02"), opts);
    const Json doc = benchReportToJson(report, opts);

    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc["bench_id"].asString(), "BENCH_TEST");
    EXPECT_EQ(doc["schema"].asString(), "mclock-bench-v1");
    EXPECT_TRUE(doc["git_sha"].isString());
    EXPECT_EQ(doc["jobs"].asNumber(), 1.0);
    EXPECT_EQ(doc["repeat"].asNumber(), 2.0);
    EXPECT_EQ(doc["warmup"].asNumber(), 0.0);

    const Json &sc = doc["scenarios"]["fig02"];
    ASSERT_TRUE(sc.isObject());
    for (const char *key :
         {"units", "app_ops", "sim_accesses", "best_seconds",
          "mean_seconds", "app_ops_per_sec", "sim_accesses_per_sec"}) {
        EXPECT_TRUE(sc[key].isNumber()) << key;
    }
    ASSERT_TRUE(sc["wall_seconds"].isArray());
    EXPECT_EQ(sc["wall_seconds"].asArray().size(), 2u);

    const Json &suite = doc["suite"];
    ASSERT_TRUE(suite.isObject());
    EXPECT_EQ(suite["scenarios"].asNumber(), 1.0);
    for (const char *key :
         {"total_app_ops", "total_sim_accesses", "total_best_seconds",
          "app_ops_per_sec", "sim_accesses_per_sec"}) {
        EXPECT_TRUE(suite[key].isNumber()) << key;
    }

    // No baseline given: neither the baseline nor the speedup appears.
    EXPECT_FALSE(doc.contains("baseline"));
    EXPECT_FALSE(doc.contains("speedup_vs_baseline"));

    // The document round-trips through the serializer.
    std::string err;
    const Json parsed = Json::parse(doc.dump(2), &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(parsed.dump(), doc.dump());
}

TEST(BenchRunTest, MultiJobRequestDowngradesToOne)
{
    // Benchmark repeats are timed one scenario at a time; any --jobs
    // other than 1 would contend the timing window and is downgraded
    // (with a warning on stderr) rather than honoured.
    BenchOptions opts = smallBenchOptions(1, 0);
    opts.jobs = 4;
    const auto report = runBenchmark(selectOne("fig02"), opts);
    EXPECT_EQ(report.jobs, 1u);
    const Json doc = benchReportToJson(report, opts);
    EXPECT_EQ(doc["jobs"].asNumber(), 1.0);
}

TEST(BenchJsonTest, FullReportServesAsBaseline)
{
    // A previous BENCH_<n>.json (scenario entries are objects with
    // "best_seconds") must work directly as --bench-baseline, the way
    // BENCH_8 builds on BENCH_7.
    BenchOptions opts = smallBenchOptions(1, 0);
    const auto report = runBenchmark(selectOne("fig02"), opts);
    ASSERT_EQ(report.scenarios.size(), 1u);
    const double best = report.scenarios.front().bestSeconds();
    ASSERT_GT(best, 0.0);

    Json entry{Json::Object{}};
    entry.set("best_seconds", best * 4.0);
    entry.set("mean_seconds", best * 5.0);
    Json scenarios{Json::Object{}};
    scenarios.set("fig02", std::move(entry));
    Json baseline{Json::Object{}};
    baseline.set("bench_id", "BENCH_PREV");
    baseline.set("scenarios", std::move(scenarios));
    opts.baselinePath =
        writeTempFile("bench_full_report.json", baseline.dump(2));

    const Json doc = benchReportToJson(report, opts);
    ASSERT_TRUE(doc["speedup_vs_baseline"].isNumber());
    EXPECT_NEAR(doc["speedup_vs_baseline"].asNumber(), 4.0, 1e-9);
}

TEST(BenchJsonTest, BaselineEmbeddingAndSpeedup)
{
    BenchOptions opts = smallBenchOptions(1, 0);
    const auto report = runBenchmark(selectOne("fig02"), opts);
    ASSERT_EQ(report.scenarios.size(), 1u);
    const double best = report.scenarios.front().bestSeconds();
    ASSERT_GT(best, 0.0);

    // Baseline claims the scenario used to take 10x longer.
    const double baseSeconds = best * 10.0;
    Json scenarios{Json::Object{}};
    scenarios.set("fig02", baseSeconds);
    Json baseline{Json::Object{}};
    baseline.set("label", "synthetic baseline");
    baseline.set("scenarios", std::move(scenarios));
    opts.baselinePath =
        writeTempFile("bench_baseline.json", baseline.dump(2));

    const Json doc = benchReportToJson(report, opts);
    ASSERT_TRUE(doc["baseline"].isObject());
    EXPECT_EQ(doc["baseline"]["label"].asString(), "synthetic baseline");
    ASSERT_TRUE(doc["speedup_vs_baseline"].isNumber());
    EXPECT_NEAR(doc["speedup_vs_baseline"].asNumber(),
                baseSeconds / best, 1e-9);
}

TEST(BenchJsonTest, BaselineWithoutOverlapEmitsExplicitNull)
{
    BenchOptions opts = smallBenchOptions(1, 0);
    const auto report = runBenchmark(selectOne("fig02"), opts);

    Json scenarios{Json::Object{}};
    scenarios.set("some_other_scenario", 1.0);
    Json baseline{Json::Object{}};
    baseline.set("scenarios", std::move(scenarios));
    opts.baselinePath =
        writeTempFile("bench_baseline_disjoint.json", baseline.dump());

    const Json doc = benchReportToJson(report, opts);
    // The baseline still embeds (it documents what was compared
    // against), but no like-for-like ratio can be claimed: the key
    // must be present as an explicit null — never NaN from a 0/0
    // division, and never a silently missing key a dashboard would
    // misread as "no baseline configured".
    EXPECT_TRUE(doc["baseline"].isObject());
    ASSERT_TRUE(doc.contains("speedup_vs_baseline"));
    EXPECT_TRUE(doc["speedup_vs_baseline"].isNull());
}

TEST(BenchJsonTest, LoadBaselineRejectsBadDocuments)
{
    EXPECT_TRUE(loadBenchBaseline("/no/such/path.json").isNull());
    EXPECT_TRUE(
        loadBenchBaseline(writeTempFile("bench_bad.json", "not json{"))
            .isNull());
    EXPECT_TRUE(
        loadBenchBaseline(writeTempFile("bench_arr.json", "[1,2]"))
            .isNull());
    const Json ok = loadBenchBaseline(
        writeTempFile("bench_ok.json", "{\"scenarios\":{}}"));
    EXPECT_TRUE(ok.isObject());
}

TEST(BenchJsonTest, CheckedInSeedBaselineParses)
{
    // The repo's recorded pre-overhaul baseline must stay loadable:
    // BENCH_7.json's speedup claim is computed against it.
    const Json doc =
        loadBenchBaseline(std::string(MCLOCK_SOURCE_DIR) +
                          "/bench/baseline_seed.json");
    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc["scenarios"].isObject());
    EXPECT_GE(doc["scenarios"].asObject().size(), 19u);
    for (const auto &kv : doc["scenarios"].asObject())
        EXPECT_TRUE(kv.second.isNumber()) << kv.first;
}

}  // namespace
