/**
 * @file
 * Golden-run regression suite.
 *
 * Re-runs every golden-eligible scenario at its pinned seed and
 * reduced-scale profile and compares the full metric summary against
 * the fixtures in tests/golden/. Any unintended behaviour change in
 * the PFRA machinery, a policy, a workload generator, or the metrics
 * layer shows up here as an out-of-tolerance, missing, or unexpected
 * metric.
 *
 * After an INTENDED behaviour change, regenerate with
 *     mclock_bench --update-golden
 * review the fixture diff, and commit it together with the change
 * (see README "Golden-run regression").
 */

#include <gtest/gtest.h>

#include "harness/golden.hh"
#include "harness/runner.hh"

using namespace mclock;
using namespace mclock::harness;

namespace {

class GoldenScenario : public ::testing::TestWithParam<std::string>
{};

TEST_P(GoldenScenario, MatchesFixture)
{
    const std::string name = GetParam();

    GoldenFile golden;
    std::string err;
    ASSERT_TRUE(loadGolden(goldenPath(defaultGoldenDir(), name),
                           golden, &err))
        << err << "\n(generate fixtures with: mclock_bench "
        << "--update-golden)";
    EXPECT_EQ(golden.scenario, name);

    RunnerOptions opts;
    opts.jobs = 4;
    opts.quiet = true;
    opts.writeArtifacts = false;
    opts.context = goldenContext();
    const auto result = runScenario(name, opts);

    EXPECT_TRUE(result.output.violations.empty())
        << result.output.violations.front();

    const auto diffs = compareGolden(golden, result.output.summary);
    for (const auto &d : diffs)
        ADD_FAILURE() << name << ": " << d;
    if (!diffs.empty()) {
        ADD_FAILURE()
            << "golden mismatch — if this change is intended, run "
               "`mclock_bench --update-golden`, review the diff of "
               "tests/golden/, and commit it with your change";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllGoldenScenarios, GoldenScenario,
    ::testing::ValuesIn(goldenScenarioNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

}  // namespace
