/**
 * @file
 * Unit tests for the workload substrates: distributions, KV store,
 * YCSB driver, synthetic profiles, instrumented arrays.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "base/units.hh"
#include "policies/static_tiering.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "workloads/instrumented_array.hh"
#include "workloads/kvstore.hh"
#include "workloads/synthetic.hh"
#include "workloads/ycsb.hh"
#include "workloads/zipf.hh"

namespace mclock {
namespace workloads {
namespace {

std::unique_ptr<sim::Simulator>
makeSim()
{
    auto sim = std::make_unique<sim::Simulator>(sim::tinyTestMachine());
    sim->setPolicy(std::make_unique<policies::StaticTieringPolicy>());
    return sim;
}

// --- Zipfian generators -----------------------------------------------------

TEST(ZipfTest, RanksAreBounded)
{
    Rng rng(1);
    ZipfianGenerator zipf(1000);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.next(rng), 1000u);
}

TEST(ZipfTest, RankZeroIsMostPopular)
{
    Rng rng(2);
    ZipfianGenerator zipf(1000);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf.next(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], counts[100]);
    // Head concentration: rank 0 draws several percent of requests.
    EXPECT_GT(counts[0], 100000 / 25);
}

TEST(ZipfTest, ItemCountGrowth)
{
    Rng rng(3);
    ZipfianGenerator zipf(100);
    zipf.setItemCount(200);
    EXPECT_EQ(zipf.itemCount(), 200u);
    bool sawHigh = false;
    for (int i = 0; i < 50000; ++i) {
        const auto v = zipf.next(rng);
        EXPECT_LT(v, 200u);
        if (v >= 100)
            sawHigh = true;
    }
    EXPECT_TRUE(sawHigh);
}

TEST(ZipfTest, ScrambledSpreadsHotKeys)
{
    Rng rng(4);
    ScrambledZipfianGenerator zipf(1000);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf.next(rng)];
    // The most popular key is (almost surely) not key 0.
    std::uint64_t hottest = 0;
    int best = 0;
    for (const auto &[k, c] : counts) {
        if (c > best) {
            best = c;
            hottest = k;
        }
    }
    EXPECT_EQ(hottest, fnv1a64(0) % 1000);
}

TEST(ZipfTest, LatestFavoursNewest)
{
    Rng rng(5);
    LatestGenerator latest(1000);
    std::uint64_t sumNew = 0;
    const int n = 50000;
    int newest = 0;
    for (int i = 0; i < n; ++i) {
        const auto v = latest.next(rng);
        sumNew += v;
        if (v >= 990)
            ++newest;
    }
    // The newest 1% of records receive a large share of requests.
    EXPECT_GT(newest, n / 10);
    latest.setItemCount(2000);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(latest.next(rng), 2000u);
}

TEST(ZipfTest, UniformCoversRange)
{
    Rng rng(6);
    UniformGenerator uni(10);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 10000; ++i)
        ++counts[uni.next(rng)];
    EXPECT_EQ(counts.size(), 10u);
    for (const auto &[k, c] : counts) {
        (void)k;
        EXPECT_NEAR(c, 1000, 250);
    }
}


TEST(ZipfTest, IncrementalZetaMatchesFreshComputation)
{
    // Growing the item count incrementally must produce the same
    // distribution as constructing at the final size.
    Rng a(31), b(31);
    ZipfianGenerator grown(500);
    grown.setItemCount(1500);
    ZipfianGenerator fresh(1500);
    for (int i = 0; i < 5000; ++i)
        EXPECT_EQ(grown.next(a), fresh.next(b));
}

TEST(ZipfTest, HigherThetaConcentratesMore)
{
    Rng a(32), b(32);
    ZipfianGenerator mild(1000, 0.5);
    ZipfianGenerator steep(1000, 0.99);
    int mildHead = 0, steepHead = 0;
    for (int i = 0; i < 50000; ++i) {
        if (mild.next(a) < 10)
            ++mildHead;
        if (steep.next(b) < 10)
            ++steepHead;
    }
    EXPECT_GT(steepHead, mildHead);
}

// --- InstrumentedArray --------------------------------------------------------

TEST(InstrumentedArrayTest, GetSetRoundTrip)
{
    auto sim = makeSim();
    InstrumentedArray<int> arr(*sim, 100, "test");
    arr.set(5, 42);
    EXPECT_EQ(arr.get(5), 42);
    EXPECT_EQ(arr.peek(5), 42);
    EXPECT_EQ(arr.size(), 100u);
}

TEST(InstrumentedArrayTest, AccessesFlowThroughSimulator)
{
    auto sim = makeSim();
    InstrumentedArray<std::uint64_t> arr(*sim, 2048, "test");
    const auto before = sim->metrics().totalAccesses();
    arr.set(0, 1);
    arr.get(0);
    EXPECT_EQ(sim->metrics().totalAccesses(), before + 2);
    // Elements land at the right vaddrs (dense page usage).
    arr.get(1024);  // different page -> new fault
    EXPECT_GE(sim->stats().get("minor_faults"), 2u);
}

TEST(InstrumentedArrayTest, UpdateDoesReadAndWrite)
{
    auto sim = makeSim();
    InstrumentedArray<int> arr(*sim, 4, "test");
    arr.set(1, 10);
    const auto before = sim->metrics().totalAccesses();
    arr.update(1, [](int v) { return v + 5; });
    EXPECT_EQ(sim->metrics().totalAccesses(), before + 2);
    EXPECT_EQ(arr.peek(1), 15);
}

TEST(InstrumentedArrayTest, ReleaseUnmaps)
{
    auto sim = makeSim();
    InstrumentedArray<int> arr(*sim, 1024, "test");
    arr.streamInit();
    EXPECT_GT(sim->space().pageCount(), 0u);
    arr.release();
    EXPECT_EQ(sim->space().pageCount(), 0u);
    EXPECT_FALSE(arr.allocated());
}

// --- KvStore --------------------------------------------------------------------

TEST(KvStoreTest, PutGetRoundTrip)
{
    auto sim = makeSim();
    KvStore store(*sim);
    EXPECT_FALSE(store.get(1));
    store.put(1, 100);
    EXPECT_TRUE(store.get(1));
    EXPECT_EQ(store.itemCount(), 1u);
}

TEST(KvStoreTest, OverwriteKeepsCount)
{
    auto sim = makeSim();
    KvStore store(*sim);
    store.put(7, 100);
    store.put(7, 100);
    EXPECT_EQ(store.itemCount(), 1u);
}

TEST(KvStoreTest, RemoveRecyclesSlot)
{
    auto sim = makeSim();
    KvStore store(*sim);
    store.put(1, 200);
    const std::size_t footprint = store.footprintBytes();
    EXPECT_TRUE(store.remove(1));
    EXPECT_FALSE(store.get(1));
    store.put(2, 200);  // reuses the recycled slot: no new slab
    EXPECT_EQ(store.footprintBytes(), footprint);
}

TEST(KvStoreTest, ReadModifyWrite)
{
    auto sim = makeSim();
    KvStore store(*sim);
    store.put(3, 64);
    EXPECT_TRUE(store.readModifyWrite(3));
    EXPECT_FALSE(store.readModifyWrite(99));
}

TEST(KvStoreTest, OpsAdvanceSimTime)
{
    auto sim = makeSim();
    KvStore store(*sim);
    const SimTime before = sim->now();
    store.put(1, 512);
    EXPECT_GT(sim->now(), before);
}

TEST(KvStoreTest, FootprintGrowsWithItems)
{
    auto sim = makeSim();
    KvStore store(*sim);
    const std::size_t before = store.footprintBytes();
    for (int i = 0; i < 2000; ++i)
        store.put(i, 1024);
    EXPECT_GT(store.footprintBytes(), before + 1_MiB);
}

// --- YCSB ------------------------------------------------------------------------

YcsbConfig
tinyYcsb()
{
    YcsbConfig cfg;
    cfg.recordCount = 300;
    cfg.valueBytes = 256;
    cfg.opsPerWorkload = 2000;
    return cfg;
}

TEST(YcsbTest, LoadPopulatesStore)
{
    auto sim = makeSim();
    YcsbDriver driver(*sim, tinyYcsb());
    driver.load();
    EXPECT_EQ(driver.store().itemCount(), 300u);
}

TEST(YcsbTest, WorkloadNames)
{
    EXPECT_STREQ(ycsbWorkloadName(YcsbWorkload::A), "A");
    EXPECT_STREQ(ycsbWorkloadName(YcsbWorkload::W), "W");
}

TEST(YcsbTest, RunReportsThroughput)
{
    auto sim = makeSim();
    YcsbDriver driver(*sim, tinyYcsb());
    driver.load();
    const YcsbResult r = driver.run(YcsbWorkload::A);
    EXPECT_TRUE(r.operational);
    EXPECT_EQ(r.ops, 2000u);
    EXPECT_GT(r.elapsed, 0u);
    EXPECT_GT(r.throughputOpsPerSec(), 0.0);
}

TEST(YcsbTest, WorkloadENonOperational)
{
    auto sim = makeSim();
    YcsbDriver driver(*sim, tinyYcsb());
    driver.load();
    const YcsbResult r = driver.run(YcsbWorkload::E);
    EXPECT_FALSE(r.operational);
    EXPECT_EQ(r.ops, 0u);
}

TEST(YcsbTest, WorkloadDInsertsRecords)
{
    auto sim = makeSim();
    YcsbDriver driver(*sim, tinyYcsb());
    driver.load();
    driver.run(YcsbWorkload::D);
    EXPECT_GT(driver.store().itemCount(), 300u);
}

TEST(YcsbTest, PaperSequenceOrder)
{
    auto sim = makeSim();
    YcsbConfig cfg = tinyYcsb();
    cfg.opsPerWorkload = 200;
    YcsbDriver driver(*sim, cfg);
    driver.load();
    const auto results = driver.runPaperSequence();
    ASSERT_EQ(results.size(), 6u);
    EXPECT_EQ(results[0].workload, "A");
    EXPECT_EQ(results[1].workload, "B");
    EXPECT_EQ(results[2].workload, "C");
    EXPECT_EQ(results[3].workload, "F");
    EXPECT_EQ(results[4].workload, "W");
    EXPECT_EQ(results[5].workload, "D");
}

// --- Synthetic profiles -------------------------------------------------------------

TEST(SyntheticTest, ProfileNames)
{
    EXPECT_STREQ(syntheticProfileName(SyntheticProfile::Rubis), "rubis");
    EXPECT_STREQ(syntheticProfileName(SyntheticProfile::Lusearch),
                 "lusearch");
}

TEST(SyntheticTest, ShapesAreSane)
{
    for (auto p : {SyntheticProfile::Rubis, SyntheticProfile::SpecPower,
                   SyntheticProfile::Xalan, SyntheticProfile::Lusearch}) {
        const SyntheticShape s = syntheticShape(p);
        EXPECT_GT(s.dramFriendlyFrac, 0.0);
        EXPECT_LT(s.dramFriendlyFrac + s.infrequentFrac, 1.0);
        EXPECT_GE(s.tierGroups, 2u);
        EXPECT_GT(s.phaseLength, 0u);
        EXPECT_GT(s.hotAccessProb, s.infrequentProb);
    }
}

TEST(SyntheticTest, RunProducesTraceAndAdvancesTime)
{
    auto sim = makeSim();
    SyntheticConfig cfg;
    cfg.numPages = 100;
    cfg.duration = 2_s;
    cfg.step = 50_ms;
    SyntheticWorkload workload(*sim, SyntheticProfile::Rubis, cfg);
    trace::AccessTrace trace;
    workload.run(&trace);
    EXPECT_GE(sim->now(), 2_s);
    EXPECT_GT(trace.size(), 0u);
    for (const auto &ev : trace.events())
        EXPECT_LT(ev.page, 100u);
}

TEST(SyntheticTest, DramFriendlyPagesHotterThanInfrequent)
{
    auto sim = makeSim();
    SyntheticConfig cfg;
    cfg.numPages = 100;
    cfg.duration = 5_s;
    cfg.step = 20_ms;
    SyntheticWorkload workload(*sim, SyntheticProfile::Rubis, cfg);
    trace::AccessTrace trace;
    workload.run(&trace);
    // Profile rubis: pages [0,15) always hot, [15,60) infrequent.
    std::uint64_t hot = 0, cold = 0;
    for (const auto &ev : trace.events()) {
        if (ev.page < 15)
            ++hot;
        else if (ev.page < 60)
            ++cold;
    }
    EXPECT_GT(hot, cold * 5);
}

}  // namespace
}  // namespace workloads
}  // namespace mclock
