/**
 * @file
 * Integration tests: whole-stack runs of the paper's workloads on the
 * simulated machine under every policy, checking the qualitative
 * behaviours each figure relies on.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "base/units.hh"
#include "core/multiclock.hh"
#include "policies/factory.hh"
#include "policies/nimble.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "workloads/gapbs/driver.hh"
#include "workloads/ycsb.hh"

namespace mclock {
namespace {

sim::MachineConfig
smallMachine()
{
    // Small enough for fast tests; footprint ratios still paper-like.
    sim::MachineConfig cfg;
    cfg.nodes = {{TierKind::Dram, 4_MiB}, {TierKind::Pmem, 16_MiB}};
    cfg.cache.sizeBytes = 256_KiB;
    cfg.cache.ways = 8;
    return cfg;
}

workloads::YcsbConfig
smallYcsb()
{
    workloads::YcsbConfig cfg;
    cfg.recordCount = 9000;   // ~9.7 MiB of values: 2.4x DRAM
    cfg.valueBytes = 1024;
    cfg.opsPerWorkload = 200000;
    return cfg;
}

/**
 * Daemon cadence scaled to the test runs' short simulated durations,
 * mirroring the benches' time-scaling (see bench/bench_common.hh).
 */
policies::PolicyOptions
scaledOptions(SimTime interval = 4_ms)
{
    policies::PolicyOptions opts;
    opts.scanInterval = interval;
    opts.poisonPagesPerSec = 8192.0 * 250.0;
    return opts;
}

/** Run load + workload A and return ops/s. */
double
runYcsbA(const std::string &policy, std::uint64_t *promotions = nullptr,
         std::uint64_t *reaccessed = nullptr)
{
    sim::Simulator sim(smallMachine());
    sim.setPolicy(policies::makePolicy(policy, scaledOptions()));
    workloads::YcsbDriver driver(sim, smallYcsb());
    driver.load();
    const auto result = driver.run(workloads::YcsbWorkload::A);
    if (promotions)
        *promotions = sim.metrics().totalPromotions();
    if (reaccessed)
        *reaccessed = sim.metrics().totalReaccessed();
    return result.throughputOpsPerSec();
}

TEST(IntegrationYcsb, AllTieredPoliciesComplete)
{
    for (const auto &name : policies::tieredPolicyNames()) {
        const double tput = runYcsbA(name);
        EXPECT_GT(tput, 0.0) << name;
    }
}

TEST(IntegrationYcsb, MulticlockBeatsStatic)
{
    const double staticTput = runYcsbA("static");
    const double mclockTput = runYcsbA("multiclock");
    // Paper Fig. 5: +20..132% over static tiering on YCSB.
    EXPECT_GT(mclockTput, staticTput * 1.05);
}

TEST(IntegrationYcsb, MulticlockPromotes)
{
    std::uint64_t promotions = 0, reaccessed = 0;
    runYcsbA("multiclock", &promotions, &reaccessed);
    EXPECT_GT(promotions, 0u);
    EXPECT_GT(reaccessed, 0u);
}

TEST(IntegrationYcsb, NimblePromotesMoreButLessSelectively)
{
    // Paper Figs. 8-9: Nimble promotes more pages, yet a smaller
    // fraction of them get re-accessed from DRAM.
    std::uint64_t mcPromoted = 0, mcReaccessed = 0;
    std::uint64_t nbPromoted = 0, nbReaccessed = 0;
    runYcsbA("multiclock", &mcPromoted, &mcReaccessed);
    runYcsbA("nimble", &nbPromoted, &nbReaccessed);
    ASSERT_GT(mcPromoted, 0u);
    ASSERT_GT(nbPromoted, 0u);
    EXPECT_GT(nbPromoted, mcPromoted);
    const double mcRate = static_cast<double>(mcReaccessed) /
                          static_cast<double>(mcPromoted);
    const double nbRate = static_cast<double>(nbReaccessed) /
                          static_cast<double>(nbPromoted);
    EXPECT_GT(mcRate, nbRate);
}

TEST(IntegrationYcsb, MemoryModeCompletes)
{
    sim::MachineConfig cfg;
    cfg.nodes = {{TierKind::Pmem, 16_MiB}};
    cfg.cache.sizeBytes = 256_KiB;
    sim::Simulator sim(cfg);
    sim.setPolicy(policies::makePolicy("memory-mode", 4_MiB));
    workloads::YcsbDriver driver(sim, smallYcsb());
    driver.load();
    const auto result = driver.run(workloads::YcsbWorkload::A);
    EXPECT_GT(result.throughputOpsPerSec(), 0.0);
}

TEST(IntegrationGapbs, PolicyComparisonOnPagerank)
{
    std::map<std::string, double> seconds;
    for (const std::string name : {"static", "multiclock"}) {
        sim::Simulator sim(smallMachine());
        sim.setPolicy(policies::makePolicy(name, scaledOptions()));
        workloads::gapbs::GapbsConfig cfg;
        cfg.scale = 12;
        cfg.degree = 16;
        cfg.trials = 2;
        cfg.prIters = 4;
        workloads::gapbs::GapbsDriver driver(sim, cfg);
        const auto r = driver.run(workloads::gapbs::Kernel::PR);
        seconds[name] = r.avgTrialSeconds();
        EXPECT_GT(r.avgTrialSeconds(), 0.0) << name;
        EXPECT_GT(r.checksum, 0u) << name;
    }
    // Dynamic tiering should not be slower than static by much; the
    // paper reports it equal or faster on GAPBS.
    EXPECT_LT(seconds["multiclock"], seconds["static"] * 1.10);
}

TEST(IntegrationGapbs, ChecksumsAgreeAcrossPolicies)
{
    // The tiering policy must never change computed results.
    std::uint64_t checksum = 0;
    bool first = true;
    for (const std::string name : {"static", "multiclock", "nimble"}) {
        sim::Simulator sim(smallMachine());
        sim.setPolicy(policies::makePolicy(name, scaledOptions()));
        workloads::gapbs::GapbsConfig cfg;
        cfg.scale = 10;
        cfg.degree = 8;
        cfg.trials = 1;
        workloads::gapbs::GapbsDriver driver(sim, cfg);
        const auto r = driver.run(workloads::gapbs::Kernel::BFS);
        if (first) {
            checksum = r.checksum;
            first = false;
        } else {
            EXPECT_EQ(r.checksum, checksum) << name;
        }
    }
}

TEST(IntegrationSensitivity, ShorterIntervalPromotesSooner)
{
    // Fig. 10 mechanism: a shorter kpromoted interval reacts faster.
    std::map<SimTime, std::uint64_t> promoted;
    for (SimTime interval : {4_ms, 200_ms}) {
        sim::Simulator sim(smallMachine());
        core::MultiClockConfig cfg;
        cfg.scanInterval = interval;
        sim.setPolicy(std::make_unique<core::MultiClockPolicy>(cfg));
        workloads::YcsbDriver driver(sim, smallYcsb());
        driver.load();
        driver.run(workloads::YcsbWorkload::A);
        promoted[interval] = sim.metrics().totalPromotions();
    }
    EXPECT_GT(promoted[4_ms], promoted[200_ms]);
}

}  // namespace
}  // namespace mclock
