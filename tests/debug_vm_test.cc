/**
 * @file
 * Violation-injection tests for the MCLOCK_DEBUG_VM checker: each
 * invariant class is deliberately broken through the test-only
 * backdoor (or a direct hook call carrying corrupted page state) and
 * the test asserts the checker fires with the expected ViolationCode.
 * Built only when MCLOCK_DEBUG_VM is ON (see tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/units.hh"
#include "debug/test_backdoor.hh"
#include "debug/vm_checker.hh"
#include "pfra/lru_lists.hh"
#include "policies/factory.hh"
#include "sim/machine.hh"
#include "sim/sharded.hh"
#include "sim/simulator.hh"
#include "vm/address_space.hh"
#include "vm/page.hh"

namespace mclock {
namespace debug {
namespace {

/** Standalone list + checker rig with a collecting handler. */
class DebugVmTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        checker_.setHandler(
            [this](const Violation &v) { seen_.push_back(v); });
        lists_.attachStats(nullptr, nullptr, /*node=*/0);
        lists_.attachChecker(&checker_);
    }

    /** A resident anonymous page placed on node 0. */
    Page *
    makePage(PageNum vpn, bool anon = true, NodeId node = 0)
    {
        pages_.push_back(std::make_unique<Page>(&space_, vpn, anon));
        Page *pg = pages_.back().get();
        pg->placeOn(node, vpn << kPageShift);
        return pg;
    }

    bool
    sawCode(ViolationCode code) const
    {
        for (const auto &v : seen_)
            if (v.code == code)
                return true;
        return false;
    }

    AddressSpace space_;
    pfra::NodeLists lists_;
    VmChecker checker_;
    std::vector<Violation> seen_;
    std::vector<std::unique_ptr<Page>> pages_;
};

// --- One test per invariant class ----------------------------------------

TEST_F(DebugVmTest, DoubleAddFires)
{
    Page *pg = makePage(1);
    lists_.add(pg, LruListKind::InactiveAnon);
    ASSERT_TRUE(seen_.empty());
    // A second add while still on a list; reported before any state is
    // touched (the NodeLists assert would abort first on the real
    // path, so drive the hook directly).
    checker_.onListAdd(pg, LruListKind::InactiveFile, 0);
    EXPECT_TRUE(sawCode(ViolationCode::DoubleAdd));
}

TEST_F(DebugVmTest, RemoveOffListFires)
{
    Page *pg = makePage(2);
    checker_.onListRemove(pg, 0);
    EXPECT_TRUE(sawCode(ViolationCode::RemoveOffList));
}

TEST_F(DebugVmTest, IllegalTransitionFires)
{
    Page *pg = makePage(3);
    lists_.add(pg, LruListKind::InactiveAnon);
    // Inactive -> promote skips the active rung: promote-list entry is
    // only legal from the active scan (Fig. 4 transition 10).
    pg->setPromoteFlag(true);
    lists_.moveTo(pg, LruListKind::PromoteAnon);
    EXPECT_TRUE(sawCode(ViolationCode::IllegalTransition));
    EXPECT_FALSE(sawCode(ViolationCode::FlagMismatch));
}

TEST_F(DebugVmTest, BadReentryFires)
{
    Page *pg = makePage(4);
    // A fresh (never-isolated) page must start inactive, not active.
    lists_.add(pg, LruListKind::ActiveAnon);
    EXPECT_TRUE(sawCode(ViolationCode::BadReentry));
}

TEST_F(DebugVmTest, FamilyMismatchFires)
{
    Page *pg = makePage(5, /*anon=*/true);
    lists_.add(pg, LruListKind::InactiveFile);
    EXPECT_TRUE(sawCode(ViolationCode::FamilyMismatch));
}

TEST_F(DebugVmTest, FlagMismatchFires)
{
    Page *pg = makePage(6);
    // Unevictable-list entry without PG_unevictable: no pin evidence.
    lists_.add(pg, LruListKind::Unevictable);
    EXPECT_TRUE(sawCode(ViolationCode::FlagMismatch));
}

TEST_F(DebugVmTest, NodeMismatchFires)
{
    Page *pg = makePage(7, /*anon=*/true, /*node=*/1);
    // Node 0's lists, but the page's frame is on node 1.
    lists_.add(pg, LruListKind::InactiveAnon);
    EXPECT_TRUE(sawCode(ViolationCode::NodeMismatch));
}

TEST_F(DebugVmTest, NonResidentOnListFires)
{
    Page *pg = makePage(8);
    lists_.add(pg, LruListKind::InactiveAnon);
    ASSERT_TRUE(seen_.empty());
    // Corruption: the frame vanishes while the page stays listed.
    TestBackdoor::fakeUnplace(pg);
    std::vector<Violation> sink;
    checker_.validateList(lists_.list(LruListKind::InactiveAnon),
                          LruListKind::InactiveAnon, 0, &sink);
    ASSERT_FALSE(sink.empty());
    bool found = false;
    for (const auto &v : sink)
        found |= v.code == ViolationCode::NonResidentOnList;
    EXPECT_TRUE(found);
}

TEST_F(DebugVmTest, ShadowDivergenceFires)
{
    Page *pg = makePage(9);
    lists_.add(pg, LruListKind::InactiveAnon);
    ASSERT_TRUE(seen_.empty());
    // Out-of-band corruption: the tag changes, no list call happened.
    TestBackdoor::corruptListTag(pg, LruListKind::ActiveAnon);
    std::vector<Violation> sink;
    checker_.validateList(lists_.list(LruListKind::InactiveAnon),
                          LruListKind::InactiveAnon, 0, &sink);
    ASSERT_FALSE(sink.empty());
    EXPECT_EQ(sink.front().code, ViolationCode::ShadowDivergence);
}

TEST_F(DebugVmTest, PoisonedPromoteFires)
{
    // Poison a page through the injector's real mechanism: a certain
    // persistent copy failure on its first transaction.
    sim::FaultConfig fcfg;
    fcfg.enabled = true;
    fcfg.copyFailProb = 1.0;
    fcfg.persistentProb = 1.0;
    sim::FaultInjector faults(fcfg, /*machineSeed=*/7);
    Page *pg = makePage(10);
    const auto fd = faults.nextTransaction(pg->vpn(), /*dstTier=*/0);
    ASSERT_TRUE(fd.injected() && fd.persistent);
    ASSERT_TRUE(faults.poisoned(pg->vpn()));

    checker_.bindFaults(&faults);
    // An upward commit (tier 1 -> tier 0) of the poisoned page.
    checker_.onMigrationCommit(pg, /*srcTier=*/1, /*dstTier=*/0);
    EXPECT_TRUE(sawCode(ViolationCode::PoisonedPromote));
}

TEST_F(DebugVmTest, LockedRemapFires)
{
    Page *pg = makePage(11);
    pg->setLocked(true);
    checker_.onMigrationPhase(pg, sim::FaultPhase::Remap, /*dst=*/0);
    EXPECT_TRUE(sawCode(ViolationCode::LockedRemap));
}

TEST_F(DebugVmTest, ListCorruptionFires)
{
    Page *a = makePage(12);
    Page *b = makePage(13);
    Page *c = makePage(14);
    lists_.add(a, LruListKind::InactiveAnon);
    lists_.add(b, LruListKind::InactiveAnon);
    lists_.add(c, LruListKind::InactiveAnon);
    ASSERT_TRUE(seen_.empty());
    // Sever the middle page: neighbours skip it, bookkeeping still
    // claims three elements.
    TestBackdoor::severLinks(b);
    std::vector<Violation> sink;
    checker_.validateList(lists_.list(LruListKind::InactiveAnon),
                          LruListKind::InactiveAnon, 0, &sink);
    ASSERT_FALSE(sink.empty());
    bool found = false;
    for (const auto &v : sink)
        found |= v.code == ViolationCode::ListCorruption;
    EXPECT_TRUE(found);
}

// --- Legal-path behaviour -------------------------------------------------

TEST_F(DebugVmTest, LegalLifecycleStaysClean)
{
    Page *pg = makePage(20);
    lists_.add(pg, LruListKind::InactiveAnon);       // fresh fault-in
    lists_.moveTo(pg, LruListKind::ActiveAnon);      // activation
    pg->setPromoteFlag(true);
    lists_.moveTo(pg, LruListKind::PromoteAnon);     // selection
    pg->setPromoteFlag(false);
    lists_.moveTo(pg, LruListKind::ActiveAnon);      // cooled off
    lists_.moveTo(pg, LruListKind::InactiveAnon);    // deactivation
    lists_.rotateToFront(pg);                        // second chance
    lists_.remove(pg);                               // isolation
    lists_.add(pg, LruListKind::InactiveAnon);       // failed attempt
    EXPECT_TRUE(seen_.empty()) << seen_.front().detail;
    EXPECT_GT(checker_.checksRun(), 0u);
    EXPECT_EQ(checker_.violationCount(), 0u);
}

TEST_F(DebugVmTest, PromotionArrivalMustBeActive)
{
    Page *pg = makePage(21);
    lists_.add(pg, LruListKind::InactiveAnon);
    lists_.remove(pg);
    // Committed upward migration: the arrival list must be active.
    checker_.onMigrationCommit(pg, /*srcTier=*/1, /*dstTier=*/0);
    lists_.add(pg, LruListKind::InactiveAnon);
    EXPECT_TRUE(sawCode(ViolationCode::BadReentry));
}

TEST_F(DebugVmTest, DemotionArrivalMustBeInactive)
{
    Page *pg = makePage(22);
    lists_.add(pg, LruListKind::InactiveAnon);
    lists_.moveTo(pg, LruListKind::ActiveAnon);
    lists_.remove(pg);
    checker_.onMigrationCommit(pg, /*srcTier=*/0, /*dstTier=*/1);
    lists_.add(pg, LruListKind::ActiveAnon);
    EXPECT_TRUE(sawCode(ViolationCode::BadReentry));
}

TEST_F(DebugVmTest, ViolationDumpCarriesStateHistory)
{
    Page *pg = makePage(23);
    lists_.add(pg, LruListKind::InactiveAnon);
    lists_.moveTo(pg, LruListKind::ActiveAnon);
    checker_.onListAdd(pg, LruListKind::ActiveAnon, 0);  // double add
    ASSERT_FALSE(seen_.empty());
    const std::string dump = checker_.formatDump(seen_.front());
    EXPECT_NE(dump.find("double_add"), std::string::npos) << dump;
    EXPECT_NE(dump.find("state history"), std::string::npos) << dump;
    EXPECT_NE(dump.find("add none -> inactive_anon"), std::string::npos)
        << dump;
    EXPECT_NE(dump.find("move inactive_anon -> active_anon"),
              std::string::npos)
        << dump;
}

TEST_F(DebugVmTest, DestroyedPageForgetsShadowState)
{
    Page *pg = makePage(24);
    lists_.add(pg, LruListKind::InactiveAnon);
    lists_.remove(pg);
    checker_.onPageDestroyed(pg);
    // The same address recycled as a new page starts Fresh: an
    // inactive add is legal again and the stale Isolated context is
    // gone.
    lists_.add(pg, LruListKind::InactiveAnon);
    EXPECT_TRUE(seen_.empty());
}

// --- Lockdep assertions in IntrusiveList itself --------------------------

using DebugVmDeathTest = DebugVmTest;

TEST_F(DebugVmDeathTest, CorruptedEraseDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Page *a = makePage(30);
    Page *b = makePage(31);
    lists_.add(a, LruListKind::InactiveAnon);
    lists_.add(b, LruListKind::InactiveAnon);
    TestBackdoor::severLinks(a);
    // __list_del_entry_valid: erasing an entry whose neighbours no
    // longer point back must panic, not corrupt the neighbours.
    EXPECT_DEATH(lists_.list(LruListKind::InactiveAnon).erase(a),
                 "corrupted list");
}

// --- Whole-simulator integration -----------------------------------------

TEST(DebugVmSimTest, MultiClockRunIsViolationFree)
{
    sim::MachineConfig cfg;
    cfg.nodes = {{TierKind::Dram, 2_MiB}, {TierKind::Pmem, 8_MiB}};
    sim::Simulator sim(cfg);
    policies::PolicyOptions opts;
    opts.scanInterval = 4_ms;
    sim.setPolicy(policies::makePolicy("multiclock", opts));

    // Enough traffic to exercise activation, selection, promotion,
    // demotion, pressure, and eviction. The default handler would
    // panic on any violation; count checks to prove coverage.
    const Vaddr base = sim.mmap(6_MiB);
    for (int round = 0; round < 50; ++round) {
        for (Vaddr off = 0; off < 6_MiB; off += 4 * kPageSize)
            sim.readSupervised(base + off);
        for (Vaddr off = 0; off < 1_MiB; off += kPageSize)
            sim.writeSupervised(base + off);
        sim.compute(8_ms);
    }
    EXPECT_GT(sim.vmChecker().checksRun(), 0u);
    EXPECT_EQ(sim.vmChecker().violationCount(), 0u);
    sim.unmapRegion(base);
    EXPECT_EQ(sim.vmChecker().violationCount(), 0u);
}

TEST(DebugVmSimTest, ShardedRunIsViolationFree)
{
    // The sharded runtime drives each sub-simulator from a worker
    // thread; every shard's checker must stay silent and the
    // per-checker coverage counters must advance on all shards.
    sim::MachineConfig whole;
    whole.nodes = {{TierKind::Dram, 4_MiB}, {TierKind::Pmem, 16_MiB}};
    sim::ShardOptions sopts;
    sopts.shards = 4;
    sopts.workers = 4;
    sim::ShardedSimulator host(whole, sopts);

    policies::PolicyOptions opts;
    opts.scanInterval = 4_ms;
    std::vector<Vaddr> bases;
    for (unsigned s = 0; s < host.shards(); ++s) {
        host.shard(s).setPolicy(policies::makePolicy("multiclock", opts));
        bases.push_back(ShardedAddressSpace::localVa(
            host.space().mmapOn(s, 3_MiB)));
    }
    host.run([&](sim::Simulator &sim, unsigned s, std::uint64_t epoch) {
        for (Vaddr off = 0; off < 3_MiB; off += 4 * kPageSize)
            sim.readSupervised(bases[s] + off);
        for (Vaddr off = 0; off < 512_KiB; off += kPageSize)
            sim.writeSupervised(bases[s] + off);
        sim.compute(8_ms);
        return epoch < 10;
    });
    for (unsigned s = 0; s < host.shards(); ++s) {
        EXPECT_GT(host.shard(s).vmChecker().checksRun(), 0u) << s;
        EXPECT_EQ(host.shard(s).vmChecker().violationCount(), 0u) << s;
    }
}

}  // namespace
}  // namespace debug
}  // namespace mclock
