/**
 * @file
 * Tests for the kernel-style stats subsystem (src/stats/) and its
 * integration contract:
 *
 *  - VmStat: per-node + global attribution, snapshots, stable names;
 *  - TraceBuffer: ring semantics (overwrite, drop accounting), bound
 *    clock stamping, JSONL export;
 *  - VmstatSampler: cumulative time series and CSV shape;
 *  - counter invariants: every factory policy's counters agree with
 *    the simulator's independent ground-truth accounting, and a
 *    deliberately corrupted counter is detected;
 *  - differential: harness scenario promotion/demotion counts derived
 *    from the new counters match the legacy per-scenario metrics
 *    (Fig. 5 policy sweep and Fig. 8 windowed promotions);
 *  - determinism: merged vmstat output and stats artifacts are
 *    bit-identical across --jobs counts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "base/units.hh"
#include "harness/golden.hh"
#include "harness/invariants.hh"
#include "harness/profiles.hh"
#include "harness/runner.hh"
#include "policies/factory.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "stats/sampler.hh"
#include "stats/tracepoint.hh"
#include "stats/vmstat.hh"
#include "vm/page.hh"
#include "workloads/ycsb.hh"

using namespace mclock;
using namespace mclock::harness;
using stats::TraceBuffer;
using stats::TraceEvent;
using stats::TraceEventType;
using stats::VmItem;
using stats::VmStat;
using stats::VmstatSampler;

namespace {

RunContext
smallContext()
{
    RunContext ctx = goldenContext();
    ctx.params["ops"] = 20000;
    ctx.params["seconds"] = 6;
    ctx.params["trials"] = 1;
    return ctx;
}

RunnerOptions
quietOptions(unsigned jobs, const RunContext &ctx)
{
    RunnerOptions opts;
    opts.jobs = jobs;
    opts.quiet = true;
    opts.writeArtifacts = false;
    opts.context = ctx;
    return opts;
}

// --- VmStat ---------------------------------------------------------------

TEST(VmStatTest, GlobalAndPerNodeAttribution)
{
    VmStat vs(2);
    vs.add(VmItem::PgscanActive, 0, 3);
    vs.add(VmItem::PgscanActive, 1, 2);
    vs.add(VmItem::PgscanActive);  // kInvalidNode: global only
    EXPECT_EQ(vs.global(VmItem::PgscanActive), 6u);
    EXPECT_EQ(vs.node(0, VmItem::PgscanActive), 3u);
    EXPECT_EQ(vs.node(1, VmItem::PgscanActive), 2u);
    EXPECT_EQ(vs.nodeSum(VmItem::PgscanActive), 5u);
    EXPECT_EQ(vs.global(VmItem::Pgdemote), 0u);
}

TEST(VmStatTest, OutOfRangeNodeStillCountsGlobally)
{
    VmStat vs(2);
    vs.add(VmItem::Pswpin, 7);
    EXPECT_EQ(vs.global(VmItem::Pswpin), 1u);
    EXPECT_EQ(vs.nodeSum(VmItem::Pswpin), 0u);
    EXPECT_EQ(vs.node(7, VmItem::Pswpin), 0u);
}

TEST(VmStatTest, ZeroDeltaIsANoop)
{
    VmStat vs(1);
    vs.add(VmItem::Pgsteal, 0, 0);
    EXPECT_EQ(vs.global(VmItem::Pgsteal), 0u);
    EXPECT_EQ(vs.snapshot().at("pgsteal"), 0u);
}

TEST(VmStatTest, SnapshotHasAllGlobalsAndOnlyNonzeroNodeKeys)
{
    VmStat vs(2);
    vs.add(VmItem::PgscanActive, 0, 3);
    vs.add(VmItem::Pswpin);  // global only
    const auto snap = vs.snapshot();
    // Every global item is present, even at zero.
    for (std::size_t i = 0; i < stats::kNumVmItems; ++i) {
        const auto item = static_cast<VmItem>(i);
        ASSERT_TRUE(snap.count(stats::vmItemName(item)))
            << stats::vmItemName(item);
    }
    EXPECT_EQ(snap.at("pgscan_active"), 3u);
    EXPECT_EQ(snap.at("pswpin"), 1u);
    EXPECT_EQ(snap.at("pgdemote"), 0u);
    // Per-node keys appear only for nonzero counts.
    EXPECT_EQ(snap.at("node0.pgscan_active"), 3u);
    EXPECT_EQ(snap.count("node1.pgscan_active"), 0u);
    EXPECT_EQ(snap.count("node0.pswpin"), 0u);
}

TEST(VmStatTest, ItemNamesAreStableAndUnique)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < stats::kNumVmItems; ++i) {
        const std::string name =
            stats::vmItemName(static_cast<VmItem>(i));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "unknown");
        names.insert(name);
    }
    EXPECT_EQ(names.size(), stats::kNumVmItems);
    EXPECT_TRUE(names.count("pgscan_active"));
    EXPECT_TRUE(names.count("pgpromote_success"));
    EXPECT_TRUE(names.count("kpromoted_wake"));
}

TEST(VmStatTest, ResizeKeepsGlobalCounts)
{
    VmStat vs(1);
    vs.add(VmItem::Pgactivate, 0, 4);
    vs.resize(3);
    EXPECT_EQ(vs.numNodes(), 3u);
    EXPECT_EQ(vs.global(VmItem::Pgactivate), 4u);
}

// --- TraceBuffer ----------------------------------------------------------

TEST(TraceBufferTest, ZeroCapacityDisablesRecording)
{
    TraceBuffer buf(0);
    EXPECT_FALSE(buf.enabled());
    buf.record(TraceEventType::KswapdWake, 0);
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.recorded(), 0u);
    EXPECT_TRUE(buf.events().empty());
}

TEST(TraceBufferTest, RingOverwritesOldestAndCountsDrops)
{
    TraceBuffer buf(4);
    for (std::uint64_t i = 0; i < 6; ++i)
        buf.record(TraceEventType::ListRotation, 0, i);
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.dropped(), 2u);
    EXPECT_EQ(buf.recorded(), 6u);
    const auto events = buf.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest surviving first: events 2..5.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].arg0, i + 2);
}

TEST(TraceBufferTest, BoundClockStampsEvents)
{
    TraceBuffer buf(8);
    SimTime clock = 5;
    buf.bindClock(&clock);
    buf.record(TraceEventType::MigrationStart, 1);
    clock = 9;
    buf.record(TraceEventType::MigrationComplete, 1);
    const auto events = buf.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].time, 5u);
    EXPECT_EQ(events[1].time, 9u);
}

TEST(TraceBufferTest, ClearResetsEverything)
{
    TraceBuffer buf(2);
    buf.record(TraceEventType::KswapdWake, 0);
    buf.record(TraceEventType::KswapdWake, 0);
    buf.record(TraceEventType::KswapdWake, 0);
    EXPECT_EQ(buf.dropped(), 1u);
    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.dropped(), 0u);
    EXPECT_EQ(buf.recorded(), 0u);
    // Still usable after clear.
    buf.record(TraceEventType::KswapdWake, 0, 42);
    ASSERT_EQ(buf.events().size(), 1u);
    EXPECT_EQ(buf.events()[0].arg0, 42u);
}

TEST(TraceBufferTest, EventNamesAreStableAndUnique)
{
    const TraceEventType types[] = {
        TraceEventType::MigrationStart, TraceEventType::MigrationComplete,
        TraceEventType::ListRotation,   TraceEventType::KswapdWake,
        TraceEventType::KpromotedWake,  TraceEventType::WatermarkCross,
    };
    std::set<std::string> names;
    for (const auto t : types) {
        const std::string name = stats::traceEventName(t);
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "unknown");
        names.insert(name);
    }
    EXPECT_EQ(names.size(), 6u);
}

TEST(TraceBufferTest, JsonlExportFormat)
{
    TraceBuffer buf(4);
    SimTime clock = 123;
    buf.bindClock(&clock);
    buf.record(TraceEventType::KswapdWake, 0, 7, 9);
    std::string out;
    stats::appendTraceJsonl(out, buf.events(), "u");
    EXPECT_EQ(out,
              "{\"unit\":\"u\",\"t\":123,\"ev\":\"kswapd_wake\","
              "\"node\":0,\"arg0\":7,\"arg1\":9}\n");
}

// --- VmstatSampler --------------------------------------------------------

TEST(VmstatSamplerTest, SamplesAreCumulative)
{
    VmStat vs(1);
    VmstatSampler sampler(vs);
    vs.add(VmItem::PgscanActive, 0, 2);
    sampler.sample(10);
    vs.add(VmItem::PgscanActive, 0, 3);
    vs.add(VmItem::Pswpout, 0);
    sampler.sample(20);
    const auto &samples = sampler.samples();
    ASSERT_EQ(samples.size(), 2u);
    const auto active = static_cast<std::size_t>(VmItem::PgscanActive);
    const auto swpout = static_cast<std::size_t>(VmItem::Pswpout);
    EXPECT_EQ(samples[0].time, 10u);
    EXPECT_EQ(samples[0].counters[active], 2u);
    EXPECT_EQ(samples[0].counters[swpout], 0u);
    EXPECT_EQ(samples[1].counters[active], 5u);
    EXPECT_EQ(samples[1].counters[swpout], 1u);
}

TEST(VmstatSamplerTest, CsvHasHeaderAndOneRowPerSample)
{
    VmStat vs(1);
    VmstatSampler sampler(vs);
    vs.add(VmItem::PgscanActive, 0, 2);
    sampler.sample(10);
    sampler.sample(20);
    const std::string csv = sampler.toCsv();
    EXPECT_EQ(csv.rfind("time_ns,pgscan_active,", 0), 0u);
    std::size_t lines = 0;
    for (char c : csv) {
        if (c == '\n')
            ++lines;
    }
    EXPECT_EQ(lines, 3u);  // header + two samples
    EXPECT_NE(csv.find("\n10,2,"), std::string::npos);
    EXPECT_NE(csv.find("\n20,2,"), std::string::npos);
    // Each row carries every item: comma count per line is stable.
    const std::size_t headerEnd = csv.find('\n');
    std::size_t commas = 0;
    for (std::size_t i = 0; i < headerEnd; ++i) {
        if (csv[i] == ',')
            ++commas;
    }
    EXPECT_EQ(commas, stats::kNumVmItems);
}

// --- Counter invariants against ground truth ------------------------------

TEST(StatsIntegration, MulticlockCountersMatchGroundTruth)
{
    sim::MachineConfig machine = goldenYcsbMachine();
    machine.stats.sampler = true;  // exercise the sampler daemon too
    sim::Simulator sim(machine);
    sim.setPolicy(
        policies::makePolicy("multiclock", benchPolicyOptions()));
    workloads::YcsbDriver driver(sim, goldenYcsbConfig(20000));
    driver.load();
    driver.run(workloads::YcsbWorkload::A);

    const auto violations = collectViolations(sim);
    EXPECT_TRUE(violations.empty()) << violations.front();
    const auto counterViolations = collectCounterViolations(sim);
    EXPECT_TRUE(counterViolations.empty()) << counterViolations.front();

    const VmStat &vs = sim.vmstat();
    // The workload overflows DRAM, so the full tiering machinery ran.
    EXPECT_GT(vs.global(VmItem::PgpromoteSuccess), 0u);
    EXPECT_EQ(vs.global(VmItem::PgpromoteSuccess),
              sim.metrics().totalPromotions());
    EXPECT_EQ(vs.global(VmItem::Pgdemote),
              sim.metrics().totalDemotions());
    EXPECT_GT(vs.global(VmItem::KpromotedWake), 0u);
    EXPECT_GT(vs.global(VmItem::PgscanPromote), 0u);

    // Tracepoints: recorded, stamped with nondecreasing simulated time.
    const auto events = sim.trace().events();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(sim.trace().recorded(),
              sim.trace().dropped() + events.size());
    for (std::size_t i = 1; i < events.size(); ++i)
        ASSERT_GE(events[i].time, events[i - 1].time) << i;

    // Sampler: several samples, strictly increasing time, monotone
    // cumulative counters.
    ASSERT_NE(sim.sampler(), nullptr);
    const auto &samples = sim.sampler()->samples();
    ASSERT_GE(samples.size(), 2u);
    for (std::size_t i = 1; i < samples.size(); ++i) {
        ASSERT_GT(samples[i].time, samples[i - 1].time) << i;
        for (std::size_t item = 0; item < stats::kNumVmItems; ++item) {
            ASSERT_GE(samples[i].counters[item],
                      samples[i - 1].counters[item])
                << "sample " << i << " item "
                << stats::vmItemName(static_cast<VmItem>(item));
        }
    }
    // The last sample never exceeds the final counter values.
    const auto finals = vs.globals();
    for (std::size_t item = 0; item < stats::kNumVmItems; ++item)
        EXPECT_LE(samples.back().counters[item], finals[item]);
}

TEST(StatsIntegration, SamplerIsOffByDefault)
{
    sim::Simulator sim(goldenYcsbMachine());
    sim.setPolicy(policies::makePolicy("multiclock"));
    EXPECT_EQ(sim.sampler(), nullptr);
}

TEST(StatsIntegration, CorruptedCounterIsDetected)
{
    sim::Simulator sim(sim::tinyTestMachine());
    sim.setPolicy(policies::makePolicy("multiclock"));
    EXPECT_TRUE(collectCounterViolations(sim).empty());
    // A phantom promotion no migration backs must trip the checker.
    sim.vmstat().add(VmItem::PgpromoteSuccess, 0);
    EXPECT_FALSE(collectCounterViolations(sim).empty());
}

/** Every factory policy's counters must agree with the ground truth. */
class PolicyCounterConsistency
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(PolicyCounterConsistency, CountersMatchLegacyAccounting)
{
    const std::string policy = GetParam();
    sim::MachineConfig machine = goldenYcsbMachine();
    if (policy == "memory-mode")
        machine.nodes = {{TierKind::Pmem, 24_MiB}};
    auto opts = benchPolicyOptions();
    opts.dramCacheBytes = 4_MiB;
    sim::Simulator sim(machine);
    sim.setPolicy(policies::makePolicy(policy, opts));
    workloads::YcsbDriver driver(sim, goldenYcsbConfig(15000));
    driver.load();
    driver.run(workloads::YcsbWorkload::A);

    const auto violations = collectCounterViolations(sim);
    EXPECT_TRUE(violations.empty())
        << policy << ": " << violations.front();
    // Spot-check the headline equalities independently of the library.
    EXPECT_EQ(sim.vmstat().global(VmItem::PgpromoteSuccess),
              sim.metrics().totalPromotions())
        << policy;
    EXPECT_EQ(sim.vmstat().global(VmItem::Pgdemote),
              sim.metrics().totalDemotions())
        << policy;
    EXPECT_EQ(sim.vmstat().global(VmItem::PghintFault),
              static_cast<std::uint64_t>(
                  sim.stats().get("hint_faults")))
        << policy;
}

INSTANTIATE_TEST_SUITE_P(
    AllFactoryPolicies, PolicyCounterConsistency,
    ::testing::ValuesIn(policies::policyNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

// --- Accounting regressions: exchange / eviction / unmap ------------------

std::unique_ptr<sim::Simulator>
makeStaticSim(sim::MachineConfig cfg = sim::tinyTestMachine())
{
    auto s = std::make_unique<sim::Simulator>(cfg);
    s->setPolicy(policies::makePolicy("static"));
    return s;
}

TEST(ExchangeAccounting, SameTierExchangeIsNotAPromotionOrDemotion)
{
    // Two DRAM nodes: a node-to-node exchange inside one tier moves no
    // page up or down, so neither pgexchange nor the promotion and
    // demotion books may tick (they used to).
    sim::MachineConfig cfg = sim::tinyTestMachine();
    cfg.nodes = {{TierKind::Dram, 1_MiB},
                 {TierKind::Dram, 1_MiB},
                 {TierKind::Pmem, 4_MiB}};
    auto sim = makeStaticSim(cfg);
    const Vaddr a = sim->mmap(4 * kPageSize);
    for (int i = 0; i < 4; ++i)
        sim->write(a + static_cast<Vaddr>(i) * kPageSize);
    Page *onNode0 = nullptr;
    Page *onNode1 = nullptr;
    sim->space().forEachPage([&](Page *pg) {
        if (pg->node() == 0)
            onNode0 = pg;
        else if (pg->node() == 1)
            onNode1 = pg;
    });
    ASSERT_NE(onNode0, nullptr);
    ASSERT_NE(onNode1, nullptr);
    sim->policy().onPageFreed(onNode0);
    sim->policy().onPageFreed(onNode1);

    ASSERT_TRUE(sim->exchangePages(onNode0, onNode1,
                                   sim::Simulator::ChargeMode::Inline));
    EXPECT_EQ(onNode0->node(), 1);
    EXPECT_EQ(onNode1->node(), 0);
    EXPECT_EQ(sim->migrationEngine().exchanges(), 1u);
    EXPECT_EQ(sim->migrationEngine().tieredExchanges(), 0u);
    EXPECT_EQ(sim->migrationEngine().promotions(), 0u);
    EXPECT_EQ(sim->migrationEngine().demotions(), 0u);
    EXPECT_EQ(sim->vmstat().global(VmItem::Pgexchange), 0u);
    EXPECT_EQ(sim->vmstat().global(VmItem::PgpromoteSuccess), 0u);
    EXPECT_EQ(sim->vmstat().global(VmItem::Pgdemote), 0u);
    EXPECT_EQ(sim->metrics().totalPromotions(), 0u);
    EXPECT_EQ(sim->metrics().totalDemotions(), 0u);
    const auto violations = collectCounterViolations(*sim);
    EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ExchangeAccounting, CrossTierExchangeCountsOnePromotionAndDemotion)
{
    auto sim = makeStaticSim();
    const std::size_t dramFrames = sim->memory().node(0).totalFrames();
    const Vaddr a = sim->mmap((dramFrames + 4) * kPageSize);
    for (std::size_t i = 0; i < dramFrames + 4; ++i)
        sim->write(a + i * kPageSize);
    Page *hotPm = nullptr;
    Page *coldDram = nullptr;
    sim->space().forEachPage([&](Page *pg) {
        if (sim->pageTier(pg) == TierKind::Pmem)
            hotPm = pg;
        else
            coldDram = pg;
    });
    ASSERT_NE(hotPm, nullptr);
    ASSERT_NE(coldDram, nullptr);
    sim->policy().onPageFreed(hotPm);
    sim->policy().onPageFreed(coldDram);

    ASSERT_TRUE(sim->exchangePages(hotPm, coldDram,
                                   sim::Simulator::ChargeMode::Inline));
    EXPECT_EQ(sim->vmstat().global(VmItem::Pgexchange), 1u);
    EXPECT_EQ(sim->vmstat().global(VmItem::PgpromoteSuccess), 1u);
    EXPECT_EQ(sim->vmstat().global(VmItem::Pgdemote), 1u);
    EXPECT_EQ(sim->migrationEngine().tieredExchanges(), 1u);
    EXPECT_EQ(sim->metrics().totalPromotions(), 1u);
    EXPECT_EQ(sim->metrics().totalDemotions(), 1u);
    const auto violations = collectCounterViolations(*sim);
    EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(EvictionAccounting, FileBackedEvictionIsWritebackNotSwap)
{
    auto sim = makeStaticSim();
    const Vaddr a = sim->mmap(kPageSize, /*anon=*/false, "file");
    sim->write(a);
    Page *pg = sim->space().lookup(pageNumOf(a));
    ASSERT_NE(pg, nullptr);
    ASSERT_FALSE(pg->isAnon());
    sim->policy().onPageFreed(pg);
    sim->evictPage(pg);

    // Written back to its file: a writeback, not swap-area traffic.
    EXPECT_EQ(sim->vmstat().global(VmItem::Pswpout), 0u);
    EXPECT_EQ(sim->stats().get("swap_outs"), 0u);
    EXPECT_EQ(sim->swap().swapOuts(), 0u);
    EXPECT_EQ(sim->vmstat().global(VmItem::Pgwriteback), 1u);
    EXPECT_EQ(sim->stats().get("writebacks"), 1u);
    EXPECT_EQ(sim->swap().writebacks(), 1u);
    EXPECT_EQ(sim->vmstat().global(VmItem::Pgsteal), 1u);
    EXPECT_EQ(sim->swap().usedSlots(), 0u);  // no slot consumed
    const auto violations = collectCounterViolations(*sim);
    EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(EvictionAccounting, AnonymousEvictionStillCountsSwapOut)
{
    auto sim = makeStaticSim();
    const Vaddr a = sim->mmap(kPageSize);
    sim->write(a);
    Page *pg = sim->space().lookup(pageNumOf(a));
    sim->policy().onPageFreed(pg);
    sim->evictPage(pg);
    EXPECT_EQ(sim->vmstat().global(VmItem::Pswpout), 1u);
    EXPECT_EQ(sim->vmstat().global(VmItem::Pgwriteback), 0u);
    EXPECT_EQ(sim->swap().swapOuts(), 1u);
    EXPECT_EQ(sim->swap().usedSlots(), 1u);
}

TEST(EvictionAccounting, UnmapOfSwappedPageIsNotAPageIn)
{
    auto sim = makeStaticSim();
    const Vaddr a = sim->mmap(2 * kPageSize);
    sim->write(a);
    Page *pg = sim->space().lookup(pageNumOf(a));
    sim->policy().onPageFreed(pg);
    sim->evictPage(pg);
    ASSERT_EQ(sim->swap().usedSlots(), 1u);
    ASSERT_EQ(sim->swap().pageOuts(), 1u);

    // Discarding the region frees the slot without a device read; the
    // old path routed this through pageIn() and inflated pswpin.
    sim->unmapRegion(a);
    EXPECT_EQ(sim->swap().usedSlots(), 0u);
    EXPECT_EQ(sim->swap().pageIns(), 0u);
    EXPECT_EQ(sim->vmstat().global(VmItem::Pswpin), 0u);
    EXPECT_EQ(sim->stats().get("swap_ins"), 0u);
}

TEST(MigrationAccounting, LockedPageHeadedToItsOwnNodeIsANoOp)
{
    auto sim = makeStaticSim();
    const Vaddr a = sim->mmap(kPageSize);
    sim->write(a);
    Page *pg = sim->space().lookup(pageNumOf(a));
    ASSERT_EQ(pg->node(), 0);
    sim->policy().onPageFreed(pg);
    pg->setLocked(true);

    // Destination == current node: reported as a no-op before the
    // locked check, so the failure books stay clean.
    EXPECT_FALSE(
        sim->migratePage(pg, 0, sim::Simulator::ChargeMode::Inline));
    EXPECT_EQ(sim->migrationEngine().failed(), 0u);
    EXPECT_EQ(sim->vmstat().global(VmItem::PgpromoteFail), 0u);
    EXPECT_EQ(sim->vmstat().global(VmItem::PgdemoteFail), 0u);

    // A locked page headed somewhere else is still a real failure.
    EXPECT_FALSE(
        sim->migratePage(pg, 1, sim::Simulator::ChargeMode::Inline));
    EXPECT_EQ(sim->migrationEngine().failed(), 1u);
    pg->setLocked(false);
}

// --- Differential: counters vs legacy scenario metrics --------------------

/**
 * For every "<unit>.promotions" / "<unit>.demotions" metric a scenario
 * reports through the legacy accounting, the merged vmstat counters
 * must report the same value as "<unit>.pgpromote_success" /
 * "<unit>.pgdemote". Reports the number of metrics compared through
 * @p compared (gtest ASSERT_* needs a void function).
 */
void
expectCountersMatchSummary(const ScenarioOutput &output,
                           std::size_t *compared)
{
    *compared = 0;
    const struct
    {
        const char *legacy;
        const char *counter;
    } pairs[] = {{".promotions", ".pgpromote_success"},
                 {".demotions", ".pgdemote"}};
    for (const auto &[key, value] : output.summary) {
        for (const auto &p : pairs) {
            const std::string suffix = p.legacy;
            if (key.size() <= suffix.size() ||
                key.compare(key.size() - suffix.size(), suffix.size(),
                            suffix) != 0)
                continue;
            const std::string unit =
                key.substr(0, key.size() - suffix.size());
            // Skip derived per-window metrics ("multiclock.w003.
            // promotions"); only unit totals have counter analogues.
            if (unit.find('.') != std::string::npos)
                continue;
            const auto it = output.vmstat.find(unit + p.counter);
            ASSERT_NE(it, output.vmstat.end()) << key << " has no "
                                               << unit << p.counter;
            EXPECT_EQ(static_cast<double>(it->second), value) << key;
            ++*compared;
        }
    }
}

TEST(StatsDifferential, Fig05PolicySweepPromotionsMatch)
{
    // Fig. 5 runs MULTI-CLOCK and all four tiered baselines; each
    // unit's legacy promotion/demotion metrics must equal the counts
    // the new counters observed.
    const auto result =
        runScenario("fig05", quietOptions(2, smallContext()));
    EXPECT_TRUE(result.output.violations.empty());
    std::size_t compared = 0;
    expectCountersMatchSummary(result.output, &compared);
    // Two metrics per tiered policy.
    EXPECT_GE(compared, 2 * policies::tieredPolicyNames().size());
}

TEST(StatsDifferential, Fig08WindowedPromotionsMatch)
{
    // Fig. 8 (promotions per window) is the paper figure the counters
    // exist for; its cumulative totals must agree with the legacy
    // accounting, and the scenario-total key must sum the units.
    const auto result =
        runScenario("fig08", quietOptions(2, smallContext()));
    EXPECT_TRUE(result.output.violations.empty());
    std::size_t compared = 0;
    expectCountersMatchSummary(result.output, &compared);
    EXPECT_GE(compared, 2u);

    std::uint64_t unitSum = 0;
    for (const auto &[key, value] : result.output.vmstat) {
        const std::string suffix = ".pgpromote_success";
        if (key.size() > suffix.size() &&
            key.compare(key.size() - suffix.size(), suffix.size(),
                        suffix) == 0 &&
            key.find("node") == std::string::npos)
            unitSum += value;
    }
    ASSERT_TRUE(result.output.vmstat.count("pgpromote_success"));
    EXPECT_EQ(result.output.vmstat.at("pgpromote_success"), unitSum);
    EXPECT_GT(unitSum, 0u);
}

// --- Determinism across job counts ----------------------------------------

TEST(StatsDeterminism, VmstatIdenticalAcrossJobCounts)
{
    const auto ctx = smallContext();
    const auto serial = runScenario("fig08", quietOptions(1, ctx));
    const auto parallel = runScenario("fig08", quietOptions(4, ctx));
    EXPECT_FALSE(serial.output.vmstat.empty());
    EXPECT_EQ(serial.output.vmstat, parallel.output.vmstat);
    EXPECT_EQ(serial.output.summary, parallel.output.summary);
}

TEST(StatsDeterminism, StatsArtifactsIdenticalAcrossJobCounts)
{
    auto ctx = smallContext();
    ctx.stats = true;  // what mclock_bench --stats sets
    const auto serial = runScenario("fig08", quietOptions(1, ctx));
    const auto parallel = runScenario("fig08", quietOptions(4, ctx));

    const auto &a = serial.output.statsArtifacts;
    const auto &b = parallel.output.statsArtifacts;
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    bool sawCsv = false, sawJsonl = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].filename, b[i].filename);
        EXPECT_EQ(a[i].contents, b[i].contents) << a[i].filename;
        if (a[i].filename.find("vmstat.csv") != std::string::npos) {
            sawCsv = true;
            EXPECT_EQ(a[i].contents.rfind("time_ns,", 0), 0u)
                << a[i].filename;
        }
        if (a[i].filename.find("trace.jsonl") != std::string::npos) {
            sawJsonl = true;
            if (!a[i].contents.empty()) {
                EXPECT_EQ(a[i].contents.rfind("{\"unit\":", 0), 0u)
                    << a[i].filename;
            }
        }
    }
    EXPECT_TRUE(sawCsv);
    EXPECT_TRUE(sawJsonl);
    // Stats mode must not perturb the simulation itself.
    EXPECT_EQ(serial.output.summary, parallel.output.summary);
}

TEST(StatsDeterminism, StatsModeDoesNotChangeResults)
{
    auto plain = smallContext();
    auto withStats = plain;
    withStats.stats = true;
    const auto a = runScenario("fig08", quietOptions(2, plain));
    const auto b = runScenario("fig08", quietOptions(2, withStats));
    EXPECT_EQ(a.output.summary, b.output.summary);
    EXPECT_EQ(a.output.text, b.output.text);
    EXPECT_EQ(a.output.vmstat, b.output.vmstat);
}

}  // namespace
