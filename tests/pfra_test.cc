/**
 * @file
 * Unit tests for the PFRA substrate: LRU lists, watermarks, vmscan.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "base/units.hh"
#include "pfra/lru_lists.hh"
#include "pfra/vmscan.hh"
#include "pfra/watermarks.hh"
#include "vm/address_space.hh"
#include "vm/page.hh"

namespace mclock {
namespace pfra {
namespace {

std::unique_ptr<Page>
makePage(AddressSpace &space, PageNum vpn, bool anon = true)
{
    return std::make_unique<Page>(&space, vpn, anon);
}

// --- NodeLists -----------------------------------------------------------------

TEST(NodeListsTest, AddSetsMembership)
{
    AddressSpace space;
    NodeLists lists;
    auto pg = makePage(space, 0);
    lists.add(pg.get(), LruListKind::InactiveAnon);
    EXPECT_EQ(pg->list(), LruListKind::InactiveAnon);
    EXPECT_EQ(lists.inactiveSize(true), 1u);
    EXPECT_EQ(lists.totalPages(), 1u);
    lists.remove(pg.get());
}

TEST(NodeListsTest, MoveBetweenLists)
{
    AddressSpace space;
    NodeLists lists;
    auto pg = makePage(space, 0);
    lists.add(pg.get(), LruListKind::InactiveAnon);
    lists.moveTo(pg.get(), LruListKind::ActiveAnon);
    EXPECT_EQ(pg->list(), LruListKind::ActiveAnon);
    EXPECT_EQ(lists.inactiveSize(true), 0u);
    EXPECT_EQ(lists.activeSize(true), 1u);
    lists.moveTo(pg.get(), LruListKind::PromoteAnon);
    EXPECT_EQ(lists.promoteSize(true), 1u);
    lists.remove(pg.get());
    EXPECT_EQ(pg->list(), LruListKind::None);
}

TEST(NodeListsTest, AddToFrontAndBack)
{
    AddressSpace space;
    NodeLists lists;
    auto a = makePage(space, 0);
    auto b = makePage(space, 1);
    lists.add(a.get(), LruListKind::InactiveFile);
    lists.add(b.get(), LruListKind::InactiveFile, /*toFront=*/false);
    EXPECT_EQ(lists.list(LruListKind::InactiveFile).front(), a.get());
    EXPECT_EQ(lists.list(LruListKind::InactiveFile).back(), b.get());
    lists.remove(a.get());
    lists.remove(b.get());
}

TEST(NodeListsTest, KindHelpers)
{
    EXPECT_EQ(NodeLists::inactiveKind(true), LruListKind::InactiveAnon);
    EXPECT_EQ(NodeLists::inactiveKind(false), LruListKind::InactiveFile);
    EXPECT_EQ(NodeLists::activeKind(true), LruListKind::ActiveAnon);
    EXPECT_EQ(NodeLists::promoteKind(false), LruListKind::PromoteFile);
}

TEST(NodeListsTest, RotateToFront)
{
    AddressSpace space;
    NodeLists lists;
    auto a = makePage(space, 0);
    auto b = makePage(space, 1);
    lists.add(a.get(), LruListKind::ActiveAnon);        // front
    lists.add(b.get(), LruListKind::ActiveAnon, false); // back
    lists.rotateToFront(b.get());
    EXPECT_EQ(lists.list(LruListKind::ActiveAnon).front(), b.get());
    lists.remove(a.get());
    lists.remove(b.get());
}

// --- Watermarks -------------------------------------------------------------------

TEST(WatermarksTest, Ordering)
{
    const auto wm = Watermarks::compute(16384);
    EXPECT_GT(wm.min, 0u);
    EXPECT_LT(wm.min, wm.low);
    EXPECT_LT(wm.low, wm.high);
    EXPECT_LT(wm.high, 16384u);
}

TEST(WatermarksTest, ScalesSublinearly)
{
    const auto small = Watermarks::compute(1024);
    const auto big = Watermarks::compute(1024 * 100);
    EXPECT_GT(big.min, small.min);
    // sqrt scaling: 100x memory -> ~10x watermark.
    EXPECT_LT(big.min, small.min * 20);
}

TEST(WatermarksTest, TinyNodeStillHasReserve)
{
    const auto wm = Watermarks::compute(64);
    EXPECT_GE(wm.min, 1u);
    EXPECT_LE(wm.high, 64u);
}

TEST(WatermarksTest, InactiveRatio)
{
    // Small nodes: ratio 1. The kernel formula sqrt(10 * GB).
    EXPECT_EQ(inactiveRatio(16384), 1u);                  // 64 MiB
    const std::size_t frames4GiB = 4_GiB / kPageSize;
    EXPECT_EQ(inactiveRatio(frames4GiB), 6u);             // sqrt(40)~6.3
}

// --- vmscan ---------------------------------------------------------------------

class VmscanTest : public ::testing::Test
{
  protected:
    void
    addPages(std::size_t n, LruListKind kind, bool anon = true)
    {
        for (std::size_t i = 0; i < n; ++i) {
            pages_.push_back(makePage(space_, pages_.size(), anon));
            lists_.add(pages_.back().get(), kind);
        }
    }

    AddressSpace space_;
    NodeLists lists_;
    std::vector<std::unique_ptr<Page>> pages_;
};

TEST_F(VmscanTest, TestAndClearReferencedConsumesBothBits)
{
    auto pg = makePage(space_, 99);
    pg->setPteReferenced(true);
    pg->setReferenced(true);
    EXPECT_TRUE(testAndClearReferenced(pg.get()));
    EXPECT_FALSE(pg->pteReferenced());
    EXPECT_FALSE(pg->referenced());
    EXPECT_FALSE(testAndClearReferenced(pg.get()));
}

TEST_F(VmscanTest, ShrinkActiveDeactivatesUnreferenced)
{
    addPages(10, LruListKind::ActiveAnon);
    for (auto &pg : pages_)
        pg->setActive(true);
    const ScanStats stats = shrinkActiveList(lists_, true, 10);
    EXPECT_EQ(stats.scanned, 10u);
    EXPECT_EQ(stats.deactivated, 10u);
    EXPECT_EQ(lists_.activeSize(true), 0u);
    EXPECT_EQ(lists_.inactiveSize(true), 10u);
    for (auto &pg : pages_)
        EXPECT_FALSE(pg->active());
}

TEST_F(VmscanTest, ShrinkActiveRotatesReferenced)
{
    addPages(4, LruListKind::ActiveAnon);
    pages_[0]->setPteReferenced(true);  // tail page (added to front 1st)
    // pages_[0] is at the back (first added to front... order: adds push
    // front, so pages_[3] is front, pages_[0] is back).
    const ScanStats stats = shrinkActiveList(lists_, true, 1);
    EXPECT_EQ(stats.rotated, 1u);
    EXPECT_EQ(lists_.activeSize(true), 4u);
    EXPECT_EQ(lists_.list(LruListKind::ActiveAnon).front(),
              pages_[0].get());
}

TEST_F(VmscanTest, BalanceStopsAtRatio)
{
    addPages(12, LruListKind::ActiveAnon);
    addPages(4, LruListKind::InactiveAnon);
    balanceActiveInactive(lists_, true, 100, /*ratio=*/1);
    EXPECT_LE(lists_.activeSize(true),
              lists_.inactiveSize(true) * 1u);
}

TEST_F(VmscanTest, BalanceNoopWhenAlreadyBalanced)
{
    addPages(4, LruListKind::ActiveAnon);
    addPages(8, LruListKind::InactiveAnon);
    const ScanStats stats = balanceActiveInactive(lists_, true, 100, 1);
    EXPECT_EQ(stats.scanned, 0u);
}

TEST_F(VmscanTest, CollectTakesUnreferencedOnly)
{
    addPages(6, LruListKind::InactiveAnon);
    pages_[0]->setPteReferenced(true);  // back of the list
    std::vector<Page *> victims;
    const ScanStats stats =
        collectInactiveCandidates(lists_, true, 6, victims);
    EXPECT_EQ(stats.scanned, 6u);
    EXPECT_EQ(victims.size(), 5u);
    EXPECT_EQ(stats.rotated, 1u);
    // The referenced page stayed, marked referenced.
    EXPECT_TRUE(pages_[0]->referenced());
    EXPECT_EQ(lists_.inactiveSize(true), 1u);
    for (Page *v : victims)
        EXPECT_EQ(v->list(), LruListKind::None);
}

TEST_F(VmscanTest, CollectActivatesSecondReference)
{
    addPages(1, LruListKind::InactiveAnon);
    Page *pg = pages_[0].get();
    pg->setPteReferenced(true);
    std::vector<Page *> victims;
    collectInactiveCandidates(lists_, true, 1, victims);
    EXPECT_TRUE(victims.empty());
    EXPECT_TRUE(pg->referenced());
    // Referenced again: second pass activates.
    pg->setPteReferenced(true);
    collectInactiveCandidates(lists_, true, 1, victims);
    EXPECT_TRUE(victims.empty());
    EXPECT_EQ(pg->list(), LruListKind::ActiveAnon);
    EXPECT_TRUE(pg->active());
}

TEST_F(VmscanTest, CollectSkipsLockedAndUnevictable)
{
    addPages(2, LruListKind::InactiveAnon);
    pages_[0]->setLocked(true);
    pages_[1]->setUnevictable(true);
    std::vector<Page *> victims;
    const ScanStats stats =
        collectInactiveCandidates(lists_, true, 2, victims);
    EXPECT_TRUE(victims.empty());
    EXPECT_EQ(stats.rotated, 2u);
    EXPECT_EQ(lists_.inactiveSize(true), 2u);
}

}  // namespace
}  // namespace pfra
}  // namespace mclock
