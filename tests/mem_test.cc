/**
 * @file
 * Unit tests for the mem module: timing model, LLC, DRAM cache.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "mem/cache.hh"
#include "mem/dram_cache.hh"
#include "mem/memory_config.hh"

namespace mclock {
namespace {

// --- MemoryConfig -----------------------------------------------------------

TEST(MemoryConfigTest, DefaultLatencyOrdering)
{
    MemoryConfig cfg;
    ASSERT_EQ(cfg.numTiers(), 2u);
    EXPECT_STREQ(cfg.tierName(TierKind::Dram), "DRAM");
    EXPECT_STREQ(cfg.tierName(TierKind::Pmem), "PMEM");
    EXPECT_LT(cfg.timing(TierKind::Dram).loadLatency,
              cfg.timing(TierKind::Pmem).loadLatency);
    EXPECT_LT(cfg.timing(TierKind::Dram).storeLatency,
              cfg.timing(TierKind::Pmem).storeLatency);
    EXPECT_GT(cfg.timing(TierKind::Dram).writeBandwidth,
              cfg.timing(TierKind::Pmem).writeBandwidth);
}

TEST(MemoryConfigTest, CopyLatencyUsesBottleneckBandwidth)
{
    MemoryConfig cfg;
    // DRAM -> PM copy is limited by PM write bandwidth (2.3 GB/s).
    const SimTime toPm =
        cfg.copyLatency(TierKind::Dram, TierKind::Pmem, 4096);
    EXPECT_NEAR(static_cast<double>(toPm), 4096.0 / 2.3, 2.0);
    // PM -> DRAM copy is limited by PM read bandwidth (6.6 GB/s).
    const SimTime toDram =
        cfg.copyLatency(TierKind::Pmem, TierKind::Dram, 4096);
    EXPECT_NEAR(static_cast<double>(toDram), 4096.0 / 6.6, 2.0);
    EXPECT_LT(toDram, toPm);
}

TEST(MemoryConfigTest, TwoTierCopyLatencyPinned)
{
    // Regression pin: the N-tier table must not change the default
    // two-tier copy costs (golden runs depend on these numbers).
    MemoryConfig cfg;
    EXPECT_EQ(cfg.copyLatency(TierKind::Dram, TierKind::Pmem, 4096),
              static_cast<SimTime>(4096.0 / 2.3));
    EXPECT_EQ(cfg.copyLatency(TierKind::Pmem, TierKind::Dram, 4096),
              static_cast<SimTime>(4096.0 / 6.6));
    EXPECT_EQ(cfg.copyLatency(TierKind::Dram, TierKind::Dram, 4096),
              static_cast<SimTime>(4096.0 / 12.0));
}

TEST(MemoryConfigTest, ThreeTierBandwidthMatrix)
{
    MemoryConfig cfg;
    cfg.tiers = {
        {"DRAM", {80_ns, 80_ns, 12.0, 12.0}},
        {"CXL", {200_ns, 180_ns, 9.0, 9.0}},
        {"PMEM", {300_ns, 200_ns, 6.6, 2.3}},
    };
    ASSERT_EQ(cfg.numTiers(), 3u);
    // Each pair takes min(src read BW, dst write BW).
    EXPECT_EQ(cfg.copyLatency(0, 1, 4096),
              static_cast<SimTime>(4096.0 / 9.0));   // CXL write
    EXPECT_EQ(cfg.copyLatency(1, 0, 4096),
              static_cast<SimTime>(4096.0 / 9.0));   // CXL read
    EXPECT_EQ(cfg.copyLatency(1, 2, 4096),
              static_cast<SimTime>(4096.0 / 2.3));   // PM write
    EXPECT_EQ(cfg.copyLatency(2, 1, 4096),
              static_cast<SimTime>(4096.0 / 6.6));   // PM read
    EXPECT_EQ(cfg.copyLatency(0, 2, 4096),
              static_cast<SimTime>(4096.0 / 2.3));
    // Migration costs follow the matrix plus the fixed overhead.
    EXPECT_EQ(cfg.pageMigrationCost(2, 1),
              cfg.migrationFixedCost +
                  cfg.copyLatency(2, 1, kPageSize));
}

TEST(MemoryConfigTest, MigrationCostIncludesFixedOverhead)
{
    MemoryConfig cfg;
    const SimTime cost =
        cfg.pageMigrationCost(TierKind::Pmem, TierKind::Dram);
    EXPECT_GT(cost, cfg.migrationFixedCost);
    EXPECT_EQ(cost, cfg.migrationFixedCost +
                        cfg.copyLatency(TierKind::Pmem, TierKind::Dram,
                                        kPageSize));
}

TEST(MemoryConfigTest, TimingSelection)
{
    MemoryConfig cfg;
    EXPECT_EQ(cfg.timing(TierKind::Dram).loadLatency,
              cfg.tier(TierKind::Dram).timing.loadLatency);
    EXPECT_EQ(cfg.timing(TierKind::Pmem).loadLatency,
              cfg.tier(TierKind::Pmem).timing.loadLatency);
}

// --- CacheModel --------------------------------------------------------------

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.sizeBytes = 4096;  // 64 lines
    cfg.ways = 4;          // 16 sets
    cfg.lineBytes = 64;
    return cfg;
}

TEST(CacheModelTest, MissThenHit)
{
    CacheModel cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1038, false).hit);  // same 64 B line
    EXPECT_FALSE(cache.access(0x1040, false).hit); // next line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheModelTest, LruEvictionWithinSet)
{
    CacheModel cache(smallCache());
    const std::size_t sets = cache.numSets();
    // Fill one set: addresses with identical set index, distinct tags.
    const Paddr stride = sets * 64;
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_FALSE(cache.access(w * stride, false).hit);
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_TRUE(cache.access(w * stride, false).hit);
    // A fifth tag evicts the LRU line (tag 0)...
    EXPECT_FALSE(cache.access(4 * stride, false).hit);
    EXPECT_FALSE(cache.access(0, false).hit);
    // ...while more recently used lines survive. (Line 2 was re-touched
    // after line 1, so line 1 got evicted by the tag-0 refill above.)
    EXPECT_TRUE(cache.access(3 * stride, false).hit);
}

TEST(CacheModelTest, DirtyWritebackOnEviction)
{
    CacheModel cache(smallCache());
    const std::size_t sets = cache.numSets();
    const Paddr stride = sets * 64;
    cache.access(0, true);  // dirty line
    for (unsigned w = 1; w <= 4; ++w)
        cache.access(w * stride, false);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(CacheModelTest, InvalidatePageDropsLines)
{
    CacheModel cache(smallCache());
    cache.access(0x2000, false);
    cache.access(0x2040, false);
    cache.invalidatePage(0x2000);
    EXPECT_FALSE(cache.access(0x2000, false).hit);
    EXPECT_FALSE(cache.access(0x2040, false).hit);
}

TEST(CacheModelTest, ResetClearsEverything)
{
    CacheModel cache(smallCache());
    cache.access(0x3000, true);
    cache.reset();
    EXPECT_EQ(cache.hits() + cache.misses(), 0u);
    EXPECT_FALSE(cache.access(0x3000, false).hit);
}

// --- DramCache -----------------------------------------------------------------

TEST(DramCacheTest, HitServedAtDramLatency)
{
    MemoryConfig cfg;
    DramCache cache(1_MiB, cfg);
    const auto miss = cache.access(0x100, false);
    EXPECT_FALSE(miss.hit);
    EXPECT_GE(miss.latency, cfg.timing(TierKind::Pmem).loadLatency);
    const auto hit = cache.access(0x100, false);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.latency, cfg.timing(TierKind::Dram).loadLatency);
}

TEST(DramCacheTest, DirectMappedConflict)
{
    MemoryConfig cfg;
    DramCache cache(64_KiB, cfg);  // 1024 entries
    const Paddr conflictStride = 64_KiB;
    EXPECT_FALSE(cache.access(0, false).hit);
    EXPECT_FALSE(cache.access(conflictStride, false).hit);
    // The second access evicted the first (same index, different tag).
    EXPECT_FALSE(cache.access(0, false).hit);
}

TEST(DramCacheTest, DirtyEvictionPaysWriteback)
{
    MemoryConfig cfg;
    DramCache cache(64_KiB, cfg);
    cache.access(0, true);  // dirty fill
    const auto evicting = cache.access(64_KiB, false);
    EXPECT_FALSE(evicting.hit);
    EXPECT_EQ(cache.writebacks(), 1u);
    // Clean conflict miss costs less than the dirty one.
    DramCache clean(64_KiB, cfg);
    clean.access(0, false);
    const auto cleanEvict = clean.access(64_KiB, false);
    EXPECT_LT(cleanEvict.latency, evicting.latency);
}

TEST(DramCacheTest, HitRate)
{
    MemoryConfig cfg;
    DramCache cache(1_MiB, cfg);
    cache.access(0, false);
    cache.access(0, false);
    cache.access(0, false);
    cache.access(0, false);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.75);
}


TEST(DramCacheTest, MissPaysTagProbePlusPmAccess)
{
    MemoryConfig cfg;
    DramCache cache(1_MiB, cfg);
    const auto miss = cache.access(0x40, false);
    EXPECT_FALSE(miss.hit);
    // 2LM misses serialize the DRAM tag probe before the PM access.
    EXPECT_GE(miss.latency,
              cfg.timing(TierKind::Dram).loadLatency +
                  cfg.timing(TierKind::Pmem).loadLatency);
}

}  // namespace
}  // namespace mclock
