/**
 * @file
 * Unit tests for the baseline policies: static tiering, Nimble,
 * AutoTiering (CPM/OPM), Memory-mode, AMP, and the factory.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/units.hh"
#include "policies/amp.hh"
#include "policies/autotiering.hh"
#include "policies/factory.hh"
#include "policies/memory_mode.hh"
#include "policies/nimble.hh"
#include "policies/static_tiering.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"

namespace mclock {
namespace policies {
namespace {

sim::MachineConfig
testMachine(bool cache = false)
{
    sim::MachineConfig cfg = sim::tinyTestMachine();
    cfg.cache.enabled = cache;
    return cfg;
}

/** Isolate + demote + re-enqueue a page on the PM node. */
void
moveToPmem(sim::Simulator &sim, Page *pg)
{
    auto &mem = sim.memory();
    mem.node(pg->node()).lists().remove(pg);
    ASSERT_TRUE(
        sim.demotePage(pg, sim::Simulator::ChargeMode::Background));
    pg->setActive(false);
    pg->setReferenced(false);
    mem.node(pg->node()).lists().add(
        pg, pfra::NodeLists::inactiveKind(pg->isAnon()));
}

Page *
touchPage(sim::Simulator &sim)
{
    const Vaddr a = sim.mmap(kPageSize);
    sim.read(a);
    return sim.space().lookup(pageNumOf(a));
}

// --- Static tiering ------------------------------------------------------------

TEST(StaticTieringTest, NeverMigrates)
{
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<StaticTieringPolicy>());
    Page *pg = touchPage(sim);
    moveToPmem(sim, pg);
    const auto before = sim.metrics().totalPromotions();
    // Hammer the PM page for several simulated seconds.
    for (int i = 0; i < 50; ++i) {
        sim.read(pg->vaddr());
        sim.compute(100_ms);
    }
    EXPECT_EQ(sim.pageTier(pg), TierKind::Pmem);
    EXPECT_EQ(sim.metrics().totalPromotions(), before);
}

TEST(StaticTieringTest, FeatureRow)
{
    StaticTieringPolicy policy;
    EXPECT_EQ(policy.features().tiering, "Static-Tiering");
    EXPECT_STREQ(policy.name(), "static");
}

// --- Nimble ---------------------------------------------------------------------

TEST(NimbleTest, PromotesOnSingleReference)
{
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<NimblePolicy>());
    Page *pg = touchPage(sim);
    moveToPmem(sim, pg);
    // One access, then let the daemon run once: recency-only selection
    // promotes immediately (unlike MULTI-CLOCK's 3-access requirement).
    sim.read(pg->vaddr());
    sim.compute(1100_ms);
    EXPECT_EQ(sim.pageTier(pg), TierKind::Dram);
    EXPECT_GE(sim.stats().get("nimble_promoted"), 1u);
}

TEST(NimbleTest, ExchangesWhenDramFull)
{
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<NimblePolicy>());
    auto &dram = sim.memory().node(0);
    // Fill DRAM with never-referenced pages, then exhaust free frames.
    const Vaddr a = sim.mmap(dram.totalFrames() * 2 * kPageSize);
    for (std::size_t i = 0; i < dram.totalFrames() * 2; ++i)
        sim.write(a + i * kPageSize);
    Paddr p;
    while (dram.allocFrame(p)) {
    }
    // Pick a PM-resident page and make it hot.
    Page *hot = nullptr;
    sim.space().forEachPage([&](Page *pg) {
        if (!hot && sim.pageTier(pg) == TierKind::Pmem)
            hot = pg;
    });
    ASSERT_NE(hot, nullptr);
    sim.space().forEachPage([](Page *pg) {
        pg->setPteReferenced(false);
    });
    // Keep the PM page hot across daemon wakes. The victim search is a
    // CLOCK pass over the upper tier, so it takes a few wakes before a
    // cleared-and-still-cold DRAM page becomes available for exchange.
    for (int tick = 0; tick < 12; ++tick) {
        hot->setPteReferenced(true);
        sim.compute(1100_ms);
        if (sim.pageTier(hot) == TierKind::Dram)
            break;
    }
    EXPECT_EQ(sim.pageTier(hot), TierKind::Dram);
    EXPECT_GE(sim.migrationEngine().exchanges(), 1u);
}

TEST(NimbleTest, ScanIntervalAdjustable)
{
    sim::Simulator sim(testMachine());
    auto policy = std::make_unique<NimblePolicy>();
    NimblePolicy *nimble = policy.get();
    sim.setPolicy(std::move(policy));
    nimble->setScanInterval(100_ms);
    sim.compute(1_s);
    EXPECT_EQ(sim.stats().get("nimble_runs"), 10u);
}

TEST(NimbleTest, FeatureRow)
{
    NimblePolicy policy;
    EXPECT_EQ(policy.features().promotion, "Recency");
    EXPECT_EQ(policy.features().numaAware, "No");
}

// --- AutoTiering -----------------------------------------------------------------

TEST(AutoTieringTest, ScanPoisonsPages)
{
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<AutoTieringPolicy>(false));
    const Vaddr a = sim.mmap(64 * kPageSize);
    for (int i = 0; i < 64; ++i)
        sim.write(a + static_cast<Vaddr>(i) * kPageSize);
    sim.compute(1100_ms);  // one profiling pass
    EXPECT_GT(sim.stats().get("at_poisoned"), 0u);
    std::size_t poisoned = 0;
    sim.space().forEachPage([&](Page *pg) {
        if (pg->hintPoisoned())
            ++poisoned;
    });
    EXPECT_GT(poisoned, 0u);
}

TEST(AutoTieringTest, HintFaultChargedAndCleared)
{
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<AutoTieringPolicy>(false));
    Page *pg = touchPage(sim);
    pg->setHintPoisoned(true);
    const SimTime before = sim.now();
    sim.read(pg->vaddr());
    EXPECT_FALSE(pg->hintPoisoned());
    EXPECT_EQ(sim.stats().get("hint_faults"), 1u);
    EXPECT_GE(sim.now() - before, sim.memConfig().hintFaultLatency);
}

TEST(AutoTieringTest, CpmPromotesOnFaultWhenDramHasSpace)
{
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<AutoTieringPolicy>(false));
    Page *pg = touchPage(sim);
    moveToPmem(sim, pg);
    pg->setHintPoisoned(true);
    sim.read(pg->vaddr());  // hint fault -> synchronous promotion
    EXPECT_EQ(sim.pageTier(pg), TierKind::Dram);
    EXPECT_EQ(sim.stats().get("at_fault_promotions"), 1u);
}

TEST(AutoTieringTest, CpmFaultPathChargesMultiplier)
{
    sim::MachineConfig cfg = testMachine();
    sim::Simulator sim(cfg);
    sim.setPolicy(std::make_unique<AutoTieringPolicy>(false));
    Page *pg = touchPage(sim);
    moveToPmem(sim, pg);
    pg->setHintPoisoned(true);
    const SimTime before = sim.now();
    sim.read(pg->vaddr());
    const SimTime cost = sim.now() - before;
    const SimTime migration = cfg.mem.pageMigrationCost(
        TierKind::Pmem, TierKind::Dram);
    EXPECT_GE(cost, static_cast<SimTime>(
        cfg.mem.faultPathMigrationMultiplier *
        static_cast<double>(migration)));
}

TEST(AutoTieringTest, CpmExchangesWithColdVictimWhenFull)
{
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<AutoTieringPolicy>(false));
    auto &dram = sim.memory().node(0);
    const Vaddr a = sim.mmap(dram.totalFrames() * 2 * kPageSize);
    for (std::size_t i = 0; i < dram.totalFrames() * 2; ++i)
        sim.write(a + i * kPageSize);
    Paddr p;
    while (dram.allocFrame(p)) {
    }
    Page *hot = nullptr;
    sim.space().forEachPage([&](Page *pg) {
        if (!hot && sim.pageTier(pg) == TierKind::Pmem)
            hot = pg;
    });
    ASSERT_NE(hot, nullptr);
    hot->setHintPoisoned(true);
    // Let several profiling passes elapse: the victim-coldness horizon
    // is a couple of full passes, and no DRAM page faults meanwhile.
    sim.compute(60_s);
    hot->setHintPoisoned(true);  // re-arm in case a pass consumed it
    sim.read(hot->vaddr());
    EXPECT_EQ(sim.pageTier(hot), TierKind::Dram);
    EXPECT_EQ(sim.stats().get("at_fault_exchanges"), 1u);
}

TEST(AutoTieringTest, OpmDemotesZeroHistoryPagesUnderPressure)
{
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<AutoTieringPolicy>(true));
    auto &dram = sim.memory().node(0);
    const Vaddr a = sim.mmap(dram.totalFrames() / 2 * kPageSize);
    for (std::size_t i = 0; i < dram.totalFrames() / 2; ++i)
        sim.write(a + i * kPageSize);
    // All history bits are zero (no hint faults recorded).
    Paddr p;
    while (!dram.belowLow())
        ASSERT_TRUE(dram.allocFrame(p));
    sim.policy().handlePressure(dram);
    EXPECT_GT(sim.metrics().totalDemotions(), 0u);
}

TEST(AutoTieringTest, OpmHistoryMaintainedByScan)
{
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<AutoTieringPolicy>(true));
    Page *pg = touchPage(sim);
    pg->setHintFaultedSinceScan(true);
    sim.compute(1100_ms);  // one profiling pass shifts history
    EXPECT_EQ(pg->historyBits() & 1u, 1u);
    EXPECT_FALSE(pg->hintFaultedSinceScan());
}

TEST(AutoTieringTest, Names)
{
    EXPECT_STREQ(AutoTieringPolicy(false).name(), "at-cpm");
    EXPECT_STREQ(AutoTieringPolicy(true).name(), "at-opm");
    EXPECT_EQ(AutoTieringPolicy(false).features().demotion, "N/A");
    EXPECT_EQ(AutoTieringPolicy(true).features().demotion, "Frequency");
}

// --- Memory-mode -----------------------------------------------------------------

TEST(MemoryModeTest, AllPagesLiveInPmem)
{
    sim::MachineConfig cfg = sim::paperMachineMemoryMode();
    cfg.cache.enabled = false;
    sim::Simulator sim(cfg);
    sim.setPolicy(std::make_unique<MemoryModePolicy>(1_MiB));
    Page *pg = touchPage(sim);
    EXPECT_EQ(sim.pageTier(pg), TierKind::Pmem);
}

TEST(MemoryModeTest, RepeatAccessHitsDramCache)
{
    sim::MachineConfig cfg = sim::paperMachineMemoryMode();
    cfg.cache.enabled = false;
    sim::Simulator sim(cfg);
    auto policy = std::make_unique<MemoryModePolicy>(1_MiB);
    MemoryModePolicy *mm = policy.get();
    sim.setPolicy(std::move(policy));
    Page *pg = touchPage(sim);
    sim.read(pg->vaddr());  // fill
    const SimTime before = sim.now();
    sim.read(pg->vaddr());  // hit
    EXPECT_EQ(sim.now() - before,
              cfg.mem.timing(TierKind::Dram).loadLatency);
    EXPECT_GT(mm->cache().hits(), 0u);
}

TEST(MemoryModeTest, MissSlowerThanHit)
{
    sim::MachineConfig cfg = sim::paperMachineMemoryMode();
    cfg.cache.enabled = false;
    sim::Simulator sim(cfg);
    sim.setPolicy(std::make_unique<MemoryModePolicy>(64_KiB));
    const Vaddr a = sim.mmap(2 * kPageSize);
    sim.read(a);
    sim.read(a);  // hit
    SimTime t0 = sim.now();
    sim.read(a);
    const SimTime hit = sim.now() - t0;
    // Conflicting address 64 KiB away (same direct-mapped slot).
    sim.read(a + kPageSize);  // fault other page; different slot
    t0 = sim.now();
    sim.read(a + 64_KiB % (2 * kPageSize));  // may or may not conflict
    (void)t0;
    // The basic property: a miss costs at least PM load latency.
    sim::Simulator sim2(cfg);
    sim2.setPolicy(std::make_unique<MemoryModePolicy>(64_KiB));
    const Vaddr b = sim2.mmap(kPageSize);
    sim2.read(b);  // fault + first-touch miss
    Page *pg = sim2.space().lookup(pageNumOf(b));
    (void)pg;
    EXPECT_LT(hit, cfg.mem.timing(TierKind::Pmem).loadLatency);
}

// --- AMP --------------------------------------------------------------------------

class AmpTest : public ::testing::TestWithParam<AmpMode>
{
};

TEST_P(AmpTest, PromotesHotPmemPages)
{
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<AmpPolicy>(GetParam()));
    Page *pg = touchPage(sim);
    moveToPmem(sim, pg);
    // Make the page clearly the hottest PM page.
    for (int i = 0; i < 20; ++i) {
        sim.read(pg->vaddr());
        sim.compute(50_ms);
    }
    sim.compute(2_s);
    // LRU and LFU must promote it; Random promotes *something*
    // eventually (it is the only PM page, so it gets picked too).
    EXPECT_EQ(sim.pageTier(pg), TierKind::Dram);
    EXPECT_GE(sim.stats().get("amp_promoted"), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, AmpTest,
                         ::testing::Values(AmpMode::Lru, AmpMode::Lfu,
                                           AmpMode::Random));

TEST(AmpTest2, Names)
{
    EXPECT_STREQ(AmpPolicy(AmpMode::Lru).name(), "amp-lru");
    EXPECT_STREQ(AmpPolicy(AmpMode::Lfu).name(), "amp-lfu");
    EXPECT_STREQ(AmpPolicy(AmpMode::Random).name(), "amp-random");
}


TEST(NimbleTest, PromoteBudgetBoundsMigrationsPerWake)
{
    NimbleConfig cfg;
    cfg.promoteBudget = 2;
    sim::MachineConfig mcfg = testMachine();
    sim::Simulator sim(mcfg);
    sim.setPolicy(std::make_unique<NimblePolicy>(cfg));
    // Several hot PM pages, all referenced: one wake promotes only 2.
    const Vaddr a = sim.mmap(8 * kPageSize);
    for (int i = 0; i < 8; ++i)
        sim.write(a + static_cast<Vaddr>(i) * kPageSize);
    sim.space().forEachPage([&](Page *pg) { moveToPmem(sim, pg); });
    sim.space().forEachPage([](Page *pg) {
        pg->setPteReferenced(true);
    });
    sim.compute(1100_ms);  // one wake
    EXPECT_EQ(sim.metrics().totalPromotions(), 2u);
}

TEST(AutoTieringTest, PoisonChunkCappedByFootprint)
{
    AutoTieringConfig cfg;
    cfg.poisonChunk = 1u << 20;  // absurdly large
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<AutoTieringPolicy>(false, cfg));
    const Vaddr a = sim.mmap(256 * kPageSize);
    for (int i = 0; i < 256; ++i)
        sim.write(a + static_cast<Vaddr>(i) * kPageSize);
    sim.compute(1100_ms);  // one profiling pass
    // At most ~1/16th of the vpn space is poisoned per pass.
    const auto limit = sim.space().vpnLimit();
    EXPECT_LE(sim.stats().get("at_poisoned"),
              std::max<std::uint64_t>(64, limit / 16));
    EXPECT_GT(sim.stats().get("at_poisoned"), 0u);
}

TEST(AutoTieringTest, WarmVictimsAreProtected)
{
    // A DRAM page with a recent hint fault must not be picked as an
    // exchange victim (the cold horizon spans full profiling passes).
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<AutoTieringPolicy>(false));
    auto &dram = sim.memory().node(0);
    const Vaddr a = sim.mmap(dram.totalFrames() * 2 * kPageSize);
    for (std::size_t i = 0; i < dram.totalFrames() * 2; ++i)
        sim.write(a + i * kPageSize);
    Paddr p;
    while (dram.allocFrame(p)) {
    }
    // Mark every DRAM page recently hint-faulted.
    sim.compute(60_s);  // establish the pass period
    sim.space().forEachPage([&](Page *pg) {
        if (pg->resident() && sim.pageTier(pg) == TierKind::Dram)
            pg->setLastHintFault(sim.now());
    });
    Page *hot = nullptr;
    sim.space().forEachPage([&](Page *pg) {
        if (!hot && sim.pageTier(pg) == TierKind::Pmem)
            hot = pg;
    });
    ASSERT_NE(hot, nullptr);
    hot->setHintPoisoned(true);
    const auto before = sim.stats().get("at_fault_exchanges");
    sim.read(hot->vaddr());
    EXPECT_EQ(sim.stats().get("at_fault_exchanges"), before);
    EXPECT_EQ(sim.pageTier(hot), TierKind::Pmem);
}


TEST(AutoNumaTieringTest, PromotesOnlyWhenDramHasSpace)
{
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<AutoTieringPolicy>(
        AutoTieringMode::AutoNuma));
    Page *pg = touchPage(sim);
    moveToPmem(sim, pg);
    pg->setHintPoisoned(true);
    sim.read(pg->vaddr());  // DRAM has space: promoted on the fault
    EXPECT_EQ(sim.pageTier(pg), TierKind::Dram);
}

TEST(AutoNumaTieringTest, NeverExchangesWhenFull)
{
    sim::Simulator sim(testMachine());
    sim.setPolicy(std::make_unique<AutoTieringPolicy>(
        AutoTieringMode::AutoNuma));
    auto &dram = sim.memory().node(0);
    const Vaddr a = sim.mmap(dram.totalFrames() * 2 * kPageSize);
    for (std::size_t i = 0; i < dram.totalFrames() * 2; ++i)
        sim.write(a + i * kPageSize);
    Paddr p;
    while (dram.allocFrame(p)) {
    }
    Page *hot = nullptr;
    sim.space().forEachPage([&](Page *pg) {
        if (!hot && sim.pageTier(pg) == TierKind::Pmem)
            hot = pg;
    });
    ASSERT_NE(hot, nullptr);
    sim.compute(60_s);
    hot->setHintPoisoned(true);
    sim.read(hot->vaddr());
    EXPECT_EQ(sim.pageTier(hot), TierKind::Pmem);  // stays put
    EXPECT_EQ(sim.stats().get("at_fault_exchanges"), 0u);
    EXPECT_STREQ(
        AutoTieringPolicy(AutoTieringMode::AutoNuma).name(),
        "autonuma");
}

// --- Factory ---------------------------------------------------------------------

TEST(FactoryTest, MakesEveryPolicy)
{
    for (const auto &name : policyNames()) {
        auto policy = makePolicy(name, 1_MiB);
        ASSERT_NE(policy, nullptr) << name;
        EXPECT_EQ(policy->name(), name);
    }
}

TEST(FactoryTest, TieredNamesMatchPaperFigure5)
{
    const auto names = tieredPolicyNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "static");
    EXPECT_EQ(names[1], "multiclock");
}

}  // namespace
}  // namespace policies
}  // namespace mclock
